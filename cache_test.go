package repro

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/relation"
	"repro/internal/wire"
	"repro/internal/workload"
)

// empTuple builds an Employee-schema tuple with the given ID and EId.
func empTuple(id int, eid string) Tuple {
	return Tuple{ID: id, Values: []Value{
		Str(eid), Str("N"), Str("A"), Int(30), Int(50_000), Str("Design"),
	}}
}

// TestCachedQueriesMatchUncached is the observational-equivalence
// property of the owner-side version cache: two identically keyed and
// seeded clients — one caching (the remote default), one with
// Config.DisableCache — run the same interleaved query/insert workload
// against their own clouds and must return identical tuples and log
// identical adversarial views (same plaintext values, same returned
// addresses). The cached cloud meanwhile serves strictly fewer ops: the
// server-observed access sequence of the cached run is a subset of the
// uncached one, never a superset.
func TestCachedQueriesMatchUncached(t *testing.T) {
	for _, tech := range []Technique{TechNoInd, TechDetIndex} {
		t.Run(tech.String(), func(t *testing.T) {
			mk := func(disable bool) (*Client, *wire.Cloud) {
				lis, err := net.Listen("tcp", "127.0.0.1:0")
				if err != nil {
					t.Fatal(err)
				}
				cl := wire.NewCloud()
				go func() { _ = cl.Serve(lis) }()
				t.Cleanup(func() { lis.Close() })
				c, err := NewClient(Config{
					MasterKey:    []byte("cache equivalence"),
					Attr:         "EId",
					Technique:    tech,
					Seed:         seed(53),
					CloudAddr:    lis.Addr().String(),
					DisableCache: disable,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { c.Close() })
				return c, cl
			}
			cached, cachedCloud := mk(false)
			plain, plainCloud := mk(true)

			emp := workload.Employee()
			for _, c := range []*Client{cached, plain} {
				if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
					t.Fatal(err)
				}
			}

			// Interleave repeated reads (cache hits), inserts (cache
			// invalidation) and first reads of fresh values (delta pulls).
			step := 0
			query := func(w Value) {
				t.Helper()
				step++
				want, err := plain.Query(w)
				if err != nil {
					t.Fatalf("step %d: uncached Query(%v): %v", step, w, err)
				}
				got, err := cached.Query(w)
				if err != nil {
					t.Fatalf("step %d: cached Query(%v): %v", step, w, err)
				}
				if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
					t.Fatalf("step %d: cached Query(%v) = %v, want %v",
						step, w, relation.IDs(got), relation.IDs(want))
				}
			}
			insert(t, cached, plain, empTuple(1000, "E900"))
			for round := 0; round < 3; round++ {
				for _, eid := range []string{"E101", "E259", "E900", "E199", "E101"} {
					query(Str(eid))
				}
				insert(t, cached, plain, empTuple(1001+round, "E900"))
				query(Str("E900")) // must include the tuple just inserted
			}

			// Identical adversarial views, query for query.
			cv, pv := cached.AdversarialViews(), plain.AdversarialViews()
			if len(cv) != len(pv) {
				t.Fatalf("view counts differ: cached %d, uncached %d", len(cv), len(pv))
			}
			for i := range cv {
				if viewKey(cv[i]) != viewKey(pv[i]) {
					t.Errorf("view %d: cached %s != uncached %s", i, viewKey(cv[i]), viewKey(pv[i]))
				}
			}

			// The cache did real work and shrank the server-observed load.
			cs := cached.CacheStats()
			if cs.Hits == 0 || cs.Misses == 0 {
				t.Fatalf("cache stats = %+v, want both hits (revalidations) and misses (invalidations)", cs)
			}
			if ps := plain.CacheStats(); ps.Hits+ps.Misses != 0 {
				t.Fatalf("DisableCache client recorded cache traffic: %+v", ps)
			}
			co, po := cloudOps(cachedCloud), cloudOps(plainCloud)
			if co >= po {
				t.Fatalf("cached run hit the server %d times, uncached %d — cache saved nothing", co, po)
			}
		})
	}
}

// insert applies the same sensitive insert to both clients.
func insert(t *testing.T, a, b *Client, tp Tuple) {
	t.Helper()
	if err := a.Insert(tp, true); err != nil {
		t.Fatal(err)
	}
	if err := b.Insert(tp, true); err != nil {
		t.Fatal(err)
	}
}

// cloudOps sums the dispatched-op counters across a cloud's namespaces.
func cloudOps(cl *wire.Cloud) uint64 {
	var n uint64
	for _, s := range cl.Stats() {
		n += s.Ops
	}
	return n
}

// TestCacheMultiClientReadYourWrites: a second client resumed onto the
// same namespace (the multi-writer deployment) must never be served a
// stale cached view — every read issued after a sibling's acknowledged
// insert sees that insert, because revalidation asks the server for the
// authoritative version on every query. The concurrent phase runs a
// writer against two caching readers and fails on any regression of the
// monotonic read bound; `go test -race` covers the cache's internal
// locking at the same time.
func TestCacheMultiClientReadYourWrites(t *testing.T) {
	addr := startRemoteCloud(t)
	mk := func() *Client {
		c, err := NewClient(Config{
			MasterKey: []byte("multi-writer cache"),
			Attr:      "EId",
			Seed:      seed(59),
			CloudAddr: addr,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	writer := mk()
	emp := workload.Employee()
	if err := writer.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	var meta bytes.Buffer
	if err := writer.SaveMetadata(&meta); err != nil {
		t.Fatal(err)
	}
	reader := mk()
	if err := reader.Resume(bytes.NewReader(meta.Bytes())); err != nil {
		t.Fatal(err)
	}

	// Sequential: after each acknowledged insert by the writer, the caching
	// reader must count it — a single stale "not modified" would freeze the
	// count. The inserts reuse an existing searchable value: the resumed
	// reader's bin metadata predates them, and only values already binned
	// at SaveMetadata time are visible to both sessions.
	baseSeq, err := reader.Query(Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		if err := writer.Insert(empTuple(2000+i, "E259"), true); err != nil {
			t.Fatal(err)
		}
		got, err := reader.Query(Str("E259"))
		if err != nil {
			t.Fatal(err)
		}
		if want := len(baseSeq) + i; len(got) != want {
			t.Fatalf("after insert %d: reader sees %d tuples, want %d (stale cache)", i, len(got), want)
		}
		// A second read with no intervening write revalidates from cache.
		if got, err = reader.Query(Str("E259")); err != nil || len(got) != len(baseSeq)+i {
			t.Fatalf("repeat read %d = %d tuples, %v", i, len(got), err)
		}
	}
	if cs := reader.CacheStats(); cs.Hits == 0 {
		t.Fatalf("reader cache never hit: %+v", cs)
	}

	// Concurrent: one writer, two caching readers, the acked count as the
	// staleness bound. acked is loaded BEFORE each query; the result may
	// only be larger (in-flight insert landed), never smaller.
	baseCon, err := reader.Query(Str("E101"))
	if err != nil {
		t.Fatal(err)
	}
	var acked atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 24; i++ {
			if err := writer.Insert(empTuple(3000+i, "E101"), true); err != nil {
				t.Error(err)
				break
			}
			acked.Add(1)
		}
		close(done)
	}()
	readErrs := make(chan error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			check := func() bool {
				floor := int64(len(baseCon)) + acked.Load()
				got, err := reader.Query(Str("E101"))
				if err != nil {
					readErrs <- err
					return false
				}
				if int64(len(got)) < floor {
					readErrs <- fmt.Errorf("stale read: %d tuples, %d acked before the query", len(got), floor)
					return false
				}
				return true
			}
			for {
				select {
				case <-done:
					check() // one final read past the last ack
					return
				default:
					if !check() {
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(readErrs)
	for err := range readErrs {
		t.Error(err)
	}
}

// TestCacheSurvivesCloudRestart: a caching reconnect client whose cloud
// is killed and restored from a snapshot must revalidate rather than
// trust its pre-crash cache — the restored store's fresh epoch forces a
// full resend — and must observe writes applied after the restart.
func TestCacheSurvivesCloudRestart(t *testing.T) {
	cloud := wire.NewCloud()
	srv := startChaosCloud(t, cloud)
	c, err := NewClient(Config{
		MasterKey: []byte("cache chaos"),
		Attr:      "EId",
		Seed:      seed(67),
		CloudAddr: srv.addr,
		Reconnect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	emp := workload.Employee()
	if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}

	// Warm the cache, then snapshot exactly this state.
	before, err := c.Query(Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := cloud.Save(&snap); err != nil {
		t.Fatal(err)
	}

	// Crash and restore.
	srv.kill()
	restored := wire.NewCloud()
	if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	srv.restart(t, restored)

	// The warm cache must revalidate against the reborn store and still
	// answer correctly.
	after, err := c.Query(Str("E259"))
	if err != nil {
		t.Fatalf("query across restart: %v", err)
	}
	if !reflect.DeepEqual(relation.IDs(after), relation.IDs(before)) {
		t.Fatalf("post-restart Query = %v, want %v", relation.IDs(after), relation.IDs(before))
	}
	// Writes applied to the restored cloud are visible immediately.
	if err := c.Insert(empTuple(4000, "E960"), true); err != nil {
		t.Fatal(err)
	}
	got, err := c.Query(Str("E960"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("insert after restart: reader sees %d tuples, want 1", len(got))
	}
	if cs := c.CacheStats(); cs.Hits+cs.Misses == 0 {
		t.Fatalf("cache never engaged across the restart: %+v", cs)
	}
}
