package repro

import (
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"strings"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/ring"
	"repro/internal/storage"
	"repro/internal/technique"
	"repro/internal/wire"
)

// Technique selects the cryptographic search mechanism QB is layered over.
type Technique int

const (
	// TechNoInd (default): non-deterministic AES-GCM with owner-side
	// attribute decryption — the strongest at-rest story without special
	// hardware, and the search procedure the paper used on the commercial
	// systems A/B.
	TechNoInd Technique = iota
	// TechDetIndex: deterministic encryption with a cloud-side index.
	// Fast, but leaks the value-frequency histogram at rest; include it
	// only to reproduce the attacks.
	TechDetIndex
	// TechArx: Arx-style per-occurrence tokens (indexable, non-repeating
	// ciphertexts) — the §VI integration target.
	TechArx
	// TechShamir: Shamir secret-sharing linear scan across three
	// non-colluding clouds (access-pattern hiding, γ >> 1).
	TechShamir
	// TechSimOpaque and TechSimJana: calibrated cost models of the SGX and
	// MPC systems of Table VI; real crypto plus virtual time.
	TechSimOpaque
	TechSimJana
	// TechDPFPIR: two-server private information retrieval over
	// distributed point functions — full access-pattern hiding at linear
	// scan cost.
	TechDPFPIR
)

// String names the technique.
func (t Technique) String() string {
	switch t {
	case TechNoInd:
		return "NoInd"
	case TechDetIndex:
		return "DetIndex"
	case TechArx:
		return "Arx"
	case TechShamir:
		return "ShamirScan"
	case TechSimOpaque:
		return "SimOpaque"
	case TechSimJana:
		return "SimJana"
	case TechDPFPIR:
		return "DPF-PIR"
	default:
		return fmt.Sprintf("Technique(%d)", int(t))
	}
}

// Config configures a Client.
type Config struct {
	// MasterKey is the owner's root secret; all sub-keys are derived from
	// it. Required.
	MasterKey []byte
	// Attr is the searchable attribute name. Required.
	Attr string
	// Technique picks the cryptographic mechanism (default TechNoInd).
	Technique Technique
	// Seed, when non-nil, makes the secret bin permutation deterministic
	// (tests and reproducible experiments only — production should leave
	// it nil for a cryptographically random permutation).
	Seed *uint64
	// DisableFakePadding turns off §IV-B volume equalisation (attack
	// demonstrations only).
	DisableFakePadding bool
	// DisableNearestSquare forces unmodified Algorithm 1 factorisation.
	DisableNearestSquare bool
	// CloudAddr, when non-empty, connects to a remote qbcloud process at
	// this address instead of hosting the cloud stores in-process. Only
	// store-backed techniques (NoInd, DetIndex, Arx) support remote mode.
	CloudAddr string
	// Ring, when non-empty, connects to a qbring coordinator at this
	// address instead of a single qbcloud: the client pulls the placement
	// directory once, then routes this namespace's view to its R replicas
	// directly — writes fan out to every in-sync replica, reads stick to
	// the nearest live one and fail over instantly when it dies. Mutually
	// exclusive with CloudAddr; CloudConns and Reconnect are implied by
	// the ring transport (each node connection self-heals with fast
	// failover timeouts) and ignored.
	Ring string
	// CloudConns is the number of multiplexed connections to CloudAddr
	// (<= 1 means a single connection). One connection already carries
	// any number of in-flight calls; a few extra connections additionally
	// parallelise the server's per-connection decode/encode work, which
	// pays off for CPU-bound encrypted scans under QueryBatch.
	CloudConns int
	// Reconnect, when set, wraps the cloud connection in a reconnecting
	// transport: a transport failure — the cloud restarting, a dropped
	// TCP session — no longer poisons the client permanently. Instead the
	// transport redials with capped exponential backoff, re-runs the
	// protocol handshake, re-ships the clear-text partition, resyncs the
	// encrypted address space and replays any un-acknowledged encrypted
	// uploads (exactly once), while in-flight queries block and then
	// retry. The price is an owner-side mirror of the clear-text
	// partition. Composes with CloudConns > 1: each pooled connection
	// reconnects independently, migrating the upload buffers of the
	// namespaces homed on it.
	Reconnect bool
	// DisableCache turns off the owner-side version cache that is on by
	// default for remote clouds: cross-query reuse of the pulled column,
	// decrypted payloads and index lookups, revalidated per query against
	// the server's cheap version counter (never served stale — see
	// docs/ARCHITECTURE.md). Disable it to reproduce the uncached wire
	// profile of earlier versions. In-process clouds never cache: their
	// store reads are free and the paper's cost tables assume the
	// per-query pull.
	DisableCache bool
	// CacheBytes bounds the owner-side cache footprint in bytes
	// (0 = technique.DefaultCacheBytes). Ignored when the cache is off.
	CacheBytes int
	// Store selects the cloud-side namespace this client's relation lives
	// in when CloudAddr is set. One qbcloud hosts any number of named
	// store pairs, each with its own address space, token index and
	// clear-text relation, so several clients (or tenants) share one
	// server by picking distinct names. Empty selects the server's
	// default store — the single implicit store of earlier versions.
	// Names ending in "/columns" are reserved (vertical clients keep
	// their sensitive-column relation in that sibling namespace) and
	// rejected. Ignored for in-process clouds, which are private to the
	// client.
	Store string
}

// Client is the trusted DB owner side of the system: it partitions,
// encrypts, outsources and queries through QB.
type Client struct {
	owner  *owner.Owner
	cfg    Config
	remote wire.Backend     // the Config.Store namespace view; non-nil when CloudAddr is set
	cache  *technique.Cache // owner-side version cache; nil when disabled or in-process

	// transport is the shared connection (or pool) remote is a view of.
	// ownsTransport is false for sub-clients composed over a transport
	// someone else closes (e.g. a vertical client's two namespaces on one
	// pool).
	transport     wire.Transport
	ownsTransport bool
}

// checkStoreName rejects namespaces reserved for vertical clients: a
// regular client landing in some vertical client's "/columns" sibling
// would interleave differently keyed ciphertexts in one store — exactly
// the corruption the namespace split exists to prevent.
func checkStoreName(store string) error {
	if strings.HasSuffix(store, "/columns") {
		return fmt.Errorf("repro: Config.Store %q: the \"/columns\" suffix is reserved for the sensitive-column namespace of vertical clients", store)
	}
	return nil
}

// dialTransport opens the shared connection (or connection pool) to
// Config.CloudAddr or the ring transport to Config.Ring; nil when the
// cloud is in-process.
func dialTransport(cfg Config) (wire.Transport, error) {
	if cfg.Ring != "" {
		if cfg.CloudAddr != "" {
			return nil, errors.New("repro: Config.Ring and Config.CloudAddr are mutually exclusive")
		}
		if err := checkStoreName(cfg.Store); err != nil {
			return nil, err
		}
		return ring.DialRouter(cfg.Ring, ring.RouterOptions{})
	}
	if cfg.CloudAddr == "" {
		return nil, nil
	}
	if err := checkStoreName(cfg.Store); err != nil {
		return nil, err
	}
	if cfg.Reconnect {
		if cfg.CloudConns > 1 {
			return wire.DialReconnectPool(cfg.CloudAddr, cfg.CloudConns, wire.ReconnectOptions{})
		}
		return wire.DialReconnect(cfg.CloudAddr, wire.ReconnectOptions{})
	}
	if cfg.CloudConns > 1 {
		return wire.DialPool(cfg.CloudAddr, cfg.CloudConns)
	}
	return wire.Dial(cfg.CloudAddr)
}

// NewClient validates the configuration and builds the client.
func NewClient(cfg Config) (*Client, error) {
	transport, err := dialTransport(cfg)
	if err != nil {
		return nil, err
	}
	c, err := newClientOn(cfg, transport, true)
	if err != nil && transport != nil {
		transport.Close()
	}
	return c, err
}

// newClientOn builds a client over an already-open transport (nil for an
// in-process cloud), selecting the Config.Store namespace view. The
// caller keeps responsibility for closing the transport unless owns is
// true.
func newClientOn(cfg Config, transport wire.Transport, owns bool) (*Client, error) {
	if len(cfg.MasterKey) == 0 {
		return nil, errors.New("repro: Config.MasterKey is required")
	}
	if cfg.Attr == "" {
		return nil, errors.New("repro: Config.Attr is required")
	}
	keys := crypto.DeriveKeys(cfg.MasterKey)

	var remote wire.Backend
	if transport != nil {
		remote = transport.Store(cfg.Store)
		// Control plane: the first write claims the namespace for this
		// master key, making the owner-authenticated admin ops (stats,
		// drop, compact — see cmd/qbadmin) available to it alone.
		remote.SetAdminToken(wire.OwnerToken(cfg.MasterKey, cfg.Store))
	}
	encStore := func() technique.EncStore {
		if remote != nil {
			return remote
		}
		return storage.NewEncryptedStore()
	}

	var (
		tech technique.Technique
		err  error
	)
	switch cfg.Technique {
	case TechNoInd:
		tech, err = technique.NewNoIndOn(keys, encStore())
	case TechDetIndex:
		tech, err = technique.NewDetIndexOn(keys, encStore())
	case TechArx:
		tech, err = technique.NewArxOn(keys, encStore())
	case TechShamir:
		tech, err = technique.NewShamirScan(keys, 3, 2)
	case TechSimOpaque:
		tech, err = technique.NewSimOpaque(keys)
	case TechSimJana:
		tech, err = technique.NewSimJana(keys)
	case TechDPFPIR:
		tech, err = technique.NewDPFPIR(keys)
	default:
		err = fmt.Errorf("repro: unknown technique %v", cfg.Technique)
	}
	if err != nil {
		return nil, err
	}
	if remote != nil {
		switch cfg.Technique {
		case TechNoInd, TechDetIndex, TechArx:
			// Store-backed techniques run remote.
		default:
			return nil, fmt.Errorf("repro: technique %v does not support a remote cloud", cfg.Technique)
		}
	}
	// The owner-side version cache is on by default against a remote
	// cloud, where the per-query column pull it kills is a real network
	// transfer; techniques without a cached path (Arx) simply ignore it.
	var cache *technique.Cache
	if remote != nil && !cfg.DisableCache {
		cache = technique.NewCache(cfg.CacheBytes)
		if cs, ok := tech.(interface{ SetCache(*technique.Cache) }); ok {
			cs.SetCache(cache)
		} else {
			cache = nil
		}
	}
	o := owner.New(tech, cfg.Attr)
	if remote != nil {
		o.SetCloudBackend(remote)
	}
	return &Client{
		owner: o, cfg: cfg, remote: remote, cache: cache,
		transport: transport, ownsTransport: owns,
	}, nil
}

// CacheStats re-exports the owner-side cache accounting.
type CacheStats = technique.CacheStats

// CacheStats reports the cumulative effect of the owner-side version
// cache; the zero value when the cache is off (in-process clouds,
// Config.DisableCache, or a technique without a cached path).
func (c *Client) CacheStats() CacheStats {
	if c.cache == nil {
		return CacheStats{}
	}
	return c.cache.Stats()
}

// Close releases the remote cloud connections (and their mux goroutines)
// when Config.CloudAddr is set; for an in-process cloud it is a no-op.
// The cloud-side state outlives the client — see SaveMetadata/Resume.
func (c *Client) Close() error {
	if c.transport == nil || !c.ownsTransport {
		return nil
	}
	return c.transport.Close()
}

// SaveMetadata persists the owner-side state (bins, value counts, fake
// ledger) after Outsource. Store it as securely as the master key: it
// contains plaintext values and frequencies.
func (c *Client) SaveMetadata(w io.Writer) error {
	if err := c.flushRemote(); err != nil {
		return err
	}
	return c.owner.SaveMetadata(w)
}

// Resume restores a previously saved owner state against the already-
// populated remote cloud of Config.CloudAddr, skipping Outsource entirely.
// The configuration (master key, technique, attribute) must match the
// session that saved the metadata.
func (c *Client) Resume(r io.Reader) error {
	if c.remote == nil {
		return errors.New("repro: Resume requires Config.CloudAddr (the cloud must outlive the owner)")
	}
	return c.owner.LoadMetadata(r, c.remote)
}

func (c *Client) binOptions() core.Options {
	opts := core.Options{
		DisableFakePadding:   c.cfg.DisableFakePadding,
		DisableNearestSquare: c.cfg.DisableNearestSquare,
	}
	if c.cfg.Seed != nil {
		opts.Rand = mrand.New(mrand.NewPCG(*c.cfg.Seed, *c.cfg.Seed^0x6a09e667f3bcc908))
	}
	return opts
}

// Outsource partitions r by the sensitivity predicate and uploads both
// partitions: the non-sensitive one in clear-text, the sensitive one
// through the configured technique with fake-tuple padding. It also builds
// the QB bins from the value-frequency metadata.
func (c *Client) Outsource(r *Relation, sensitive func(Tuple) bool) error {
	if err := c.owner.Outsource(r, sensitive, c.binOptions()); err != nil {
		return err
	}
	return c.flushRemote()
}

// flushRemote pushes buffered encrypted uploads to a remote cloud so the
// outsourced state is durable there.
func (c *Client) flushRemote() error {
	if c.remote == nil {
		return nil
	}
	return c.remote.Flush()
}

// remoteLogicalCount snapshots the remote backend's per-op error counter
// before a query, so remoteErrSince can detect failures the backend's
// void interface methods (Search, AttrColumn, ...) swallowed into zero
// values during that window.
func (c *Client) remoteLogicalCount() uint64 {
	if c.remote == nil {
		return 0
	}
	return c.remote.LogicalErrCount()
}

// remoteErrSince surfaces remote failures that happened since the
// `before` snapshot: the backend's sticky transport error, or any per-op
// error recorded inside the window. Counting (rather than draining a
// shared error slot) keeps concurrent queries from consuming each
// other's failures: every query whose window saw an error fails, so a
// dead qbcloud yields errors instead of silently empty results.
func (c *Client) remoteErrSince(before uint64) error {
	if c.remote == nil {
		return nil
	}
	if err := c.remote.Err(); err != nil {
		return err
	}
	if c.remote.LogicalErrCount() != before {
		return c.remote.LogicalErr()
	}
	return nil
}

// finishRemote folds a remote failure observed since the `before`
// snapshot into err (queries with multi-value returns bracket manually;
// single-value ones go through withRemoteCheck).
func (c *Client) finishRemote(before uint64, err error) error {
	if err == nil {
		err = c.remoteErrSince(before)
	}
	return err
}

// withRemoteCheck brackets a query with the remote failure check.
func withRemoteCheck[T any](c *Client, run func() (T, error)) (T, error) {
	before := c.remoteLogicalCount()
	out, err := run()
	return out, c.finishRemote(before, err)
}

// Query runs SELECT * WHERE attr = w through QB and returns exactly the
// matching tuples (fakes and bin co-residents are filtered owner-side).
func (c *Client) Query(w Value) ([]Tuple, error) {
	return withRemoteCheck(c, func() ([]Tuple, error) {
		ts, _, err := c.owner.Query(w)
		return ts, err
	})
}

// QueryWithStats is Query plus the cost breakdown.
func (c *Client) QueryWithStats(w Value) ([]Tuple, *QueryStats, error) {
	before := c.remoteLogicalCount()
	ts, stats, err := c.owner.Query(w)
	return ts, stats, c.finishRemote(before, err)
}

// QueryNaive executes the insecure non-binned strawman of Example 2; it
// exists so that the attack examples can demonstrate the leak QB prevents.
func (c *Client) QueryNaive(w Value) ([]Tuple, error) {
	return withRemoteCheck(c, func() ([]Tuple, error) {
		ts, _, err := c.owner.QueryNaive(w)
		return ts, err
	})
}

// QueryRange runs SELECT * WHERE lo <= attr <= hi through bin-cover
// rewriting (full-version extension).
func (c *Client) QueryRange(lo, hi Value) ([]Tuple, error) {
	return withRemoteCheck(c, func() ([]Tuple, error) {
		ts, _, err := c.owner.QueryRange(lo, hi)
		return ts, err
	})
}

// Insert adds one tuple after outsourcing, re-binning if its searchable
// value is new and rebalancing fake padding (full-version extension).
func (c *Client) Insert(t Tuple, sensitive bool) error {
	if err := c.owner.Insert(t, sensitive); err != nil {
		return err
	}
	return c.flushRemote()
}

// AggOp re-exports the aggregation operators.
type AggOp = owner.AggOp

// Aggregation operators for QueryAggregate.
const (
	AggCount = owner.AggCount
	AggSum   = owner.AggSum
	AggMin   = owner.AggMin
	AggMax   = owner.AggMax
)

// QueryAggregate computes COUNT/SUM/MIN/MAX(col) over the selection
// attr = w; the adversarial view is identical to a plain selection.
func (c *Client) QueryAggregate(w Value, col string, op AggOp) (int64, error) {
	return withRemoteCheck(c, func() (int64, error) {
		return c.owner.QueryAggregate(w, col, op)
	})
}

// Join equi-joins this client's relation with other's on their searchable
// attributes, entirely through QB retrievals (full-version extension).
func (c *Client) Join(other *Client) ([]JoinPair, error) {
	before, otherBefore := c.remoteLogicalCount(), other.remoteLogicalCount()
	pairs, err := c.owner.Join(other.owner)
	err = c.finishRemote(before, err)
	return pairs, other.finishRemote(otherBefore, err)
}

// AdversarialViews returns everything the honest-but-curious cloud has
// observed so far — the input to the attack suite.
func (c *Client) AdversarialViews() []AdversarialView {
	if c.owner.Server() == nil {
		return nil
	}
	return c.owner.Server().Views()
}

// VerticalClient handles relations with column-level sensitivity on top of
// row-level sensitivity (Figure 2 of the paper): the named sensitive
// columns are carved into an always-encrypted side relation keyed by the
// searchable attribute, while the remaining columns flow through the usual
// QB row partitioning. Queries return reassembled full-schema tuples.
type VerticalClient struct {
	v    *owner.VerticalOwner
	main *Client
	cols *Client

	// transport is the shared connection both sub-clients' namespaces
	// ride on (nil in-process); the vertical client owns and closes it.
	transport wire.Transport
}

// verticalColumnsStore names the namespace the sensitive-column relation
// lives in: the main store's name plus a "/columns" suffix, so one
// Config.Store value yields a disjoint pair.
func verticalColumnsStore(store string) string {
	if store == "" {
		store = wire.DefaultStore
	}
	return store + "/columns"
}

// NewVerticalClient builds a vertical client: cfg configures the
// row-partitioned residual (as in NewClient), and sensitiveCols names the
// columns that must never appear in clear-text regardless of row
// sensitivity.
//
// With Config.CloudAddr set, the two sub-clients — which encrypt under
// different derived keys — are composed over one shared connection (or
// pool) but two distinct cloud-side namespaces: the residual relation
// lives in Config.Store and the sensitive columns in its "/columns"
// sibling, so the differently keyed ciphertexts never interleave in one
// store and every whole-column decryption stays coherent.
func NewVerticalClient(cfg Config, sensitiveCols []string) (*VerticalClient, error) {
	transport, err := dialTransport(cfg)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*VerticalClient, error) {
		if transport != nil {
			transport.Close()
		}
		return nil, err
	}
	main, err := newClientOn(cfg, transport, false)
	if err != nil {
		return fail(err)
	}
	colsCfg := cfg
	colsCfg.MasterKey = append(append([]byte(nil), cfg.MasterKey...), []byte("/columns")...)
	colsCfg.Store = verticalColumnsStore(cfg.Store)
	colsClient, err := newClientOn(colsCfg, transport, false)
	if err != nil {
		return fail(err)
	}
	v := owner.NewVertical(main.owner.Technique(), colsClient.owner.Technique(), cfg.Attr, sensitiveCols)
	if main.remote != nil {
		// The vertical owner builds a fresh inner owner around the main
		// technique; its clear-text partition must reach the same remote
		// namespace as the technique's encrypted one.
		v.Main().SetCloudBackend(main.remote)
	}
	return &VerticalClient{v: v, main: main, cols: colsClient, transport: transport}, nil
}

// Close releases the shared remote transport both sub-clients ride on;
// for an in-process vertical client it is a no-op. The cloud-side state
// of both namespaces outlives the client.
func (c *VerticalClient) Close() error {
	if c.transport == nil {
		return nil
	}
	return c.transport.Close()
}

// flushRemote pushes both namespaces' buffered encrypted uploads.
func (c *VerticalClient) flushRemote() error {
	if err := c.main.flushRemote(); err != nil {
		return err
	}
	return c.cols.flushRemote()
}

// Outsource splits r by column and row sensitivity and uploads all three
// parts.
func (c *VerticalClient) Outsource(r *Relation, rowSensitive func(Tuple) bool) error {
	if err := c.v.Outsource(r, rowSensitive, c.main.binOptions()); err != nil {
		return err
	}
	return c.flushRemote()
}

// Query returns full original-schema tuples with attr = w. Remote
// failures on either namespace surface as errors (the sub-clients share
// one transport, so one bracket observes both).
func (c *VerticalClient) Query(w Value) ([]Tuple, error) {
	return withRemoteCheck(c.main, func() ([]Tuple, error) { return c.v.Query(w) })
}

// AdversarialViews exposes the main cloud's view log.
func (c *VerticalClient) AdversarialViews() []AdversarialView {
	if c.v.Main().Server() == nil {
		return nil
	}
	return c.v.Main().Server().Views()
}

// BinningSummary describes the current bin layout.
type BinningSummary struct {
	SensitiveBins    int
	NonSensitiveBins int
	FakeTuples       int
	TargetVolume     int
	MetadataBytes    int
	Reversed         bool
}

// Binning reports the current bin layout (zero value before Outsource).
func (c *Client) Binning() BinningSummary {
	b := c.owner.Bins()
	if b == nil {
		return BinningSummary{}
	}
	return BinningSummary{
		SensitiveBins:    b.SensitiveBinCount(),
		NonSensitiveBins: b.NonSensitiveBinCount(),
		FakeTuples:       b.TotalFakeTuples(),
		TargetVolume:     b.TargetVolume,
		MetadataBytes:    b.MetadataBytes(),
		Reversed:         b.Reversed,
	}
}
