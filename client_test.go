package repro

import (
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

func seed(v uint64) *uint64 { return &v }

func employeeClient(t *testing.T, tech Technique) *Client {
	t.Helper()
	c, err := NewClient(Config{
		MasterKey: []byte("client test master key"),
		Attr:      "EId",
		Technique: tech,
		Seed:      seed(42),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Outsource(workload.Employee(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(Config{Attr: "K"}); err == nil {
		t.Error("missing master key accepted")
	}
	if _, err := NewClient(Config{MasterKey: []byte("k")}); err == nil {
		t.Error("missing attr accepted")
	}
	if _, err := NewClient(Config{MasterKey: []byte("k"), Attr: "K", Technique: Technique(99)}); err == nil {
		t.Error("unknown technique accepted")
	}
}

func TestTechniqueString(t *testing.T) {
	names := map[Technique]string{
		TechNoInd: "NoInd", TechDetIndex: "DetIndex", TechArx: "Arx",
		TechShamir: "ShamirScan", TechSimOpaque: "SimOpaque", TechSimJana: "SimJana",
		Technique(99): "Technique(99)",
	}
	for k, want := range names {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestClientQueryAllTechniques(t *testing.T) {
	emp := workload.Employee()
	for _, tech := range []Technique{TechNoInd, TechDetIndex, TechArx, TechShamir, TechDPFPIR} {
		t.Run(tech.String(), func(t *testing.T) {
			c := employeeClient(t, tech)
			for _, eid := range []string{"E101", "E259", "E199", "E152"} {
				got, err := c.Query(Str(eid))
				if err != nil {
					t.Fatal(err)
				}
				want, err := emp.Select("EId", Str(eid))
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
					t.Errorf("Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
				}
			}
		})
	}
}

func TestClientQueryWithStats(t *testing.T) {
	c := employeeClient(t, TechNoInd)
	got, st, err := c.QueryWithStats(Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || st.Result != 2 {
		t.Errorf("E259 result = %d tuples, stats %+v", len(got), st)
	}
}

func TestClientNaiveAndViews(t *testing.T) {
	c := employeeClient(t, TechNoInd)
	if _, err := c.QueryNaive(Str("E101")); err != nil {
		t.Fatal(err)
	}
	views := c.AdversarialViews()
	if len(views) != 1 {
		t.Fatalf("views = %d", len(views))
	}
	if len(views[0].PlainValues) != 1 {
		t.Errorf("naive view predicates = %v", views[0].PlainValues)
	}
}

func TestClientBinning(t *testing.T) {
	c, err := NewClient(Config{MasterKey: []byte("k"), Attr: "EId"})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Binning(); got != (BinningSummary{}) {
		t.Errorf("pre-outsource binning = %+v", got)
	}
	c = employeeClient(t, TechNoInd)
	b := c.Binning()
	if b.SensitiveBins != 2 || b.NonSensitiveBins != 2 {
		t.Errorf("employee binning = %+v, want 2x2 (paper example)", b)
	}
	if b.MetadataBytes <= 0 {
		t.Error("metadata bytes not positive")
	}
}

func TestClientInsertAndRange(t *testing.T) {
	c, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: workload.Attr, Seed: seed(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 300, DistinctValues: 30, Alpha: 0.4, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
		t.Fatal(err)
	}
	got, err := c.QueryRange(Int(5), Int(8))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.Relation.SelectRange(workload.Attr, Int(5), Int(8))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
		t.Errorf("range = %v, want %v", relation.IDs(got), relation.IDs(want))
	}
	nt := Tuple{ID: 9999, Values: make([]Value, ds.Relation.Schema.Arity())}
	for i := range nt.Values {
		nt.Values[i] = Int(0)
	}
	nt.Values[0] = Int(123456)
	if err := c.Insert(nt, true); err != nil {
		t.Fatal(err)
	}
	got, err = c.Query(Int(123456))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 9999 {
		t.Errorf("inserted tuple lookup = %v", got)
	}
}

func TestClientJoin(t *testing.T) {
	mk := func(keys []int64) *Client {
		s := MustSchema("J",
			Column{Name: "K", Kind: KindInt},
			Column{Name: "P", Kind: KindInt},
		)
		r := NewRelation(s)
		for i, k := range keys {
			r.MustInsert(Int(k), Int(int64(i)))
		}
		c, err := NewClient(Config{MasterKey: []byte("jk"), Attr: "K", Seed: seed(3)})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Outsource(r, func(tp Tuple) bool { return tp.Values[0].Int()%2 == 0 }); err != nil {
			t.Fatal(err)
		}
		return c
	}
	left := mk([]int64{1, 2, 3})
	right := mk([]int64{2, 3, 4})
	pairs, err := left.Join(right)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != 2 {
		t.Errorf("join pairs = %d, want 2", len(pairs))
	}
}
