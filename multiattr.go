package repro

import (
	"fmt"
)

// MultiClient supports selection queries on several searchable attributes
// of the same relation. The full version of the paper extends QB to
// multiple searchable attributes; the composition rule is that each
// attribute needs its own binning over its own value domain. MultiClient
// realises that by maintaining one independent client per attribute — each
// with its own derived keys, bins, and encrypted copy of the sensitive
// partition. This trades cloud storage (one sensitive copy per attribute)
// for per-attribute partitioned data security, the same trade a
// multi-index plaintext database makes.
type MultiClient struct {
	clients map[string]*Client
	attrs   []string
}

// NewMultiClient builds one client per searchable attribute. cfg.Attr is
// ignored; each attribute derives its own sub-master key so token spaces
// never collide.
func NewMultiClient(cfg Config, attrs []string) (*MultiClient, error) {
	if len(attrs) == 0 {
		return nil, fmt.Errorf("repro: MultiClient needs at least one attribute")
	}
	m := &MultiClient{clients: make(map[string]*Client, len(attrs)), attrs: attrs}
	for _, attr := range attrs {
		if _, dup := m.clients[attr]; dup {
			return nil, fmt.Errorf("repro: duplicate searchable attribute %q", attr)
		}
		sub := cfg
		sub.Attr = attr
		sub.MasterKey = append(append([]byte(nil), cfg.MasterKey...), []byte("/attr/"+attr)...)
		c, err := NewClient(sub)
		if err != nil {
			return nil, err
		}
		m.clients[attr] = c
	}
	return m, nil
}

// Outsource partitions and uploads the relation once per searchable
// attribute.
func (m *MultiClient) Outsource(r *Relation, sensitive func(Tuple) bool) error {
	for _, attr := range m.attrs {
		if err := m.clients[attr].Outsource(r.Clone(), sensitive); err != nil {
			return fmt.Errorf("repro: outsourcing for attribute %q: %w", attr, err)
		}
	}
	return nil
}

// client returns the per-attribute client.
func (m *MultiClient) client(attr string) (*Client, error) {
	c, ok := m.clients[attr]
	if !ok {
		return nil, fmt.Errorf("repro: %q is not a searchable attribute (have %v)", attr, m.attrs)
	}
	return c, nil
}

// Query runs SELECT * WHERE attr = w.
func (m *MultiClient) Query(attr string, w Value) ([]Tuple, error) {
	c, err := m.client(attr)
	if err != nil {
		return nil, err
	}
	return c.Query(w)
}

// QueryRange runs SELECT * WHERE lo <= attr <= hi.
func (m *MultiClient) QueryRange(attr string, lo, hi Value) ([]Tuple, error) {
	c, err := m.client(attr)
	if err != nil {
		return nil, err
	}
	return c.QueryRange(lo, hi)
}

// Insert adds the tuple under every attribute's outsourcing.
func (m *MultiClient) Insert(t Tuple, sensitive bool) error {
	for _, attr := range m.attrs {
		if err := m.clients[attr].Insert(t, sensitive); err != nil {
			return fmt.Errorf("repro: inserting for attribute %q: %w", attr, err)
		}
	}
	return nil
}

// Attrs lists the searchable attributes.
func (m *MultiClient) Attrs() []string { return append([]string(nil), m.attrs...) }
