package repro

import "repro/internal/owner"

// BatchResult is one completed query of a streaming batch (see
// Client.QueryAsync).
type BatchResult = owner.BatchResult

// QueryBatch executes many selections as one batch, sharing cloud-side
// work across them: the encrypted side of every query goes to the
// technique in a single batched search (scan-shaped techniques pull the
// attribute column or scan their table once per batch instead of once per
// query; on a remote cloud, one round trip serves the whole batch's bin
// fetches), while the plaintext bin fetches fan out over a bounded worker
// pool. It returns one answer slice per query, indexed like ws.
//
// The batch is observationally equivalent to looping Query sequentially:
// per-query results are identical and the adversarial views are logged in
// input order, so AdversarialViews is deterministic. On failure the error
// of the lowest-index failing query is returned.
func (c *Client) QueryBatch(ws []Value) ([][]Tuple, error) {
	return c.QueryBatchN(ws, 0)
}

// QueryBatchN is QueryBatch with an explicit worker count (<= 0 selects
// GOMAXPROCS). The count bounds the plaintext-side fan-out, and the
// per-query concurrency when a shared-path failure forces the batch onto
// the per-query engine. It does not reach inside the technique: an
// index-shaped technique's internal per-query fallback runs at
// GOMAXPROCS. With a remote cloud the batch keeps many calls in flight on
// the multiplexed connection(s), and a remote failure mid-batch fails the
// batch rather than thinning its results.
func (c *Client) QueryBatchN(ws []Value, workers int) ([][]Tuple, error) {
	return withRemoteCheck(c, func() ([][]Tuple, error) {
		out, _, err := c.owner.QueryBatch(ws, workers)
		return out, err
	})
}

// QueryBatchWithStats is QueryBatchN plus the per-query cost breakdowns.
// On the batched path each QueryStats.Enc is the query's attributable
// slice of the shared batch search — its access pattern and result
// transfers — with work shared across the batch (the column pull or table
// scan) counted once at the technique level rather than per query.
func (c *Client) QueryBatchWithStats(ws []Value, workers int) ([][]Tuple, []*QueryStats, error) {
	before := c.remoteLogicalCount()
	out, stats, err := c.owner.QueryBatch(ws, workers)
	return out, stats, c.finishRemote(before, err)
}

// QueryAsync streams a batch: results are delivered on the returned
// channel as soon as each query completes (with its input Index, so
// callers can reorder), and the channel closes when the batch is done.
// Unlike QueryBatch, per-query failures are delivered in-band as
// BatchResult.Err and do not stop the remaining queries; adversarial views
// are logged in completion order, which keeps the view multiset — though
// not its order — identical to a sequential loop. The caller must drain
// the channel until it closes (e.g. with range), even after seeing an
// error: abandoning it mid-stream blocks the worker pool forever.
func (c *Client) QueryAsync(ws []Value) <-chan BatchResult {
	return c.QueryAsyncN(ws, 0)
}

// QueryAsyncN is QueryAsync with an explicit worker count (<= 0 selects
// GOMAXPROCS). With a remote cloud, a backend failure is folded into the
// stream conservatively: every result delivered after the failure was
// detected carries it as Err, even one whose own query had already
// completed — the failure window cannot be attributed per-query from
// outside the engine, and erring towards flagging beats silently
// trusting results produced around a dying connection.
func (c *Client) QueryAsyncN(ws []Value, workers int) <-chan BatchResult {
	before := c.remoteLogicalCount()
	ch := c.owner.QueryAsync(ws, workers)
	if c.remote == nil {
		return ch
	}
	out := make(chan BatchResult)
	go func() {
		defer close(out)
		for res := range ch {
			res.Err = c.finishRemote(before, res.Err)
			out <- res
		}
	}()
	return out
}
