GO ?= go

.PHONY: build test race bench ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Root-package benchmarks only: they include every paper table/figure plus
# the batch-engine throughput sweep (BenchmarkQueryBatch).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

ci: build test race
