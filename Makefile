GO ?= go

.PHONY: build test vet race bench bench-remote docs smoke-remote smoke-chaos ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Documentation hygiene: vet, run every runnable Example against its
# expected output, and build the examples/ programs so the documented
# snippets cannot rot.
docs: vet
	$(GO) test -run 'Example' ./...
	$(GO) build ./examples/...

# Root-package benchmarks only: they include every paper table/figure plus
# the batch-engine throughput sweep (BenchmarkQueryBatch).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Remote-backend parallelism headline: queries/sec of QueryBatch against a
# cloud behind net.Pipe and TCP loopback at 1/4/GOMAXPROCS workers.
bench-remote:
	$(GO) test -bench=BenchmarkRemoteQueryBatch -benchmem -run='^$$' .

# End-to-end multi-tenant smoke: boot the real qbcloud binary, run a
# vertical client plus a second tenant against it over TCP (three
# namespaces on one server), check answers against an in-process
# reference and the per-store shutdown stats.
smoke-remote:
	$(GO) build -o bin/qbcloud ./cmd/qbcloud
	$(GO) run ./cmd/qbsmoke -qbcloud bin/qbcloud

# Crash-recovery + control-plane smoke: boot qbcloud with periodic atomic
# snapshots, drive a reconnecting client, SIGKILL the server mid-traffic,
# restart from the state file and require identical answers; then drive
# the qbadmin CLI (ping/list/stats/compact/drop + wrong-key refusal).
smoke-chaos:
	$(GO) build -o bin/qbcloud ./cmd/qbcloud
	$(GO) build -o bin/qbadmin ./cmd/qbadmin
	$(GO) run ./cmd/qbsmoke -phase chaos -qbcloud bin/qbcloud -qbadmin bin/qbadmin

ci: build test race docs smoke-remote smoke-chaos
