GO ?= go

# Pinned third-party linter versions; CI installs exactly these.
STATICCHECK_VERSION ?= 2025.1.1
GOVULNCHECK_VERSION ?= v1.1.4

.PHONY: build test vet race bench bench-remote bench-load bench-ring fuzz-smoke docs smoke-remote smoke-chaos smoke-load smoke-load-nocache smoke-ring lint audit ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Documentation hygiene: vet, run every runnable Example against its
# expected output, and build the examples/ programs so the documented
# snippets cannot rot.
docs: vet
	$(GO) test -run 'Example' ./...
	$(GO) build ./examples/...

# Root-package benchmarks only: they include every paper table/figure plus
# the batch-engine throughput sweep (BenchmarkQueryBatch).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Remote-backend parallelism headline: queries/sec of QueryBatch against a
# cloud behind net.Pipe and TCP loopback at 1/4/GOMAXPROCS workers.
# Besides the human-readable output, cmd/benchjson distils the run into
# machine-readable BENCH_remote.json (ns/op, queries/sec, B/op, allocs/op
# per sub-benchmark) for dashboards and regression tracking.
bench-remote:
	$(GO) build -o bin/benchjson ./cmd/benchjson
	$(GO) test -bench=BenchmarkRemoteQueryBatch -benchmem -run='^$$' . \
		| tee /dev/stderr | bin/benchjson -o BENCH_remote.json

# Open-loop load baseline: qbload drives a real qbcloud binary with a
# Zipf-skewed 90/10 read/write mix across 4 tenants × 4 clients and
# writes the tracked perf trajectory file BENCH_load.json (committed;
# regenerate it in any PR that intends a perf change — see
# docs/BENCHMARKS.md).
bench-load:
	$(GO) build -o bin/qbcloud ./cmd/qbcloud
	$(GO) build -o bin/qbload ./cmd/qbload
	bin/qbload -qbcloud bin/qbcloud -tenants 4 -clients 4 -rate 300 -duration 10s \
		-read-frac 0.9 -check -o BENCH_load.json

# Fuzz smoke: run each binary-codec fuzz target's mutation engine briefly
# (the seed corpora already run as plain tests on every `make test`). The
# targets cover the framed-protocol attack surface: request/response body
# decoders and the length-prefixed frame reader.
FUZZTIME ?= 10s
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodeBinRequest -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodeBinResponse -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzReadFrame -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -run='^$$' -fuzz=FuzzDecodeTuple -fuzztime=$(FUZZTIME) ./internal/relation

# End-to-end multi-tenant smoke: boot the real qbcloud binary, run a
# vertical client plus a second tenant against it over TCP (three
# namespaces on one server), check answers against an in-process
# reference and the per-store shutdown stats.
smoke-remote:
	$(GO) build -o bin/qbcloud ./cmd/qbcloud
	$(GO) run ./cmd/qbsmoke -qbcloud bin/qbcloud

# Crash-recovery + control-plane smoke: boot qbcloud with periodic atomic
# snapshots, drive a reconnecting client, SIGKILL the server mid-traffic,
# restart from the state file and require identical answers; then drive
# the qbadmin CLI (ping/list/stats/compact/drop + wrong-key refusal).
smoke-chaos:
	$(GO) build -o bin/qbcloud ./cmd/qbcloud
	$(GO) build -o bin/qbadmin ./cmd/qbadmin
	$(GO) run ./cmd/qbsmoke -phase chaos -qbcloud bin/qbcloud -qbadmin bin/qbadmin

# Load smoke: a seconds-long open-loop run of qbload against a real
# qbcloud binary with a mid-run SIGKILL + snapshot restart, reference
# checks on every read and the -assert gate (nonzero QPS, zero errors,
# sane percentiles). Read-only traffic because the snapshot restore is
# lossy for post-snapshot writes by design. The report goes to an
# untracked path so CI never churns the committed BENCH_load.json
# baseline. Set QBLOAD_BUILDFLAGS=-race to run the whole harness (both
# sides of the wire) under the race detector.
QBLOAD_BUILDFLAGS ?=
smoke-load:
	$(GO) build $(QBLOAD_BUILDFLAGS) -o bin/qbcloud ./cmd/qbcloud
	$(GO) build $(QBLOAD_BUILDFLAGS) -o bin/qbload ./cmd/qbload
	bin/qbload -qbcloud bin/qbcloud -tenants 2 -clients 3 -rate 300 -duration 4s \
		-read-frac 1 -kill-at 1500ms -restart-after 400ms -check -assert \
		-o bin/BENCH_load.json

# Cache-disabled control arm of smoke-load: the same chaos run with the
# owner-side version cache off (-cache=false), so a regression that only
# the uncached per-query-pull path would hit still fails CI, and the two
# runs together cover cached-vs-uncached observational equivalence under
# kill/restart (the -check reference bounds are identical in both).
smoke-load-nocache:
	$(GO) build $(QBLOAD_BUILDFLAGS) -o bin/qbcloud ./cmd/qbcloud
	$(GO) build $(QBLOAD_BUILDFLAGS) -o bin/qbload ./cmd/qbload
	bin/qbload -qbcloud bin/qbcloud -tenants 2 -clients 3 -rate 300 -duration 4s \
		-read-frac 1 -kill-at 1500ms -restart-after 400ms -check -assert \
		-cache=false -o bin/BENCH_load_nocache.json

# Multi-node ring smoke: qbload boots three real qbcloud nodes plus the
# qbring coordinator, drives the ring with reference-checked reads, and
# SIGKILLs node 0 mid-window — failover must keep every query answering
# and anti-entropy must bring the restarted node back, with the -assert
# gate (nonzero QPS, zero errors, zero check failures) enforcing it.
# Read-only traffic for the same snapshot-lossiness reason as smoke-load.
# Set QBLOAD_BUILDFLAGS=-race to race-instrument all five processes.
smoke-ring:
	$(GO) build $(QBLOAD_BUILDFLAGS) -o bin/qbcloud ./cmd/qbcloud
	$(GO) build $(QBLOAD_BUILDFLAGS) -o bin/qbring ./cmd/qbring
	$(GO) build $(QBLOAD_BUILDFLAGS) -o bin/qbload ./cmd/qbload
	bin/qbload -ring 3 -qbcloud bin/qbcloud -qbring bin/qbring -tenants 2 -clients 3 \
		-rate 300 -duration 4s -read-frac 1 -kill-at 1500ms -restart-after 400ms \
		-check -assert -o bin/BENCH_ring_smoke.json

# Replication overhead trajectory: the same checked workload against one
# direct qbcloud and against a 3-node R=2 ring, merged into the committed
# BENCH_ring.json (single-node arm written first, ring arm appended), so
# the cost of R-way fan-out and routed reads is a tracked number instead
# of folklore.
bench-ring:
	$(GO) build -o bin/qbcloud ./cmd/qbcloud
	$(GO) build -o bin/qbring ./cmd/qbring
	$(GO) build -o bin/qbload ./cmd/qbload
	bin/qbload -qbcloud bin/qbcloud -tenants 4 -clients 4 -rate 300 -duration 10s \
		-read-frac 0.9 -check -run-name qbload-1node -o BENCH_ring.json
	bin/qbload -ring 3 -qbcloud bin/qbcloud -qbring bin/qbring -tenants 4 -clients 4 \
		-rate 300 -duration 10s -read-frac 0.9 -check -run-name qbload-ring3 \
		-append -o BENCH_ring.json

# Static analysis. qbvet (the repo's own go/analysis-style suite: sensleak,
# lockdiscipline, pooldiscipline, cmpconst, nakedclock) is stdlib-only and
# always runs. staticcheck and govulncheck run when installed — CI installs
# the pinned versions above; offline sandboxes skip them with a notice.
lint:
	$(GO) build -o bin/qbvet ./cmd/qbvet
	bin/qbvet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION))"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION))"; \
	fi

# Audit report: qbvet findings + per-package statement coverage, written to
# docs/AUDIT.md. COVER_FLOOR makes the run fail when total coverage drops
# below the recorded baseline (see .github/workflows/ci.yml).
COVER_FLOOR ?= 0
audit:
	$(GO) build -o bin/qbaudit ./cmd/qbaudit
	bin/qbaudit -floor $(COVER_FLOOR)

ci: build lint test race docs fuzz-smoke smoke-remote smoke-chaos smoke-load smoke-load-nocache smoke-ring
