GO ?= go

.PHONY: build test vet race bench bench-remote ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test: vet
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Root-package benchmarks only: they include every paper table/figure plus
# the batch-engine throughput sweep (BenchmarkQueryBatch).
bench:
	$(GO) test -bench=. -benchmem -run='^$$' .

# Remote-backend parallelism headline: queries/sec of QueryBatch against a
# cloud behind net.Pipe and TCP loopback at 1/4/GOMAXPROCS workers.
bench-remote:
	$(GO) test -bench=BenchmarkRemoteQueryBatch -benchmem -run='^$$' .

ci: build test race
