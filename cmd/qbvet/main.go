// Command qbvet is the multichecker driver for the repository's
// domain-specific static-analysis suite (internal/analysis): it loads the
// requested packages, runs every registered analyzer, and exits non-zero
// if any invariant violation is found.
//
// Usage:
//
//	qbvet [-run name[,name]] [-list] [packages]
//
// With no package arguments it checks ./.... The suite machine-checks
// the security and concurrency conventions docs/ARCHITECTURE.md states
// in prose; `make lint` runs it on every CI build.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/suite"
)

// Suite is the registered analyzer set, in reporting order.
var Suite = suite.Analyzers

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: qbvet [-run name[,name]] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range Suite {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range Suite {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := Suite
	if *run != "" {
		want := make(map[string]bool)
		for _, name := range strings.Split(*run, ",") {
			want[strings.TrimSpace(name)] = true
		}
		analyzers = nil
		for _, a := range Suite {
			if want[a.Name] {
				analyzers = append(analyzers, a)
			}
		}
		if len(analyzers) == 0 {
			fmt.Fprintf(os.Stderr, "qbvet: no analyzer matches -run %q\n", *run)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	loader := analysis.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbvet:", err)
		os.Exit(2)
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbvet:", err)
		os.Exit(2)
	}

	cwd, _ := os.Getwd()
	for _, d := range diags {
		pos := d.Pos
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
				pos.Filename = rel
			}
		}
		fmt.Printf("%s: %s: %s\n", pos, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "qbvet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
