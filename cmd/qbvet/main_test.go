package main

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// TestSuiteCleanOnRepo runs the full qbvet suite over the repository's
// own tree: the codebase must satisfy every invariant it preaches.
func TestSuiteCleanOnRepo(t *testing.T) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))
	pkgs, err := analysis.NewLoader(root).Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run(pkgs, Suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
