// Command qbbench regenerates every table and figure of the paper's
// evaluation. By default it runs laptop-scale configurations; -full uses
// the paper's dataset sizes (150K/1.5M/4.5M tuples), which takes
// considerably longer.
//
// Usage:
//
//	qbbench [-exp all|fig5|fig6a|fig6b|fig6c|table2|table4|table6|security|metadata|insert|batch] [-full] [-seed N]
//
// -cpuprofile/-memprofile write pprof profiles of the selected experiments
// (see docs/BENCHMARKS.md for the analysis workflow).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, fig5, fig6a, fig6b, fig6c, table2, table4, table6, security, metadata, insert, batch)")
	full := flag.Bool("full", false, "use the paper's dataset sizes (slow)")
	seed := flag.Int64("seed", 1, "seed for data generation and binning")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile of the run here (pprof)")
	memProf := flag.String("memprofile", "", "write a heap profile at exit here (pprof)")
	flag.Parse()

	err := withProfiles(*cpuProf, *memProf, func() error {
		return run(*exp, *full, *seed)
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbbench:", err)
		os.Exit(1)
	}
}

// withProfiles runs f under an optional CPU profile and writes an optional
// heap profile once f returns.
func withProfiles(cpuPath, memPath string, f func() error) error {
	if cpuPath != "" {
		cf, err := os.Create(cpuPath)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			cf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			cf.Close()
			fmt.Fprintf(os.Stderr, "qbbench: wrote CPU profile %s\n", cpuPath)
		}()
	}
	if memPath != "" {
		defer func() {
			mf, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qbbench: memprofile:", err)
				return
			}
			runtime.GC() // up-to-date allocation data
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "qbbench: memprofile:", err)
			}
			mf.Close()
			fmt.Fprintf(os.Stderr, "qbbench: wrote heap profile %s\n", memPath)
		}()
	}
	return f()
}

func run(exp string, full bool, seed int64) error {
	all := exp == "all"
	out := os.Stdout

	if all || exp == "table2" {
		naive, qb, err := experiments.TablesIIandIII()
		if err != nil {
			return err
		}
		naive.Fprint(out)
		qb.Fprint(out)
	}
	if all || exp == "table4" {
		tab, err := experiments.TableIVandFigure4()
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}
	if all || exp == "fig5" {
		experiments.FigureV().Fprint(out)
	}
	if all || exp == "fig6a" {
		experiments.Figure6a().Fprint(out)
	}
	if all || exp == "fig6b" {
		spec := experiments.DefaultFig6b()
		spec.Seed = seed
		if full {
			spec.Sizes = []int{150_000, 1_500_000, 4_500_000}
		}
		tab, err := experiments.Figure6b(spec)
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}
	if all || exp == "fig6c" {
		spec := experiments.DefaultFig6c()
		spec.Seed = seed
		if full {
			spec.Tuples, spec.DistinctValues, spec.Queries = 600_000, 36_000, 16
		}
		tab, err := experiments.Figure6c(spec)
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}
	if all || exp == "table6" {
		tab, err := experiments.TableVI()
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}
	if all || exp == "security" {
		tab, err := experiments.SecurityAblation(seed)
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}
	if all || exp == "metadata" {
		n := 10_000
		if full {
			n = 6_000_000
		}
		tab, err := experiments.MetadataSizes(n, seed)
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}
	if all || exp == "insert" {
		n, k := 5_000, 20
		if full {
			n, k = 500_000, 200
		}
		tab, err := experiments.InsertCost(n, k, seed)
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}

	if all || exp == "batch" {
		spec := experiments.DefaultBatch()
		spec.Seed = seed
		if full {
			spec.Tuples, spec.DistinctValues, spec.Queries = 600_000, 36_000, 1024
		}
		tab, err := experiments.BatchThroughput(spec)
		if err != nil {
			return err
		}
		tab.Fprint(out)
	}

	switch exp {
	case "all", "fig5", "fig6a", "fig6b", "fig6c", "table2", "table4", "table6", "security", "metadata", "insert", "batch":
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
}
