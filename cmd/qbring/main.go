// Command qbring runs the multi-node ring coordinator: the control plane
// that places namespaces across a fixed set of qbcloud nodes with R-way
// replication, probes node health, and runs the anti-entropy repair loop
// that catches lagging or rejoining replicas up to their peers.
//
// Usage:
//
//	qbring -addr :7050 -nodes host1:7040,host2:7040,host3:7040
//	       [-replicas 2] [-ring-token SECRET]
//	       [-health-every 500ms] [-repair-every 1s]
//
// Point clients at it with repro.Config{Ring: "host:7050"}: each client
// pulls the placement directory once (revalidating with a conditional
// fetch), then talks to the data nodes directly — the coordinator is off
// the data path, so its own downtime only pauses repair and directory
// refresh, never queries. -ring-token must match the nodes' -ring-token
// for repair transfer to be admitted.
//
// Placement is a pure function of the -nodes list (consistent hashing
// with virtual nodes), so every qbring over the same list computes the
// same placement; run one per ring.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/ring"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7050", "listen address for the directory service")
	nodes := flag.String("nodes", "", "comma-separated qbcloud addresses forming the ring (required)")
	replicas := flag.Int("replicas", 2, "replication factor R (clamped to the node count)")
	ringToken := flag.String("ring-token", "", "cluster secret matching the nodes' -ring-token; authorises repair transfer")
	healthEvery := flag.Duration("health-every", 500*time.Millisecond, "node liveness probe interval")
	repairEvery := flag.Duration("repair-every", time.Second, "anti-entropy repair sweep interval")
	flag.Parse()
	if err := run(*addr, *nodes, *replicas, *ringToken, *healthEvery, *repairEvery); err != nil {
		fmt.Fprintln(os.Stderr, "qbring:", err)
		os.Exit(1)
	}
}

func run(addr, nodes string, replicas int, ringToken string, healthEvery, repairEvery time.Duration) error {
	var nodeList []string
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			nodeList = append(nodeList, n)
		}
	}
	if len(nodeList) == 0 {
		return fmt.Errorf("-nodes is required (comma-separated qbcloud addresses)")
	}

	cfg := ring.Config{
		Nodes:       nodeList,
		Replicas:    replicas,
		HealthEvery: healthEvery,
		RepairEvery: repairEvery,
		Logf:        log.New(os.Stdout, "", log.LstdFlags).Printf,
	}
	if ringToken != "" {
		cfg.RingToken = []byte(ringToken)
	}
	co, err := ring.New(cfg)
	if err != nil {
		return err
	}

	// The directory is served over the ordinary wire protocol by a Cloud
	// that hosts no stores — clients just call the ring-directory op on it.
	srv := wire.NewCloud()
	srv.SetRingDirectory(co.DirectoryBlob)
	srv.SetRingRepair(func(ns string) error {
		co.RepairNamespace(ns)
		return nil
	})

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("qbring: serving on %s (%d nodes, R=%d)\n", lis.Addr(), len(nodeList), replicas)

	co.Run()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		co.Stop()
		st := co.Stats()
		fmt.Printf("qbring: repairs: %d tail(s), %d snapshot(s), %d row(s)\n", st.Tails, st.Snapshots, st.Rows)
		os.Exit(0)
	}()
	return srv.Serve(lis)
}
