// Command qbdemo walks through the paper's running example (the Employee
// relation of Figure 1): it partitions the relation by sensitivity, shows
// the bins QB builds, then contrasts the adversarial view of naive
// partitioned execution (Example 2 / Table II) with QB's (Table III).
package main

import (
	"fmt"
	"os"

	"repro"
	"repro/internal/adversary"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "qbdemo:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("Employee relation (Figure 1):")
	emp := workload.Employee()
	for _, t := range emp.Tuples {
		sens := ""
		if workload.EmployeeSensitive(t) {
			sens = "   <- sensitive (Defense)"
		}
		fmt.Printf("  t%d: %v%s\n", t.ID+1, t.Values, sens)
	}

	seed := uint64(42)
	mk := func() (*repro.Client, error) {
		c, err := repro.NewClient(repro.Config{
			MasterKey: []byte("demo master key"),
			Attr:      "EId",
			Seed:      &seed,
		})
		if err != nil {
			return nil, err
		}
		return c, c.Outsource(workload.Employee(), workload.EmployeeSensitive)
	}

	client, err := mk()
	if err != nil {
		return err
	}
	b := client.Binning()
	fmt.Printf("\nQB binning: %d sensitive bins x %d non-sensitive bins, %d fake tuples, metadata %d bytes\n",
		b.SensitiveBins, b.NonSensitiveBins, b.FakeTuples, b.MetadataBytes)

	queries := []string{"E259", "E101", "E199"}

	fmt.Println("\n--- Naive partitioned execution (Example 2) ---")
	naive, err := mk()
	if err != nil {
		return err
	}
	for _, q := range queries {
		ts, err := naive.QueryNaive(repro.Str(q))
		if err != nil {
			return err
		}
		fmt.Printf("  query %s -> %d tuples\n", q, len(ts))
	}
	res := adversary.InferenceAttack(naive.AdversarialViews())
	fmt.Println("  adversary's inference attack concludes:")
	for _, q := range queries {
		fmt.Printf("    %s: %v\n", q, res.ByValue[repro.Str(q).Key()])
	}

	fmt.Println("\n--- Query binning (Table III) ---")
	for _, q := range queries {
		ts, err := client.Query(repro.Str(q))
		if err != nil {
			return err
		}
		fmt.Printf("  query %s -> %d tuples\n", q, len(ts))
	}
	res = adversary.InferenceAttack(client.AdversarialViews())
	fmt.Printf("  adversary's inference attack concludes: %d classifications, %d ambiguous views\n",
		len(res.ByValue), res.Ambiguous)
	for i, sz := range adversary.AnonymitySetSizes(client.AdversarialViews()) {
		fmt.Printf("    view %d: query value hides among %d clear-text candidates (plus the encrypted bin)\n", i, sz)
	}
	fmt.Println("\nQB answers every query correctly while the cloud learns nothing it did not already know.")
	return nil
}
