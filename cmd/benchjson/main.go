// Command benchjson converts `go test -bench` output into a stable,
// machine-readable JSON document. It reads the benchmark text from stdin
// (tee the benchmark run through it to keep the human-readable output),
// extracts every result line — including custom metrics such as the
// suites' queries/sec — and writes one JSON object per benchmark:
//
//	go test -bench BenchmarkRemoteQueryBatch -benchmem -run '^$' . \
//	  | tee /dev/stderr | benchjson -o BENCH_remote.json
//
// The output shape is
//
//	{
//	  "generated_unix": 1730000000,
//	  "go_os": "linux", "go_arch": "amd64", "gomaxprocs": 1,
//	  "benchmarks": [
//	    {"name": "BenchmarkRemoteQueryBatch/pipe/workers=4",
//	     "iterations": 30, "ns_per_op": 1760290,
//	     "queries_per_sec": 145444,
//	     "bytes_per_op": 1783708, "allocs_per_op": 3710}, ...
//	  ]
//	}
//
// Metric keys are normalised (`queries/sec` -> `queries_per_sec`,
// `B/op` -> `bytes_per_op`, `allocs/op` -> `allocs_per_op`, any other
// `x/y` unit -> `x_per_y`) so dashboards can index them without parsing.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one benchmark line.
type Result struct {
	Name       string `json:"name"`
	Iterations int64  `json:"iterations"`
	// Metrics holds every reported metric keyed by its normalised unit
	// (ns_per_op, queries_per_sec, bytes_per_op, allocs_per_op, ...).
	Metrics map[string]float64 `json:"-"`
}

// MarshalJSON flattens Metrics into the object so consumers read
// `bench.ns_per_op` instead of `bench.metrics["ns_per_op"]`.
func (r Result) MarshalJSON() ([]byte, error) {
	flat := make(map[string]any, len(r.Metrics)+2)
	flat["name"] = r.Name
	flat["iterations"] = r.Iterations
	for k, v := range r.Metrics {
		flat[k] = v
	}
	return json.Marshal(flat)
}

// Report is the whole document.
type Report struct {
	GeneratedUnix int64    `json:"generated_unix"`
	GoOS          string   `json:"go_os"`
	GoArch        string   `json:"go_arch"`
	GoMaxProcs    int      `json:"gomaxprocs"`
	Benchmarks    []Result `json:"benchmarks"`
}

// normaliseUnit maps a benchmark unit to a JSON-friendly key.
func normaliseUnit(unit string) string {
	switch unit {
	case "ns/op":
		return "ns_per_op"
	case "B/op":
		return "bytes_per_op"
	case "allocs/op":
		return "allocs_per_op"
	}
	return strings.NewReplacer("/", "_per_", "-", "_").Replace(unit)
}

// parseLine parses one `BenchmarkX-N  iters  value unit [value unit]...`
// line; ok is false for non-benchmark lines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	// Strip the -GOMAXPROCS suffix go test appends to the name.
	if i := strings.LastIndex(r.Name, "-"); i > 0 {
		if _, err := strconv.Atoi(r.Name[i+1:]); err == nil {
			r.Name = r.Name[:i]
		}
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		r.Metrics[normaliseUnit(fields[i+1])] = v
	}
	if len(r.Metrics) == 0 {
		return Result{}, false
	}
	return r, true
}

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	flag.Parse()

	rep := Report{
		GeneratedUnix: time.Now().Unix(),
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := parseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
