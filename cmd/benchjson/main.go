// Command benchjson converts `go test -bench` output into the stable,
// machine-readable JSON document defined by internal/benchfmt. It reads
// the benchmark text from stdin (tee the benchmark run through it to keep
// the human-readable output), extracts every result line — including
// custom metrics such as the suites' queries/sec — and writes one JSON
// object per benchmark:
//
//	go test -bench BenchmarkRemoteQueryBatch -benchmem -run '^$' . \
//	  | tee /dev/stderr | benchjson -o BENCH_remote.json
//
// The output shape is
//
//	{
//	  "generated_unix": 1730000000,
//	  "go_os": "linux", "go_arch": "amd64", "gomaxprocs": 1,
//	  "benchmarks": [
//	    {"name": "BenchmarkRemoteQueryBatch/pipe/workers=4",
//	     "iterations": 30, "ns_per_op": 1760290,
//	     "queries_per_sec": 145444,
//	     "bytes_per_op": 1783708, "allocs_per_op": 3710}, ...
//	  ]
//	}
//
// Metric keys are normalised (`queries/sec` -> `queries_per_sec`,
// `B/op` -> `bytes_per_op`, `allocs/op` -> `allocs_per_op`, any other
// `x/y` unit -> `x_per_y`) so dashboards can index them without parsing.
// cmd/qbload emits its open-loop load reports (BENCH_load.json) in the
// same schema; see docs/BENCHMARKS.md for the trajectory convention.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/benchfmt"
)

func main() {
	out := flag.String("o", "", "write JSON here (default stdout)")
	flag.Parse()

	rep := benchfmt.Report{
		GeneratedUnix: time.Now().Unix(),
		GoOS:          runtime.GOOS,
		GoArch:        runtime.GOARCH,
		GoMaxProcs:    runtime.GOMAXPROCS(0),
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if r, ok := benchfmt.ParseLine(sc.Text()); ok {
			rep.Benchmarks = append(rep.Benchmarks, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	enc, err := rep.Encode()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: encode: %v\n", err)
		os.Exit(1)
	}
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
