// Command qbsmoke is the end-to-end smoke test behind `make smoke-remote`:
// it boots a real qbcloud binary as a separate process, runs a vertical
// client and a second tenant against it over TCP — two-plus namespaces
// through one server — and checks every answer against an in-process
// reference. It exits non-zero on any mismatch, so CI catches a broken
// binary or protocol even when unit tests (which link the server in
// process) still pass.
//
// Usage:
//
//	qbsmoke -qbcloud path/to/qbcloud
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	bin := flag.String("qbcloud", "bin/qbcloud", "path to the qbcloud binary to boot")
	flag.Parse()
	if err := run(*bin); err != nil {
		fmt.Fprintln(os.Stderr, "qbsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("qbsmoke: OK")
}

// cloudOutput collects everything the qbcloud process prints; one reader
// goroutine owns the pipe, so the address scan and the final stats check
// never race over the stream.
type cloudOutput struct {
	mu   sync.Mutex
	buf  strings.Builder
	done chan struct{} // closed at EOF
}

func (o *cloudOutput) String() string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.buf.String()
}

// bootCloud starts the qbcloud binary on an ephemeral port and returns
// the address it reports, the process, and its collected output.
func bootCloud(bin string) (string, *exec.Cmd, *cloudOutput, error) {
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	pipe, err := cmd.StdoutPipe()
	if err != nil {
		return "", nil, nil, err
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		return "", nil, nil, fmt.Errorf("starting %s: %w", bin, err)
	}
	// qbcloud prints "qbcloud: serving on 127.0.0.1:PORT" once listening.
	out := &cloudOutput{done: make(chan struct{})}
	addrCh := make(chan string, 1)
	go func() {
		defer close(out.done)
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			out.mu.Lock()
			out.buf.WriteString(line)
			out.buf.WriteByte('\n')
			out.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "qbcloud: serving on "); ok {
				select {
				case addrCh <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return addr, cmd, out, nil
	case <-out.done:
		cmd.Process.Kill()
		return "", nil, nil, fmt.Errorf("%s exited before reporting its address", bin)
	case <-time.After(10 * time.Second):
		cmd.Process.Kill()
		return "", nil, nil, fmt.Errorf("%s did not report an address within 10s", bin)
	}
}

func run(bin string) error {
	addr, cmd, out, err := bootCloud(bin)
	if err != nil {
		return err
	}
	defer cmd.Process.Kill()
	fmt.Printf("qbsmoke: qbcloud up on %s\n", addr)

	var s uint64 = 424242
	baseCfg := repro.Config{
		MasterKey: []byte("smoke master key"),
		Attr:      "EId",
		Seed:      &s,
	}
	emp := workload.Employee()
	queries := []string{"E101", "E259", "E199", "E152", "E000"}

	// Namespace pair 1+2: a vertical client (residual rows + sensitive
	// columns) on the booted qbcloud, vs the in-process reference.
	localV, err := repro.NewVerticalClient(baseCfg, []string{"SSN"})
	if err != nil {
		return err
	}
	remoteCfg := baseCfg
	remoteCfg.CloudAddr = addr
	remoteCfg.Store = "smoke-employee"
	remoteV, err := repro.NewVerticalClient(remoteCfg, []string{"SSN"})
	if err != nil {
		return fmt.Errorf("vertical client over the wire: %w", err)
	}
	defer remoteV.Close()
	if err := localV.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		return err
	}
	if err := remoteV.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		return fmt.Errorf("vertical outsource over the wire: %w", err)
	}
	for _, eid := range queries {
		want, err := localV.Query(repro.Str(eid))
		if err != nil {
			return err
		}
		got, err := remoteV.Query(repro.Str(eid))
		if err != nil {
			return fmt.Errorf("vertical Query(%s) over the wire: %w", eid, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("vertical Query(%s) = %v, want %v", eid, got, want)
		}
	}
	fmt.Println("qbsmoke: vertical client matches in-process reference")

	// Namespace 3: a second tenant on the same server, different keys,
	// fully sensitive relation.
	tenantCfg := repro.Config{
		MasterKey: []byte("smoke tenant b"),
		Attr:      "EId",
		Seed:      &s,
		CloudAddr: addr,
		Store:     "smoke-tenant-b",
	}
	tenant, err := repro.NewClient(tenantCfg)
	if err != nil {
		return err
	}
	defer tenant.Close()
	if err := tenant.Outsource(emp.Clone(), func(repro.Tuple) bool { return true }); err != nil {
		return fmt.Errorf("tenant outsource: %w", err)
	}
	for _, eid := range queries {
		want, _ := emp.Select("EId", repro.Str(eid))
		got, err := tenant.Query(repro.Str(eid))
		if err != nil {
			return fmt.Errorf("tenant Query(%s): %w", eid, err)
		}
		if len(got) != len(want) {
			return fmt.Errorf("tenant Query(%s) = %d tuples, want %d", eid, len(got), len(want))
		}
	}
	fmt.Println("qbsmoke: second tenant namespace answers correctly")

	// Shut the server down and check its per-store accounting mentions
	// all three namespaces.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	select {
	case <-out.done:
	case <-time.After(10 * time.Second):
		return fmt.Errorf("qbcloud did not exit within 10s of SIGTERM")
	}
	if err := cmd.Wait(); err != nil {
		return fmt.Errorf("qbcloud exit: %w (output: %s)", err, out)
	}
	for _, ns := range []string{"smoke-employee", "smoke-employee/columns", "smoke-tenant-b"} {
		if !strings.Contains(out.String(), ns) {
			return fmt.Errorf("qbcloud shutdown stats missing namespace %q:\n%s", ns, out)
		}
	}
	fmt.Println("qbsmoke: qbcloud reported per-store stats for all namespaces")
	return nil
}
