// Command qbsmoke is the end-to-end smoke test behind `make smoke-remote`
// and `make smoke-chaos`: it boots a real qbcloud binary as a separate
// process and drives it over TCP, checking every answer against an
// in-process reference. It exits non-zero on any mismatch, so CI catches
// a broken binary or protocol even when unit tests (which link the server
// in process) still pass.
//
// Phases:
//
//	-phase tenants (default): a vertical client plus a second tenant —
//	    three namespaces through one server — plus per-store shutdown
//	    stats.
//	-phase chaos: crash recovery and the control plane. Boots qbcloud
//	    with -state and -snapshot-every, outsources through a
//	    Config.Reconnect client, SIGKILLs the server mid-traffic,
//	    restarts it from the state file on the same port, and requires
//	    the same client to finish with answers identical to the
//	    in-process reference; then drives the qbadmin binary (ping,
//	    list, stats, compact, drop, and a wrong-key refusal) against
//	    the survivor.
//
// Usage:
//
//	qbsmoke -qbcloud path/to/qbcloud [-qbadmin path/to/qbadmin] [-phase tenants|chaos]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"reflect"
	"strings"
	"time"

	"repro"
	"repro/internal/loadgen"
	"repro/internal/workload"
)

func main() {
	bin := flag.String("qbcloud", "bin/qbcloud", "path to the qbcloud binary to boot")
	adminBin := flag.String("qbadmin", "bin/qbadmin", "path to the qbadmin binary (chaos phase)")
	phase := flag.String("phase", "tenants", "which smoke phase to run: tenants or chaos")
	flag.Parse()
	var err error
	switch *phase {
	case "tenants":
		err = run(*bin)
	case "chaos":
		err = runChaos(*bin, *adminBin)
	default:
		err = fmt.Errorf("unknown -phase %q", *phase)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbsmoke: FAIL:", err)
		os.Exit(1)
	}
	fmt.Println("qbsmoke: OK")
}

func run(bin string) error {
	// loadgen.CloudProc owns the boot-scan/kill/restart machinery; it is
	// shared with cmd/qbload so the chaos phases of both harnesses drive
	// the binary the same way.
	srv, err := loadgen.BootCloud(bin)
	if err != nil {
		return err
	}
	defer srv.Kill()
	addr := srv.Addr
	fmt.Printf("qbsmoke: qbcloud up on %s\n", addr)

	var s uint64 = 424242
	baseCfg := repro.Config{
		MasterKey: []byte("smoke master key"),
		Attr:      "EId",
		Seed:      &s,
	}
	emp := workload.Employee()
	queries := []string{"E101", "E259", "E199", "E152", "E000"}

	// Namespace pair 1+2: a vertical client (residual rows + sensitive
	// columns) on the booted qbcloud, vs the in-process reference.
	localV, err := repro.NewVerticalClient(baseCfg, []string{"SSN"})
	if err != nil {
		return err
	}
	remoteCfg := baseCfg
	remoteCfg.CloudAddr = addr
	remoteCfg.Store = "smoke-employee"
	remoteV, err := repro.NewVerticalClient(remoteCfg, []string{"SSN"})
	if err != nil {
		return fmt.Errorf("vertical client over the wire: %w", err)
	}
	defer remoteV.Close()
	if err := localV.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		return err
	}
	if err := remoteV.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		return fmt.Errorf("vertical outsource over the wire: %w", err)
	}
	for _, eid := range queries {
		want, err := localV.Query(repro.Str(eid))
		if err != nil {
			return err
		}
		got, err := remoteV.Query(repro.Str(eid))
		if err != nil {
			return fmt.Errorf("vertical Query(%s) over the wire: %w", eid, err)
		}
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("vertical Query(%s) = %v, want %v", eid, got, want)
		}
	}
	fmt.Println("qbsmoke: vertical client matches in-process reference")

	// Namespace 3: a second tenant on the same server, different keys,
	// fully sensitive relation.
	tenantCfg := repro.Config{
		MasterKey: []byte("smoke tenant b"),
		Attr:      "EId",
		Seed:      &s,
		CloudAddr: addr,
		Store:     "smoke-tenant-b",
	}
	tenant, err := repro.NewClient(tenantCfg)
	if err != nil {
		return err
	}
	defer tenant.Close()
	if err := tenant.Outsource(emp.Clone(), func(repro.Tuple) bool { return true }); err != nil {
		return fmt.Errorf("tenant outsource: %w", err)
	}
	for _, eid := range queries {
		want, _ := emp.Select("EId", repro.Str(eid))
		got, err := tenant.Query(repro.Str(eid))
		if err != nil {
			return fmt.Errorf("tenant Query(%s): %w", eid, err)
		}
		if len(got) != len(want) {
			return fmt.Errorf("tenant Query(%s) = %d tuples, want %d", eid, len(got), len(want))
		}
	}
	fmt.Println("qbsmoke: second tenant namespace answers correctly")

	// Shut the server down and check its per-store accounting mentions
	// all three namespaces.
	if err := srv.Stop(); err != nil {
		return err
	}
	if err := srv.WaitExit(10 * time.Second); err != nil {
		return err
	}
	for _, ns := range []string{"smoke-employee", "smoke-employee/columns", "smoke-tenant-b"} {
		if !strings.Contains(srv.Output(), ns) {
			return fmt.Errorf("qbcloud shutdown stats missing namespace %q:\n%s", ns, srv.Output())
		}
	}
	fmt.Println("qbsmoke: qbcloud reported per-store stats for all namespaces")
	return nil
}

// qbadmin runs the qbadmin binary and returns its combined output;
// wantFail inverts the exit-status expectation (refusal tests).
func qbadmin(adminBin string, wantFail bool, args ...string) (string, error) {
	out, err := exec.Command(adminBin, args...).CombinedOutput()
	if wantFail && err == nil {
		return string(out), fmt.Errorf("qbadmin %v succeeded, expected refusal (output: %s)", args, out)
	}
	if !wantFail && err != nil {
		return string(out), fmt.Errorf("qbadmin %v: %w (output: %s)", args, err, out)
	}
	return string(out), nil
}

// runChaos is the crash-recovery and control-plane phase: SIGKILL a live
// qbcloud under a reconnecting client, restart it from its periodic
// snapshot, verify observational equivalence with an in-process
// reference, then administer the survivor with qbadmin.
func runChaos(bin, adminBin string) error {
	dir, err := os.MkdirTemp("", "qbsmoke-chaos-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	state := dir + "/state.gob"

	srv, err := loadgen.BootCloud(bin, "-state", state, "-snapshot-every", "150ms")
	if err != nil {
		return err
	}
	defer srv.Kill()
	addr := srv.Addr
	fmt.Printf("qbsmoke: qbcloud up on %s (state=%s, snapshots every 150ms)\n", addr, state)

	var s uint64 = 535353
	masterKey := "chaos master key"
	baseCfg := repro.Config{
		MasterKey: []byte(masterKey),
		Attr:      "EId",
		Seed:      &s,
	}
	emp := workload.Employee()
	queries := []string{"E101", "E259", "E199", "E152", "E000"}

	local, err := repro.NewClient(baseCfg)
	if err != nil {
		return err
	}
	remoteCfg := baseCfg
	remoteCfg.CloudAddr = addr
	remoteCfg.Store = "chaos-tenant"
	remoteCfg.Reconnect = true
	remote, err := repro.NewClient(remoteCfg)
	if err != nil {
		return err
	}
	defer remote.Close()
	if err := local.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		return err
	}
	if err := remote.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		return fmt.Errorf("outsource over the wire: %w", err)
	}
	// A scratch namespace for qbadmin's destructive commands.
	scratchCfg := repro.Config{
		MasterKey: []byte("scratch key"), Attr: "EId", Seed: &s,
		CloudAddr: addr, Store: "chaos-scratch",
	}
	scratch, err := repro.NewClient(scratchCfg)
	if err != nil {
		return err
	}
	defer scratch.Close()
	if err := scratch.Outsource(emp.Clone(), func(repro.Tuple) bool { return true }); err != nil {
		return err
	}
	check := func(when string) error {
		for _, eid := range queries {
			want, err := local.Query(repro.Str(eid))
			if err != nil {
				return err
			}
			got, err := remote.Query(repro.Str(eid))
			if err != nil {
				return fmt.Errorf("%s: Query(%s): %w", when, eid, err)
			}
			if !reflect.DeepEqual(got, want) {
				return fmt.Errorf("%s: Query(%s) = %v, want %v", when, eid, got, want)
			}
		}
		return nil
	}
	if err := check("pre-kill"); err != nil {
		return err
	}
	outsourced := time.Now()

	// Wait for a background snapshot that certainly started after the
	// outsourced state settled (saves are atomic, ticks every 150ms).
	for {
		if fi, err := os.Stat(state); err == nil && fi.ModTime().After(outsourced.Add(200*time.Millisecond)) {
			break
		}
		if time.Since(outsourced) > 15*time.Second {
			return fmt.Errorf("no background snapshot of %s within 15s", state)
		}
		time.Sleep(25 * time.Millisecond)
	}
	fmt.Println("qbsmoke: background snapshot captured, sending SIGKILL")

	// The crash: no shutdown save, no warning. Everything after this line
	// leans on the periodic snapshot and the reconnecting client.
	if err := srv.Kill(); err != nil {
		return err
	}
	if err := srv.WaitExit(10 * time.Second); err != nil {
		return err
	}

	srv2, err := loadgen.BootCloud(bin, "-state", state, "-addr", addr)
	if err != nil {
		return fmt.Errorf("restarting qbcloud: %w", err)
	}
	defer srv2.Kill()
	if srv2.Addr != addr {
		return fmt.Errorf("restarted qbcloud on %s, want %s", srv2.Addr, addr)
	}
	if !strings.Contains(srv2.Output(), "restored state") {
		return fmt.Errorf("restarted qbcloud did not restore state:\n%s", srv2.Output())
	}
	fmt.Printf("qbsmoke: qbcloud restarted on %s from %s\n", addr, state)

	// The SAME client object, across the crash: reconnect, resync, same
	// answers.
	if err := check("post-restart"); err != nil {
		return err
	}
	fmt.Println("qbsmoke: reconnecting client survived SIGKILL+restart with identical answers")

	// Control-plane drive against the survivor.
	if _, err := qbadmin(adminBin, false, "-addr", addr, "ping"); err != nil {
		return err
	}
	list, err := qbadmin(adminBin, false, "-addr", addr, "list")
	if err != nil {
		return err
	}
	for _, ns := range []string{"chaos-tenant", "chaos-scratch"} {
		if !strings.Contains(list, ns) {
			return fmt.Errorf("qbadmin list missing %q:\n%s", ns, list)
		}
	}
	stats, err := qbadmin(adminBin, false, "-addr", addr, "-master", masterKey, "-store", "chaos-tenant", "stats")
	if err != nil {
		return err
	}
	if !strings.Contains(stats, "enc_rows=") {
		return fmt.Errorf("qbadmin stats output unexpected:\n%s", stats)
	}
	if _, err := qbadmin(adminBin, false, "-addr", addr, "-master", masterKey, "-store", "chaos-tenant", "compact"); err != nil {
		return err
	}
	// The owner token survives the snapshot: a wrong key is refused even
	// after the restart, and the right key can drop its namespace.
	if _, err := qbadmin(adminBin, true, "-addr", addr, "-master", "wrong key", "-store", "chaos-scratch", "drop"); err != nil {
		return err
	}
	if _, err := qbadmin(adminBin, false, "-addr", addr, "-master", "scratch key", "-store", "chaos-scratch", "drop"); err != nil {
		return err
	}
	list, err = qbadmin(adminBin, false, "-addr", addr, "list")
	if err != nil {
		return err
	}
	if strings.Contains(list, "chaos-scratch") {
		return fmt.Errorf("chaos-scratch still listed after drop:\n%s", list)
	}
	// The tenant that was compacted (not dropped) still answers.
	if err := check("post-admin"); err != nil {
		return err
	}
	fmt.Println("qbsmoke: qbadmin ping/list/stats/compact/drop behaved, wrong key refused")

	if err := srv2.Stop(); err != nil {
		return err
	}
	return srv2.WaitExit(10 * time.Second)
}
