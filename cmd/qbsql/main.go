// Command qbsql is an interactive SQL shell over a QB-outsourced relation.
// It preloads the paper's Employee example (or a generated dataset with
// -gen) and executes selections, range queries, aggregates and inserts
// through the secure partitioned client, printing the cost stats of each
// query.
//
//	$ qbsql
//	qb> SELECT FirstName, Dept FROM Employee WHERE EId = 'E259'
//	qb> SELECT COUNT(*) FROM Employee WHERE EId = 'E152'
//	qb> INSERT INTO Employee VALUES ('E900','Zoe','Quinn',900,3,'Design')
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/relation"
	"repro/internal/sqlmini"
	"repro/internal/workload"
)

func main() {
	genTuples := flag.Int("gen", 0, "use a generated integer dataset with this many tuples instead of Employee")
	cloudAddr := flag.String("cloud", "", "address of a remote qbcloud process (default: in-process cloud)")
	flag.Parse()
	if err := run(*genTuples, *cloudAddr); err != nil {
		fmt.Fprintln(os.Stderr, "qbsql:", err)
		os.Exit(1)
	}
}

func run(genTuples int, cloudAddr string) error {
	seed := uint64(2026)
	cfg := repro.Config{
		MasterKey: []byte("qbsql demo key"),
		Seed:      &seed,
		CloudAddr: cloudAddr,
	}

	var (
		db     *sqlmini.DB
		schema relation.Schema
	)
	if genTuples > 0 {
		ds, err := workload.Generate(workload.GenSpec{
			Tuples: genTuples, DistinctValues: genTuples / 10, Alpha: 0.4, Seed: 1,
		})
		if err != nil {
			return err
		}
		cfg.Attr = workload.Attr
		client, err := repro.NewClient(cfg)
		if err != nil {
			return err
		}
		if err := client.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
			return err
		}
		schema = ds.Relation.Schema
		db = sqlmini.NewDB(client, schema, func(relation.Tuple) bool { return false }, ds.Relation.Len())
	} else {
		cfg.Attr = "EId"
		client, err := repro.NewClient(cfg)
		if err != nil {
			return err
		}
		emp := workload.Employee()
		if err := client.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
			return err
		}
		schema = workload.EmployeeSchema
		deptIdx, _ := schema.ColumnIndex("Dept")
		db = sqlmini.NewDB(client, schema,
			func(t relation.Tuple) bool { return t.Values[deptIdx].Str() == "Defense" },
			emp.Len())
	}

	fmt.Printf("qbsql: table %s — searchable attribute queries only; \\q quits\n", schema)
	sc := bufio.NewScanner(os.Stdin)
	fmt.Print("qb> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q` || strings.EqualFold(line, "exit") || strings.EqualFold(line, "quit"):
			return nil
		default:
			res, err := db.Exec(line)
			if err != nil {
				fmt.Println("error:", err)
				break
			}
			printResult(res)
		}
		fmt.Print("qb> ")
	}
	return sc.Err()
}

func printResult(res *sqlmini.Result) {
	if res.Inserted > 0 {
		fmt.Printf("INSERT %d\n", res.Inserted)
		return
	}
	fmt.Println(strings.Join(res.Columns, " | "))
	for _, row := range res.Rows {
		fmt.Println(strings.Join(row, " | "))
	}
	fmt.Printf("(%d rows)\n", len(res.Rows))
}
