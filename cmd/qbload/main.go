// Command qbload is the open-loop load harness: K simulated tenants ×
// M repro.Clients drive a qbcloud with a Zipf-skewed read/write mix on a
// paced arrival schedule, and the run reports p50/p95/p99/max latency
// plus achieved-vs-target QPS per tenant and in aggregate. Latency is
// measured from each op's *scheduled* arrival time, so queueing delay
// behind a saturated server (or a chaos outage) lands in the
// distribution instead of being coordinated-omitted away — see
// docs/BENCHMARKS.md for the methodology.
//
// Four targets, picked by flags:
//
//	(neither)         an in-process cloud per tenant — no sockets, the
//	                  protocol-free upper bound.
//	-addr HOST:PORT   an already-running qbcloud.
//	-qbcloud PATH     boot that binary on a loopback port (with -state
//	                  and -snapshot-every), drive it over TCP, and shut
//	                  it down after the run. Required for chaos.
//	-ring N           boot N qbcloud nodes plus a qbring coordinator
//	                  (-qbring PATH, -replicas R) and drive the ring:
//	                  clients route through placement, writes replicate,
//	                  reads fail over. Requires -qbcloud for the node
//	                  binary.
//
// Chaos: -kill-at D SIGKILLs the booted qbcloud D into the measured
// window — after waiting for a background snapshot that covers the
// outsourced data — and -restart-after D' reboots it from the state
// file on the same address D' later. Reconnecting clients ride through;
// the outage shows up as a latency spike, not as errors. A lossy
// snapshot restore cannot reconcile sensitive writes acknowledged after
// the last snapshot (by design), so chaos runs require -read-frac 1.
// In ring mode the victim is the first data node: the surviving
// replicas keep answering (failover, not reconnect-stall), and after
// the restart the coordinator's anti-entropy repair brings the victim
// back to row parity.
//
// -run-name NAME prefixes the benchmark names in the -o report and
// -append merges into an existing report instead of overwriting, so one
// file can hold several arms (BENCH_ring.json's 1-node vs 3-node).
//
// -check cross-checks every read against the sequential reference
// bounds; -assert exits non-zero unless the run was clean (nonzero ops,
// zero errors, zero check failures, sane percentiles) — that pair is
// what `make smoke-load` runs in CI. -o FILE writes the benchfmt JSON
// consumed by the perf trajectory (BENCH_load.json).
//
// Remote clients enable the owner-side version cache by default;
// -cache=false runs the pre-cache per-query-pull profile (the control arm
// `make smoke-load-nocache` exercises). -cpuprofile/-memprofile write
// pprof profiles of the whole run — see docs/BENCHMARKS.md.
//
// Usage:
//
//	qbload -tenants 4 -clients 4 -rate 500 -duration 10s -o BENCH_load.json
//	qbload -qbcloud bin/qbcloud -read-frac 1 -kill-at 2s -restart-after 500ms -check -assert
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro"
	"repro/internal/benchfmt"
	"repro/internal/loadgen"
)

func main() {
	var (
		tenants  = flag.Int("tenants", 2, "simulated tenants (independent namespaces, K)")
		clients  = flag.Int("clients", 2, "clients per tenant (M; against a remote cloud these resume from the writer's metadata)")
		rate     = flag.Float64("rate", 200, "target open-loop arrival rate per tenant, ops/sec")
		duration = flag.Duration("duration", 5*time.Second, "measured window (ignored when -ops > 0)")
		ops      = flag.Int("ops", 0, "fixed op count per client instead of -duration")
		readFrac = flag.Float64("read-frac", 0.9, "fraction of ops that are point queries (the rest are inserts)")
		zipf     = flag.Float64("zipf", 1.2, "Zipf skew for value selection (<= 1 selects uniform)")
		tuples   = flag.Int("tuples", 2000, "tuples per tenant relation")
		values   = flag.Int("values", 100, "distinct indexed values per tenant")
		alpha    = flag.Float64("alpha", 0.4, "sensitive fraction of each relation")
		assoc    = flag.Float64("assoc", 0.5, "fraction of sensitive values that also keep non-sensitive tuples")
		techName = flag.String("technique", "noind", "sensitive-search technique: noind, detindex or arx")
		addr     = flag.String("addr", "", "drive an already-running qbcloud at this address")
		bin      = flag.String("qbcloud", "", "boot this qbcloud binary and drive it (required for chaos)")
		ringN    = flag.Int("ring", 0, "boot this many qbcloud nodes plus a qbring coordinator and drive the ring (needs -qbcloud and -qbring)")
		ringBin  = flag.String("qbring", "", "qbring binary for -ring mode")
		replicas = flag.Int("replicas", 2, "replication factor for -ring mode")
		conns    = flag.Int("conns", 0, "connection-pool size per client (remote; 0 = library default)")
		workers  = flag.Int("store-workers", 0, "per-namespace dispatch bound for the booted qbcloud (0 = unbounded)")
		killAt   = flag.Duration("kill-at", 0, "SIGKILL the booted qbcloud this long into the measured window (0 = no chaos)")
		restart  = flag.Duration("restart-after", 500*time.Millisecond, "restart the killed qbcloud after this long")
		snapshot = flag.Duration("snapshot-every", 150*time.Millisecond, "background snapshot interval for the booted qbcloud")
		state    = flag.String("state", "", "state file for the booted qbcloud (default: a temp file)")
		maxIF    = flag.Int("max-inflight", 128, "max outstanding ops per client")
		seed     = flag.Uint64("seed", 1, "seed for datasets, op streams and bin permutations")
		check    = flag.Bool("check", false, "cross-check every read against the sequential reference bounds")
		assert   = flag.Bool("assert", false, "exit non-zero unless the run is clean (ops>0, errors=0, checks=0, sane percentiles)")
		out      = flag.String("o", "", "write the benchfmt JSON report here (e.g. BENCH_load.json)")
		runName  = flag.String("run-name", "qbload", "benchmark name prefix in the -o report")
		appendTo = flag.Bool("append", false, "merge this run's series into an existing -o report instead of overwriting")
		cache    = flag.Bool("cache", true, "owner-side version cache (false = per-query column pull, the pre-cache profile)")
		cacheMB  = flag.Int("cache-mb", 0, "owner-side cache budget per client in MiB (0 = library default)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the run here (pprof)")
		memProf  = flag.String("memprofile", "", "write a heap profile at exit here (pprof)")
	)
	flag.Parse()

	stopProf, err := startProfiles(*cpuProf, *memProf)
	if err == nil {
		defer stopProf()
		var tech repro.Technique
		tech, err = parseTechnique(*techName)
		if err == nil {
			err = run(runOpts{
				cfg: loadgen.Config{
					Tenants: *tenants, Clients: *clients, Rate: *rate,
					Duration: *duration, Ops: *ops,
					Gen:    loadgen.GenConfig{ReadFraction: *readFrac, ZipfS: *zipf},
					Tuples: *tuples, DistinctValues: *values,
					Alpha: *alpha, AssocFraction: *assoc,
					Technique: tech, CloudAddr: *addr, CloudConns: *conns,
					DisableCache: !*cache, CacheBytes: *cacheMB << 20,
					Seed: *seed, MaxInFlight: *maxIF, Check: *check,
					Logf: func(format string, args ...any) {
						fmt.Fprintf(os.Stderr, format+"\n", args...)
					},
				},
				bin: *bin, storeWorkers: *workers,
				ringN: *ringN, ringBin: *ringBin, replicas: *replicas,
				killAt: *killAt, restartAfter: *restart,
				snapshotEvery: *snapshot, state: *state,
				assert: *assert, out: *out,
				runName: *runName, appendTo: *appendTo,
			})
		}
		stopProf()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "qbload: FAIL:", err)
		os.Exit(1)
	}
}

// startProfiles starts a CPU profile and arranges a heap profile, either
// optional. The returned stop is idempotent so the happy path can flush
// profiles before exiting and the deferred call stays a no-op.
func startProfiles(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	done := false
	return func() {
		if done {
			return
		}
		done = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			fmt.Fprintf(os.Stderr, "qbload: wrote CPU profile %s\n", cpuPath)
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "qbload: memprofile:", err)
				return
			}
			runtime.GC() // up-to-date allocation data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "qbload: memprofile:", err)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "qbload: wrote heap profile %s\n", memPath)
		}
	}, nil
}

func parseTechnique(name string) (repro.Technique, error) {
	switch strings.ToLower(name) {
	case "noind":
		return repro.TechNoInd, nil
	case "detindex":
		return repro.TechDetIndex, nil
	case "arx":
		return repro.TechArx, nil
	}
	return 0, fmt.Errorf("unknown -technique %q (want noind, detindex or arx)", name)
}

type runOpts struct {
	cfg           loadgen.Config
	bin           string
	storeWorkers  int
	ringN         int
	ringBin       string
	replicas      int
	killAt        time.Duration
	restartAfter  time.Duration
	snapshotEvery time.Duration
	state         string
	assert        bool
	out           string
	runName       string
	appendTo      bool
}

// ringToken is the intra-ring transfer secret the harness configures on
// every booted node and the coordinator; its value is irrelevant as long
// as they match.
const ringToken = "qbload-ring-token"

func run(o runOpts) error {
	if o.killAt > 0 {
		if o.bin == "" {
			return fmt.Errorf("-kill-at needs -qbcloud (chaos owns the server process)")
		}
		if o.cfg.Gen.ReadFraction < 1 {
			// The snapshot restore is lossy by design: a sensitive write
			// acknowledged after the last snapshot cannot be reconciled
			// after the crash, so a write-bearing chaos run would report
			// client-side failures that are really the harness's fault.
			return fmt.Errorf("-kill-at requires -read-frac 1 (snapshot restore is lossy for post-snapshot writes)")
		}
	}
	if o.bin != "" && o.cfg.CloudAddr != "" {
		return fmt.Errorf("-addr and -qbcloud are mutually exclusive")
	}
	if o.ringN > 0 {
		if o.bin == "" || o.ringBin == "" {
			return fmt.Errorf("-ring needs both -qbcloud (node binary) and -qbring (coordinator binary)")
		}
		if o.cfg.CloudAddr != "" {
			return fmt.Errorf("-addr and -ring are mutually exclusive")
		}
	}

	// Boot the server processes if asked, always with state files so a
	// chaos restart has something to restore. victim is the process
	// -kill-at targets; victimState its state file.
	var (
		srv         *loadgen.CloudProc
		victim      *loadgen.CloudProc
		victimState string
		restartArgs []string
	)
	if o.bin != "" && o.ringN == 0 {
		if o.state == "" {
			dir, err := os.MkdirTemp("", "qbload-")
			if err != nil {
				return err
			}
			defer os.RemoveAll(dir)
			o.state = filepath.Join(dir, "state.gob")
		}
		extra := []string{
			"-state", o.state,
			"-snapshot-every", o.snapshotEvery.String(),
		}
		if o.storeWorkers > 0 {
			extra = append(extra, "-store-workers", fmt.Sprint(o.storeWorkers))
		}
		var err error
		if srv, err = loadgen.BootCloud(o.bin, extra...); err != nil {
			return err
		}
		defer srv.Kill()
		o.cfg.CloudAddr = srv.Addr
		o.cfg.Reconnect = true // survive chaos; free otherwise
		victim, victimState = srv, o.state
		restartArgs = []string{"-state", o.state}
		fmt.Fprintf(os.Stderr, "qbload: qbcloud up on %s (state=%s)\n", srv.Addr, o.state)
	}
	if o.ringN > 0 {
		dir, err := os.MkdirTemp("", "qbload-ring-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		nodes := make([]*loadgen.CloudProc, 0, o.ringN)
		addrs := make([]string, 0, o.ringN)
		for i := 0; i < o.ringN; i++ {
			state := filepath.Join(dir, fmt.Sprintf("node%d.gob", i))
			extra := []string{
				"-state", state,
				"-snapshot-every", o.snapshotEvery.String(),
				"-ring-token", ringToken,
			}
			if o.storeWorkers > 0 {
				extra = append(extra, "-store-workers", fmt.Sprint(o.storeWorkers))
			}
			n, err := loadgen.BootCloud(o.bin, extra...)
			if err != nil {
				for _, up := range nodes {
					up.Kill()
				}
				return err
			}
			defer n.Kill()
			nodes = append(nodes, n)
			addrs = append(addrs, n.Addr)
		}
		ring, err := loadgen.BootRing(o.ringBin,
			"-nodes", strings.Join(addrs, ","),
			"-replicas", fmt.Sprint(o.replicas),
			"-ring-token", ringToken,
			"-health-every", "100ms",
			"-repair-every", "250ms",
		)
		if err != nil {
			return err
		}
		defer ring.Kill()
		o.cfg.RingAddr = ring.Addr
		// Chaos kills the first data node: its replicas answer through
		// the outage, and repair catches it up after the restart.
		victim = nodes[0]
		victimState = filepath.Join(dir, "node0.gob")
		restartArgs = []string{
			"-state", victimState,
			"-snapshot-every", o.snapshotEvery.String(),
			"-ring-token", ringToken,
		}
		fmt.Fprintf(os.Stderr, "qbload: ring up on %s (%d nodes: %s, R=%d)\n",
			ring.Addr, o.ringN, strings.Join(addrs, " "), o.replicas)
	}

	// The chaos controller needs to know when setup (outsourcing) ends
	// and the measured window begins; the runner logs one ready line per
	// tenant, so the Logf wrapper counts them.
	loadStart := make(chan time.Time, 1)
	if o.killAt > 0 {
		innerLogf, ready := o.cfg.Logf, 0
		o.cfg.Logf = func(format string, args ...any) {
			innerLogf(format, args...)
			if strings.Contains(format, "ready") {
				if ready++; ready == o.cfg.Tenants {
					loadStart <- time.Now()
				}
			}
		}
	}

	chaosDone := make(chan chaosResult, 1)
	if o.killAt > 0 {
		go func() {
			srv2, err := chaos(o, victim, victimState, restartArgs, loadStart)
			chaosDone <- chaosResult{srv2, err}
		}()
	}

	res, err := loadgen.Run(o.cfg)
	if err != nil {
		return err
	}
	if o.killAt > 0 {
		cr := <-chaosDone
		if cr.srv != nil {
			defer cr.srv.Kill()
		}
		if cr.err != nil {
			return cr.err
		}
	}

	res.WriteTable(os.Stdout)
	if o.out != "" {
		rep := res.ReportNamed(o.runName, o.cfg, time.Now().Unix())
		if o.appendTo {
			if prev, err := os.ReadFile(o.out); err == nil {
				var existing benchfmt.Report
				if err := json.Unmarshal(prev, &existing); err != nil {
					return fmt.Errorf("-append: parsing existing %s: %w", o.out, err)
				}
				rep.Benchmarks = append(existing.Benchmarks, rep.Benchmarks...)
			}
		}
		b, err := rep.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.out, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "qbload: wrote %s\n", o.out)
	}
	if o.assert {
		return assertClean(res)
	}
	return nil
}

type chaosResult struct {
	srv *loadgen.CloudProc // the restarted server, for teardown
	err error
}

// chaos SIGKILLs the victim qbcloud killAt into the measured window —
// but never before a background snapshot has covered the outsourced
// datasets — and reboots it from its state file on the same address
// (with restartArgs carrying the victim's original flags, e.g. the ring
// token in ring mode).
func chaos(o runOpts, victim *loadgen.CloudProc, state string, restartArgs []string, loadStart <-chan time.Time) (*loadgen.CloudProc, error) {
	var start time.Time
	select {
	case start = <-loadStart:
	case <-time.After(2 * time.Minute):
		return nil, fmt.Errorf("chaos: tenants not ready within 2m")
	}

	// A snapshot whose mtime is at least one full interval past the
	// setup point must have *started* after setup finished, so it
	// contains every outsourced tuple.
	covered := start.Add(o.snapshotEvery + 50*time.Millisecond)
	for {
		if fi, err := os.Stat(state); err == nil && fi.ModTime().After(covered) {
			break
		}
		if time.Since(start) > 30*time.Second {
			return nil, fmt.Errorf("chaos: no post-setup snapshot of %s within 30s", state)
		}
		time.Sleep(25 * time.Millisecond)
	}

	if d := time.Until(start.Add(o.killAt)); d > 0 {
		time.Sleep(d)
	}
	fmt.Fprintf(os.Stderr, "qbload: chaos: SIGKILL qbcloud %s %v into the window\n",
		victim.Addr, time.Since(start).Round(time.Millisecond))
	if err := victim.Kill(); err != nil {
		return nil, err
	}
	if err := victim.WaitExit(10 * time.Second); err != nil {
		return nil, err
	}

	time.Sleep(o.restartAfter)
	srv2, err := loadgen.BootCloud(o.bin, append([]string{"-addr", victim.Addr}, restartArgs...)...)
	if err != nil {
		return nil, fmt.Errorf("chaos: restarting qbcloud: %w", err)
	}
	if !strings.Contains(srv2.Output(), "restored state") {
		err := fmt.Errorf("chaos: restarted qbcloud did not restore state:\n%s", srv2.Output())
		return srv2, err
	}
	fmt.Fprintf(os.Stderr, "qbload: chaos: qbcloud restarted on %s from %s\n", srv2.Addr, state)
	return srv2, nil
}

// assertClean is the -assert gate: the smoke-load CI step fails the
// build on any op error, any reference-check violation, or a degenerate
// latency distribution.
func assertClean(res *loadgen.Result) error {
	a := res.Aggregate
	switch {
	case a.Ops == 0:
		return fmt.Errorf("assert: no ops completed")
	case a.Errors != 0:
		return fmt.Errorf("assert: %d op errors", a.Errors)
	case a.ChecksFailed != 0:
		return fmt.Errorf("assert: %d reference-check failures, first: %s", a.ChecksFailed, res.FirstCheckFailure)
	case a.AchievedQPS <= 0:
		return fmt.Errorf("assert: achieved QPS = %g", a.AchievedQPS)
	case a.P50 <= 0 || a.P99 < a.P50 || a.Max < a.P99:
		return fmt.Errorf("assert: implausible percentiles p50=%v p99=%v max=%v", a.P50, a.P99, a.Max)
	}
	return nil
}
