// Command qbcloud runs the untrusted public cloud as a standalone
// process: a registry of named store pairs — one clear-text store for a
// relation's non-sensitive partition plus one encrypted store for its
// sensitive partition per namespace — serving any number of owners over
// the wire protocol. One qbcloud hosts many relations: each client picks
// a namespace with repro.Config{Store: "name"} (empty selects "default"),
// and a vertical client transparently uses a pair of namespaces on one
// server.
//
// Usage:
//
//	qbcloud -addr :7040 [-workers N] [-store-workers N] [-state FILE]
//	        [-snapshot-every DUR] [-stats DUR]
//
// Point a client at it with repro.Config{CloudAddr: "host:7040",
// Store: "tenant"}. The wire protocol is versioned (clients and server
// must speak the same generation; a pre-namespace client is refused with
// an explicit version-mismatch error) and multiplexed: every connection's
// requests are dispatched concurrently through two-level admission — a
// bounded per-connection pool (-workers, default GOMAXPROCS) plus an
// optional per-namespace bound (-store-workers) that keeps one tenant's
// CPU burst from starving tenants sharing the same connection; namespaces
// only lock against themselves, so tenants don't otherwise contend.
//
// -state persists every namespace in one snapshot file (restored at
// start if present, saved on SIGINT/SIGTERM; pre-namespace state files
// load into "default"); -snapshot-every additionally saves it in the
// background every DUR. Every save is atomic (tmp + rename), so a crash
// mid-save never corrupts the state file. -stats prints per-store op/row
// counts every DUR (e.g. 30s); the same table is always printed on
// shutdown. The owner-side control plane (namespace stats/compact/drop,
// owner-authenticated) is driven by cmd/qbadmin.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7040", "listen address")
	state := flag.String("state", "", "state file: restored at start if present, saved on SIGINT/SIGTERM (all namespaces)")
	workers := flag.Int("workers", 0, "concurrent ops dispatched per connection (0 = GOMAXPROCS)")
	storeWorkers := flag.Int("store-workers", 0, "concurrent ops dispatched per namespace across all connections (0 = unbounded)")
	snapshotEvery := flag.Duration("snapshot-every", 0, "also save -state at this interval, atomically (0 = only on shutdown)")
	statsEvery := flag.Duration("stats", 0, "print per-store stats at this interval (0 = only on shutdown)")
	ringToken := flag.String("ring-token", "", "cluster secret authorising intra-ring transfer (snapshot restore, repair append); empty refuses those ops")
	flag.Parse()
	if err := run(*addr, *state, *workers, *storeWorkers, *snapshotEvery, *statsEvery, *ringToken); err != nil {
		fmt.Fprintln(os.Stderr, "qbcloud:", err)
		os.Exit(1)
	}
}

// printStats writes the per-namespace accounting table.
func printStats(cloud *wire.Cloud) {
	stats := cloud.Stats()
	if len(stats) == 0 {
		fmt.Println("qbcloud: no stores yet")
		return
	}
	names := make([]string, 0, len(stats))
	for name := range stats {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("qbcloud: %d store(s):\n", len(names))
	for _, name := range names {
		s := stats[name]
		fmt.Printf("qbcloud:   store %-20s ops=%-8d plain_tuples=%-8d enc_rows=%d\n",
			name, s.Ops, s.PlainTuples, s.EncRows)
	}
}

func run(addr, state string, workers, storeWorkers int, snapshotEvery, statsEvery time.Duration, ringToken string) error {
	cloud := wire.NewCloud()
	cloud.SetConnWorkers(workers)
	cloud.SetStoreWorkers(storeWorkers)
	if ringToken != "" {
		cloud.SetRingToken([]byte(ringToken))
	}
	if state != "" {
		f, err := os.Open(state)
		switch {
		case err == nil:
			restoreErr := cloud.Restore(f)
			f.Close()
			if restoreErr != nil {
				return restoreErr
			}
			fmt.Printf("qbcloud: restored state from %s (%d stores)\n", state, len(cloud.StoreNames()))
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start; the file will be created on shutdown.
		default:
			return err
		}
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("qbcloud: serving on %s\n", lis.Addr())

	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				printStats(cloud)
			}
		}()
	}
	if snapshotEvery > 0 && state != "" {
		// Periodic background snapshots: every save is atomic (tmp +
		// rename inside SaveFile), so a SIGKILL mid-save leaves the
		// previous complete snapshot and a restart loses at most one
		// interval of writes — the crash-recovery story the reconnecting
		// clients lean on.
		go func() {
			for range time.Tick(snapshotEvery) {
				if err := cloud.SaveFile(state); err != nil {
					fmt.Fprintln(os.Stderr, "qbcloud: background snapshot:", err)
				} else {
					fmt.Printf("qbcloud: snapshot saved to %s\n", state)
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		printStats(cloud)
		if state != "" {
			if err := cloud.SaveFile(state); err != nil {
				fmt.Fprintln(os.Stderr, "qbcloud: saving state:", err)
				os.Exit(1)
			}
			fmt.Printf("qbcloud: state saved to %s\n", state)
		}
		os.Exit(0)
	}()
	return cloud.Serve(lis)
}
