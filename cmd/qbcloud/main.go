// Command qbcloud runs the untrusted public cloud as a standalone process:
// it hosts the clear-text store for the non-sensitive partition and the
// encrypted store for the sensitive partition, serving owners over the
// wire protocol.
//
// Usage:
//
//	qbcloud -addr :7040 [-workers N] [-state FILE]
//
// Point a client at it with repro.Config{CloudAddr: "host:7040"}. The
// wire protocol is multiplexed: every connection's requests are
// dispatched concurrently through a bounded worker pool (-workers per
// connection, default GOMAXPROCS), so a single owner running QueryBatch
// gets real server-side parallelism.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", ":7040", "listen address")
	state := flag.String("state", "", "state file: restored at start if present, saved on SIGINT/SIGTERM")
	workers := flag.Int("workers", 0, "concurrent ops dispatched per connection (0 = GOMAXPROCS)")
	flag.Parse()
	if err := run(*addr, *state, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "qbcloud:", err)
		os.Exit(1)
	}
}

func run(addr, state string, workers int) error {
	cloud := wire.NewCloud()
	cloud.SetConnWorkers(workers)
	if state != "" {
		f, err := os.Open(state)
		switch {
		case err == nil:
			restoreErr := cloud.Restore(f)
			f.Close()
			if restoreErr != nil {
				return restoreErr
			}
			fmt.Printf("qbcloud: restored state from %s\n", state)
		case errors.Is(err, fs.ErrNotExist):
			// Fresh start; the file will be created on shutdown.
		default:
			return err
		}
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("qbcloud: serving on %s\n", lis.Addr())

	if state != "" {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			f, err := os.Create(state)
			if err == nil {
				err = cloud.Save(f)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "qbcloud: saving state:", err)
				os.Exit(1)
			}
			fmt.Printf("qbcloud: state saved to %s\n", state)
			os.Exit(0)
		}()
	}
	return cloud.Serve(lis)
}
