// Command qbadmin is the data owner's control-plane CLI against a live
// qbcloud: namespace lifecycle and health, authenticated by the owner's
// master key. Per-namespace operations derive the namespace's owner token
// from the master key (the same derivation the client library uses, so
// whoever outsourced a relation can administer it) and are refused by the
// cloud for any other key: the cloud stores only a hash of the token,
// registered by the namespace's first write.
//
// Usage:
//
//	qbadmin -addr HOST:PORT ping
//	qbadmin -addr HOST:PORT list
//	qbadmin -addr HOST:PORT -master KEY -store NAME stats
//	qbadmin -addr HOST:PORT -master KEY -store NAME compact
//	qbadmin -addr HOST:PORT -master KEY -store NAME drop
//	qbadmin -addr HOST:PORT -master KEY -store NAME -n N set-workers
//
// ping and list need no key (liveness and discovery); stats, compact,
// drop and set-workers are per-namespace and owner-authenticated. drop
// destroys the namespace's clear-text partition, encrypted rows and owner
// registration irrecoverably (modulo cloud snapshots taken before the
// drop). set-workers overrides the namespace's admission bound (the
// server-wide -store-workers default) at runtime: -n N with N > 0 bounds
// the namespace to N concurrent ops, N = 0 lifts the bound for it, and a
// negative N clears the override; the override persists across cloud
// snapshots.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7040", "qbcloud address")
	master := flag.String("master", "", "owner master key (required for stats/compact/drop/set-workers)")
	store := flag.String("store", "", "namespace to administer (\"\" = the default store)")
	workers := flag.Int("n", -1, "set-workers: admission bound (>0 bound, 0 unlimited, <0 clear the override)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: qbadmin -addr HOST:PORT [-master KEY] [-store NAME] [-n N] ping|list|stats|compact|drop|set-workers")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, *master, *store, flag.Arg(0), *workers); err != nil {
		fmt.Fprintln(os.Stderr, "qbadmin:", err)
		os.Exit(1)
	}
}

func run(addr, master, store, cmd string, workers int) error {
	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	// Per-namespace commands authenticate with the owner token derived
	// from the master key — the key itself never crosses the wire.
	token := func() ([]byte, error) {
		if master == "" {
			return nil, fmt.Errorf("%s requires -master (the owner's master key)", cmd)
		}
		return wire.OwnerToken([]byte(master), store), nil
	}

	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Printf("qbadmin: %s is alive (protocol v%d)\n", addr, wire.ProtocolVersion)
	case "list":
		names, err := c.AdminList()
		if err != nil {
			return err
		}
		if len(names) == 0 {
			fmt.Println("qbadmin: no stores")
			return nil
		}
		for _, name := range names {
			fmt.Println(name)
		}
	case "stats":
		tok, err := token()
		if err != nil {
			return err
		}
		s, err := c.AdminStats(store, tok)
		if err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q: ops=%d plain_tuples=%d enc_rows=%d cond_hits=%d workers=%s\n",
			storeLabel(store), s.Ops, s.PlainTuples, s.EncRows, s.CondHits, workersLabel(s.Workers))
	case "compact":
		tok, err := token()
		if err != nil {
			return err
		}
		n, err := c.AdminCompact(store, tok)
		if err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q compacted: %d rows retained\n", storeLabel(store), n)
	case "drop":
		tok, err := token()
		if err != nil {
			return err
		}
		if err := c.AdminDrop(store, tok); err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q dropped\n", storeLabel(store))
	case "set-workers":
		tok, err := token()
		if err != nil {
			return err
		}
		n, err := c.AdminSetWorkers(store, tok, workers)
		if err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q admission bound: %s\n", storeLabel(store), workersLabel(n))
	default:
		return fmt.Errorf("unknown command %q (want ping|list|stats|compact|drop|set-workers)", cmd)
	}
	return nil
}

// workersLabel renders an effective admission bound (0 = unbounded).
func workersLabel(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", n)
}

// storeLabel names the namespace in output ("" is the default store).
func storeLabel(store string) string {
	if store == "" {
		return wire.DefaultStore
	}
	return store
}
