// Command qbadmin is the data owner's control-plane CLI against a live
// qbcloud: namespace lifecycle and health, authenticated by the owner's
// master key. Per-namespace operations derive the namespace's owner token
// from the master key (the same derivation the client library uses, so
// whoever outsourced a relation can administer it) and are refused by the
// cloud for any other key: the cloud stores only a hash of the token,
// registered by the namespace's first write.
//
// Usage:
//
//	qbadmin -addr HOST:PORT ping
//	qbadmin -addr HOST:PORT list
//	qbadmin -addr HOST:PORT -master KEY -store NAME stats
//	qbadmin -addr HOST:PORT -master KEY -store NAME compact
//	qbadmin -addr HOST:PORT -master KEY -store NAME drop
//	qbadmin -addr HOST:PORT -master KEY -store NAME -n N set-workers
//	qbadmin -addr RING_ADDR ring
//
// ping and list need no key (liveness and discovery); stats, compact,
// drop and set-workers are per-namespace and owner-authenticated. ring
// points -addr at a qbring coordinator instead of a qbcloud and prints
// the cluster picture: membership with liveness, and for every hosted
// namespace its replica placement with per-replica row counts and
// version counters, marking replicas whose row counts diverge (the
// anti-entropy repair loop's work queue). drop
// destroys the namespace's clear-text partition, encrypted rows and owner
// registration irrecoverably (modulo cloud snapshots taken before the
// drop). set-workers overrides the namespace's admission bound (the
// server-wide -store-workers default) at runtime: -n N with N > 0 bounds
// the namespace to N concurrent ops, N = 0 lifts the bound for it, and a
// negative N clears the override; the override persists across cloud
// snapshots.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/ring"
	"repro/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7040", "qbcloud address")
	master := flag.String("master", "", "owner master key (required for stats/compact/drop/set-workers)")
	store := flag.String("store", "", "namespace to administer (\"\" = the default store)")
	workers := flag.Int("n", -1, "set-workers: admission bound (>0 bound, 0 unlimited, <0 clear the override)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: qbadmin -addr HOST:PORT [-master KEY] [-store NAME] [-n N] ping|list|stats|compact|drop|set-workers|ring")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*addr, *master, *store, flag.Arg(0), *workers); err != nil {
		fmt.Fprintln(os.Stderr, "qbadmin:", err)
		os.Exit(1)
	}
}

func run(addr, master, store, cmd string, workers int) error {
	c, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	defer c.Close()

	// Per-namespace commands authenticate with the owner token derived
	// from the master key — the key itself never crosses the wire.
	token := func() ([]byte, error) {
		if master == "" {
			return nil, fmt.Errorf("%s requires -master (the owner's master key)", cmd)
		}
		return wire.OwnerToken([]byte(master), store), nil
	}

	switch cmd {
	case "ping":
		if err := c.Ping(); err != nil {
			return err
		}
		fmt.Printf("qbadmin: %s is alive (protocol v%d)\n", addr, wire.ProtocolVersion)
	case "list":
		names, err := c.AdminList()
		if err != nil {
			return err
		}
		if len(names) == 0 {
			fmt.Println("qbadmin: no stores")
			return nil
		}
		for _, name := range names {
			fmt.Println(name)
		}
	case "stats":
		tok, err := token()
		if err != nil {
			return err
		}
		s, err := c.AdminStats(store, tok)
		if err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q: ops=%d plain_tuples=%d enc_rows=%d cond_hits=%d workers=%s\n",
			storeLabel(store), s.Ops, s.PlainTuples, s.EncRows, s.CondHits, workersLabel(s.Workers))
	case "compact":
		tok, err := token()
		if err != nil {
			return err
		}
		n, err := c.AdminCompact(store, tok)
		if err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q compacted: %d rows retained\n", storeLabel(store), n)
	case "drop":
		tok, err := token()
		if err != nil {
			return err
		}
		if err := c.AdminDrop(store, tok); err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q dropped\n", storeLabel(store))
	case "set-workers":
		tok, err := token()
		if err != nil {
			return err
		}
		n, err := c.AdminSetWorkers(store, tok, workers)
		if err != nil {
			return err
		}
		fmt.Printf("qbadmin: store %q admission bound: %s\n", storeLabel(store), workersLabel(n))
	case "ring":
		return ringStatus(c)
	default:
		return fmt.Errorf("unknown command %q (want ping|list|stats|compact|drop|set-workers|ring)", cmd)
	}
	return nil
}

// ringStatus renders the cluster picture from a qbring coordinator:
// membership, and per-namespace replica placement with row counts.
func ringStatus(c *wire.Client) error {
	dir, err := ring.FetchDirectory(c)
	if err != nil {
		return fmt.Errorf("fetch ring directory (is -addr a qbring coordinator?): %w", err)
	}
	fmt.Printf("qbadmin: ring directory v%d: %d node(s), R=%d\n", dir.Version, len(dir.Nodes), dir.Replicas)

	// One control connection per node, tolerating the dead ones.
	conns := make(map[string]*wire.Client, len(dir.Nodes))
	defer func() {
		for _, nc := range conns {
			nc.Close()
		}
	}()
	for _, n := range dir.Nodes {
		status := "down"
		if nc, err := wire.Dial(n.Addr); err == nil {
			conns[n.ID] = nc
			status = "up"
		}
		coordinatorView := "down"
		if n.Alive {
			coordinatorView = "up"
		}
		fmt.Printf("qbadmin:   node %-24s %s (coordinator sees %s)\n", n.ID, status, coordinatorView)
	}

	// Hosted namespaces: union across reachable nodes.
	names := make(map[string]struct{})
	for _, nc := range conns {
		hosted, err := nc.AdminList()
		if err != nil {
			continue
		}
		for _, ns := range hosted {
			names[ns] = struct{}{}
		}
	}
	if len(names) == 0 {
		fmt.Println("qbadmin: no stores hosted anywhere in the ring")
		return nil
	}
	ordered := make([]string, 0, len(names))
	for ns := range names {
		ordered = append(ordered, ns)
	}
	sort.Strings(ordered)

	r := ring.Build(dir)
	for _, ns := range ordered {
		fmt.Printf("qbadmin: store %q:\n", ns)
		placement := r.Placement(ns)
		infos := make([]wire.StoreInfo, len(placement))
		reached := make([]bool, len(placement))
		maxRows := -1
		for i, n := range placement {
			nc, ok := conns[n.ID]
			if !ok {
				continue
			}
			info, err := nc.StoreInfo(ns)
			if err != nil {
				continue
			}
			infos[i], reached[i] = info, true
			if info.Exists && info.EncRows > maxRows {
				maxRows = info.EncRows
			}
		}
		for i, n := range placement {
			role := "replica"
			if i == 0 {
				role = "primary"
			}
			switch {
			case !reached[i]:
				fmt.Printf("qbadmin:   %-8s %-24s unreachable\n", role, n.ID)
			case !infos[i].Exists:
				fmt.Printf("qbadmin:   %-8s %-24s MISSING\n", role, n.ID)
			default:
				mark := ""
				if infos[i].EncRows != maxRows {
					mark = "  DIVERGENT"
				}
				fmt.Printf("qbadmin:   %-8s %-24s plain_tuples=%-8d enc_rows=%-8d ver=(%d,%d)%s\n",
					role, n.ID, infos[i].PlainTuples, infos[i].EncRows, infos[i].VerEpoch, infos[i].VerN, mark)
			}
		}
	}
	return nil
}

// workersLabel renders an effective admission bound (0 = unbounded).
func workersLabel(n int) string {
	if n <= 0 {
		return "unlimited"
	}
	return fmt.Sprintf("%d", n)
}

// storeLabel names the namespace in output ("" is the default store).
func storeLabel(store string) string {
	if store == "" {
		return wire.DefaultStore
	}
	return store
}
