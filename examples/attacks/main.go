// Attacks: demonstrates the inference, size, and workload-skew attacks of
// the paper against naive partitioned execution, and shows QB defeating
// them — the §II/§VI narrative as a runnable program.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/adversary"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// buildRelation creates a skewed dataset: patient IDs 0..15, ID 0 being a
// heavy hitter (a frequent clinic visitor), every patient also having one
// public (non-sensitive) billing row.
func buildRelation() (*repro.Relation, func(repro.Tuple) bool) {
	schema := repro.MustSchema("Visits",
		repro.Column{Name: "PatientID", Kind: repro.KindInt},
		repro.Column{Name: "Code", Kind: repro.KindInt},
	)
	rel := repro.NewRelation(schema)
	sensitive := make(map[int]bool)
	for p := 0; p < 16; p++ {
		visits := 1
		if p == 0 {
			visits = 60 // the heavy hitter
		}
		for i := 0; i < visits; i++ {
			id := rel.MustInsert(repro.Int(int64(p)), repro.Int(int64(i)))
			sensitive[id] = true // visit records are sensitive
		}
		rel.MustInsert(repro.Int(int64(p)), repro.Int(-1)) // public billing row
	}
	return rel, func(t repro.Tuple) bool { return sensitive[t.ID] }
}

func client(padding bool) (*repro.Client, error) {
	seed := uint64(7)
	return repro.NewClient(repro.Config{
		MasterKey:          []byte("attack demo key"),
		Attr:               "PatientID",
		Seed:               &seed,
		DisableFakePadding: !padding,
	})
}

func run() error {
	rel, sensPred := buildRelation()

	// --- Naive execution: every attack lands. ---
	naive, err := client(false)
	if err != nil {
		return err
	}
	if err := naive.Outsource(rel.Clone(), sensPred); err != nil {
		return err
	}
	for p := 0; p < 16; p++ {
		if _, err := naive.QueryNaive(repro.Int(int64(p))); err != nil {
			return err
		}
	}
	views := naive.AdversarialViews()
	inf := adversary.InferenceAttack(views)
	size := adversary.SizeAttack(views)
	ws := adversary.WorkloadSkewAttack(views, 16)
	fmt.Println("naive partitioned execution:")
	fmt.Printf("  inference attack classified %d of 16 patients\n", len(inf.ByValue))
	fmt.Printf("  size attack distinguishes bins: %v (max/min volume ratio %.1f)\n",
		size.Distinguishable, size.MaxOverMin)
	fmt.Printf("  workload-skew attack anonymity set: %d (1 = hot patient pinned exactly)\n",
		ws.AnonymitySet)

	// --- QB: the same attacks come up empty. ---
	qb, err := client(true)
	if err != nil {
		return err
	}
	if err := qb.Outsource(rel.Clone(), sensPred); err != nil {
		return err
	}
	for p := 0; p < 16; p++ {
		if _, err := qb.Query(repro.Int(int64(p))); err != nil {
			return err
		}
	}
	views = qb.AdversarialViews()
	inf = adversary.InferenceAttack(views)
	size = adversary.SizeAttack(views)
	ws = adversary.WorkloadSkewAttack(views, 16)
	g := adversary.AnalyzeViews(views)
	fmt.Println("\nquery binning:")
	fmt.Printf("  inference attack classified %d patients (%d ambiguous bin-level views)\n",
		len(inf.ByValue), inf.Ambiguous)
	fmt.Printf("  size attack distinguishes bins: %v (every retrieval returns %d tuples)\n",
		size.Distinguishable, qb.Binning().TargetVolume)
	fmt.Printf("  workload-skew attack anonymity set: %d\n", ws.AnonymitySet)
	fmt.Printf("  surviving matches: complete bipartite = %v (%d sensitive x %d non-sensitive footprints)\n",
		g.IsCompleteBipartite(), len(g.SensGroups), len(g.NSGroups))
	fmt.Printf("  cost of the defence: %d fake tuples outsourced\n", qb.Binning().FakeTuples)
	return nil
}
