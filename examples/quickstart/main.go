// Quickstart: outsource a relation with mixed sensitive/non-sensitive rows
// and run selection queries through query binning.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A personnel table. SSNs of Defense staff make their whole rows
	// sensitive; everyone else is public directory data.
	schema := repro.MustSchema("Employee",
		repro.Column{Name: "EId", Kind: repro.KindString},
		repro.Column{Name: "Name", Kind: repro.KindString},
		repro.Column{Name: "Dept", Kind: repro.KindString},
	)
	rel := repro.NewRelation(schema)
	rows := [][3]string{
		{"E101", "Adam Smith", "Defense"},
		{"E259", "John Williams", "Design"},
		{"E199", "Eve Smith", "Design"},
		{"E259", "John Williams", "Defense"}, // John works in both
		{"E152", "Clark Cook", "Defense"},
		{"E254", "David Watts", "Design"},
		{"E159", "Lisa Ross", "Defense"},
		{"E152", "Clark Cook", "Design"},
	}
	for _, r := range rows {
		rel.MustInsert(repro.Str(r[0]), repro.Str(r[1]), repro.Str(r[2]))
	}

	client, err := repro.NewClient(repro.Config{
		MasterKey: []byte("replace me with a real 32-byte secret"),
		Attr:      "EId", // the searchable attribute
	})
	if err != nil {
		log.Fatal(err)
	}

	// Row-level sensitivity: Defense rows are encrypted, the rest is
	// outsourced in clear-text. The client builds the QB bins from the
	// value-frequency metadata automatically.
	deptIdx, _ := schema.ColumnIndex("Dept")
	err = client.Outsource(rel, func(t repro.Tuple) bool {
		return t.Values[deptIdx].Str() == "Defense"
	})
	if err != nil {
		log.Fatal(err)
	}

	b := client.Binning()
	fmt.Printf("binning: %d sensitive x %d non-sensitive bins, %d fake tuples\n",
		b.SensitiveBins, b.NonSensitiveBins, b.FakeTuples)

	// Queries look like plain selections; under the hood each one fetches
	// one encrypted bin and one clear-text bin and merges owner-side.
	for _, eid := range []string{"E259", "E101", "E199"} {
		tuples, stats, err := client.QueryWithStats(repro.Str(eid))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %s: %d tuples (fetched %d plaintext, discarded %d fakes + %d bin co-residents)\n",
			eid, len(tuples), stats.PlainTuples, stats.FakeDiscarded, stats.BinDiscarded)
		for _, t := range tuples {
			fmt.Printf("  %v\n", t.Values)
		}
	}
}
