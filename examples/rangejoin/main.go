// Rangejoin: exercises the full-version extensions — range selections over
// the B+-tree-backed plaintext store, dynamic inserts with fake-tuple
// rebalancing, and an owner-side equi-join of two QB-partitioned relations.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func newClient(name string, seed uint64) (*repro.Client, *repro.Relation, error) {
	schema := repro.MustSchema(name,
		repro.Column{Name: "OrderID", Kind: repro.KindInt},
		repro.Column{Name: "Amount", Kind: repro.KindInt},
	)
	rel := repro.NewRelation(schema)
	for i := int64(0); i < 40; i++ {
		rel.MustInsert(repro.Int(i), repro.Int(i*100))
	}
	c, err := repro.NewClient(repro.Config{
		MasterKey: []byte("rangejoin key " + name),
		Attr:      "OrderID",
		Seed:      &seed,
	})
	if err != nil {
		return nil, nil, err
	}
	// Every third order is classified.
	err = c.Outsource(rel.Clone(), func(t repro.Tuple) bool {
		return t.Values[0].Int()%3 == 0
	})
	return c, rel, err
}

func run() error {
	orders, _, err := newClient("Orders", 3)
	if err != nil {
		return err
	}

	// Range selection: rewritten into the covering bins on both sides.
	got, err := orders.QueryRange(repro.Int(10), repro.Int(15))
	if err != nil {
		return err
	}
	fmt.Printf("range [10,15]: %d orders\n", len(got))
	for _, t := range got {
		fmt.Printf("  order %v amount %v\n", t.Values[0], t.Values[1])
	}

	// Insert a brand-new sensitive order: the owner re-bins its metadata
	// and rebalances the fake padding; the cloud sees only appends.
	before := orders.Binning()
	err = orders.Insert(repro.Tuple{ID: 1000, Values: []repro.Value{repro.Int(999), repro.Int(42)}}, true)
	if err != nil {
		return err
	}
	after := orders.Binning()
	fmt.Printf("\ninsert of new sensitive order 999: bins %dx%d -> %dx%d, fakes %d -> %d\n",
		before.SensitiveBins, before.NonSensitiveBins,
		after.SensitiveBins, after.NonSensitiveBins,
		before.FakeTuples, after.FakeTuples)
	ts, err := orders.Query(repro.Int(999))
	if err != nil {
		return err
	}
	fmt.Printf("query for the new order returns %d tuple(s)\n", len(ts))

	// Equi-join with a shipments relation on OrderID.
	shipments, _, err := newClient("Shipments", 5)
	if err != nil {
		return err
	}
	pairs, err := orders.Join(shipments)
	if err != nil {
		return err
	}
	fmt.Printf("\norders ⋈ shipments on OrderID: %d pairs (both sides queried bin-wise)\n", len(pairs))
	return nil
}
