// Columnsplit: reproduces the full Example 1 / Figure 2 storage layout —
// SSNs are column-level sensitive (always encrypted, Employee1), Defense
// rows are row-level sensitive (encrypted, Employee2), and everything else
// is outsourced in clear-text (Employee3). Queries reassemble complete
// rows, SSN included, without the cloud ever seeing an SSN or learning who
// works in Defense.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	emp := workload.Employee()
	fmt.Println("Employee relation (Figure 1) — SSN column-sensitive, Defense rows row-sensitive")

	seed := uint64(9)
	client, err := repro.NewVerticalClient(repro.Config{
		MasterKey: []byte("columnsplit demo key"),
		Attr:      "EId",
		Seed:      &seed,
	}, []string{"SSN"})
	if err != nil {
		return err
	}
	if err := client.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		return err
	}

	for _, eid := range []string{"E259", "E101", "E199"} {
		tuples, err := client.Query(repro.Str(eid))
		if err != nil {
			return err
		}
		fmt.Printf("\nquery %s -> %d full tuples (SSN reattached owner-side):\n", eid, len(tuples))
		for _, t := range tuples {
			fmt.Printf("  %v\n", t.Values)
		}
	}

	fmt.Println("\ncloud-side views (clear-text predicates only, always bin-shaped):")
	for i, v := range client.AdversarialViews() {
		fmt.Printf("  view %d: %d clear-text predicates, %d encrypted predicates\n",
			i, len(v.PlainValues), v.EncPredicates)
	}
	return nil
}
