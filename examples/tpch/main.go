// TPC-H: outsources a LINEITEM-style table under the Shamir secret-sharing
// technique (the strong-crypto, γ >> 1 regime of §V) and measures the
// speedup QB delivers over encrypting everything — the Figure 6b workload
// as a standalone program.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/internal/workload"
)

func main() {
	tuples := flag.Int("tuples", 20_000, "LINEITEM row count")
	alpha := flag.Float64("alpha", 0.3, "fraction of rows that are sensitive")
	queries := flag.Int("queries", 5, "measured queries per configuration")
	flag.Parse()
	if err := run(*tuples, *alpha, *queries); err != nil {
		log.Fatal(err)
	}
}

func run(tuples int, alpha float64, queries int) error {
	ds, err := workload.LineItem(workload.TPCHSpec{Tuples: tuples, Alpha: alpha, Seed: 1})
	if err != nil {
		return err
	}
	fmt.Printf("LINEITEM: %d rows, %d distinct %s values, alpha=%.2f\n",
		ds.Relation.Len(), len(ds.Values), workload.LineItemAttr, alpha)

	measure := func(name string, sensitive func(repro.Tuple) bool) (time.Duration, error) {
		seed := uint64(11)
		c, err := repro.NewClient(repro.Config{
			MasterKey: []byte("tpch example key"),
			Attr:      workload.LineItemAttr,
			Technique: repro.TechShamir,
			Seed:      &seed,
		})
		if err != nil {
			return 0, err
		}
		start := time.Now()
		if err := c.Outsource(ds.Relation.Clone(), sensitive); err != nil {
			return 0, err
		}
		outsource := time.Since(start)

		qs := workload.QueryStream(ds, workload.QuerySpec{Queries: queries, Seed: 13})
		start = time.Now()
		total := 0
		for _, q := range qs {
			ts, err := c.Query(q)
			if err != nil {
				return 0, err
			}
			total += len(ts)
		}
		avg := time.Since(start) / time.Duration(len(qs))
		b := c.Binning()
		fmt.Printf("%-16s outsource %8s | %d x %d bins, %5d fakes | avg query %8s (%d result tuples)\n",
			name, outsource.Round(time.Millisecond), b.SensitiveBins, b.NonSensitiveBins,
			b.FakeTuples, avg.Round(time.Microsecond), total)
		return avg, nil
	}

	tQB, err := measure("QB (partitioned)", ds.Sensitive)
	if err != nil {
		return err
	}
	tFull, err := measure("full encryption", func(repro.Tuple) bool { return true })
	if err != nil {
		return err
	}
	fmt.Printf("\nmeasured eta = %.3f (analytical model predicts ~alpha = %.2f for gamma >> 1)\n",
		float64(tQB)/float64(tFull), alpha)
	return nil
}
