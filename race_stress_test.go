package repro

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestConcurrentClientStress hammers one client from many goroutines mixing
// batches, streaming batches, single queries, range queries, inserts and
// adversary-view reads. It exists for `go test -race`: the assertions are
// deliberately weak (no error, plausible shapes) — the detector is the
// real oracle.
func TestConcurrentClientStress(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 240, DistinctValues: 24, Alpha: 0.4,
		AssocFraction: 0.5, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(Config{
		MasterKey: []byte("stress test master key"),
		Attr:      workload.Attr,
		Seed:      seed(78),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
		t.Fatal(err)
	}
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: 16, Seed: 79})
	schema := ds.Relation.Schema

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Batch queriers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := c.QueryBatchN(ws, 1+g); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	// Streaming querier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			for res := range c.QueryAsync(ws) {
				if res.Err != nil {
					fail(res.Err)
					return
				}
			}
		}
	}()
	// Single-query and range querier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			if _, err := c.Query(ws[i%len(ws)]); err != nil {
				fail(err)
				return
			}
			if _, err := c.QueryRange(Int(2), Int(9)); err != nil {
				fail(err)
				return
			}
		}
	}()
	// Inserters (sensitive and non-sensitive, existing and new values).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				vals := make([]Value, schema.Arity())
				for j := range vals {
					vals[j] = Int(0)
				}
				vals[0] = Int(int64((g*6 + i) % 30)) // some values are new: re-binning path
				if err := c.Insert(Tuple{ID: 60_000 + g*1000 + i, Values: vals}, g == 0); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	// Metadata readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = c.AdversarialViews()
			_ = c.Binning()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
