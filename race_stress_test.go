package repro

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/workload"
)

// TestConcurrentClientStress hammers one client from many goroutines mixing
// batches, streaming batches, single queries, range queries, inserts and
// adversary-view reads. It exists for `go test -race`: the assertions are
// deliberately weak (no error, plausible shapes) — the detector is the
// real oracle.
func TestConcurrentClientStress(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 240, DistinctValues: 24, Alpha: 0.4,
		AssocFraction: 0.5, Seed: 77,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(Config{
		MasterKey: []byte("stress test master key"),
		Attr:      workload.Attr,
		Seed:      seed(78),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
		t.Fatal(err)
	}
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: 16, Seed: 79})
	schema := ds.Relation.Schema

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	// Batch queriers.
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := c.QueryBatchN(ws, 1+g); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	// Streaming querier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			for res := range c.QueryAsync(ws) {
				if res.Err != nil {
					fail(res.Err)
					return
				}
			}
		}
	}()
	// Single-query and range querier.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			if _, err := c.Query(ws[i%len(ws)]); err != nil {
				fail(err)
				return
			}
			if _, err := c.QueryRange(Int(2), Int(9)); err != nil {
				fail(err)
				return
			}
		}
	}()
	// Inserters (sensitive and non-sensitive, existing and new values).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				vals := make([]Value, schema.Arity())
				for j := range vals {
					vals[j] = Int(0)
				}
				vals[0] = Int(int64((g*6 + i) % 30)) // some values are new: re-binning path
				if err := c.Insert(Tuple{ID: 60_000 + g*1000 + i, Values: vals}, g == 0); err != nil {
					fail(err)
					return
				}
			}
		}(g)
	}
	// Metadata readers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			_ = c.AdversarialViews()
			_ = c.Binning()
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestTwoNamespaceCloudStress drives one shared qbcloud from two tenants
// in different namespaces — batched queries, single queries and inserts
// interleaved from several goroutines each — plus a remote vertical
// client on a third/fourth namespace pair. It exists for `go test -race`
// and for the isolation property: every answer must come from the
// tenant's own relation even while the other tenant mutates its
// namespace through the same server.
func TestTwoNamespaceCloudStress(t *testing.T) {
	addr := startRemoteCloud(t)

	type tenant struct {
		c  *Client
		ds *workload.Dataset
		ws []Value
	}
	mk := func(store string, genSeed uint64) *tenant {
		ds, err := workload.Generate(workload.GenSpec{
			Tuples: 160, DistinctValues: 16, Alpha: 0.4,
			AssocFraction: 0.5, Seed: int64(genSeed),
		})
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(Config{
			MasterKey:  []byte("stress tenant " + store),
			Attr:       workload.Attr,
			Seed:       seed(genSeed),
			CloudAddr:  addr,
			Store:      store,
			CloudConns: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		if err := c.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
			t.Fatal(err)
		}
		return &tenant{
			c: c, ds: ds,
			ws: workload.QueryStream(ds, workload.QuerySpec{Queries: 8, Seed: int64(genSeed) + 1}),
		}
	}
	ta, tb := mk("stress-a", 101), mk("stress-b", 202)

	vc, err := NewVerticalClient(Config{
		MasterKey: []byte("stress vertical"), Attr: "EId", Seed: seed(303),
		CloudAddr: addr, Store: "stress-vert",
	}, []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { vc.Close() })
	emp := workload.Employee()
	if err := vc.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	fail := func(err error) {
		select {
		case errs <- err:
		default:
		}
	}

	for _, tn := range []*tenant{ta, tb} {
		// Batch queriers.
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func(tn *tenant, g int) {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					got, err := tn.c.QueryBatchN(tn.ws, 1+g)
					if err != nil {
						fail(err)
						return
					}
					for qi, ts := range got {
						want, _ := tn.ds.Relation.Select(workload.Attr, tn.ws[qi])
						if len(ts) < len(want) {
							fail(fmt.Errorf("tenant batch query %v returned %d tuples, want >= %d",
								tn.ws[qi], len(ts), len(want)))
							return
						}
					}
				}
			}(tn, g)
		}
		// Inserter: new and existing values, exercising re-binning and the
		// namespace's pinned write path.
		wg.Add(1)
		go func(tn *tenant) {
			defer wg.Done()
			schema := tn.ds.Relation.Schema
			for i := 0; i < 6; i++ {
				vals := make([]Value, schema.Arity())
				for j := range vals {
					vals[j] = Int(0)
				}
				vals[0] = Int(int64(40 + i%8))
				if err := tn.c.Insert(Tuple{ID: 70_000 + i, Values: vals}, i%2 == 0); err != nil {
					fail(err)
					return
				}
			}
		}(tn)
	}
	// Vertical querier on its own namespace pair.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			for _, eid := range []string{"E101", "E259", "E199"} {
				got, err := vc.Query(Str(eid))
				if err != nil {
					fail(err)
					return
				}
				if len(got) == 0 {
					fail(fmt.Errorf("vertical Query(%s) lost its rows mid-stress", eid))
					return
				}
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
