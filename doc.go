// Package repro is a from-scratch reproduction of "Partitioned Data
// Security on Outsourced Sensitive and Non-sensitive Data" (Mehrotra,
// Sharma, Ullman, Mishra — ICDE 2019): the query binning (QB) technique for
// executing selection queries over a relation split into an encrypted
// sensitive partition and a clear-text non-sensitive partition, both hosted
// by one untrusted cloud, without the joint processing leaking which
// encrypted tuple corresponds to which plaintext one.
//
// The top-level package is the public API: a Client that partitions,
// outsources and queries a relation through QB over a pluggable
// cryptographic technique. The building blocks live under internal/ and
// are re-exported here as type aliases where downstream code needs them.
// README.md covers the paper's claims, the quickstarts and the technique
// matrix; docs/ARCHITECTURE.md has the layer diagram, the concurrency
// model and the batched-search flow; docs/BENCHMARKS.md records the bench
// methodology and numbers.
//
// Quick start:
//
//	rel := repro.NewRelation(repro.MustSchema("Employee",
//		repro.Column{Name: "EId", Kind: repro.KindString},
//		repro.Column{Name: "Dept", Kind: repro.KindString},
//	))
//	rel.MustInsert(repro.Str("E101"), repro.Str("Defense"))
//	rel.MustInsert(repro.Str("E259"), repro.Str("Design"))
//
//	client, err := repro.NewClient(repro.Config{
//		MasterKey: []byte("32-byte master secret ........."),
//		Attr:      "EId",
//	})
//	// handle err
//	err = client.Outsource(rel, func(t repro.Tuple) bool {
//		return t.Values[1].Str() == "Defense" // row-level sensitivity
//	})
//	// handle err
//	tuples, err := client.Query(repro.Str("E101"))
//
// Batches of selections execute as one unit, with per-query results and
// the cloud's adversarial-view log identical to looping Query
// sequentially. The encrypted side of the whole batch goes to the
// technique in a single batched search, so scan-shaped techniques pull
// their attribute column / scan their table once per batch instead of
// once per query, while the plaintext bin fetches fan out over a bounded
// worker pool (see ExampleClient_QueryBatch):
//
//	answers, err := client.QueryBatch([]repro.Value{
//		repro.Str("E101"), repro.Str("E259"),
//	})
//	// answers[0] and answers[1] line up with the two query values.
//
//	for res := range client.QueryAsync(queries) { // streaming variant
//		// res.Index, res.Tuples, res.Err arrive in completion order.
//	}
//
// The cloud can run as a separate process (cmd/qbcloud) reached over a
// multiplexed wire protocol: requests carry IDs, so a batch keeps many
// calls in flight on one connection and the server dispatches them
// concurrently, and a batched query pays a single round trip for the
// whole batch's encrypted bin fetches. CloudConns adds a small connection
// pool on top for CPU-bound encrypted scans.
//
// One qbcloud hosts any number of relations: Config.Store selects the
// cloud-side namespace (its own clear-text store, encrypted store and
// address space; empty means "default"), so several tenants share one
// server without sharing state. The protocol is versioned — a connection
// opens with a handshake, and generation skew fails with an explicit
// version-mismatch error rather than corrupted frames:
//
//	remote, err := repro.NewClient(repro.Config{
//		MasterKey:  key,
//		Attr:       "EId",
//		CloudAddr:  "cloud-host:7040", // a running qbcloud process
//		CloudConns: 4,                 // optional connection pool
//		Store:      "hr",              // namespace on the shared cloud
//	})
//
// Namespaces are also what let a vertical client (NewVerticalClient —
// column-level sensitivity on top of row-level) run remotely: its two
// differently keyed sub-clients share one transport but live in the
// Store and Store+"/columns" namespaces, so their ciphertexts never
// interleave in one store.
//
// Every query is rewritten by Algorithm 2 into one sensitive bin (sent
// encrypted) and one non-sensitive bin (sent in clear-text), so the cloud's
// view never pins the queried value down to fewer than a bin's worth of
// candidates, and fake-tuple padding keeps every sensitive retrieval the
// same size.
package repro
