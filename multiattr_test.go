package repro

import (
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

func multiClient(t *testing.T) (*MultiClient, *Relation) {
	t.Helper()
	m, err := NewMultiClient(Config{
		MasterKey: []byte("multi attr"),
		Seed:      seed(17),
	}, []string{"EId", "LastName"})
	if err != nil {
		t.Fatal(err)
	}
	emp := workload.Employee()
	if err := m.Outsource(emp, workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	return m, emp
}

func TestMultiClientQueriesBothAttributes(t *testing.T) {
	m, emp := multiClient(t)
	got, err := m.Query("EId", Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := emp.Select("EId", Str("E259"))
	if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
		t.Errorf("EId query = %v, want %v", relation.IDs(got), relation.IDs(want))
	}
	// The same relation searched on a different attribute.
	got, err = m.Query("LastName", Str("Smith"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ = emp.Select("LastName", Str("Smith"))
	if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
		t.Errorf("LastName query = %v, want %v", relation.IDs(got), relation.IDs(want))
	}
}

func TestMultiClientInsertVisibleOnAllAttributes(t *testing.T) {
	m, _ := multiClient(t)
	nt := Tuple{ID: 200, Values: []Value{
		Str("E955"), Str("Ada"), Str("Lovelace"),
		Int(955), Int(7), Str("Design"),
	}}
	if err := m.Insert(nt, false); err != nil {
		t.Fatal(err)
	}
	byEID, err := m.Query("EId", Str("E955"))
	if err != nil {
		t.Fatal(err)
	}
	byName, err := m.Query("LastName", Str("Lovelace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(byEID) != 1 || len(byName) != 1 || byEID[0].ID != 200 || byName[0].ID != 200 {
		t.Fatalf("insert visibility: byEID=%v byName=%v", byEID, byName)
	}
}

func TestMultiClientValidation(t *testing.T) {
	if _, err := NewMultiClient(Config{MasterKey: []byte("k")}, nil); err == nil {
		t.Error("no attributes accepted")
	}
	if _, err := NewMultiClient(Config{MasterKey: []byte("k")}, []string{"A", "A"}); err == nil {
		t.Error("duplicate attributes accepted")
	}
	m, _ := multiClient(t)
	if _, err := m.Query("Nope", Str("x")); err == nil {
		t.Error("unknown attribute accepted")
	}
	if got := m.Attrs(); len(got) != 2 {
		t.Errorf("Attrs = %v", got)
	}
}
