package repro

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startRemoteCloud runs a qbcloud-equivalent on a loopback listener.
func startRemoteCloud(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = wire.NewCloud().Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String()
}

// TestClientAgainstRemoteCloud runs the public API against a cloud in a
// separate (simulated) process over TCP.
func TestClientAgainstRemoteCloud(t *testing.T) {
	addr := startRemoteCloud(t)
	for _, tech := range []Technique{TechNoInd, TechDetIndex, TechArx} {
		t.Run(tech.String(), func(t *testing.T) {
			c, err := NewClient(Config{
				MasterKey: []byte("remote test"),
				Attr:      "EId",
				Technique: tech,
				Seed:      seed(77),
				CloudAddr: startRemoteCloud(t), // fresh cloud per technique
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			emp := workload.Employee()
			if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
				t.Fatal(err)
			}
			for _, eid := range []string{"E101", "E259", "E199"} {
				got, err := c.Query(Str(eid))
				if err != nil {
					t.Fatal(err)
				}
				want, _ := emp.Select("EId", Str(eid))
				if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
					t.Errorf("Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
				}
			}
		})
	}
	_ = addr
}

// TestRemoteVerticalClientMatchesInProcess is the vertical-client
// equivalence property over the wire: a vertical client whose two
// differently keyed sub-clients share one qbcloud (via the namespaced
// store registry — residual rows in one store, sensitive columns in its
// "/columns" sibling) must return exactly the tuples and log exactly the
// adversarial views of the in-process vertical client, across the
// store-backed technique matrix and with and without a connection pool.
func TestRemoteVerticalClientMatchesInProcess(t *testing.T) {
	for _, tech := range []Technique{TechNoInd, TechDetIndex, TechArx} {
		for _, conns := range []int{1, 2} {
			t.Run(fmt.Sprintf("%v/conns=%d", tech, conns), func(t *testing.T) {
				mk := func(addr string) *VerticalClient {
					c, err := NewVerticalClient(Config{
						MasterKey:  []byte("vertical remote equivalence"),
						Attr:       "EId",
						Technique:  tech,
						Seed:       seed(41),
						CloudAddr:  addr, // "" = in-process
						CloudConns: conns,
					}, []string{"SSN", "Dept"})
					if err != nil {
						t.Fatal(err)
					}
					t.Cleanup(func() { c.Close() })
					return c
				}
				local, remote := mk(""), mk(startRemoteCloud(t))
				emp := workload.Employee()
				if err := local.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
					t.Fatal(err)
				}
				if err := remote.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
					t.Fatal(err)
				}
				for _, eid := range []string{"E101", "E259", "E199", "E152", "E000"} {
					want, err := local.Query(Str(eid))
					if err != nil {
						t.Fatalf("local Query(%s): %v", eid, err)
					}
					got, err := remote.Query(Str(eid))
					if err != nil {
						t.Fatalf("remote Query(%s): %v", eid, err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Errorf("Query(%s) over wire = %v, want %v", eid, got, want)
					}
					// Full original schema reassembled, sensitive columns
					// included.
					for _, tp := range got {
						if len(tp.Values) != 6 {
							t.Errorf("tuple %d has %d columns, want 6", tp.ID, len(tp.Values))
						}
					}
				}
				lv, rv := local.AdversarialViews(), remote.AdversarialViews()
				if len(lv) != len(rv) {
					t.Fatalf("view counts differ: local %d, remote %d", len(lv), len(rv))
				}
				for i := range lv {
					if viewKey(lv[i]) != viewKey(rv[i]) {
						t.Errorf("view %d: remote %s != local %s", i, viewKey(rv[i]), viewKey(lv[i]))
					}
				}
			})
		}
	}
}

// TestRemoteVerticalNamespaces: the two sub-clients really live in two
// cloud-side namespaces (main + "/columns"), so their differently keyed
// ciphertexts never share a store.
func TestRemoteVerticalNamespaces(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := wire.NewCloud()
	go func() { _ = cl.Serve(lis) }()
	t.Cleanup(func() { lis.Close() })

	c, err := NewVerticalClient(Config{
		MasterKey: []byte("k"), Attr: "EId", Seed: seed(3),
		CloudAddr: lis.Addr().String(), Store: "emp",
	}, []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Outsource(workload.Employee(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	names := cl.StoreNames()
	if !reflect.DeepEqual(names, []string{"emp", "emp/columns"}) {
		t.Fatalf("cloud namespaces = %v, want [emp emp/columns]", names)
	}
	stats := cl.Stats()
	if stats["emp"].EncRows == 0 || stats["emp/columns"].EncRows == 0 {
		t.Fatalf("both namespaces should hold encrypted rows: %+v", stats)
	}
	if stats["emp/columns"].PlainTuples != 0 {
		t.Fatal("columns namespace must never hold clear-text tuples")
	}
}

// TestTwoTenantsShareOneCloud: two clients with different Config.Store
// values outsource different relations through one qbcloud and stay
// fully isolated at the public API level.
func TestTwoTenantsShareOneCloud(t *testing.T) {
	addr := startRemoteCloud(t)
	mk := func(store string, seedV uint64) *Client {
		c, err := NewClient(Config{
			MasterKey: []byte("tenant " + store),
			Attr:      "EId",
			Seed:      seed(seedV),
			CloudAddr: addr,
			Store:     store,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	a, b := mk("tenant-a", 10), mk("tenant-b", 11)

	emp := workload.Employee()
	if err := a.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	// Tenant B outsources a disjoint subset (everything sensitive), so a
	// cross-tenant leak would be visible as extra rows.
	empB := workload.Employee()
	if err := b.Outsource(empB.Clone(), func(Tuple) bool { return true }); err != nil {
		t.Fatal(err)
	}

	for _, eid := range []string{"E101", "E259", "E199"} {
		want, _ := emp.Select("EId", Str(eid))
		gotA, err := a.Query(Str(eid))
		if err != nil {
			t.Fatalf("tenant-a Query(%s): %v", eid, err)
		}
		if !reflect.DeepEqual(relation.IDs(gotA), relation.IDs(want)) {
			t.Errorf("tenant-a Query(%s) = %v, want %v", eid, relation.IDs(gotA), relation.IDs(want))
		}
		gotB, err := b.Query(Str(eid))
		if err != nil {
			t.Fatalf("tenant-b Query(%s): %v", eid, err)
		}
		if !reflect.DeepEqual(relation.IDs(gotB), relation.IDs(want)) {
			t.Errorf("tenant-b Query(%s) = %v, want %v", eid, relation.IDs(gotB), relation.IDs(want))
		}
	}
}

// TestReservedColumnsNamespace: a regular client cannot claim some
// vertical client's "/columns" sibling — that would interleave
// differently keyed ciphertexts in one store.
func TestReservedColumnsNamespace(t *testing.T) {
	addr := startRemoteCloud(t)
	if _, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: "EId", CloudAddr: addr, Store: "emp/columns",
	}); err == nil {
		t.Fatal("reserved /columns namespace accepted by NewClient")
	}
	if _, err := NewVerticalClient(Config{
		MasterKey: []byte("k"), Attr: "EId", CloudAddr: addr, Store: "emp/columns",
	}, []string{"SSN"}); err == nil {
		t.Fatal("reserved /columns namespace accepted by NewVerticalClient")
	}
}

func TestRemoteCloudRejectsScanTechniques(t *testing.T) {
	addr := startRemoteCloud(t)
	for _, tech := range []Technique{TechShamir, TechDPFPIR, TechSimOpaque} {
		if _, err := NewClient(Config{
			MasterKey: []byte("k"), Attr: "K", Technique: tech, CloudAddr: addr,
		}); err == nil {
			t.Errorf("technique %v accepted a remote cloud", tech)
		}
	}
}

// TestSaveResumeOverRemoteCloud persists the owner state and resumes a new
// client against the same remote cloud without re-outsourcing.
func TestSaveResumeOverRemoteCloud(t *testing.T) {
	addr := startRemoteCloud(t)
	mk := func() *Client {
		c, err := NewClient(Config{
			MasterKey: []byte("resume test"),
			Attr:      "EId",
			Seed:      seed(88),
			CloudAddr: addr,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	emp := workload.Employee()
	c1 := mk()
	if err := c1.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c1.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}

	c2 := mk()
	if err := c2.Resume(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Query(Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := emp.Select("EId", Str("E259"))
	if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
		t.Errorf("resumed Query = %v, want %v", relation.IDs(got), relation.IDs(want))
	}

	// Resume without a remote cloud is rejected.
	local, err := NewClient(Config{MasterKey: []byte("k"), Attr: "EId"})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Resume(&buf); err == nil {
		t.Error("local Resume accepted")
	}
}

// TestRemoteQueryBatchMatchesSequential is the observational-equivalence
// property test against the remote backend: with the multiplexed wire
// client (and optionally a connection pool) underneath, QueryBatch must
// return the same per-query answers and log the same adversarial views,
// in the same order, as a sequential Query loop — exactly as it does
// against the in-process cloud.
func TestRemoteQueryBatchMatchesSequential(t *testing.T) {
	for _, tech := range []Technique{TechNoInd, TechArx} {
		for _, conns := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v/conns=%d", tech, conns), func(t *testing.T) {
				ds, err := workload.Generate(workload.GenSpec{
					Tuples: 160, DistinctValues: 16, Alpha: 0.4,
					AssocFraction: 0.5, Seed: 21,
				})
				if err != nil {
					t.Fatal(err)
				}
				c, err := NewClient(Config{
					MasterKey:  []byte("remote batch equivalence"),
					Attr:       workload.Attr,
					Technique:  tech,
					Seed:       seed(29),
					CloudAddr:  startRemoteCloud(t),
					CloudConns: conns,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if err := c.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
					t.Fatal(err)
				}
				ws := batchWorkload(ds, 12, 321)

				seq := make([][]Tuple, len(ws))
				for i, w := range ws {
					got, err := c.Query(w)
					if err != nil {
						t.Fatalf("sequential Query(%v): %v", w, err)
					}
					seq[i] = got
				}
				seqViews := c.AdversarialViews()
				if len(seqViews) != len(ws) {
					t.Fatalf("sequential run recorded %d views, want %d", len(seqViews), len(ws))
				}

				batch, err := c.QueryBatchN(ws, 4)
				if err != nil {
					t.Fatalf("QueryBatch: %v", err)
				}
				views := c.AdversarialViews()
				if len(views) != 2*len(ws) {
					t.Fatalf("after batch: %d views, want %d", len(views), 2*len(ws))
				}
				batchViews := views[len(ws):]
				for i := range ws {
					if !reflect.DeepEqual(relation.IDs(seq[i]), relation.IDs(batch[i])) {
						t.Errorf("query %d (%v): batch IDs %v != sequential %v",
							i, ws[i], relation.IDs(batch[i]), relation.IDs(seq[i]))
					}
					if viewKey(batchViews[i]) != viewKey(seqViews[i]) {
						t.Errorf("query %d (%v): batch view %s != sequential view %s",
							i, ws[i], viewKey(batchViews[i]), viewKey(seqViews[i]))
					}
				}
			})
		}
	}
}

// TestRemoteQueryAsync smoke-tests the streaming batch against a remote
// cloud through a connection pool: every answer matches the sequential
// one and no transport error sticks.
func TestRemoteQueryAsync(t *testing.T) {
	c, err := NewClient(Config{
		MasterKey:  []byte("remote async"),
		Attr:       "EId",
		Seed:       seed(5),
		CloudAddr:  startRemoteCloud(t),
		CloudConns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	emp := workload.Employee()
	if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	ws := []Value{Str("E101"), Str("E259"), Str("E199"), Str("E152"), Str("E000")}
	for res := range c.QueryAsyncN(ws, 3) {
		if res.Err != nil {
			t.Fatalf("query %d: %v", res.Index, res.Err)
		}
		want, _ := emp.Select("EId", ws[res.Index])
		if !reflect.DeepEqual(relation.IDs(res.Tuples), relation.IDs(want)) {
			t.Errorf("query %d = %v, want %v", res.Index, relation.IDs(res.Tuples), relation.IDs(want))
		}
	}
}

// TestRemoteQueryAfterConnectionLost: once the transport to the cloud is
// gone, queries must return an error — not silently empty results — even
// though the backend's void interface methods cannot return errors
// in-band.
func TestRemoteQueryAfterConnectionLost(t *testing.T) {
	c, err := NewClient(Config{
		MasterKey: []byte("remote severed"),
		Attr:      "EId",
		Seed:      seed(61),
		CloudAddr: startRemoteCloud(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	emp := workload.Employee()
	if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(Str("E101")); err != nil {
		t.Fatalf("query before severing: %v", err)
	}

	// Sever the transport (an explicit Close stands in for a crashed
	// qbcloud; either way the connection is unusable).
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Query(Str("E101")); err == nil {
		t.Fatalf("query over severed connection returned %v with nil error", got)
	}
	if _, err := c.QueryBatch([]Value{Str("E101"), Str("E259")}); err == nil {
		t.Fatal("batch over severed connection reported success")
	}
	for res := range c.QueryAsync([]Value{Str("E101")}) {
		if res.Err == nil {
			t.Fatal("async result over severed connection carried no error")
		}
	}
	// Writes fail too: nothing pending must not read as durable success.
	if err := c.Insert(Tuple{ID: 1, Values: []Value{
		Str("E900"), Str("X"), Str("Y"), Int(1), Int(1), Str("Design"),
	}}, true); err == nil {
		t.Fatal("insert over severed connection reported success")
	}
}

func TestRemoteCloudUnreachable(t *testing.T) {
	if _, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: "K", CloudAddr: "127.0.0.1:1",
	}); err == nil {
		t.Fatal("unreachable cloud accepted")
	}
}

// chaosCloud hosts a wire.Cloud on a fixed loopback address and can kill
// the listener plus every live connection, then restart a (restored)
// cloud on the same address — a qbcloud crash and recovery, in-process.
type chaosCloud struct {
	addr  string
	mu    sync.Mutex
	lis   net.Listener
	conns []net.Conn
}

func startChaosCloud(t *testing.T, cl *wire.Cloud) *chaosCloud {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &chaosCloud{addr: lis.Addr().String()}
	s.serve(cl, lis)
	t.Cleanup(s.kill)
	return s
}

func (s *chaosCloud) serve(cl *wire.Cloud, lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			go cl.ServeConn(conn)
		}
	}()
}

func (s *chaosCloud) kill() {
	s.mu.Lock()
	lis, conns := s.lis, s.conns
	s.lis, s.conns = nil, nil
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

func (s *chaosCloud) restart(t *testing.T, cl *wire.Cloud) {
	t.Helper()
	lis, err := net.Listen("tcp", s.addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", s.addr, err)
	}
	s.serve(cl, lis)
}

// TestReconnectClientSurvivesCloudKillMidBatch is the crash/recovery
// acceptance property: a Config.Reconnect client whose cloud is killed in
// the middle of a QueryBatch — and restarted from the snapshot taken
// after Outsource — must produce batch results AND adversarial views
// identical to a client whose cloud was never touched. The reconnect is
// invisible at the observational-equivalence level the whole test suite
// is built on.
func TestReconnectClientSurvivesCloudKillMidBatch(t *testing.T) {
	for _, tech := range []Technique{TechNoInd, TechArx} {
		t.Run(tech.String(), func(t *testing.T) {
			ds, err := workload.Generate(workload.GenSpec{
				Tuples: 160, DistinctValues: 16, Alpha: 0.4,
				AssocFraction: 0.5, Seed: 23,
			})
			if err != nil {
				t.Fatal(err)
			}
			mk := func(addr string, reconnect bool) *Client {
				c, err := NewClient(Config{
					MasterKey: []byte("chaos equivalence"),
					Attr:      workload.Attr,
					Technique: tech,
					Seed:      seed(31),
					CloudAddr: addr,
					Reconnect: reconnect,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { c.Close() })
				return c
			}
			// Reference: identical client, never-killed cloud.
			ref := mk(startRemoteCloud(t), false)
			// Chaos: reconnect-enabled client on a killable cloud.
			cloud := wire.NewCloud()
			srv := startChaosCloud(t, cloud)
			chaos := mk(srv.addr, true)

			if err := ref.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
				t.Fatal(err)
			}
			if err := chaos.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
				t.Fatal(err)
			}
			// The operator's last snapshot: everything outsourced so far.
			var snap bytes.Buffer
			if err := cloud.Save(&snap); err != nil {
				t.Fatal(err)
			}

			ws := batchWorkload(ds, 48, 97)
			want, err := ref.QueryBatchN(ws, 4)
			if err != nil {
				t.Fatal(err)
			}

			// Kill the cloud while the batch is in flight and bring a
			// restored one back on the same address.
			killed := make(chan struct{})
			go func() {
				defer close(killed)
				time.Sleep(2 * time.Millisecond)
				srv.kill()
				restored := wire.NewCloud()
				if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
					t.Error(err)
					return
				}
				srv.restart(t, restored)
			}()
			got, err := chaos.QueryBatchN(ws, 4)
			<-killed
			if err != nil {
				t.Fatalf("QueryBatch across the kill: %v", err)
			}
			for i := range ws {
				if !reflect.DeepEqual(relation.IDs(got[i]), relation.IDs(want[i])) {
					t.Errorf("query %d (%v): chaos IDs %v != reference %v",
						i, ws[i], relation.IDs(got[i]), relation.IDs(want[i]))
				}
			}
			gv, wv := chaos.AdversarialViews(), ref.AdversarialViews()
			if len(gv) != len(wv) {
				t.Fatalf("view counts differ: chaos %d, reference %d", len(gv), len(wv))
			}
			for i := range gv {
				if viewKey(gv[i]) != viewKey(wv[i]) {
					t.Errorf("view %d: chaos %s != reference %s", i, viewKey(gv[i]), viewKey(wv[i]))
				}
			}

			// And the client keeps working after the dust settles.
			w := ws[0]
			gotQ, err := chaos.Query(w)
			if err != nil {
				t.Fatal(err)
			}
			wantQ, err := ref.Query(w)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(relation.IDs(gotQ), relation.IDs(wantQ)) {
				t.Errorf("post-recovery Query = %v, want %v", relation.IDs(gotQ), relation.IDs(wantQ))
			}
		})
	}
}

// TestReconnectPoolSurvivesCloudKill: Reconnect now composes with
// CloudConns > 1 — each pooled connection redials independently. A
// pooled reconnecting client whose cloud is killed mid-batch and
// restored from the post-Outsource snapshot must produce batch results
// identical to a client whose cloud was never touched.
func TestReconnectPoolSurvivesCloudKill(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 160, DistinctValues: 16, Alpha: 0.4,
		AssocFraction: 0.5, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(addr string, conns int, reconnect bool) *Client {
		c, err := NewClient(Config{
			MasterKey:  []byte("pooled chaos equivalence"),
			Attr:       workload.Attr,
			Technique:  TechArx,
			Seed:       seed(37),
			CloudAddr:  addr,
			CloudConns: conns,
			Reconnect:  reconnect,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	ref := mk(startRemoteCloud(t), 1, false)
	cloud := wire.NewCloud()
	srv := startChaosCloud(t, cloud)
	chaos := mk(srv.addr, 3, true)

	if err := ref.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
		t.Fatal(err)
	}
	if err := chaos.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := cloud.Save(&snap); err != nil {
		t.Fatal(err)
	}

	ws := batchWorkload(ds, 48, 101)
	want, err := ref.QueryBatchN(ws, 4)
	if err != nil {
		t.Fatal(err)
	}

	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(2 * time.Millisecond)
		srv.kill()
		restored := wire.NewCloud()
		if err := restored.Restore(bytes.NewReader(snap.Bytes())); err != nil {
			t.Error(err)
			return
		}
		srv.restart(t, restored)
	}()
	got, err := chaos.QueryBatchN(ws, 4)
	<-killed
	if err != nil {
		t.Fatalf("QueryBatch across the kill: %v", err)
	}
	for i := range ws {
		if !reflect.DeepEqual(relation.IDs(got[i]), relation.IDs(want[i])) {
			t.Errorf("query %d (%v): chaos IDs %v != reference %v",
				i, ws[i], relation.IDs(got[i]), relation.IDs(want[i]))
		}
	}
	// And the pooled client keeps working after the dust settles.
	gotQ, err := chaos.Query(ws[0])
	if err != nil {
		t.Fatal(err)
	}
	wantQ, err := ref.Query(ws[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(relation.IDs(gotQ), relation.IDs(wantQ)) {
		t.Errorf("post-recovery Query = %v, want %v", relation.IDs(gotQ), relation.IDs(wantQ))
	}
}
