package repro

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startRemoteCloud runs a qbcloud-equivalent on a loopback listener.
func startRemoteCloud(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = wire.NewCloud().Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String()
}

// TestClientAgainstRemoteCloud runs the public API against a cloud in a
// separate (simulated) process over TCP.
func TestClientAgainstRemoteCloud(t *testing.T) {
	addr := startRemoteCloud(t)
	for _, tech := range []Technique{TechNoInd, TechDetIndex, TechArx} {
		t.Run(tech.String(), func(t *testing.T) {
			c, err := NewClient(Config{
				MasterKey: []byte("remote test"),
				Attr:      "EId",
				Technique: tech,
				Seed:      seed(77),
				CloudAddr: startRemoteCloud(t), // fresh cloud per technique
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			emp := workload.Employee()
			if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
				t.Fatal(err)
			}
			for _, eid := range []string{"E101", "E259", "E199"} {
				got, err := c.Query(Str(eid))
				if err != nil {
					t.Fatal(err)
				}
				want, _ := emp.Select("EId", Str(eid))
				if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
					t.Errorf("Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
				}
			}
		})
	}
	_ = addr
}

// TestRemoteCloudRejectsVerticalClient: one qbcloud hosts a single
// encrypted store, so the two differently-keyed sub-clients of a
// vertical client cannot share it.
func TestRemoteCloudRejectsVerticalClient(t *testing.T) {
	if _, err := NewVerticalClient(Config{
		MasterKey: []byte("k"), Attr: "EId", CloudAddr: startRemoteCloud(t),
	}, []string{"Salary"}); err == nil {
		t.Fatal("vertical client accepted a remote cloud")
	}
}

func TestRemoteCloudRejectsScanTechniques(t *testing.T) {
	addr := startRemoteCloud(t)
	for _, tech := range []Technique{TechShamir, TechDPFPIR, TechSimOpaque} {
		if _, err := NewClient(Config{
			MasterKey: []byte("k"), Attr: "K", Technique: tech, CloudAddr: addr,
		}); err == nil {
			t.Errorf("technique %v accepted a remote cloud", tech)
		}
	}
}

// TestSaveResumeOverRemoteCloud persists the owner state and resumes a new
// client against the same remote cloud without re-outsourcing.
func TestSaveResumeOverRemoteCloud(t *testing.T) {
	addr := startRemoteCloud(t)
	mk := func() *Client {
		c, err := NewClient(Config{
			MasterKey: []byte("resume test"),
			Attr:      "EId",
			Seed:      seed(88),
			CloudAddr: addr,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	emp := workload.Employee()
	c1 := mk()
	if err := c1.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c1.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}

	c2 := mk()
	if err := c2.Resume(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Query(Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := emp.Select("EId", Str("E259"))
	if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
		t.Errorf("resumed Query = %v, want %v", relation.IDs(got), relation.IDs(want))
	}

	// Resume without a remote cloud is rejected.
	local, err := NewClient(Config{MasterKey: []byte("k"), Attr: "EId"})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Resume(&buf); err == nil {
		t.Error("local Resume accepted")
	}
}

// TestRemoteQueryBatchMatchesSequential is the observational-equivalence
// property test against the remote backend: with the multiplexed wire
// client (and optionally a connection pool) underneath, QueryBatch must
// return the same per-query answers and log the same adversarial views,
// in the same order, as a sequential Query loop — exactly as it does
// against the in-process cloud.
func TestRemoteQueryBatchMatchesSequential(t *testing.T) {
	for _, tech := range []Technique{TechNoInd, TechArx} {
		for _, conns := range []int{1, 3} {
			t.Run(fmt.Sprintf("%v/conns=%d", tech, conns), func(t *testing.T) {
				ds, err := workload.Generate(workload.GenSpec{
					Tuples: 160, DistinctValues: 16, Alpha: 0.4,
					AssocFraction: 0.5, Seed: 21,
				})
				if err != nil {
					t.Fatal(err)
				}
				c, err := NewClient(Config{
					MasterKey:  []byte("remote batch equivalence"),
					Attr:       workload.Attr,
					Technique:  tech,
					Seed:       seed(29),
					CloudAddr:  startRemoteCloud(t),
					CloudConns: conns,
				})
				if err != nil {
					t.Fatal(err)
				}
				defer c.Close()
				if err := c.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
					t.Fatal(err)
				}
				ws := batchWorkload(ds, 12, 321)

				seq := make([][]Tuple, len(ws))
				for i, w := range ws {
					got, err := c.Query(w)
					if err != nil {
						t.Fatalf("sequential Query(%v): %v", w, err)
					}
					seq[i] = got
				}
				seqViews := c.AdversarialViews()
				if len(seqViews) != len(ws) {
					t.Fatalf("sequential run recorded %d views, want %d", len(seqViews), len(ws))
				}

				batch, err := c.QueryBatchN(ws, 4)
				if err != nil {
					t.Fatalf("QueryBatch: %v", err)
				}
				views := c.AdversarialViews()
				if len(views) != 2*len(ws) {
					t.Fatalf("after batch: %d views, want %d", len(views), 2*len(ws))
				}
				batchViews := views[len(ws):]
				for i := range ws {
					if !reflect.DeepEqual(relation.IDs(seq[i]), relation.IDs(batch[i])) {
						t.Errorf("query %d (%v): batch IDs %v != sequential %v",
							i, ws[i], relation.IDs(batch[i]), relation.IDs(seq[i]))
					}
					if viewKey(batchViews[i]) != viewKey(seqViews[i]) {
						t.Errorf("query %d (%v): batch view %s != sequential view %s",
							i, ws[i], viewKey(batchViews[i]), viewKey(seqViews[i]))
					}
				}
			})
		}
	}
}

// TestRemoteQueryAsync smoke-tests the streaming batch against a remote
// cloud through a connection pool: every answer matches the sequential
// one and no transport error sticks.
func TestRemoteQueryAsync(t *testing.T) {
	c, err := NewClient(Config{
		MasterKey:  []byte("remote async"),
		Attr:       "EId",
		Seed:       seed(5),
		CloudAddr:  startRemoteCloud(t),
		CloudConns: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	emp := workload.Employee()
	if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	ws := []Value{Str("E101"), Str("E259"), Str("E199"), Str("E152"), Str("E000")}
	for res := range c.QueryAsyncN(ws, 3) {
		if res.Err != nil {
			t.Fatalf("query %d: %v", res.Index, res.Err)
		}
		want, _ := emp.Select("EId", ws[res.Index])
		if !reflect.DeepEqual(relation.IDs(res.Tuples), relation.IDs(want)) {
			t.Errorf("query %d = %v, want %v", res.Index, relation.IDs(res.Tuples), relation.IDs(want))
		}
	}
}

// TestRemoteQueryAfterConnectionLost: once the transport to the cloud is
// gone, queries must return an error — not silently empty results — even
// though the backend's void interface methods cannot return errors
// in-band.
func TestRemoteQueryAfterConnectionLost(t *testing.T) {
	c, err := NewClient(Config{
		MasterKey: []byte("remote severed"),
		Attr:      "EId",
		Seed:      seed(61),
		CloudAddr: startRemoteCloud(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	emp := workload.Employee()
	if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Query(Str("E101")); err != nil {
		t.Fatalf("query before severing: %v", err)
	}

	// Sever the transport (an explicit Close stands in for a crashed
	// qbcloud; either way the connection is unusable).
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got, err := c.Query(Str("E101")); err == nil {
		t.Fatalf("query over severed connection returned %v with nil error", got)
	}
	if _, err := c.QueryBatch([]Value{Str("E101"), Str("E259")}); err == nil {
		t.Fatal("batch over severed connection reported success")
	}
	for res := range c.QueryAsync([]Value{Str("E101")}) {
		if res.Err == nil {
			t.Fatal("async result over severed connection carried no error")
		}
	}
	// Writes fail too: nothing pending must not read as durable success.
	if err := c.Insert(Tuple{ID: 1, Values: []Value{
		Str("E900"), Str("X"), Str("Y"), Int(1), Int(1), Str("Design"),
	}}, true); err == nil {
		t.Fatal("insert over severed connection reported success")
	}
}

func TestRemoteCloudUnreachable(t *testing.T) {
	if _, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: "K", CloudAddr: "127.0.0.1:1",
	}); err == nil {
		t.Fatal("unreachable cloud accepted")
	}
}
