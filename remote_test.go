package repro

import (
	"bytes"
	"net"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/wire"
	"repro/internal/workload"
)

// startRemoteCloud runs a qbcloud-equivalent on a loopback listener.
func startRemoteCloud(t *testing.T) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = wire.NewCloud().Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	return lis.Addr().String()
}

// TestClientAgainstRemoteCloud runs the public API against a cloud in a
// separate (simulated) process over TCP.
func TestClientAgainstRemoteCloud(t *testing.T) {
	addr := startRemoteCloud(t)
	for _, tech := range []Technique{TechNoInd, TechDetIndex, TechArx} {
		t.Run(tech.String(), func(t *testing.T) {
			c, err := NewClient(Config{
				MasterKey: []byte("remote test"),
				Attr:      "EId",
				Technique: tech,
				Seed:      seed(77),
				CloudAddr: startRemoteCloud(t), // fresh cloud per technique
			})
			if err != nil {
				t.Fatal(err)
			}
			emp := workload.Employee()
			if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
				t.Fatal(err)
			}
			for _, eid := range []string{"E101", "E259", "E199"} {
				got, err := c.Query(Str(eid))
				if err != nil {
					t.Fatal(err)
				}
				want, _ := emp.Select("EId", Str(eid))
				if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
					t.Errorf("Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
				}
			}
		})
	}
	_ = addr
}

func TestRemoteCloudRejectsScanTechniques(t *testing.T) {
	addr := startRemoteCloud(t)
	for _, tech := range []Technique{TechShamir, TechDPFPIR, TechSimOpaque} {
		if _, err := NewClient(Config{
			MasterKey: []byte("k"), Attr: "K", Technique: tech, CloudAddr: addr,
		}); err == nil {
			t.Errorf("technique %v accepted a remote cloud", tech)
		}
	}
}

// TestSaveResumeOverRemoteCloud persists the owner state and resumes a new
// client against the same remote cloud without re-outsourcing.
func TestSaveResumeOverRemoteCloud(t *testing.T) {
	addr := startRemoteCloud(t)
	mk := func() *Client {
		c, err := NewClient(Config{
			MasterKey: []byte("resume test"),
			Attr:      "EId",
			Seed:      seed(88),
			CloudAddr: addr,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	emp := workload.Employee()
	c1 := mk()
	if err := c1.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c1.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}

	c2 := mk()
	if err := c2.Resume(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := c2.Query(Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := emp.Select("EId", Str("E259"))
	if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
		t.Errorf("resumed Query = %v, want %v", relation.IDs(got), relation.IDs(want))
	}

	// Resume without a remote cloud is rejected.
	local, err := NewClient(Config{MasterKey: []byte("k"), Attr: "EId"})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Resume(&buf); err == nil {
		t.Error("local Resume accepted")
	}
}

func TestRemoteCloudUnreachable(t *testing.T) {
	if _, err := NewClient(Config{
		MasterKey: []byte("k"), Attr: "K", CloudAddr: "127.0.0.1:1",
	}); err == nil {
		t.Fatal("unreachable cloud accepted")
	}
}
