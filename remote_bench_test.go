package repro

import (
	"fmt"
	mrand "math/rand/v2"
	"net"
	"runtime"
	"slices"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/technique"
	"repro/internal/wire"
	"repro/internal/workload"
)

// remoteBenchOwner builds an owner whose clear-text AND encrypted stores
// live behind the given wire backend; cached attaches the owner-side
// version cache (the library default against a remote cloud).
func remoteBenchOwner(b *testing.B, ds *workload.Dataset, backend wire.Backend, cached bool) *owner.Owner {
	b.Helper()
	tech, err := technique.NewNoIndOn(crypto.DeriveKeys([]byte("bench-remote")), backend)
	if err != nil {
		b.Fatal(err)
	}
	if cached {
		tech.SetCache(technique.NewCache(0))
	}
	o := owner.New(tech, workload.Attr)
	o.SetCloudBackend(backend)
	opts := core.Options{Rand: mrand.New(mrand.NewPCG(1, 2))}
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, opts); err != nil {
		b.Fatal(err)
	}
	if err := backend.Flush(); err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkRemoteQueryBatch is the remote-batching headline: a
// 256-selection batch against a cloud reached over the multiplexed wire
// protocol, sequential vs QueryBatch at 1, 4 and GOMAXPROCS workers, on
// both an in-memory net.Pipe transport and real TCP loopback. QueryBatch
// pays one opEncAttrColumn and one opEncFetchBatch round trip for the
// whole batch where the sequential loop pays one pair per query, so the
// batched sub-benchmarks win even on a single CPU; extra workers
// additionally parallelise the plaintext fetches against the server-side
// dispatch pool on multi-core. The pool holds min(workers, GOMAXPROCS)
// connections. Before/after numbers live in docs/BENCHMARKS.md.
//
// The owner-side version cache runs in its library-default state (on):
// after the first pull, each sequential query revalidates the decrypted
// column with a constant-size conditional round trip instead of re-pulling
// it, which is where the sequential series' jump in the tracked
// BENCH_remote.json comes from. The sequential-nocache sub-benchmark keeps
// the pre-cache per-query-pull profile measurable on a separate cloud.
func BenchmarkRemoteQueryBatch(b *testing.B) {
	ds := benchDataset(b, 2_000, 0.3)
	queries := workload.QueryStream(ds, workload.QuerySpec{Queries: 64, Seed: 9})
	const batch = 256
	ws := slices.Repeat(queries, batch/len(queries))

	poolSize := runtime.GOMAXPROCS(0)
	if poolSize > 4 {
		poolSize = 4
	}

	sweep := func(b *testing.B, mk func(b *testing.B) wire.Backend) {
		b.Helper()
		qps := func(b *testing.B) {
			b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
		}
		sequential := func(b *testing.B, o *owner.Owner) {
			for i := 0; i < b.N; i++ {
				for _, w := range ws {
					if _, _, err := o.Query(w); err != nil {
						b.Fatal(err)
					}
				}
				o.Server().ResetViews()
			}
			qps(b)
		}

		backend := mk(b)
		o := remoteBenchOwner(b, ds, backend, true)
		b.Run("sequential", func(b *testing.B) { sequential(b, o) })
		workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
		slices.Sort(workerCounts)
		for _, workers := range slices.Compact(workerCounts) {
			b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, _, err := o.QueryBatch(ws, workers); err != nil {
						b.Fatal(err)
					}
					o.Server().ResetViews()
				}
				qps(b)
			})
		}
		if err := backend.Err(); err != nil {
			b.Fatal(err)
		}

		// Control arm on a fresh cloud: the uncached per-query column pull.
		ncBackend := mk(b)
		nc := remoteBenchOwner(b, ds, ncBackend, false)
		b.Run("sequential-nocache", func(b *testing.B) { sequential(b, nc) })
		if err := ncBackend.Err(); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("pipe", func(b *testing.B) {
		sweep(b, func(b *testing.B) wire.Backend {
			cloud := wire.NewCloud()
			conns := make([]*wire.Client, poolSize)
			for i := range conns {
				cend, send := net.Pipe()
				go cloud.ServeConn(send)
				conns[i] = wire.NewClient(cend)
				b.Cleanup(func(c *wire.Client) func() { return func() { c.Close() } }(conns[i]))
			}
			return wire.NewPool(conns)
		})
	})

	b.Run("tcp-loopback", func(b *testing.B) {
		sweep(b, func(b *testing.B) wire.Backend {
			lis, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { lis.Close() })
			go func() { _ = wire.NewCloud().Serve(lis) }()
			pool, err := wire.DialPool(lis.Addr().String(), poolSize)
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { pool.Close() })
			return pool
		})
	})
}
