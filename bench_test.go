package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation micro-benchmarks for the design choices
// DESIGN.md calls out. Run everything with
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks print their tables once (so `-bench` output
// doubles as the reproduction report) and then time the underlying
// operation.

import (
	"fmt"
	mrand "math/rand/v2"
	"net"
	"os"
	"runtime"
	"slices"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/crypto"
	"repro/internal/experiments"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/wire"
	"repro/internal/workload"
)

var printOnce sync.Once

func printTables(b *testing.B, tables ...*experiments.Table) {
	b.Helper()
	for _, t := range tables {
		t.Fprint(os.Stdout)
	}
}

// BenchmarkFigure6a times the analytical η model and prints the Figure 6a
// series once.
func BenchmarkFigure6a(b *testing.B) {
	printOnce.Do(func() { printTables(b, experiments.Figure6a()) })
	p := costmodel.Params{Alpha: 0.6, Beta: 1000, Gamma: 25000, Rho: 0.1, D: 4_500_000, SB: 1000, NSB: 1000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Eta()
	}
}

// BenchmarkFigure6b measures η experimentally at a laptop-friendly scale
// and reports it as a custom metric.
func BenchmarkFigure6b(b *testing.B) {
	spec := experiments.Fig6bSpec{Sizes: []int{20_000}, Alphas: []float64{0.3}, Queries: 3, Seed: 1}
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Figure6b(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTables(b, tab)
}

// BenchmarkFigure6c sweeps the bin-size imbalance.
func BenchmarkFigure6c(b *testing.B) {
	spec := experiments.Fig6cSpec{Tuples: 20_000, DistinctValues: 1_600, Queries: 3, Seed: 2}
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.Figure6c(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTables(b, tab)
}

// BenchmarkTablesIIandIII regenerates the Example 2 adversarial views.
func BenchmarkTablesIIandIII(b *testing.B) {
	var naive, qb *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		naive, qb, err = experiments.TablesIIandIII()
		if err != nil {
			b.Fatal(err)
		}
	}
	printTables(b, naive, qb)
}

// BenchmarkTable4SurvivingMatches regenerates the Example 3 / Figure 4
// surviving-matches analysis.
func BenchmarkTable4SurvivingMatches(b *testing.B) {
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.TableIVandFigure4()
		if err != nil {
			b.Fatal(err)
		}
	}
	printTables(b, tab)
}

// BenchmarkFigure5 regenerates the fake-tuple minimisation comparison.
func BenchmarkFigure5(b *testing.B) {
	var tab *experiments.Table
	for i := 0; i < b.N; i++ {
		tab = experiments.FigureV()
	}
	printTables(b, tab)
}

// BenchmarkTableVI regenerates the QB x Opaque/Jana timing table from the
// calibrated cost models.
func BenchmarkTableVI(b *testing.B) {
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.TableVI()
		if err != nil {
			b.Fatal(err)
		}
	}
	printTables(b, tab)
}

// BenchmarkSecurityAblation regenerates the §VI attack matrix.
func BenchmarkSecurityAblation(b *testing.B) {
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.SecurityAblation(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTables(b, tab)
}

// BenchmarkMetadataSizes regenerates the TPC-H metadata-size table.
func BenchmarkMetadataSizes(b *testing.B) {
	var tab *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		tab, err = experiments.MetadataSizes(5_000, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	printTables(b, tab)
}

// --- Ablation micro-benchmarks ---------------------------------------------

func benchDataset(b *testing.B, tuples int, alpha float64) *workload.Dataset {
	b.Helper()
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: tuples, DistinctValues: tuples / 10, Alpha: alpha,
		AssocFraction: 0.5, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchOwner(b *testing.B, ds *workload.Dataset, tech technique.Technique, pred relation.Predicate) *owner.Owner {
	b.Helper()
	o := owner.New(tech, workload.Attr)
	opts := core.Options{Rand: mrand.New(mrand.NewPCG(1, 2))}
	if err := o.Outsource(ds.Relation.Clone(), pred, opts); err != nil {
		b.Fatal(err)
	}
	return o
}

// BenchmarkQueryQBvsFull contrasts a QB query (sensitive partition only
// encrypted) with a query over the fully encrypted dataset, per technique —
// the headline speedup.
func BenchmarkQueryQBvsFull(b *testing.B) {
	ds := benchDataset(b, 20_000, 0.3)
	ks := crypto.DeriveKeys([]byte("bench"))
	queries := workload.QueryStream(ds, workload.QuerySpec{Queries: 64, Seed: 3})

	for _, mode := range []string{"QB", "full-encryption"} {
		pred := ds.Sensitive
		if mode == "full-encryption" {
			pred = func(relation.Tuple) bool { return true }
		}
		tech, err := technique.NewNoInd(ks)
		if err != nil {
			b.Fatal(err)
		}
		o := benchOwner(b, ds, tech, pred)
		b.Run(mode, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := o.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryPerTechnique times one QB query under each cryptographic
// technique.
func BenchmarkQueryPerTechnique(b *testing.B) {
	ds := benchDataset(b, 5_000, 0.3)
	ks := crypto.DeriveKeys([]byte("bench2"))
	queries := workload.QueryStream(ds, workload.QuerySpec{Queries: 64, Seed: 4})
	techs := map[string]func() (technique.Technique, error){
		"NoInd":    func() (technique.Technique, error) { return technique.NewNoInd(ks) },
		"DetIndex": func() (technique.Technique, error) { return technique.NewDetIndex(ks) },
		"Arx":      func() (technique.Technique, error) { return technique.NewArx(ks) },
		"Shamir":   func() (technique.Technique, error) { return technique.NewShamirScan(ks, 3, 2) },
	}
	for name, mk := range techs {
		tech, err := mk()
		if err != nil {
			b.Fatal(err)
		}
		o := benchOwner(b, ds, tech, ds.Sensitive)
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := o.Query(queries[i%len(queries)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBinCreation times Algorithm 1 across metadata sizes — the
// owner-side setup cost.
func BenchmarkBinCreation(b *testing.B) {
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		sens := make([]relation.ValueCount, n/2)
		nonsens := make([]relation.ValueCount, n)
		for i := range sens {
			sens[i] = relation.ValueCount{Value: relation.Int(int64(i)), Count: 1 + i%7}
		}
		for i := range nonsens {
			nonsens[i] = relation.ValueCount{Value: relation.Int(int64(i)), Count: 1 + i%5}
		}
		b.Run(fmt.Sprintf("values=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.Options{Rand: mrand.New(mrand.NewPCG(uint64(i), 7))}
				if _, err := core.CreateBins(sens, nonsens, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBinRetrieval times Algorithm 2 (a metadata lookup).
func BenchmarkBinRetrieval(b *testing.B) {
	sens := make([]relation.ValueCount, 10_000)
	nonsens := make([]relation.ValueCount, 10_000)
	for i := range sens {
		sens[i] = relation.ValueCount{Value: relation.Int(int64(i)), Count: 1}
		nonsens[i] = relation.ValueCount{Value: relation.Int(int64(i)), Count: 1}
	}
	bins, err := core.CreateBins(sens, nonsens, core.Options{Rand: mrand.New(mrand.NewPCG(1, 2))})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := bins.Retrieve(relation.Int(int64(i % 10_000))); !ok {
			b.Fatal("miss")
		}
	}
}

// BenchmarkNearestSquareAblation compares the per-query retrieval volume
// with and without the nearest-square extension on an awkward domain size
// (prime |NS|) — the design choice of §IV-A's "simple extension".
func BenchmarkNearestSquareAblation(b *testing.B) {
	const nNS = 9973 // prime: exact factorisation degenerates to (9973, 1)
	sens := make([]relation.ValueCount, 4000)
	nonsens := make([]relation.ValueCount, nNS)
	for i := range sens {
		sens[i] = relation.ValueCount{Value: relation.Int(int64(i)), Count: 1}
	}
	for i := range nonsens {
		nonsens[i] = relation.ValueCount{Value: relation.Int(int64(i)), Count: 1}
	}
	for _, disable := range []bool{false, true} {
		name := "nearest-square"
		if disable {
			name = "exact-factors"
		}
		b.Run(name, func(b *testing.B) {
			opts := core.Options{
				Rand:                 mrand.New(mrand.NewPCG(1, 2)),
				DisableNearestSquare: disable,
			}
			bins, err := core.CreateBins(sens, nonsens, opts)
			if err != nil {
				b.Fatal(err)
			}
			volume := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ret, _ := bins.Retrieve(relation.Int(int64(i % 4000)))
				volume = len(ret.SensValues) + len(ret.NSValues)
			}
			b.ReportMetric(float64(volume), "values/query")
		})
	}
}

// BenchmarkDPF times key generation plus a full-domain evaluation of the
// distributed point function (one PIR query's cloud-side work).
func BenchmarkDPF(b *testing.B) {
	for _, n := range []int{256, 4096} {
		bits := crypto.DPFDomainBits(n)
		b.Run(fmt.Sprintf("domain=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				k0, _, err := crypto.DPFGen(uint64(i%n), bits, nil)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := crypto.DPFEvalAll(k0, n, bits); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkQueryDPFPIR times a QB query under the access-pattern-hiding
// two-server PIR technique.
func BenchmarkQueryDPFPIR(b *testing.B) {
	ds := benchDataset(b, 2_000, 0.3)
	tech, err := technique.NewDPFPIR(crypto.DeriveKeys([]byte("bench5")))
	if err != nil {
		b.Fatal(err)
	}
	o := benchOwner(b, ds, tech, ds.Sensitive)
	queries := workload.QueryStream(ds, workload.QuerySpec{Queries: 16, Seed: 5})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := o.Query(queries[i%len(queries)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteQuery measures the wire-protocol overhead: the same QB
// query against an in-process cloud vs a cloud behind TCP loopback.
func BenchmarkRemoteQuery(b *testing.B) {
	ds := benchDataset(b, 5_000, 0.3)
	queries := workload.QueryStream(ds, workload.QuerySpec{Queries: 16, Seed: 9})

	run := func(b *testing.B, o *owner.Owner) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			if _, _, err := o.Query(queries[i%len(queries)]); err != nil {
				b.Fatal(err)
			}
		}
	}

	b.Run("local", func(b *testing.B) {
		tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("bench6")))
		if err != nil {
			b.Fatal(err)
		}
		run(b, benchOwner(b, ds, tech, ds.Sensitive))
	})
	b.Run("tcp-loopback", func(b *testing.B) {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		defer lis.Close()
		go func() { _ = wire.NewCloud().Serve(lis) }()
		conn, err := wire.Dial(lis.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		defer conn.Close()
		tech, err := technique.NewNoIndOn(crypto.DeriveKeys([]byte("bench7")), conn)
		if err != nil {
			b.Fatal(err)
		}
		o := owner.New(tech, workload.Attr)
		o.SetCloudBackend(conn)
		opts := core.Options{Rand: mrand.New(mrand.NewPCG(1, 2))}
		if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, opts); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		run(b, o)
	})
}

// BenchmarkQueryBatch measures batch-engine throughput on the default
// employee workload: a 512-selection batch over the Figure 1 relation,
// sequential vs QueryBatch at 1, 4 and GOMAXPROCS workers. The custom
// queries/sec metric is the headline. Two effects separate the
// sub-benchmarks: QueryBatch shares the technique's column pull across
// the whole batch (visible even at workers=1 on one core), and extra
// workers parallelise the plaintext fan-out on multi-core. Before/after
// numbers live in docs/BENCHMARKS.md.
func BenchmarkQueryBatch(b *testing.B) {
	tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("bench8")))
	if err != nil {
		b.Fatal(err)
	}
	o := owner.New(tech, "EId")
	opts := core.Options{Rand: mrand.New(mrand.NewPCG(1, 2))}
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, opts); err != nil {
		b.Fatal(err)
	}
	eids := []relation.Value{
		relation.Str("E101"), relation.Str("E259"), relation.Str("E199"),
		relation.Str("E152"), relation.Str("E254"), relation.Str("E159"),
	}
	const batch = 512
	ws := make([]relation.Value, batch)
	for i := range ws {
		ws[i] = eids[i%len(eids)]
	}
	qps := func(b *testing.B) {
		b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
	}

	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, w := range ws {
				if _, _, err := o.Query(w); err != nil {
					b.Fatal(err)
				}
			}
			o.Server().ResetViews() // bound the view log across iterations
		}
		qps(b)
	})
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	slices.Sort(workerCounts)
	for _, workers := range slices.Compact(workerCounts) {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := o.QueryBatch(ws, workers); err != nil {
					b.Fatal(err)
				}
				o.Server().ResetViews()
			}
			qps(b)
		})
	}
}

// BenchmarkShamirShareSplit times the secret-sharing substrate.
func BenchmarkShamirShareSplit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := crypto.SplitSecret(uint64(i), 3, 2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbabilisticEncrypt times the AES-GCM substrate on a 200-byte
// row (the paper's TPC-H Customer row size).
func BenchmarkProbabilisticEncrypt(b *testing.B) {
	p, err := crypto.NewProbabilistic(crypto.DeriveKeys([]byte("bench3")).Enc)
	if err != nil {
		b.Fatal(err)
	}
	row := make([]byte, 200)
	b.SetBytes(200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Encrypt(row); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsert times the insert extension for non-sensitive tuples with
// existing values (no re-binning, no padding). Sensitive inserts
// additionally cost O(#bins) fake tuples each to keep bin volumes equal —
// an unbounded steady-state amplification that the InsertCost experiment
// measures at a fixed insert count instead (benchmarking it at large b.N
// would grow the store without bound).
func BenchmarkInsert(b *testing.B) {
	ds := benchDataset(b, 5_000, 0.3)
	tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("bench4")))
	if err != nil {
		b.Fatal(err)
	}
	o := benchOwner(b, ds, tech, ds.Sensitive)
	schema := ds.Relation.Schema
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals := make([]relation.Value, schema.Arity())
		for j := range vals {
			vals[j] = relation.Int(0)
		}
		vals[0] = relation.Int(int64(i % 500))
		if err := o.Insert(relation.Tuple{ID: 1 << 21, Values: vals}, false); err != nil {
			b.Fatal(err)
		}
	}
}
