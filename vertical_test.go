package repro

import (
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

func TestVerticalClientEndToEnd(t *testing.T) {
	c, err := NewVerticalClient(Config{
		MasterKey: []byte("vertical facade"),
		Attr:      "EId",
		Seed:      seed(9),
	}, []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	emp := workload.Employee()
	if err := c.Outsource(emp.Clone(), workload.EmployeeSensitive); err != nil {
		t.Fatal(err)
	}
	for _, eid := range []string{"E101", "E259", "E199"} {
		got, err := c.Query(Str(eid))
		if err != nil {
			t.Fatal(err)
		}
		want, err := emp.Select("EId", Str(eid))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
			t.Errorf("Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
		}
		// Full schema: 6 columns including SSN.
		for _, tp := range got {
			if len(tp.Values) != 6 {
				t.Errorf("tuple %d has %d columns, want 6", tp.ID, len(tp.Values))
			}
		}
	}
	if len(c.AdversarialViews()) == 0 {
		t.Error("no views recorded")
	}
}

func TestNewVerticalClientValidation(t *testing.T) {
	if _, err := NewVerticalClient(Config{}, []string{"SSN"}); err == nil {
		t.Fatal("empty config accepted")
	}
}
