package repro

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// allTechniques enumerates every Technique value the batch engine must be
// observationally equivalent under.
var allTechniques = []Technique{
	TechNoInd, TechDetIndex, TechArx, TechShamir,
	TechSimOpaque, TechSimJana, TechDPFPIR,
}

// datasetClient builds a client over a small random dataset with a seeded
// bin permutation (so twin runs on the same client are reproducible).
func datasetClient(t *testing.T, tech Technique, genSeed int64) (*Client, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 160, DistinctValues: 16, Alpha: 0.4,
		AssocFraction: 0.5, Seed: genSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(Config{
		MasterKey: []byte("batch test master key"),
		Attr:      workload.Attr,
		Technique: tech,
		Seed:      seed(uint64(genSeed) + 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Outsource(ds.Relation.Clone(), ds.Sensitive); err != nil {
		t.Fatal(err)
	}
	return c, ds
}

// batchWorkload draws a query stream including values absent from the
// relation, so empty adversarial views are exercised too.
func batchWorkload(ds *workload.Dataset, n int, qSeed int64) []Value {
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: n, Seed: qSeed})
	for i := 0; i < 3; i++ {
		ws = append(ws, Int(int64(100_000+i)))
	}
	return ws
}

// viewKey canonicalises a view for comparison, ignoring the QueryID
// sequence number.
func viewKey(v AdversarialView) string {
	return fmt.Sprintf("pv=%v ep=%d pr=%v ea=%v",
		v.PlainValues, v.EncPredicates, v.PlainResults, v.EncResultAddrs)
}

// TestQueryBatchMatchesSequential is the equivalence property test: for
// random relations and workloads, QueryBatch returns the same per-query
// answers and appends the same adversarial views, in the same order, as a
// sequential loop over Query — across every Technique value.
func TestQueryBatchMatchesSequential(t *testing.T) {
	for _, tech := range allTechniques {
		for _, genSeed := range []int64{3, 17} {
			t.Run(fmt.Sprintf("%v/seed=%d", tech, genSeed), func(t *testing.T) {
				c, ds := datasetClient(t, tech, genSeed)
				ws := batchWorkload(ds, 12, genSeed+100)

				seq := make([][]Tuple, len(ws))
				for i, w := range ws {
					got, err := c.Query(w)
					if err != nil {
						t.Fatalf("sequential Query(%v): %v", w, err)
					}
					seq[i] = got
				}
				seqViews := c.AdversarialViews()
				if len(seqViews) != len(ws) {
					t.Fatalf("sequential run recorded %d views, want %d", len(seqViews), len(ws))
				}

				batch, err := c.QueryBatchN(ws, 4)
				if err != nil {
					t.Fatalf("QueryBatch: %v", err)
				}
				views := c.AdversarialViews()
				if len(views) != 2*len(ws) {
					t.Fatalf("after batch: %d views, want %d", len(views), 2*len(ws))
				}
				batchViews := views[len(ws):]

				for i := range ws {
					if !reflect.DeepEqual(relation.IDs(seq[i]), relation.IDs(batch[i])) {
						t.Errorf("query %d (%v): batch IDs %v != sequential %v",
							i, ws[i], relation.IDs(batch[i]), relation.IDs(seq[i]))
					}
					if viewKey(batchViews[i]) != viewKey(seqViews[i]) {
						t.Errorf("query %d (%v): batch view %s != sequential view %s",
							i, ws[i], viewKey(batchViews[i]), viewKey(seqViews[i]))
					}
					if batchViews[i].QueryID != len(ws)+i {
						t.Errorf("batch view %d has QueryID %d, want %d", i, batchViews[i].QueryID, len(ws)+i)
					}
				}
			})
		}
	}
}

// TestQueryAsyncMatchesSequential checks the streaming variant: every
// query's answer matches the sequential one, and the multiset of recorded
// views equals the sequential multiset (order follows completion).
func TestQueryAsyncMatchesSequential(t *testing.T) {
	c, ds := datasetClient(t, TechNoInd, 5)
	ws := batchWorkload(ds, 16, 55)

	seq := make([][]Tuple, len(ws))
	for i, w := range ws {
		got, err := c.Query(w)
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = got
	}
	seqViews := c.AdversarialViews()

	n := 0
	for res := range c.QueryAsync(ws) {
		if res.Err != nil {
			t.Fatalf("query %d (%v): %v", res.Index, res.Query, res.Err)
		}
		if !reflect.DeepEqual(relation.IDs(seq[res.Index]), relation.IDs(res.Tuples)) {
			t.Errorf("query %d (%v): async IDs %v != sequential %v",
				res.Index, res.Query, relation.IDs(res.Tuples), relation.IDs(seq[res.Index]))
		}
		if res.Stats == nil {
			t.Errorf("query %d: nil stats", res.Index)
		}
		n++
	}
	if n != len(ws) {
		t.Fatalf("stream delivered %d results, want %d", n, len(ws))
	}

	views := c.AdversarialViews()
	if len(views) != 2*len(ws) {
		t.Fatalf("after async batch: %d views, want %d", len(views), 2*len(ws))
	}
	want := make(map[string]int)
	for _, v := range seqViews {
		want[viewKey(v)]++
	}
	got := make(map[string]int)
	for _, v := range views[len(ws):] {
		got[viewKey(v)]++
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("async view multiset differs from sequential:\n got %v\nwant %v", got, want)
	}
}

// TestQueryBatchEmpty covers the empty-batch error path: no results, no
// error, no views recorded.
func TestQueryBatchEmpty(t *testing.T) {
	c := employeeClient(t, TechNoInd)
	before := len(c.AdversarialViews())
	for _, ws := range [][]Value{nil, {}} {
		out, err := c.QueryBatch(ws)
		if err != nil {
			t.Fatalf("empty batch: %v", err)
		}
		if len(out) != 0 {
			t.Fatalf("empty batch returned %d results", len(out))
		}
	}
	for range c.QueryAsync(nil) {
		t.Fatal("empty async batch delivered a result")
	}
	if got := len(c.AdversarialViews()); got != before {
		t.Fatalf("empty batches recorded %d views", got-before)
	}
}

// TestQueryBatchBeforeOutsource covers the not-outsourced error path.
func TestQueryBatchBeforeOutsource(t *testing.T) {
	c, err := NewClient(Config{MasterKey: []byte("k"), Attr: "EId"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.QueryBatch([]Value{Str("E101")}); err == nil {
		t.Fatal("batch before Outsource succeeded")
	}
	res := <-c.QueryAsync([]Value{Str("E101")})
	if res.Err == nil {
		t.Fatal("async batch before Outsource succeeded")
	}
}

// TestQueryBatchMidInsertInterleaving runs a batch while Insert executes
// concurrently: the batch must finish without error (each query sees a
// consistent pre- or post-insert state) and the inserted tuples must be
// visible afterwards.
func TestQueryBatchMidInsertInterleaving(t *testing.T) {
	c, ds := datasetClient(t, TechNoInd, 9)
	ws := batchWorkload(ds, 32, 91)
	schema := ds.Relation.Schema

	var wg sync.WaitGroup
	insErr := make(chan error, 8)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			vals := make([]Value, schema.Arity())
			for j := range vals {
				vals[j] = Int(0)
			}
			vals[0] = Int(int64(i % 4)) // existing values: no re-binning needed
			if err := c.Insert(Tuple{ID: 50_000 + i, Values: vals}, i%2 == 0); err != nil {
				insErr <- err
				return
			}
		}
	}()

	for i := 0; i < 4; i++ {
		if _, err := c.QueryBatchN(ws, 4); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	wg.Wait()
	close(insErr)
	for err := range insErr {
		t.Fatalf("insert: %v", err)
	}

	got, err := c.Query(Int(0))
	if err != nil {
		t.Fatal(err)
	}
	found := 0
	for _, tp := range got {
		if tp.ID >= 50_000 {
			found++
		}
	}
	if found == 0 {
		t.Fatal("inserted tuples invisible after concurrent batch")
	}
}

// TestQueryBatchWithStats sanity-checks the stats variant.
func TestQueryBatchWithStats(t *testing.T) {
	c, ds := datasetClient(t, TechNoInd, 11)
	ws := batchWorkload(ds, 8, 111)
	out, stats, err := c.QueryBatchWithStats(ws, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(ws) || len(stats) != len(ws) {
		t.Fatalf("got %d results / %d stats, want %d", len(out), len(stats), len(ws))
	}
	for i, st := range stats {
		if st == nil {
			t.Fatalf("stats[%d] is nil", i)
		}
		if st.Result != len(out[i]) {
			t.Errorf("stats[%d].Result = %d, want %d", i, st.Result, len(out[i]))
		}
	}
}
