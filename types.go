package repro

import (
	"repro/internal/cloud"
	"repro/internal/owner"
	"repro/internal/relation"
)

// Re-exported relational types: these aliases make the internal substrate
// usable through the public API.
type (
	// Value is a typed attribute value (int64 or string).
	Value = relation.Value
	// Kind is the dynamic type of a Value.
	Kind = relation.Kind
	// Column describes one attribute of a schema.
	Column = relation.Column
	// Schema is an ordered list of typed, named columns.
	Schema = relation.Schema
	// Tuple is one row with its stable ID.
	Tuple = relation.Tuple
	// Relation is an in-memory table.
	Relation = relation.Relation
	// ValueCount pairs a value with its tuple count (owner metadata).
	ValueCount = relation.ValueCount
	// QueryStats reports the cost breakdown of one partitioned query.
	QueryStats = owner.QueryStats
	// JoinPair is one row of an owner-side equi-join result.
	JoinPair = owner.JoinPair
	// AdversarialView is what the honest-but-curious cloud observes for one
	// query (AV = Inc ∪ Opc in the paper).
	AdversarialView = cloud.View
)

// Kinds of attribute values.
const (
	KindInt    = relation.KindInt
	KindString = relation.KindString
)

// Int builds an integer Value.
func Int(v int64) Value { return relation.Int(v) }

// Str builds a string Value.
func Str(s string) Value { return relation.Str(s) }

// NewSchema builds a validated schema.
func NewSchema(name string, cols ...Column) (Schema, error) {
	return relation.NewSchema(name, cols...)
}

// MustSchema is NewSchema that panics on invalid input.
func MustSchema(name string, cols ...Column) Schema {
	return relation.MustSchema(name, cols...)
}

// NewRelation creates an empty relation over the schema.
func NewRelation(s Schema) *Relation { return relation.New(s) }
