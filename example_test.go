package repro

import (
	"fmt"
	"log"
)

// ExampleClient_QueryBatch outsources a small relation with mixed
// sensitivity and answers a whole batch of selections in one call. The
// batch is observationally equivalent to looping Query — same answers,
// same adversarial view log — but scan-shaped techniques (the default
// NoInd among them) pull the encrypted attribute column once for the whole
// batch instead of once per query, and a remote cloud serves all the bin
// fetches in a single round trip.
func ExampleClient_QueryBatch() {
	schema := MustSchema("Employee",
		Column{Name: "EId", Kind: KindString},
		Column{Name: "Dept", Kind: KindString},
	)
	rel := NewRelation(schema)
	for _, r := range [][2]string{
		{"E101", "Defense"}, {"E259", "Design"}, {"E199", "Design"},
		{"E259", "Defense"}, {"E152", "Defense"}, {"E254", "Design"},
	} {
		rel.MustInsert(Str(r[0]), Str(r[1]))
	}

	client, err := NewClient(Config{
		MasterKey: []byte("replace me with a real 32-byte secret"),
		Attr:      "EId",
	})
	if err != nil {
		log.Fatal(err)
	}
	// Rows of the Defense department are sensitive: they are encrypted
	// under the configured technique, the rest is outsourced in clear-text.
	if err := client.Outsource(rel, func(t Tuple) bool {
		return t.Values[1].Str() == "Defense"
	}); err != nil {
		log.Fatal(err)
	}

	queries := []Value{Str("E259"), Str("E101"), Str("E999")}
	answers, err := client.QueryBatch(queries)
	if err != nil {
		log.Fatal(err)
	}
	for i, tuples := range answers {
		fmt.Printf("%s -> %d matching tuple(s)\n", queries[i].Str(), len(tuples))
	}
	// Output:
	// E259 -> 2 matching tuple(s)
	// E101 -> 1 matching tuple(s)
	// E999 -> 0 matching tuple(s)
}
