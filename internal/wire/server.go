package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Cloud is the server-side state: one clear-text store (loaded on demand)
// and one encrypted store. It is what an honest-but-curious operator would
// run. Each connection is handled in its own goroutine, and the ops
// decoded from one connection are themselves dispatched concurrently
// through a bounded per-connection worker pool (responses are serialised
// by a send mutex, so frames never interleave). The stores synchronise
// internally; the cloud-level lock only guards swapping the plaintext
// store, which keeps opPlainLoad (and snapshot Restore) exclusive against
// every in-flight op.
type Cloud struct {
	mu    sync.RWMutex // guards the plain pointer, not the stores
	plain *storage.PlainStore
	enc   *storage.EncryptedStore

	// connWorkers bounds concurrent dispatch per connection; 0 selects
	// GOMAXPROCS.
	connWorkers int
}

// NewCloud returns an empty cloud.
func NewCloud() *Cloud {
	return &Cloud{enc: storage.NewEncryptedStore()}
}

// SetConnWorkers bounds how many ops from a single connection may execute
// concurrently (<= 0 selects GOMAXPROCS). It must be called before Serve.
func (c *Cloud) SetConnWorkers(n int) { c.connWorkers = n }

func (c *Cloud) workersPerConn() int {
	if c.connWorkers > 0 {
		return c.connWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// Serve accepts connections until the listener is closed, handling each
// connection in its own goroutine.
func (c *Cloud) Serve(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.ServeConn(conn)
	}
}

// ServeConn serves one established connection (e.g. net.Pipe in tests and
// benchmarks) until it fails or closes, then closes it. Decoded requests
// are dispatched concurrently through the per-connection worker pool.
func (c *Cloud) ServeConn(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)

	// sendMu serialises response frames from the dispatch workers.
	var sendMu sync.Mutex
	send := func(resp *response) {
		sendMu.Lock()
		err := enc.Encode(resp)
		sendMu.Unlock()
		if err != nil {
			// The response stream is broken; closing the conn unblocks
			// the decode loop so the whole handler winds down.
			conn.Close()
		}
	}

	sem := make(chan struct{}, c.workersPerConn())
	var wg sync.WaitGroup
	for {
		req := new(request)
		if err := dec.Decode(req); err != nil {
			// io.EOF is a clean shutdown; anything else means the frame
			// stream is desynchronised. Either way no reply can safely be
			// written — only well-formed frames (with an ID to echo) get
			// responses — so just close the connection.
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			resp := c.dispatch(req)
			resp.ID = req.ID
			send(&resp)
		}()
	}
	wg.Wait()
}

func (c *Cloud) dispatch(req *request) response {
	if req.Op == opPlainLoad {
		rel := relation.New(req.Schema)
		for _, t := range req.Tuples {
			if err := rel.Append(t); err != nil {
				return response{Err: err.Error()}
			}
		}
		ps, err := storage.NewPlainStore(rel, req.Attr)
		if err != nil {
			return response{Err: err.Error()}
		}
		c.mu.Lock()
		c.plain = ps
		c.mu.Unlock()
		return response{N: rel.Len()}
	}

	// The read lock is held across the whole op — not just the pointer
	// read — so an op can never land in a store that a concurrent
	// opPlainLoad has already swapped out (the stores themselves
	// synchronise internally, so read ops still run in parallel).
	c.mu.RLock()
	defer c.mu.RUnlock()
	plain := c.plain

	switch req.Op {
	case opPing:
		return response{}
	case opPlainSearch:
		if plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		return response{Tuples: plain.Search(req.Values)}
	case opPlainSearchRange:
		if plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		return response{Tuples: plain.SearchRange(req.Lo, req.Hi)}
	case opPlainInsert:
		if plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		if err := plain.Insert(req.Tuple); err != nil {
			return response{Err: err.Error()}
		}
		return response{}
	case opEncAdd:
		return response{Addr: c.enc.Add(req.TupleCT, req.AttrCT, req.Token)}
	case opEncAddBatch:
		// Validate before applying anything: the client's flush-retry
		// logic relies on a rejected batch being all-or-nothing (a
		// partially-applied batch would shift the addresses it already
		// handed out).
		for i, u := range req.Batch {
			if len(u.TupleCT) == 0 {
				return response{Err: fmt.Sprintf("wire: enc add batch: row %d has empty tuple ciphertext", i)}
			}
		}
		last := -1
		for _, u := range req.Batch {
			last = c.enc.Add(u.TupleCT, u.AttrCT, u.Token)
		}
		return response{Addr: last, N: len(req.Batch)}
	case opEncLen:
		return response{N: c.enc.Len()}
	case opEncAttrColumn:
		return response{Rows: c.enc.AttrColumn()}
	case opEncFetch:
		rows, err := c.enc.Fetch(req.Addrs)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Rows: rows}
	case opEncFetchBatch:
		batches, err := c.enc.FetchBatch(req.AddrBatches)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{RowBatches: batches}
	case opEncLookupToken:
		return response{Addrs: c.enc.LookupToken(req.Token)}
	case opEncRows:
		return response{Rows: c.enc.Rows()}
	default:
		return response{Err: "wire: unknown op"}
	}
}
