package wire

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Cloud is the server-side state: one clear-text store (loaded on demand)
// and one encrypted store. It is what an honest-but-curious operator would
// run. Connections are handled in their own goroutines and the stores
// synchronise internally, so requests from different owners execute in
// parallel; the cloud-level lock only guards swapping the plaintext store
// on load.
type Cloud struct {
	mu    sync.RWMutex // guards the plain pointer, not the stores
	plain *storage.PlainStore
	enc   *storage.EncryptedStore
}

// NewCloud returns an empty cloud.
func NewCloud() *Cloud {
	return &Cloud{enc: storage.NewEncryptedStore()}
}

// Serve accepts connections until the listener is closed, handling each
// connection's requests sequentially in its own goroutine.
func (c *Cloud) Serve(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.handle(conn)
	}
}

func (c *Cloud) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				// Connection-level failure: nothing sensible to reply.
				_ = enc.Encode(response{Err: err.Error()})
			}
			return
		}
		resp := c.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (c *Cloud) dispatch(req *request) response {
	if req.Op == opPlainLoad {
		rel := relation.New(req.Schema)
		for _, t := range req.Tuples {
			if err := rel.Append(t); err != nil {
				return response{Err: err.Error()}
			}
		}
		ps, err := storage.NewPlainStore(rel, req.Attr)
		if err != nil {
			return response{Err: err.Error()}
		}
		c.mu.Lock()
		c.plain = ps
		c.mu.Unlock()
		return response{N: rel.Len()}
	}

	// The read lock is held across the whole op — not just the pointer
	// read — so an op can never land in a store that a concurrent
	// opPlainLoad has already swapped out (the stores themselves
	// synchronise internally, so read ops still run in parallel).
	c.mu.RLock()
	defer c.mu.RUnlock()
	plain := c.plain

	switch req.Op {
	case opPing:
		return response{}
	case opPlainSearch:
		if plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		return response{Tuples: plain.Search(req.Values)}
	case opPlainSearchRange:
		if plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		return response{Tuples: plain.SearchRange(req.Lo, req.Hi)}
	case opPlainInsert:
		if plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		if err := plain.Insert(req.Tuple); err != nil {
			return response{Err: err.Error()}
		}
		return response{}
	case opEncAdd:
		return response{Addr: c.enc.Add(req.TupleCT, req.AttrCT, req.Token)}
	case opEncAddBatch:
		last := -1
		for _, u := range req.Batch {
			last = c.enc.Add(u.TupleCT, u.AttrCT, u.Token)
		}
		return response{Addr: last, N: len(req.Batch)}
	case opEncLen:
		return response{N: c.enc.Len()}
	case opEncAttrColumn:
		return response{Rows: c.enc.AttrColumn()}
	case opEncFetch:
		rows, err := c.enc.Fetch(req.Addrs)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Rows: rows}
	case opEncLookupToken:
		return response{Addrs: c.enc.LookupToken(req.Token)}
	case opEncRows:
		return response{Rows: c.enc.Rows()}
	default:
		return response{Err: "wire: unknown op"}
	}
}
