package wire

import (
	"bufio"
	"crypto/hmac"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Cloud is the server-side state: a registry of named stores, each one
// clear-text store (loaded on demand) plus one encrypted store. It is
// what an honest-but-curious operator would run, serving any number of
// independently keyed relations side by side.
//
// Each connection is handled in its own goroutine, and the ops decoded
// from one connection are themselves dispatched concurrently through
// two-level admission: a bounded per-connection worker pool plus an
// optional per-namespace bound (SetStoreWorkers) that isolates tenants
// sharing one connection from each other's CPU bursts (responses are
// serialised by a send mutex, so frames never interleave). Locking is
// layered: the stores
// synchronise internally; each storage.Store's lock makes opPlainLoad
// exclusive against in-flight ops on the same namespace only; and the
// cloud-level lock is taken exclusively just by snapshot Save/Restore,
// which must quiesce every namespace at once.
//
// Connections must open with an opHello carrying ProtocolVersion; any
// other first frame is answered with an explicit version-mismatch error
// and the connection is closed, so a pre-namespace client fails loudly
// instead of having its ops misrouted into the default store.
type Cloud struct {
	mu     sync.RWMutex // exclusive for Save/Restore, shared by dispatch
	stores *storage.StoreSet

	// connWorkers bounds concurrent dispatch per connection; 0 selects
	// GOMAXPROCS.
	connWorkers int

	// storeWorkers bounds concurrent dispatch per namespace across all
	// connections; 0 disables the per-store level. Together with the
	// per-connection bound this makes admission two-level: the connection
	// bound caps what one transport can execute at once, the store bound
	// caps what one tenant can, so tenants multiplexed onto a shared
	// connection (e.g. behind a proxy) cannot starve each other.
	// Individual namespaces can override the server-wide default at
	// runtime through SetStoreWorkersFor (the opAdminSetWorkers control
	// op); workerOverrides holds those per-namespace caps and
	// overrideCount mirrors its size so admitStore's fast path stays
	// lock-free when no bound exists anywhere.
	storeWorkers    int
	storeSemMu      sync.Mutex
	storeSems       map[string]*storeSem
	workerOverrides map[string]int
	overrideCount   atomic.Int64

	// statsMu guards the per-store op counters (read-mostly: the fast
	// path is a shared-lock map hit).
	statsMu    sync.RWMutex
	opCounts   map[string]*atomic.Uint64
	condCounts map[string]*atomic.Uint64

	// ringDir, when set (before Serve), makes this server a qbring
	// coordinator: it serves the placement directory through
	// opRingDirectory. The wire layer treats the directory as an opaque
	// blob; the provider synchronises internally.
	ringDir func(known uint64) (blob []byte, version uint64, changed bool)
	// ringRepair, when set (before Serve, coordinator only), serves
	// opRingRepair: a targeted anti-entropy round for one namespace,
	// requested by a writer trying to readmit a quarantined replica.
	ringRepair func(store string) error
	// ringTokenHash is the hash of the cluster's ring token (nil disables
	// the ring-guarded repair ops); set before Serve.
	ringTokenHash []byte

	// testHookDispatch, when set (tests only, before Serve), runs after an
	// op has passed both admission levels and immediately before dispatch.
	testHookDispatch func(o op, store string)
}

// NewCloud returns an empty cloud.
func NewCloud() *Cloud {
	return &Cloud{
		stores:          storage.NewStoreSet(),
		storeSems:       make(map[string]*storeSem),
		workerOverrides: make(map[string]int),
		opCounts:        make(map[string]*atomic.Uint64),
		condCounts:      make(map[string]*atomic.Uint64),
	}
}

// storeSem is one namespace's admission semaphore. Unlike a buffered
// channel its capacity is resizable at runtime (opAdminSetWorkers), so an
// operator can widen or narrow a tenant's bound while ops are queued:
// raising the cap wakes queued waiters immediately, lowering it lets the
// excess in-flight ops drain without ever admitting new ones above the
// new cap. cap == 0 means unbounded.
type storeSem struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int
	used int
}

func newStoreSem(capacity int) *storeSem {
	s := &storeSem{cap: capacity}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// acquire blocks until the semaphore has a free slot (or is unbounded).
func (s *storeSem) acquire() {
	s.mu.Lock()
	for s.cap > 0 && s.used >= s.cap {
		s.cond.Wait()
	}
	s.used++
	s.mu.Unlock()
}

// release frees a slot taken by acquire.
func (s *storeSem) release() {
	s.mu.Lock()
	s.used--
	s.cond.Signal()
	s.mu.Unlock()
}

// setCap resizes the semaphore; every waiter rechecks against the new cap.
func (s *storeSem) setCap(n int) {
	s.mu.Lock()
	s.cap = n
	s.cond.Broadcast()
	s.mu.Unlock()
}

// SetConnWorkers bounds how many ops from a single connection may execute
// concurrently (<= 0 selects GOMAXPROCS). It must be called before Serve.
func (c *Cloud) SetConnWorkers(n int) { c.connWorkers = n }

// SetStoreWorkers bounds how many ops may execute concurrently per
// namespace, across all connections (<= 0 disables the bound). It sets
// the server-wide default and must be called before Serve; per-namespace
// runtime adjustments go through SetStoreWorkersFor.
func (c *Cloud) SetStoreWorkers(n int) {
	if n < 0 {
		n = 0
	}
	c.storeWorkers = n
}

// SetStoreWorkersFor overrides the admission bound for one namespace at
// runtime: n > 0 bounds it to n concurrent ops, n == 0 lifts the bound
// for this namespace, n < 0 clears the override back to the server-wide
// default. Queued ops see the new cap immediately. It returns the
// namespace's effective cap.
func (c *Cloud) SetStoreWorkersFor(name string, n int) int {
	name = storeName(name)
	c.storeSemMu.Lock()
	defer c.storeSemMu.Unlock()
	if n < 0 {
		if _, ok := c.workerOverrides[name]; ok {
			delete(c.workerOverrides, name)
			c.overrideCount.Add(-1)
		}
	} else {
		if _, ok := c.workerOverrides[name]; !ok {
			c.overrideCount.Add(1)
		}
		c.workerOverrides[name] = n
	}
	eff := c.effectiveWorkersLocked(name)
	if sem, ok := c.storeSems[name]; ok {
		sem.setCap(eff)
	}
	return eff
}

// StoreWorkersFor reports the namespace's effective admission cap (0 =
// unbounded).
func (c *Cloud) StoreWorkersFor(name string) int {
	c.storeSemMu.Lock()
	defer c.storeSemMu.Unlock()
	return c.effectiveWorkersLocked(storeName(name))
}

// workerOverridesCopy snapshots the per-namespace overrides (for
// persistence).
func (c *Cloud) workerOverridesCopy() map[string]int {
	c.storeSemMu.Lock()
	defer c.storeSemMu.Unlock()
	out := make(map[string]int, len(c.workerOverrides))
	for k, v := range c.workerOverrides {
		out[k] = v
	}
	return out
}

// effectiveWorkersLocked resolves override-or-default; caller holds
// storeSemMu.
func (c *Cloud) effectiveWorkersLocked(name string) int {
	if o, ok := c.workerOverrides[name]; ok {
		return o
	}
	return c.storeWorkers
}

// storeSem returns the named namespace's admission semaphore, creating it
// on first use. Semaphores survive a drop — the bound is a property of
// the name, and keeping the semaphore avoids a drop/create race handing
// out two semaphores for one namespace.
func (c *Cloud) storeSem(name string) *storeSem {
	c.storeSemMu.Lock()
	defer c.storeSemMu.Unlock()
	sem, ok := c.storeSems[name]
	if !ok {
		sem = newStoreSem(c.effectiveWorkersLocked(name))
		c.storeSems[name] = sem
	}
	return sem
}

// admitStore takes the per-namespace admission slot for a data-plane op
// and returns its release, or nil when no slot is needed: no bound exists
// anywhere (neither a default nor any per-namespace override), the op is
// store-less (ping, hello), or it is a control-plane op — admin ops
// bypass data-plane admission so an owner can always inspect, drop or
// re-bound a namespace that is saturated, and drop/compact do their own
// quiescing through the per-store lock.
//
// Caps are eventually enforced, not retroactively: the unbounded fast
// path admits without touching any semaphore, so ops already in flight
// when the first override lands (or admitted under a higher previous cap)
// hold no slot and are not counted against the new bound. A freshly
// lowered cap can therefore be transiently exceeded by that pre-existing
// load; every op admitted after the cap is installed honours it. This is
// the price of keeping the no-bound configuration completely lock-free on
// the data plane.
func (c *Cloud) admitStore(req *request) func() {
	if c.storeWorkers <= 0 && c.overrideCount.Load() == 0 {
		return nil
	}
	switch req.Op {
	case opPing, opHello, opAdminList, opAdminStats, opAdminDrop, opAdminCompact, opAdminSetWorkers,
		opRingDirectory, opRingRepair, opStoreInfo:
		// The two read-only ring ops bypass like admin ops: a coordinator's
		// divergence probe (and qbadmin ring) must see a namespace that is
		// saturated with data-plane work.
		return nil
	}
	sem := c.storeSem(storeName(req.Store))
	sem.acquire()
	return sem.release
}

func (c *Cloud) workersPerConn() int {
	if c.connWorkers > 0 {
		return c.connWorkers
	}
	return runtime.GOMAXPROCS(0)
}

// connInflightCap bounds decoded-but-unfinished requests per connection —
// the memory backstop against a client that streams requests without
// awaiting responses. It is deliberately far above the execution bound so
// that ops queueing on a saturated namespace don't block the decode loop
// (which would reintroduce cross-tenant starvation) under any cooperative
// workload.
func (c *Cloud) connInflightCap() int {
	if n := 16 * c.workersPerConn(); n > 256 {
		return n
	}
	return 256
}

// StoreNames returns the namespaces currently hosted, sorted.
func (c *Cloud) StoreNames() []string { return c.stores.Names() }

// StoreStats is the per-namespace accounting a multi-tenant operator
// watches: ops dispatched, clear-text tuples and encrypted rows held,
// conditional pulls served as a delta (the client cache was valid and the
// full column transfer was skipped), and the effective admission cap.
type StoreStats struct {
	Ops         uint64
	PlainTuples int
	EncRows     int
	CondHits    uint64
	Workers     int
}

// Stats reports per-store statistics for every hosted namespace.
func (c *Cloud) Stats() map[string]StoreStats {
	out := make(map[string]StoreStats)
	for _, name := range c.stores.Names() {
		st, ok := c.stores.Get(name)
		if !ok {
			continue
		}
		s := StoreStats{
			EncRows:  st.Enc().Len(),
			Ops:      c.opCounter(name).Load(),
			CondHits: c.condCounter(name).Load(),
			Workers:  c.StoreWorkersFor(name),
		}
		if ps := st.Plain(); ps != nil {
			s.PlainTuples = ps.Len()
		}
		out[name] = s
	}
	return out
}

// opCounter returns the op counter for a namespace, creating it on first
// use.
func (c *Cloud) opCounter(name string) *atomic.Uint64 {
	return counterIn(&c.statsMu, &c.opCounts, name)
}

// condCounter returns the conditional-pull hit counter for a namespace,
// creating it on first use.
func (c *Cloud) condCounter(name string) *atomic.Uint64 {
	return counterIn(&c.statsMu, &c.condCounts, name)
}

// counterIn looks up (or installs) a named counter in a statsMu-guarded
// map; the fast path is a shared-lock map hit.
func counterIn(mu *sync.RWMutex, m *map[string]*atomic.Uint64, name string) *atomic.Uint64 {
	mu.RLock()
	ctr, ok := (*m)[name]
	mu.RUnlock()
	if ok {
		return ctr
	}
	mu.Lock()
	defer mu.Unlock()
	if ctr, ok := (*m)[name]; ok {
		return ctr
	}
	ctr = new(atomic.Uint64)
	(*m)[name] = ctr
	return ctr
}

// Serve accepts connections until the listener is closed, handling each
// connection in its own goroutine.
func (c *Cloud) Serve(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.ServeConn(conn)
	}
}

// errNoHello is the explicit refusal sent to a connection whose first
// frame is not a matching opHello — the pre-namespace (v1) client case.
var errNoHello = fmt.Sprintf(
	"wire: protocol version mismatch: server speaks v%d and requires an opHello handshake before any op (a v1 client predates store namespaces); upgrade the client",
	ProtocolVersion)

// serverStream is the server side of one connection's transport framing:
// persistent gob codecs shared between the handshake and later gob
// frames, a reader-owned frame scratch, and pooled frame assembly on the
// send path. Sends from concurrent dispatch workers are serialised by
// sendMu; the read side is touched only by the decode loop.
type serverStream struct {
	conn net.Conn
	br   *bufio.Reader

	gobIn   *gobSource
	dec     *gob.Decoder
	readBuf []byte

	sendMu sync.Mutex
	gobOut *gobSink
	enc    *gob.Encoder

	// framed flips after the hello exchange, strictly before any
	// dispatch goroutine exists, so no synchronisation is needed.
	framed bool
}

func newServerStream(conn net.Conn) *serverStream {
	s := &serverStream{conn: conn, br: bufio.NewReader(conn)}
	s.gobIn = &gobSource{direct: s.br}
	s.dec = gob.NewDecoder(s.gobIn)
	s.gobOut = &gobSink{direct: conn}
	s.enc = gob.NewEncoder(s.gobOut)
	return s
}

// setFramed switches both directions to length-prefixed frames; called
// once, after a successful hello, while the connection is still handled
// sequentially.
func (s *serverStream) setFramed() {
	s.gobIn.direct = nil
	s.gobOut.direct = nil
	s.framed = true
}

// readRequest decodes one request: plain gob before the handshake, one
// frame after it.
func (s *serverStream) readRequest() (*request, error) {
	if !s.framed {
		req := new(request)
		if err := s.dec.Decode(req); err != nil {
			return nil, err
		}
		return req, nil
	}
	tag, body, err := readFrame(s.br, &s.readBuf)
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagGob:
		s.gobIn.buf = body
		req := new(request)
		err := s.dec.Decode(req)
		left := len(s.gobIn.buf)
		s.gobIn.buf = nil
		if err != nil {
			return nil, err
		}
		if left != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes after gob request frame", left)
		}
		return req, nil
	case tagBinReq:
		return decodeBinRequest(body)
	default:
		return nil, fmt.Errorf("wire: unknown frame tag 0x%02x", tag)
	}
}

// writeResponse sends one response to an op-o request, framing per the
// connection mode and streaming large row sets in bounded chunks.
func (s *serverStream) writeResponse(o op, resp *response) error {
	if !s.framed {
		s.sendMu.Lock()
		defer s.sendMu.Unlock()
		return s.enc.Encode(resp)
	}
	if !binaryOp(o) {
		return s.writeGobFrame(resp)
	}
	switch o {
	case opEncAttrColumn, opEncRows, opEncAttrColumnIf, opEncRowsIf:
		if resp.Err == "" && len(resp.Rows) > 0 {
			return s.writeChunkedRows(o, resp)
		}
	}
	return s.writeBinFrame(o, resp, 0)
}

func (s *serverStream) writeGobFrame(resp *response) error {
	bp := getFrameBuf()
	buf := beginFrame(*bp, tagGob)
	// The gob encode runs under sendMu: the persistent encoder's stream
	// state must match the order frames hit the wire.
	s.sendMu.Lock()
	s.gobOut.buf = &buf
	err := s.enc.Encode(resp)
	s.gobOut.buf = nil
	if err == nil {
		err = finishFrame(s.conn, buf)
	}
	s.sendMu.Unlock()
	*bp = buf
	putFrameBuf(bp)
	return err
}

func (s *serverStream) writeBinFrame(o op, resp *response, flags byte) error {
	bp := getFrameBuf()
	buf := appendBinResponse(beginFrame(*bp, tagBinResp), o, resp, flags)
	s.sendMu.Lock()
	err := finishFrame(s.conn, buf)
	s.sendMu.Unlock()
	*bp = buf
	putFrameBuf(bp)
	return err
}

// writeChunkedRows streams a large row set as a sequence of frames near
// chunkTarget bytes each, all but the last flagged partial. sendMu is
// taken per chunk, so responses to other in-flight ops may interleave
// between chunks — a big column pull does not head-of-line-block the
// connection; the client reassembles by ID.
func (s *serverStream) writeChunkedRows(o op, resp *response) error {
	rows := resp.Rows
	for {
		n, size := 0, 0
		for n < len(rows) && size < chunkTarget {
			r := &rows[n]
			size += 16 + len(r.TupleCT) + len(r.AttrCT) + len(r.Token)
			n++
		}
		// Version fields ride every chunk (the client keeps the first
		// chunk's values); zero for the unconditional ops.
		chunk := response{ID: resp.ID, Rows: rows[:n],
			VerEpoch: resp.VerEpoch, VerN: resp.VerN, Delta: resp.Delta}
		rows = rows[n:]
		var flags byte
		if len(rows) > 0 {
			flags = respFlagPartial
		}
		if err := s.writeBinFrame(o, &chunk, flags); err != nil {
			return err
		}
		if len(rows) == 0 {
			return nil
		}
	}
}

// ServeConn serves one established connection (e.g. net.Pipe in tests and
// benchmarks) until it fails or closes, then closes it. The first message
// must be a version-matched opHello — exchanged as plain gob, the wire
// image every protocol generation shares, so skewed peers get an explicit
// version error. After it both directions switch to framed mode and
// decoded requests are dispatched concurrently through the per-connection
// worker pool.
func (c *Cloud) ServeConn(conn net.Conn) {
	defer conn.Close()
	s := newServerStream(conn)

	// Handshake: decoded sequentially, before the dispatch pool spins up,
	// so no op can race past it.
	req, err := s.readRequest()
	if err != nil {
		// io.EOF is a clean shutdown; anything else means the stream is
		// desynchronised. Either way no reply can safely be written —
		// only well-formed messages (with an ID to echo) get responses.
		return
	}
	if req.Op != opHello {
		_ = s.writeResponse(req.Op, &response{ID: req.ID, Err: errNoHello})
		return
	}
	if req.Version != ProtocolVersion {
		_ = s.writeResponse(opHello, &response{ID: req.ID, Version: ProtocolVersion, Err: fmt.Sprintf(
			"wire: protocol version mismatch: server speaks v%d, client spoke v%d",
			ProtocolVersion, req.Version)})
		return
	}
	if err := s.writeResponse(opHello, &response{ID: req.ID, Version: ProtocolVersion}); err != nil {
		return
	}
	s.setFramed()

	sem := make(chan struct{}, c.workersPerConn())
	// inflight is the decode loop's flood bound: it caps live request
	// goroutines per connection well above the execution bounds, so
	// admission queueing never stalls decoding but a request stream that
	// ignores responses cannot grow server memory without limit.
	inflight := make(chan struct{}, c.connInflightCap())
	var wg sync.WaitGroup
	for {
		req, err := s.readRequest()
		if err != nil {
			break
		}
		inflight <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			// Two-level admission, namespace level first: an op queueing on
			// its own saturated store must not hold per-connection capacity,
			// or one tenant's burst would starve every tenant sharing the
			// connection. Only once its store admits it does the op compete
			// for a per-connection execution slot. The decode loop blocks on
			// the flood bound only, not on admission, so queued-but-waiting
			// requests are bounded without reintroducing cross-tenant
			// head-of-line blocking; executing ops stay bounded by both
			// semaphores.
			releaseStore := c.admitStore(req)
			sem <- struct{}{}
			if h := c.testHookDispatch; h != nil {
				h(req.Op, storeName(req.Store))
			}
			resp := c.dispatch(req)
			<-sem
			if releaseStore != nil {
				releaseStore()
			}
			resp.ID = req.ID
			if err := s.writeResponse(req.Op, &resp); err != nil {
				// The response stream is broken; closing the conn unblocks
				// the decode loop so the whole handler winds down.
				conn.Close()
			}
		}()
	}
	wg.Wait()
}

// authorizeWrite refuses a write into a claimed namespace whose caller
// does not hold the owner token. Unclaimed namespaces accept tokenless
// writes (the open single-tenant mode earlier versions shipped with); the
// first tokened write closes the door behind its owner. The comparison is
// constant-time, like the admin path's.
func authorizeWrite(st *storage.Store, name string, tok []byte) *response {
	stored := st.OwnerHash()
	if stored == nil {
		return nil
	}
	if len(tok) == 0 {
		return &response{Err: fmt.Sprintf(
			"wire: write to store %q refused: namespace is owner-claimed and the request carries no owner token", name)}
	}
	if !hmac.Equal(stored, hashToken(tok)) {
		return &response{Err: fmt.Sprintf("wire: write to store %q refused: owner token mismatch", name)}
	}
	return nil
}

func (c *Cloud) dispatch(req *request) response {
	// The cloud-level read lock is held across the whole op so snapshot
	// Save/Restore (which replace the entire store set) stay exclusive
	// against every in-flight op; dispatches on different namespaces
	// share it and proceed in parallel.
	c.mu.RLock()
	defer c.mu.RUnlock()

	// Store-less ops answer before the namespace is resolved: a Ping (or
	// a duplicate hello) must not materialise a phantom store in
	// StoreNames/Stats or in the next snapshot.
	switch req.Op {
	case opPing:
		return response{}
	case opHello:
		// A duplicate hello after the handshake is harmless: echo the
		// version again.
		return response{Version: ProtocolVersion}
	case opAdminList, opAdminStats, opAdminDrop, opAdminCompact, opAdminSetWorkers:
		// Control plane: resolves (never creates) its namespace itself.
		return c.dispatchAdmin(req)
	case opRingDirectory:
		return c.dispatchRingDirectory(req)
	case opRingRepair:
		return c.dispatchRingRepair(req)
	case opStoreInfo, opStoreSnapshot, opStoreRestore, opRepairAppend:
		// Ring plane: resolves (never creates) its namespace itself.
		return c.dispatchRing(req)
	}

	name := storeName(req.Store)
	st := c.stores.GetOrCreate(name)
	c.opCounter(name).Add(1)

	// Write admission. A write presenting an owner token claims the
	// namespace on first write (later claims are no-ops; the cloud keeps
	// only the hash) — and once a namespace is claimed, every write must
	// present the owner's token. The claim is an isolation boundary, not
	// just a control-plane credential: tenant B must not be able to
	// append rows into, or replace the plain partition of, tenant A's
	// claimed store.
	switch req.Op {
	case opPlainLoad, opPlainInsert, opEncAdd, opEncAddBatch:
		if len(req.AdminToken) != 0 {
			st.ClaimOwner(hashToken(req.AdminToken))
		}
		if refuse := authorizeWrite(st, name, req.AdminToken); refuse != nil {
			return *refuse
		}
	}

	if req.Op == opPlainLoad {
		rel := relation.New(req.Schema)
		for _, t := range req.Tuples {
			if err := rel.Append(t); err != nil {
				return response{Err: err.Error()}
			}
		}
		ps, err := storage.NewPlainStore(rel, req.Attr)
		if err != nil {
			return response{Err: err.Error()}
		}
		// Exclusive against in-flight ops on this namespace only.
		st.SetPlain(ps)
		return response{N: rel.Len()}
	}

	// The store's read lock is held across the whole op — not just the
	// pointer read — so an op can never land in a relation that a
	// concurrent opPlainLoad on the same namespace has already swapped
	// out (the stores themselves synchronise internally, so read ops
	// still run in parallel).
	plain, encStore, release := st.ReadView()
	defer release()

	switch req.Op {
	case opPlainSearch:
		if plain == nil {
			return response{Err: "wire: no relation loaded in store " + name}
		}
		return response{Tuples: plain.Search(req.Values)}
	case opPlainSearchRange:
		if plain == nil {
			return response{Err: "wire: no relation loaded in store " + name}
		}
		return response{Tuples: plain.SearchRange(req.Lo, req.Hi)}
	case opPlainInsert:
		if plain == nil {
			return response{Err: "wire: no relation loaded in store " + name}
		}
		if req.Have >= 0 {
			// Length CAS (protocol v6): apply only if the relation is still
			// where the writer last saw it, so an insert racing a repair
			// restore cannot re-append a tuple the restored state already
			// contains.
			if n, err := plain.InsertIfLen(req.Tuple, req.Have); err != nil {
				if errors.Is(err, storage.ErrLenMismatch) {
					return response{Err: fmt.Sprintf(
						"%s: store %q holds %d tuples, writer expected %d (nothing applied)",
						staleWriteMark, name, n, req.Have)}
				}
				return response{Err: err.Error()}
			}
			return response{}
		}
		if err := plain.Insert(req.Tuple); err != nil {
			return response{Err: err.Error()}
		}
		return response{}
	case opEncAdd:
		return response{Addr: encStore.Add(req.TupleCT, req.AttrCT, req.Token)}
	case opEncAddBatch:
		// Validate before applying anything: the client's flush-retry
		// logic relies on a rejected batch being all-or-nothing (a
		// partially-applied batch would shift the addresses it already
		// handed out).
		for i, u := range req.Batch {
			if len(u.TupleCT) == 0 {
				return response{Err: fmt.Sprintf("wire: enc add batch: row %d has empty tuple ciphertext", i)}
			}
		}
		if req.Have >= 0 {
			// Length CAS (protocol v6): the batch's client-side addresses
			// were assigned at base Have, so it lands atomically only if the
			// store is still there — a flush racing an anti-entropy tail
			// copy of the same rows is refused instead of doubling them.
			rows := make([]storage.EncRow, len(req.Batch))
			for i, u := range req.Batch {
				rows[i] = storage.EncRow{TupleCT: u.TupleCT, AttrCT: u.AttrCT, Token: u.Token}
			}
			n, err := encStore.AppendIfLen(rows, req.Have)
			if err != nil {
				return response{Err: fmt.Sprintf(
					"%s: store %q holds %d encrypted rows, writer expected %d (nothing applied)",
					staleWriteMark, name, n, req.Have)}
			}
			return response{Addr: n - 1, N: len(req.Batch)}
		}
		last := -1
		for _, u := range req.Batch {
			last = encStore.Add(u.TupleCT, u.AttrCT, u.Token)
		}
		return response{Addr: last, N: len(req.Batch)}
	case opEncLen:
		return response{N: encStore.Len()}
	case opEncAttrColumn:
		return response{Rows: encStore.AttrColumn()}
	case opEncFetch:
		rows, err := encStore.Fetch(req.Addrs)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Rows: rows}
	case opEncFetchBatch:
		batches, err := encStore.FetchBatch(req.AddrBatches)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{RowBatches: batches}
	case opEncLookupToken:
		return response{Addrs: encStore.LookupToken(req.Token)}
	case opEncRows:
		return response{Rows: encStore.Rows()}
	case opEncVersion:
		v, _ := encStore.EncVersion()
		return response{VerEpoch: v.Epoch, VerN: v.N}
	case opEncAttrColumnIf:
		rows, cur, delta, _ := encStore.AttrColumnSince(
			storage.EncVersion{Epoch: req.CondEpoch, N: req.CondN}, req.Have)
		if delta {
			c.condCounter(name).Add(1)
		}
		return response{Rows: rows, VerEpoch: cur.Epoch, VerN: cur.N, Delta: delta}
	case opEncRowsIf:
		rows, cur, delta, _ := encStore.RowsSince(
			storage.EncVersion{Epoch: req.CondEpoch, N: req.CondN}, req.Have)
		if delta {
			c.condCounter(name).Add(1)
		}
		return response{Rows: rows, VerEpoch: cur.Epoch, VerN: cur.N, Delta: delta}
	default:
		return response{Err: "wire: unknown op"}
	}
}
