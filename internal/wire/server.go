package wire

import (
	"encoding/gob"
	"errors"
	"io"
	"net"
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Cloud is the server-side state: one clear-text store (loaded on demand)
// and one encrypted store. It is what an honest-but-curious operator would
// run.
type Cloud struct {
	mu    sync.Mutex
	plain *storage.PlainStore
	enc   *storage.EncryptedStore
}

// NewCloud returns an empty cloud.
func NewCloud() *Cloud {
	return &Cloud{enc: storage.NewEncryptedStore()}
}

// Serve accepts connections until the listener is closed, handling each
// connection's requests sequentially in its own goroutine.
func (c *Cloud) Serve(lis net.Listener) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		go c.handle(conn)
	}
}

func (c *Cloud) handle(conn net.Conn) {
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var req request
		if err := dec.Decode(&req); err != nil {
			if err != io.EOF {
				// Connection-level failure: nothing sensible to reply.
				_ = enc.Encode(response{Err: err.Error()})
			}
			return
		}
		resp := c.dispatch(&req)
		if err := enc.Encode(resp); err != nil {
			return
		}
	}
}

func (c *Cloud) dispatch(req *request) response {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch req.Op {
	case opPing:
		return response{}
	case opPlainLoad:
		rel := relation.New(req.Schema)
		for _, t := range req.Tuples {
			if err := rel.Append(t); err != nil {
				return response{Err: err.Error()}
			}
		}
		ps, err := storage.NewPlainStore(rel, req.Attr)
		if err != nil {
			return response{Err: err.Error()}
		}
		c.plain = ps
		return response{N: rel.Len()}
	case opPlainSearch:
		if c.plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		return response{Tuples: c.plain.Search(req.Values)}
	case opPlainSearchRange:
		if c.plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		return response{Tuples: c.plain.SearchRange(req.Lo, req.Hi)}
	case opPlainInsert:
		if c.plain == nil {
			return response{Err: "wire: no relation loaded"}
		}
		if err := c.plain.Insert(req.Tuple); err != nil {
			return response{Err: err.Error()}
		}
		return response{}
	case opEncAdd:
		return response{Addr: c.enc.Add(req.TupleCT, req.AttrCT, req.Token)}
	case opEncAddBatch:
		last := -1
		for _, u := range req.Batch {
			last = c.enc.Add(u.TupleCT, u.AttrCT, u.Token)
		}
		return response{Addr: last, N: len(req.Batch)}
	case opEncLen:
		return response{N: c.enc.Len()}
	case opEncAttrColumn:
		return response{Rows: c.enc.AttrColumn()}
	case opEncFetch:
		rows, err := c.enc.Fetch(req.Addrs)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Rows: rows}
	case opEncLookupToken:
		return response{Addrs: c.enc.LookupToken(req.Token)}
	case opEncRows:
		return response{Rows: c.enc.Rows()}
	default:
		return response{Err: "wire: unknown op"}
	}
}
