package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/storage"
)

// encFill appends n rows with the given attribute-ciphertext size to a
// store view and flushes them.
func encFill(t *testing.T, v *StoreClient, n, attrSize int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ct := []byte{byte(i)}
		attr := bytes.Repeat([]byte{byte(i)}, attrSize)
		if a := v.Add(ct, attr, nil); a < 0 {
			t.Fatalf("add %d failed: %v", i, v.Err())
		}
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestCondPullProtocol drives opEncVersion/opEncAttrColumnIf over a real
// connection through every branch of the delta contract: first pull from
// a zero version is a full resend, revalidation at the current version is
// a tiny not-modified frame, a write turns the next revalidation into a
// tail-only delta, and a foreign epoch or nonsensical have falls back to
// a full resend.
func TestCondPullProtocol(t *testing.T) {
	_, addr := startCloudListener(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v := c.WithStore("cond")
	encFill(t, v, 3, 4)

	// Cold client: zero version, nothing held -> full resend.
	rows, cur, delta, err := v.AttrColumnSince(storage.EncVersion{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delta {
		t.Fatal("zero-version pull answered as a delta")
	}
	if len(rows) != 3 || cur.Epoch == 0 || cur.N == 0 {
		t.Fatalf("full pull = %d rows, version %+v", len(rows), cur)
	}

	// Revalidation at the current version: not modified, no rows.
	rows2, cur2, delta, err := v.AttrColumnSince(cur, len(rows))
	if err != nil {
		t.Fatal(err)
	}
	if !delta || len(rows2) != 0 || cur2 != cur {
		t.Fatalf("revalidate = %d rows, delta=%v, version %+v (want empty delta at %+v)",
			len(rows2), delta, cur2, cur)
	}

	// Two writes later the same revalidation yields exactly the tail.
	encFill(t, v, 2, 4)
	tail, cur3, delta, err := v.AttrColumnSince(cur, len(rows))
	if err != nil {
		t.Fatal(err)
	}
	if !delta || len(tail) != 2 || tail[0].Addr != 3 || tail[1].Addr != 4 {
		t.Fatalf("delta after 2 adds = %+v (delta=%v)", tail, delta)
	}
	if cur3.Epoch != cur.Epoch || cur3.N <= cur.N {
		t.Fatalf("version after adds = %+v, want same epoch, larger N than %+v", cur3, cur)
	}

	// A foreign epoch (another store instance, or a restored cloud) can
	// never validate: full resend, delta=false.
	alien := storage.EncVersion{Epoch: cur.Epoch + 1, N: cur.N}
	full, _, delta, err := v.AttrColumnSince(alien, 5)
	if err != nil {
		t.Fatal(err)
	}
	if delta || len(full) != 5 {
		t.Fatalf("foreign-epoch pull = %d rows, delta=%v, want 5-row full resend", len(full), delta)
	}

	// Claiming more rows than exist is self-correcting, not an error.
	full, _, delta, err = v.AttrColumnSince(cur3, 99)
	if err != nil {
		t.Fatal(err)
	}
	if delta || len(full) != 5 {
		t.Fatalf("overlong have = %d rows, delta=%v, want full resend", len(full), delta)
	}

	// RowsSince follows the same contract and carries full rows.
	frows, fcur, delta, err := v.RowsSince(storage.EncVersion{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if delta || len(frows) != 5 || len(frows[0].TupleCT) == 0 {
		t.Fatalf("RowsSince full pull = %+v (delta=%v)", frows, delta)
	}
	none, _, delta, err := v.RowsSince(fcur, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !delta || len(none) != 0 {
		t.Fatalf("RowsSince revalidate = %d rows, delta=%v", len(none), delta)
	}
}

// TestCondVersionMatchesEncVersion: the version returned by a conditional
// pull is the one opEncVersion reports, so a client may interleave cheap
// version probes with pulls and the two never disagree on epoch.
func TestCondVersionMatchesEncVersion(t *testing.T) {
	_, addr := startCloudListener(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v := c.WithStore("probe")
	encFill(t, v, 2, 4)

	probe, err := v.EncVersion()
	if err != nil {
		t.Fatal(err)
	}
	_, cur, _, err := v.AttrColumnSince(storage.EncVersion{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if probe != cur {
		t.Fatalf("EncVersion %+v != pull version %+v", probe, cur)
	}
}

// TestCondChunkedDelta: a delta big enough to stream in multiple frames
// still carries the version fields (the client keeps the first chunk's
// values) and reassembles the tail exactly.
func TestCondChunkedDelta(t *testing.T) {
	_, addr := startCloudListener(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	v := c.WithStore("chunky")

	// Base rows, then a tail well above chunkTarget (256 KiB): 12 rows of
	// 40 KiB attribute ciphertext stream as at least two frames.
	encFill(t, v, 2, 8)
	base, cur, _, err := v.AttrColumnSince(storage.EncVersion{}, 0)
	if err != nil || len(base) != 2 {
		t.Fatalf("base pull = %d rows, %v", len(base), err)
	}
	const tailRows, attrSize = 12, 40 << 10
	encFill(t, v, tailRows, attrSize)

	tail, cur2, delta, err := v.AttrColumnSince(cur, len(base))
	if err != nil {
		t.Fatal(err)
	}
	if !delta || len(tail) != tailRows {
		t.Fatalf("chunked delta = %d rows, delta=%v, want %d-row delta", len(tail), delta, tailRows)
	}
	if cur2.Epoch != cur.Epoch || cur2.N != cur.N+tailRows {
		t.Fatalf("chunked delta version = %+v, want epoch %d, N %d", cur2, cur.Epoch, cur.N+tailRows)
	}
	for i, r := range tail {
		if r.Addr != 2+i || len(r.AttrCT) != attrSize {
			t.Fatalf("tail row %d = addr %d, %d attr bytes", i, r.Addr, len(r.AttrCT))
		}
	}
}

// TestCondAcrossRestore: a snapshot restore rebirths every namespace
// under a fresh epoch, so a client cache validated against the old cloud
// gets a full resend — never a bogus "not modified" — and the restored
// version floor keeps N from regressing below the saved value.
func TestCondAcrossRestore(t *testing.T) {
	cl1 := NewCloud()
	c1 := startCloudOn(t, cl1)
	v1 := c1.WithStore("persist")
	encFill(t, v1, 4, 4)
	_, old, _, err := v1.AttrColumnSince(storage.EncVersion{}, 0)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := cl1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cl2 := NewCloud()
	if err := cl2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	c2 := startCloudOn(t, cl2)
	v2 := c2.WithStore("persist")

	rows, cur, delta, err := v2.AttrColumnSince(old, 4)
	if err != nil {
		t.Fatal(err)
	}
	if delta {
		t.Fatal("restored cloud validated a pre-restore cache")
	}
	if len(rows) != 4 {
		t.Fatalf("post-restore full resend = %d rows, want 4", len(rows))
	}
	if cur.Epoch == old.Epoch || cur.Epoch == 0 {
		t.Fatalf("restored epoch %d not fresh (old %d)", cur.Epoch, old.Epoch)
	}
	if cur.N < old.N {
		t.Fatalf("restored version N=%d regressed below saved N=%d", cur.N, old.N)
	}
}

// TestCondHitsCounted: delta-served conditional pulls increment the
// namespace's CondHits stat (surfaced through qbadmin), full resends do
// not.
func TestCondHitsCounted(t *testing.T) {
	c := startCloudOn(t, NewCloud())
	master := []byte("cond stats master")
	loadTenant(t, c, "tenant", master)
	tok := OwnerToken(master, "tenant")
	v := c.WithStore("tenant")

	s0, err := c.AdminStats("tenant", tok)
	if err != nil {
		t.Fatal(err)
	}
	_, cur, _, err := v.AttrColumnSince(storage.EncVersion{}, 0) // full resend
	if err != nil {
		t.Fatal(err)
	}
	s1, err := c.AdminStats("tenant", tok)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CondHits != s0.CondHits {
		t.Fatalf("full resend counted as a cond hit: %d -> %d", s0.CondHits, s1.CondHits)
	}
	for i := 0; i < 3; i++ { // three not-modified revalidations
		if _, _, delta, err := v.AttrColumnSince(cur, 5); err != nil || !delta {
			t.Fatalf("revalidate %d: delta=%v, %v", i, delta, err)
		}
	}
	s2, err := c.AdminStats("tenant", tok)
	if err != nil {
		t.Fatal(err)
	}
	if s2.CondHits != s1.CondHits+3 {
		t.Fatalf("CondHits = %d after 3 delta pulls, want %d", s2.CondHits, s1.CondHits+3)
	}
}

// TestAdminSetWorkers: the runtime admission override is owner-gated and
// follows the documented semantics — n > 0 bounds the namespace, 0 lifts
// the bound, n < 0 clears the override back to the server default — with
// the effective cap echoed back and visible in stats.
func TestAdminSetWorkers(t *testing.T) {
	cl := NewCloud()
	cl.SetStoreWorkers(6) // server-wide default
	c := startCloudOn(t, cl)
	master := []byte("workers master")
	loadTenant(t, c, "tenant", master)
	good := OwnerToken(master, "tenant")
	bad := OwnerToken([]byte("attacker"), "tenant")

	if _, err := c.AdminSetWorkers("tenant", bad, 1); err == nil || !strings.Contains(err.Error(), "token mismatch") {
		t.Fatalf("set-workers with wrong token: %v", err)
	}
	if n := cl.StoreWorkersFor("tenant"); n != 6 {
		t.Fatalf("refused set-workers changed the cap to %d", n)
	}

	if n, err := c.AdminSetWorkers("tenant", good, 2); err != nil || n != 2 {
		t.Fatalf("set-workers 2 = %d, %v", n, err)
	}
	if s, err := c.AdminStats("tenant", good); err != nil || s.Workers != 2 {
		t.Fatalf("stats after bound = %+v, %v", s, err)
	}
	// 0 lifts the bound for this namespace only.
	if n, err := c.AdminSetWorkers("tenant", good, 0); err != nil || n != 0 {
		t.Fatalf("set-workers 0 = %d, %v", n, err)
	}
	if n := cl.StoreWorkersFor("other"); n != 6 {
		t.Fatalf("lifting one namespace's bound changed another's: %d", n)
	}
	// Negative clears the override: back to the server default.
	if n, err := c.AdminSetWorkers("tenant", good, -1); err != nil || n != 6 {
		t.Fatalf("set-workers -1 = %d, %v; want server default 6", n, err)
	}
}

// TestWorkerOverrideSurvivesRestore: per-namespace admission overrides are
// part of the snapshot, so a crash-restart does not silently forget an
// operator's runtime bound.
func TestWorkerOverrideSurvivesRestore(t *testing.T) {
	cl1 := NewCloud()
	c1 := startCloudOn(t, cl1)
	master := []byte("persisted workers")
	loadTenant(t, c1, "bounded", master)
	tok := OwnerToken(master, "bounded")
	if n, err := c1.AdminSetWorkers("bounded", tok, 3); err != nil || n != 3 {
		t.Fatalf("set-workers = %d, %v", n, err)
	}

	var buf bytes.Buffer
	if err := cl1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cl2 := NewCloud()
	if err := cl2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if n := cl2.StoreWorkersFor("bounded"); n != 3 {
		t.Fatalf("restored cap = %d, want 3", n)
	}
	c2 := startCloudOn(t, cl2)
	if s, err := c2.AdminStats("bounded", tok); err != nil || s.Workers != 3 {
		t.Fatalf("restored stats = %+v, %v", s, err)
	}
}
