package wire

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/storage"
)

// snapshot is the serialised cloud state — every namespace. Only
// cloud-visible data is persisted — clear-text tuples and opaque
// ciphertexts — never owner secrets, so a stolen snapshot is no worse
// than a compromised cloud, which the threat model already assumes.
//
// Save and Restore take the cloud-level write lock, so they are exclusive
// against every op in flight on the concurrent per-connection
// dispatchers across all namespaces.
//
// The legacy single-store fields keep protocol-v1-era state files
// restorable: a snapshot without Version (gob-decoded as 0) is loaded
// into DefaultStore.
type snapshot struct {
	// Version distinguishes snapshot generations: 0 is the legacy
	// single-store layout, ProtocolVersion (2) the namespaced one.
	Version int
	Stores  []storeSnapshot

	// Legacy single-store layout (Version 0).
	HasPlain bool
	Schema   relation.Schema
	Tuples   []relation.Tuple
	Attr     string
	Enc      []storage.EncRow
}

// storeSnapshot is one namespace's serialised state.
type storeSnapshot struct {
	Name     string
	HasPlain bool
	Schema   relation.Schema
	Tuples   []relation.Tuple
	Attr     string
	Enc      []storage.EncRow
	// OwnerHash is the hash of the namespace's control-plane owner token
	// (nil when unclaimed) — the hash, never the token, so a stolen
	// snapshot confers no admin rights. Absent in older snapshots, which
	// restore as unclaimed (gob leaves the field nil).
	OwnerHash []byte
	// EncVersionN is the namespace's write counter at save time; restore
	// raises the rebuilt store's counter to at least this value so a
	// restored namespace never reports a version older than one it already
	// served. The version epoch is deliberately NOT persisted: a restore
	// can lose post-snapshot writes, so the rebuilt store draws a fresh
	// epoch and every owner-side cache revalidates from scratch.
	EncVersionN uint64
	// HasWorkerCap/WorkerCap persist a per-namespace admission override
	// (opAdminSetWorkers) across restarts. Absent in older snapshots
	// (restores with no override).
	HasWorkerCap bool
	WorkerCap    int
}

// Save serialises the state of every hosted namespace.
func (c *Cloud) Save(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := snapshot{Version: ProtocolVersion}
	overrides := c.workerOverridesCopy()
	for _, name := range c.stores.Names() {
		st, ok := c.stores.Get(name)
		if !ok {
			continue
		}
		v, _ := st.Enc().EncVersion()
		ss := storeSnapshot{Name: name, Enc: st.Enc().Rows(), OwnerHash: st.OwnerHash(), EncVersionN: v.N}
		if w, ok := overrides[name]; ok {
			ss.HasWorkerCap, ss.WorkerCap = true, w
		}
		if ps := st.Plain(); ps != nil {
			rel := ps.Relation()
			ss.HasPlain = true
			ss.Schema = rel.Schema
			ss.Tuples = rel.Tuples
			ss.Attr = ps.Attr()
		}
		snap.Stores = append(snap.Stores, ss)
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("wire: snapshot save: %w", err)
	}
	return nil
}

// SaveFile writes the snapshot to path atomically: the state is written
// to a sibling temporary file (uniquely named, so a periodic snapshot
// loop and a shutdown save racing each other never interleave writes
// into one file), synced, and renamed into place — a crash at any point
// leaves either the previous complete snapshot or a new one, never a
// torn file.
func (c *Cloud) SaveFile(path string) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("wire: snapshot save: %w", err)
	}
	tmp := f.Name()
	err = c.Save(f)
	if serr := f.Sync(); err == nil {
		err = serr
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wire: snapshot save: %w", err)
	}
	return nil
}

// materialiseStore rebuilds one namespace's live store from its
// serialised form — the shared path of file restore and ring replica
// restore. The rebuilt store's epoch is fresh (rebirth invalidates every
// owner-side cache); only the version-counter floor carries over.
func materialiseStore(ss storeSnapshot) (*storage.Store, error) {
	st := storage.NewStore()
	if ss.HasPlain {
		rel := relation.New(ss.Schema)
		for _, t := range ss.Tuples {
			if err := rel.Append(t); err != nil {
				return nil, err
			}
		}
		ps, err := storage.NewPlainStore(rel, ss.Attr)
		if err != nil {
			return nil, err
		}
		st.SetPlain(ps)
	}
	for _, row := range ss.Enc {
		st.Enc().Add(row.TupleCT, row.AttrCT, row.Token)
	}
	st.Enc().SetVersionFloor(ss.EncVersionN)
	st.ClaimOwner(ss.OwnerHash)
	return st, nil
}

// Restore replaces the entire cloud state — all namespaces — with a
// previously saved snapshot. Legacy (pre-namespace) snapshots restore
// into DefaultStore.
func (c *Cloud) Restore(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("wire: snapshot restore: %w", err)
	}
	stores := snap.Stores
	if snap.Version == 0 {
		// Legacy layout: one implicit store.
		if snap.HasPlain || len(snap.Enc) > 0 {
			stores = []storeSnapshot{{
				Name:     DefaultStore,
				HasPlain: snap.HasPlain,
				Schema:   snap.Schema,
				Tuples:   snap.Tuples,
				Attr:     snap.Attr,
				Enc:      snap.Enc,
			}}
		}
	}

	// Materialise every store before touching the live registry, so a bad
	// snapshot leaves the current state (all namespaces) intact.
	rebuilt := make(map[string]*storage.Store, len(stores))
	for _, ss := range stores {
		st, err := materialiseStore(ss)
		if err != nil {
			return fmt.Errorf("wire: snapshot restore: store %q: %w", ss.Name, err)
		}
		rebuilt[storeName(ss.Name)] = st
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.stores.Reset()
	for name, st := range rebuilt {
		c.stores.Set(name, st)
	}
	// Admission overrides describe namespaces, which the snapshot just
	// replaced wholesale: clear them all, then reapply the persisted ones.
	c.storeSemMu.Lock()
	for name := range c.workerOverrides {
		delete(c.workerOverrides, name)
	}
	c.overrideCount.Store(0)
	c.storeSemMu.Unlock()
	for _, ss := range stores {
		if ss.HasWorkerCap {
			c.SetStoreWorkersFor(ss.Name, ss.WorkerCap)
		}
	}
	c.storeSemMu.Lock()
	for name, sem := range c.storeSems {
		sem.setCap(c.effectiveWorkersLocked(name))
	}
	c.storeSemMu.Unlock()
	// The op counters describe the replaced state; restart them with it.
	c.statsMu.Lock()
	c.opCounts = make(map[string]*atomic.Uint64)
	c.condCounts = make(map[string]*atomic.Uint64)
	c.statsMu.Unlock()
	return nil
}
