package wire

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/relation"
	"repro/internal/storage"
)

// snapshot is the serialised cloud state. Only cloud-visible data is
// persisted — clear-text tuples and opaque ciphertexts — never owner
// secrets, so a stolen snapshot is no worse than a compromised cloud,
// which the threat model already assumes.
//
// Save and Restore take the cloud-level write lock, so like opPlainLoad
// they are exclusive against every op in flight on the concurrent
// per-connection dispatchers.
type snapshot struct {
	HasPlain bool
	Schema   relation.Schema
	Tuples   []relation.Tuple
	Attr     string
	Enc      []storage.EncRow
}

// Save serialises the cloud state.
func (c *Cloud) Save(w io.Writer) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := snapshot{Enc: c.enc.Rows()}
	if c.plain != nil {
		rel := c.plain.Relation()
		snap.HasPlain = true
		snap.Schema = rel.Schema
		snap.Tuples = rel.Tuples
		snap.Attr = c.plain.Attr()
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("wire: snapshot save: %w", err)
	}
	return nil
}

// Restore replaces the cloud state with a previously saved snapshot.
func (c *Cloud) Restore(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("wire: snapshot restore: %w", err)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if snap.HasPlain {
		rel := relation.New(snap.Schema)
		for _, t := range snap.Tuples {
			if err := rel.Append(t); err != nil {
				return fmt.Errorf("wire: snapshot restore: %w", err)
			}
		}
		ps, err := storage.NewPlainStore(rel, snap.Attr)
		if err != nil {
			return fmt.Errorf("wire: snapshot restore: %w", err)
		}
		c.plain = ps
	} else {
		c.plain = nil
	}
	c.enc = storage.NewEncryptedStore()
	for _, row := range snap.Enc {
		c.enc.Add(row.TupleCT, row.AttrCT, row.Token)
	}
	return nil
}
