package wire

import (
	"bytes"
	"encoding/gob"
	mrand "math/rand/v2"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/technique"
	"repro/internal/workload"
)

// TestSnapshotRoundTrip outsources through a cloud, snapshots it, restores
// into a fresh cloud, and verifies queries still answer correctly — the
// persistence path of cmd/qbcloud.
func TestSnapshotRoundTrip(t *testing.T) {
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis1.Close()
	cloud1 := NewCloud()
	go func() { _ = cloud1.Serve(lis1) }()

	client1, err := Dial(lis1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client1.Close()

	ks := crypto.DeriveKeys([]byte("snapshot"))
	tech, err := technique.NewNoIndOn(ks, client1)
	if err != nil {
		t.Fatal(err)
	}
	o := owner.New(tech, "EId")
	o.SetCloudBackend(client1)
	emp := workload.Employee()
	opts := core.Options{Rand: mrand.New(mrand.NewPCG(5, 6))}
	if err := o.Outsource(emp.Clone(), workload.EmployeeSensitive, opts); err != nil {
		t.Fatal(err)
	}
	if err := client1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Snapshot cloud1 and restore into cloud2.
	var buf bytes.Buffer
	if err := cloud1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cloud2 := NewCloud()
	if err := cloud2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis2.Close()
	go func() { _ = cloud2.Serve(lis2) }()
	client2, err := Dial(lis2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()

	// A new owner session (same keys and bin seed) against the restored
	// cloud: rebuild owner-side metadata by re-deriving from the original
	// relation but point both backends at cloud2.
	tech2, err := technique.NewNoIndOn(ks, &restoredStore{client2})
	if err != nil {
		t.Fatal(err)
	}
	o2 := owner.New(tech2, "EId")
	// Owner metadata (bins, counts) is reconstructed from the relation;
	// the cloud stores are NOT re-uploaded: the restored plain store must
	// already answer.
	got := client2.Search([]relation.Value{relation.Str("E259")})
	if len(got) != 1 {
		t.Fatalf("restored plain store returned %d tuples for E259, want 1", len(got))
	}
	if n := client2.Len(); n != cloud1Len(t, client1) {
		t.Fatalf("restored enc store has %d rows, want %d", n, cloud1Len(t, client1))
	}
	_ = o2

	// End-to-end equality of the encrypted column between original and
	// restored clouds.
	col1 := client1.AttrColumn()
	col2 := client2.AttrColumn()
	if !reflect.DeepEqual(col1, col2) {
		t.Fatal("restored encrypted column differs")
	}
}

func cloud1Len(t *testing.T, c *Client) int {
	t.Helper()
	n := c.Len()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// restoredStore wraps a client without the upload buffer semantics (reads
// only).
type restoredStore struct{ *Client }

// TestSnapshotMultiStoreRoundTrip: a cloud hosting several namespaces
// persists and restores all of them, with plain and encrypted sides
// isolated per store.
func TestSnapshotMultiStoreRoundTrip(t *testing.T) {
	c1 := NewCloud()
	for i, name := range []string{"hr", "finance"} {
		st := c1.stores.GetOrCreate(name)
		st.Enc().Add([]byte(name+"-ct"), nil, []byte("tok"))
		rel := relation.New(relation.MustSchema("T",
			relation.Column{Name: "K", Kind: relation.KindInt},
		))
		for j := 0; j <= i; j++ {
			rel.MustInsert(relation.Int(int64(j)))
		}
		ps, err := storage.NewPlainStore(rel, "K")
		if err != nil {
			t.Fatal(err)
		}
		st.SetPlain(ps)
	}
	// An enc-only namespace (no relation loaded yet).
	c1.stores.GetOrCreate("staging").Enc().Add([]byte("s-ct"), nil, nil)

	var buf bytes.Buffer
	if err := c1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCloud()
	if err := c2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if got := c2.StoreNames(); !reflect.DeepEqual(got, []string{"finance", "hr", "staging"}) {
		t.Fatalf("restored namespaces = %v", got)
	}
	for i, name := range []string{"hr", "finance"} {
		st, ok := c2.stores.Get(name)
		if !ok {
			t.Fatalf("namespace %q lost", name)
		}
		rows := st.Enc().Rows()
		if len(rows) != 1 || string(rows[0].TupleCT) != name+"-ct" {
			t.Fatalf("%s enc rows = %v", name, rows)
		}
		if got := st.Enc().LookupToken([]byte("tok")); len(got) != 1 {
			t.Fatalf("%s token index not rebuilt: %v", name, got)
		}
		if ps := st.Plain(); ps == nil || ps.Len() != i+1 {
			t.Fatalf("%s plain store = %v", name, ps)
		}
	}
	if st, _ := c2.stores.Get("staging"); st.Plain() != nil || st.Enc().Len() != 1 {
		t.Fatal("enc-only namespace restored wrong")
	}
}

// TestRestoreLegacySnapshot: a pre-namespace state file (no Version
// field, single implicit store) restores into DefaultStore, so qbcloud
// upgrades keep their data.
func TestRestoreLegacySnapshot(t *testing.T) {
	// The v1 snapshot layout, gob-encoded exactly as PR 2/3 wrote it.
	type legacySnapshot struct {
		HasPlain bool
		Schema   relation.Schema
		Tuples   []relation.Tuple
		Attr     string
		Enc      []storage.EncRow
	}
	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	rel.MustInsert(relation.Int(7))
	legacy := legacySnapshot{
		HasPlain: true,
		Schema:   rel.Schema,
		Tuples:   rel.Tuples,
		Attr:     "K",
		Enc:      []storage.EncRow{{Addr: 0, TupleCT: []byte("old-ct"), Token: []byte("t")}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(legacy); err != nil {
		t.Fatal(err)
	}

	c := NewCloud()
	if err := c.Restore(&buf); err != nil {
		t.Fatalf("legacy snapshot refused: %v", err)
	}
	st, ok := c.stores.Get(DefaultStore)
	if !ok {
		t.Fatalf("legacy data not in DefaultStore; namespaces = %v", c.StoreNames())
	}
	if st.Plain() == nil || st.Plain().Len() != 1 {
		t.Fatal("legacy plain relation lost")
	}
	rows := st.Enc().Rows()
	if len(rows) != 1 || string(rows[0].TupleCT) != "old-ct" {
		t.Fatalf("legacy enc rows = %v", rows)
	}
}

// TestRestoreFailureLeavesStateIntact: a snapshot that gob-decodes but
// contains an invalid store must not destroy the cloud's live state —
// the failed Restore is a no-op, as it was pre-namespaces.
func TestRestoreFailureLeavesStateIntact(t *testing.T) {
	c := NewCloud()
	c.stores.GetOrCreate("live").Enc().Add([]byte("precious"), nil, nil)

	bad := snapshot{Version: ProtocolVersion, Stores: []storeSnapshot{{
		Name:     "bad",
		HasPlain: true,
		Schema:   relation.MustSchema("T", relation.Column{Name: "K", Kind: relation.KindInt}),
		Attr:     "Nonexistent", // NewPlainStore fails: no such column
	}}}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(bad); err != nil {
		t.Fatal(err)
	}
	if err := c.Restore(&buf); err == nil {
		t.Fatal("invalid snapshot accepted")
	}
	st, ok := c.stores.Get("live")
	if !ok || st.Enc().Len() != 1 {
		t.Fatalf("failed restore destroyed live state: namespaces = %v", c.StoreNames())
	}
	if _, ok := c.stores.Get("bad"); ok {
		t.Fatal("failed restore left a partial store behind")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	c := NewCloud()
	if err := c.Restore(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSnapshotEmptyCloud(t *testing.T) {
	c := NewCloud()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCloud()
	if err := c2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
}
