package wire

import (
	"bytes"
	mrand "math/rand/v2"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

// TestSnapshotRoundTrip outsources through a cloud, snapshots it, restores
// into a fresh cloud, and verifies queries still answer correctly — the
// persistence path of cmd/qbcloud.
func TestSnapshotRoundTrip(t *testing.T) {
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis1.Close()
	cloud1 := NewCloud()
	go func() { _ = cloud1.Serve(lis1) }()

	client1, err := Dial(lis1.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client1.Close()

	ks := crypto.DeriveKeys([]byte("snapshot"))
	tech, err := technique.NewNoIndOn(ks, client1)
	if err != nil {
		t.Fatal(err)
	}
	o := owner.New(tech, "EId")
	o.SetCloudBackend(client1)
	emp := workload.Employee()
	opts := core.Options{Rand: mrand.New(mrand.NewPCG(5, 6))}
	if err := o.Outsource(emp.Clone(), workload.EmployeeSensitive, opts); err != nil {
		t.Fatal(err)
	}
	if err := client1.Flush(); err != nil {
		t.Fatal(err)
	}

	// Snapshot cloud1 and restore into cloud2.
	var buf bytes.Buffer
	if err := cloud1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cloud2 := NewCloud()
	if err := cloud2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	lis2, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis2.Close()
	go func() { _ = cloud2.Serve(lis2) }()
	client2, err := Dial(lis2.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client2.Close()

	// A new owner session (same keys and bin seed) against the restored
	// cloud: rebuild owner-side metadata by re-deriving from the original
	// relation but point both backends at cloud2.
	tech2, err := technique.NewNoIndOn(ks, &restoredStore{client2})
	if err != nil {
		t.Fatal(err)
	}
	o2 := owner.New(tech2, "EId")
	// Owner metadata (bins, counts) is reconstructed from the relation;
	// the cloud stores are NOT re-uploaded: the restored plain store must
	// already answer.
	got := client2.Search([]relation.Value{relation.Str("E259")})
	if len(got) != 1 {
		t.Fatalf("restored plain store returned %d tuples for E259, want 1", len(got))
	}
	if n := client2.Len(); n != cloud1Len(t, client1) {
		t.Fatalf("restored enc store has %d rows, want %d", n, cloud1Len(t, client1))
	}
	_ = o2

	// End-to-end equality of the encrypted column between original and
	// restored clouds.
	col1 := client1.AttrColumn()
	col2 := client2.AttrColumn()
	if !reflect.DeepEqual(col1, col2) {
		t.Fatal("restored encrypted column differs")
	}
}

func cloud1Len(t *testing.T, c *Client) int {
	t.Helper()
	n := c.Len()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

// restoredStore wraps a client without the upload buffer semantics (reads
// only).
type restoredStore struct{ *Client }

func TestRestoreRejectsGarbage(t *testing.T) {
	c := NewCloud()
	if err := c.Restore(strings.NewReader("not a snapshot")); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
}

func TestSnapshotEmptyCloud(t *testing.T) {
	c := NewCloud()
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := NewCloud()
	if err := c2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
}
