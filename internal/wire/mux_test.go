package wire

import (
	"fmt"
	mrand "math/rand/v2"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
	"repro/internal/storage"
)

// pipeClient wires a Client to a scripted peer over net.Pipe. The script
// side speaks through a serverStream — the same framing state machine the
// real server uses — so scripted tests exercise the gob handshake and the
// framed binary codec exactly as deployed.
func pipeClient(t *testing.T) (*Client, *serverStream) {
	t.Helper()
	cend, send := net.Pipe()
	c := NewClient(cend)
	t.Cleanup(func() { c.Close(); send.Close() })
	return c, newServerStream(send)
}

// serveHello answers the client's handshake from a scripted server and
// switches the script side to framed mode. It returns false if the frame
// was not the expected opHello or the reply could not be written (the
// script should bail out).
func serveHello(ss *serverStream) bool {
	req, err := ss.readRequest()
	if err != nil || req.Op != opHello {
		return false
	}
	if ss.writeResponse(opHello, &response{ID: req.ID, Version: ProtocolVersion}) != nil {
		return false
	}
	ss.setFramed()
	return true
}

// TestMuxOutOfOrderResponses proves the demux: two calls go out on one
// connection, the scripted server answers them in reverse order, and each
// caller still receives its own response.
func TestMuxOutOfOrderResponses(t *testing.T) {
	c, ss := pipeClient(t)

	done := make(chan error, 1)
	go func() {
		if !serveHello(ss) {
			done <- fmt.Errorf("handshake script failed")
			return
		}
		var reqs []*request
		for i := 0; i < 2; i++ {
			req, err := ss.readRequest()
			if err != nil {
				done <- err
				return
			}
			reqs = append(reqs, req)
		}
		// Reply in reverse order; payload identifies the request it
		// answers (Fetch addr echoed back as the row address).
		for i := len(reqs) - 1; i >= 0; i-- {
			resp := response{ID: reqs[i].ID, Rows: []storage.EncRow{{Addr: reqs[i].Addrs[0], TupleCT: []byte("x")}}}
			if err := ss.writeResponse(opEncFetch, &resp); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(addr int) {
			defer wg.Done()
			resp, err := c.roundTrip(&request{Op: opEncFetch, Addrs: []int{addr}})
			if err != nil {
				errs[addr] = err
				return
			}
			if len(resp.Rows) != 1 || resp.Rows[0].Addr != addr {
				errs[addr] = fmt.Errorf("caller %d got response payload %v", addr, resp.Rows)
			}
		}(i)
	}
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("scripted server: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
}

// TestLogicalErrorDoesNotPoison: a server-side logical error is returned
// to its call only; the client stays healthy and later calls succeed.
func TestLogicalErrorDoesNotPoison(t *testing.T) {
	c := startCloud(t)
	if _, err := c.Fetch([]int{42}); err == nil {
		t.Fatal("out-of-range fetch accepted")
	}
	if c.Err() != nil {
		t.Fatalf("logical error became sticky: %v", c.Err())
	}
	// Void methods record the error instead.
	if got := c.Search([]relation.Value{relation.Int(1)}); got != nil {
		t.Fatalf("search before load = %v", got)
	}
	if c.LogicalErr() == nil || !strings.Contains(c.LogicalErr().Error(), "no relation loaded") {
		t.Fatalf("LogicalErr = %v", c.LogicalErr())
	}
	if c.Err() != nil {
		t.Fatalf("void-method logical error became sticky: %v", c.Err())
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("client unusable after logical errors: %v", err)
	}
}

// TestTransportErrorPoisonsAndReleases: a mid-stream disconnect fails the
// in-flight call, poisons the client, and every caller blocked on the
// connection is released with the sticky transport error.
func TestTransportErrorPoisonsAndReleases(t *testing.T) {
	c, ss := pipeClient(t)

	const callers = 5
	read := make(chan struct{})
	go func() {
		_, _ = ss.readRequest() // absorb one request...
		close(read)             // ...then vanish without replying
	}()

	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs <- c.Ping()
		}()
	}
	<-read
	// Server dies mid-conversation with responses owed.
	c.conn.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err == nil {
			t.Fatal("caller succeeded after mid-stream disconnect")
		}
	}
	if c.Err() == nil {
		t.Fatal("transport failure not sticky")
	}
	// Poisoned client fails fast without touching the dead conn.
	if err := c.Ping(); err == nil {
		t.Fatal("ping on poisoned client succeeded")
	}
	if c.Add([]byte("x"), nil, nil) != -1 {
		t.Fatal("Add on poisoned client handed out an address")
	}
}

// TestUnknownResponseIDFailsConnection: a response with an ID nobody is
// waiting for means the stream is corrupt; the client must poison itself
// rather than keep decoding garbage.
func TestUnknownResponseIDFailsConnection(t *testing.T) {
	c, ss := pipeClient(t)
	go func() {
		req, err := ss.readRequest()
		if err != nil {
			return
		}
		_ = ss.writeResponse(opHello, &response{ID: req.ID + 1000})
	}()
	if err := c.Ping(); err == nil {
		t.Fatal("call answered by a stray response ID succeeded")
	}
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "unknown response ID") {
		t.Fatalf("Err = %v, want unknown-response-ID poison", c.Err())
	}
}

// TestFlushFailureRetainsPending: a logically rejected upload batch stays
// buffered (its addresses are already live in the technique), serverLen
// is resynced via opEncLen, and a retry delivers the same rows at the
// same addresses.
func TestFlushFailureRetainsPending(t *testing.T) {
	c, ss := pipeClient(t)

	serverRows := 0
	rejected := false
	done := make(chan error, 1)
	go func() {
		for {
			req, err := ss.readRequest()
			if err != nil {
				done <- nil // client closed at test end
				return
			}
			var resp response
			resp.ID = req.ID
			switch req.Op {
			case opHello:
				resp.Version = ProtocolVersion
			case opEncAddBatch:
				if !rejected {
					rejected = true
					resp.Err = "enc store: simulated rejection"
				} else {
					serverRows += len(req.Batch)
					resp.N = len(req.Batch)
				}
			case opEncLen:
				resp.N = serverRows
			default:
				resp.Err = "unexpected op in script"
			}
			if err := ss.writeResponse(req.Op, &resp); err != nil {
				done <- err
				return
			}
			if req.Op == opHello {
				ss.setFramed()
			}
		}
	}()

	a0 := c.Add([]byte("ct0"), []byte("a0"), nil)
	a1 := c.Add([]byte("ct1"), []byte("a1"), nil)
	if a0 != 0 || a1 != 1 {
		t.Fatalf("addresses %d, %d", a0, a1)
	}

	if err := c.Flush(); err == nil {
		t.Fatal("rejected flush reported success")
	}
	if c.Err() != nil {
		t.Fatalf("logical flush failure poisoned the client: %v", c.Err())
	}
	c.def.bufMu.Lock()
	retained, syncedLen := len(c.def.pending), c.def.serverLen
	c.def.bufMu.Unlock()
	if retained != 2 {
		t.Fatalf("failed flush dropped rows: %d pending, want 2", retained)
	}
	if syncedLen != 0 {
		t.Fatalf("serverLen = %d after resync, want 0", syncedLen)
	}
	// Addresses handed out before the failure are still the ones the
	// retry will materialise.
	if a2 := c.Add([]byte("ct2"), nil, nil); a2 != 2 {
		t.Fatalf("post-failure Add returned %d, want 2", a2)
	}

	if err := c.Flush(); err != nil {
		t.Fatalf("retry flush: %v", err)
	}
	c.def.bufMu.Lock()
	retained, syncedLen = len(c.def.pending), c.def.serverLen
	c.def.bufMu.Unlock()
	if retained != 0 || syncedLen != 3 {
		t.Fatalf("after retry: pending=%d serverLen=%d, want 0/3", retained, syncedLen)
	}
	if serverRows != 3 {
		t.Fatalf("server applied %d rows, want 3", serverRows)
	}
	c.Close()
	if err := <-done; err != nil {
		t.Fatalf("scripted server: %v", err)
	}
}

// TestFlushPartialApplicationPoisons: if the resync after a rejected
// batch reveals the server applied part of it, the addresses Add handed
// out can no longer be honoured — the client must fail loudly instead of
// retrying the rows at shifted addresses.
func TestFlushPartialApplicationPoisons(t *testing.T) {
	c, ss := pipeClient(t)
	go func() {
		serverRows := 0
		for {
			req, err := ss.readRequest()
			if err != nil {
				return
			}
			resp := response{ID: req.ID}
			switch req.Op {
			case opHello:
				resp.Version = ProtocolVersion
			case opEncAddBatch:
				serverRows++ // applies ONE row, then rejects the batch
				resp.Err = "enc store: simulated mid-batch failure"
			case opEncLen:
				resp.N = serverRows
			}
			if err := ss.writeResponse(req.Op, &resp); err != nil {
				return
			}
			if req.Op == opHello {
				ss.setFramed()
			}
		}
	}()

	c.Add([]byte("ct0"), nil, nil)
	c.Add([]byte("ct1"), nil, nil)
	if err := c.Flush(); err == nil {
		t.Fatal("partially applied flush reported success")
	}
	if c.Err() == nil || !strings.Contains(c.Err().Error(), "partially applied") {
		t.Fatalf("Err = %v, want partial-application poison", c.Err())
	}
	if err := c.Ping(); err == nil {
		t.Fatal("client usable after address space corruption")
	}
}

// TestFlushRejectedByRealServer: the real Cloud rejects an upload batch
// containing an empty tuple ciphertext before applying any of it — the
// reachable logical-rejection case the client's retention/resync handles:
// the connection stays healthy, the rows stay buffered, and serverLen
// confirms nothing was applied.
func TestFlushRejectedByRealServer(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = NewCloud().Serve(lis) }()
	c, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if addr := c.Add([]byte("good"), nil, nil); addr != 0 {
		t.Fatalf("Add = %d", addr)
	}
	if addr := c.Add(nil, nil, nil); addr != 1 { // empty TupleCT: invalid row
		t.Fatalf("Add = %d", addr)
	}
	if err := c.Flush(); err == nil || !strings.Contains(err.Error(), "empty tuple ciphertext") {
		t.Fatalf("Flush = %v, want empty-ciphertext rejection", err)
	}
	if c.Err() != nil {
		t.Fatalf("logical rejection poisoned the client: %v", c.Err())
	}
	c.def.bufMu.Lock()
	retained, syncedLen := len(c.def.pending), c.def.serverLen
	c.def.bufMu.Unlock()
	if retained != 2 || syncedLen != 0 {
		t.Fatalf("after rejection: pending=%d serverLen=%d, want 2/0", retained, syncedLen)
	}
	// The batch was all-or-nothing: a second client sees an untouched
	// store — the good row was not applied either.
	c2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if n := c2.Len(); n != 0 {
		t.Fatalf("server applied part of a rejected batch: Len = %d", n)
	}
}

// TestFlushTransportFailureRetainsPending: when the flush dies on the
// transport the rows are still retained (a reconnecting wrapper could
// resend them) and the client is poisoned.
func TestFlushTransportFailureRetainsPending(t *testing.T) {
	c, ss := pipeClient(t)
	// Serve the handshake and Add's first-use length sync, then vanish
	// before the flush.
	go func() {
		if !serveHello(ss) {
			return
		}
		req, err := ss.readRequest()
		if err != nil {
			return
		}
		_ = ss.writeResponse(req.Op, &response{ID: req.ID})
		_, _ = ss.readRequest()
		c.conn.Close()
	}()

	if addr := c.Add([]byte("ct0"), nil, nil); addr != 0 {
		t.Fatalf("Add = %d", addr)
	}
	if err := c.Flush(); err == nil {
		t.Fatal("flush over dead transport succeeded")
	}
	if c.Err() == nil {
		t.Fatal("transport flush failure not sticky")
	}
	c.def.bufMu.Lock()
	retained := len(c.def.pending)
	c.def.bufMu.Unlock()
	if retained != 1 {
		t.Fatalf("transport flush failure dropped rows: %d pending, want 1", retained)
	}
}

// TestServerClosesOnMalformedFrame: garbage on the wire must close the
// connection without the server attempting to encode a reply onto the
// desynchronised stream.
func TestServerClosesOnMalformedFrame(t *testing.T) {
	cl := NewCloud()
	cend, send := net.Pipe()
	srvDone := make(chan struct{})
	go func() { cl.ServeConn(send); close(srvDone) }()

	if _, err := cend.Write([]byte("\x13garbage that is not a gob frame")); err != nil {
		t.Fatal(err)
	}
	// The server must close the conn; the read observes EOF/closed rather
	// than an error response frame.
	buf := make([]byte, 64)
	n, err := cend.Read(buf)
	if err == nil {
		t.Fatalf("server wrote %d bytes onto a desynchronised stream: %q", n, buf[:n])
	}
	<-srvDone
}

// TestMuxConcurrentStress drives one multiplexed connection (and then a
// pool) from many goroutines — readers fetching specific addresses and
// checking they get their own rows back, writers adding + flushing new
// rows, and a loader goroutine interleaving exclusive opPlainLoad — under
// -race. It is both the demux correctness check (a crossed response would
// return the wrong row) and the concurrency stress for the server's
// per-connection worker pool.
func TestMuxConcurrentStress(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	cl := NewCloud()
	cl.SetConnWorkers(4)
	go func() { _ = cl.Serve(lis) }()

	newBackend := func(t *testing.T, conns int) Backend {
		if conns == 1 {
			c, err := Dial(lis.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			return c
		}
		p, err := DialPool(lis.Addr().String(), conns)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { p.Close() })
		return p
	}

	for _, tc := range []struct {
		name  string
		conns int
	}{{"single-conn", 1}, {"pool-3", 3}} {
		t.Run(tc.name, func(t *testing.T) {
			b := newBackend(t, tc.conns)

			// Seed rows whose payload encodes their address.
			rowCT := func(addr int) string { return fmt.Sprintf("ct-%04d", addr) }
			const seeded = 64
			base := b.Len() // cloud is shared across subtests
			for i := 0; i < seeded; i++ {
				addr := b.Add([]byte(rowCT(base+i)), []byte("attr"), []byte(fmt.Sprintf("tok%d", i%8)))
				if addr != base+i {
					t.Fatalf("seed addr = %d, want %d", addr, base+i)
				}
			}
			if err := b.Flush(); err != nil {
				t.Fatal(err)
			}

			rel := relation.New(relation.MustSchema("T",
				relation.Column{Name: "K", Kind: relation.KindInt},
			))
			for i := 0; i < 10; i++ {
				rel.MustInsert(relation.Int(int64(i)))
			}
			if err := b.Load(rel, "K"); err != nil {
				t.Fatal(err)
			}

			var wg sync.WaitGroup
			fail := make(chan error, 64)
			report := func(format string, args ...any) {
				select {
				case fail <- fmt.Errorf(format, args...):
				default:
				}
			}

			// Readers: fetch a random seeded address, expect that row.
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					rng := mrand.New(mrand.NewPCG(uint64(g), 99))
					for i := 0; i < 60; i++ {
						addr := base + rng.IntN(seeded)
						rows, err := b.Fetch([]int{addr})
						if err != nil {
							report("fetch(%d): %v", addr, err)
							return
						}
						if len(rows) != 1 || string(rows[0].TupleCT) != rowCT(addr) {
							report("fetch(%d) returned %q — crossed responses", addr, rows[0].TupleCT)
							return
						}
						if got := b.Search([]relation.Value{relation.Int(int64(i % 10))}); len(got) != 1 {
							report("search mid-stress = %d tuples", len(got))
							return
						}
						_ = b.Len()
					}
				}(g)
			}
			// Writer: grow the store, then read each new row back.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 20; i++ {
					addr := b.Add([]byte("w"), nil, nil)
					if addr < base+seeded {
						report("writer addr %d collides with seeded range", addr)
						return
					}
					if err := b.Flush(); err != nil {
						report("writer flush: %v", err)
						return
					}
				}
			}()
			// Loader: interleave the exclusive opPlainLoad.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 15; i++ {
					if err := b.Load(rel, "K"); err != nil {
						report("load: %v", err)
						return
					}
				}
			}()
			wg.Wait()
			close(fail)
			for err := range fail {
				t.Error(err)
			}
			if err := b.Err(); err != nil {
				t.Fatalf("sticky transport error after stress: %v", err)
			}
			if err := b.LogicalErr(); err != nil {
				t.Fatalf("logical error after stress: %v", err)
			}
		})
	}
}

// TestPoolBasics covers the pool's read/write routing: buffered uploads
// on the primary are visible to reads served by other connections, and
// plain ops work regardless of which connection serves them.
func TestPoolBasics(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = NewCloud().Serve(lis) }()

	p, err := DialPool(lis.Addr().String(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if p.Size() != 3 {
		t.Fatalf("Size = %d", p.Size())
	}
	if err := p.Ping(); err != nil {
		t.Fatal(err)
	}

	// Enc reads see buffered uploads no matter which conn serves them.
	if a := p.Add([]byte("ct0"), []byte("a0"), []byte("tok")); a != 0 {
		t.Fatalf("Add = %d", a)
	}
	for i := 0; i < p.Size()+1; i++ { // cycle through every connection
		if n := p.Len(); n != 1 {
			t.Fatalf("Len via conn %d = %d, want 1", i, n)
		}
	}
	if got := p.LookupToken([]byte("tok")); len(got) != 1 || got[0] != 0 {
		t.Fatalf("LookupToken = %v", got)
	}
	rows, err := p.Fetch([]int{0})
	if err != nil || len(rows) != 1 || string(rows[0].TupleCT) != "ct0" {
		t.Fatalf("Fetch = %v, %v", rows, err)
	}
	if got := p.AttrColumn(); len(got) != 1 || string(got[0].AttrCT) != "a0" {
		t.Fatalf("AttrColumn = %v", got)
	}
	if got := p.Rows(); len(got) != 1 {
		t.Fatalf("Rows = %v", got)
	}

	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	rel.MustInsert(relation.Int(1))
	if err := p.Load(rel, "K"); err != nil {
		t.Fatal(err)
	}
	if err := p.Insert(relation.Tuple{ID: 2, Values: []relation.Value{relation.Int(5)}}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < p.Size()+1; i++ {
		if got := p.Search([]relation.Value{relation.Int(5)}); len(got) != 1 {
			t.Fatalf("Search via conn %d = %v", i, got)
		}
		if got := p.SearchRange(relation.Int(0), relation.Int(9)); len(got) != 2 {
			t.Fatalf("SearchRange via conn %d = %v", i, got)
		}
	}
	if p.Err() != nil || p.LogicalErr() != nil {
		t.Fatalf("pool errors: %v / %v", p.Err(), p.LogicalErr())
	}
}

// TestPoolSkipsPoisonedConnections: after a secondary connection dies,
// round-robined reads must route around it instead of periodically
// returning silent zero values.
func TestPoolSkipsPoisonedConnections(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = NewCloud().Serve(lis) }()

	p, err := DialPool(lis.Addr().String(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	rel.MustInsert(relation.Int(1))
	if err := p.Load(rel, "K"); err != nil {
		t.Fatal(err)
	}

	// Kill one secondary's transport and let its teardown land.
	p.conns[1].(*Client).conn.Close()
	for p.conns[1].(*Client).stickyErr() == nil {
		time.Sleep(time.Millisecond)
	}

	// Every read must keep succeeding: the dead conn is skipped.
	for i := 0; i < 3*p.Size(); i++ {
		if got := p.Search([]relation.Value{relation.Int(1)}); len(got) != 1 {
			t.Fatalf("read %d routed to poisoned conn: %v", i, got)
		}
	}
	// A dead secondary is degradation, not failure: the pool stays
	// healthy (queries keep working), and the capacity loss is visible.
	if err := p.Err(); err != nil {
		t.Fatalf("dead secondary failed the pool: %v", err)
	}
	if got := p.Alive(); got != 2 {
		t.Fatalf("Alive = %d, want 2", got)
	}
	// A dead primary, by contrast, is a pool failure: writes and flushes
	// depend on it.
	p.conns[0].(*Client).conn.Close()
	for p.conns[0].(*Client).stickyErr() == nil {
		time.Sleep(time.Millisecond)
	}
	if p.Err() == nil {
		t.Fatal("dead primary not reported by pool Err()")
	}
}

// TestDialPoolUnreachable: a failed dial cleans up already-open conns.
func TestDialPoolUnreachable(t *testing.T) {
	if _, err := DialPool("127.0.0.1:1", 2); err == nil {
		t.Fatal("DialPool to unreachable addr succeeded")
	}
}
