package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

// startCloudListener runs a cloud on a loopback listener and returns the
// cloud and its address.
func startCloudListener(t *testing.T) (*Cloud, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCloud()
	go func() { _ = cl.Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	return cl, lis.Addr().String()
}

// TestHelloRejectsLegacyClient: a pre-namespace (v1) client never sends
// opHello; its first op must be answered with an explicit
// version-mismatch error — not executed, not a corrupted frame — and the
// connection closed.
func TestHelloRejectsLegacyClient(t *testing.T) {
	_, addr := startCloudListener(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)

	// A v1 client's opening frame: some real op, no handshake.
	if err := enc.Encode(&request{ID: 7, Op: opEncLen}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatalf("no explicit refusal frame: %v", err)
	}
	if resp.ID != 7 {
		t.Fatalf("refusal answers ID %d, want 7", resp.ID)
	}
	if !strings.Contains(resp.Err, "protocol version mismatch") {
		t.Fatalf("refusal error = %q, want a version-mismatch message", resp.Err)
	}
	// The server hangs up after refusing: the next decode observes EOF,
	// not another frame.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if err := dec.Decode(&resp); err == nil {
		t.Fatal("server kept serving a pre-handshake connection")
	}
}

// TestHelloRejectsVersionSkew: an opHello carrying the wrong version is
// refused explicitly with both versions named.
func TestHelloRejectsVersionSkew(t *testing.T) {
	_, addr := startCloudListener(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	enc, dec := gob.NewEncoder(conn), gob.NewDecoder(conn)
	if err := enc.Encode(&request{ID: 1, Op: opHello, Version: ProtocolVersion + 5}); err != nil {
		t.Fatal(err)
	}
	var resp response
	if err := dec.Decode(&resp); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resp.Err, "version mismatch") || resp.Version != ProtocolVersion {
		t.Fatalf("skewed hello answered %+v", resp)
	}
}

// TestClientRejectsLegacyServer: a client handshaking with a v1 server
// (which answers opHello with "unknown op") must poison itself with an
// explicit version-mismatch error instead of proceeding.
func TestClientRejectsLegacyServer(t *testing.T) {
	cend, send := net.Pipe()
	c := NewClient(cend)
	t.Cleanup(func() { c.Close(); send.Close() })
	go func() {
		dec, enc := gob.NewDecoder(send), gob.NewEncoder(send)
		var req request
		if err := dec.Decode(&req); err != nil {
			return
		}
		// What the v1 dispatch switch answered for any unknown op.
		_ = enc.Encode(response{ID: req.ID, Err: "wire: unknown op"})
	}()

	err := c.Ping()
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("ping against v1 server = %v, want version-mismatch", err)
	}
	// The mismatch is sticky and explicit for every later call.
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("Err = %v, want sticky version mismatch", err)
	}
	if _, err := c.Fetch([]int{0}); err == nil {
		t.Fatal("fetch proceeded against a version-mismatched server")
	}
}

// TestClientRejectsV2Server: a v3 client handshaking with a v2 server —
// which speaks unframed gob and answers the hello with its own version —
// must fail its first op with an explicit mismatch naming both versions,
// not hang and not attempt framed traffic against a gob peer.
func TestClientRejectsV2Server(t *testing.T) {
	cend, send := net.Pipe()
	c := NewClient(cend)
	t.Cleanup(func() { c.Close(); send.Close() })
	go func() {
		// A v2 server: plain gob both ways, never switches to frames.
		dec, enc := gob.NewDecoder(send), gob.NewEncoder(send)
		for {
			var req request
			if err := dec.Decode(&req); err != nil {
				return
			}
			resp := response{ID: req.ID}
			if req.Op == opHello {
				resp.Version = ProtocolVersion - 1
			}
			if err := enc.Encode(resp); err != nil {
				return
			}
		}
	}()

	err := c.Ping()
	if err == nil || !strings.Contains(err.Error(), "version mismatch") ||
		!strings.Contains(err.Error(), fmt.Sprintf("v%d", ProtocolVersion-1)) {
		t.Fatalf("ping against v2 server = %v, want explicit version mismatch", err)
	}
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("Err = %v, want sticky version mismatch", err)
	}
}

// TestPingCreatesNoStore: store-less ops (the handshake, Ping) must not
// materialise a phantom "default" namespace in the registry, the stats
// or the next snapshot.
func TestPingCreatesNoStore(t *testing.T) {
	cl, addr := startCloudListener(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if names := cl.StoreNames(); len(names) != 0 {
		t.Fatalf("ping materialised namespaces %v", names)
	}
	if stats := cl.Stats(); len(stats) != 0 {
		t.Fatalf("ping materialised stats %v", stats)
	}
}

// TestStoreNamespacesOverWire: one connection, two namespaces — plain
// relations, encrypted rows, tokens and address spaces must all be fully
// isolated, and the default-store methods must alias WithStore(DefaultStore).
func TestStoreNamespacesOverWire(t *testing.T) {
	cl, addr := startCloudListener(t)
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	hr := c.WithStore("hr")
	fin := c.WithStore("finance")

	// Independent address spaces from row zero.
	if a := hr.Add([]byte("hr-0"), []byte("a"), []byte("tok")); a != 0 {
		t.Fatalf("hr first addr = %d", a)
	}
	if a := fin.Add([]byte("fin-0"), []byte("b"), []byte("tok")); a != 0 {
		t.Fatalf("finance first addr = %d", a)
	}
	if a := hr.Add([]byte("hr-1"), nil, nil); a != 1 {
		t.Fatalf("hr second addr = %d", a)
	}
	if err := hr.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := fin.Flush(); err != nil {
		t.Fatal(err)
	}
	if n, m := hr.Len(), fin.Len(); n != 2 || m != 1 {
		t.Fatalf("Len = %d/%d, want 2/1", n, m)
	}
	rows, err := hr.Fetch([]int{0})
	if err != nil || string(rows[0].TupleCT) != "hr-0" {
		t.Fatalf("hr fetch = %v, %v", rows, err)
	}
	rows, err = fin.Fetch([]int{0})
	if err != nil || string(rows[0].TupleCT) != "fin-0" {
		t.Fatalf("finance fetch = %v, %v", rows, err)
	}
	// Same token bytes, disjoint indexes.
	if got := hr.LookupToken([]byte("tok")); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("hr token = %v", got)
	}
	if got := fin.LookupToken([]byte("tok")); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("finance token = %v", got)
	}

	// Plain relations are per-namespace too.
	mkRel := func(vals ...int64) *relation.Relation {
		rel := relation.New(relation.MustSchema("T",
			relation.Column{Name: "K", Kind: relation.KindInt},
		))
		for _, v := range vals {
			rel.MustInsert(relation.Int(v))
		}
		return rel
	}
	if err := hr.Load(mkRel(1, 2), "K"); err != nil {
		t.Fatal(err)
	}
	if got := hr.Search([]relation.Value{relation.Int(1)}); len(got) != 1 {
		t.Fatalf("hr search = %v", got)
	}
	// finance has no relation loaded: logical error, scoped to finance.
	if got := fin.Search([]relation.Value{relation.Int(1)}); got != nil {
		t.Fatalf("finance search = %v", got)
	}
	if le := c.LogicalErr(); le == nil || !strings.Contains(le.Error(), "finance") {
		t.Fatalf("LogicalErr = %v, want store-qualified no-relation error", le)
	}

	// The default-store surface is WithStore(DefaultStore).
	if c.WithStore("") != c.WithStore(DefaultStore) {
		t.Fatal("empty name and DefaultStore yield different views")
	}
	if a := c.Add([]byte("def-0"), nil, nil); a != 0 {
		t.Fatalf("default store first addr = %d", a)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	// Server-side accounting sees all three namespaces.
	names := cl.StoreNames()
	if !reflect.DeepEqual(names, []string{"default", "finance", "hr"}) {
		t.Fatalf("StoreNames = %v", names)
	}
	stats := cl.Stats()
	if stats["hr"].EncRows != 2 || stats["hr"].PlainTuples != 2 || stats["hr"].Ops == 0 {
		t.Fatalf("hr stats = %+v", stats["hr"])
	}
	if stats["finance"].EncRows != 1 || stats["finance"].PlainTuples != 0 {
		t.Fatalf("finance stats = %+v", stats["finance"])
	}
}

// TestPoolPinsWritesPerStore: with two connections, two namespaces get
// two different home connections — mutations no longer serialise on a
// single pool-wide primary — while the default store keeps conns[0].
func TestPoolPinsWritesPerStore(t *testing.T) {
	_, addr := startCloudListener(t)
	p, err := DialPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	a := p.WithStore("tenant-a")
	b := p.WithStore("tenant-b")
	if a.conn == b.conn {
		t.Fatal("two namespaces share one home connection on a 2-conn pool")
	}
	if p.WithStore("").conn != p.conns[0] {
		t.Fatal("default store not homed on the first connection")
	}
	// Same name, same view.
	if p.WithStore("tenant-a") != a {
		t.Fatal("WithStore not idempotent")
	}

	// Writes land in the right namespaces through their pinned conns, and
	// reads see them from every connection.
	if addr := a.Add([]byte("a-ct"), nil, nil); addr != 0 {
		t.Fatalf("tenant-a addr = %d", addr)
	}
	if addr := b.Add([]byte("b-ct"), nil, nil); addr != 0 {
		t.Fatalf("tenant-b addr = %d", addr)
	}
	for i := 0; i < 2*p.Size(); i++ { // cycle the read round-robin
		rowsA, err := a.Fetch([]int{0})
		if err != nil || string(rowsA[0].TupleCT) != "a-ct" {
			t.Fatalf("tenant-a read %d = %v, %v", i, rowsA, err)
		}
		rowsB, err := b.Fetch([]int{0})
		if err != nil || string(rowsB[0].TupleCT) != "b-ct" {
			t.Fatalf("tenant-b read %d = %v, %v", i, rowsB, err)
		}
	}
}

// TestPoolStoreSurvivesOtherHomeDeath: killing tenant-a's home connection
// must not break tenant-b's writes (they are pinned elsewhere), and
// tenant-a's view reports the failure through its Err while the pool
// routes its reads around the corpse.
func TestPoolStoreSurvivesOtherHomeDeath(t *testing.T) {
	_, addr := startCloudListener(t)
	p, err := DialPool(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	a, b := p.WithStore("tenant-a"), p.WithStore("tenant-b") // homes: conns[1], conns[0] (default took conns[0])
	if addr := b.Add([]byte("b-ct"), nil, nil); addr != 0 {
		t.Fatalf("tenant-b addr = %d", addr)
	}
	if err := b.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill tenant-a's home.
	a.Home().(*StoreClient).c.conn.Close()
	for a.Home().(*StoreClient).c.stickyErr() == nil {
		time.Sleep(time.Millisecond)
	}

	// tenant-b keeps writing and reading.
	if addr := b.Add([]byte("b-ct2"), nil, nil); addr != 1 {
		t.Fatalf("tenant-b addr after other home died = %d", addr)
	}
	if err := b.Flush(); err != nil {
		t.Fatalf("tenant-b flush after other home died: %v", err)
	}
	for i := 0; i < 4; i++ {
		if n := b.Len(); n != 2 {
			t.Fatalf("tenant-b Len = %d", n)
		}
	}
	// tenant-a's mutations fail loudly through its view.
	if a.Err() == nil {
		t.Fatal("tenant-a view hides its dead home connection")
	}
	if addr := a.Add([]byte("a-ct"), nil, nil); addr != -1 {
		t.Fatalf("tenant-a Add on dead home = %d", addr)
	}
}

// TestTwoNamespacesConcurrently hammers two namespaces through one
// connection and through a pool under -race: interleaved writes, reads
// and per-store loads must stay isolated.
func TestTwoNamespacesConcurrently(t *testing.T) {
	_, addr := startCloudListener(t)
	for _, conns := range []int{1, 3} {
		t.Run(fmt.Sprintf("conns=%d", conns), func(t *testing.T) {
			var tr Transport
			if conns == 1 {
				c, err := Dial(addr)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { c.Close() })
				tr = c
			} else {
				p, err := DialPool(addr, conns)
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { p.Close() })
				tr = p
			}

			var wg sync.WaitGroup
			fail := make(chan error, 16)
			report := func(format string, args ...any) {
				select {
				case fail <- fmt.Errorf(format, args...):
				default:
				}
			}
			for _, ns := range []string{
				fmt.Sprintf("stress-a-%d", conns), fmt.Sprintf("stress-b-%d", conns),
			} {
				wg.Add(1)
				go func(ns string) {
					defer wg.Done()
					v := tr.Store(ns)
					base := v.Len()
					for i := 0; i < 40; i++ {
						want := fmt.Sprintf("%s-%d", ns, i)
						addr := v.Add([]byte(want), nil, []byte(ns))
						if addr != base+i {
							report("%s: addr %d, want %d", ns, addr, base+i)
							return
						}
						rows, err := v.Fetch([]int{addr})
						if err != nil || string(rows[0].TupleCT) != want {
							report("%s: fetch(%d) = %v, %v", ns, addr, rows, err)
							return
						}
						if got := v.LookupToken([]byte(ns)); len(got) != i+1 {
							report("%s: token index has %d addrs, want %d", ns, len(got), i+1)
							return
						}
					}
				}(ns)
			}
			wg.Wait()
			close(fail)
			for err := range fail {
				t.Error(err)
			}
		})
	}
}
