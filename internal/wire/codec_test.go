package wire

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// roundTripRequest pushes a request through the binary codec and back.
func roundTripRequest(t *testing.T, req *request) *request {
	t.Helper()
	body := appendBinRequest(nil, req)
	got, err := decodeBinRequest(body)
	if err != nil {
		t.Fatalf("decodeBinRequest(op %d): %v", req.Op, err)
	}
	return got
}

// roundTripResponse pushes a response through the binary codec and back.
func roundTripResponse(t *testing.T, o op, resp *response, extra byte) (*response, bool) {
	t.Helper()
	body := appendBinResponse(nil, o, resp, extra)
	got, partial, err := decodeBinResponse(body)
	if err != nil {
		t.Fatalf("decodeBinResponse(op %d): %v", o, err)
	}
	return got, partial
}

// TestBinRequestRoundTrip: every binary-codec op's request survives the
// encode/decode cycle unchanged, including the nil-vs-empty token
// distinction the encrypted store's index depends on.
func TestBinRequestRoundTrip(t *testing.T) {
	tuple := relation.Tuple{ID: 42, Values: []relation.Value{relation.Int(-7), relation.Str("x")}}
	reqs := []*request{
		{Op: opPing, ID: 1},
		{Op: opEncLen, ID: 2, Store: "tenant"},
		{Op: opEncAttrColumn, ID: 3, Store: "a/b c"},
		{Op: opEncRows, ID: 4},
		{Op: opPlainSearch, ID: 5, Store: "s", Values: []relation.Value{relation.Int(9), relation.Str("q")}},
		{Op: opPlainSearchRange, ID: 6, Lo: relation.Int(-100), Hi: relation.Int(100)},
		{Op: opPlainInsert, ID: 7, Store: "s", AdminToken: []byte("tok"), Tuple: tuple},
		{Op: opEncAdd, ID: 8, TupleCT: []byte("ct"), AttrCT: []byte("a"), Token: []byte("t")},
		{Op: opEncAdd, ID: 9, TupleCT: []byte("ct"), AttrCT: nil, Token: nil},
		{Op: opEncAdd, ID: 10, AdminToken: []byte("owner"), TupleCT: []byte("ct"), AttrCT: []byte{}, Token: []byte{}},
		{Op: opEncAddBatch, ID: 11, AdminToken: []byte("owner"), Batch: []EncUpload{
			{TupleCT: []byte("r0"), AttrCT: []byte("a0"), Token: []byte("t0")},
			{TupleCT: []byte("r1"), AttrCT: nil, Token: nil},
		}},
		{Op: opEncFetch, ID: 12, Addrs: []int{0, 5, 1 << 20}},
		{Op: opEncFetchBatch, ID: 13, AddrBatches: [][]int{{1, 2}, nil, {3}}},
		{Op: opEncLookupToken, ID: 14, Store: "s", Token: []byte("needle")},
	}
	for _, req := range reqs {
		got := roundTripRequest(t, req)
		if !reflect.DeepEqual(got, req) {
			t.Errorf("op %d: round trip\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

// TestBinResponseRoundTrip: response payloads per op, error responses and
// the partial-chunk flag all survive the cycle.
func TestBinResponseRoundTrip(t *testing.T) {
	rows := []storage.EncRow{
		{Addr: 0, TupleCT: []byte("ct0"), AttrCT: []byte("a0"), Token: []byte("t0")},
		{Addr: 7, TupleCT: []byte("ct7"), AttrCT: nil, Token: nil},
	}
	cases := []struct {
		o    op
		resp *response
	}{
		{opPing, &response{ID: 1}},
		{opPlainInsert, &response{ID: 2}},
		{opPlainSearch, &response{ID: 3, Tuples: []relation.Tuple{
			{ID: 1, Values: []relation.Value{relation.Int(5)}},
			{ID: 2, Values: []relation.Value{relation.Str("s"), relation.Int(-1)}},
		}}},
		{opEncAdd, &response{ID: 4, Addr: 123}},
		{opEncAddBatch, &response{ID: 5, Addr: 99, N: 17}},
		{opEncLen, &response{ID: 6, N: 100000}},
		{opEncLookupToken, &response{ID: 7, Addrs: []int{3, 1, 4}}},
		{opEncFetch, &response{ID: 8, Rows: rows}},
		{opEncRows, &response{ID: 9, Rows: rows}},
		{opEncFetchBatch, &response{ID: 10, RowBatches: [][]storage.EncRow{rows, nil}}},
		{opEncLen, &response{ID: 11, Err: "wire: something logical"}},
	}
	for _, tc := range cases {
		got, partial := roundTripResponse(t, tc.o, tc.resp, 0)
		if partial {
			t.Errorf("op %d: unexpected partial flag", tc.o)
		}
		if !reflect.DeepEqual(got, tc.resp) {
			t.Errorf("op %d: round trip\n got %+v\nwant %+v", tc.o, got, tc.resp)
		}
	}

	// The partial flag survives independently of the payload.
	chunk := &response{ID: 20, Rows: rows}
	got, partial := roundTripResponse(t, opEncRows, chunk, respFlagPartial)
	if !partial {
		t.Error("partial flag lost in round trip")
	}
	if !reflect.DeepEqual(got, chunk) {
		t.Errorf("partial chunk round trip: got %+v", got)
	}
}

// TestBinDecodeRejectsCorruptInput: systematic truncation of valid frames
// plus targeted corruptions must return errors — never panic, never
// succeed on trailing garbage.
func TestBinDecodeRejectsCorruptInput(t *testing.T) {
	req := &request{Op: opEncAddBatch, ID: 9, Store: "tenant", AdminToken: []byte("o"), Batch: []EncUpload{
		{TupleCT: []byte("row"), AttrCT: []byte("attr"), Token: []byte("tok")},
	}}
	body := appendBinRequest(nil, req)
	for n := 0; n < len(body); n++ {
		if _, err := decodeBinRequest(body[:n]); err == nil {
			t.Errorf("truncated request (%d/%d bytes) decoded successfully", n, len(body))
		}
	}
	if _, err := decodeBinRequest(append(append([]byte{}, body...), 0xff)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("request with trailing byte: %v", err)
	}
	// A non-binary op in a binary frame is a protocol violation.
	if _, err := decodeBinRequest([]byte{byte(opHello), 1, 0}); err == nil {
		t.Error("binary frame carrying a gob-only op decoded successfully")
	}

	resp := &response{ID: 3, Rows: []storage.EncRow{{Addr: 1, TupleCT: []byte("ct")}}}
	rbody := appendBinResponse(nil, opEncFetch, resp, 0)
	for n := 0; n < len(rbody); n++ {
		if _, _, err := decodeBinResponse(rbody[:n]); err == nil {
			t.Errorf("truncated response (%d/%d bytes) decoded successfully", n, len(rbody))
		}
	}
	if _, _, err := decodeBinResponse(append(append([]byte{}, rbody...), 0)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("response with trailing byte: %v", err)
	}
	// An error flag with no message is not a valid frame.
	if _, _, err := decodeBinResponse([]byte{byte(opEncLen), 1, respFlagErr}); err == nil {
		t.Error("error response without a message decoded successfully")
	}
	// A lying collection count larger than the remaining bytes must be
	// rejected up front (it is what would otherwise force a huge
	// allocation).
	lie := []byte{byte(opEncFetch), 1, 0xff, 0xff, 0xff, 0xff, 0x7f}
	if _, err := decodeBinRequest(lie); err == nil {
		t.Error("request with lying addr count decoded successfully")
	}
}

// TestBinDecodedFieldsDoNotAliasInput: decoded byte fields must be copies
// — the frame body aliases a reused scratch buffer, and both the server's
// store and the client's technique retain what they are handed.
func TestBinDecodedFieldsDoNotAliasInput(t *testing.T) {
	req := &request{Op: opEncAdd, ID: 1, TupleCT: []byte("tuple"), AttrCT: []byte("attr"), Token: []byte("tok")}
	body := appendBinRequest(nil, req)
	got, err := decodeBinRequest(body)
	if err != nil {
		t.Fatal(err)
	}
	for i := range body {
		body[i] = 0xAA // simulate the scratch being reused for the next frame
	}
	if string(got.TupleCT) != "tuple" || string(got.AttrCT) != "attr" || string(got.Token) != "tok" {
		t.Fatalf("decoded fields alias the frame body: %q %q %q", got.TupleCT, got.AttrCT, got.Token)
	}
}
