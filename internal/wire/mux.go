package wire

import (
	"errors"
	"fmt"
	"strings"
)

// This file is the client-side multiplexing core: one writer goroutine
// frames requests in submission order, one reader goroutine demultiplexes
// responses by ID, and any number of callers block on their own in-flight
// entry. Transport failures tear the whole connection down (every waiter
// is released with the same sticky error); server-side logical errors are
// delivered only to the call that caused them.

// errClientClosed is the sticky error after an explicit Close.
var errClientClosed = errors.New("wire: client closed")

// start launches the writer and reader goroutines. Called once from
// NewClient.
func (c *Client) start() {
	go c.writeLoop()
	go c.readLoop()
}

// roundTrip is rawRoundTrip behind the version handshake: the first call
// on a connection performs the opHello exchange (concurrent callers wait
// on it), so no op ever reaches a server whose protocol generation does
// not match.
func (c *Client) roundTrip(req *request) (*response, error) {
	if err := c.ensureHello(); err != nil {
		return nil, err
	}
	return c.rawRoundTrip(req)
}

// ensureHello performs the version handshake exactly once. A mismatch —
// including a pre-namespace (v1) server that answers "unknown op" —
// poisons the client with an explicit version-mismatch error so every
// later call fails loudly rather than risking misrouted frames.
func (c *Client) ensureHello() error {
	c.helloOnce.Do(func() {
		resp, err := c.rawRoundTrip(&request{Op: opHello, Version: ProtocolVersion})
		switch {
		case err != nil && strings.Contains(err.Error(), "unknown op"):
			// A v1 server dispatched the hello and did not recognise it.
			c.helloErr = fmt.Errorf(
				"wire: protocol version mismatch: client speaks v%d but the server predates the handshake (v1, single implicit store): %w",
				ProtocolVersion, err)
			c.fail(c.helloErr)
		case err != nil:
			c.helloErr = err
		case resp.Version != ProtocolVersion:
			c.helloErr = fmt.Errorf(
				"wire: protocol version mismatch: client speaks v%d, server answered v%d",
				ProtocolVersion, resp.Version)
			c.fail(c.helloErr)
		}
	})
	return c.helloErr
}

// rawRoundTrip submits one request and blocks until its response arrives
// or the connection dies. Transport failures come back as the sticky
// error (the client is poisoned); a server-side logical error comes back
// as a plain error and leaves the connection healthy.
func (c *Client) rawRoundTrip(req *request) (*response, error) {
	ch := make(chan *response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.inflight[req.ID] = ch
	c.mu.Unlock()

	select {
	case c.sendq <- req:
	case <-c.dead:
		return nil, c.takeInflightErr(req.ID, ch)
	}

	select {
	case resp := <-ch:
		return respOrLogicalErr(resp)
	case <-c.dead:
		return nil, c.takeInflightErr(req.ID, ch)
	}
}

// respOrLogicalErr converts a server error string into a per-call error.
func respOrLogicalErr(resp *response) (*response, error) {
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return resp, nil
}

// takeInflightErr resolves the race between connection death and a
// response that was already demuxed to us: prefer the response, else
// deregister and report the sticky error.
func (c *Client) takeInflightErr(id uint64, ch chan *response) error {
	c.mu.Lock()
	delete(c.inflight, id)
	err := c.err
	c.mu.Unlock()
	select {
	case resp := <-ch:
		if _, lerr := respOrLogicalErr(resp); lerr != nil {
			return lerr
		}
		// A successful response raced the teardown; the caller still has
		// to treat the call as failed because we already returned the
		// error path — report the sticky cause.
		return err
	default:
	}
	return err
}

// writeLoop frames queued requests in submission order. It owns the gob
// encoder and the outgoing half of the connection; nothing else may touch
// them.
func (c *Client) writeLoop() {
	for {
		select {
		case req := <-c.sendq:
			if err := c.writeRequest(req); err != nil {
				c.fail(fmt.Errorf("wire: send: %w", err))
				return
			}
		case <-c.dead:
			return
		}
	}
}

// writeRequest frames one request. Before the handshake completes it is
// plain gob straight on the connection — the v2 wire image, so a
// generation-skewed server sees a well-formed hello, not unparseable
// frames. After it, every request rides a length-prefixed frame assembled
// in a pooled buffer: the binary codec for hot ops, a gob message for the
// rest.
func (c *Client) writeRequest(req *request) error {
	if !c.framed.Load() {
		return c.enc.Encode(req)
	}
	bp := getFrameBuf()
	var buf []byte
	if binaryOp(req.Op) {
		buf = appendBinRequest(beginFrame(*bp, tagBinReq), req)
	} else {
		buf = beginFrame(*bp, tagGob)
		c.gobOut.buf = &buf
		err := c.enc.Encode(req)
		c.gobOut.buf = nil
		if err != nil {
			*bp = buf
			putFrameBuf(bp)
			return err
		}
	}
	err := finishFrame(c.conn, buf)
	*bp = buf
	putFrameBuf(bp)
	return err
}

// readLoop decodes response frames and demultiplexes them by ID to the
// waiting caller. It owns the gob decoder, the frame scratch and the
// incoming half of the connection; nothing else may touch them.
func (c *Client) readLoop() {
	// partials accumulates chunked row responses by ID until their final
	// frame (respFlagPartial clear) arrives; chunks of one response are
	// ordered, frames of other responses may interleave between them.
	partials := make(map[uint64]*response)
	for {
		resp, err := c.readResponse(partials)
		if err != nil {
			c.fail(fmt.Errorf("wire: receive: %w", err))
			return
		}
		if resp == nil {
			continue // a partial chunk, absorbed into partials
		}
		c.mu.Lock()
		ch, ok := c.inflight[resp.ID]
		if ok {
			delete(c.inflight, resp.ID)
		}
		c.mu.Unlock()
		if !ok {
			// A response nobody asked for means the framing (or the
			// server) is broken; nothing decoded after this point can be
			// trusted.
			c.fail(fmt.Errorf("wire: receive: unknown response ID %d", resp.ID))
			return
		}
		ch <- resp
	}
}

// readResponse reads one message off the connection: plain gob before the
// handshake completes, one frame after. It returns (nil, nil) when the
// frame was a partial chunk that was absorbed into partials.
func (c *Client) readResponse(partials map[uint64]*response) (*response, error) {
	if !c.framed.Load() {
		resp := new(response)
		if err := c.dec.Decode(resp); err != nil {
			return nil, err
		}
		if resp.Err == "" && resp.Version == ProtocolVersion {
			// The v3 hello succeeded: everything after this message, in
			// both directions, is framed. The hello is the only op in
			// flight until ensureHello returns, so the writer cannot be
			// mid-encode while the sink is repointed.
			c.gobIn.direct = nil
			c.gobOut.direct = nil
			c.framed.Store(true)
		}
		return resp, nil
	}
	tag, body, err := readFrame(c.br, &c.readBuf)
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagGob:
		c.gobIn.buf = body
		resp := new(response)
		err := c.dec.Decode(resp)
		left := len(c.gobIn.buf)
		c.gobIn.buf = nil
		if err != nil {
			return nil, err
		}
		if left != 0 {
			return nil, fmt.Errorf("wire: %d trailing bytes after gob response frame", left)
		}
		return resp, nil
	case tagBinResp:
		resp, partial, err := decodeBinResponse(body)
		if err != nil {
			return nil, err
		}
		if prev, ok := partials[resp.ID]; ok {
			prev.Rows = append(prev.Rows, resp.Rows...)
			prev.Err = resp.Err
			resp = prev
		}
		if partial {
			partials[resp.ID] = resp
			return nil, nil
		}
		delete(partials, resp.ID)
		return resp, nil
	default:
		return nil, fmt.Errorf("wire: unknown frame tag 0x%02x", tag)
	}
}

// fail records the first transport error, closes the dead channel so
// every blocked caller is released, and tears down the connection so both
// loops exit.
func (c *Client) fail(err error) { _ = c.shutdown(err) }

// shutdown is fail with the underlying conn.Close result reported to the
// caller that actually performed the teardown (nil on repeat calls).
func (c *Client) shutdown(err error) error {
	c.mu.Lock()
	if c.err != nil {
		c.mu.Unlock()
		return nil
	}
	c.err = err
	close(c.dead)
	c.mu.Unlock()
	return c.conn.Close()
}

// stickyErr returns the raw sticky error, including an explicit Close
// (unlike Err, which reports a clean close as nil).
func (c *Client) stickyErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// healthy implements poolConn: a Client is routable until poisoned.
func (c *Client) healthy() bool { return c.stickyErr() == nil }
