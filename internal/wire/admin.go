package wire

import (
	"crypto/hmac"
	"crypto/sha256"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/storage"
)

// This file is the control plane: owner-authenticated namespace lifecycle
// ops. A namespace's owner token is derived from the owner's master key
// (OwnerToken), travels only inside requests, and is stored cloud-side as
// a hash — registered by the first tokened write to the namespace — so
// possession of the master key is what authorises dropping, compacting or
// inspecting an outsourced partition, exactly the trust model of the
// paper: the cloud is honest-but-curious, the owner alone holds keys.

// OwnerToken derives the control-plane token for a namespace from the
// owner's master key: PRF(K_admin, storeName) with K_admin an independent
// sub-key, so admin tokens can never be confused with search tokens or
// encryption keys, and each namespace gets its own token (a leaked token
// for one store does not endanger a sibling store under the same key).
func OwnerToken(masterKey []byte, store string) []byte {
	return crypto.PRF(crypto.DeriveKeys(masterKey).Admin, []byte(storeName(store)))
}

// hashToken is the at-rest form of an owner token: the cloud compares and
// persists hashes only, so neither a snapshot file nor the cloud's memory
// contains anything that grants admin rights.
func hashToken(tok []byte) []byte {
	h := sha256.Sum256(tok)
	return h[:]
}

// authorizeAdmin resolves the namespace of a per-namespace admin op and
// checks the presented owner token against the registered hash. It never
// creates the namespace: an admin op on an unknown store is an error, not
// a phantom store. Both refusal paths — no registered owner, and token
// mismatch — are explicit errors; the comparison is constant-time.
func (c *Cloud) authorizeAdmin(req *request) (*storage.Store, string, *response) {
	name := storeName(req.Store)
	st, ok := c.stores.Get(name)
	if !ok {
		return nil, name, &response{Err: fmt.Sprintf("wire: admin: unknown store %q", name)}
	}
	stored := st.OwnerHash()
	if stored == nil {
		return nil, name, &response{Err: fmt.Sprintf(
			"wire: admin: store %q has no registered owner token (the first write to a namespace must present one)", name)}
	}
	if len(req.AdminToken) == 0 || !hmac.Equal(stored, hashToken(req.AdminToken)) {
		return nil, name, &response{Err: fmt.Sprintf("wire: admin: store %q: owner token mismatch", name)}
	}
	return st, name, nil
}

// dispatchAdmin handles the four control-plane ops. It runs under the
// cloud-level read lock like every op, so admin mutations stay exclusive
// against snapshot Save/Restore; Drop and Compact additionally quiesce
// their own namespace through the per-store lock (see storage.StoreSet).
func (c *Cloud) dispatchAdmin(req *request) response {
	if req.Op == opAdminList {
		return response{Names: c.stores.Names()}
	}
	st, name, refuse := c.authorizeAdmin(req)
	if refuse != nil {
		return *refuse
	}
	switch req.Op {
	case opAdminStats:
		s := StoreStats{
			EncRows:  st.Enc().Len(),
			Ops:      c.opCounter(name).Load(),
			CondHits: c.condCounter(name).Load(),
			Workers:  c.StoreWorkersFor(name),
		}
		if ps := st.Plain(); ps != nil {
			s.PlainTuples = ps.Len()
		}
		return response{Stats: s}
	case opAdminDrop:
		c.stores.Drop(name)
		// The counters describe the destroyed state; a recreated namespace
		// starts fresh (and with a fresh owner claim).
		c.statsMu.Lock()
		delete(c.opCounts, name)
		delete(c.condCounts, name)
		c.statsMu.Unlock()
		return response{}
	case opAdminCompact:
		return response{N: st.Compact()}
	case opAdminSetWorkers:
		return response{N: c.SetStoreWorkersFor(name, req.Workers)}
	default:
		return response{Err: "wire: unknown admin op"}
	}
}

// --- client side ---------------------------------------------------------

// AdminList returns the namespaces hosted by the connected cloud, sorted.
// Discovery needs no token: names are operator-visible anyway.
func (c *Client) AdminList() ([]string, error) {
	resp, err := c.roundTrip(&request{Op: opAdminList})
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// AdminStats returns one namespace's accounting, authenticated by its
// owner token.
func (c *Client) AdminStats(store string, token []byte) (StoreStats, error) {
	resp, err := c.roundTrip(&request{Op: opAdminStats, Store: store, AdminToken: token})
	if err != nil {
		return StoreStats{}, err
	}
	return resp.Stats, nil
}

// AdminDrop destroys a namespace — clear-text partition, encrypted rows,
// token index, owner registration — authenticated by its owner token. The
// name is free for re-use (and re-claim) afterwards; any client-side view
// of the dropped store holds stale address arithmetic and must be
// discarded.
func (c *Client) AdminDrop(store string, token []byte) error {
	_, err := c.roundTrip(&request{Op: opAdminDrop, Store: store, AdminToken: token})
	return err
}

// AdminCompact rebuilds a namespace's encrypted store into exactly-sized
// allocations, authenticated by its owner token, and returns the retained
// row count. Addresses are preserved, so owner metadata stays valid.
func (c *Client) AdminCompact(store string, token []byte) (int, error) {
	resp, err := c.roundTrip(&request{Op: opAdminCompact, Store: store, AdminToken: token})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// AdminSetWorkers overrides one namespace's admission bound at runtime,
// authenticated by its owner token: n > 0 bounds the namespace to n
// concurrent ops, 0 lifts the bound for it, n < 0 clears the override back
// to the server-wide -store-workers default. It returns the effective cap.
func (c *Client) AdminSetWorkers(store string, token []byte, n int) (int, error) {
	resp, err := c.roundTrip(&request{Op: opAdminSetWorkers, Store: store, AdminToken: token, Workers: n})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}
