package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// The fuzz targets hold the codec to its safety contract on hostile
// input: malformed frames return errors — they never panic, and a lying
// length or count cannot force an allocation beyond a small multiple of
// the input's size. Plain `go test` runs the seed corpus below on every
// build; `make fuzz` (and CI's fuzz smoke) runs each target's mutation
// engine for a bounded time.

// seedRequests is a spread of valid request encodings whose mutations
// explore the decoder's field structure.
func seedRequests() [][]byte {
	reqs := []*request{
		{Op: opPing, ID: 1},
		{Op: opEncLen, ID: 2, Store: "tenant"},
		{Op: opPlainSearch, ID: 3, Values: []relation.Value{relation.Int(7), relation.Str("q")}},
		{Op: opPlainSearchRange, ID: 4, Lo: relation.Int(-5), Hi: relation.Int(5)},
		{Op: opPlainInsert, ID: 5, AdminToken: []byte("o"), Tuple: relation.Tuple{ID: 1, Values: []relation.Value{relation.Int(9)}}},
		{Op: opEncAdd, ID: 6, TupleCT: []byte("ct"), AttrCT: []byte("a"), Token: []byte("t")},
		{Op: opEncAddBatch, ID: 7, AdminToken: []byte("o"), Batch: []EncUpload{{TupleCT: []byte("r")}}},
		{Op: opEncFetch, ID: 8, Addrs: []int{0, 1, 2}},
		{Op: opEncFetchBatch, ID: 9, AddrBatches: [][]int{{1}, {2, 3}}},
		{Op: opEncLookupToken, ID: 10, Token: []byte("needle")},
	}
	out := make([][]byte, 0, len(reqs))
	for _, r := range reqs {
		out = append(out, appendBinRequest(nil, r))
	}
	return out
}

// seedResponses mirrors seedRequests for the response decoder.
func seedResponses() [][]byte {
	rows := []storage.EncRow{{Addr: 1, TupleCT: []byte("ct"), AttrCT: []byte("a"), Token: []byte("t")}}
	type rc struct {
		o    op
		resp *response
		x    byte
	}
	cases := []rc{
		{opPing, &response{ID: 1}, 0},
		{opPlainSearch, &response{ID: 2, Tuples: []relation.Tuple{{ID: 1, Values: []relation.Value{relation.Int(3)}}}}, 0},
		{opEncAdd, &response{ID: 3, Addr: 12}, 0},
		{opEncAddBatch, &response{ID: 4, Addr: 9, N: 2}, 0},
		{opEncLen, &response{ID: 5, N: 44}, 0},
		{opEncLookupToken, &response{ID: 6, Addrs: []int{1, 2}}, 0},
		{opEncFetch, &response{ID: 7, Rows: rows}, 0},
		{opEncRows, &response{ID: 8, Rows: rows}, respFlagPartial},
		{opEncLen, &response{ID: 9, Err: "wire: boom"}, 0},
	}
	out := make([][]byte, 0, len(cases))
	for _, c := range cases {
		out = append(out, appendBinResponse(nil, c.o, c.resp, c.x))
	}
	return out
}

// FuzzDecodeBinRequest: arbitrary bytes must decode to either a request
// or an error — no panics, no runaway allocation (the bounded-count
// checks are what this exercises under mutation).
func FuzzDecodeBinRequest(f *testing.F) {
	for _, seed := range seedRequests() {
		f.Add(seed)
		if len(seed) > 2 {
			f.Add(seed[:len(seed)/2]) // truncated
			flipped := append([]byte{}, seed...)
			flipped[len(flipped)/2] ^= 0x80 // bit-flipped
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add(binary.AppendUvarint([]byte{byte(opEncFetch), 1, 0}, 1<<40)) // lying count
	f.Fuzz(func(t *testing.T, body []byte) {
		req, err := decodeBinRequest(body)
		if err == nil && req == nil {
			t.Fatal("nil request with nil error")
		}
		if err == nil {
			// A frame that decodes must survive a re-encode/re-decode cycle
			// unchanged (byte equality is too strong: varints admit
			// non-minimal encodings the decoder tolerates).
			again, err := decodeBinRequest(appendBinRequest(nil, req))
			if err != nil {
				t.Fatalf("re-encoded request does not decode: %v", err)
			}
			if !reflect.DeepEqual(again, req) {
				t.Fatalf("unstable round trip:\n got %+v\nwant %+v", again, req)
			}
		}
	})
}

// FuzzDecodeBinResponse: the response decoder under the same contract.
func FuzzDecodeBinResponse(f *testing.F) {
	for _, seed := range seedResponses() {
		f.Add(seed)
		if len(seed) > 2 {
			f.Add(seed[:len(seed)-1])
			flipped := append([]byte{}, seed...)
			flipped[1] ^= 0xff
			f.Add(flipped)
		}
	}
	f.Add([]byte{byte(opEncLen), 1, respFlagErr}) // error flag, no message
	f.Fuzz(func(t *testing.T, body []byte) {
		resp, partial, err := decodeBinResponse(body)
		if err == nil && resp == nil {
			t.Fatal("nil response with nil error")
		}
		if err == nil {
			var extra byte
			if partial {
				extra = respFlagPartial
			}
			o := op(body[0])
			again, partial2, err := decodeBinResponse(appendBinResponse(nil, o, resp, extra))
			if err != nil {
				t.Fatalf("re-encoded response does not decode: %v", err)
			}
			if partial2 != partial || !reflect.DeepEqual(again, resp) {
				t.Fatalf("unstable round trip:\n got %+v (partial %v)\nwant %+v (partial %v)", again, partial2, resp, partial)
			}
		}
	})
}

// FuzzReadFrame: the frame reader must never panic and never allocate
// more than the bytes the peer actually delivered plus one growth step —
// a lying length prefix starves against io.ReadFull instead of
// ballooning memory.
func FuzzReadFrame(f *testing.F) {
	frame := func(tag byte, body []byte) []byte {
		var buf bytes.Buffer
		b := beginFrame(nil, tag)
		b = append(b, body...)
		if err := finishFrame(&buf, b); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(frame(tagBinReq, seedRequests()[0]))
	f.Add(frame(tagGob, []byte("not actually gob")))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x01}) // giant length, no body
	f.Add([]byte{0, 0, 0, 0})                   // length below the tag byte
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, stream []byte) {
		var scratch []byte
		r := bytes.NewReader(stream)
		for {
			_, body, err := readFrame(r, &scratch)
			if err != nil {
				return // every malformed stream must end in an error, not a panic
			}
			if len(body) > len(stream) {
				t.Fatalf("frame body of %d bytes from a %d-byte stream", len(body), len(stream))
			}
		}
	})
}
