package wire

import (
	"bytes"
	"crypto/hmac"
	"encoding/gob"
	"fmt"

	"repro/internal/storage"
)

// This file is the ring plane (protocol v5): the ops a qbring coordinator
// and its qbcloud nodes speak among themselves, riding the same framed
// protocol as everything else.
//
// Two trust domains meet here and stay separate. Tenants authenticate
// writes and admin ops with per-namespace owner tokens; the ring
// authenticates replica-state transfer (opStoreRestore, opRepairAppend)
// with one cluster-wide ring token shared by the nodes and the
// coordinator. The ring token grants no plaintext: everything it moves —
// snapshot blobs, tail rows — is the ciphertext-and-addresses image the
// honest-but-curious cloud already holds, so replication never widens the
// adversarial view, and a forged repair is detectable owner-side because
// tuple ciphertexts are AEAD-sealed under keys the ring never sees.

// SetRingDirectory installs the placement-directory provider a qbring
// coordinator serves through opRingDirectory. The callback receives the
// version the client already holds and returns the directory as an opaque
// blob (the wire layer never interprets it) plus its current version and
// whether the client's copy is stale. It must be set before Serve; the
// provider synchronises internally.
func (c *Cloud) SetRingDirectory(fn func(known uint64) (blob []byte, version uint64, changed bool)) {
	c.ringDir = fn
}

// SetRingRepair installs the targeted-repair handler a qbring coordinator
// serves through opRingRepair: one immediate anti-entropy round for the
// named namespace, bypassing the sweep's divergence grace window. It must
// be set before Serve; the handler synchronises internally. Like the
// divergence probe this op carries no secret — the caller can only ask
// the coordinator to do sooner what its sweep would do anyway, and the
// actual replica transfer the repair performs is still ring-token-guarded
// on the nodes.
func (c *Cloud) SetRingRepair(fn func(store string) error) {
	c.ringRepair = fn
}

// SetRingToken configures the cluster's ring token, enabling the
// ring-guarded repair ops on this server. Like owner tokens, only the
// hash is retained. It must be called before Serve; servers without a
// ring token refuse opStoreRestore/opRepairAppend outright, so a
// single-node qbcloud exposes no repair surface at all.
func (c *Cloud) SetRingToken(tok []byte) {
	if len(tok) == 0 {
		c.ringTokenHash = nil
		return
	}
	c.ringTokenHash = hashToken(tok)
}

// authorizeRing checks a ring-guarded op's token. Both refusals are
// explicit; the comparison is constant-time like the owner-token paths.
func (c *Cloud) authorizeRing(req *request) *response {
	if c.ringTokenHash == nil {
		return &response{Err: "wire: ring: repair ops disabled on this server (no ring token configured)"}
	}
	if len(req.RingToken) == 0 || !hmac.Equal(c.ringTokenHash, hashToken(req.RingToken)) {
		return &response{Err: "wire: ring: ring token mismatch"}
	}
	return nil
}

// dispatchRingDirectory serves the placement directory (coordinator only).
func (c *Cloud) dispatchRingDirectory(req *request) response {
	if c.ringDir == nil {
		return response{Err: "wire: ring: this server does not serve a placement directory (not a qbring coordinator)"}
	}
	blob, version, changed := c.ringDir(req.CondN)
	if !changed {
		return response{VerN: version, Delta: true}
	}
	return response{Blob: blob, VerN: version}
}

// dispatchRingRepair runs a targeted anti-entropy round (coordinator only).
func (c *Cloud) dispatchRingRepair(req *request) response {
	if c.ringRepair == nil {
		return response{Err: "wire: ring: this server does not run anti-entropy (not a qbring coordinator)"}
	}
	if err := c.ringRepair(storeName(req.Store)); err != nil {
		return response{Err: err.Error()}
	}
	return response{}
}

// dispatchRing handles the per-namespace ring ops. Like the admin plane it
// resolves namespaces without creating them — a probe must not materialise
// a phantom replica — and runs under the cloud-level read lock, so replica
// transfer stays exclusive against full snapshot Save/Restore.
func (c *Cloud) dispatchRing(req *request) response {
	name := storeName(req.Store)
	switch req.Op {
	case opStoreInfo:
		info := StoreInfo{PlainTuples: -1}
		if st, ok := c.stores.Get(name); ok {
			info.Exists = true
			v, _ := st.Enc().EncVersion()
			info.VerEpoch, info.VerN = v.Epoch, v.N
			info.EncRows = st.Enc().Len()
			info.Claimed = st.OwnerHash() != nil
			if ps := st.Plain(); ps != nil {
				info.PlainTuples = ps.Len()
			}
		}
		return response{Info: info}

	case opStoreSnapshot:
		st, ok := c.stores.Get(name)
		if !ok {
			return response{Err: fmt.Sprintf("wire: ring: unknown store %q", name)}
		}
		blob, err := encodeStoreSnapshot(c, name, st)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{Blob: blob, N: len(blob)}

	case opStoreRestore:
		if refuse := c.authorizeRing(req); refuse != nil {
			return *refuse
		}
		n, err := c.restoreStore(name, req.Blob)
		if err != nil {
			return response{Err: err.Error()}
		}
		return response{N: n}

	case opRepairAppend:
		if refuse := c.authorizeRing(req); refuse != nil {
			return *refuse
		}
		st, ok := c.stores.Get(name)
		if !ok {
			return response{Err: fmt.Sprintf("wire: ring: repair append into unknown store %q (full restore required)", name)}
		}
		rows := make([]storage.EncRow, len(req.Batch))
		for i, u := range req.Batch {
			if len(u.TupleCT) == 0 {
				return response{Err: fmt.Sprintf("wire: ring: repair append: row %d has empty tuple ciphertext", i)}
			}
			rows[i] = storage.EncRow{TupleCT: u.TupleCT, AttrCT: u.AttrCT, Token: u.Token}
		}
		n, err := st.Enc().AppendIfLen(rows, req.Have)
		if err != nil {
			return response{N: n, Err: err.Error()}
		}
		return response{N: n}

	default:
		return response{Err: "wire: unknown ring op"}
	}
}

// encodeStoreSnapshot serialises one namespace in the storeSnapshot gob
// layout — the same migration unit snapshot files use, so a replica
// restore and a state-file restore share one code path. It runs under the
// shared cloud lock (unlike full Save's exclusive lock), so it reads both
// partitions through their concurrency-safe snapshots.
func encodeStoreSnapshot(c *Cloud, name string, st *storage.Store) ([]byte, error) {
	v, _ := st.Enc().EncVersion()
	ss := storeSnapshot{Name: name, Enc: st.Enc().Rows(), OwnerHash: st.OwnerHash(), EncVersionN: v.N}
	if ps := st.Plain(); ps != nil {
		ss.HasPlain = true
		ss.Schema, ss.Tuples = ps.SnapshotTuples()
		ss.Attr = ps.Attr()
	}
	if w, ok := c.workerOverridesCopy()[name]; ok {
		ss.HasWorkerCap, ss.WorkerCap = true, w
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(ss); err != nil {
		return nil, fmt.Errorf("wire: ring: snapshot encode: %w", err)
	}
	return buf.Bytes(), nil
}

// restoreStore installs a storeSnapshot blob as the namespace's new state,
// returning the encrypted row count. The store is materialised fully
// before the registry swap (a bad blob leaves the replica untouched), the
// displaced store is quiesced like a drop, and — as with file restore —
// the rebuilt store draws a fresh epoch with only the version-counter
// floor carried over, so every owner-side cache revalidates.
func (c *Cloud) restoreStore(name string, blob []byte) (int, error) {
	var ss storeSnapshot
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&ss); err != nil {
		return 0, fmt.Errorf("wire: ring: snapshot decode: %w", err)
	}
	st, err := materialiseStore(ss)
	if err != nil {
		return 0, fmt.Errorf("wire: ring: restore store %q: %w", name, err)
	}
	c.stores.Replace(name, st)
	if ss.HasWorkerCap {
		c.SetStoreWorkersFor(name, ss.WorkerCap)
	}
	return st.Enc().Len(), nil
}

// --- client side ---------------------------------------------------------

// RingDirectory fetches the coordinator's placement directory. known is
// the version the caller already holds (0 for none); when the directory
// has not moved past it the server answers with a tiny not-modified frame
// and blob is nil with changed=false.
func (c *Client) RingDirectory(known uint64) (blob []byte, version uint64, changed bool, err error) {
	resp, err := c.roundTrip(&request{Op: opRingDirectory, CondN: known})
	if err != nil {
		return nil, 0, false, err
	}
	if resp.Delta {
		return nil, resp.VerN, false, nil
	}
	return resp.Blob, resp.VerN, true, nil
}

// RingRepair asks a qbring coordinator to run one targeted anti-entropy
// round for the namespace right now. It returns once the round has been
// attempted; whether any replica actually needed (or accepted) a transfer
// is visible only through the subsequent divergence probes, exactly as
// with the background sweep.
func (c *Client) RingRepair(store string) error {
	_, err := c.roundTrip(&request{Op: opRingRepair, Store: store})
	return err
}

// StoreInfo probes one namespace's replica state on the connected node.
func (c *Client) StoreInfo(store string) (StoreInfo, error) {
	resp, err := c.roundTrip(&request{Op: opStoreInfo, Store: store})
	if err != nil {
		return StoreInfo{}, err
	}
	return resp.Info, nil
}

// StoreSnapshot exports one namespace as a self-contained snapshot blob —
// the unit a lagging or fresh replica is rebuilt from.
func (c *Client) StoreSnapshot(store string) ([]byte, error) {
	resp, err := c.roundTrip(&request{Op: opStoreSnapshot, Store: store})
	if err != nil {
		return nil, err
	}
	return resp.Blob, nil
}

// StoreRestore installs a snapshot blob as the namespace's new state on
// the connected node, authenticated by the ring token. It returns the
// restored encrypted row count.
func (c *Client) StoreRestore(store string, blob, ringToken []byte) (int, error) {
	resp, err := c.roundTrip(&request{Op: opStoreRestore, Store: store, Blob: blob, RingToken: ringToken})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// RepairAppend appends a tail of encrypted rows to the namespace on the
// connected node iff the replica still holds exactly expectedLen rows
// (the anti-entropy CAS; see storage.EncryptedStore.AppendIfLen),
// authenticated by the ring token. It returns the replica's row count
// after the call — on a CAS miss the error is set and the count tells the
// repairer where the replica actually stands.
func (c *Client) RepairAppend(store string, rows []storage.EncRow, expectedLen int, ringToken []byte) (int, error) {
	batch := make([]EncUpload, len(rows))
	for i, r := range rows {
		batch[i] = EncUpload{TupleCT: r.TupleCT, AttrCT: r.AttrCT, Token: r.Token}
	}
	resp, err := c.roundTrip(&request{Op: opRepairAppend, Store: store, Batch: batch, Have: expectedLen, RingToken: ringToken})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}
