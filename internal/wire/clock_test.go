package wire

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable Clock for backoff tests: it records every
// After duration and either fires the returned channel immediately
// (autoFire) or leaves it pending so a test can observe the cycle parked
// in backoff. Safe for concurrent use — the reconnect cycle sleeps on a
// different goroutine than the test.
type fakeClock struct {
	mu       sync.Mutex
	now      time.Time
	delays   []time.Duration
	autoFire bool
	asleep   chan time.Duration // one send per After call
}

func newFakeClock(autoFire bool) *fakeClock {
	return &fakeClock{
		now:      time.Unix(0, 0),
		autoFire: autoFire,
		asleep:   make(chan time.Duration, 1024),
	}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.now = f.now.Add(d)
	ch := make(chan time.Time, 1)
	if f.autoFire {
		ch <- f.now
	}
	f.mu.Unlock()
	select {
	case f.asleep <- d:
	default:
	}
	return ch
}

func (f *fakeClock) Delays() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.delays...)
}

// TestReconnectBackoffSchedule pins the backoff shape — BaseDelay doubling
// to the MaxDelay cap, one sleep before every attempt after the first —
// without sleeping any wall time at all.
func TestReconnectBackoffSchedule(t *testing.T) {
	fc := newFakeClock(true)
	rc := NewReconnector(
		func() (*Client, error) { return nil, errors.New("dial refused") },
		ReconnectOptions{
			MaxRetries: 6,
			BaseDelay:  10 * time.Millisecond,
			MaxDelay:   40 * time.Millisecond,
			Clock:      fc,
		})
	defer rc.Close()

	if err := rc.Ping(); err == nil || !strings.Contains(err.Error(), "gave up after 6 attempts") {
		t.Fatalf("Ping against refusing dial: %v", err)
	}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond,
	}
	got := fc.Delays()
	if len(got) != len(want) {
		t.Fatalf("backoff slept %d times (%v), want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("backoff sleep %d = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

// TestReconnectBackoffCloseAborts parks the reconnect cycle on a fake
// After channel that never fires and proves Close unblocks it — the
// deterministic replacement for sleeping real wall time to "probably" be
// inside the backoff select.
func TestReconnectBackoffCloseAborts(t *testing.T) {
	fc := newFakeClock(false)
	rc := NewReconnector(
		func() (*Client, error) { return nil, errors.New("dial refused") },
		ReconnectOptions{MaxRetries: 1000, BaseDelay: time.Hour, MaxDelay: time.Hour, Clock: fc})
	done := make(chan error, 1)
	go func() { done <- rc.Ping() }()

	select {
	case <-fc.asleep: // the cycle is provably parked in its backoff select
	case <-time.After(5 * time.Second):
		t.Fatal("reconnect cycle never reached its backoff sleep")
	}
	rc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, errReconnClosed) {
			t.Fatalf("Ping after Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the reconnect cycle")
	}
}
