package wire

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is an injectable Clock for backoff tests: it records every
// After duration and either fires the returned channel immediately
// (autoFire) or leaves it pending so a test can observe the cycle parked
// in backoff. Safe for concurrent use — the reconnect cycle sleeps on a
// different goroutine than the test.
type fakeClock struct {
	mu       sync.Mutex
	now      time.Time
	delays   []time.Duration
	autoFire bool
	asleep   chan time.Duration // one send per After call
}

func newFakeClock(autoFire bool) *fakeClock {
	return &fakeClock{
		now:      time.Unix(0, 0),
		autoFire: autoFire,
		asleep:   make(chan time.Duration, 1024),
	}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	f.delays = append(f.delays, d)
	f.now = f.now.Add(d)
	ch := make(chan time.Time, 1)
	if f.autoFire {
		ch <- f.now
	}
	f.mu.Unlock()
	select {
	case f.asleep <- d:
	default:
	}
	return ch
}

func (f *fakeClock) Delays() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.delays...)
}

// TestReconnectBackoffSchedule pins the backoff shape — BaseDelay doubling
// to the MaxDelay cap, one sleep before every attempt after the first,
// each sleep jittered into [nominal/2, nominal] — without sleeping any
// wall time at all. The jitter generator is seeded from the injected
// clock, so the schedule is deterministic per fake-clock state; the test
// asserts the envelope rather than pinning the draws, plus that the draws
// are not all sitting on the nominal schedule (i.e. jitter is real).
func TestReconnectBackoffSchedule(t *testing.T) {
	fc := newFakeClock(true)
	rc := NewReconnector(
		func() (*Client, error) { return nil, errors.New("dial refused") },
		ReconnectOptions{
			MaxRetries: 6,
			BaseDelay:  10 * time.Millisecond,
			MaxDelay:   40 * time.Millisecond,
			Clock:      fc,
		})
	defer rc.Close()

	if err := rc.Ping(); err == nil || !strings.Contains(err.Error(), "gave up after 6 attempts") {
		t.Fatalf("Ping against refusing dial: %v", err)
	}
	nominal := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond,
		40 * time.Millisecond,
	}
	got := fc.Delays()
	if len(got) != len(nominal) {
		t.Fatalf("backoff slept %d times (%v), want %d", len(got), got, len(nominal))
	}
	jittered := false
	for i := range nominal {
		if got[i] < nominal[i]/2 || got[i] > nominal[i] {
			t.Fatalf("backoff sleep %d = %v outside jitter bounds [%v, %v] (all: %v)",
				i, got[i], nominal[i]/2, nominal[i], got)
		}
		if got[i] != nominal[i] {
			jittered = true
		}
	}
	if !jittered {
		t.Fatalf("every backoff sleep landed exactly on the nominal schedule %v — jitter is not being applied", got)
	}
}

// TestReconnectBackoffJitterSpread runs two reconnect cycles whose fake
// clocks start at different instants and checks their schedules diverge —
// the thundering-herd property: clients that crash at different times do
// not redial in lockstep.
func TestReconnectBackoffJitterSpread(t *testing.T) {
	schedule := func(startNano int64) []time.Duration {
		fc := newFakeClock(true)
		fc.now = time.Unix(0, startNano)
		rc := NewReconnector(
			func() (*Client, error) { return nil, errors.New("dial refused") },
			ReconnectOptions{MaxRetries: 8, BaseDelay: 16 * time.Millisecond, MaxDelay: time.Second, Clock: fc})
		defer rc.Close()
		if err := rc.Ping(); err == nil {
			t.Fatal("Ping against refusing dial succeeded")
		}
		return fc.Delays()
	}
	a, b := schedule(1), schedule(2)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("schedules have different shapes: %v vs %v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			return // diverged: different seeds produce different draws
		}
	}
	t.Fatalf("two clients seeded differently produced identical backoff schedules %v", a)
}

// TestReconnectBackoffCloseAborts parks the reconnect cycle on a fake
// After channel that never fires and proves Close unblocks it — the
// deterministic replacement for sleeping real wall time to "probably" be
// inside the backoff select.
func TestReconnectBackoffCloseAborts(t *testing.T) {
	fc := newFakeClock(false)
	rc := NewReconnector(
		func() (*Client, error) { return nil, errors.New("dial refused") },
		ReconnectOptions{MaxRetries: 1000, BaseDelay: time.Hour, MaxDelay: time.Hour, Clock: fc})
	done := make(chan error, 1)
	go func() { done <- rc.Ping() }()

	select {
	case <-fc.asleep: // the cycle is provably parked in its backoff select
	case <-time.After(5 * time.Second):
		t.Fatal("reconnect cycle never reached its backoff sleep")
	}
	rc.Close()
	select {
	case err := <-done:
		if !errors.Is(err, errReconnClosed) {
			t.Fatalf("Ping after Close = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the reconnect cycle")
	}
}
