package wire

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Client is the owner-side connection to a remote cloud. One connection
// serves any number of namespaces: WithStore returns a per-namespace view
// implementing cloud.PlainBackend for the clear-text partition and
// technique.BatchEncStore for the encrypted partition, so the standard
// owner and techniques work over the network unchanged. For the common
// single-relation case the Client itself implements the same surface,
// delegating to its DefaultStore view.
//
// The connection is multiplexed: every request carries an ID, a writer
// goroutine frames requests in submission order, and a reader goroutine
// routes each response back to its caller, so any number of calls can be
// in flight at once without head-of-line blocking. The batch query engine
// therefore gains real cloud-side parallelism through a remote backend;
// DialPool adds connection-level parallelism on top for CPU-bound
// encrypted scans.
//
// The first round trip performs the protocol handshake (opHello): a
// server that cannot echo ProtocolVersion poisons the client with an
// explicit version-mismatch error, so generation skew fails at the first
// call instead of corrupting frames.
//
// Error semantics: only transport failures are sticky. The first one
// poisons the client — every in-flight and subsequent call fails with the
// same cause, exposed by Err(). Server-side logical errors (e.g. a Search
// before any Load) are per-call: methods with an error return surface
// them directly, and interface methods without one (Search, Len, ...)
// return zero values and record the error for LogicalErr(). Callers doing
// anything important should check Err() and LogicalErr() after a batch of
// operations.
//
// Client is safe for concurrent use.
type Client struct {
	conn net.Conn
	br   *bufio.Reader // readLoop's buffered view of conn

	// Persistent gob codecs: wired directly to the transport during the
	// handshake (the v2 wire image), then fed one frame body at a time
	// once framed. The source implements io.ByteReader, so gob consumes
	// exactly one self-delimited message per Decode and its stream state
	// survives inside discrete frames.
	gobIn  *gobSource
	gobOut *gobSink
	enc    *gob.Encoder // owned by writeLoop
	dec    *gob.Decoder // owned by readLoop

	// framed flips after a successful v3 hello: set by readLoop before
	// the hello response is delivered (the hello is the only op in
	// flight until ensureHello returns, so no send can race the switch),
	// read by writeLoop before framing each request.
	framed atomic.Bool

	// readBuf is readLoop's frame scratch, grown to the largest frame
	// seen and reused; decoded frames are arena-copied out of it.
	readBuf []byte

	// sendq feeds the writer goroutine; dead is closed on the first
	// transport failure so blocked callers are released.
	sendq chan *request
	dead  chan struct{}

	mu       sync.Mutex
	err      error  // sticky transport error
	logical  error  // last per-op error from a void method
	logicalN uint64 // times logical was recorded (monotonic)
	nextID   uint64
	inflight map[uint64]chan *response

	// helloOnce runs the version handshake before the first real op;
	// helloErr is its sticky outcome.
	helloOnce sync.Once
	helloErr  error

	// storeMu guards the per-namespace view registry; def is the
	// DefaultStore view the Client's own methods delegate to.
	storeMu sync.Mutex
	stores  map[string]*StoreClient
	def     *StoreClient
}

// Dial connects to a remote cloud at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. net.Pipe in tests) and
// starts its writer and reader goroutines.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		br:       bufio.NewReader(conn),
		sendq:    make(chan *request),
		dead:     make(chan struct{}),
		inflight: make(map[uint64]chan *response),
		stores:   make(map[string]*StoreClient),
	}
	c.gobIn = &gobSource{direct: c.br}
	c.gobOut = &gobSink{direct: conn}
	c.enc = gob.NewEncoder(c.gobOut)
	c.dec = gob.NewDecoder(c.gobIn)
	c.def = c.WithStore(DefaultStore)
	c.start()
	return c
}

// WithStore returns the view of the named server-side namespace ("" means
// DefaultStore). Views share the connection, its multiplexing and its
// error state, but each has its own upload buffer and address arithmetic,
// so differently keyed relations can ride one transport without
// interleaving. The same name always yields the same view.
func (c *Client) WithStore(name string) *StoreClient {
	name = storeName(name)
	c.storeMu.Lock()
	defer c.storeMu.Unlock()
	if s, ok := c.stores[name]; ok {
		return s
	}
	s := &StoreClient{c: c, store: name}
	c.stores[name] = s
	return s
}

// Store implements Transport: the Backend view of one namespace.
func (c *Client) Store(name string) Backend { return c.WithStore(name) }

// Close closes the connection and releases every in-flight call: they
// and all later calls fail with a client-closed error. An explicit Close
// is a clean shutdown, not a transport failure, so it does not surface
// through Err.
func (c *Client) Close() error {
	return c.shutdown(errClientClosed)
}

// Err returns the sticky transport error, if any. Logical (server-side)
// errors never poison the client (see LogicalErr), and an explicit Close
// is not a failure.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == errClientClosed {
		return nil
	}
	return c.err
}

// LogicalErr returns the most recent error reported by an interface
// method that cannot return one (Search, Len, ...): usually a server-side
// logical error, but also transport failures and use-after-close those
// methods swallowed into zero values. A logical error never poisons the
// connection, so this is a per-op record: later successful calls do not
// clear it, later failing calls overwrite it. The record is shared by
// every store view on the connection.
func (c *Client) LogicalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logical
}

// LogicalErrCount reports how many times a void interface method has
// recorded an error. Callers bracketing a batch of operations (e.g. one
// query) snapshot it before and compare after: a changed count means some
// op in the window failed silently — without the races of a shared
// take-and-clear slot under concurrent batches.
func (c *Client) LogicalErrCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logicalN
}

// noteLogical records a per-op error from a void interface method.
// Transport failures and use-after-close are recorded too — they are
// what the method's zero-value return just swallowed — so windows
// bracketed by LogicalErrCount observe them even when Err() alone would
// not surface them (clean close, or a pool whose other connections are
// healthy).
func (c *Client) noteLogical(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logical = err
	c.logicalN++
}

// Ping checks liveness (and, on first use, performs the handshake).
func (c *Client) Ping() error {
	_, err := c.roundTrip(&request{Op: opPing})
	return err
}

// --- DefaultStore delegation -------------------------------------------
//
// The Client keeps the full Backend surface for the one-relation case;
// every method is the DefaultStore view's.

// SetAdminToken attaches the default store's owner token.
func (c *Client) SetAdminToken(tok []byte) { c.def.SetAdminToken(tok) }

// Load implements cloud.PlainBackend on the default store.
func (c *Client) Load(rns *relation.Relation, attr string) error { return c.def.Load(rns, attr) }

// Search implements cloud.PlainBackend on the default store.
func (c *Client) Search(values []relation.Value) []relation.Tuple { return c.def.Search(values) }

// SearchRange implements cloud.PlainBackend on the default store.
func (c *Client) SearchRange(lo, hi relation.Value) []relation.Tuple {
	return c.def.SearchRange(lo, hi)
}

// Insert implements cloud.PlainBackend on the default store.
func (c *Client) Insert(t relation.Tuple) error { return c.def.Insert(t) }

// Add implements technique.EncStore on the default store.
func (c *Client) Add(tupleCT, attrCT, token []byte) int { return c.def.Add(tupleCT, attrCT, token) }

// Flush uploads the default store's pending encrypted rows.
func (c *Client) Flush() error { return c.def.Flush() }

// Len implements technique.EncStore on the default store.
func (c *Client) Len() int { return c.def.Len() }

// AttrColumn implements technique.EncStore on the default store.
func (c *Client) AttrColumn() []storage.EncRow { return c.def.AttrColumn() }

// Fetch implements technique.EncStore on the default store.
func (c *Client) Fetch(addrs []int) ([]storage.EncRow, error) { return c.def.Fetch(addrs) }

// FetchBatch implements technique.BatchEncStore on the default store.
func (c *Client) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	return c.def.FetchBatch(addrBatches)
}

// LookupToken implements technique.EncStore on the default store.
func (c *Client) LookupToken(tok []byte) []int { return c.def.LookupToken(tok) }

// Rows implements technique.EncStore on the default store.
func (c *Client) Rows() []storage.EncRow { return c.def.Rows() }

// EncVersion implements technique.VersionedEncStore on the default store.
func (c *Client) EncVersion() (storage.EncVersion, error) { return c.def.EncVersion() }

// AttrColumnSince implements technique.VersionedEncStore on the default store.
func (c *Client) AttrColumnSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	return c.def.AttrColumnSince(v, have)
}

// RowsSince implements technique.VersionedEncStore on the default store.
func (c *Client) RowsSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	return c.def.RowsSince(v, have)
}

// --- StoreClient --------------------------------------------------------

// StoreClient is one namespace's view of a shared connection. It
// implements the full Backend surface — cloud.PlainBackend plus
// technique.BatchEncStore — scoped to its store: every request it frames
// carries the store name, and it owns the namespace's upload buffer and
// client-side address arithmetic. Transport state (multiplexing, sticky
// errors, the logical-error record) is shared with the connection.
//
// StoreClient is safe for concurrent use.
type StoreClient struct {
	c     *Client
	store string

	// adminMu guards adminToken: the namespace's control-plane owner
	// token, attached to write requests so the first write claims the
	// namespace (see SetAdminToken).
	adminMu    sync.Mutex
	adminToken []byte

	// bufMu guards the encrypted-upload buffer. It is held across the
	// flush round trip so the buffer and serverLen stay consistent with
	// the server.
	bufMu   sync.Mutex
	pending []EncUpload
	// serverLen tracks the server-side row count of this namespace after
	// the last acknowledged flush, so Add can assign addresses without a
	// round trip. It is synced from the server on first use (lenSynced),
	// so a fresh client attaching to an already-populated store does not
	// hand out addresses that collide with existing rows.
	serverLen int
	lenSynced bool

	// plainMu guards the clear-text partition's length mirror, held
	// across the insert round trip so concurrent Inserts CAS against
	// consecutive lengths instead of racing each other. Lock order:
	// plainMu before bufMu (Insert holds plainMu while call() flushes).
	plainMu     sync.Mutex
	plainLen    int
	plainSynced bool
}

// StoreName returns the namespace this view addresses.
func (s *StoreClient) StoreName() string { return s.store }

// SetAdminToken attaches the namespace's owner token (see OwnerToken) to
// this view: every write request carries it, so the first write registers
// the caller as the namespace's owner and the matching admin ops (stats,
// drop, compact) become available to whoever holds the master key. A nil
// token leaves the namespace unclaimed — and its admin ops permanently
// refused until a tokened writer claims it.
func (s *StoreClient) SetAdminToken(tok []byte) {
	s.adminMu.Lock()
	s.adminToken = cloneBytes(tok)
	s.adminMu.Unlock()
}

// ownerToken returns the view's owner token (nil when unset).
func (s *StoreClient) ownerToken() []byte {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	return s.adminToken
}

// call flushes buffered uploads and performs one round trip, stamping the
// request with the view's namespace.
func (s *StoreClient) call(req *request) (*response, error) {
	if err := s.Flush(); err != nil {
		return nil, err
	}
	req.Store = s.store
	return s.c.roundTrip(req)
}

// Ping checks liveness of the shared connection.
func (s *StoreClient) Ping() error { return s.c.Ping() }

// Err returns the shared connection's sticky transport error.
func (s *StoreClient) Err() error { return s.c.Err() }

// LogicalErr returns the shared connection's per-op error record.
func (s *StoreClient) LogicalErr() error { return s.c.LogicalErr() }

// LogicalErrCount returns the shared connection's per-op error count.
func (s *StoreClient) LogicalErrCount() uint64 { return s.c.LogicalErrCount() }

// Close closes the SHARED connection: every view on it dies with it. A
// caller owning several views (e.g. a vertical client's two namespaces)
// should close once, through whichever handle it keeps.
func (s *StoreClient) Close() error { return s.c.Close() }

// --- cloud.PlainBackend -----------------------------------------------

// Load implements cloud.PlainBackend: ships the non-sensitive relation to
// the view's namespace in clear-text.
func (s *StoreClient) Load(rns *relation.Relation, attr string) error {
	resp, err := s.call(&request{
		Op:         opPlainLoad,
		Schema:     rns.Schema,
		Tuples:     rns.Tuples,
		Attr:       attr,
		AdminToken: s.ownerToken(),
	})
	if err != nil {
		return err
	}
	s.plainMu.Lock()
	s.plainLen = resp.N
	s.plainSynced = true
	s.plainMu.Unlock()
	return nil
}

// searchErr is Search with the error surfaced (retrying wrappers need it;
// the interface method swallows it into noteLogical).
func (s *StoreClient) searchErr(values []relation.Value) ([]relation.Tuple, error) {
	resp, err := s.call(&request{Op: opPlainSearch, Values: values})
	if err != nil {
		return nil, err
	}
	return resp.Tuples, nil
}

// Search implements cloud.PlainBackend.
func (s *StoreClient) Search(values []relation.Value) []relation.Tuple {
	ts, err := s.searchErr(values)
	if err != nil {
		s.c.noteLogical(err)
		return nil
	}
	return ts
}

// searchRangeErr is SearchRange with the error surfaced.
func (s *StoreClient) searchRangeErr(lo, hi relation.Value) ([]relation.Tuple, error) {
	resp, err := s.call(&request{Op: opPlainSearchRange, Lo: lo, Hi: hi})
	if err != nil {
		return nil, err
	}
	return resp.Tuples, nil
}

// SearchRange implements cloud.PlainBackend.
func (s *StoreClient) SearchRange(lo, hi relation.Value) []relation.Tuple {
	ts, err := s.searchRangeErr(lo, hi)
	if err != nil {
		s.c.noteLogical(err)
		return nil
	}
	return ts
}

// Insert implements cloud.PlainBackend. Inserts are conditional on the
// relation's tuple count (protocol v6): the view mirrors the count —
// seeded by Load, lazily probed via opStoreInfo otherwise, advanced per
// acknowledged insert — and the server applies the insert only if it
// still matches, so an insert racing an anti-entropy restore of the same
// replica cannot land twice. A stale-write refusal (IsStaleWrite) drops
// the mirror; the next insert re-probes before writing.
func (s *StoreClient) Insert(t relation.Tuple) error {
	s.plainMu.Lock()
	defer s.plainMu.Unlock()
	if !s.plainSynced {
		resp, err := s.call(&request{Op: opStoreInfo})
		if err != nil {
			return err
		}
		if resp.Info.PlainTuples < 0 {
			return fmt.Errorf("wire: insert: no relation loaded in store %q", storeName(s.store))
		}
		s.plainLen = resp.Info.PlainTuples
		s.plainSynced = true
	}
	_, err := s.call(&request{Op: opPlainInsert, Tuple: t, AdminToken: s.ownerToken(), Have: s.plainLen})
	if err != nil {
		if s.c.stickyErr() == nil && IsStaleWrite(err) {
			s.plainSynced = false
		}
		return err
	}
	s.plainLen++
	return nil
}

// --- technique.EncStore -------------------------------------------------

// Add implements technique.EncStore. Uploads are buffered; they are
// flushed automatically before any read operation, or explicitly with
// Flush. The returned address is computed client-side (the server assigns
// addresses sequentially in upload order, per namespace).
func (s *StoreClient) Add(tupleCT, attrCT, token []byte) int {
	s.bufMu.Lock()
	defer s.bufMu.Unlock()
	if s.c.stickyErr() != nil {
		return -1
	}
	if !s.lenSynced {
		resp, err := s.c.roundTrip(&request{Op: opEncLen, Store: s.store})
		if err != nil {
			s.c.noteLogical(err)
			return -1
		}
		s.serverLen = resp.N
		s.lenSynced = true
	}
	addr := s.serverLen + len(s.pending)
	s.pending = append(s.pending, EncUpload{
		TupleCT: cloneBytes(tupleCT), AttrCT: cloneBytes(attrCT), Token: cloneBytes(token),
	})
	return addr
}

// Flush uploads any pending encrypted rows. On failure the rows stay
// buffered — their addresses were already handed out by Add, so dropping
// them would silently corrupt the technique's index — and a later Flush
// retries them.
func (s *StoreClient) Flush() error {
	s.bufMu.Lock()
	defer s.bufMu.Unlock()
	// Surface the sticky error even with nothing buffered: after a
	// transport failure Add buffers nothing, so an empty-pending nil here
	// would let an Outsource over a dead connection report success.
	if err := s.c.stickyErr(); err != nil {
		return err
	}
	if len(s.pending) == 0 {
		return nil
	}
	batch := s.pending
	// The batch is conditional on the row count its addresses were
	// assigned at (protocol v6): pending is never non-empty without a
	// synced length (Add probes before buffering, seed records one), and
	// the server applies the batch only if the store still holds exactly
	// serverLen rows. A flush racing an anti-entropy repair of this
	// replica — which can append these very rows, copied from a peer that
	// acked them — is refused instead of doubling the tail.
	have := s.serverLen
	if !s.lenSynced {
		have = -1
	}
	resp, err := s.c.roundTrip(&request{Op: opEncAddBatch, Store: s.store, Batch: batch, AdminToken: s.ownerToken(), Have: have})
	if err != nil {
		if s.c.stickyErr() == nil && IsStaleWrite(err) {
			// Nothing was applied, but the base address moved: the buffered
			// rows' handed-out addresses can only ever be honoured at the
			// probed base, so retrying is pointless. Drop them and the
			// length mirror — in a ring this replica is quarantined on the
			// error and anti-entropy re-materialises the rows from a
			// replica that acked; readmission's ResyncLen would refuse
			// while they were retained.
			s.pending = nil
			s.lenSynced = false
			s.serverLen = 0
			return fmt.Errorf("wire: flush: store %q: %w", storeName(s.store), err)
		}
		// Keep the batch buffered for retry: its addresses were already
		// handed out by Add, so dropping the rows would silently corrupt
		// the technique's index. If the server rejected the batch
		// logically the connection is still healthy; confirm via opEncLen
		// that nothing was applied, in which case the retained addresses
		// are still the ones a retry will materialise. A shifted length
		// means the batch was partially applied and the handed-out
		// addresses can no longer be honoured — no retry can fix that, so
		// fail the client loudly rather than let every later Fetch return
		// the wrong row.
		if s.c.stickyErr() == nil {
			if lenResp, lerr := s.c.roundTrip(&request{Op: opEncLen, Store: s.store}); lerr == nil {
				if s.lenSynced && lenResp.N != s.serverLen {
					s.c.fail(fmt.Errorf(
						"wire: flush: store %q length %d after rejected batch, expected %d: batch partially applied, handed-out addresses lost (%w)",
						s.store, lenResp.N, s.serverLen, err))
					return err
				}
				s.serverLen = lenResp.N
				s.lenSynced = true
			}
		}
		return err
	}
	// bufMu is held across the whole round trip and Add requires it too,
	// so pending cannot have grown since batch was taken.
	s.pending = nil
	s.serverLen += resp.N
	return nil
}

// takeRetained extracts the view's retained upload state so a reconnecting
// wrapper can replay it on a fresh connection. It is only meaningful on a
// poisoned connection: the sticky error (checked under the same bufMu)
// guarantees no concurrent Add can buffer after the harvest.
func (s *StoreClient) takeRetained() (pending []EncUpload, serverLen int, synced bool) {
	s.bufMu.Lock()
	defer s.bufMu.Unlock()
	pending = s.pending
	s.pending = nil
	return pending, s.serverLen, s.lenSynced
}

// seed installs upload state harvested from a dead connection's view of
// the same namespace: the retained rows keep the addresses Add already
// handed out, and serverLen anchors them to the server-side row count the
// reconnect resync verified.
func (s *StoreClient) seed(pending []EncUpload, serverLen int) {
	s.bufMu.Lock()
	s.pending = pending
	s.serverLen = serverLen
	s.lenSynced = true
	s.bufMu.Unlock()
}

// ResyncLen drops the view's cached server-length arithmetic — the
// encrypted row count AND the clear-text tuple count — so the next Add or
// Insert re-reads the server's. A ring client readmitting a repaired
// replica uses it: anti-entropy appended rows (or restored tuples)
// server-side that this view never saw, so its cached lengths would hand
// out colliding addresses or fail every insert's CAS. It refuses while
// uploads are retained — those rows carry already-handed-out addresses
// that resyncing would orphan.
func (s *StoreClient) ResyncLen() error {
	s.plainMu.Lock()
	defer s.plainMu.Unlock()
	s.bufMu.Lock()
	defer s.bufMu.Unlock()
	if len(s.pending) > 0 {
		return fmt.Errorf("wire: resync len: store %q holds %d retained uploads whose addresses were already handed out", s.store, len(s.pending))
	}
	s.lenSynced = false
	s.serverLen = 0
	s.plainSynced = false
	s.plainLen = 0
	return nil
}

// lenErr is Len with the error surfaced.
func (s *StoreClient) lenErr() (int, error) {
	resp, err := s.call(&request{Op: opEncLen})
	if err != nil {
		return 0, err
	}
	return resp.N, nil
}

// Len implements technique.EncStore.
func (s *StoreClient) Len() int {
	n, err := s.lenErr()
	if err != nil {
		s.c.noteLogical(err)
		return 0
	}
	return n
}

// attrColumnErr is AttrColumn with the error surfaced.
func (s *StoreClient) attrColumnErr() ([]storage.EncRow, error) {
	resp, err := s.call(&request{Op: opEncAttrColumn})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// AttrColumn implements technique.EncStore.
func (s *StoreClient) AttrColumn() []storage.EncRow {
	rows, err := s.attrColumnErr()
	if err != nil {
		s.c.noteLogical(err)
		return nil
	}
	return rows
}

// Fetch implements technique.EncStore.
func (s *StoreClient) Fetch(addrs []int) ([]storage.EncRow, error) {
	resp, err := s.call(&request{Op: opEncFetch, Addrs: addrs})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// FetchBatch implements technique.BatchEncStore: a single round trip
// returns the rows for every address list, so a batched search pays one
// network latency for the whole batch's bin fetches instead of one per
// query.
func (s *StoreClient) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	resp, err := s.call(&request{Op: opEncFetchBatch, AddrBatches: addrBatches})
	if err != nil {
		return nil, err
	}
	return resp.RowBatches, nil
}

// lookupTokenErr is LookupToken with the error surfaced.
func (s *StoreClient) lookupTokenErr(tok []byte) ([]int, error) {
	resp, err := s.call(&request{Op: opEncLookupToken, Token: tok})
	if err != nil {
		return nil, err
	}
	return resp.Addrs, nil
}

// LookupToken implements technique.EncStore.
func (s *StoreClient) LookupToken(tok []byte) []int {
	addrs, err := s.lookupTokenErr(tok)
	if err != nil {
		s.c.noteLogical(err)
		return nil
	}
	return addrs
}

// rowsErr is Rows with the error surfaced.
func (s *StoreClient) rowsErr() ([]storage.EncRow, error) {
	resp, err := s.call(&request{Op: opEncRows})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// Rows implements technique.EncStore.
func (s *StoreClient) Rows() []storage.EncRow {
	rows, err := s.rowsErr()
	if err != nil {
		s.c.noteLogical(err)
		return nil
	}
	return rows
}

// --- technique.VersionedEncStore ----------------------------------------

// EncVersion implements technique.VersionedEncStore: the namespace's
// current version in one tiny round trip.
func (s *StoreClient) EncVersion() (storage.EncVersion, error) {
	resp, err := s.call(&request{Op: opEncVersion})
	if err != nil {
		return storage.EncVersion{}, err
	}
	return storage.EncVersion{Epoch: resp.VerEpoch, N: resp.VerN}, nil
}

// AttrColumnSince implements technique.VersionedEncStore: the conditional
// column pull. When the cache version v still matches the namespace's
// epoch, the response carries only the rows past have (delta=true; empty
// on a clean hit — a not-modified frame of a few bytes instead of the
// whole column); otherwise the full column comes back with delta=false.
func (s *StoreClient) AttrColumnSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	resp, err := s.call(&request{Op: opEncAttrColumnIf, CondEpoch: v.Epoch, CondN: v.N, Have: have})
	if err != nil {
		return nil, storage.EncVersion{}, false, err
	}
	return resp.Rows, storage.EncVersion{Epoch: resp.VerEpoch, N: resp.VerN}, resp.Delta, nil
}

// RowsSince implements technique.VersionedEncStore: the conditional full-
// row pull, same delta contract as AttrColumnSince.
func (s *StoreClient) RowsSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	resp, err := s.call(&request{Op: opEncRowsIf, CondEpoch: v.Epoch, CondN: v.N, Have: have})
	if err != nil {
		return nil, storage.EncVersion{}, false, err
	}
	return resp.Rows, storage.EncVersion{Epoch: resp.VerEpoch, N: resp.VerN}, resp.Delta, nil
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
