package wire

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Client is the owner-side connection to a remote cloud. It implements
// cloud.PlainBackend for the clear-text partition and technique.EncStore
// for the encrypted partition, so the standard owner and techniques work
// over the network unchanged.
//
// The connection is multiplexed: every request carries an ID, a writer
// goroutine frames requests in submission order, and a reader goroutine
// routes each response back to its caller, so any number of calls can be
// in flight at once without head-of-line blocking. The batch query engine
// therefore gains real cloud-side parallelism through a remote backend;
// DialPool adds connection-level parallelism on top for CPU-bound
// encrypted scans.
//
// Error semantics: only transport failures are sticky. The first one
// poisons the client — every in-flight and subsequent call fails with the
// same cause, exposed by Err(). Server-side logical errors (e.g. a Search
// before any Load) are per-call: methods with an error return surface
// them directly, and interface methods without one (Search, Len, ...)
// return zero values and record the error for LogicalErr(). Callers doing
// anything important should check Err() and LogicalErr() after a batch of
// operations.
//
// Client is safe for concurrent use.
type Client struct {
	conn net.Conn
	enc  *gob.Encoder // owned by writeLoop
	dec  *gob.Decoder // owned by readLoop

	// sendq feeds the writer goroutine; dead is closed on the first
	// transport failure so blocked callers are released.
	sendq chan *request
	dead  chan struct{}

	mu       sync.Mutex
	err      error  // sticky transport error
	logical  error  // last per-op error from a void method
	logicalN uint64 // times logical was recorded (monotonic)
	nextID   uint64
	inflight map[uint64]chan *response

	// bufMu guards the encrypted-upload buffer. It is held across the
	// flush round trip so the buffer and serverLen stay consistent with
	// the server.
	bufMu   sync.Mutex
	pending []EncUpload
	// serverLen tracks the server-side row count after the last
	// acknowledged flush, so Add can assign addresses without a round
	// trip. It is synced from the server on first use (lenSynced), so a
	// fresh client attaching to an already-populated cloud does not hand
	// out addresses that collide with existing rows.
	serverLen int
	lenSynced bool
}

// Dial connects to a remote cloud at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. net.Pipe in tests) and
// starts its writer and reader goroutines.
func NewClient(conn net.Conn) *Client {
	c := &Client{
		conn:     conn,
		enc:      gob.NewEncoder(conn),
		dec:      gob.NewDecoder(conn),
		sendq:    make(chan *request),
		dead:     make(chan struct{}),
		inflight: make(map[uint64]chan *response),
	}
	c.start()
	return c
}

// Close closes the connection and releases every in-flight call: they
// and all later calls fail with a client-closed error. An explicit Close
// is a clean shutdown, not a transport failure, so it does not surface
// through Err.
func (c *Client) Close() error {
	return c.shutdown(errClientClosed)
}

// Err returns the sticky transport error, if any. Logical (server-side)
// errors never poison the client (see LogicalErr), and an explicit Close
// is not a failure.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == errClientClosed {
		return nil
	}
	return c.err
}

// LogicalErr returns the most recent error reported by an interface
// method that cannot return one (Search, Len, ...): usually a server-side
// logical error, but also transport failures and use-after-close those
// methods swallowed into zero values. A logical error never poisons the
// connection, so this is a per-op record: later successful calls do not
// clear it, later failing calls overwrite it.
func (c *Client) LogicalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logical
}

// LogicalErrCount reports how many times a void interface method has
// recorded an error. Callers bracketing a batch of operations (e.g. one
// query) snapshot it before and compare after: a changed count means some
// op in the window failed silently — without the races of a shared
// take-and-clear slot under concurrent batches.
func (c *Client) LogicalErrCount() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logicalN
}

// noteLogical records a per-op error from a void interface method.
// Transport failures and use-after-close are recorded too — they are
// what the method's zero-value return just swallowed — so windows
// bracketed by LogicalErrCount observe them even when Err() alone would
// not surface them (clean close, or a pool whose other connections are
// healthy).
func (c *Client) noteLogical(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.logical = err
	c.logicalN++
}

// call flushes buffered uploads and performs one round trip.
func (c *Client) call(req *request) (*response, error) {
	if err := c.Flush(); err != nil {
		return nil, err
	}
	return c.roundTrip(req)
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&request{Op: opPing})
	return err
}

// --- cloud.PlainBackend -----------------------------------------------

// Load implements cloud.PlainBackend: ships the non-sensitive relation to
// the cloud in clear-text.
func (c *Client) Load(rns *relation.Relation, attr string) error {
	_, err := c.call(&request{
		Op:     opPlainLoad,
		Schema: rns.Schema,
		Tuples: rns.Tuples,
		Attr:   attr,
	})
	return err
}

// Search implements cloud.PlainBackend.
func (c *Client) Search(values []relation.Value) []relation.Tuple {
	resp, err := c.call(&request{Op: opPlainSearch, Values: values})
	if err != nil {
		c.noteLogical(err)
		return nil
	}
	return resp.Tuples
}

// SearchRange implements cloud.PlainBackend.
func (c *Client) SearchRange(lo, hi relation.Value) []relation.Tuple {
	resp, err := c.call(&request{Op: opPlainSearchRange, Lo: lo, Hi: hi})
	if err != nil {
		c.noteLogical(err)
		return nil
	}
	return resp.Tuples
}

// Insert implements cloud.PlainBackend.
func (c *Client) Insert(t relation.Tuple) error {
	_, err := c.call(&request{Op: opPlainInsert, Tuple: t})
	return err
}

// --- technique.EncStore -------------------------------------------------

// Add implements technique.EncStore. Uploads are buffered; they are
// flushed automatically before any read operation, or explicitly with
// Flush. The returned address is computed client-side (the server assigns
// addresses sequentially in upload order).
func (c *Client) Add(tupleCT, attrCT, token []byte) int {
	c.bufMu.Lock()
	defer c.bufMu.Unlock()
	if c.stickyErr() != nil {
		return -1
	}
	if !c.lenSynced {
		resp, err := c.roundTrip(&request{Op: opEncLen})
		if err != nil {
			c.noteLogical(err)
			return -1
		}
		c.serverLen = resp.N
		c.lenSynced = true
	}
	addr := c.serverLen + len(c.pending)
	c.pending = append(c.pending, EncUpload{
		TupleCT: cloneBytes(tupleCT), AttrCT: cloneBytes(attrCT), Token: cloneBytes(token),
	})
	return addr
}

// Flush uploads any pending encrypted rows. On failure the rows stay
// buffered — their addresses were already handed out by Add, so dropping
// them would silently corrupt the technique's index — and a later Flush
// retries them.
func (c *Client) Flush() error {
	c.bufMu.Lock()
	defer c.bufMu.Unlock()
	// Surface the sticky error even with nothing buffered: after a
	// transport failure Add buffers nothing, so an empty-pending nil here
	// would let an Outsource over a dead connection report success.
	if err := c.stickyErr(); err != nil {
		return err
	}
	if len(c.pending) == 0 {
		return nil
	}
	batch := c.pending
	resp, err := c.roundTrip(&request{Op: opEncAddBatch, Batch: batch})
	if err != nil {
		// Keep the batch buffered for retry: its addresses were already
		// handed out by Add, so dropping the rows would silently corrupt
		// the technique's index. If the server rejected the batch
		// logically the connection is still healthy; confirm via opEncLen
		// that nothing was applied, in which case the retained addresses
		// are still the ones a retry will materialise. A shifted length
		// means the batch was partially applied and the handed-out
		// addresses can no longer be honoured — no retry can fix that, so
		// fail the client loudly rather than let every later Fetch return
		// the wrong row.
		if c.stickyErr() == nil {
			if lenResp, lerr := c.roundTrip(&request{Op: opEncLen}); lerr == nil {
				if c.lenSynced && lenResp.N != c.serverLen {
					c.fail(fmt.Errorf(
						"wire: flush: server length %d after rejected batch, expected %d: batch partially applied, handed-out addresses lost (%w)",
						lenResp.N, c.serverLen, err))
					return err
				}
				c.serverLen = lenResp.N
				c.lenSynced = true
			}
		}
		return err
	}
	// bufMu is held across the whole round trip and Add requires it too,
	// so pending cannot have grown since batch was taken.
	c.pending = nil
	c.serverLen += resp.N
	return nil
}

// Len implements technique.EncStore.
func (c *Client) Len() int {
	resp, err := c.call(&request{Op: opEncLen})
	if err != nil {
		c.noteLogical(err)
		return 0
	}
	return resp.N
}

// AttrColumn implements technique.EncStore.
func (c *Client) AttrColumn() []storage.EncRow {
	resp, err := c.call(&request{Op: opEncAttrColumn})
	if err != nil {
		c.noteLogical(err)
		return nil
	}
	return resp.Rows
}

// Fetch implements technique.EncStore.
func (c *Client) Fetch(addrs []int) ([]storage.EncRow, error) {
	resp, err := c.call(&request{Op: opEncFetch, Addrs: addrs})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// FetchBatch implements technique.BatchEncStore: a single round trip
// returns the rows for every address list, so a batched search pays one
// network latency for the whole batch's bin fetches instead of one per
// query.
func (c *Client) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	resp, err := c.call(&request{Op: opEncFetchBatch, AddrBatches: addrBatches})
	if err != nil {
		return nil, err
	}
	return resp.RowBatches, nil
}

// LookupToken implements technique.EncStore.
func (c *Client) LookupToken(tok []byte) []int {
	resp, err := c.call(&request{Op: opEncLookupToken, Token: tok})
	if err != nil {
		c.noteLogical(err)
		return nil
	}
	return resp.Addrs
}

// Rows implements technique.EncStore.
func (c *Client) Rows() []storage.EncRow {
	resp, err := c.call(&request{Op: opEncRows})
	if err != nil {
		c.noteLogical(err)
		return nil
	}
	return resp.Rows
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
