package wire

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/relation"
	"repro/internal/storage"
)

// Client is the owner-side connection to a remote cloud. It implements
// cloud.PlainBackend for the clear-text partition and technique.EncStore
// for the encrypted partition, so the standard owner and techniques work
// over the network unchanged.
//
// Interface methods without error returns (Search, Add, ...) report
// transport failures through a sticky error: the first failure poisons the
// client, subsequent calls return zero values, and Err() exposes the
// cause. Callers doing anything important should check Err() after a batch
// of operations.
//
// Client is safe for concurrent use, but all round trips share one
// connection and serialise on its mutex, so the batch query engine gains
// no cloud-side parallelism through a remote backend yet (see ROADMAP
// "remote-backend parallelism").
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
	err  error

	// pending buffers encrypted uploads so that bulk outsourcing does one
	// round trip per Flush rather than per row.
	pending []EncUpload
	// serverLen tracks the server-side row count after the last flush, so
	// Add can assign addresses without a round trip.
	serverLen int
}

// Dial connects to a remote cloud at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("wire: dial %s: %w", addr, err)
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. net.Pipe in tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Err returns the sticky transport error, if any.
func (c *Client) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// call performs one request/response round trip.
func (c *Client) call(req *request) (*response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return nil, c.err
	}
	if err := c.flushLocked(); err != nil {
		return nil, err
	}
	return c.roundTrip(req)
}

// roundTrip must be called with mu held.
func (c *Client) roundTrip(req *request) (*response, error) {
	if err := c.enc.Encode(req); err != nil {
		c.err = fmt.Errorf("wire: send: %w", err)
		return nil, c.err
	}
	var resp response
	if err := c.dec.Decode(&resp); err != nil {
		c.err = fmt.Errorf("wire: receive: %w", err)
		return nil, c.err
	}
	if resp.Err != "" {
		return nil, errors.New(resp.Err)
	}
	return &resp, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.call(&request{Op: opPing})
	return err
}

// --- cloud.PlainBackend -----------------------------------------------

// Load implements cloud.PlainBackend: ships the non-sensitive relation to
// the cloud in clear-text.
func (c *Client) Load(rns *relation.Relation, attr string) error {
	_, err := c.call(&request{
		Op:     opPlainLoad,
		Schema: rns.Schema,
		Tuples: rns.Tuples,
		Attr:   attr,
	})
	return err
}

// Search implements cloud.PlainBackend.
func (c *Client) Search(values []relation.Value) []relation.Tuple {
	resp, err := c.call(&request{Op: opPlainSearch, Values: values})
	if err != nil {
		c.poison(err)
		return nil
	}
	return resp.Tuples
}

// SearchRange implements cloud.PlainBackend.
func (c *Client) SearchRange(lo, hi relation.Value) []relation.Tuple {
	resp, err := c.call(&request{Op: opPlainSearchRange, Lo: lo, Hi: hi})
	if err != nil {
		c.poison(err)
		return nil
	}
	return resp.Tuples
}

// Insert implements cloud.PlainBackend.
func (c *Client) Insert(t relation.Tuple) error {
	_, err := c.call(&request{Op: opPlainInsert, Tuple: t})
	return err
}

// --- technique.EncStore -------------------------------------------------

// Add implements technique.EncStore. Uploads are buffered; they are
// flushed automatically before any read operation, or explicitly with
// Flush. The returned address is computed client-side (the server assigns
// addresses sequentially in upload order).
func (c *Client) Add(tupleCT, attrCT, token []byte) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return -1
	}
	addr := c.knownLen() + len(c.pending)
	c.pending = append(c.pending, EncUpload{
		TupleCT: cloneBytes(tupleCT), AttrCT: cloneBytes(attrCT), Token: cloneBytes(token),
	})
	return addr
}

// knownLen is the server-side length before pending uploads; tracked
// client-side to assign addresses without a round trip. Must hold mu.
func (c *Client) knownLen() int { return c.serverLen }

// Flush uploads any pending encrypted rows.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

func (c *Client) flushLocked() error {
	if len(c.pending) == 0 {
		return nil
	}
	batch := c.pending
	c.pending = nil
	resp, err := c.roundTrip(&request{Op: opEncAddBatch, Batch: batch})
	if err != nil {
		return err
	}
	c.serverLen += resp.N
	return nil
}

// Len implements technique.EncStore.
func (c *Client) Len() int {
	resp, err := c.call(&request{Op: opEncLen})
	if err != nil {
		c.poison(err)
		return 0
	}
	return resp.N
}

// AttrColumn implements technique.EncStore.
func (c *Client) AttrColumn() []storage.EncRow {
	resp, err := c.call(&request{Op: opEncAttrColumn})
	if err != nil {
		c.poison(err)
		return nil
	}
	return resp.Rows
}

// Fetch implements technique.EncStore.
func (c *Client) Fetch(addrs []int) ([]storage.EncRow, error) {
	resp, err := c.call(&request{Op: opEncFetch, Addrs: addrs})
	if err != nil {
		return nil, err
	}
	return resp.Rows, nil
}

// LookupToken implements technique.EncStore.
func (c *Client) LookupToken(tok []byte) []int {
	resp, err := c.call(&request{Op: opEncLookupToken, Token: tok})
	if err != nil {
		c.poison(err)
		return nil
	}
	return resp.Addrs
}

// Rows implements technique.EncStore.
func (c *Client) Rows() []storage.EncRow {
	resp, err := c.call(&request{Op: opEncRows})
	if err != nil {
		c.poison(err)
		return nil
	}
	return resp.Rows
}

// poison records a sticky error from an interface method that cannot
// return one.
func (c *Client) poison(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		c.err = err
	}
}

func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
