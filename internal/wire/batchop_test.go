package wire

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/technique"
)

// TestEncFetchBatchOverWire: the batched read op returns one row set per
// address list — including empty lists — in a single round trip, and
// rejects out-of-range addresses as a per-op logical error.
func TestEncFetchBatchOverWire(t *testing.T) {
	c := startCloud(t)
	for i := 0; i < 5; i++ {
		c.Add([]byte{byte(10 + i)}, []byte{byte(20 + i)}, nil)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	batches, err := c.FetchBatch([][]int{{0, 2}, {}, {4, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 3 {
		t.Fatalf("got %d row sets, want 3", len(batches))
	}
	want := []struct {
		set, idx, addr int
		tupleCT        byte
	}{
		{0, 0, 0, 10}, {0, 1, 2, 12}, {2, 0, 4, 14}, {2, 1, 0, 10},
	}
	for _, f := range want {
		r := batches[f.set][f.idx]
		if r.Addr != f.addr || r.TupleCT[0] != f.tupleCT {
			t.Errorf("batches[%d][%d] = addr %d ct %v, want addr %d ct [%d]",
				f.set, f.idx, r.Addr, r.TupleCT, f.addr, f.tupleCT)
		}
	}
	if len(batches[1]) != 0 {
		t.Errorf("empty address list returned %d rows", len(batches[1]))
	}

	if _, err := c.FetchBatch([][]int{{0}, {99}}); err == nil {
		t.Fatal("out-of-range batched fetch accepted")
	}
	if c.Err() != nil {
		t.Fatalf("logical fetch error poisoned the connection: %v", c.Err())
	}
}

// TestSearchBatchOverWire is the remote-backend equivalence property at
// the technique level: NoInd running over a wire client (and a pool) must
// return the same payloads and access patterns from SearchBatch as from a
// sequential Search loop, with the whole batch's bin fetches served by the
// one batched round trip.
func TestSearchBatchOverWire(t *testing.T) {
	backends := map[string]func(t *testing.T) Backend{
		"client": func(t *testing.T) Backend { return startCloud(t) },
		// Both pool connections must reach the SAME cloud, so dial the
		// first client's cloud a second time.
		"pool": func(t *testing.T) Backend {
			c1 := startCloud(t)
			c2, err := Dial(c1.conn.RemoteAddr().String())
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c2.Close() })
			return NewPool([]*Client{c1, c2})
		},
	}

	for name, mk := range backends {
		t.Run(name, func(t *testing.T) {
			backend := mk(t)
			tech, err := technique.NewNoIndOn(crypto.DeriveKeys([]byte("wire batch")), backend)
			if err != nil {
				t.Fatal(err)
			}
			var rows []technique.Row
			for v := 0; v < 8; v++ {
				for i := 0; i <= v; i++ {
					rows = append(rows, technique.Row{
						Payload: []byte(fmt.Sprintf("v=%d#%d", v, i)),
						Attr:    relation.Int(int64(v)),
					})
				}
			}
			if _, err := tech.Outsource(rows); err != nil {
				t.Fatal(err)
			}
			if err := backend.Flush(); err != nil {
				t.Fatal(err)
			}

			queries := [][]relation.Value{
				{relation.Int(3), relation.Int(5)},
				{relation.Int(0)},
				{relation.Int(99)},
				{relation.Int(5)},
			}
			seq := make([][][]byte, len(queries))
			seqStats := make([]*technique.Stats, len(queries))
			for i, q := range queries {
				seq[i], seqStats[i], err = tech.Search(q)
				if err != nil {
					t.Fatal(err)
				}
			}
			batch, agg, err := tech.SearchBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			for i := range queries {
				if !reflect.DeepEqual(batch[i], seq[i]) {
					t.Errorf("query %d: batch payloads %q != sequential %q", i, batch[i], seq[i])
				}
				if !reflect.DeepEqual(agg.PerQuery[i].ReturnedAddrs, seqStats[i].ReturnedAddrs) {
					t.Errorf("query %d: batch addrs %v != sequential %v",
						i, agg.PerQuery[i].ReturnedAddrs, seqStats[i].ReturnedAddrs)
				}
			}
			if err := backend.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
