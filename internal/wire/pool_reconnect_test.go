package wire

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

// TestReconnectPoolSurvivesOneConnKillMidBatch is the acceptance property
// for composing pools with reconnecting transports: a pool of
// Reconnectors is driven by concurrent readers and writers while ONE
// pooled connection is killed mid-traffic (twice). Every op must succeed
// — the victim's ops block through its reconnect cycle and replay, the
// rest of the pool never notices — and the final store contents equal
// what an untouched run would produce.
func TestReconnectPoolSurvivesOneConnKillMidBatch(t *testing.T) {
	cl := NewCloud()
	srv := newChaosServer(t, cl)

	conns := make([]*Reconnector, 3)
	for i := range conns {
		conns[i] = reconnectorFor(t, srv)
	}
	p := NewReconnectPool(conns)
	if p.Size() != 3 || p.Alive() != 3 {
		t.Fatalf("pool size/alive = %d/%d", p.Size(), p.Alive())
	}

	// Two namespaces with distinct home connections, each loaded and
	// seeded — the shape the owner-side technique drives.
	a := p.WithStore("tenant-a")
	b := p.WithStore("tenant-b")
	for _, v := range []*PoolStore{a, b} {
		if err := v.Load(testRelation(25), "K"); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if addr := v.Add([]byte{byte(i)}, nil, []byte("tok")); addr != i {
				t.Fatalf("%s: seed addr %d != %d", v.StoreName(), addr, i)
			}
		}
		if err := v.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// killOne closes exactly one pooled member's current connection; the
	// others keep their transports.
	killOne := func(rc *Reconnector) {
		rc.mu.Lock()
		cur := rc.cur
		rc.mu.Unlock()
		if cur != nil {
			cur.conn.Close()
		}
	}

	const workers = 6
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := a
			if w%2 == 1 {
				v = b
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if got := v.Search([]relation.Value{relation.Int(int64(w % 5))}); got == nil {
					errCh <- fmt.Errorf("worker %d: Search nil (iter %d): logical=%v", w, i, v.LogicalErr())
					return
				}
				rows, err := v.Fetch([]int{w % 8})
				if err != nil || len(rows) != 1 {
					errCh <- fmt.Errorf("worker %d: Fetch (iter %d): %v %v", w, i, rows, err)
					return
				}
				if got := v.LookupToken([]byte("tok")); len(got) < 8 {
					errCh <- fmt.Errorf("worker %d: token index shrank to %d (iter %d)", w, len(got), i)
					return
				}
			}
		}(w)
	}
	// Writer appends through tenant-a's home while connections die.
	wg.Add(1)
	appended := 0
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if addr := a.Add([]byte("w"), nil, nil); addr != 8+appended {
				errCh <- fmt.Errorf("writer: addr %d, want %d", addr, 8+appended)
				return
			}
			if err := a.Flush(); err != nil {
				errCh <- fmt.Errorf("writer flush: %w", err)
				return
			}
			appended++
			time.Sleep(time.Millisecond)
		}
	}()

	for k := 0; k < 2; k++ {
		time.Sleep(25 * time.Millisecond)
		killOne(conns[(k+1)%len(conns)])
	}
	time.Sleep(25 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// All members recovered: the pool reports full capacity and the data
	// is intact and consistent from every connection.
	if got := p.Alive(); got != 3 {
		t.Fatalf("Alive = %d after reconnects, want 3", got)
	}
	for i := 0; i < 2*p.Size(); i++ {
		if n := a.Len(); n != 8+appended {
			t.Fatalf("tenant-a Len read %d = %d, want %d", i, n, 8+appended)
		}
		if n := b.Len(); n != 8 {
			t.Fatalf("tenant-b Len read %d = %d, want 8", i, n)
		}
	}
	if err := p.Err(); err != nil {
		t.Fatalf("pool Err after recovery: %v", err)
	}
}

// TestDialReconnectPool: the production constructor composes n
// reconnecting members, fails fast on an unreachable address, and the
// pooled members reconnect independently after a full server restart.
func TestDialReconnectPool(t *testing.T) {
	if _, err := DialReconnectPool("127.0.0.1:1", 2, fastOpts); err == nil {
		t.Fatal("DialReconnectPool to unreachable addr succeeded")
	}

	cl := NewCloud()
	srv := newChaosServer(t, cl)
	p, err := DialReconnectPool(srv.addr, 2, fastOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Load(testRelation(10), "K"); err != nil {
		t.Fatal(err)
	}
	if addr := p.Add([]byte("ct"), nil, nil); addr != 0 {
		t.Fatalf("Add = %d", addr)
	}
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}

	// Kill everything; the same cloud comes back. Every member redials.
	srv.kill()
	srv.restart(t, cl)
	if got := p.Search([]relation.Value{relation.Int(1)}); got == nil {
		t.Fatalf("Search after restart = nil: %v / %v", p.LogicalErr(), p.Err())
	}
	if n := p.Len(); n != 1 {
		t.Fatalf("Len after restart = %d", n)
	}
	if got := p.Alive(); got != 2 {
		t.Fatalf("Alive after restart = %d", got)
	}
}
