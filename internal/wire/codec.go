package wire

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/relation"
	"repro/internal/storage"
)

// This file is the hand-rolled binary codec for the hot data-plane ops —
// the encode/decode work that dominated the remote path under gob (gob
// re-walks struct types reflectively and allocates per field; the remote
// benchmark spent ~290k allocs per 256-query batch on it). The layouts
// are positional, so a frame costs a handful of appends to build and one
// linear scan (plus a single arena allocation) to decode.
//
// Request body (inside a tagBinReq frame):
//
//	op uint8 | ID uvarint | len(store) uvarint | store | op-specific fields
//
// Response body (inside a tagBinResp frame):
//
//	op uint8 | ID uvarint | flags uint8 | error string OR op-specific fields
//
// The response carries the op because, unlike gob's self-describing
// envelope, the payload shape is implicit in it. flags bit 0 marks an
// error (the body is then just the message); bit 1 marks a partial chunk
// of a streamed row response — the reader accumulates chunks by ID until
// a frame without the bit arrives (see serverStream.writeChunkedRows).
//
// Byte-string fields are nil-aware (0 encodes nil, n+1 encodes n bytes):
// the encrypted store indexes a row's token only when it is non-nil, so
// the distinction must survive the wire. Addresses travel as zigzag
// varints; values and tuples reuse the relation package's binary codec.
const (
	respFlagErr     byte = 1 << 0
	respFlagPartial byte = 1 << 1
)

// binaryOp reports whether an op's requests and responses travel in the
// binary codec once a connection is framed. Hot data-plane ops only:
// everything else (plain load, hello, admin) keeps gob's self-describing
// flexibility at negligible cost.
func binaryOp(o op) bool {
	switch o {
	case opPing, opPlainSearch, opPlainSearchRange, opPlainInsert,
		opEncAdd, opEncAddBatch, opEncLen, opEncAttrColumn, opEncFetch,
		opEncLookupToken, opEncRows, opEncFetchBatch,
		opEncVersion, opEncAttrColumnIf, opEncRowsIf:
		return true
	}
	return false
}

// --- encode --------------------------------------------------------------

// appendHave appends a mutation op's length CAS shifted by one, so the
// unconditional sentinel (-1, and any other negative) rides the wire as a
// plain zero uvarint.
func appendHave(buf []byte, have int) []byte {
	if have < 0 {
		return append(buf, 0)
	}
	return binary.AppendUvarint(buf, uint64(have)+1)
}

// appendBytes appends a nil-aware length-prefixed byte string.
func appendBytes(buf, p []byte) []byte {
	if p == nil {
		return append(buf, 0)
	}
	buf = binary.AppendUvarint(buf, uint64(len(p))+1)
	return append(buf, p...)
}

func appendAddrs(buf []byte, addrs []int) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(addrs)))
	for _, a := range addrs {
		buf = binary.AppendVarint(buf, int64(a))
	}
	return buf
}

func appendRows(buf []byte, rows []storage.EncRow) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(rows)))
	for i := range rows {
		row := &rows[i]
		buf = binary.AppendVarint(buf, int64(row.Addr))
		buf = appendBytes(buf, row.TupleCT)
		buf = appendBytes(buf, row.AttrCT)
		buf = appendBytes(buf, row.Token)
	}
	return buf
}

// appendBinRequest appends the binary encoding of req; req.Op must
// satisfy binaryOp.
func appendBinRequest(buf []byte, req *request) []byte {
	buf = append(buf, byte(req.Op))
	buf = binary.AppendUvarint(buf, req.ID)
	buf = binary.AppendUvarint(buf, uint64(len(req.Store)))
	buf = append(buf, req.Store...)
	switch req.Op {
	case opPing, opEncLen, opEncAttrColumn, opEncRows, opEncVersion:
		// No payload.
	case opEncAttrColumnIf, opEncRowsIf:
		buf = binary.AppendUvarint(buf, req.CondEpoch)
		buf = binary.AppendUvarint(buf, req.CondN)
		buf = binary.AppendUvarint(buf, uint64(req.Have))
	case opPlainSearch:
		buf = binary.AppendUvarint(buf, uint64(len(req.Values)))
		for _, v := range req.Values {
			buf = v.AppendEncode(buf)
		}
	case opPlainSearchRange:
		buf = req.Lo.AppendEncode(buf)
		buf = req.Hi.AppendEncode(buf)
	case opPlainInsert:
		buf = appendBytes(buf, req.AdminToken)
		buf = appendHave(buf, req.Have)
		buf = relation.AppendEncodeTuple(buf, req.Tuple)
	case opEncAdd:
		buf = appendBytes(buf, req.AdminToken)
		buf = appendBytes(buf, req.TupleCT)
		buf = appendBytes(buf, req.AttrCT)
		buf = appendBytes(buf, req.Token)
	case opEncAddBatch:
		buf = appendBytes(buf, req.AdminToken)
		buf = appendHave(buf, req.Have)
		buf = binary.AppendUvarint(buf, uint64(len(req.Batch)))
		for i := range req.Batch {
			u := &req.Batch[i]
			buf = appendBytes(buf, u.TupleCT)
			buf = appendBytes(buf, u.AttrCT)
			buf = appendBytes(buf, u.Token)
		}
	case opEncFetch:
		buf = appendAddrs(buf, req.Addrs)
	case opEncFetchBatch:
		buf = binary.AppendUvarint(buf, uint64(len(req.AddrBatches)))
		for _, addrs := range req.AddrBatches {
			buf = appendAddrs(buf, addrs)
		}
	case opEncLookupToken:
		buf = appendBytes(buf, req.Token)
	}
	return buf
}

// appendBinResponse appends the binary encoding of resp to an op-o
// request; extra is OR-ed into the flags byte (respFlagPartial for
// streamed chunks).
func appendBinResponse(buf []byte, o op, resp *response, extra byte) []byte {
	buf = append(buf, byte(o))
	buf = binary.AppendUvarint(buf, resp.ID)
	if resp.Err != "" {
		buf = append(buf, extra|respFlagErr)
		buf = binary.AppendUvarint(buf, uint64(len(resp.Err)))
		return append(buf, resp.Err...)
	}
	buf = append(buf, extra)
	switch o {
	case opPing, opPlainInsert:
		// No payload.
	case opPlainSearch, opPlainSearchRange:
		buf = binary.AppendUvarint(buf, uint64(len(resp.Tuples)))
		for _, t := range resp.Tuples {
			buf = relation.AppendEncodeTuple(buf, t)
		}
	case opEncAdd:
		buf = binary.AppendVarint(buf, int64(resp.Addr))
	case opEncAddBatch:
		buf = binary.AppendVarint(buf, int64(resp.Addr))
		buf = binary.AppendUvarint(buf, uint64(resp.N))
	case opEncLen:
		buf = binary.AppendUvarint(buf, uint64(resp.N))
	case opEncLookupToken:
		buf = appendAddrs(buf, resp.Addrs)
	case opEncAttrColumn, opEncRows, opEncFetch:
		buf = appendRows(buf, resp.Rows)
	case opEncVersion:
		buf = binary.AppendUvarint(buf, resp.VerEpoch)
		buf = binary.AppendUvarint(buf, resp.VerN)
	case opEncAttrColumnIf, opEncRowsIf:
		buf = binary.AppendUvarint(buf, resp.VerEpoch)
		buf = binary.AppendUvarint(buf, resp.VerN)
		var d byte
		if resp.Delta {
			d = 1
		}
		buf = append(buf, d)
		buf = appendRows(buf, resp.Rows)
	case opEncFetchBatch:
		buf = binary.AppendUvarint(buf, uint64(len(resp.RowBatches)))
		for _, rows := range resp.RowBatches {
			buf = appendRows(buf, rows)
		}
	}
	return buf
}

// --- decode --------------------------------------------------------------

var errCorruptFrame = errors.New("wire: corrupt binary frame")

// arena hands out copies of decoded byte fields from one backing
// allocation sized to the frame body. The copies are mandatory — the
// frame scratch is reused and both the encrypted store (server side) and
// the technique (client side) retain the slices they are handed — and one
// allocation per frame beats one per field. Allocation is lazy so frames
// without byte fields (fetches, lens) cost nothing.
type arena struct {
	buf  []byte
	size int // backing allocation size, set from the frame body length
}

func (a *arena) copy(p []byte) []byte {
	if len(p) == 0 {
		return []byte{}
	}
	if cap(a.buf)-len(a.buf) < len(p) {
		// First use — or, defensively, overflow (impossible when sized
		// from the frame body, since decoded fields are drawn from it).
		a.buf = make([]byte, 0, max(a.size, len(p)))
	}
	n := len(a.buf)
	a.buf = a.buf[:n+len(p)]
	out := a.buf[n : n+len(p) : n+len(p)]
	copy(out, p)
	return out
}

// binReader is a cursor over one binary frame body. The first decode
// error sticks and every later read returns zero values, so decode code
// runs straight-line and checks once at the end.
type binReader struct {
	b   []byte
	err error
}

func (r *binReader) fail() {
	if r.err == nil {
		r.err = errCorruptFrame
	}
}

func (r *binReader) byte() byte {
	if r.err != nil || len(r.b) == 0 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Uvarint(r.b)
	if w <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[w:]
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, w := binary.Varint(r.b)
	if w <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[w:]
	return v
}

// have reads a mutation op's length CAS: zero on the wire is the
// unconditional sentinel (-1), anything else is the expected length
// shifted by one (see appendHave).
func (r *binReader) have() int {
	h := r.uvarint()
	switch {
	case h == 0:
		return -1
	case h-1 <= uint64(int(^uint(0)>>1)):
		return int(h - 1)
	default:
		r.fail()
		return -1
	}
}

// count reads a collection length and bounds it by the bytes left (every
// element costs at least minBytes), so a lying count cannot force a huge
// allocation.
func (r *binReader) count(minBytes int) int {
	n := r.uvarint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.b))/uint64(minBytes) {
		r.fail()
		return 0
	}
	return int(n)
}

// bytes reads a nil-aware byte string into the arena.
func (r *binReader) bytes(a *arena) []byte {
	n := r.uvarint()
	if r.err != nil || n == 0 {
		return nil
	}
	n--
	if n > uint64(len(r.b)) {
		r.fail()
		return nil
	}
	out := a.copy(r.b[:n])
	r.b = r.b[n:]
	return out
}

func (r *binReader) str() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)) {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

func (r *binReader) value() relation.Value {
	if r.err != nil {
		return relation.Value{}
	}
	v, rest, err := relation.DecodeValue(r.b)
	if err != nil {
		r.err = err
		return relation.Value{}
	}
	r.b = rest
	return v
}

// tuple decodes one tuple, drawing its Values backing from slab so a
// frame full of search results costs O(log n) value allocations instead
// of one per tuple — the single largest allocation source in the remote
// query profile before slabbing.
func (r *binReader) tuple(slab *[]relation.Value) relation.Tuple {
	if r.err != nil {
		return relation.Tuple{}
	}
	t, rest, err := relation.DecodeTupleSlab(r.b, slab)
	if err != nil {
		r.err = err
		return relation.Tuple{}
	}
	r.b = rest
	return t
}

func (r *binReader) addrs() []int {
	n := r.count(1)
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, int(r.varint()))
	}
	if r.err != nil {
		return nil
	}
	return out
}

func (r *binReader) rows(a *arena) []storage.EncRow {
	n := r.count(4) // addr varint plus three length bytes, minimum
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]storage.EncRow, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, storage.EncRow{
			Addr:    int(r.varint()),
			TupleCT: r.bytes(a),
			AttrCT:  r.bytes(a),
			Token:   r.bytes(a),
		})
	}
	if r.err != nil {
		return nil
	}
	return out
}

// decodeBinRequest parses a tagBinReq frame body. Every byte field is
// copied out of the body (which aliases the reader's reused scratch);
// malformed input returns an error, never panics, and cannot allocate
// more than a small multiple of the body's length.
func decodeBinRequest(body []byte) (*request, error) {
	r := binReader{b: body}
	req := &request{Op: op(r.byte())}
	if r.err == nil && !binaryOp(req.Op) {
		return nil, fmt.Errorf("wire: op %d is not a binary-codec op", req.Op)
	}
	req.ID = r.uvarint()
	req.Store = r.str()
	a := arena{size: len(body)}
	switch req.Op {
	case opPing, opEncLen, opEncAttrColumn, opEncRows, opEncVersion:
		// No payload.
	case opEncAttrColumnIf, opEncRowsIf:
		req.CondEpoch = r.uvarint()
		req.CondN = r.uvarint()
		if have := r.uvarint(); have <= uint64(int(^uint(0)>>1)) {
			req.Have = int(have)
		} else {
			r.fail()
		}
	case opPlainSearch:
		if n := r.count(1); n > 0 {
			req.Values = make([]relation.Value, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				req.Values = append(req.Values, r.value())
			}
		}
	case opPlainSearchRange:
		req.Lo = r.value()
		req.Hi = r.value()
	case opPlainInsert:
		req.AdminToken = r.bytes(&a)
		req.Have = r.have()
		var slab []relation.Value
		req.Tuple = r.tuple(&slab)
	case opEncAdd:
		req.AdminToken = r.bytes(&a)
		req.TupleCT = r.bytes(&a)
		req.AttrCT = r.bytes(&a)
		req.Token = r.bytes(&a)
	case opEncAddBatch:
		req.AdminToken = r.bytes(&a)
		req.Have = r.have()
		if n := r.count(3); n > 0 {
			req.Batch = make([]EncUpload, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				req.Batch = append(req.Batch, EncUpload{
					TupleCT: r.bytes(&a), AttrCT: r.bytes(&a), Token: r.bytes(&a),
				})
			}
		}
	case opEncFetch:
		req.Addrs = r.addrs()
	case opEncFetchBatch:
		if n := r.count(1); n > 0 {
			req.AddrBatches = make([][]int, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				req.AddrBatches = append(req.AddrBatches, r.addrs())
			}
		}
	case opEncLookupToken:
		req.Token = r.bytes(&a)
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.b) != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after binary request", len(r.b))
	}
	return req, nil
}

// decodeBinResponse parses a tagBinResp frame body; partial reports
// whether this is a non-final chunk of a streamed row response. The same
// safety contract as decodeBinRequest applies.
func decodeBinResponse(body []byte) (resp *response, partial bool, err error) {
	r := binReader{b: body}
	o := op(r.byte())
	if r.err == nil && !binaryOp(o) {
		return nil, false, fmt.Errorf("wire: response op %d is not a binary-codec op", o)
	}
	resp = &response{ID: r.uvarint()}
	flags := r.byte()
	partial = flags&respFlagPartial != 0
	a := arena{size: len(body)}
	if flags&respFlagErr != 0 {
		resp.Err = r.str()
		if r.err == nil && resp.Err == "" {
			r.fail() // an error flag with no message is not a valid frame
		}
	} else {
		switch o {
		case opPing, opPlainInsert:
			// No payload.
		case opPlainSearch, opPlainSearchRange:
			if n := r.count(2); n > 0 { // uvarint ID plus uvarint arity, minimum
				resp.Tuples = make([]relation.Tuple, 0, n)
				var slab []relation.Value
				for i := 0; i < n && r.err == nil; i++ {
					resp.Tuples = append(resp.Tuples, r.tuple(&slab))
				}
			}
		case opEncAdd:
			resp.Addr = int(r.varint())
		case opEncAddBatch:
			resp.Addr = int(r.varint())
			resp.N = int(r.uvarint())
		case opEncLen:
			resp.N = int(r.uvarint())
		case opEncLookupToken:
			resp.Addrs = r.addrs()
		case opEncAttrColumn, opEncRows, opEncFetch:
			resp.Rows = r.rows(&a)
		case opEncVersion:
			resp.VerEpoch = r.uvarint()
			resp.VerN = r.uvarint()
		case opEncAttrColumnIf, opEncRowsIf:
			resp.VerEpoch = r.uvarint()
			resp.VerN = r.uvarint()
			switch r.byte() {
			case 0:
			case 1:
				resp.Delta = true
			default:
				r.fail() // non-canonical delta byte
			}
			resp.Rows = r.rows(&a)
		case opEncFetchBatch:
			if n := r.count(1); n > 0 {
				resp.RowBatches = make([][]storage.EncRow, 0, n)
				for i := 0; i < n && r.err == nil; i++ {
					resp.RowBatches = append(resp.RowBatches, r.rows(&a))
				}
			}
		}
	}
	if r.err != nil {
		return nil, false, r.err
	}
	if len(r.b) != 0 {
		return nil, false, fmt.Errorf("wire: %d trailing bytes after binary response", len(r.b))
	}
	return resp, partial, nil
}
