package wire

import (
	"bytes"
	"fmt"
	"net"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

// chaosServer hosts a Cloud on a fixed loopback address and can kill every
// live connection plus the listener, then restart — possibly with a
// different Cloud — on the same address: the wire-level shape of a cloud
// process crashing and coming back.
type chaosServer struct {
	addr  string
	mu    sync.Mutex
	lis   net.Listener
	conns []net.Conn
}

func newChaosServer(t testing.TB, cl *Cloud) *chaosServer {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &chaosServer{addr: lis.Addr().String()}
	s.start(cl, lis)
	t.Cleanup(s.kill)
	return s
}

func (s *chaosServer) start(cl *Cloud, lis net.Listener) {
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	go func() {
		for {
			conn, err := lis.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			go cl.ServeConn(conn)
		}
	}()
}

// kill closes the listener and every established connection.
func (s *chaosServer) kill() {
	s.mu.Lock()
	lis, conns := s.lis, s.conns
	s.lis, s.conns = nil, nil
	s.mu.Unlock()
	if lis != nil {
		lis.Close()
	}
	for _, c := range conns {
		c.Close()
	}
}

// restart serves cl on the same address.
func (s *chaosServer) restart(t testing.TB, cl *Cloud) {
	t.Helper()
	lis, err := net.Listen("tcp", s.addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", s.addr, err)
	}
	s.start(cl, lis)
}

// fastOpts keeps test reconnect cycles snappy.
var fastOpts = ReconnectOptions{MaxRetries: 20, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond}

func reconnectorFor(t testing.TB, s *chaosServer) *Reconnector {
	t.Helper()
	rc := NewReconnector(func() (*Client, error) { return Dial(s.addr) }, fastOpts)
	t.Cleanup(func() { rc.Close() })
	return rc
}

func testRelation(n int) *relation.Relation {
	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	for i := 0; i < n; i++ {
		rel.MustInsert(relation.Int(int64(i % 5)))
	}
	return rel
}

// TestReconnectorPlainSurvivesRestart: a kill plus a restart with an EMPTY
// cloud — the worst case, no snapshot at all — is invisible to the plain
// path: the reconnect re-ships the mirrored relation, inserts included,
// exactly once.
func TestReconnectorPlainSurvivesRestart(t *testing.T) {
	srv := newChaosServer(t, NewCloud())
	rc := reconnectorFor(t, srv)

	if err := rc.Load(testRelation(20), "K"); err != nil {
		t.Fatal(err)
	}
	if err := rc.Insert(relation.Tuple{ID: 777, Values: []relation.Value{relation.Int(42)}}); err != nil {
		t.Fatal(err)
	}
	want := rc.Search([]relation.Value{relation.Int(2)})
	if len(want) != 4 {
		t.Fatalf("pre-kill Search = %d tuples, want 4", len(want))
	}

	srv.kill()
	srv.restart(t, NewCloud()) // fresh empty cloud: everything must come from the mirror

	got := rc.Search([]relation.Value{relation.Int(2)})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restart Search = %v, want %v", got, want)
	}
	if ins := rc.Search([]relation.Value{relation.Int(42)}); len(ins) != 1 || ins[0].ID != 777 {
		t.Fatalf("insert not exactly-once after restart: %v", ins)
	}
	if rc.Err() != nil {
		t.Fatalf("reconnector poisoned: %v", rc.Err())
	}
}

// TestReconnectorReplaysRetainedUploads: encrypted rows buffered when the
// connection died are replayed onto a cloud restored from the last
// snapshot, at the addresses Add handed out.
func TestReconnectorReplaysRetainedUploads(t *testing.T) {
	cl := NewCloud()
	srv := newChaosServer(t, cl)
	rc := reconnectorFor(t, srv)

	for i := 0; i < 5; i++ {
		if addr := rc.Add([]byte{byte(i)}, nil, []byte("tok")); addr != i {
			t.Fatalf("Add #%d = %d", i, addr)
		}
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := cl.Save(&snap); err != nil {
		t.Fatal(err)
	}
	// Buffer three more rows; their flush will never reach the old server.
	for i := 5; i < 8; i++ {
		if addr := rc.Add([]byte{byte(i)}, nil, []byte("tok")); addr != i {
			t.Fatalf("Add #%d = %d", i, addr)
		}
	}

	srv.kill()
	cl2 := NewCloud()
	if err := cl2.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	srv.restart(t, cl2)

	// Any read forces flush; the reconnect cycle replays the retained rows.
	if n := rc.Len(); n != 8 {
		t.Fatalf("Len after replay = %d, want 8", n)
	}
	rows, err := rc.Fetch([]int{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rows {
		if !bytes.Equal(r.TupleCT, []byte{byte(5 + i)}) {
			t.Fatalf("replayed row %d = %v", 5+i, r.TupleCT)
		}
	}
	if got := rc.LookupToken([]byte("tok")); len(got) != 8 {
		t.Fatalf("token index after replay: %v", got)
	}
	if rc.Err() != nil {
		t.Fatalf("reconnector poisoned: %v", rc.Err())
	}
}

// TestReconnectorDoesNotReplayAppliedBatch: the ack-lost case. The server
// applied the batch but the acknowledgment died with the connection; the
// resync arithmetic (server rows == acknowledged + retained) must mark the
// batch applied instead of doubling every row.
func TestReconnectorDoesNotReplayAppliedBatch(t *testing.T) {
	cl := NewCloud()
	srv := newChaosServer(t, cl)
	rc := reconnectorFor(t, srv)

	for i := 0; i < 5; i++ {
		rc.Add([]byte{byte(i)}, nil, nil)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		rc.Add([]byte{byte(i)}, nil, nil)
	}
	// Apply the same three rows server-side through an independent client:
	// exactly the state left by a flush whose response was lost.
	direct, err := Dial(srv.addr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 8; i++ {
		direct.Add([]byte{byte(i)}, nil, nil)
	}
	if err := direct.Flush(); err != nil {
		t.Fatal(err)
	}
	direct.Close()

	srv.kill()
	srv.restart(t, cl) // same cloud: connection died, state survived

	if n := rc.Len(); n != 8 {
		t.Fatalf("Len = %d, want 8 (batch must not replay)", n)
	}
	if rc.Err() != nil {
		t.Fatalf("reconnector poisoned: %v", rc.Err())
	}
}

// TestReconnectorUnreconcilableFailsLoudly: a cloud restarted from a
// snapshot that predates acknowledged uploads can no longer honour the
// addresses the owner holds; the reconnector must fail permanently, not
// serve wrong rows.
func TestReconnectorUnreconcilableFailsLoudly(t *testing.T) {
	srv := newChaosServer(t, NewCloud())
	rc := reconnectorFor(t, srv)
	for i := 0; i < 5; i++ {
		rc.Add([]byte{byte(i)}, nil, nil)
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}

	srv.kill()
	srv.restart(t, NewCloud()) // empty: the five acknowledged rows are gone

	if _, err := rc.Fetch([]int{0}); err == nil || !strings.Contains(err.Error(), "cannot reconcile") {
		t.Fatalf("irrecoverable restart: %v", err)
	}
	if err := rc.Err(); err == nil {
		t.Fatal("permanent failure not sticky")
	}
	// Fail-fast afterwards.
	if _, err := rc.Fetch([]int{0}); err == nil {
		t.Fatal("op after permanent failure succeeded")
	}
}

// TestReconnectorGivesUpAfterMaxRetries: with nothing listening, the
// redial loop exhausts its attempts and surfaces a permanent error.
func TestReconnectorGivesUpAfterMaxRetries(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := lis.Addr().String()
	lis.Close()
	rc := NewReconnector(func() (*Client, error) { return Dial(addr) },
		ReconnectOptions{MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Clock: newFakeClock(true)})
	defer rc.Close()
	if err := rc.Ping(); err == nil || !strings.Contains(err.Error(), "gave up after 3 attempts") {
		t.Fatalf("Ping against nothing: %v", err)
	}
	if rc.Err() == nil {
		t.Fatal("exhausted redial not sticky")
	}
}

// Close aborting a reconnect cycle parked in backoff is covered
// deterministically by TestReconnectBackoffCloseAborts (clock_test.go),
// which replaces the old wall-clock-sleeping version of the test.

// TestReconnectorConcurrentOpsSurviveKill: many goroutines read through
// one reconnector while the server is repeatedly killed and restarted
// (same cloud — connection chaos, not data loss); every op must succeed
// (-race covers the interleavings).
func TestReconnectorConcurrentOpsSurviveKill(t *testing.T) {
	cl := NewCloud()
	srv := newChaosServer(t, cl)
	rc := reconnectorFor(t, srv)
	if err := rc.Load(testRelation(30), "K"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rc.Add([]byte{byte(i)}, nil, []byte("t"))
	}
	if err := rc.Flush(); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	stop := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if got := rc.Search([]relation.Value{relation.Int(int64(w % 5))}); got == nil {
					errCh <- fmt.Errorf("worker %d: Search returned nil (iter %d): logical=%v err=%v", w, i, rc.LogicalErr(), rc.Err())
					return
				}
				if _, err := rc.Fetch([]int{w % 10}); err != nil {
					errCh <- fmt.Errorf("worker %d: Fetch (iter %d): %w", w, i, err)
					return
				}
			}
		}(w)
	}
	for k := 0; k < 3; k++ {
		time.Sleep(30 * time.Millisecond)
		srv.kill()
		srv.restart(t, cl)
	}
	time.Sleep(30 * time.Millisecond)
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
