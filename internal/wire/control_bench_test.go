package wire

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/relation"
)

// BenchmarkReconnectResync measures one full reconnect cycle — kill every
// connection, redial, handshake + liveness probe, re-Load the mirrored
// clear-text relation, opEncLen resync — plus the first op through the
// recovered transport, per iteration, across plain-partition sizes. It is
// the price a Config.Reconnect client pays per transport failure.
func BenchmarkReconnectResync(b *testing.B) {
	for _, tuples := range []int{100, 1000, 5000} {
		b.Run(fmt.Sprintf("plainTuples=%d", tuples), func(b *testing.B) {
			cl := NewCloud()
			srv := newChaosServer(b, cl)
			rc := reconnectorFor(b, srv)
			if err := rc.Load(testRelation(tuples), "K"); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < 64; i++ {
				rc.Add([]byte{byte(i)}, nil, nil)
			}
			if err := rc.Flush(); err != nil {
				b.Fatal(err)
			}
			if _, err := rc.Fetch([]int{0}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.kill()
				srv.restart(b, cl)
				if _, err := rc.Fetch([]int{i % 64}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTwoTenantContention measures tenant B's query latency through a
// shared connection while tenant A saturates it with slow ops, with and
// without the per-store admission bound. A's slowness is a deterministic
// 1ms stall injected via the dispatch hook rather than a real CPU burn:
// on this single-CPU benchmark host a genuine burn would drown the
// admission effect in processor scarcity (which no admission policy can
// fix), while the stall isolates exactly what -store-workers governs —
// who holds the per-connection execution slots. Without the bound A's
// in-flight ops occupy every slot and B queues behind them; with it A's
// surplus waits on its own namespace semaphore, holding no slot, and B's
// latency drops to its own cost.
func BenchmarkTwoTenantContention(b *testing.B) {
	for _, storeWorkers := range []int{0, 1} {
		b.Run(fmt.Sprintf("storeWorkers=%d", storeWorkers), func(b *testing.B) {
			cl := NewCloud()
			cl.SetConnWorkers(4)
			cl.SetStoreWorkers(storeWorkers)
			cl.testHookDispatch = func(o op, store string) {
				if store == "tenant-a" && o == opEncLen {
					time.Sleep(time.Millisecond)
				}
			}
			srv := newChaosServer(b, cl)
			c, err := Dial(srv.addr)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()

			a, tb := c.WithStore("tenant-a"), c.WithStore("tenant-b")
			rel := relation.New(relation.MustSchema("T",
				relation.Column{Name: "K", Kind: relation.KindInt},
			))
			for i := 0; i < 64; i++ {
				rel.MustInsert(relation.Int(int64(i % 8)))
			}
			if err := tb.Load(rel, "K"); err != nil {
				b.Fatal(err)
			}

			// Tenant A: 8 concurrent stalled ops in a tight loop.
			var stop atomic.Bool
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						a.Len()
					}
				}()
			}
			defer func() { stop.Store(true); wg.Wait() }()
			time.Sleep(20 * time.Millisecond) // let the flood saturate admission

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := tb.Search([]relation.Value{relation.Int(int64(i % 8))}); len(got) != 8 {
					b.Fatalf("Search = %d tuples, want 8", len(got))
				}
			}
		})
	}
}
