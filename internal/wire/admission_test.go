package wire

import (
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/relation"
)

// TestStoreAdmissionIsolatesTenants is the acceptance property for
// two-level admission, made deterministic with the dispatch hook: tenant A
// saturates its per-store bound with ops that park inside dispatch, plus
// more ops queueing on A's semaphore, all through the SAME connection as
// tenant B — and B's query still completes, because ops waiting on their
// own store's bound hold no per-connection capacity. This pins the
// mechanism; the canonical end-to-end isolation check (bounded p99 for a
// paced tenant under a saturating co-tenant, with real clients and
// measured latency) is TestLoadTenantIsolationUnderSaturation in
// internal/loadgen.
func TestStoreAdmissionIsolatesTenants(t *testing.T) {
	cl := NewCloud()
	cl.SetConnWorkers(4)
	cl.SetStoreWorkers(2)

	gate := make(chan struct{})
	var gateOnce sync.Once
	entered := make(chan string, 16)
	cl.testHookDispatch = func(o op, store string) {
		if store == "tenant-a" && o == opEncLen {
			entered <- store
			<-gate // park inside dispatch, holding both admission slots
		}
	}
	defer gateOnce.Do(func() { close(gate) })

	srvConn, cliConn := net.Pipe()
	go cl.ServeConn(srvConn)
	c := NewClient(cliConn)
	defer c.Close()

	a := c.WithStore("tenant-a")
	b := c.WithStore("tenant-b")

	// Four ops on tenant A through the one connection: with store-workers=2
	// exactly two enter dispatch (and park at the gate); two wait on A's
	// semaphore — crucially, without holding per-connection slots.
	aDone := make(chan int, 4)
	for i := 0; i < 4; i++ {
		go func() { aDone <- a.Len() }()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-entered:
		case <-time.After(5 * time.Second):
			t.Fatal("tenant A ops never reached dispatch")
		}
	}
	select {
	case s := <-entered:
		t.Fatalf("third %s op passed a store bound of 2", s)
	case <-time.After(50 * time.Millisecond):
	}

	// Tenant B's query on the same connection must complete while A is
	// saturated: B's store semaphore is free and the connection pool (4)
	// has slots left because A's two queued ops are not holding any.
	bDone := make(chan int, 1)
	go func() { bDone <- b.Len() }()
	select {
	case n := <-bDone:
		if n != 0 {
			t.Fatalf("tenant B Len = %d, want 0", n)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("tenant B starved by tenant A's saturation")
	}

	// Release the gate: every parked and queued A op completes.
	gateOnce.Do(func() { close(gate) })
	for i := 0; i < 4; i++ {
		select {
		case <-aDone:
		case <-time.After(5 * time.Second):
			t.Fatal("tenant A ops did not drain after the gate opened")
		}
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreAdmissionDisabledByDefault: with store-workers unset the
// namespace level is off and ops run under the connection bound alone.
func TestStoreAdmissionDisabledByDefault(t *testing.T) {
	cl := NewCloud()
	srvConn, cliConn := net.Pipe()
	go cl.ServeConn(srvConn)
	c := NewClient(cliConn)
	defer c.Close()
	v := c.WithStore("tenant")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v.Len()
		}()
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreAdmissionUnderLoad drives two tenants with real concurrency
// (no hook) through one connection with a tight store bound; everything
// must complete and stay correct under -race.
func TestStoreAdmissionUnderLoad(t *testing.T) {
	cl := NewCloud()
	cl.SetConnWorkers(4)
	cl.SetStoreWorkers(1)
	srvConn, cliConn := net.Pipe()
	go cl.ServeConn(srvConn)
	c := NewClient(cliConn)
	defer c.Close()

	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	for i := 0; i < 50; i++ {
		rel.MustInsert(relation.Int(int64(i % 5)))
	}
	for _, name := range []string{"a", "b"} {
		if err := c.WithStore(name).Load(rel, "K"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := c.WithStore([]string{"a", "b"}[w%2])
			for i := 0; i < 20; i++ {
				if got := v.Search([]relation.Value{relation.Int(int64(i % 5))}); len(got) != 10 {
					t.Errorf("worker %d: Search = %d tuples, want 10", w, len(got))
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
}
