package wire

import (
	"bytes"
	"fmt"
	"net"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// startCloudWith is startCloud with access to the Cloud before Serve, for
// ring-plane configuration (directory provider, ring token).
func startCloudWith(t *testing.T, setup func(*Cloud)) *Client {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCloud()
	if setup != nil {
		setup(cl)
	}
	go func() { _ = cl.Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// populateRingStore loads a small plain partition and uploads enc rows
// into the named namespace, claiming it with tok.
func populateRingStore(t *testing.T, c *Client, name string, tok []byte, encRows int) {
	t.Helper()
	sc := c.WithStore(name)
	sc.SetAdminToken(tok)
	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	for i := 0; i < 10; i++ {
		rel.MustInsert(relation.Int(int64(i)))
	}
	if err := sc.Load(rel, "K"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < encRows; i++ {
		if addr := sc.Add([]byte{byte(i), 1}, []byte{byte(i), 2}, []byte{byte(i % 3)}); addr != i {
			t.Fatalf("Add row %d: addr = %d", i, addr)
		}
	}
	if err := sc.Flush(); err != nil {
		t.Fatal(err)
	}
}

// TestRingDirectoryOp: the conditional directory fetch contract, plus the
// refusal on servers without a provider.
func TestRingDirectoryOp(t *testing.T) {
	blob := []byte("directory-blob-v7")
	c := startCloudWith(t, func(cl *Cloud) {
		cl.SetRingDirectory(func(known uint64) ([]byte, uint64, bool) {
			if known == 7 {
				return nil, 7, false
			}
			return blob, 7, true
		})
	})
	got, ver, changed, err := c.RingDirectory(0)
	if err != nil || !changed || ver != 7 || !bytes.Equal(got, blob) {
		t.Fatalf("unconditional fetch = (%q, %d, %v, %v)", got, ver, changed, err)
	}
	got, ver, changed, err = c.RingDirectory(7)
	if err != nil || changed || ver != 7 || got != nil {
		t.Fatalf("conditional fetch at current version = (%q, %d, %v, %v)", got, ver, changed, err)
	}

	plain := startCloud(t)
	if _, _, _, err := plain.RingDirectory(0); err == nil {
		t.Fatal("directory fetch from a non-coordinator succeeded")
	}
}

// TestStoreInfoOp: probes report existence, counts, version and claim —
// and never materialise the namespace they probe.
func TestStoreInfoOp(t *testing.T) {
	c := startCloud(t)
	info, err := c.StoreInfo("ghost")
	if err != nil {
		t.Fatal(err)
	}
	if info.Exists {
		t.Fatalf("phantom store exists: %+v", info)
	}
	// The probe must not have created it.
	names, err := c.AdminList()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("StoreInfo materialised stores: %v", names)
	}

	tok := OwnerToken([]byte("master"), "ns")
	populateRingStore(t, c, "ns", tok, 4)
	info, err = c.StoreInfo("ns")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Exists || info.EncRows != 4 || info.PlainTuples != 10 || !info.Claimed {
		t.Fatalf("StoreInfo = %+v", info)
	}
	if info.VerEpoch == 0 || info.VerN != 4 {
		t.Fatalf("StoreInfo version = (%d, %d), want nonzero epoch and N=4", info.VerEpoch, info.VerN)
	}
}

// TestStoreSnapshotRestore: a snapshot from one node restored onto
// another yields an equivalent replica (rows, plain partition, claim),
// with a fresh epoch and the version floor carried over.
func TestStoreSnapshotRestore(t *testing.T) {
	ringTok := []byte("cluster-secret")
	src := startCloudWith(t, func(cl *Cloud) { cl.SetRingToken(ringTok) })
	dst := startCloudWith(t, func(cl *Cloud) { cl.SetRingToken(ringTok) })

	tok := OwnerToken([]byte("master"), "ns")
	populateRingStore(t, src, "ns", tok, 6)

	blob, err := src.StoreSnapshot("ns")
	if err != nil {
		t.Fatal(err)
	}
	n, err := dst.StoreRestore("ns", blob, ringTok)
	if err != nil {
		t.Fatal(err)
	}
	if n != 6 {
		t.Fatalf("restore reported %d rows, want 6", n)
	}

	srcInfo, _ := src.StoreInfo("ns")
	dstInfo, err := dst.StoreInfo("ns")
	if err != nil {
		t.Fatal(err)
	}
	if !dstInfo.Exists || dstInfo.EncRows != srcInfo.EncRows ||
		dstInfo.PlainTuples != srcInfo.PlainTuples || dstInfo.Claimed != srcInfo.Claimed {
		t.Fatalf("restored replica %+v != source %+v", dstInfo, srcInfo)
	}
	if dstInfo.VerEpoch == srcInfo.VerEpoch {
		t.Fatal("restored replica shares the source's epoch; restores must draw a fresh one")
	}
	if dstInfo.VerN < srcInfo.VerN {
		t.Fatalf("restored version floor %d < source %d", dstInfo.VerN, srcInfo.VerN)
	}

	// Replica content equality, row by row.
	srcRows := src.WithStore("ns").Rows()
	dstRows := dst.WithStore("ns").Rows()
	if len(srcRows) != len(dstRows) {
		t.Fatalf("row counts diverge: %d vs %d", len(srcRows), len(dstRows))
	}
	for i := range srcRows {
		if srcRows[i].Addr != dstRows[i].Addr || !bytes.Equal(srcRows[i].TupleCT, dstRows[i].TupleCT) ||
			!bytes.Equal(srcRows[i].AttrCT, dstRows[i].AttrCT) || !bytes.Equal(srcRows[i].Token, dstRows[i].Token) {
			t.Fatalf("row %d diverges", i)
		}
	}
	// The owner claim travelled: the same owner token must be accepted on
	// the replica, a different one refused.
	if _, err := dst.AdminStats("ns", tok); err != nil {
		t.Fatalf("owner token refused on restored replica: %v", err)
	}
	if _, err := dst.AdminStats("ns", OwnerToken([]byte("other"), "ns")); err == nil {
		t.Fatal("wrong owner token accepted on restored replica")
	}
}

// TestRingTokenGuard: restore and repair-append are refused without the
// ring token, with the wrong token, and on servers with none configured.
func TestRingTokenGuard(t *testing.T) {
	ringTok := []byte("cluster-secret")
	src := startCloudWith(t, func(cl *Cloud) { cl.SetRingToken(ringTok) })
	tok := OwnerToken([]byte("master"), "ns")
	populateRingStore(t, src, "ns", tok, 2)
	blob, err := src.StoreSnapshot("ns")
	if err != nil {
		t.Fatal(err)
	}

	guarded := startCloudWith(t, func(cl *Cloud) { cl.SetRingToken(ringTok) })
	if _, err := guarded.StoreRestore("ns", blob, nil); err == nil {
		t.Fatal("restore without ring token succeeded")
	}
	if _, err := guarded.StoreRestore("ns", blob, []byte("wrong")); err == nil {
		t.Fatal("restore with wrong ring token succeeded")
	}
	if _, err := guarded.RepairAppend("ns", src.WithStore("ns").Rows(), 0, []byte("wrong")); err == nil {
		t.Fatal("repair append with wrong ring token succeeded")
	}

	unguarded := startCloud(t)
	if _, err := unguarded.StoreRestore("ns", blob, ringTok); err == nil {
		t.Fatal("restore on a server without a ring token succeeded")
	}
}

// TestRepairAppend: the tail CAS — appends land only when the replica
// holds exactly the expected row count, and a miss reports the actual
// count without mutating anything.
func TestRepairAppend(t *testing.T) {
	ringTok := []byte("cluster-secret")
	cloud := startCloudWith(t, func(cl *Cloud) { cl.SetRingToken(ringTok) })
	tok := OwnerToken([]byte("master"), "ns")
	populateRingStore(t, cloud, "ns", tok, 3)

	// A well-formed tail at the right length.
	tail := src3Rows(3, 2)
	n, err := cloud.RepairAppend("ns", tail, 3, ringTok)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("repair append: len = %d, want 5", n)
	}
	if got := cloud.WithStore("ns").Len(); got != 5 {
		t.Fatalf("store len after repair = %d, want 5", got)
	}
	// The appended rows are addressable and token-indexed.
	rows, err := cloud.WithStore("ns").Fetch([]int{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || !bytes.Equal(rows[0].TupleCT, tail[0].TupleCT) {
		t.Fatalf("repaired rows not addressable: %+v", rows)
	}

	// CAS miss: wrong expected length is refused and reports the truth.
	if _, err := cloud.RepairAppend("ns", src3Rows(9, 1), 3, ringTok); err == nil {
		t.Fatal("repair append with stale expected length succeeded")
	}
	if got := cloud.WithStore("ns").Len(); got != 5 {
		t.Fatalf("failed CAS mutated the store: len = %d, want 5", got)
	}

	// Unknown store: repair cannot create replicas.
	if _, err := cloud.RepairAppend("nope", src3Rows(0, 1), 0, ringTok); err == nil {
		t.Fatal("repair append into unknown store succeeded")
	}
	// Malformed rows are refused before touching the store.
	bad := src3Rows(5, 1)
	bad[0].TupleCT = nil
	if _, err := cloud.RepairAppend("ns", bad, 5, ringTok); err == nil {
		t.Fatal("repair append with empty tuple ciphertext succeeded")
	}
}

// src3Rows builds n distinct well-formed enc rows starting at a marker.
func src3Rows(start, n int) []storage.EncRow {
	rows := make([]storage.EncRow, n)
	for i := range rows {
		rows[i] = storage.EncRow{
			TupleCT: []byte(fmt.Sprintf("tuple-%d", start+i)),
			AttrCT:  []byte(fmt.Sprintf("attr-%d", start+i)),
			Token:   []byte{byte((start + i) % 3)},
		}
	}
	return rows
}
