// Package wire implements a multiplexed owner↔cloud network protocol so
// the untrusted cloud can run as a separate process: gob-framed
// request/response messages over any net.Conn, a server hosting the
// clear-text store and the encrypted store, and a client that plugs into
// the owner as a cloud.PlainBackend and into any technique as a
// technique.EncStore.
//
// Every request carries a client-assigned ID echoed by its response, so
// many calls can be in flight on one connection at once: the client runs
// a writer goroutine (frames requests in submission order) and a
// reader goroutine (demultiplexes responses by ID back to the waiting
// callers), and the server dispatches the ops decoded from one connection
// concurrently through a bounded worker pool, serialising only the
// response frames. Responses may therefore arrive in any order; ordering
// guarantees come from callers blocking on their own response, not from
// the transport. For CPU-bound encrypted scans a small connection pool
// (DialPool) spreads calls over several multiplexed connections.
//
// Reads come in batched flavours too: opEncFetchBatch serves one address
// list per query of a batched search in a single round trip, which is how
// Client/Pool satisfy technique.BatchEncStore and how a remote QueryBatch
// avoids paying one network latency per query.
//
// The protocol deliberately mirrors what the paper's adversary observes:
// the clear-text side travels in the clear (the cloud owns that data
// anyway), while the encrypted side carries only ciphertexts, tokens and
// addresses. A production deployment would wrap the conn in TLS (the paper
// assumes a secure channel against eavesdroppers); that is orthogonal to
// the protocol.
package wire

import (
	"repro/internal/relation"
	"repro/internal/storage"
)

// op identifies a request type.
type op uint8

const (
	opPlainLoad op = iota + 1
	opPlainSearch
	opPlainSearchRange
	opPlainInsert
	opEncAdd
	opEncAddBatch
	opEncLen
	opEncAttrColumn
	opEncFetch
	opEncLookupToken
	opEncRows
	opPing
	// opEncFetchBatch serves a whole batch's bin fetches in one round
	// trip: one address list per query in, one row set per query out.
	opEncFetchBatch
)

// request is the single wire request envelope; fields are populated
// according to Op.
type request struct {
	// ID is assigned by the client, unique per connection, and echoed in
	// the matching response so concurrent in-flight calls can share one
	// connection.
	ID uint64
	Op op

	// Clear-text store fields.
	Schema relation.Schema
	Tuples []relation.Tuple
	Attr   string
	Values []relation.Value
	Lo, Hi relation.Value
	Tuple  relation.Tuple

	// Encrypted store fields.
	TupleCT []byte
	AttrCT  []byte
	Token   []byte
	Batch   []EncUpload
	Addrs   []int
	// AddrBatches is one address list per query (opEncFetchBatch).
	AddrBatches [][]int
}

// EncUpload is one encrypted row in a batched upload.
type EncUpload struct {
	TupleCT []byte
	AttrCT  []byte
	Token   []byte
}

// response is the single wire response envelope.
type response struct {
	// ID echoes the request ID this response answers.
	ID     uint64
	Err    string
	Addr   int
	N      int
	Tuples []relation.Tuple
	Rows   []storage.EncRow
	Addrs  []int
	// RowBatches is one row set per requested address list
	// (opEncFetchBatch), indexed like request.AddrBatches.
	RowBatches [][]storage.EncRow
}
