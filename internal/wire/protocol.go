// Package wire implements a multiplexed owner↔cloud network protocol so
// the untrusted cloud can run as a separate process: length-prefixed
// frames over any net.Conn carrying a hand-rolled binary codec for the
// hot data-plane ops (and gob for the cold ones), a server hosting any
// number of named store pairs (clear-text + encrypted), and clients that
// plug into the owner as a cloud.PlainBackend and into any technique as a
// technique.EncStore.
//
// Every request carries a client-assigned ID echoed by its response, so
// many calls can be in flight on one connection at once: the client runs
// a writer goroutine (frames requests in submission order) and a
// reader goroutine (demultiplexes responses by ID back to the waiting
// callers), and the server dispatches the ops decoded from one connection
// concurrently through a bounded worker pool, serialising only the
// response frames. Responses may therefore arrive in any order; ordering
// guarantees come from callers blocking on their own response, not from
// the transport. For CPU-bound encrypted scans a small connection pool
// (DialPool) spreads calls over several multiplexed connections.
//
// Namespaces: every request addresses a named store, so one cloud serves
// any number of independently keyed relations side by side (the
// multi-relation outsourcing model of the paper's successors). A
// connection is shared across namespaces — Client.WithStore / (*Pool).WithStore
// return per-namespace views implementing the full Backend surface — and
// the server keeps per-store state and per-store locks, so tenants never
// contend except on the transport itself.
//
// The protocol is versioned: the first message on every connection must
// be an opHello carrying ProtocolVersion, exchanged as plain gob exactly
// like earlier generations. A server refuses to dispatch anything before
// a matching hello (it answers with an explicit version-mismatch error
// instead of misrouting the op into a default namespace), and a client
// refuses to proceed against a server that cannot echo its version — so
// mixing protocol generations fails loudly at the first call rather than
// corrupting either side's stores. Only after a successful v3↔v3 hello do
// both directions switch to length-prefixed frames: the binary codec
// (codec.go) for hot ops, gob frames for the rest, with large row pulls
// streamed in bounded chunks (see frame.go).
//
// Reads come in batched flavours too: opEncFetchBatch serves one address
// list per query of a batched search in a single round trip, which is how
// Client/Pool satisfy technique.BatchEncStore and how a remote QueryBatch
// avoids paying one network latency per query.
//
// The control plane rides the same protocol: namespace lifecycle ops
// (list/stats/drop/compact) authenticated by a per-namespace owner token
// derived from the owner's master key (OwnerToken; the cloud stores only
// its hash, claimed by the namespace's first write), a Reconnector that
// survives transport failure by redialing, re-handshaking and replaying
// retained uploads exactly once, and two-level dispatch admission
// (per-connection plus per-namespace) so tenants sharing a connection
// cannot starve each other.
//
// The protocol deliberately mirrors what the paper's adversary observes:
// the clear-text side travels in the clear (the cloud owns that data
// anyway), while the encrypted side carries only ciphertexts, tokens and
// addresses. A production deployment would wrap the conn in TLS (the paper
// assumes a secure channel against eavesdroppers); that is orthogonal to
// the protocol.
package wire

import (
	"strings"

	"repro/internal/relation"
	"repro/internal/storage"
)

// ProtocolVersion is the wire protocol generation. Version 6 made the
// client mutation ops conditional: opPlainInsert and opEncAddBatch carry
// the length the writer expects the partition to hold (request.Have) and
// the server applies them only if it still does, so a mutation that races
// anti-entropy repair — a tail copy or snapshot restore landing between
// the writer learning the length and the write arriving — is refused
// cleanly instead of appending rows the repaired state already contains.
// It also added opRingRepair, the targeted repair trigger a writer uses
// to readmit a quarantined replica without waiting for the next sweep.
// Version 5 added the ring plane: the directory op a qbring coordinator
// serves (opRingDirectory) and the replication/repair ops between ring
// peers (opStoreInfo, opStoreSnapshot, opStoreRestore, opRepairAppend),
// the latter three guarded by a cluster-wide ring token. Version 4 added
// namespace version counters and the conditional column/row pulls built
// on them (opEncVersion, opEncAttrColumnIf, opEncRowsIf) plus the
// per-namespace admission override (opAdminSetWorkers); version 3
// introduced the framed transport (binary codec for hot ops, chunked row
// streaming) that both sides switch to after the hello; version 2
// introduced store namespaces and the mandatory hello handshake; version
// 1 (no handshake, single implicit store) is refused with an explicit
// error. The hello itself stays plain gob across generations, so any
// cross-generation skew fails with an explicit version error in both
// directions rather than unparseable frames.
const ProtocolVersion = 6

// DefaultStore is the namespace used when a request names none — the
// single implicit store of protocol v1, preserved so one-relation
// deployments need no configuration.
const DefaultStore = "default"

// op identifies a request type.
type op uint8

const (
	opPlainLoad op = iota + 1
	opPlainSearch
	opPlainSearchRange
	opPlainInsert
	opEncAdd
	opEncAddBatch
	opEncLen
	opEncAttrColumn
	opEncFetch
	opEncLookupToken
	opEncRows
	opPing
	// opEncFetchBatch serves a whole batch's bin fetches in one round
	// trip: one address list per query in, one row set per query out.
	opEncFetchBatch
	// opHello is the mandatory first frame on a connection: it carries
	// the client's ProtocolVersion and is echoed with the server's, so a
	// version skew fails the connection explicitly before any op can be
	// misrouted.
	opHello

	// Control-plane ops. opAdminList enumerates hosted namespaces (names
	// only — discovery needs no secret). The per-namespace ops are guarded
	// by the namespace's owner token (request.AdminToken): the cloud keeps
	// only a hash of the token, registered by the first tokened write to
	// the namespace, so only the data owner — who derives the token from
	// the master key — can inspect, destroy or compact an outsourced
	// partition.
	opAdminList
	opAdminStats
	opAdminDrop
	opAdminCompact

	// Version-validated caching ops (protocol v4). opEncVersion returns the
	// namespace's current storage.EncVersion. opEncAttrColumnIf and
	// opEncRowsIf are the conditional forms of opEncAttrColumn/opEncRows:
	// the request carries the version the client's cache was validated at
	// plus how many rows it holds, and the server answers with only the
	// missing suffix (delta) — an empty delta being a tiny not-modified
	// frame — or the full set when the epoch does not match.
	opEncVersion
	opEncAttrColumnIf
	opEncRowsIf

	// opAdminSetWorkers overrides the per-namespace admission bound
	// (-store-workers) for one namespace at runtime; owner-token-guarded
	// like the other per-namespace admin ops.
	opAdminSetWorkers

	// Ring plane (protocol v5). opRingDirectory asks a qbring coordinator
	// for the placement directory: the request's CondN carries the version
	// the client already holds, and the answer is either a tiny
	// not-modified frame (Delta=true) or the full directory as an opaque
	// gob blob plus its version. opStoreInfo is the cheap divergence probe
	// — existence, row counts and the (epoch, N) version of one namespace
	// on one node; it needs no secret, like opAdminList. The remaining
	// three move replica state between ring peers and are guarded by the
	// cluster's ring token (request.RingToken), a secret shared by the
	// nodes and the coordinator but never by tenants: opStoreSnapshot
	// exports one namespace as a self-contained snapshot blob,
	// opStoreRestore installs such a blob wholesale (the fresh/lagging-
	// node rejoin path), and opRepairAppend appends a tail delta of
	// encrypted rows with a compare-and-swap on the replica's current
	// length (the anti-entropy path).
	opRingDirectory
	opStoreInfo
	opStoreSnapshot
	opStoreRestore
	opRepairAppend

	// opRingRepair (protocol v6) asks a qbring coordinator to run one
	// targeted anti-entropy round for the named namespace right now,
	// bypassing the sweep's divergence grace window. It exists for the
	// write path: when a writer readmitting a quarantined replica finds it
	// still short, waiting out the background sweep interval would leave
	// reads pinned to stale replicas for seconds; a targeted repair closes
	// the gap in one round trip. Like opStoreInfo it needs no secret — it
	// can only trigger work the coordinator performs on its own schedule
	// anyway, and the repair transfer itself is still ring-token-guarded
	// node-side.
	opRingRepair
)

// request is the single wire request envelope; fields are populated
// according to Op.
type request struct {
	// ID is assigned by the client, unique per connection, and echoed in
	// the matching response so concurrent in-flight calls can share one
	// connection.
	ID uint64
	Op op

	// Store names the namespace the op addresses; empty selects
	// DefaultStore. Ignored by opHello/opPing.
	Store string

	// Version is the client's ProtocolVersion (opHello only).
	Version int

	// AdminToken carries the namespace's owner token. On write ops
	// (opPlainLoad/opPlainInsert/opEncAddBatch) it registers the owner on
	// first write; on per-namespace admin ops it authenticates the caller.
	AdminToken []byte

	// Clear-text store fields.
	Schema relation.Schema
	Tuples []relation.Tuple
	Attr   string
	Values []relation.Value
	Lo, Hi relation.Value
	Tuple  relation.Tuple

	// Encrypted store fields.
	TupleCT []byte
	AttrCT  []byte
	Token   []byte
	Batch   []EncUpload
	Addrs   []int
	// AddrBatches is one address list per query (opEncFetchBatch).
	AddrBatches [][]int

	// Conditional-pull fields (opEncAttrColumnIf/opEncRowsIf): the version
	// the client's cache was last validated at and how many rows it holds.
	// The mutation ops reuse Have as their length CAS: opEncAddBatch and
	// opPlainInsert apply only if the partition still holds exactly Have
	// rows/tuples, answering a stale-write error (see IsStaleWrite)
	// otherwise; Have < 0 applies unconditionally.
	CondEpoch uint64
	CondN     uint64
	Have      int

	// Workers is the per-namespace admission override (opAdminSetWorkers):
	// n > 0 bounds the namespace to n concurrent ops, 0 lifts the bound for
	// this namespace, and n < 0 clears the override back to the server-wide
	// default.
	Workers int

	// RingToken authenticates intra-ring repair ops (opStoreRestore,
	// opRepairAppend): the cluster secret shared by nodes and the
	// coordinator, independent of any tenant's owner token. Servers not
	// configured with a ring token refuse these ops outright.
	RingToken []byte

	// Blob carries an opaque payload: the namespace snapshot installed by
	// opStoreRestore. (opRepairAppend reuses Batch for its rows and Have
	// for the length CAS; opRingDirectory reuses CondN for the version the
	// client already holds.)
	Blob []byte
}

// EncUpload is one encrypted row in a batched upload.
type EncUpload struct {
	TupleCT []byte
	AttrCT  []byte
	Token   []byte
}

// response is the single wire response envelope.
type response struct {
	// ID echoes the request ID this response answers.
	ID     uint64
	Err    string
	Addr   int
	N      int
	Tuples []relation.Tuple
	Rows   []storage.EncRow
	Addrs  []int
	// RowBatches is one row set per requested address list
	// (opEncFetchBatch), indexed like request.AddrBatches.
	RowBatches [][]storage.EncRow
	// Version is the server's ProtocolVersion (opHello only).
	Version int
	// Names lists hosted namespaces (opAdminList).
	Names []string
	// Stats is one namespace's accounting (opAdminStats).
	Stats StoreStats

	// Version-counter fields (opEncVersion and the conditional pulls): the
	// namespace's current version, and whether Rows is a suffix delta
	// relative to request.Have (true) or a full resend (false). On chunked
	// responses these ride every chunk; the client keeps the first chunk's
	// values. opRingDirectory reuses VerN for the directory version and
	// Delta for "not modified, keep what you hold".
	VerEpoch uint64
	VerN     uint64
	Delta    bool

	// Blob carries an opaque payload out: the directory blob
	// (opRingDirectory) or a namespace snapshot (opStoreSnapshot).
	Blob []byte
	// Info is one namespace's replica state on this node (opStoreInfo).
	Info StoreInfo
}

// StoreInfo is the divergence probe's answer: what one node holds for one
// namespace. Replicas of a namespace never share an epoch (epochs are
// per-instance random), so divergence detection compares the row counts —
// within one epoch the encrypted column is append-only, making "same
// length" equivalent to "same content" for replicas fed the same write
// stream in the same order.
type StoreInfo struct {
	// Exists reports whether the node hosts the namespace at all; the
	// probe never creates it.
	Exists bool
	// PlainTuples counts the clear-text partition's tuples (-1 when no
	// relation is loaded), EncRows the encrypted partition's rows.
	PlainTuples int
	EncRows     int
	// VerEpoch/VerN is the encrypted store's (epoch, N) version.
	VerEpoch uint64
	VerN     uint64
	// Claimed reports whether the namespace is owner-claimed.
	Claimed bool
}

// staleWriteMark prefixes every server-side stale-write rejection so the
// condition survives the string-typed error channel of the protocol.
const staleWriteMark = "wire: stale write"

// IsStaleWrite reports whether err is a server's rejection of a
// conditional mutation (opPlainInsert/opEncAddBatch with Have >= 0) whose
// expected length no longer matched. Nothing was applied: the server's
// partition moved underneath the writer — anti-entropy repair caught the
// replica up, or another writer shares the namespace — so the addresses
// the writer computed can no longer be honoured and it must re-learn the
// length before writing again. A ring client treats the refusing replica
// exactly like one that missed the write: quarantined until repair
// restores parity.
func IsStaleWrite(err error) bool {
	return err != nil && strings.Contains(err.Error(), staleWriteMark)
}

// storeName canonicalises a request's namespace.
func storeName(s string) string {
	if s == "" {
		return DefaultStore
	}
	return s
}
