// Package wire implements a minimal owner↔cloud network protocol so the
// untrusted cloud can run as a separate process: gob-framed
// request/response messages over any net.Conn, a server hosting the
// clear-text store and the encrypted store, and a client that plugs into
// the owner as a cloud.PlainBackend and into any technique as a
// technique.EncStore.
//
// The protocol deliberately mirrors what the paper's adversary observes:
// the clear-text side travels in the clear (the cloud owns that data
// anyway), while the encrypted side carries only ciphertexts, tokens and
// addresses. A production deployment would wrap the conn in TLS (the paper
// assumes a secure channel against eavesdroppers); that is orthogonal to
// the protocol.
package wire

import (
	"repro/internal/relation"
	"repro/internal/storage"
)

// op identifies a request type.
type op uint8

const (
	opPlainLoad op = iota + 1
	opPlainSearch
	opPlainSearchRange
	opPlainInsert
	opEncAdd
	opEncAddBatch
	opEncLen
	opEncAttrColumn
	opEncFetch
	opEncLookupToken
	opEncRows
	opPing
)

// request is the single wire request envelope; fields are populated
// according to Op.
type request struct {
	Op op

	// Clear-text store fields.
	Schema relation.Schema
	Tuples []relation.Tuple
	Attr   string
	Values []relation.Value
	Lo, Hi relation.Value
	Tuple  relation.Tuple

	// Encrypted store fields.
	TupleCT []byte
	AttrCT  []byte
	Token   []byte
	Batch   []EncUpload
	Addrs   []int
}

// EncUpload is one encrypted row in a batched upload.
type EncUpload struct {
	TupleCT []byte
	AttrCT  []byte
	Token   []byte
}

// response is the single wire response envelope.
type response struct {
	Err    string
	Addr   int
	N      int
	Tuples []relation.Tuple
	Rows   []storage.EncRow
	Addrs  []int
}
