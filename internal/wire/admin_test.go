package wire

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/relation"
)

// startCloudOn spins the given cloud up on a loopback listener and returns
// a connected client.
func startCloudOn(t *testing.T, cl *Cloud) *Client {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = cl.Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// loadTenant writes a small relation plus encrypted rows into a namespace
// through a tokened view, claiming it for master.
func loadTenant(t *testing.T, c *Client, store string, master []byte) *StoreClient {
	t.Helper()
	v := c.WithStore(store)
	v.SetAdminToken(OwnerToken(master, store))
	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	for i := 0; i < 8; i++ {
		rel.MustInsert(relation.Int(int64(i)))
	}
	if err := v.Load(rel, "K"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		v.Add([]byte{byte(i)}, nil, []byte("tok"))
	}
	if err := v.Flush(); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestOwnerTokenDerivation: tokens are deterministic per (key, store),
// distinct across stores and keys, and "" canonicalises to DefaultStore.
func TestOwnerTokenDerivation(t *testing.T) {
	a := OwnerToken([]byte("master"), "s1")
	if !bytes.Equal(a, OwnerToken([]byte("master"), "s1")) {
		t.Fatal("token not deterministic")
	}
	if bytes.Equal(a, OwnerToken([]byte("master"), "s2")) {
		t.Fatal("token does not depend on the store name")
	}
	if bytes.Equal(a, OwnerToken([]byte("other"), "s1")) {
		t.Fatal("token does not depend on the master key")
	}
	if !bytes.Equal(OwnerToken([]byte("master"), ""), OwnerToken([]byte("master"), DefaultStore)) {
		t.Fatal(`"" and DefaultStore derive different tokens`)
	}
}

// TestAdminOpsRequireOwnerToken is the acceptance property, both
// directions: drop/compact/stats succeed with the namespace's owner token
// and are refused without it (wrong key, no key, unclaimed namespace,
// unknown namespace).
func TestAdminOpsRequireOwnerToken(t *testing.T) {
	c := startCloudOn(t, NewCloud())
	master := []byte("owner master key")
	loadTenant(t, c, "tenant", master)
	good := OwnerToken(master, "tenant")
	bad := OwnerToken([]byte("attacker key"), "tenant")

	// Wrong token: every per-namespace op refused.
	if _, err := c.AdminStats("tenant", bad); err == nil || !strings.Contains(err.Error(), "token mismatch") {
		t.Fatalf("stats with wrong token: %v", err)
	}
	if _, err := c.AdminCompact("tenant", bad); err == nil || !strings.Contains(err.Error(), "token mismatch") {
		t.Fatalf("compact with wrong token: %v", err)
	}
	if err := c.AdminDrop("tenant", bad); err == nil || !strings.Contains(err.Error(), "token mismatch") {
		t.Fatalf("drop with wrong token: %v", err)
	}
	// No token at all.
	if err := c.AdminDrop("tenant", nil); err == nil {
		t.Fatal("drop with no token succeeded")
	}
	// The data survived every refusal.
	if n := c.WithStore("tenant").Len(); n != 5 {
		t.Fatalf("enc rows after refused admin ops = %d, want 5", n)
	}

	// Right token: stats, compact, then drop.
	s, err := c.AdminStats("tenant", good)
	if err != nil {
		t.Fatal(err)
	}
	if s.PlainTuples != 8 || s.EncRows != 5 || s.Ops == 0 {
		t.Fatalf("stats = %+v", s)
	}
	if n, err := c.AdminCompact("tenant", good); err != nil || n != 5 {
		t.Fatalf("compact = %d, %v; want 5, nil", n, err)
	}
	if got := c.WithStore("tenant").LookupToken([]byte("tok")); len(got) != 5 {
		t.Fatalf("token index broken after compact: %v", got)
	}
	if err := c.AdminDrop("tenant", good); err != nil {
		t.Fatal(err)
	}
	if n := c.WithStore("tenant").Len(); n != 0 {
		t.Fatalf("enc rows after drop = %d, want 0", n)
	}
	// Dropping again: the namespace was re-created empty (and unclaimed)
	// by the Len probe above, so the old owner no longer holds it either.
	if err := c.AdminDrop("tenant", good); err == nil || !strings.Contains(err.Error(), "no registered owner") {
		t.Fatalf("drop of unclaimed recreated namespace: %v", err)
	}
	// Unknown namespace.
	if err := c.AdminDrop("never-existed", good); err == nil || !strings.Contains(err.Error(), "unknown store") {
		t.Fatalf("drop of unknown namespace: %v", err)
	}
}

// TestAdminFirstWriteClaims: the first tokened write wins; a second
// writer with a different key cannot take over, and an untokened write
// claims nothing.
func TestAdminFirstWriteClaims(t *testing.T) {
	c := startCloudOn(t, NewCloud())
	loadTenant(t, c, "claimed", []byte("first owner"))

	// A second writer with a different key is refused outright: once a
	// namespace is claimed, data-plane writes are gated by the owner token
	// just like the control plane, and a mismatched token cannot steal the
	// claim either.
	v2 := c.WithStore("claimed")
	v2.SetAdminToken(OwnerToken([]byte("second owner"), "claimed"))
	err := v2.Insert(relation.Tuple{ID: 99, Values: []relation.Value{relation.Int(42)}})
	if err == nil || !strings.Contains(err.Error(), "owner token mismatch") {
		t.Fatalf("second writer's insert = %v, want owner-token refusal", err)
	}
	if err := c.AdminDrop("claimed", OwnerToken([]byte("second owner"), "claimed")); err == nil {
		t.Fatal("second writer stole the namespace")
	}
	if _, err := c.AdminStats("claimed", OwnerToken([]byte("first owner"), "claimed")); err != nil {
		t.Fatalf("first owner lost the namespace: %v", err)
	}

	// Untokened writes leave the namespace unclaimed.
	v3 := c.WithStore("unclaimed")
	v3.Add([]byte("ct"), nil, nil)
	if err := v3.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AdminStats("unclaimed", OwnerToken([]byte("anyone"), "unclaimed")); err == nil ||
		!strings.Contains(err.Error(), "no registered owner") {
		t.Fatalf("stats on unclaimed namespace: %v", err)
	}
}

// TestAdminList: discovery needs no token and sees every namespace.
func TestAdminList(t *testing.T) {
	c := startCloudOn(t, NewCloud())
	loadTenant(t, c, "b-tenant", []byte("kb"))
	loadTenant(t, c, "a-tenant", []byte("ka"))
	names, err := c.AdminList()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"a-tenant", "b-tenant"}) {
		t.Fatalf("AdminList = %v", names)
	}
}

// TestOwnerHashSurvivesSnapshot: a restored cloud still knows its owners —
// the token hash rides the snapshot — so admin rights survive a restart,
// and still exclude everyone else.
func TestOwnerHashSurvivesSnapshot(t *testing.T) {
	cl := NewCloud()
	c := startCloudOn(t, cl)
	master := []byte("snapshot owner")
	loadTenant(t, c, "tenant", master)

	var buf bytes.Buffer
	if err := cl.Save(&buf); err != nil {
		t.Fatal(err)
	}
	cl2 := NewCloud()
	if err := cl2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	c2 := startCloudOn(t, cl2)
	if err := c2.AdminDrop("tenant", OwnerToken([]byte("not the owner"), "tenant")); err == nil {
		t.Fatal("restored cloud accepted a foreign token")
	}
	if _, err := c2.AdminStats("tenant", OwnerToken(master, "tenant")); err != nil {
		t.Fatalf("restored cloud refused the real owner: %v", err)
	}
}

// TestDropIsolatesSiblings: dropping one namespace leaves its siblings
// fully intact.
func TestDropIsolatesSiblings(t *testing.T) {
	c := startCloudOn(t, NewCloud())
	loadTenant(t, c, "keep", []byte("keep key"))
	loadTenant(t, c, "kill", []byte("kill key"))
	if err := c.AdminDrop("kill", OwnerToken([]byte("kill key"), "kill")); err != nil {
		t.Fatal(err)
	}
	v := c.WithStore("keep")
	if n := v.Len(); n != 5 {
		t.Fatalf("sibling enc rows = %d, want 5", n)
	}
	if got := v.Search([]relation.Value{relation.Int(3)}); len(got) != 1 {
		t.Fatalf("sibling plain search = %v", got)
	}
}

// TestWriteAdmissionGate is the tenant-isolation property for every
// write-path op: once tenant A's first tokened write claims a namespace,
// tenant B can append or load nothing into it — not with a missing token,
// not with a token derived from a different key — while A's own writes
// keep working and an unclaimed namespace stays open to tokenless writers.
func TestWriteAdmissionGate(t *testing.T) {
	cl := NewCloud()
	cA := startCloudOn(t, cl)
	a := loadTenant(t, cA, "claimed", []byte("key A")) // claims the namespace

	mkRel := func(vals ...int64) *relation.Relation {
		rel := relation.New(relation.MustSchema("T",
			relation.Column{Name: "K", Kind: relation.KindInt},
		))
		for _, v := range vals {
			rel.MustInsert(relation.Int(v))
		}
		return rel
	}

	// Every write-path op (opEncAdd via the batched flush, opPlainInsert,
	// opPlainLoad), each driven through its own fresh connection so one
	// refusal's client-side state cannot mask another, for both a missing
	// token and a wrong-key token.
	attacks := []struct {
		name string
		run  func(v *StoreClient) error
	}{
		{"enc-add", func(v *StoreClient) error {
			v.Add([]byte("intruder"), nil, nil)
			return v.Flush()
		}},
		{"plain-insert", func(v *StoreClient) error {
			return v.Insert(relation.Tuple{ID: 999, Values: []relation.Value{relation.Int(77)}})
		}},
		{"plain-load", func(v *StoreClient) error {
			return v.Load(mkRel(666), "K")
		}},
	}
	tokens := []struct {
		name string
		tok  []byte
	}{
		{"no-token", nil},
		{"wrong-key", OwnerToken([]byte("key B"), "claimed")},
	}
	for _, tk := range tokens {
		for _, atk := range attacks {
			t.Run(tk.name+"/"+atk.name, func(t *testing.T) {
				v := startCloudOn(t, cl).WithStore("claimed")
				v.SetAdminToken(tk.tok)
				err := atk.run(v)
				if err == nil || !strings.Contains(err.Error(), "refused") {
					t.Fatalf("%s with %s = %v, want write refusal", atk.name, tk.name, err)
				}
			})
		}
	}

	// Nothing leaked into tenant A's namespace, and A keeps writing.
	if n := a.Len(); n != 5 {
		t.Fatalf("enc rows after refused writes = %d, want 5", n)
	}
	if got := a.Search([]relation.Value{relation.Int(77)}); len(got) != 0 {
		t.Fatalf("intruder tuple visible: %v", got)
	}
	if addr := a.Add([]byte("more"), nil, nil); addr != 5 {
		t.Fatalf("owner Add = %d", addr)
	}
	if err := a.Flush(); err != nil {
		t.Fatalf("owner flush after refusals: %v", err)
	}
	if err := a.Insert(relation.Tuple{ID: 100, Values: []relation.Value{relation.Int(1)}}); err != nil {
		t.Fatalf("owner insert after refusals: %v", err)
	}

	// An unclaimed namespace still accepts tokenless writes (the open
	// single-tenant mode), and a tokenless writer cannot be locked out
	// retroactively by its own earlier writes.
	open := startCloudOn(t, cl).WithStore("open")
	if err := open.Load(mkRel(1, 2, 3), "K"); err != nil {
		t.Fatalf("tokenless load into unclaimed namespace: %v", err)
	}
	open.Add([]byte("ct"), nil, nil)
	if err := open.Flush(); err != nil {
		t.Fatalf("tokenless flush into unclaimed namespace: %v", err)
	}
}
