package wire

import "time"

// Clock abstracts the two time operations the wire package performs —
// reading the wall clock and waiting — so reconnect-backoff behavior is
// testable without sleeping wall-time. Production code uses the package
// default (the real clock); tests inject a fake whose After channels they
// fire by hand.
//
// This file is the only one in internal/wire allowed to touch the time
// package directly; the nakedclock analyzer in cmd/qbvet enforces that.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// After returns a channel that delivers the time after d elapses.
	After(d time.Duration) <-chan time.Time
}

// realClock is the production Clock: plain time package calls.
type realClock struct{}

func (realClock) Now() time.Time                         { return time.Now() }
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the production Clock backed by the time package.
func RealClock() Clock { return realClock{} }
