package wire

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cloud"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/technique"
)

// Backend is the owner-side view of a remote cloud: cloud.PlainBackend
// plus technique.BatchEncStore (the encrypted store including the batched
// read path) plus the lifecycle and error surface. Both *Client (one
// multiplexed connection) and *Pool (several) implement it, so callers can
// pick connection-level parallelism without changing anything else.
type Backend interface {
	cloud.PlainBackend
	technique.BatchEncStore

	// Lifecycle and errors.
	Ping() error
	Flush() error
	Err() error
	LogicalErr() error
	LogicalErrCount() uint64
	Close() error
}

var (
	_ Backend = (*Client)(nil)
	_ Backend = (*Pool)(nil)
)

// Pool fans calls out over several multiplexed connections to the same
// cloud. A single connection already supports unbounded in-flight calls,
// but its frames share one gob stream and one server-side decode loop;
// for CPU-bound encrypted scans a few extra connections let the server
// decode, dispatch and encode in parallel.
//
// All mutating state lives on the primary connection (conns[0]): the
// encrypted upload buffer and its client-side address arithmetic cannot
// be split across connections. Read ops round-robin; ops that read the
// encrypted store flush the primary first so buffered uploads are visible
// regardless of which connection serves the read. Blocking call semantics
// make this safe: an op's server-side effect completes before the call
// returns, and the stores are shared across connections.
type Pool struct {
	conns []*Client
	next  atomic.Uint64
}

// DialPool connects n multiplexed connections to the cloud at addr.
// n <= 1 degrades to a pool over a single connection.
func DialPool(addr string, n int) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	conns := make([]*Client, 0, n)
	for i := 0; i < n; i++ {
		c, err := Dial(addr)
		if err != nil {
			for _, open := range conns {
				open.Close()
			}
			return nil, fmt.Errorf("wire: dial pool conn %d/%d: %w", i+1, n, err)
		}
		conns = append(conns, c)
	}
	return NewPool(conns), nil
}

// NewPool wraps established clients (e.g. net.Pipe pairs in tests) into a
// pool. It panics on an empty slice.
func NewPool(conns []*Client) *Pool {
	if len(conns) == 0 {
		panic("wire: NewPool with no connections")
	}
	return &Pool{conns: conns}
}

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.conns) }

// primary is the designated connection for mutating ops.
func (p *Pool) primary() *Client { return p.conns[0] }

// pick round-robins across all connections for read ops, skipping
// poisoned ones: a dead secondary must not keep swallowing reads as
// silent zero values while the rest of the pool works. With every
// connection poisoned it falls back to the primary, whose fail-fast
// errors surface the cause.
func (p *Pool) pick() *Client {
	n := uint64(len(p.conns))
	start := p.next.Add(1)
	for i := uint64(0); i < n; i++ {
		if c := p.conns[(start+i)%n]; c.stickyErr() == nil {
			return c
		}
	}
	return p.primary()
}

// flushPrimary makes buffered encrypted uploads durable before a read
// that may be served by another connection. The no-pending fast path is a
// single mutex acquisition.
func (p *Pool) flushPrimary() error { return p.primary().Flush() }

// Close closes every connection, returning the first error.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ping checks liveness of every pooled connection.
func (p *Pool) Ping() error {
	for _, c := range p.conns {
		if err := c.Ping(); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the primary connection's sticky transport error. A dead
// secondary is degradation, not failure — writes never touch it and
// pick() routes reads around it — so it must not permanently fail an
// otherwise healthy pool. Ops that failed on a secondary before the
// routing kicked in are observable through LogicalErr/LogicalErrCount,
// and the capacity loss through Alive.
func (p *Pool) Err() error { return p.primary().Err() }

// Alive reports how many pooled connections are not poisoned.
func (p *Pool) Alive() int {
	n := 0
	for _, c := range p.conns {
		if c.stickyErr() == nil {
			n++
		}
	}
	return n
}

// LogicalErr returns the first recorded per-op error across the pool.
func (p *Pool) LogicalErr() error {
	for _, c := range p.conns {
		if err := c.LogicalErr(); err != nil {
			return err
		}
	}
	return nil
}

// LogicalErrCount sums the per-op error counts across the pool, so a
// bracketed window observes a silent failure on any connection.
func (p *Pool) LogicalErrCount() uint64 {
	var n uint64
	for _, c := range p.conns {
		n += c.LogicalErrCount()
	}
	return n
}

// --- cloud.PlainBackend -----------------------------------------------

// Load ships the clear-text partition through the primary connection.
func (p *Pool) Load(rns *relation.Relation, attr string) error {
	return p.primary().Load(rns, attr)
}

// Search round-robins across connections.
func (p *Pool) Search(values []relation.Value) []relation.Tuple {
	return p.pick().Search(values)
}

// SearchRange round-robins across connections.
func (p *Pool) SearchRange(lo, hi relation.Value) []relation.Tuple {
	return p.pick().SearchRange(lo, hi)
}

// Insert goes through the primary connection.
func (p *Pool) Insert(t relation.Tuple) error {
	return p.primary().Insert(t)
}

// --- technique.EncStore -------------------------------------------------

// Add buffers on the primary connection, which owns the client-side
// address arithmetic.
func (p *Pool) Add(tupleCT, attrCT, token []byte) int {
	return p.primary().Add(tupleCT, attrCT, token)
}

// Flush uploads the primary connection's pending rows.
func (p *Pool) Flush() error { return p.flushPrimary() }

// Len round-robins after flushing pending uploads.
func (p *Pool) Len() int {
	if err := p.flushPrimary(); err != nil {
		p.primary().noteLogical(err)
		return 0
	}
	return p.pick().Len()
}

// AttrColumn round-robins after flushing pending uploads.
func (p *Pool) AttrColumn() []storage.EncRow {
	if err := p.flushPrimary(); err != nil {
		p.primary().noteLogical(err)
		return nil
	}
	return p.pick().AttrColumn()
}

// Fetch round-robins after flushing pending uploads.
func (p *Pool) Fetch(addrs []int) ([]storage.EncRow, error) {
	if err := p.flushPrimary(); err != nil {
		return nil, err
	}
	return p.pick().Fetch(addrs)
}

// FetchBatch round-robins after flushing pending uploads.
func (p *Pool) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	if err := p.flushPrimary(); err != nil {
		return nil, err
	}
	return p.pick().FetchBatch(addrBatches)
}

// LookupToken round-robins after flushing pending uploads.
func (p *Pool) LookupToken(tok []byte) []int {
	if err := p.flushPrimary(); err != nil {
		p.primary().noteLogical(err)
		return nil
	}
	return p.pick().LookupToken(tok)
}

// Rows round-robins after flushing pending uploads.
func (p *Pool) Rows() []storage.EncRow {
	if err := p.flushPrimary(); err != nil {
		p.primary().noteLogical(err)
		return nil
	}
	return p.pick().Rows()
}
