package wire

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/cloud"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/technique"
)

// Backend is the owner-side view of a remote cloud namespace:
// cloud.PlainBackend plus technique.BatchEncStore (the encrypted store
// including the batched read path) plus the lifecycle and error surface.
// *Client (one multiplexed connection), *Pool (several), and the
// per-namespace views both hand out (*StoreClient, *PoolStore) all
// implement it, so callers can pick connection-level parallelism and
// namespacing without changing anything else.
type Backend interface {
	cloud.PlainBackend
	technique.BatchEncStore
	technique.VersionedEncStore

	// Lifecycle and errors.
	Ping() error
	Flush() error
	Err() error
	LogicalErr() error
	LogicalErrCount() uint64
	Close() error

	// SetAdminToken attaches the namespace's control-plane owner token
	// (see OwnerToken): writes carry it so the first write claims the
	// namespace for the owner.
	SetAdminToken(tok []byte)
}

// Transport is a shared connection (or connection pool) to one cloud from
// which per-namespace Backend views are derived. It is what a process
// serving several relations holds once and shares.
type Transport interface {
	// Store returns the Backend view of the named namespace ("" selects
	// DefaultStore). The same name always yields the same view.
	Store(name string) Backend
	// Ping checks liveness (performing the handshake if needed).
	Ping() error
	// Close tears down the transport and every view derived from it.
	Close() error
}

var (
	_ Backend   = (*Client)(nil)
	_ Backend   = (*Pool)(nil)
	_ Backend   = (*StoreClient)(nil)
	_ Backend   = (*PoolStore)(nil)
	_ Transport = (*Client)(nil)
	_ Transport = (*Pool)(nil)
	_ poolConn  = (*Client)(nil)
	_ poolConn  = (*Reconnector)(nil)
)

// poolConn is what the Pool needs from each pooled transport: the
// per-namespace Backend factory, liveness, and the shared logical-error
// record. Both *Client (fail-fast; poisoned by its first transport error)
// and *Reconnector (self-healing; unhealthy only after a permanent
// failure) satisfy it, so pools compose with reconnecting transports —
// each pooled Reconnector redials its own connection and migrates its own
// namespaces' upload buffers, while the rest of the pool keeps serving.
type poolConn interface {
	Store(name string) Backend
	Ping() error
	Close() error
	Err() error
	LogicalErr() error
	LogicalErrCount() uint64

	// healthy reports whether reads should be routed here.
	healthy() bool
	// noteLogical records a per-op error a void method swallowed.
	noteLogical(err error)
}

// Pool fans calls out over several multiplexed connections to the same
// cloud. A single connection already supports unbounded in-flight calls,
// but its frames share one gob stream and one server-side decode loop;
// for CPU-bound encrypted scans a few extra connections let the server
// decode, dispatch and encode in parallel.
//
// Mutating state is per namespace, pinned per store rather than per pool:
// each namespace view (WithStore) is assigned a home connection in
// round-robin order, and that connection owns the namespace's encrypted
// upload buffer and client-side address arithmetic. Two tenants writing
// through one pool therefore use two different connections instead of
// serialising on a single primary. Read ops round-robin across every
// connection; ops that read the encrypted store flush the namespace's
// home first so buffered uploads are visible regardless of which
// connection serves the read. Blocking call semantics make this safe: an
// op's server-side effect completes before the call returns, and the
// stores are shared across connections.
//
// The Pool's own Backend methods are the DefaultStore view's, whose home
// is the first connection — the exact single-store behaviour of earlier
// protocol generations.
type Pool struct {
	conns []poolConn
	next  atomic.Uint64

	storeMu  sync.Mutex
	stores   map[string]*PoolStore
	nextHome int
	def      *PoolStore
}

// DialPool connects n multiplexed connections to the cloud at addr.
// n <= 1 degrades to a pool over a single connection.
func DialPool(addr string, n int) (*Pool, error) {
	return dialPool(n, func() (poolConn, error) { return Dial(addr) })
}

// DialReconnectPool is DialPool over reconnecting transports: n
// independent Reconnectors to the cloud at addr, composed into one Pool.
// Each pooled Reconnector redials its own connection on failure and
// migrates the upload buffers of the namespaces homed on it, so one
// connection's death stalls only the ops routed to it mid-cycle — the
// rest of the pool keeps serving. This is what lifts the old
// Reconnect-xor-pool restriction.
func DialReconnectPool(addr string, n int, opts ReconnectOptions) (*Pool, error) {
	return dialPool(n, func() (poolConn, error) { return DialReconnect(addr, opts) })
}

func dialPool(n int, dial func() (poolConn, error)) (*Pool, error) {
	if n < 1 {
		n = 1
	}
	conns := make([]poolConn, 0, n)
	for i := 0; i < n; i++ {
		c, err := dial()
		if err != nil {
			for _, open := range conns {
				open.Close()
			}
			return nil, fmt.Errorf("wire: dial pool conn %d/%d: %w", i+1, n, err)
		}
		conns = append(conns, c)
	}
	return newPool(conns), nil
}

// NewPool wraps established clients (e.g. net.Pipe pairs in tests) into a
// pool. It panics on an empty slice.
func NewPool(conns []*Client) *Pool {
	pcs := make([]poolConn, len(conns))
	for i, c := range conns {
		pcs[i] = c
	}
	return newPool(pcs)
}

// NewReconnectPool composes established Reconnectors (e.g. over net.Pipe
// dialers in tests) into a pool.
func NewReconnectPool(conns []*Reconnector) *Pool {
	pcs := make([]poolConn, len(conns))
	for i, c := range conns {
		pcs[i] = c
	}
	return newPool(pcs)
}

func newPool(conns []poolConn) *Pool {
	if len(conns) == 0 {
		panic("wire: NewPool with no connections")
	}
	p := &Pool{conns: conns, stores: make(map[string]*PoolStore)}
	// The default namespace is created first so its home is conns[0] —
	// the "writes pinned to the primary" behaviour single-store callers
	// have always seen.
	p.def = p.WithStore(DefaultStore)
	return p
}

// WithStore returns the view of the named server-side namespace ("" means
// DefaultStore), assigning it a home connection for mutations in
// round-robin order on first use. The same name always yields the same
// view.
func (p *Pool) WithStore(name string) *PoolStore {
	name = storeName(name)
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	if s, ok := p.stores[name]; ok {
		return s
	}
	conn := p.conns[p.nextHome%len(p.conns)]
	p.nextHome++
	s := &PoolStore{p: p, conn: conn, home: conn.Store(name), name: name}
	p.stores[name] = s
	return s
}

// Store implements Transport: the Backend view of one namespace.
func (p *Pool) Store(name string) Backend { return p.WithStore(name) }

// Size reports the number of pooled connections.
func (p *Pool) Size() int { return len(p.conns) }

// primary is the first connection: home of the default namespace and the
// pool's liveness bellwether.
func (p *Pool) primary() poolConn { return p.conns[0] }

// pick round-robins across all connections for read ops, skipping
// unhealthy ones: a dead secondary must not keep swallowing reads as
// silent zero values while the rest of the pool works. With every
// connection unhealthy it falls back to the primary, whose fail-fast
// errors surface the cause.
func (p *Pool) pick() poolConn {
	n := uint64(len(p.conns))
	start := p.next.Add(1)
	for i := uint64(0); i < n; i++ {
		if c := p.conns[(start+i)%n]; c.healthy() {
			return c
		}
	}
	return p.primary()
}

// Close closes every connection, returning the first error.
func (p *Pool) Close() error {
	var first error
	for _, c := range p.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Ping checks liveness of every pooled connection.
func (p *Pool) Ping() error {
	for _, c := range p.conns {
		if err := c.Ping(); err != nil {
			return err
		}
	}
	return nil
}

// Err returns the primary connection's sticky transport error. A dead
// secondary is degradation, not failure — default-store writes never
// touch it and pick() routes reads around it — so it must not permanently
// fail an otherwise healthy pool. Ops that failed on a secondary before
// the routing kicked in are observable through LogicalErr/LogicalErrCount
// (and a namespace homed on the dead connection through its view's Err),
// and the capacity loss through Alive.
func (p *Pool) Err() error { return p.primary().Err() }

// Alive reports how many pooled connections are healthy (not poisoned;
// for reconnecting members, not permanently failed).
func (p *Pool) Alive() int {
	n := 0
	for _, c := range p.conns {
		if c.healthy() {
			n++
		}
	}
	return n
}

// LogicalErr returns the first recorded per-op error across the pool.
func (p *Pool) LogicalErr() error {
	for _, c := range p.conns {
		if err := c.LogicalErr(); err != nil {
			return err
		}
	}
	return nil
}

// LogicalErrCount sums the per-op error counts across the pool, so a
// bracketed window observes a silent failure on any connection.
func (p *Pool) LogicalErrCount() uint64 {
	var n uint64
	for _, c := range p.conns {
		n += c.LogicalErrCount()
	}
	return n
}

// --- default-store Backend surface --------------------------------------

// SetAdminToken attaches the default store's owner token.
func (p *Pool) SetAdminToken(tok []byte) { p.def.SetAdminToken(tok) }

// Load ships the clear-text partition through the default store's home.
func (p *Pool) Load(rns *relation.Relation, attr string) error { return p.def.Load(rns, attr) }

// Search round-robins across connections.
func (p *Pool) Search(values []relation.Value) []relation.Tuple { return p.def.Search(values) }

// SearchRange round-robins across connections.
func (p *Pool) SearchRange(lo, hi relation.Value) []relation.Tuple {
	return p.def.SearchRange(lo, hi)
}

// Insert goes through the default store's home connection.
func (p *Pool) Insert(t relation.Tuple) error { return p.def.Insert(t) }

// Add buffers on the default store's home connection, which owns its
// address arithmetic.
func (p *Pool) Add(tupleCT, attrCT, token []byte) int { return p.def.Add(tupleCT, attrCT, token) }

// Flush uploads the default store's pending rows.
func (p *Pool) Flush() error { return p.def.Flush() }

// Len round-robins after flushing pending uploads.
func (p *Pool) Len() int { return p.def.Len() }

// AttrColumn round-robins after flushing pending uploads.
func (p *Pool) AttrColumn() []storage.EncRow { return p.def.AttrColumn() }

// Fetch round-robins after flushing pending uploads.
func (p *Pool) Fetch(addrs []int) ([]storage.EncRow, error) { return p.def.Fetch(addrs) }

// FetchBatch round-robins after flushing pending uploads.
func (p *Pool) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	return p.def.FetchBatch(addrBatches)
}

// LookupToken round-robins after flushing pending uploads.
func (p *Pool) LookupToken(tok []byte) []int { return p.def.LookupToken(tok) }

// Rows round-robins after flushing pending uploads.
func (p *Pool) Rows() []storage.EncRow { return p.def.Rows() }

// EncVersion round-robins after flushing pending uploads.
func (p *Pool) EncVersion() (storage.EncVersion, error) { return p.def.EncVersion() }

// AttrColumnSince round-robins after flushing pending uploads.
func (p *Pool) AttrColumnSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	return p.def.AttrColumnSince(v, have)
}

// RowsSince round-robins after flushing pending uploads.
func (p *Pool) RowsSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	return p.def.RowsSince(v, have)
}

// --- PoolStore ----------------------------------------------------------

// PoolStore is one namespace's view of a pool: mutations go through the
// namespace's home connection (which owns its upload buffer), reads
// round-robin across every connection after flushing the home so buffered
// uploads are visible wherever the read lands.
type PoolStore struct {
	p    *Pool
	conn poolConn // the pinned home connection
	home Backend  // the pinned connection's view of this namespace
	name string
}

// StoreName returns the namespace this view addresses.
func (s *PoolStore) StoreName() string { return s.name }

// Home exposes the pinned connection's view (tests assert the pinning).
func (s *PoolStore) Home() Backend { return s.home }

// read picks a connection for a read op, making this namespace's buffered
// uploads durable first. The no-pending fast path is a single mutex
// acquisition on the home view.
func (s *PoolStore) read() (Backend, error) {
	if err := s.home.Flush(); err != nil {
		return nil, err
	}
	return s.p.pick().Store(s.name), nil
}

// Ping checks liveness of every pooled connection.
func (s *PoolStore) Ping() error { return s.p.Ping() }

// Err returns this namespace's home-connection sticky transport error:
// the connection its writes depend on.
func (s *PoolStore) Err() error { return s.home.Err() }

// LogicalErr returns the first recorded per-op error across the pool
// (reads round-robin, so any connection may have swallowed this
// namespace's error).
func (s *PoolStore) LogicalErr() error { return s.p.LogicalErr() }

// LogicalErrCount sums the per-op error counts across the pool.
func (s *PoolStore) LogicalErrCount() uint64 { return s.p.LogicalErrCount() }

// Close closes the SHARED pool: every namespace view dies with it.
func (s *PoolStore) Close() error { return s.p.Close() }

// SetAdminToken attaches the owner token to the home connection's view —
// the one this namespace's writes (which carry the token) go through.
func (s *PoolStore) SetAdminToken(tok []byte) { s.home.SetAdminToken(tok) }

// Load ships the clear-text partition through the home connection.
func (s *PoolStore) Load(rns *relation.Relation, attr string) error {
	return s.home.Load(rns, attr)
}

// Search round-robins across connections.
func (s *PoolStore) Search(values []relation.Value) []relation.Tuple {
	v, err := s.read()
	if err != nil {
		s.conn.noteLogical(err)
		return nil
	}
	return v.Search(values)
}

// SearchRange round-robins across connections.
func (s *PoolStore) SearchRange(lo, hi relation.Value) []relation.Tuple {
	v, err := s.read()
	if err != nil {
		s.conn.noteLogical(err)
		return nil
	}
	return v.SearchRange(lo, hi)
}

// Insert goes through the home connection.
func (s *PoolStore) Insert(t relation.Tuple) error { return s.home.Insert(t) }

// Add buffers on the home connection, which owns this namespace's address
// arithmetic.
func (s *PoolStore) Add(tupleCT, attrCT, token []byte) int {
	return s.home.Add(tupleCT, attrCT, token)
}

// Flush uploads this namespace's pending rows through its home.
func (s *PoolStore) Flush() error { return s.home.Flush() }

// Len round-robins after flushing pending uploads.
func (s *PoolStore) Len() int {
	v, err := s.read()
	if err != nil {
		s.conn.noteLogical(err)
		return 0
	}
	return v.Len()
}

// AttrColumn round-robins after flushing pending uploads.
func (s *PoolStore) AttrColumn() []storage.EncRow {
	v, err := s.read()
	if err != nil {
		s.conn.noteLogical(err)
		return nil
	}
	return v.AttrColumn()
}

// Fetch round-robins after flushing pending uploads.
func (s *PoolStore) Fetch(addrs []int) ([]storage.EncRow, error) {
	v, err := s.read()
	if err != nil {
		return nil, err
	}
	return v.Fetch(addrs)
}

// FetchBatch round-robins after flushing pending uploads.
func (s *PoolStore) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	v, err := s.read()
	if err != nil {
		return nil, err
	}
	return v.FetchBatch(addrBatches)
}

// LookupToken round-robins after flushing pending uploads.
func (s *PoolStore) LookupToken(tok []byte) []int {
	v, err := s.read()
	if err != nil {
		s.conn.noteLogical(err)
		return nil
	}
	return v.LookupToken(tok)
}

// Rows round-robins after flushing pending uploads.
func (s *PoolStore) Rows() []storage.EncRow {
	v, err := s.read()
	if err != nil {
		s.conn.noteLogical(err)
		return nil
	}
	return v.Rows()
}

// EncVersion round-robins after flushing pending uploads.
func (s *PoolStore) EncVersion() (storage.EncVersion, error) {
	v, err := s.read()
	if err != nil {
		return storage.EncVersion{}, err
	}
	return v.EncVersion()
}

// AttrColumnSince round-robins after flushing pending uploads.
func (s *PoolStore) AttrColumnSince(ver storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	v, err := s.read()
	if err != nil {
		return nil, storage.EncVersion{}, false, err
	}
	return v.AttrColumnSince(ver, have)
}

// RowsSince round-robins after flushing pending uploads.
func (s *PoolStore) RowsSince(ver storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	v, err := s.read()
	if err != nil {
		return nil, storage.EncVersion{}, false, err
	}
	return v.RowsSince(ver, have)
}
