package wire

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"

	"repro/internal/relation"
	"repro/internal/storage"
)

// This file turns sticky transport poison into transparent retry. A plain
// *Client is poisoned forever by its first transport failure — correct for
// a single connection, fatal for a long-running owner process whose cloud
// restarts or whose network blips. A Reconnector wraps the dial, watches
// for poison, and rebuilds an equivalent connection underneath the same
// Backend views:
//
//  1. redial with capped exponential backoff,
//  2. re-run the opHello handshake and probe liveness with opPing,
//  3. re-Load each namespace's cached clear-text relation (the cloud may
//     have restarted from a snapshot that predates recent plain writes —
//     re-loading makes the plain partition exactly the owner's copy),
//  4. resync each namespace's encrypted row count via opEncLen and
//     reconcile it against the acknowledged count plus the retained
//     upload buffer (which survives failed flushes by design), then
//  5. replay the retained uploads whose flush never got an acknowledgment.
//
// The opEncLen arithmetic makes flush replay exactly-once: a batch whose
// acknowledgment was lost in the crash is detected as already applied
// (server count == acknowledged + retained) and not replayed; a batch the
// server never saw is replayed at the exact addresses Add handed out
// (server count == acknowledged). Any other count is unreconcilable —
// handed-out addresses can no longer be honoured — and fails the
// Reconnector permanently rather than silently serving wrong rows.

// errReconnClosed is the sticky error after an explicit Close.
var errReconnClosed = errors.New("wire: reconnector closed")

// ReconnectOptions tunes the redial loop. The zero value selects the
// defaults: 10 attempts per reconnect cycle, 25ms initial backoff doubling
// up to a 1s cap.
type ReconnectOptions struct {
	// MaxRetries bounds dial attempts per reconnect cycle (and retry
	// cycles per operation); <= 0 selects 10.
	MaxRetries int
	// BaseDelay is the backoff before the second attempt; <= 0 selects
	// 25ms. Doubles per attempt.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; <= 0 selects 1s.
	MaxDelay time.Duration
	// Clock supplies time to the backoff loop; nil selects the real
	// clock. Tests inject a fake so backoff coverage does not sleep.
	Clock Clock
}

func (o ReconnectOptions) maxRetries() int {
	if o.MaxRetries > 0 {
		return o.MaxRetries
	}
	return 10
}

func (o ReconnectOptions) baseDelay() time.Duration {
	if o.BaseDelay > 0 {
		return o.BaseDelay
	}
	return 25 * time.Millisecond
}

func (o ReconnectOptions) maxDelay() time.Duration {
	if o.MaxDelay > 0 {
		return o.MaxDelay
	}
	return time.Second
}

func (o ReconnectOptions) clock() Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return realClock{}
}

// Reconnector is a Transport over a dial function instead of a single
// connection: per-namespace views (Store/WithStore) survive connection
// death, reconnecting and replaying under the callers' feet. Operations in
// flight during a failure block until the reconnect cycle completes and
// then retry; only an exhausted redial loop, an unreconcilable resync, or
// an explicit Close fails them.
//
// Reconnector is safe for concurrent use.
type Reconnector struct {
	dial func() (*Client, error)
	opts ReconnectOptions

	mu           sync.Mutex
	cond         *sync.Cond
	cur          *Client // current connection; nil before the first op
	reconnecting bool
	closed       bool
	permErr      error         // unrecoverable failure, sticky
	closedCh     chan struct{} // closed by Close: aborts backoff sleeps

	// The reconnector owns the logical-error record (the per-connection
	// records die with their connections, which would reset the monotonic
	// count callers bracket with).
	logMu    sync.Mutex
	logical  error
	logicalN uint64

	storeMu sync.Mutex
	stores  map[string]*ReconnStore
	def     *ReconnStore
}

var (
	_ Backend   = (*Reconnector)(nil)
	_ Backend   = (*ReconnStore)(nil)
	_ Transport = (*Reconnector)(nil)
)

// NewReconnector wraps a dial function (lazy: the first operation
// connects). Tests hand it net.Pipe factories; production uses
// DialReconnect.
func NewReconnector(dial func() (*Client, error), opts ReconnectOptions) *Reconnector {
	rc := &Reconnector{
		dial:     dial,
		opts:     opts,
		closedCh: make(chan struct{}),
		stores:   make(map[string]*ReconnStore),
	}
	rc.cond = sync.NewCond(&rc.mu)
	rc.def = rc.WithStore(DefaultStore)
	return rc
}

// DialReconnect returns a reconnecting transport to the cloud at addr. The
// first connection is established eagerly so a misconfigured address fails
// fast at construction rather than at the first query.
func DialReconnect(addr string, opts ReconnectOptions) (*Reconnector, error) {
	rc := NewReconnector(func() (*Client, error) { return Dial(addr) }, opts)
	c, err := rc.dial()
	if err != nil {
		return nil, err
	}
	rc.mu.Lock()
	rc.cur = c
	rc.mu.Unlock()
	return rc, nil
}

// WithStore returns the reconnect-surviving view of the named namespace
// ("" means DefaultStore). The same name always yields the same view.
func (rc *Reconnector) WithStore(name string) *ReconnStore {
	name = storeName(name)
	rc.storeMu.Lock()
	defer rc.storeMu.Unlock()
	if s, ok := rc.stores[name]; ok {
		return s
	}
	s := &ReconnStore{rc: rc, name: name}
	rc.stores[name] = s
	return s
}

// Store implements Transport.
func (rc *Reconnector) Store(name string) Backend { return rc.WithStore(name) }

// storeList snapshots the registered namespace views.
func (rc *Reconnector) storeList() []*ReconnStore {
	rc.storeMu.Lock()
	defer rc.storeMu.Unlock()
	out := make([]*ReconnStore, 0, len(rc.stores))
	for _, s := range rc.stores {
		out = append(out, s)
	}
	return out
}

// Close tears the transport down for good: the current connection dies,
// blocked reconnect sleeps abort, and every later operation fails with a
// closed error. Like Client.Close, a clean close is not a failure: Err
// stays nil.
func (rc *Reconnector) Close() error {
	rc.mu.Lock()
	if rc.closed {
		rc.mu.Unlock()
		return nil
	}
	rc.closed = true
	close(rc.closedCh)
	cur := rc.cur
	rc.cond.Broadcast()
	rc.mu.Unlock()
	if cur != nil {
		return cur.Close()
	}
	return nil
}

// Err reports the sticky unrecoverable error, if any: redial exhaustion or
// an unreconcilable resync. Transient transport failures never surface
// here — they are the Reconnector's job — and neither does a clean Close.
func (rc *Reconnector) Err() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.permErr
}

// healthy implements poolConn: a Reconnector is routable until it fails
// permanently (redial exhaustion, unreconcilable resync) or is closed —
// transient connection death is its own problem to fix, so a pool keeps
// routing to it and the routed ops block through the reconnect cycle.
func (rc *Reconnector) healthy() bool {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.permErr == nil && !rc.closed
}

// noteLogical records a per-op error a void interface method swallowed —
// the reconnector-level counterpart of Client.noteLogical, surviving the
// connections whose own records die with them.
func (rc *Reconnector) noteLogical(err error) {
	rc.logMu.Lock()
	rc.logical = err
	rc.logicalN++
	rc.logMu.Unlock()
}

// LogicalErr returns the most recent error recorded by a void interface
// method, across all connection generations.
func (rc *Reconnector) LogicalErr() error {
	rc.logMu.Lock()
	defer rc.logMu.Unlock()
	return rc.logical
}

// LogicalErrCount reports how many times a void interface method has
// recorded an error; monotonic across reconnects, so bracketed windows
// stay sound.
func (rc *Reconnector) LogicalErrCount() uint64 {
	rc.logMu.Lock()
	defer rc.logMu.Unlock()
	return rc.logicalN
}

// Ping checks that a live, handshaken connection exists — dialing one if
// needed — and probes it.
func (rc *Reconnector) Ping() error {
	var lastErr error
	for i := 0; i < rc.opts.maxRetries(); i++ {
		c, err := rc.acquire()
		if err != nil {
			return err
		}
		if err := c.Ping(); err == nil {
			return nil
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// acquire returns a healthy connection, running (or waiting on) a
// reconnect cycle when the current one is poisoned. It fails only on
// Close or a permanent error.
func (rc *Reconnector) acquire() (*Client, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for {
		switch {
		case rc.closed:
			return nil, errReconnClosed
		case rc.permErr != nil:
			return nil, rc.permErr
		case rc.cur != nil && rc.cur.stickyErr() == nil:
			return rc.cur, nil
		case rc.reconnecting:
			rc.cond.Wait()
		default:
			rc.reconnecting = true
			old := rc.cur
			rc.mu.Unlock()
			next, err := rc.reconnect(old)
			rc.mu.Lock()
			rc.reconnecting = false
			switch {
			case err != nil:
				if !rc.closed && !errors.Is(err, errReconnClosed) {
					rc.permErr = err
				}
			case rc.closed:
				// Close won the race with the cycle: the fresh connection
				// must not outlive the transport it was dialed for.
				next.Close()
			default:
				rc.cur = next
			}
			rc.cond.Broadcast()
		}
	}
}

// retained is one namespace's harvested upload state.
type retained struct {
	pending   []EncUpload
	serverLen int
	synced    bool
}

// reconnect runs one full cycle: harvest retained state from the dead
// connection, then redial with capped exponential backoff until a
// connection passes the handshake, the liveness probe and the per-
// namespace restore. Transient failures consume attempts; an
// unreconcilable restore aborts the cycle with a permanent error.
func (rc *Reconnector) reconnect(old *Client) (*Client, error) {
	views := rc.storeList()
	kept := make(map[string]retained, len(views))
	if old != nil {
		old.Close()
		for _, rs := range views {
			p, l, synced := old.WithStore(rs.name).takeRetained()
			kept[rs.name] = retained{pending: p, serverLen: l, synced: synced}
		}
	}

	// Jittered capped exponential backoff: each sleep is drawn uniformly
	// from [delay/2, delay], so N clients orphaned by one node crash
	// spread their redials across half a backoff window instead of
	// hammering the restarted node in lockstep. The generator is seeded
	// from the injected clock, never the wall clock, so tests driving a
	// fake clock get a deterministic schedule to assert bounds against.
	delay := rc.opts.baseDelay()
	seed := uint64(rc.opts.clock().Now().UnixNano())
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	var lastErr error
	for attempt := 0; attempt < rc.opts.maxRetries(); attempt++ {
		if attempt > 0 {
			sleep := delay
			if half := int64(delay / 2); half > 0 {
				sleep = delay/2 + time.Duration(rng.Int64N(half+1))
			}
			select {
			case <-rc.opts.clock().After(sleep):
			case <-rc.closedCh:
				return nil, errReconnClosed
			}
			delay *= 2
			if delay > rc.opts.maxDelay() {
				delay = rc.opts.maxDelay()
			}
		}
		c, err := rc.dial()
		if err != nil {
			lastErr = err
			continue
		}
		// Handshake + post-redial liveness probe in one round trip.
		if err := c.Ping(); err != nil {
			c.Close()
			lastErr = err
			continue
		}
		permanent, transient := rc.restore(c, views, kept)
		if permanent != nil {
			c.Close()
			return nil, permanent
		}
		if transient != nil {
			c.Close()
			lastErr = transient
			continue
		}
		return c, nil
	}
	return nil, fmt.Errorf("wire: reconnect: gave up after %d attempts: %w", rc.opts.maxRetries(), lastErr)
}

// restore rebuilds every registered namespace on a fresh connection:
// re-Load the cached clear-text relation, reconcile the encrypted row
// count, replay retained uploads. A transport failure mid-restore is
// transient (the cycle redials); an unreconcilable count or a logically
// rejected replay is permanent. Restore is idempotent across attempts: a
// replay that was applied before the cycle's next failure is detected as
// applied by the count arithmetic and not replayed twice.
func (rc *Reconnector) restore(c *Client, views []*ReconnStore, kept map[string]retained) (permanent, transient error) {
	classify := func(name, what string, err error) (permanent, transient error) {
		if c.stickyErr() != nil {
			return nil, err
		}
		return fmt.Errorf("wire: reconnect: store %q: %s: %w", name, what, err), nil
	}
	for _, rs := range views {
		sc := c.WithStore(rs.name)
		sc.SetAdminToken(rs.ownerToken())
		if rel, attr := rs.cachedLoad(); rel != nil {
			if err := sc.Load(rel, attr); err != nil {
				return classify(rs.name, "re-load", err)
			}
			rs.bumpLoadGen()
		}
		k := kept[rs.name]
		if !k.synced && len(k.pending) == 0 {
			continue
		}
		n, err := sc.lenErr()
		if err != nil {
			return classify(rs.name, "resync", err)
		}
		switch {
		case n == k.serverLen:
			// The server is exactly where the last acknowledged flush left
			// it: retained uploads replay at the addresses Add handed out.
			sc.seed(k.pending, k.serverLen)
			if len(k.pending) > 0 {
				if err := sc.Flush(); err != nil {
					if IsStaleWrite(err) && c.stickyErr() == nil {
						// The count moved between the probe and the replay —
						// in a ring, anti-entropy copying this very batch
						// from a replica that acked it before the crash. Only
						// an exact batch-already-present count reconciles;
						// Flush already dropped the retained rows either way.
						if n2, err2 := sc.lenErr(); err2 != nil {
							return classify(rs.name, "re-probing after stale replay", err2)
						} else if n2 == k.serverLen+len(k.pending) {
							sc.seed(nil, n2)
							continue
						}
						return fmt.Errorf("wire: reconnect: store %q: retained uploads lost to a concurrent write: %w", rs.name, err), nil
					}
					return classify(rs.name, "replaying retained uploads", err)
				}
			}
		case len(k.pending) > 0 && n == k.serverLen+len(k.pending):
			// The batch was applied but its acknowledgment died with the
			// connection; replaying would double every row.
			sc.seed(nil, n)
		case len(k.pending) == 0 && n > k.serverLen:
			// Rows appended by another writer; ours are all accounted for.
			sc.seed(nil, n)
		default:
			return fmt.Errorf(
				"wire: reconnect: store %q: server has %d encrypted rows, cannot reconcile with %d acknowledged + %d retained (handed-out addresses lost)",
				rs.name, n, k.serverLen, len(k.pending)), nil
		}
	}
	return nil, nil
}

// --- ReconnStore ---------------------------------------------------------

// ReconnStore is one namespace's reconnect-surviving Backend view. It
// caches what a reconnect must replay — the owner token, the clear-text
// relation last shipped with Load plus every Insert since (the price of
// transparent retry is an owner-side mirror of the plain partition) — and
// retries each operation through fresh connections until it succeeds,
// fails logically, or the Reconnector fails permanently.
type ReconnStore struct {
	rc   *Reconnector
	name string

	mu         sync.Mutex
	adminToken []byte
	rel        *relation.Relation // clear-text mirror; nil before Load
	attr       string
	// loadGen counts restore() re-Loads of the mirror. Load and Insert
	// sample it around their round trip: a changed generation means a
	// reconnect re-shipped the mirror mid-call, so the server's plain
	// partition was rebuilt from a mirror that predates the call — the op
	// must re-run to converge rather than commit a mirror the server no
	// longer matches.
	loadGen uint64
}

// StoreName returns the namespace this view addresses.
func (rs *ReconnStore) StoreName() string { return rs.name }

// SetAdminToken attaches the namespace's owner token; it is re-stamped on
// every connection generation.
func (rs *ReconnStore) SetAdminToken(tok []byte) {
	rs.mu.Lock()
	rs.adminToken = cloneBytes(tok)
	rs.mu.Unlock()
}

func (rs *ReconnStore) ownerToken() []byte {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.adminToken
}

// cachedLoad returns the mirrored clear-text relation (nil before Load).
func (rs *ReconnStore) cachedLoad() (*relation.Relation, string) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.rel, rs.attr
}

// bumpLoadGen records that a reconnect cycle re-shipped the mirror.
func (rs *ReconnStore) bumpLoadGen() {
	rs.mu.Lock()
	rs.loadGen++
	rs.mu.Unlock()
}

// withConn runs f against the current connection's view of this
// namespace, reconnecting and retrying on transport failure. Logical
// errors return immediately; transport errors retry up to MaxRetries
// reconnect cycles (each cycle itself backing off through MaxRetries
// dials).
func (rs *ReconnStore) withConn(f func(sc *StoreClient) error) error {
	var lastErr error
	for i := 0; i < rs.rc.opts.maxRetries(); i++ {
		c, err := rs.rc.acquire()
		if err != nil {
			return err
		}
		sc := c.WithStore(rs.name)
		sc.SetAdminToken(rs.ownerToken())
		if err := f(sc); err == nil {
			return nil
		} else if c.stickyErr() == nil {
			return err // server-side logical error: retrying cannot help
		} else {
			lastErr = err
		}
	}
	return lastErr
}

// ResyncLen drops the current connection's cached server-length
// arithmetic for this namespace (see StoreClient.ResyncLen); ring clients
// call it when readmitting a repaired replica to the write set.
func (rs *ReconnStore) ResyncLen() error {
	return rs.withConn(func(sc *StoreClient) error { return sc.ResyncLen() })
}

// Info probes the namespace's replica state — existence, row counts, the
// encrypted store's version — on the current connection. Ring clients use
// it as the readmission parity probe: unlike Len it covers the clear-text
// partition too, so a replica whose plain tuples still lag repair is not
// readmitted on encrypted parity alone.
func (rs *ReconnStore) Info() (StoreInfo, error) {
	var info StoreInfo
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		info, err = sc.c.StoreInfo(rs.name)
		return err
	})
	return info, err
}

// Ping probes the current connection (dialing one if needed).
func (rs *ReconnStore) Ping() error { return rs.rc.Ping() }

// Err reports the shared Reconnector's sticky unrecoverable error.
func (rs *ReconnStore) Err() error { return rs.rc.Err() }

// LogicalErr returns the shared reconnect-surviving per-op error record.
func (rs *ReconnStore) LogicalErr() error { return rs.rc.LogicalErr() }

// LogicalErrCount returns the shared monotonic per-op error count.
func (rs *ReconnStore) LogicalErrCount() uint64 { return rs.rc.LogicalErrCount() }

// Close closes the SHARED Reconnector: every view dies with it.
func (rs *ReconnStore) Close() error { return rs.rc.Close() }

// --- cloud.PlainBackend --------------------------------------------------

// Load ships the clear-text partition and mirrors it owner-side, so a
// reconnect can rebuild a cloud that restarted from a stale (or no)
// snapshot. The mirror is committed only once the cloud has accepted the
// relation — a logically rejected Load must not become the relation every
// future reconnect replays (and fails on, permanently) — and only if no
// reconnect re-shipped the previous mirror mid-call, in which case the
// server was just rebuilt from the old relation and the new one is
// shipped again.
func (rs *ReconnStore) Load(rel *relation.Relation, attr string) error {
	clone := rel.Clone()
	var lastErr error
	for i := 0; i < rs.rc.opts.maxRetries(); i++ {
		c, err := rs.rc.acquire()
		if err != nil {
			return err
		}
		rs.mu.Lock()
		gen := rs.loadGen
		rs.mu.Unlock()
		sc := c.WithStore(rs.name)
		sc.SetAdminToken(rs.ownerToken())
		if err := sc.Load(rel, attr); err != nil {
			if c.stickyErr() == nil {
				return err // logical rejection: nothing to mirror
			}
			lastErr = err
			continue
		}
		rs.mu.Lock()
		if rs.loadGen == gen {
			rs.rel, rs.attr = clone, attr
			rs.mu.Unlock()
			return nil
		}
		rs.mu.Unlock()
	}
	return lastErr
}

// Search implements cloud.PlainBackend with transparent retry.
func (rs *ReconnStore) Search(values []relation.Value) []relation.Tuple {
	var out []relation.Tuple
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		out, err = sc.searchErr(values)
		return err
	})
	if err != nil {
		rs.rc.noteLogical(err)
		return nil
	}
	return out
}

// SearchRange implements cloud.PlainBackend with transparent retry.
func (rs *ReconnStore) SearchRange(lo, hi relation.Value) []relation.Tuple {
	var out []relation.Tuple
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		out, err = sc.searchRangeErr(lo, hi)
		return err
	})
	if err != nil {
		rs.rc.noteLogical(err)
		return nil
	}
	return out
}

// Insert implements cloud.PlainBackend with exactly-once semantics when a
// Load went through this view. The argument rests on the mirror
// generation: a reconnect always re-Loads the mirror (bumping loadGen)
// before any retry can run, so an insert whose acknowledgment died with
// the connection was either never applied (replay inserts it once) or was
// erased by the re-Load of the t-less mirror (replay re-inserts it once).
// The acknowledged tuple joins the mirror only if no reconnect re-shipped
// it mid-call; a changed generation means the re-Load erased the applied
// tuple, so the op re-runs instead of committing a mirror the server no
// longer matches. Without a mirrored Load (a resumed session that never
// shipped the relation through this view) a lost acknowledgment may
// duplicate the insert on retry.
func (rs *ReconnStore) Insert(t relation.Tuple) error {
	var lastErr error
	for i := 0; i < rs.rc.opts.maxRetries(); i++ {
		c, err := rs.rc.acquire()
		if err != nil {
			return err
		}
		rs.mu.Lock()
		gen, mirrored := rs.loadGen, rs.rel != nil
		rs.mu.Unlock()
		sc := c.WithStore(rs.name)
		sc.SetAdminToken(rs.ownerToken())
		if err := sc.Insert(t); err != nil {
			if c.stickyErr() == nil {
				return err // server-side logical rejection
			}
			lastErr = err
			continue
		}
		rs.mu.Lock()
		if !mirrored {
			rs.mu.Unlock()
			return nil
		}
		if rs.loadGen == gen {
			// Mirror maintenance failing (schema drift) is impossible when
			// the cloud accepted the same tuple against the same schema;
			// ignore the error by symmetry.
			_ = rs.rel.Append(t.Clone())
			rs.mu.Unlock()
			return nil
		}
		rs.mu.Unlock()
	}
	return lastErr
}

// --- technique.BatchEncStore ---------------------------------------------

// Add buffers one encrypted row on the current connection's view, which
// owns the namespace's address arithmetic; the buffer migrates across
// reconnects until a flush is acknowledged.
func (rs *ReconnStore) Add(tupleCT, attrCT, token []byte) int {
	addr := -1
	err := rs.withConn(func(sc *StoreClient) error {
		addr = sc.Add(tupleCT, attrCT, token)
		if addr < 0 {
			// Add swallows its cause; recover it so withConn can classify.
			if err := sc.c.stickyErr(); err != nil {
				return err
			}
			return errors.New("wire: add: address sync failed")
		}
		return nil
	})
	if err != nil {
		rs.rc.noteLogical(err)
		return -1
	}
	return addr
}

// Flush pushes pending uploads; a flush interrupted by connection death is
// completed by the reconnect cycle's replay (exactly once — see restore).
func (rs *ReconnStore) Flush() error {
	return rs.withConn(func(sc *StoreClient) error { return sc.Flush() })
}

// Len implements technique.EncStore with transparent retry.
func (rs *ReconnStore) Len() int {
	n := 0
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		n, err = sc.lenErr()
		return err
	})
	if err != nil {
		rs.rc.noteLogical(err)
		return 0
	}
	return n
}

// AttrColumn implements technique.EncStore with transparent retry.
func (rs *ReconnStore) AttrColumn() []storage.EncRow {
	var rows []storage.EncRow
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		rows, err = sc.attrColumnErr()
		return err
	})
	if err != nil {
		rs.rc.noteLogical(err)
		return nil
	}
	return rows
}

// Fetch implements technique.EncStore with transparent retry.
func (rs *ReconnStore) Fetch(addrs []int) ([]storage.EncRow, error) {
	var rows []storage.EncRow
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		rows, err = sc.Fetch(addrs)
		return err
	})
	return rows, err
}

// FetchBatch implements technique.BatchEncStore with transparent retry.
func (rs *ReconnStore) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	var batches [][]storage.EncRow
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		batches, err = sc.FetchBatch(addrBatches)
		return err
	})
	return batches, err
}

// LookupToken implements technique.EncStore with transparent retry.
func (rs *ReconnStore) LookupToken(tok []byte) []int {
	var addrs []int
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		addrs, err = sc.lookupTokenErr(tok)
		return err
	})
	if err != nil {
		rs.rc.noteLogical(err)
		return nil
	}
	return addrs
}

// Rows implements technique.EncStore with transparent retry.
func (rs *ReconnStore) Rows() []storage.EncRow {
	var rows []storage.EncRow
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		rows, err = sc.rowsErr()
		return err
	})
	if err != nil {
		rs.rc.noteLogical(err)
		return nil
	}
	return rows
}

// EncVersion implements technique.VersionedEncStore with transparent
// retry. An owner-side cache composes with reconnection for free: the
// cache is keyed by the store's version epoch, which survives a transport
// blip unchanged (same server process) and changes when the server was
// rebuilt from a snapshot — exactly the case where cached state must be
// refetched.
func (rs *ReconnStore) EncVersion() (storage.EncVersion, error) {
	var v storage.EncVersion
	err := rs.withConn(func(sc *StoreClient) error {
		var err error
		v, err = sc.EncVersion()
		return err
	})
	return v, err
}

// AttrColumnSince implements technique.VersionedEncStore with transparent
// retry.
func (rs *ReconnStore) AttrColumnSince(ver storage.EncVersion, have int) (rows []storage.EncRow, cur storage.EncVersion, delta bool, err error) {
	err = rs.withConn(func(sc *StoreClient) error {
		var e error
		rows, cur, delta, e = sc.AttrColumnSince(ver, have)
		return e
	})
	return rows, cur, delta, err
}

// RowsSince implements technique.VersionedEncStore with transparent retry.
func (rs *ReconnStore) RowsSince(ver storage.EncVersion, have int) (rows []storage.EncRow, cur storage.EncVersion, delta bool, err error) {
	err = rs.withConn(func(sc *StoreClient) error {
		var e error
		rows, cur, delta, e = sc.RowsSince(ver, have)
		return e
	})
	return rows, cur, delta, err
}

// --- default-store Backend surface ---------------------------------------

// SetAdminToken attaches the default store's owner token.
func (rc *Reconnector) SetAdminToken(tok []byte) { rc.def.SetAdminToken(tok) }

// Load ships the clear-text partition to the default store.
func (rc *Reconnector) Load(rel *relation.Relation, attr string) error {
	return rc.def.Load(rel, attr)
}

// Search implements cloud.PlainBackend on the default store.
func (rc *Reconnector) Search(values []relation.Value) []relation.Tuple {
	return rc.def.Search(values)
}

// SearchRange implements cloud.PlainBackend on the default store.
func (rc *Reconnector) SearchRange(lo, hi relation.Value) []relation.Tuple {
	return rc.def.SearchRange(lo, hi)
}

// Insert implements cloud.PlainBackend on the default store.
func (rc *Reconnector) Insert(t relation.Tuple) error { return rc.def.Insert(t) }

// Add implements technique.EncStore on the default store.
func (rc *Reconnector) Add(tupleCT, attrCT, token []byte) int {
	return rc.def.Add(tupleCT, attrCT, token)
}

// Flush uploads the default store's pending encrypted rows.
func (rc *Reconnector) Flush() error { return rc.def.Flush() }

// Len implements technique.EncStore on the default store.
func (rc *Reconnector) Len() int { return rc.def.Len() }

// AttrColumn implements technique.EncStore on the default store.
func (rc *Reconnector) AttrColumn() []storage.EncRow { return rc.def.AttrColumn() }

// Fetch implements technique.EncStore on the default store.
func (rc *Reconnector) Fetch(addrs []int) ([]storage.EncRow, error) { return rc.def.Fetch(addrs) }

// FetchBatch implements technique.BatchEncStore on the default store.
func (rc *Reconnector) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	return rc.def.FetchBatch(addrBatches)
}

// LookupToken implements technique.EncStore on the default store.
func (rc *Reconnector) LookupToken(tok []byte) []int { return rc.def.LookupToken(tok) }

// Rows implements technique.EncStore on the default store.
func (rc *Reconnector) Rows() []storage.EncRow { return rc.def.Rows() }

// EncVersion implements technique.VersionedEncStore on the default store.
func (rc *Reconnector) EncVersion() (storage.EncVersion, error) { return rc.def.EncVersion() }

// AttrColumnSince implements technique.VersionedEncStore on the default store.
func (rc *Reconnector) AttrColumnSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	return rc.def.AttrColumnSince(v, have)
}

// RowsSince implements technique.VersionedEncStore on the default store.
func (rc *Reconnector) RowsSince(v storage.EncVersion, have int) ([]storage.EncRow, storage.EncVersion, bool, error) {
	return rc.def.RowsSince(v, have)
}
