package wire

import (
	mrand "math/rand/v2"
	"net"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

// startCloud spins up a cloud on a loopback listener and returns a
// connected client.
func startCloud(t *testing.T) *Client {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCloud()
	go func() { _ = cl.Serve(lis) }()
	t.Cleanup(func() { lis.Close() })
	client, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

func TestPing(t *testing.T) {
	c := startCloud(t)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestPlainBackendOverWire(t *testing.T) {
	c := startCloud(t)
	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindString},
	))
	for i := 0; i < 30; i++ {
		rel.MustInsert(relation.Int(int64(i%6)), relation.Str("x"))
	}
	if err := c.Load(rel, "K"); err != nil {
		t.Fatal(err)
	}
	got := c.Search([]relation.Value{relation.Int(2)})
	if len(got) != 5 {
		t.Fatalf("Search = %d tuples, want 5", len(got))
	}
	gotR := c.SearchRange(relation.Int(1), relation.Int(2))
	if len(gotR) != 10 {
		t.Fatalf("SearchRange = %d tuples, want 10", len(gotR))
	}
	if err := c.Insert(relation.Tuple{ID: 99, Values: []relation.Value{relation.Int(42), relation.Str("y")}}); err != nil {
		t.Fatal(err)
	}
	got = c.Search([]relation.Value{relation.Int(42)})
	if len(got) != 1 || got[0].ID != 99 {
		t.Fatalf("remote insert not found: %v", got)
	}
	if c.Err() != nil {
		t.Fatalf("sticky error: %v", c.Err())
	}
}

func TestPlainErrorsOverWire(t *testing.T) {
	c := startCloud(t)
	// Search before Load is a server-side logical error: recorded per-op,
	// but the connection stays healthy.
	if got := c.Search([]relation.Value{relation.Int(1)}); got != nil {
		t.Fatalf("search before load returned %v", got)
	}
	if c.LogicalErr() == nil {
		t.Fatal("logical error not surfaced via LogicalErr()")
	}
	if c.Err() != nil {
		t.Fatalf("logical error poisoned the client: %v", c.Err())
	}
	// The client recovers: a Load and a Search succeed on the same conn.
	rel := relation.New(relation.MustSchema("T",
		relation.Column{Name: "K", Kind: relation.KindInt},
	))
	rel.MustInsert(relation.Int(7))
	if err := c.Load(rel, "K"); err != nil {
		t.Fatalf("Load after logical error: %v", err)
	}
	if got := c.Search([]relation.Value{relation.Int(7)}); len(got) != 1 {
		t.Fatalf("Search after recovery = %v", got)
	}
}

func TestEncStoreOverWire(t *testing.T) {
	c := startCloud(t)
	a0 := c.Add([]byte("ct0"), []byte("a0"), nil)
	a1 := c.Add([]byte("ct1"), []byte("a1"), []byte("tok"))
	if a0 != 0 || a1 != 1 {
		t.Fatalf("addresses %d, %d", a0, a1)
	}
	// Reads force a flush.
	if n := c.Len(); n != 2 {
		t.Fatalf("Len = %d", n)
	}
	col := c.AttrColumn()
	if len(col) != 2 || string(col[1].AttrCT) != "a1" {
		t.Fatalf("AttrColumn = %+v", col)
	}
	rows, err := c.Fetch([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || string(rows[0].TupleCT) != "ct1" {
		t.Fatalf("Fetch = %+v", rows)
	}
	if got := c.LookupToken([]byte("tok")); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("LookupToken = %v", got)
	}
	if got := c.Rows(); len(got) != 2 {
		t.Fatalf("Rows = %d", len(got))
	}
	if _, err := c.Fetch([]int{9}); err == nil {
		t.Fatal("out-of-range fetch accepted")
	}
	if c.Err() != nil {
		t.Fatalf("sticky error after recoverable protocol error: %v", c.Err())
	}
}

// TestOwnerEndToEndOverWire runs the complete QB pipeline against a cloud
// process reached over TCP loopback: remote clear-text store and remote
// encrypted store.
func TestOwnerEndToEndOverWire(t *testing.T) {
	client := startCloud(t)

	ks := crypto.DeriveKeys([]byte("wire e2e"))
	tech, err := technique.NewNoIndOn(ks, client) // encrypted store lives remote
	if err != nil {
		t.Fatal(err)
	}
	o := owner.New(tech, "EId")
	o.SetCloudBackend(client) // clear-text store lives remote too

	emp := workload.Employee()
	opts := core.Options{Rand: mrand.New(mrand.NewPCG(42, 43))}
	if err := o.Outsource(emp.Clone(), workload.EmployeeSensitive, opts); err != nil {
		t.Fatal(err)
	}
	for _, eid := range []string{"E101", "E259", "E199", "E152"} {
		got, _, err := o.Query(relation.Str(eid))
		if err != nil {
			t.Fatalf("Query(%s): %v", eid, err)
		}
		want, err := emp.Select("EId", relation.Str(eid))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
			t.Errorf("Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
		}
	}
	// Insert over the wire, then query it back.
	nt := relation.Tuple{ID: 100, Values: []relation.Value{
		relation.Str("E777"), relation.Str("New"), relation.Str("Person"),
		relation.Int(777), relation.Int(9), relation.Str("Design"),
	}}
	if err := o.Insert(nt, false); err != nil {
		t.Fatal(err)
	}
	got, _, err := o.Query(relation.Str("E777"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 100 {
		t.Fatalf("remote insert lookup = %v", got)
	}
	if client.Err() != nil {
		t.Fatalf("sticky transport error: %v", client.Err())
	}
}

// TestTwoClientsShareOneCloud checks concurrent connections against the
// same cloud state.
func TestTwoClientsShareOneCloud(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCloud()
	go func() { _ = cl.Serve(lis) }()
	defer lis.Close()

	c1, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	c1.Add([]byte("x"), []byte("y"), nil)
	if err := c1.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := c2.Len(); n != 1 {
		t.Fatalf("second client sees %d rows, want 1", n)
	}
}

func TestClientCloseIsClean(t *testing.T) {
	client := startCloud(t)
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Ops on a closed client fail fast...
	if err := client.Ping(); err == nil {
		t.Fatal("ping on closed client succeeded")
	}
	if client.Add([]byte("x"), nil, nil) != -1 {
		t.Fatal("Add on closed client handed out an address")
	}
	// ...but an explicit Close is a clean shutdown, not a transport
	// failure (see TestTransportErrorPoisonsAndReleases for the sticky
	// path).
	if err := client.Err(); err != nil {
		t.Fatalf("clean close surfaced as transport error: %v", err)
	}
	// Void methods on a closed client are not silent: the use-after-close
	// is recorded for LogicalErr.
	if got := client.Search([]relation.Value{relation.Int(1)}); got != nil {
		t.Fatalf("search on closed client = %v", got)
	}
	if client.LogicalErr() == nil {
		t.Fatal("use-after-close not recorded by LogicalErr()")
	}
}
