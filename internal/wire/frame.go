package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
)

// This file is the framing layer underneath the protocol: after a
// successful v3 handshake (which travels as plain gob, the v2 wire image,
// so generation skew fails with an explicit version error in both
// directions), every message in both directions rides one frame:
//
//	+--------------------+-----+------------------------+
//	| length uint32 (BE) | tag | body (length - 1 bytes)|
//	+--------------------+-----+------------------------+
//
// The length counts tag plus body. The tag selects the body codec:
// tagGob frames carry one message of the connection's persistent gob
// stream (cold ops — load, admin, duplicate hellos — keep gob's
// self-describing flexibility), tagBinReq/tagBinResp carry the
// hand-rolled binary encoding of the hot data-plane ops (see codec.go).
const (
	tagGob     byte = 0x01
	tagBinReq  byte = 0x02
	tagBinResp byte = 0x03
)

const (
	// maxFramePayload bounds one frame's tag+body. Far above any frame a
	// cooperative peer produces (large row pulls are chunked near
	// chunkTarget), it exists so a corrupt or hostile length prefix fails
	// explicitly instead of driving allocation.
	maxFramePayload = 256 << 20
	// frameReadStep bounds how much receive buffer is grown per read: a
	// lying length prefix cannot balloon memory past the bytes actually
	// delivered (plus one step).
	frameReadStep = 1 << 20
	// chunkTarget is the per-frame byte budget when the server streams a
	// large AttrColumn/Rows response as a partial-flagged chunk sequence.
	chunkTarget = 256 << 10
)

// framePool recycles frame-assembly buffers across writer goroutines: one
// Get per frame sent, so steady-state sends allocate nothing for framing.
var framePool = sync.Pool{
	New: func() any { b := make([]byte, 0, 4<<10); return &b },
}

func getFrameBuf() *[]byte { return framePool.Get().(*[]byte) }

// putFrameBuf returns a frame buffer to the pool unless it grew huge — one
// giant upload must not pin its high-water mark in memory forever.
func putFrameBuf(bp *[]byte) {
	if cap(*bp) > 4<<20 {
		return
	}
	framePool.Put(bp)
}

// beginFrame starts assembling a frame in buf: a placeholder for the
// length prefix, then the tag.
func beginFrame(buf []byte, tag byte) []byte {
	return append(buf[:0], 0, 0, 0, 0, tag)
}

// finishFrame patches the length prefix and writes the whole frame in one
// Write call.
func finishFrame(w io.Writer, buf []byte) error {
	if len(buf)-4 > maxFramePayload {
		return fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", len(buf)-4, maxFramePayload)
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(len(buf)-4))
	_, err := w.Write(buf)
	return err
}

// readFrame reads one frame into *scratch (grown to the largest frame seen
// and reused — each reader goroutine owns its scratch) and returns the tag
// and body, both aliasing the scratch until the next call. The buffer is
// grown towards the declared length in bounded steps, each requiring the
// peer to actually deliver the previous step, so a lying length prefix
// cannot balloon memory.
func readFrame(r io.Reader, scratch *[]byte) (tag byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n == 0 {
		return 0, nil, errors.New("wire: zero-length frame")
	}
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("wire: frame of %d bytes exceeds the %d-byte limit", n, maxFramePayload)
	}
	buf := *scratch
	got := 0
	for got < n {
		want := min(n, got+frameReadStep)
		if cap(buf) < want {
			grown := make([]byte, want)
			copy(grown, buf[:got])
			buf = grown
		} else {
			buf = buf[:want]
		}
		m, err := io.ReadFull(r, buf[got:want])
		got += m
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, nil, err
		}
	}
	*scratch = buf
	return buf[0], buf[1:n], nil
}

// gobSource feeds a persistent gob.Decoder either directly from the
// connection (handshake mode) or from one frame body at a time (framed
// mode). It implements io.ByteReader, which makes gob consume exactly one
// self-delimited message per Decode with no internal read-ahead — the
// property that lets one gob stream's state survive inside discrete
// frames.
type gobSource struct {
	direct *bufio.Reader // handshake mode; nil once framed
	buf    []byte        // current frame body in framed mode
}

func (s *gobSource) Read(p []byte) (int, error) {
	if s.direct != nil {
		return s.direct.Read(p)
	}
	if len(s.buf) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

func (s *gobSource) ReadByte() (byte, error) {
	if s.direct != nil {
		return s.direct.ReadByte()
	}
	if len(s.buf) == 0 {
		return 0, io.ErrUnexpectedEOF
	}
	b := s.buf[0]
	s.buf = s.buf[1:]
	return b, nil
}

// gobSink receives a persistent gob.Encoder's output either directly into
// the connection (handshake mode) or into the frame buffer being
// assembled (framed mode).
type gobSink struct {
	direct io.Writer // handshake mode; nil once framed
	buf    *[]byte   // frame buffer in framed mode
}

func (s *gobSink) Write(p []byte) (int, error) {
	if s.direct != nil {
		return s.direct.Write(p)
	}
	*s.buf = append(*s.buf, p...)
	return len(p), nil
}
