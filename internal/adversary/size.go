package adversary

import (
	"sort"

	"repro/internal/cloud"
)

// SizeAttackResult reports whether output sizes distinguish sensitive bins
// (§IV-B's size-attack scenario: a heavy-hitter value makes its bin's
// retrieval visibly larger).
type SizeAttackResult struct {
	// GroupSizes maps each observed sensitive footprint to the number of
	// encrypted tuples it returns.
	GroupSizes []int
	// Distinguishable is true when at least two sensitive footprints return
	// different tuple counts, giving the adversary a frequency signal.
	Distinguishable bool
	// MaxOverMin is the ratio of the largest to the smallest footprint, a
	// measure of how strong the signal is (1.0 = perfectly uniform).
	MaxOverMin float64
}

// SizeAttack inspects the view log: it groups views by sensitive footprint
// and compares result sizes. QB's fake-tuple padding forces all groups to
// the same size, defeating the attack; without padding, skewed data makes
// bins distinguishable.
func SizeAttack(views []cloud.View) SizeAttackResult {
	sizes := make(map[string]int)
	for _, v := range views {
		if v.EncPredicates == 0 {
			continue
		}
		sizes[addrKey(v.EncResultAddrs)] = len(v.EncResultAddrs)
	}
	res := SizeAttackResult{}
	for _, n := range sizes {
		res.GroupSizes = append(res.GroupSizes, n)
	}
	sort.Ints(res.GroupSizes)
	if len(res.GroupSizes) == 0 {
		res.MaxOverMin = 1
		return res
	}
	minSz := res.GroupSizes[0]
	maxSz := res.GroupSizes[len(res.GroupSizes)-1]
	res.Distinguishable = minSz != maxSz
	if minSz > 0 {
		res.MaxOverMin = float64(maxSz) / float64(minSz)
	} else if maxSz > 0 {
		res.MaxOverMin = float64(maxSz)
	} else {
		res.MaxOverMin = 1
	}
	return res
}
