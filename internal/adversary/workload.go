package adversary

import (
	"sort"

	"repro/internal/cloud"
)

// WorkloadSkewResult quantifies the workload-skew attack: an adversary who
// knows which predicates are popular watches how often each encrypted
// footprint is retrieved and tries to pin the popular values to encrypted
// tuples.
type WorkloadSkewResult struct {
	// Footprints is the number of distinct encrypted retrieval footprints
	// observed. When every value produces its own footprint (no binning),
	// ranking footprints by hit count identifies the hot values exactly.
	Footprints int
	// Queries is the number of observed queries with an encrypted part.
	Queries int
	// HitCounts are the per-footprint retrieval counts, descending.
	HitCounts []int
	// AnonymitySet is the adversary's best-case ambiguity when pinning the
	// hottest predicate to encrypted tuples: the number of candidate
	// predicates mapped to the hottest footprint. It is computed as
	// totalPredicates / footprints (at least 1); QB makes it the sensitive
	// bin size, naive execution makes it 1.
	AnonymitySet int
}

// WorkloadSkewAttack groups the encrypted side of the views by footprint
// and ranks footprints by how often they were retrieved. totalPredicates is
// the adversary's auxiliary knowledge of how many distinct sensitive
// predicates exist.
func WorkloadSkewAttack(views []cloud.View, totalPredicates int) WorkloadSkewResult {
	hits := make(map[string]int)
	queries := 0
	for _, v := range views {
		if v.EncPredicates == 0 {
			continue
		}
		queries++
		hits[addrKey(v.EncResultAddrs)]++
	}
	res := WorkloadSkewResult{Footprints: len(hits), Queries: queries}
	for _, n := range hits {
		res.HitCounts = append(res.HitCounts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(res.HitCounts)))
	if len(hits) > 0 {
		res.AnonymitySet = totalPredicates / len(hits)
		if res.AnonymitySet < 1 {
			res.AnonymitySet = 1
		}
	} else {
		res.AnonymitySet = totalPredicates
	}
	return res
}
