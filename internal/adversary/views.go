// Package adversary implements the honest-but-curious attacks of the paper
// against recorded adversarial views: the naive-partitioning inference
// attack (Example 2), the surviving-matches bipartite analysis that
// underlies the security proof (Figures 4a/4b), and the output-size,
// frequency-count and workload-skew attacks that §IV-B and §VI show QB
// defeats.
package adversary

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cloud"
	"repro/internal/relation"
)

// viewKey canonicalises a set of plaintext values (an observed NSB).
func plainKey(values []relation.Value) string {
	keys := make([]string, len(values))
	for i, v := range values {
		keys[i] = v.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "|")
}

// addrKey canonicalises a set of returned encrypted addresses (an observed
// SB footprint).
func addrKey(addrs []int) string {
	s := append([]int(nil), addrs...)
	sort.Ints(s)
	var b strings.Builder
	for i, a := range s {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	return b.String()
}

// BinGraph is the adversary's reconstruction of the bin-association
// bipartite graph from the view log: one node per distinct plaintext
// predicate set (non-sensitive bin) and one per distinct encrypted
// result-address footprint (sensitive bin), with an edge whenever the two
// were retrieved together.
type BinGraph struct {
	// SensGroups and NSGroups are the distinct footprints, in first-seen
	// order.
	SensGroups []string
	NSGroups   []string

	sensIdx map[string]int
	nsIdx   map[string]int
	edges   map[[2]int]bool
}

// AnalyzeViews groups the views into bin footprints and records their
// co-retrievals. Views with an empty side are grouped under that side's
// empty footprint only if the side carried a query at all.
func AnalyzeViews(views []cloud.View) *BinGraph {
	g := &BinGraph{
		sensIdx: make(map[string]int),
		nsIdx:   make(map[string]int),
		edges:   make(map[[2]int]bool),
	}
	for _, v := range views {
		si, ni := -1, -1
		if v.EncPredicates > 0 {
			k := addrKey(v.EncResultAddrs)
			var ok bool
			si, ok = g.sensIdx[k]
			if !ok {
				si = len(g.SensGroups)
				g.sensIdx[k] = si
				g.SensGroups = append(g.SensGroups, k)
			}
		}
		if len(v.PlainValues) > 0 {
			k := plainKey(v.PlainValues)
			var ok bool
			ni, ok = g.nsIdx[k]
			if !ok {
				ni = len(g.NSGroups)
				g.nsIdx[k] = ni
				g.NSGroups = append(g.NSGroups, k)
			}
		}
		if si >= 0 && ni >= 0 {
			g.edges[[2]int{si, ni}] = true
		}
	}
	return g
}

// Edges returns the number of observed associations.
func (g *BinGraph) Edges() int { return len(g.edges) }

// HasEdge reports whether sensitive group si was seen with non-sensitive
// group ni.
func (g *BinGraph) HasEdge(si, ni int) bool { return g.edges[[2]int{si, ni}] }

// IsCompleteBipartite reports whether every sensitive footprint has been
// associated with every non-sensitive footprint — the condition under which
// all surviving matches are preserved and the adversary learns nothing
// (Figure 4a). It is vacuously true when either side is empty.
func (g *BinGraph) IsCompleteBipartite() bool {
	return len(g.edges) == len(g.SensGroups)*len(g.NSGroups)
}

// DroppedMatches returns the number of missing edges — each one a dropped
// surviving match of bins that leaks information (Figure 4b).
func (g *BinGraph) DroppedMatches() int {
	return len(g.SensGroups)*len(g.NSGroups) - len(g.edges)
}

// SurvivingValueMatches bounds the adversary's knowledge at value
// granularity: with nSens sensitive and nNS non-sensitive values, a
// complete bipartite bin graph keeps all nSens*nNS value-level surviving
// matches; every dropped bin edge removes (values-per-sens-bin ×
// values-per-ns-bin) candidate matches.
func (g *BinGraph) SurvivingValueMatches(nSens, nNS int) int {
	if len(g.SensGroups) == 0 || len(g.NSGroups) == 0 {
		return nSens * nNS
	}
	perSens := (nSens + len(g.SensGroups) - 1) / len(g.SensGroups)
	perNS := (nNS + len(g.NSGroups) - 1) / len(g.NSGroups)
	return len(g.edges) * perSens * perNS
}
