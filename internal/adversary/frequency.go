package adversary

import (
	"sort"

	"repro/internal/relation"
	"repro/internal/storage"
)

// FrequencyGuess is one (ciphertext group → plaintext value) hypothesis
// produced by the frequency-count attack.
type FrequencyGuess struct {
	TokenKey string
	Value    relation.Value
}

// FrequencyAttack mounts the Naveed-et-al-style frequency analysis against
// a deterministically encrypted store: identical plaintexts yield identical
// tokens, so the ciphertext histogram can be matched against an auxiliary
// plaintext histogram (here: the known value counts) by rank. It returns
// the guessed assignment ordered by descending frequency; the caller scores
// it against ground truth.
//
// Probabilistic and Arx-style stores have all-distinct tokens, so the
// ciphertext histogram is flat and the attack returns no usable guesses.
//
// TokenStore is the at-rest view the adversary reads; any encrypted store
// (local or remote) satisfies it.
func FrequencyAttack(store interface{ Rows() []storage.EncRow }, aux []relation.ValueCount) []FrequencyGuess {
	hist := make(map[string]int)
	for _, row := range store.Rows() {
		if row.Token != nil {
			hist[string(row.Token)]++
		}
	}
	type group struct {
		key string
		n   int
	}
	groups := make([]group, 0, len(hist))
	for k, n := range hist {
		groups = append(groups, group{key: k, n: n})
	}
	// Rank both histograms by frequency (ties broken deterministically).
	sort.Slice(groups, func(i, j int) bool {
		if groups[i].n != groups[j].n {
			return groups[i].n > groups[j].n
		}
		return groups[i].key < groups[j].key
	})
	ranked := append([]relation.ValueCount(nil), aux...)
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].Count != ranked[j].Count {
			return ranked[i].Count > ranked[j].Count
		}
		return ranked[i].Value.Less(ranked[j].Value)
	})
	n := len(groups)
	if len(ranked) < n {
		n = len(ranked)
	}
	out := make([]FrequencyGuess, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, FrequencyGuess{TokenKey: groups[i].key, Value: ranked[i].Value})
	}
	return out
}

// ScoreFrequencyAttack computes the fraction of guesses that match the
// ground-truth token→value assignment (keyed by token bytes).
func ScoreFrequencyAttack(guesses []FrequencyGuess, truth map[string]relation.Value) float64 {
	if len(guesses) == 0 {
		return 0
	}
	correct := 0
	for _, g := range guesses {
		if v, ok := truth[g.TokenKey]; ok && v.Equal(g.Value) {
			correct++
		}
	}
	return float64(correct) / float64(len(guesses))
}
