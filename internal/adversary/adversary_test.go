package adversary_test

import (
	mrand "math/rand/v2"
	"testing"

	"repro/internal/adversary"
	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

func seededOpts(seed uint64) core.Options {
	return core.Options{Rand: mrand.New(mrand.NewPCG(seed, seed+1))}
}

func newOwner(t *testing.T, tech technique.Technique, attr string) *owner.Owner {
	t.Helper()
	return owner.New(tech, attr)
}

func noind(t *testing.T) technique.Technique {
	t.Helper()
	tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("adv test")))
	if err != nil {
		t.Fatal(err)
	}
	return tech
}

// TestInferenceAttackExample2 reproduces Table II: naive partitioned
// execution of the three queries lets the adversary classify each employee.
func TestInferenceAttackExample2(t *testing.T) {
	o := newOwner(t, noind(t), "EId")
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(1)); err != nil {
		t.Fatal(err)
	}
	for _, eid := range []string{"E259", "E101", "E199"} {
		if _, _, err := o.QueryNaive(relation.Str(eid)); err != nil {
			t.Fatal(err)
		}
	}
	res := adversary.InferenceAttack(o.Server().Views())
	want := map[string]adversary.Exposure{
		relation.Str("E259").Key(): adversary.ExposureBoth,
		relation.Str("E101").Key(): adversary.ExposureSensitiveOnly,
		relation.Str("E199").Key(): adversary.ExposureNonSensitiveOnly,
	}
	for k, exp := range want {
		if res.ByValue[k] != exp {
			t.Errorf("exposure[%s] = %v, want %v", k, res.ByValue[k], exp)
		}
	}
	if res.LinkedPairs != 1 {
		t.Errorf("LinkedPairs = %d, want 1 (E259)", res.LinkedPairs)
	}
}

// TestInferenceAttackDefeatedByQB reproduces Table III: under QB the same
// three queries give the adversary only bin-level ambiguity.
func TestInferenceAttackDefeatedByQB(t *testing.T) {
	o := newOwner(t, noind(t), "EId")
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(2)); err != nil {
		t.Fatal(err)
	}
	for _, eid := range []string{"E259", "E101", "E199"} {
		if _, _, err := o.Query(relation.Str(eid)); err != nil {
			t.Fatal(err)
		}
	}
	res := adversary.InferenceAttack(o.Server().Views())
	if len(res.ByValue) != 0 {
		t.Errorf("QB leaked classifications: %v", res.ByValue)
	}
	if res.Ambiguous != 3 {
		t.Errorf("Ambiguous = %d, want 3", res.Ambiguous)
	}
	for _, sz := range adversary.AnonymitySetSizes(o.Server().Views()) {
		if sz < 2 {
			t.Errorf("anonymity set of size %d under QB", sz)
		}
	}
}

// pairRelation builds the paper's base case: n values, each with exactly
// one sensitive and one non-sensitive tuple (a 1:1 association), so NS bins
// fill exactly and the Figure 4a guarantee applies.
func pairRelation(t *testing.T, n int) (*relation.Relation, relation.Predicate, []relation.Value) {
	t.Helper()
	s := relation.MustSchema("Pairs",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindInt},
	)
	r := relation.New(s)
	sens := make(map[int]bool)
	var values []relation.Value
	for v := 0; v < n; v++ {
		values = append(values, relation.Int(int64(v)))
		id := r.MustInsert(relation.Int(int64(v)), relation.Int(0))
		sens[id] = true
		r.MustInsert(relation.Int(int64(v)), relation.Int(1))
	}
	return r, func(tp relation.Tuple) bool { return sens[tp.ID] }, values
}

// TestSurvivingMatchesCompleteUnderQB checks the Figure 4a condition: after
// querying every value, the bin-association graph is complete bipartite.
func TestSurvivingMatchesCompleteUnderQB(t *testing.T) {
	rel, pred, values := pairRelation(t, 36) // 36 = 6x6 exact square
	o := newOwner(t, noind(t), "K")
	if err := o.Outsource(rel, pred, seededOpts(3)); err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if _, _, err := o.Query(v); err != nil {
			t.Fatal(err)
		}
	}
	g := adversary.AnalyzeViews(o.Server().Views())
	if len(g.SensGroups) == 0 || len(g.NSGroups) == 0 {
		t.Fatalf("degenerate groups: %d sens, %d ns", len(g.SensGroups), len(g.NSGroups))
	}
	if !g.IsCompleteBipartite() {
		t.Errorf("QB dropped %d surviving matches (%d sens x %d ns, %d edges)",
			g.DroppedMatches(), len(g.SensGroups), len(g.NSGroups), g.Edges())
	}
}

// TestSurvivingMatchesDroppedByNaive is the Figure 4b counterpart: naive
// execution produces per-value footprints whose association graph is far
// from complete.
func TestSurvivingMatchesDroppedByNaive(t *testing.T) {
	rel, pred, values := pairRelation(t, 36)
	o := newOwner(t, noind(t), "K")
	if err := o.Outsource(rel, pred, seededOpts(3)); err != nil {
		t.Fatal(err)
	}
	for _, v := range values {
		if _, _, err := o.QueryNaive(v); err != nil {
			t.Fatal(err)
		}
	}
	g := adversary.AnalyzeViews(o.Server().Views())
	if g.IsCompleteBipartite() {
		t.Error("naive execution unexpectedly preserved all surviving matches")
	}
	if g.DroppedMatches() == 0 {
		t.Error("naive execution dropped no matches")
	}
}

// TestSizeAttackAblation: without padding, a skewed dataset makes sensitive
// bins distinguishable by output size; QB's padding equalises them.
func TestSizeAttackAblation(t *testing.T) {
	// The §IV-B scenario: one heavy-hitter sensitive value (s1 with many
	// tuples) among singletons; each value also has one associated
	// non-sensitive tuple.
	s := relation.MustSchema("Skewed",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindInt},
	)
	rel := relation.New(s)
	sens := make(map[int]bool)
	var values []relation.Value
	for v := 0; v < 16; v++ {
		values = append(values, relation.Int(int64(v)))
		n := 1
		if v == 0 {
			n = 100 // the heavy hitter
		}
		for i := 0; i < n; i++ {
			id := rel.MustInsert(relation.Int(int64(v)), relation.Int(int64(i)))
			sens[id] = true
		}
		rel.MustInsert(relation.Int(int64(v)), relation.Int(-1)) // associated ns tuple
	}
	pred := func(tp relation.Tuple) bool { return sens[tp.ID] }

	run := func(opts core.Options) adversary.SizeAttackResult {
		o := newOwner(t, noind(t), "K")
		if err := o.Outsource(rel.Clone(), pred, opts); err != nil {
			t.Fatal(err)
		}
		for _, v := range values {
			if _, _, err := o.Query(v); err != nil {
				t.Fatal(err)
			}
		}
		return adversary.SizeAttack(o.Server().Views())
	}

	unpadded := seededOpts(9)
	unpadded.DisableFakePadding = true
	if res := run(unpadded); !res.Distinguishable {
		t.Error("size attack failed against unpadded skewed bins (positive control)")
	}
	if res := run(seededOpts(9)); res.Distinguishable {
		t.Errorf("size attack succeeded despite padding: sizes %v", res.GroupSizes)
	}
}

// TestFrequencyAttackAblation: the rank-matching frequency attack recovers
// most values from a deterministic store on skewed data, and nothing from a
// probabilistic or Arx store.
func TestFrequencyAttackAblation(t *testing.T) {
	ks := crypto.DeriveKeys([]byte("freq"))
	det, err := technique.NewDetIndex(ks)
	if err != nil {
		t.Fatal(err)
	}
	// Distinct, well-separated counts so frequency ranks are unambiguous.
	var rows []technique.Row
	var aux []relation.ValueCount
	truth := make(map[string]relation.Value)
	detCipher, err := crypto.NewDeterministic(ks.Det, ks.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 12; v++ {
		val := relation.Int(int64(v))
		count := (v + 1) * 3
		aux = append(aux, relation.ValueCount{Value: val, Count: count})
		truth[string(detCipher.Encrypt(val.Encode()))] = val
		for i := 0; i < count; i++ {
			rows = append(rows, technique.Row{Payload: []byte{byte(v)}, Attr: val})
		}
	}
	if _, err := det.Outsource(rows); err != nil {
		t.Fatal(err)
	}
	guesses := adversary.FrequencyAttack(det.Store(), aux)
	if acc := adversary.ScoreFrequencyAttack(guesses, truth); acc < 0.99 {
		t.Errorf("frequency attack accuracy %v against deterministic store, want ~1", acc)
	}

	// Arx store: tokens are unique, the histogram is flat, rank matching is
	// pure chance.
	arx, err := technique.NewArx(ks)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arx.Outsource(rows); err != nil {
		t.Fatal(err)
	}
	guesses = adversary.FrequencyAttack(arx.Store(), aux)
	if acc := adversary.ScoreFrequencyAttack(guesses, truth); acc > 0.01 {
		t.Errorf("frequency attack accuracy %v against Arx store, want ~0", acc)
	}
}

// TestWorkloadSkewAblation: under naive execution each value has its own
// encrypted footprint, so the adversary pins hot values exactly; under QB
// the anonymity set is the bin size.
func TestWorkloadSkewAblation(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 200, DistinctValues: 36, Alpha: 1.0, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries := workload.QueryStream(ds, workload.QuerySpec{Queries: 150, ZipfS: 1.6, Seed: 14})

	run := func(naive bool) adversary.WorkloadSkewResult {
		o := newOwner(t, noind(t), workload.Attr)
		if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(15)); err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			var err error
			if naive {
				_, _, err = o.QueryNaive(q)
			} else {
				_, _, err = o.Query(q)
			}
			if err != nil {
				t.Fatal(err)
			}
		}
		return adversary.WorkloadSkewAttack(o.Server().Views(), len(ds.Values))
	}

	naiveRes := run(true)
	if naiveRes.AnonymitySet > 2 {
		t.Errorf("naive anonymity set %d, want ~1", naiveRes.AnonymitySet)
	}
	qbRes := run(false)
	if qbRes.AnonymitySet < 3 {
		t.Errorf("QB anonymity set %d, want >= bin size", qbRes.AnonymitySet)
	}
	if qbRes.Footprints >= naiveRes.Footprints {
		t.Errorf("QB footprints %d not fewer than naive %d", qbRes.Footprints, naiveRes.Footprints)
	}
}

// TestAnalyzeViewsEmptySides covers views with missing components.
func TestAnalyzeViewsEmptySides(t *testing.T) {
	views := []cloud.View{
		{PlainValues: []relation.Value{relation.Int(1)}}, // plain only
		{EncPredicates: 2, EncResultAddrs: []int{1, 2}},  // enc only
		{}, // nothing
	}
	g := adversary.AnalyzeViews(views)
	if len(g.NSGroups) != 1 || len(g.SensGroups) != 1 {
		t.Fatalf("groups = %d/%d", len(g.SensGroups), len(g.NSGroups))
	}
	if g.Edges() != 0 {
		t.Errorf("edges = %d, want 0", g.Edges())
	}
	if g.IsCompleteBipartite() {
		t.Error("incomplete graph reported complete")
	}
}

func TestSizeAttackEmptyViews(t *testing.T) {
	res := adversary.SizeAttack(nil)
	if res.Distinguishable || res.MaxOverMin != 1 {
		t.Errorf("empty views result = %+v", res)
	}
}
