package adversary

import (
	"repro/internal/cloud"
)

// Exposure classifies what the adversary learned about a queried value from
// a naive partitioned execution (Example 2): whether it exists only among
// the sensitive tuples, only among the non-sensitive tuples, or in both.
type Exposure int

const (
	// ExposureNone means the view did not let the adversary classify the
	// value.
	ExposureNone Exposure = iota
	// ExposureSensitiveOnly: the plaintext side returned nothing while the
	// encrypted side returned tuples (Q2 in Example 2 — "E101 works only
	// in a sensitive department").
	ExposureSensitiveOnly
	// ExposureNonSensitiveOnly: only the plaintext side answered (Q3 —
	// "E199 works only in a non-sensitive department").
	ExposureNonSensitiveOnly
	// ExposureBoth: both sides answered (Q1 — "E259 works in both"), which
	// additionally links an encrypted tuple to a plaintext one.
	ExposureBoth
)

// String renders the exposure class.
func (e Exposure) String() string {
	switch e {
	case ExposureSensitiveOnly:
		return "sensitive-only"
	case ExposureNonSensitiveOnly:
		return "non-sensitive-only"
	case ExposureBoth:
		return "both"
	default:
		return "none"
	}
}

// InferenceResult is the outcome of the Example 2 attack over a view log.
type InferenceResult struct {
	// ByValue maps the plaintext query predicate (by Value.Key) to what the
	// adversary concluded. Only views whose plaintext predicate set pins
	// down a single value contribute.
	ByValue map[string]Exposure
	// Ambiguous counts views whose plaintext predicate set contained more
	// than one value, so the adversary could not single out the query value
	// — the QB case.
	Ambiguous int
	// LinkedPairs counts views that associated a specific encrypted tuple
	// address set with a specific plaintext value (the KPA-style leak).
	LinkedPairs int
}

// InferenceAttack replays Example 2: for every view whose clear-text
// predicate is a single value, classify that value by which sides returned
// results. Under QB every view carries a whole non-sensitive bin, so the
// attack degrades to bin-level ambiguity.
func InferenceAttack(views []cloud.View) *InferenceResult {
	res := &InferenceResult{ByValue: make(map[string]Exposure)}
	for _, v := range views {
		if len(v.PlainValues) != 1 {
			if len(v.PlainValues) > 1 {
				res.Ambiguous++
			}
			continue
		}
		key := v.PlainValues[0].Key()
		gotPlain := len(v.PlainResults) > 0
		gotEnc := len(v.EncResultAddrs) > 0
		switch {
		case gotPlain && gotEnc:
			res.ByValue[key] = ExposureBoth
			res.LinkedPairs++
		case gotEnc:
			res.ByValue[key] = ExposureSensitiveOnly
		case gotPlain:
			res.ByValue[key] = ExposureNonSensitiveOnly
		default:
			res.ByValue[key] = ExposureNone
		}
	}
	return res
}

// AnonymitySetSizes returns, for each view with a plaintext component, how
// many clear-text candidate predicates the true query value hides among —
// 1 for naive execution, the non-sensitive bin size under QB.
func AnonymitySetSizes(views []cloud.View) []int {
	var out []int
	for _, v := range views {
		if len(v.PlainValues) > 0 {
			out = append(out, len(v.PlainValues))
		}
	}
	return out
}
