// Package costmodel implements the analytical performance model of §V-A:
// the parameters α (sensitivity), β (encrypted/plaintext search cost
// ratio), γ (encrypted search / communication cost ratio) and ρ (query
// selectivity), the plaintext and cryptographic query cost functions, and
// the ratio η comparing QB against encrypting the entire dataset. η < 1
// means QB wins.
package costmodel

import (
	"fmt"
	"math"
)

// Params are the model inputs.
type Params struct {
	// Alpha is |S| / (|S| + |NS|): the fraction of the data that is
	// sensitive.
	Alpha float64
	// Beta is Ce/Cp: how much slower one encrypted predicate search is
	// than a plaintext one.
	Beta float64
	// Gamma is Ce/Ccom: encrypted search cost over per-tuple transfer
	// cost. Strong cryptography has γ in the thousands (the paper estimates
	// γ ≈ 25000 for secret sharing on the TPC-H Customer table).
	Gamma float64
	// Rho is the query selectivity (fraction of tuples matching one
	// predicate).
	Rho float64
	// D is the total number of tuples.
	D int
	// SB and NSB are the number of values per sensitive and non-sensitive
	// bin respectively (the per-query predicate counts).
	SB, NSB int
}

// Validate checks the parameters are in range.
func (p Params) Validate() error {
	switch {
	case p.Alpha < 0 || p.Alpha > 1:
		return fmt.Errorf("costmodel: alpha %v outside [0,1]", p.Alpha)
	case p.Beta <= 0:
		return fmt.Errorf("costmodel: beta %v must be positive", p.Beta)
	case p.Gamma <= 0:
		return fmt.Errorf("costmodel: gamma %v must be positive", p.Gamma)
	case p.Rho < 0 || p.Rho > 1:
		return fmt.Errorf("costmodel: rho %v outside [0,1]", p.Rho)
	case p.D <= 0:
		return fmt.Errorf("costmodel: D %d must be positive", p.D)
	case p.SB < 0 || p.NSB < 0:
		return fmt.Errorf("costmodel: bin sizes must be non-negative")
	}
	return nil
}

// CostPlain is Cost_plain(x, D): processing x plaintext selection
// predicates over D tuples plus transferring the matching tuples, in units
// of Ccom (per-tuple transfer cost). Cp = Ce/(β·γ) · Ccom.
func (p Params) CostPlain(x, d int) float64 {
	cp := p.Gamma / p.Beta // Cp in Ccom units: Ce=γ·Ccom, Cp=Ce/β
	return float64(x)*math.Log2(float64(d)+1)*cp + float64(x)*p.Rho*float64(d)
}

// CostCrypt is Cost_crypt(x, D): one amortised encrypted scan of D tuples
// (the x predicates share the scan, §V-A) plus transferring the matches, in
// Ccom units.
func (p Params) CostCrypt(x, d int) float64 {
	return p.Gamma*float64(d) + float64(x)*p.Rho*float64(d)
}

// Eta computes the full ratio of §V-A:
//
//	η = Cost_crypt(|SB|, S)/Cost_crypt(1, D) + Cost_plain(|NSB|, NS)/Cost_crypt(1, D)
//
// with S = α·D and NS = (1-α)·D.
func (p Params) Eta() float64 {
	s := int(math.Round(p.Alpha * float64(p.D)))
	ns := p.D - s
	denom := p.CostCrypt(1, p.D)
	if denom == 0 {
		return math.Inf(1)
	}
	return (p.CostCrypt(p.SB, s) + p.CostPlain(p.NSB, ns)) / denom
}

// EtaSimplified is the closed form the paper reduces to after dropping the
// negligible terms: η = α + ρ(|SB| + |NSB|)/γ.
func (p Params) EtaSimplified() float64 {
	return p.Alpha + p.Rho*float64(p.SB+p.NSB)/p.Gamma
}

// BreakEvenAlpha returns the sensitivity threshold below which QB beats
// full encryption (η < 1): α < 1 − 2ρ√|NS|/γ, using |SB| ≈ |NSB| ≈ √|NS|.
func BreakEvenAlpha(rho, gamma float64, nNonSensitiveValues int) float64 {
	return 1 - 2*rho*math.Sqrt(float64(nNonSensitiveValues))/gamma
}

// BinSizesFor returns the √|NS| bin-size estimate used throughout §V.
func BinSizesFor(nNonSensitiveValues int) (sb, nsb int) {
	s := int(math.Round(math.Sqrt(float64(nNonSensitiveValues))))
	if s < 1 {
		s = 1
	}
	return s, s
}

// SeriesPoint is one (x, y) sample of a figure series.
type SeriesPoint struct {
	X float64
	Y float64
}

// Figure6aSeries reproduces Figure 6a: η as a function of γ for each α,
// using the simplified model with ρ fixed (10% in the paper) and bin sizes
// √|NS|.
func Figure6aSeries(alphas, gammas []float64, rho float64, nNonSensitiveValues int) map[float64][]SeriesPoint {
	sb, nsb := BinSizesFor(nNonSensitiveValues)
	out := make(map[float64][]SeriesPoint, len(alphas))
	for _, a := range alphas {
		series := make([]SeriesPoint, 0, len(gammas))
		for _, g := range gammas {
			p := Params{Alpha: a, Rho: rho, Gamma: g, SB: sb, NSB: nsb}
			series = append(series, SeriesPoint{X: g, Y: p.EtaSimplified()})
		}
		out[a] = series
	}
	return out
}
