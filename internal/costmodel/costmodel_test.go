package costmodel

import (
	"math"
	"testing"
)

func validParams() Params {
	return Params{Alpha: 0.3, Beta: 1000, Gamma: 25000, Rho: 0.1, D: 1_000_000, SB: 100, NSB: 100}
}

func TestValidate(t *testing.T) {
	if err := validParams().Validate(); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	bad := []func(*Params){
		func(p *Params) { p.Alpha = -0.1 },
		func(p *Params) { p.Alpha = 1.1 },
		func(p *Params) { p.Beta = 0 },
		func(p *Params) { p.Gamma = -1 },
		func(p *Params) { p.Rho = 2 },
		func(p *Params) { p.D = 0 },
		func(p *Params) { p.SB = -1 },
	}
	for i, mut := range bad {
		p := validParams()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestEtaSimplifiedFormula(t *testing.T) {
	p := Params{Alpha: 0.3, Rho: 0.1, Gamma: 1000, SB: 50, NSB: 50}
	want := 0.3 + 0.1*100/1000
	if got := p.EtaSimplified(); math.Abs(got-want) > 1e-12 {
		t.Errorf("EtaSimplified = %v, want %v", got, want)
	}
}

func TestEtaMonotoneInAlpha(t *testing.T) {
	prev := -1.0
	for _, a := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := validParams()
		p.Alpha = a
		got := p.Eta()
		if got <= prev {
			t.Fatalf("eta not increasing in alpha: %v at alpha=%v", got, a)
		}
		prev = got
	}
}

func TestEtaBelowOneForStrongCrypto(t *testing.T) {
	// §V-A: with γ ≈ 25000 QB wins for almost any α < 1.
	p := validParams()
	p.Alpha = 0.5
	if got := p.Eta(); got >= 1 {
		t.Errorf("eta = %v, want < 1 for strong crypto", got)
	}
	if got := p.EtaSimplified(); got >= 1 {
		t.Errorf("eta simplified = %v, want < 1", got)
	}
}

func TestEtaApproachesAlphaAsGammaGrows(t *testing.T) {
	p := validParams()
	p.Gamma = 1e9
	if math.Abs(p.EtaSimplified()-p.Alpha) > 1e-3 {
		t.Errorf("eta(γ→∞) = %v, want ≈ α = %v", p.EtaSimplified(), p.Alpha)
	}
}

func TestFullEtaTracksSimplified(t *testing.T) {
	// For large D and β, the dropped terms are negligible: the two forms
	// must agree within a few percent.
	p := Params{Alpha: 0.4, Beta: 10000, Gamma: 25000, Rho: 0.01, D: 4_500_000, SB: 1000, NSB: 1000}
	full, simp := p.Eta(), p.EtaSimplified()
	if math.Abs(full-simp) > 0.05*simp+0.01 {
		t.Errorf("full eta %v vs simplified %v diverge", full, simp)
	}
}

func TestBreakEvenAlpha(t *testing.T) {
	// γ = 25000, ρ = 1/|NS| (uniform), |NS| = 1e6: α* ≈ 1 - 2*1e-6*1000/25000 ≈ 1.
	got := BreakEvenAlpha(1e-6, 25000, 1_000_000)
	if got < 0.999 {
		t.Errorf("break-even alpha = %v, want ≈ 1", got)
	}
	// Cheap crypto (γ = 1) with broad queries: QB should rarely win.
	got = BreakEvenAlpha(0.5, 1, 10000)
	if got > 0 {
		t.Errorf("break-even alpha = %v, want <= 0 for cheap crypto", got)
	}
}

func TestBinSizesFor(t *testing.T) {
	sb, nsb := BinSizesFor(100)
	if sb != 10 || nsb != 10 {
		t.Errorf("BinSizesFor(100) = %d,%d", sb, nsb)
	}
	sb, _ = BinSizesFor(0)
	if sb != 1 {
		t.Errorf("BinSizesFor(0) = %d, want 1", sb)
	}
}

func TestFigure6aSeries(t *testing.T) {
	alphas := []float64{0.3, 0.6, 0.9, 1}
	gammas := []float64{100, 10000, 50000}
	series := Figure6aSeries(alphas, gammas, 0.1, 1_000_000)
	if len(series) != 4 {
		t.Fatalf("series count = %d", len(series))
	}
	for _, a := range alphas {
		pts := series[a]
		if len(pts) != len(gammas) {
			t.Fatalf("alpha %v has %d points", a, len(pts))
		}
		// η decreases in γ and tends to α.
		for i := 1; i < len(pts); i++ {
			if pts[i].Y > pts[i-1].Y {
				t.Errorf("alpha %v: eta increased with gamma", a)
			}
		}
		last := pts[len(pts)-1].Y
		if last < a || last > a+0.5 {
			t.Errorf("alpha %v: eta(γ=50000) = %v", a, last)
		}
	}
}
