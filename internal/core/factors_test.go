package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestApproxSquareFactors(t *testing.T) {
	cases := []struct {
		n, x, y int
	}{
		{1, 1, 1},
		{2, 2, 1},
		{4, 2, 2},
		{12, 4, 3},
		{16, 4, 4},
		{17, 17, 1}, // prime
		{82, 41, 2},
		{100, 10, 10},
		{0, 0, 0},
		{-3, 0, 0},
	}
	for _, c := range cases {
		x, y := ApproxSquareFactors(c.n)
		if x != c.x || y != c.y {
			t.Errorf("ApproxSquareFactors(%d) = (%d,%d), want (%d,%d)", c.n, x, y, c.x, c.y)
		}
	}
}

func TestApproxSquareFactorsProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(1 + r.Intn(100000))
		},
	}
	prop := func(n int) bool {
		x, y := ApproxSquareFactors(n)
		if x*y != n || x < y {
			return false
		}
		// y is the largest divisor <= sqrt(n): no better pair exists.
		for d := y + 1; d*d <= n; d++ {
			if n%d == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestNearestSquareRoot(t *testing.T) {
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 2}, {7, 3}, {8, 3},
		{82, 9}, {100, 10}, {0, 0},
	}
	for _, c := range cases {
		if got := NearestSquareRoot(c.n); got != c.want {
			t.Errorf("NearestSquareRoot(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestChooseSensitiveBinCountPrefersNearSquare(t *testing.T) {
	// The §IV-A example: 41 sensitive / 82 non-sensitive values. Exact
	// factorisation would give 41 bins (cost 41+1); the nearest-square
	// extension gives 9 (cost 9+5).
	x := chooseSensitiveBinCount(41, 82, false)
	if x != 9 {
		t.Errorf("extension chose %d bins, want 9", x)
	}
	xNoExt := chooseSensitiveBinCount(41, 82, true)
	if xNoExt != 41 {
		t.Errorf("plain Algorithm 1 chose %d bins, want 41", xNoExt)
	}
}

func TestChooseSensitiveBinCountCapsAtSensitiveValues(t *testing.T) {
	if x := chooseSensitiveBinCount(3, 100, false); x > 3 {
		t.Errorf("bin count %d exceeds |S| = 3", x)
	}
	if x := chooseSensitiveBinCount(10, 16, false); x < 1 {
		t.Errorf("bin count %d", x)
	}
}
