package core
