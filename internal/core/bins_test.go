package core

import (
	mrand "math/rand/v2"
	"testing"

	"repro/internal/relation"
)

func seededOpts(seed uint64) Options {
	return Options{Rand: mrand.New(mrand.NewPCG(seed, seed^0x9e3779b9))}
}

func vcs(prefix string, n, count int) []relation.ValueCount {
	out := make([]relation.ValueCount, n)
	for i := range out {
		out[i] = relation.ValueCount{Value: relation.Str(prefix + string(rune('A'+i/26)) + string(rune('a'+i%26))), Count: count}
	}
	return out
}

func intVCs(lo, n, count int) []relation.ValueCount {
	out := make([]relation.ValueCount, n)
	for i := range out {
		out[i] = relation.ValueCount{Value: relation.Int(int64(lo + i)), Count: count}
	}
	return out
}

// checkCover asserts every input value appears in exactly one bin of its
// side.
func checkCover(t *testing.T, b *Bins, sens, nonsens []relation.ValueCount) {
	t.Helper()
	seen := make(map[string]int)
	for _, bin := range b.Sensitive {
		for _, vc := range bin {
			seen[vc.Value.Key()]++
		}
	}
	for _, vc := range sens {
		if seen[vc.Value.Key()] != 1 {
			t.Fatalf("sensitive value %v appears %d times in bins", vc.Value, seen[vc.Value.Key()])
		}
	}
	total := 0
	for _, bin := range b.Sensitive {
		total += len(bin)
	}
	if total != len(sens) {
		t.Fatalf("sensitive bins hold %d values, want %d", total, len(sens))
	}
	seen = make(map[string]int)
	for _, bin := range b.NonSensitive {
		for _, vc := range bin {
			seen[vc.Value.Key()]++
		}
	}
	for _, vc := range nonsens {
		if seen[vc.Value.Key()] != 1 {
			t.Fatalf("non-sensitive value %v appears %d times in bins", vc.Value, seen[vc.Value.Key()])
		}
	}
	total = 0
	for _, bin := range b.NonSensitive {
		total += len(bin)
	}
	if total != len(nonsens) {
		t.Fatalf("non-sensitive bins hold %d values, want %d", total, len(nonsens))
	}
}

// checkRetrieval asserts Algorithm 2's guarantees for every value.
func checkRetrieval(t *testing.T, b *Bins, sens, nonsens []relation.ValueCount) {
	t.Helper()
	nsSet := make(map[string]bool, len(nonsens))
	for _, vc := range nonsens {
		nsSet[vc.Value.Key()] = true
	}
	contains := func(vals []relation.Value, w relation.Value) bool {
		for _, v := range vals {
			if v.Equal(w) {
				return true
			}
		}
		return false
	}
	for _, vc := range sens {
		ret, ok := b.Retrieve(vc.Value)
		if !ok {
			t.Fatalf("Retrieve(%v) (sensitive) not found", vc.Value)
		}
		if !contains(ret.SensValues, vc.Value) {
			t.Fatalf("sensitive bin for %v does not contain it", vc.Value)
		}
		// If the value is associated, the retrieved NS bin must cover it
		// too (the completeness condition w ∈ Wns ∩ Ws).
		if nsSet[vc.Value.Key()] && !contains(ret.NSValues, vc.Value) {
			t.Fatalf("associated value %v missing from its non-sensitive bin", vc.Value)
		}
	}
	for _, vc := range nonsens {
		ret, ok := b.Retrieve(vc.Value)
		if !ok {
			t.Fatalf("Retrieve(%v) (non-sensitive) not found", vc.Value)
		}
		if !contains(ret.NSValues, vc.Value) {
			t.Fatalf("non-sensitive bin for %v does not contain it", vc.Value)
		}
	}
	if _, ok := b.Retrieve(relation.Str("definitely-not-a-value")); ok {
		t.Fatal("Retrieve of unknown value reported found")
	}
}

// checkPadding asserts all sensitive bins answer with equal volume.
func checkPadding(t *testing.T, b *Bins) {
	t.Helper()
	vols := b.SensitiveVolumes()
	for i, v := range vols {
		if v != b.TargetVolume {
			t.Fatalf("bin %d volume %d != target %d (volumes %v)", i, v, b.TargetVolume, vols)
		}
	}
}

func TestCreateBinsExample3(t *testing.T) {
	// §IV-A Example 3: 10 sensitive and 10 non-sensitive values, 5
	// associated. Expect 5 sensitive bins of 2 and 2 non-sensitive bins of
	// 5.
	sens := intVCs(0, 10, 1)
	nonsens := append(intVCs(0, 5, 1), intVCs(100, 5, 1)...) // 0..4 associated
	b, err := CreateBins(sens, nonsens, seededOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	if got := b.SensitiveBinCount(); got != 5 {
		t.Errorf("sensitive bins = %d, want 5", got)
	}
	if got := b.NonSensitiveBinCount(); got != 2 {
		t.Errorf("non-sensitive bins = %d, want 2", got)
	}
	for i, bin := range b.Sensitive {
		if len(bin) != 2 {
			t.Errorf("sensitive bin %d holds %d values, want 2", i, len(bin))
		}
	}
	for i, bin := range b.NonSensitive {
		if len(bin) != 5 {
			t.Errorf("non-sensitive bin %d holds %d values, want 5", i, len(bin))
		}
	}
	checkCover(t, b, sens, nonsens)
	checkRetrieval(t, b, sens, nonsens)
	checkPadding(t, b)
}

func TestCreateBins4x4Matrix(t *testing.T) {
	// The §IV walkthrough: 16 values, all associated — a 4x4 matrix.
	sens := intVCs(0, 16, 1)
	nonsens := intVCs(0, 16, 1)
	b, err := CreateBins(sens, nonsens, seededOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if b.SensitiveBinCount() != 4 || b.NonSensitiveBinCount() != 4 {
		t.Fatalf("bins = %dx%d, want 4x4", b.SensitiveBinCount(), b.NonSensitiveBinCount())
	}
	checkCover(t, b, sens, nonsens)
	checkRetrieval(t, b, sens, nonsens)
}

// TestCompleteBipartiteAssociation verifies the security core: after
// querying every value, each sensitive bin has been retrieved together with
// each non-sensitive bin, so no surviving match is dropped (Figure 4a).
func TestCompleteBipartiteAssociation(t *testing.T) {
	configs := []struct {
		nSens, nNS int
	}{
		{10, 10}, {16, 16}, {5, 25}, {30, 100}, {36, 36},
	}
	for _, c := range configs {
		sens := intVCs(0, c.nSens, 1)
		nonsens := intVCs(0, c.nNS, 1) // full association on the overlap
		b, err := CreateBins(sens, nonsens, seededOpts(uint64(c.nSens*1000+c.nNS)))
		if err != nil {
			t.Fatal(err)
		}
		pairs := make(map[[2]int]bool)
		for _, vc := range append(append([]relation.ValueCount{}, sens...), nonsens...) {
			ret, ok := b.Retrieve(vc.Value)
			if !ok {
				t.Fatalf("config %+v: value %v not retrievable", c, vc.Value)
			}
			if ret.SensBin >= 0 && ret.NSBin >= 0 {
				pairs[[2]int{ret.SensBin, ret.NSBin}] = true
			}
		}
		want := b.SensitiveBinCount() * b.NonSensitiveBinCount()
		if len(pairs) != want {
			t.Errorf("config %+v: %d of %d bin associations observed", c, len(pairs), want)
		}
	}
}

func TestCreateBinsGeneralCaseFigure5(t *testing.T) {
	// §IV-B Example 5: 9 sensitive values with 10..90 tuples, 9
	// non-sensitive values, 3 bins. The greedy allocation must equalise
	// volumes with few fakes (the naive contiguous split needs 270).
	sens := make([]relation.ValueCount, 9)
	for i := range sens {
		sens[i] = relation.ValueCount{Value: relation.Int(int64(i + 1)), Count: 10 * (i + 1)}
	}
	nonsens := intVCs(100, 9, 1)
	b, err := CreateBins(sens, nonsens, seededOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	if b.SensitiveBinCount() != 3 {
		t.Fatalf("sensitive bins = %d, want 3", b.SensitiveBinCount())
	}
	checkPadding(t, b)
	if fakes := b.TotalFakeTuples(); fakes > 30 {
		t.Errorf("greedy allocation needed %d fakes, want <= 30 (naive needs 90-270)", fakes)
	}
	checkCover(t, b, sens, nonsens)
	checkRetrieval(t, b, sens, nonsens)
}

func TestCreateBinsSkewWithoutPadding(t *testing.T) {
	sens := []relation.ValueCount{
		{Value: relation.Int(1), Count: 1000},
		{Value: relation.Int(2), Count: 1},
		{Value: relation.Int(3), Count: 1},
		{Value: relation.Int(4), Count: 1},
	}
	nonsens := intVCs(10, 4, 1)
	b, err := CreateBins(sens, nonsens, Options{
		Rand:               mrand.New(mrand.NewPCG(1, 2)),
		DisableFakePadding: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.TotalFakeTuples() != 0 {
		t.Errorf("padding disabled but %d fakes", b.TotalFakeTuples())
	}
	vols := b.SensitiveVolumes()
	equal := true
	for _, v := range vols {
		if v != vols[0] {
			equal = false
		}
	}
	if equal {
		t.Error("skewed bins unexpectedly uniform without padding")
	}
}

func TestCreateBinsReversed(t *testing.T) {
	// |S| > |NS|: Algorithm 1 applied in reverse.
	sens := intVCs(0, 50, 1)
	nonsens := intVCs(0, 10, 1)
	b, err := CreateBins(sens, nonsens, seededOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	if !b.Reversed {
		t.Error("Reversed not set for |S| > |NS|")
	}
	checkCover(t, b, sens, nonsens)
	checkRetrieval(t, b, sens, nonsens)
	checkPadding(t, b)
}

func TestCreateBinsDegenerate(t *testing.T) {
	// Empty both sides.
	b, err := CreateBins(nil, nil, seededOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Retrieve(relation.Int(1)); ok {
		t.Error("empty bins retrieved something")
	}

	// Only sensitive values.
	sens := intVCs(0, 9, 2)
	b, err = CreateBins(sens, nil, seededOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, b, sens, nil)
	checkPadding(t, b)
	ret, ok := b.Retrieve(relation.Int(4))
	if !ok || ret.SensBin < 0 || ret.NSBin != -1 {
		t.Errorf("sensitive-only retrieval = %+v, %v", ret, ok)
	}

	// Only non-sensitive values: singleton bins, exact queries.
	nonsens := intVCs(0, 7, 1)
	b, err = CreateBins(nil, nonsens, seededOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	ret, ok = b.Retrieve(relation.Int(3))
	if !ok || ret.SensBin != -1 || len(ret.NSValues) != 1 {
		t.Errorf("non-sensitive-only retrieval = %+v, %v", ret, ok)
	}
}

func TestCreateBinsValidation(t *testing.T) {
	dup := []relation.ValueCount{
		{Value: relation.Int(1), Count: 1},
		{Value: relation.Int(1), Count: 2},
	}
	if _, err := CreateBins(dup, nil, seededOpts(1)); err == nil {
		t.Error("duplicate sensitive values accepted")
	}
	if _, err := CreateBins(nil, dup, seededOpts(1)); err == nil {
		t.Error("duplicate non-sensitive values accepted")
	}
	neg := []relation.ValueCount{{Value: relation.Int(1), Count: -1}}
	if _, err := CreateBins(neg, nil, seededOpts(1)); err == nil {
		t.Error("negative count accepted")
	}
}

func TestCreateBinsForcedBinCount(t *testing.T) {
	sens := intVCs(0, 20, 1)
	nonsens := intVCs(0, 20, 1)
	for _, forced := range []int{1, 2, 5, 10, 20} {
		opts := seededOpts(uint64(forced))
		opts.ForcedBinCount = forced
		b, err := CreateBins(sens, nonsens, opts)
		if err != nil {
			t.Fatal(err)
		}
		if b.SensitiveBinCount() != forced {
			t.Errorf("forced %d produced %d sensitive bins", forced, b.SensitiveBinCount())
		}
		checkCover(t, b, sens, nonsens)
		checkRetrieval(t, b, sens, nonsens)
	}
}

func TestCreateBinsPermutationIsSeedDependent(t *testing.T) {
	sens := intVCs(0, 30, 1)
	nonsens := intVCs(0, 30, 1)
	b1, err := CreateBins(sens, nonsens, seededOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := CreateBins(sens, nonsens, seededOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	b3, err := CreateBins(sens, nonsens, seededOpts(99))
	if err != nil {
		t.Fatal(err)
	}
	key := func(b *Bins) string {
		s := ""
		for _, bin := range b.Sensitive {
			for _, vc := range bin {
				s += vc.Value.Key() + ","
			}
			s += ";"
		}
		return s
	}
	if key(b1) != key(b2) {
		t.Error("same seed produced different bins")
	}
	if key(b1) == key(b3) {
		t.Error("different seeds produced identical bins (permutation not applied)")
	}
}

func TestMetadataBytesPositive(t *testing.T) {
	b, err := CreateBins(intVCs(0, 10, 1), intVCs(0, 10, 1), seededOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if b.MetadataBytes() <= 0 {
		t.Error("metadata size not positive")
	}
}
