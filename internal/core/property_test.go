package core

import (
	"math/rand"
	mrandv2 "math/rand/v2"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/relation"
)

// binConfig is a randomly drawn CreateBins input for property testing.
type binConfig struct {
	nSens, nNS int
	assoc      int // number of associated values (on both sides)
	maxCount   int
	seed       uint64
}

func randomConfig(r *rand.Rand) binConfig {
	return binConfig{
		nSens:    r.Intn(60),
		nNS:      r.Intn(120),
		assoc:    r.Intn(40),
		maxCount: 1 + r.Intn(20),
		seed:     r.Uint64(),
	}
}

func (c binConfig) build(r *rand.Rand) (sens, nonsens []relation.ValueCount) {
	assoc := c.assoc
	if assoc > c.nSens {
		assoc = c.nSens
	}
	if assoc > c.nNS {
		assoc = c.nNS
	}
	// Associated values 0..assoc-1 appear on both sides; the rest are
	// disjoint.
	for i := 0; i < c.nSens; i++ {
		v := relation.Int(int64(i))
		if i >= assoc {
			v = relation.Int(int64(1000 + i))
		}
		sens = append(sens, relation.ValueCount{Value: v, Count: 1 + r.Intn(c.maxCount)})
	}
	for i := 0; i < c.nNS; i++ {
		v := relation.Int(int64(i))
		if i >= assoc {
			v = relation.Int(int64(2000 + i))
		}
		nonsens = append(nonsens, relation.ValueCount{Value: v, Count: 1 + r.Intn(c.maxCount)})
	}
	return sens, nonsens
}

// TestBinInvariantsProperty fuzzes CreateBins across sizes, skews and
// association structures and asserts the core invariants: exact cover,
// retrievability of every value with completeness on associated values,
// equalised padded volumes, and in-range bin coordinates.
func TestBinInvariantsProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 150,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(randomConfig(r))
		},
	}
	prop := func(c binConfig) bool {
		r := rand.New(rand.NewSource(int64(c.seed)))
		sens, nonsens := c.build(r)
		b, err := CreateBins(sens, nonsens, Options{
			Rand: mrandv2.New(mrandv2.NewPCG(c.seed, ^c.seed)),
		})
		if err != nil {
			t.Logf("CreateBins(%+v): %v", c, err)
			return false
		}
		// Cover: every value in exactly one bin.
		if !coversExactly(b.Sensitive, sens) || !coversExactly(b.NonSensitive, nonsens) {
			t.Logf("cover violated for %+v", c)
			return false
		}
		// Padding: equal volumes.
		vols := b.SensitiveVolumes()
		for _, v := range vols {
			if v != b.TargetVolume {
				t.Logf("padding violated for %+v: %v target %d", c, vols, b.TargetVolume)
				return false
			}
		}
		// Retrieval correctness.
		nsSet := make(map[string]bool)
		for _, vc := range nonsens {
			nsSet[vc.Value.Key()] = true
		}
		for _, vc := range append(append([]relation.ValueCount{}, sens...), nonsens...) {
			ret, ok := b.Retrieve(vc.Value)
			if !ok {
				t.Logf("value %v unretrievable for %+v", vc.Value, c)
				return false
			}
			if ret.SensBin >= len(b.Sensitive) || ret.NSBin >= len(b.NonSensitive) {
				t.Logf("out-of-range bins %+v for %+v", ret, c)
				return false
			}
			inSens := containsValue(ret.SensValues, vc.Value)
			inNS := containsValue(ret.NSValues, vc.Value)
			if !inSens && !inNS {
				t.Logf("value %v missing from both retrieved bins for %+v", vc.Value, c)
				return false
			}
			// Completeness: if associated, both bins must cover it.
			if b.ContainsSensitive(vc.Value) && b.ContainsNonSensitive(vc.Value) && (!inSens || !inNS) {
				t.Logf("associated value %v only partially covered for %+v", vc.Value, c)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func coversExactly(bins [][]relation.ValueCount, vals []relation.ValueCount) bool {
	seen := make(map[string]int)
	total := 0
	for _, bin := range bins {
		for _, vc := range bin {
			seen[vc.Value.Key()]++
			total++
		}
	}
	if total != len(vals) {
		return false
	}
	for _, vc := range vals {
		if seen[vc.Value.Key()] != 1 {
			return false
		}
	}
	return true
}

func containsValue(vals []relation.Value, w relation.Value) bool {
	for _, v := range vals {
		if v.Equal(w) {
			return true
		}
	}
	return false
}
