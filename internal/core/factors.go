// Package core implements query binning (QB), the central contribution of
// "Partitioned Data Security on Outsourced Sensitive and Non-sensitive
// Data" (Mehrotra et al., ICDE 2019, §IV).
//
// Bin creation (Algorithm 1) arranges the distinct values of the searchable
// attribute into sensitive bins SB and non-sensitive bins NSB such that
// retrieving one bin of each side per query (Algorithm 2) (i) covers the
// queried value on both sides and (ii) preserves every "surviving match"
// between sensitive and non-sensitive values, which yields partitioned data
// security (§III). The general case (§IV-B) additionally equalises the
// number of tuples per sensitive bin with encrypted fake tuples, defeating
// size and frequency-count attacks.
package core

import "math"

// ApproxSquareFactors returns the pair (x, y) with x*y == n, x >= y, and
// |x-y| minimal — the "approximately square factors" of §IV-A. n must be
// positive; for n == 1 it returns (1, 1).
func ApproxSquareFactors(n int) (x, y int) {
	if n <= 0 {
		return 0, 0
	}
	for d := int(math.Sqrt(float64(n))); d >= 1; d-- {
		if n%d == 0 {
			return n / d, d
		}
	}
	return n, 1 // unreachable: d=1 always divides
}

// NearestSquareRoot returns the integer s minimising |s*s - n|, preferring
// the smaller s on ties. It backs the "simple extension of the base case":
// when |NS| is prime or has very skewed factors, binning by the nearest
// square is far cheaper (§IV-A, the 82-values example).
func NearestSquareRoot(n int) int {
	if n <= 0 {
		return 0
	}
	lo := int(math.Sqrt(float64(n)))
	if lo < 1 {
		lo = 1
	}
	hi := lo + 1
	if n-lo*lo <= hi*hi-n {
		return lo
	}
	return hi
}

// retrievalCost estimates the per-query retrieval cost (number of values
// fetched across both bins) of using x sensitive bins over nSens sensitive
// and nNS non-sensitive values: each query fetches one non-sensitive bin of
// at most x values and one sensitive bin of at most ceil(nSens/x) values.
func retrievalCost(x, nSens, nNS int) int {
	if x <= 0 {
		return math.MaxInt
	}
	sensPerBin := ceilDiv(nSens, x)
	nsPerBin := x
	if nNS < x {
		nsPerBin = nNS
	}
	return sensPerBin + nsPerBin
}

// chooseSensitiveBinCount picks the number of sensitive bins: Algorithm 1
// uses the larger approximately-square factor of nNS, and the extension
// also considers the nearest square root, keeping whichever yields the
// lower per-query retrieval cost.
func chooseSensitiveBinCount(nSens, nNS int, disableNearestSquare bool) int {
	x, _ := ApproxSquareFactors(nNS)
	if !disableNearestSquare {
		if s := NearestSquareRoot(nNS); s > 0 &&
			retrievalCost(s, nSens, nNS) < retrievalCost(x, nSens, nNS) {
			x = s
		}
	}
	// The paper assumes |S| >= x; with fewer sensitive values, extra bins
	// would sit empty, so cap the bin count.
	if nSens > 0 && x > nSens {
		x = nSens
	}
	if x < 1 {
		x = 1
	}
	return x
}

func ceilDiv(a, b int) int {
	if b == 0 {
		return 0
	}
	return (a + b - 1) / b
}
