package core

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	mrand "math/rand/v2"
	"sort"
	"sync"

	"repro/internal/relation"
)

// Options tunes bin creation.
type Options struct {
	// Rand supplies the secret permutation of sensitive values (footnote 4
	// of the paper: the permutation prevents the adversary from recreating
	// the bins). If nil, a cryptographically seeded source is used.
	Rand *mrand.Rand
	// DisableNearestSquare turns off the "simple extension of the base
	// case" and always uses the exact approximately-square factors of the
	// larger side, as in unmodified Algorithm 1.
	DisableNearestSquare bool
	// DisableFakePadding skips the §IV-B fake-tuple equalisation. Only the
	// base case (all value counts equal) is then secure against size
	// attacks; the attack ablation benchmarks use this switch.
	DisableFakePadding bool
	// ForcedBinCount, when > 0, overrides the computed number of bins on
	// the small side; the Figure 6c experiment sweeps it to measure the
	// cost of unbalanced |SB| vs |NSB|.
	ForcedBinCount int
}

type position struct{ bin, slot int }

// Bins is the owner-side binning metadata produced by Algorithm 1 (plus the
// §IV-B general case). It maps every distinct value of the searchable
// attribute to exactly one bin on its side and answers Algorithm 2
// retrievals.
type Bins struct {
	// Sensitive bins; each entry carries the value and its (real) tuple
	// count.
	Sensitive [][]relation.ValueCount
	// NonSensitive bins.
	NonSensitive [][]relation.ValueCount
	// FakePerBin[i] is the number of encrypted fake tuples added to
	// sensitive bin i so that all sensitive bins answer with TargetVolume
	// tuples (§IV-B).
	FakePerBin []int
	// TargetVolume is the padded tuple volume of every sensitive bin.
	TargetVolume int
	// Reversed records that |S| > |NS| and Algorithm 1 was applied "in a
	// reverse way", factorising |S|.
	Reversed bool

	sensPos map[string]position
	nsPos   map[string]position

	// valsOnce guards the lazily built per-bin value slices handed out by
	// Retrieve. Bins are immutable once created, so every retrieval of the
	// same bin can share one exact-capacity slice (callers that extend it
	// — e.g. the vertical owner concatenating both sides — force a copy
	// because len == cap).
	valsOnce sync.Once
	sensVals [][]relation.Value
	nsVals   [][]relation.Value
}

// CreateBins runs Algorithm 1 (with the §IV-B general case when value
// counts differ) over the owner's metadata: the distinct sensitive values
// with their tuple counts and the distinct non-sensitive values with
// theirs. A value may appear on both sides (an "associated" value).
func CreateBins(sens, nonsens []relation.ValueCount, opts Options) (*Bins, error) {
	if err := checkSide("sensitive", sens); err != nil {
		return nil, err
	}
	if err := checkSide("non-sensitive", nonsens); err != nil {
		return nil, err
	}
	rnd := opts.Rand
	if rnd == nil {
		rnd = mrand.New(mrand.NewPCG(cryptoSeed(), cryptoSeed()))
	}

	b := &Bins{
		sensPos: make(map[string]position, len(sens)),
		nsPos:   make(map[string]position, len(nonsens)),
	}

	switch {
	case len(sens) == 0 && len(nonsens) == 0:
		return b, nil
	case len(nonsens) == 0:
		// Purely sensitive data: bin by the nearest square of |S| so that
		// each query still hides among ~sqrt(|S|) values.
		x := NearestSquareRoot(len(sens))
		if opts.ForcedBinCount > 0 {
			x = opts.ForcedBinCount
		}
		b.Sensitive = assignSensitive(sens, x, capFor(len(sens), x), rnd, b.sensPos)
		b.pad(opts.DisableFakePadding)
		return b, nil
	case len(sens) == 0:
		// Purely non-sensitive data: nothing sensitive to protect; each
		// value forms its own singleton bin (exact plaintext queries).
		b.NonSensitive = make([][]relation.ValueCount, len(nonsens))
		for i, vc := range nonsens {
			b.NonSensitive[i] = []relation.ValueCount{vc}
			b.nsPos[vc.Value.Key()] = position{bin: i, slot: 0}
		}
		return b, nil
	}

	b.Reversed = len(sens) > len(nonsens)

	// small is the side with fewer distinct values; Algorithm 1 factorises
	// the large side. In the paper's presentation small = sensitive.
	small, big := sens, nonsens
	if b.Reversed {
		small, big = nonsens, sens
	}
	x := chooseSensitiveBinCount(len(small), len(big), opts.DisableNearestSquare)
	if opts.ForcedBinCount > 0 {
		x = opts.ForcedBinCount
		if x > len(small) {
			x = len(small)
		}
	}
	smallCap := capFor(len(small), x) // values per small-side bin
	bigCount := ceilDiv(len(big), x)  // number of big-side bins
	if smallCap > bigCount {
		// Cannot happen for |small| <= |big|, but guard the invariant the
		// retrieval mapping depends on.
		return nil, fmt.Errorf("core: internal invariant violated: smallCap %d > bigCount %d", smallCap, bigCount)
	}

	smallPos := b.sensPos
	bigPos := b.nsPos
	if b.Reversed {
		smallPos, bigPos = b.nsPos, b.sensPos
	}

	var smallBins [][]relation.ValueCount
	if !opts.DisableFakePadding && !uniformCounts(small) && !b.Reversed {
		// §IV-B greedy allocation: minimise the fake tuples needed to
		// equalise sensitive bins.
		smallBins = assignGreedy(small, x, smallCap, rnd, smallPos)
	} else {
		smallBins = assignSensitive(small, x, smallCap, rnd, smallPos)
	}

	bigBins := assignBig(big, smallBins, x, bigCount, rnd, bigPos)

	if b.Reversed {
		b.Sensitive, b.NonSensitive = bigBins, smallBins
	} else {
		b.Sensitive, b.NonSensitive = smallBins, bigBins
	}
	b.pad(opts.DisableFakePadding)
	return b, nil
}

func checkSide(side string, vals []relation.ValueCount) error {
	seen := make(map[string]bool, len(vals))
	for _, vc := range vals {
		if vc.Count < 0 {
			return fmt.Errorf("core: %s value %v has negative count %d", side, vc.Value, vc.Count)
		}
		k := vc.Value.Key()
		if seen[k] {
			return fmt.Errorf("core: duplicate %s value %v", side, vc.Value)
		}
		seen[k] = true
	}
	return nil
}

func capFor(n, bins int) int {
	c := ceilDiv(n, bins)
	if c < 1 {
		c = 1
	}
	return c
}

// assignSensitive permutes vals secretly and deals them round-robin over x
// bins (Lines 2 and 5 of Algorithm 1). Bin capacity is cap values.
func assignSensitive(vals []relation.ValueCount, x, capacity int, rnd *mrand.Rand, pos map[string]position) [][]relation.ValueCount {
	perm := permute(vals, rnd)
	bins := make([][]relation.ValueCount, x)
	for i, vc := range perm {
		bin := i % x
		if len(bins[bin]) >= capacity {
			// Capacity guard; with round-robin this triggers only in
			// degenerate configurations, spill to the least-filled bin.
			bin = leastFilled(bins, capacity)
		}
		pos[vc.Value.Key()] = position{bin: bin, slot: len(bins[bin])}
		bins[bin] = append(bins[bin], vc)
	}
	return bins
}

// assignGreedy implements the §IV-B strategy: sort values by tuple count
// descending, seed each bin with one of the x largest, then repeatedly give
// the next value to the bin currently holding the fewest tuples (among bins
// with spare value slots). This minimises the fake tuples required to
// equalise bins (Figure 5b vs Figure 5a).
func assignGreedy(vals []relation.ValueCount, x, capacity int, rnd *mrand.Rand, pos map[string]position) [][]relation.ValueCount {
	perm := permute(vals, rnd) // secret tie-break order
	sort.SliceStable(perm, func(i, j int) bool { return perm[i].Count > perm[j].Count })
	bins := make([][]relation.ValueCount, x)
	volumes := make([]int, x)
	for _, vc := range perm {
		best := -1
		for b := 0; b < x; b++ {
			if len(bins[b]) >= capacity {
				continue
			}
			if best == -1 || volumes[b] < volumes[best] {
				best = b
			}
		}
		if best == -1 {
			best = leastFilled(bins, capacity+1) // should not happen; degrade gracefully
		}
		pos[vc.Value.Key()] = position{bin: best, slot: len(bins[best])}
		bins[best] = append(bins[best], vc)
		volumes[best] += vc.Count
	}
	return bins
}

// assignBig places the big side (Lines 6 and 7 of Algorithm 1): the value
// associated with small bin i slot j lands at big bin j slot i; the
// remaining values fill empty slots up to x per bin.
func assignBig(big []relation.ValueCount, smallBins [][]relation.ValueCount, x, bigCount int, rnd *mrand.Rand, pos map[string]position) [][]relation.ValueCount {
	bigByKey := make(map[string]relation.ValueCount, len(big))
	for _, vc := range big {
		bigByKey[vc.Value.Key()] = vc
	}
	type slotVal struct {
		vc relation.ValueCount
		ok bool
	}
	grid := make([][]slotVal, bigCount)
	for j := range grid {
		grid[j] = make([]slotVal, x)
	}
	placed := make(map[string]bool, len(big))
	for i, bin := range smallBins {
		for j, vc := range bin {
			k := vc.Value.Key()
			if bvc, assoc := bigByKey[k]; assoc {
				grid[j][i] = slotVal{vc: bvc, ok: true}
				placed[k] = true
			}
		}
	}
	// Fill the unassociated values into empty slots (Line 7).
	rest := make([]relation.ValueCount, 0, len(big))
	for _, vc := range big {
		if !placed[vc.Value.Key()] {
			rest = append(rest, vc)
		}
	}
	rest = permute(rest, rnd)
	ri := 0
	for j := 0; j < bigCount && ri < len(rest); j++ {
		for i := 0; i < x && ri < len(rest); i++ {
			if !grid[j][i].ok {
				grid[j][i] = slotVal{vc: rest[ri], ok: true}
				ri++
			}
		}
	}
	bins := make([][]relation.ValueCount, bigCount)
	for j := 0; j < bigCount; j++ {
		for i := 0; i < x; i++ {
			if grid[j][i].ok {
				pos[grid[j][i].vc.Value.Key()] = position{bin: j, slot: i}
				bins[j] = append(bins[j], grid[j][i].vc)
			}
		}
	}
	return bins
}

// pad computes the fake-tuple padding that equalises sensitive bin volumes.
func (b *Bins) pad(disabled bool) {
	b.FakePerBin = make([]int, len(b.Sensitive))
	if disabled || len(b.Sensitive) == 0 {
		return
	}
	maxVol := 0
	for _, bin := range b.Sensitive {
		v := 0
		for _, vc := range bin {
			v += vc.Count
		}
		if v > maxVol {
			maxVol = v
		}
	}
	b.TargetVolume = maxVol
	for i, bin := range b.Sensitive {
		v := 0
		for _, vc := range bin {
			v += vc.Count
		}
		b.FakePerBin[i] = maxVol - v
	}
}

func leastFilled(bins [][]relation.ValueCount, capacity int) int {
	best := 0
	for i := range bins {
		if len(bins[i]) < len(bins[best]) {
			best = i
		}
	}
	_ = capacity
	return best
}

func uniformCounts(vals []relation.ValueCount) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i].Count != vals[0].Count {
			return false
		}
	}
	return true
}

func permute(vals []relation.ValueCount, rnd *mrand.Rand) []relation.ValueCount {
	out := make([]relation.ValueCount, len(vals))
	copy(out, vals)
	rnd.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func cryptoSeed() uint64 {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("core: seeding permutation: %v", err))
	}
	return binary.BigEndian.Uint64(b[:])
}
