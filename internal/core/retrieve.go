package core

import (
	"repro/internal/relation"
)

// Retrieval is the output of Algorithm 2: the pair of bins whose values the
// owner must query to answer q(w) without leakage. A bin index of -1 means
// that side has no bins (degenerate datasets).
type Retrieval struct {
	SensBin int
	NSBin   int
	// SensValues are the values of the sensitive bin; the owner encrypts
	// them (the set Ws) before sending.
	SensValues []relation.Value
	// NSValues are the plaintext values of the non-sensitive bin (Wns).
	NSValues []relation.Value
	// Fake is the number of fake tuples expected back from the sensitive
	// bin; the owner discards them after decryption.
	Fake int
}

// Retrieve implements Algorithm 2 for a query value w. The second return is
// false when w appears in neither side's bins, in which case nothing needs
// to be fetched ("if the value w is neither in a sensitive or a
// non-sensitive bin, then there is no need to retrieve any bin").
//
// Rule R1: if w = SB_i[j], fetch sensitive bin i and non-sensitive bin j.
// Rule R2: if w = NSB_i[j], fetch non-sensitive bin i and sensitive bin j.
// When w is on both sides the two rules select the same pair.
func (b *Bins) Retrieve(w relation.Value) (Retrieval, bool) {
	k := w.Key()
	if p, ok := b.sensPos[k]; ok {
		return b.buildRetrieval(p.bin, b.otherIndex(p.slot, len(b.NonSensitive))), true
	}
	if p, ok := b.nsPos[k]; ok {
		return b.buildRetrieval(b.otherIndex(p.slot, len(b.Sensitive)), p.bin), true
	}
	return Retrieval{SensBin: -1, NSBin: -1}, false
}

// otherIndex maps a slot position to the bin index on the opposite side,
// guarding degenerate sides with no bins.
func (b *Bins) otherIndex(slot, otherBins int) int {
	if otherBins == 0 {
		return -1
	}
	if slot >= otherBins {
		// Cannot occur when the Algorithm 1 invariants hold; clamp rather
		// than panic so that degenerate hand-built bins stay usable.
		return otherBins - 1
	}
	return slot
}

func (b *Bins) buildRetrieval(sensBin, nsBin int) Retrieval {
	b.valsOnce.Do(b.buildBinValues)
	r := Retrieval{SensBin: sensBin, NSBin: nsBin}
	if sensBin >= 0 && sensBin < len(b.Sensitive) {
		r.SensValues = b.sensVals[sensBin]
		if sensBin < len(b.FakePerBin) {
			r.Fake = b.FakePerBin[sensBin]
		}
	} else {
		r.SensBin = -1
	}
	if nsBin >= 0 && nsBin < len(b.NonSensitive) {
		r.NSValues = b.nsVals[nsBin]
	} else {
		r.NSBin = -1
	}
	return r
}

// buildBinValues materialises each bin's value list once; retrievals are
// per query and were re-building these slices every time.
func (b *Bins) buildBinValues() {
	collect := func(bins [][]relation.ValueCount) [][]relation.Value {
		out := make([][]relation.Value, len(bins))
		for i, bin := range bins {
			vals := make([]relation.Value, len(bin))
			for j, vc := range bin {
				vals[j] = vc.Value
			}
			out[i] = vals
		}
		return out
	}
	b.sensVals = collect(b.Sensitive)
	b.nsVals = collect(b.NonSensitive)
}

// SensitiveBinCount returns |SB|, the number of sensitive bins.
func (b *Bins) SensitiveBinCount() int { return len(b.Sensitive) }

// NonSensitiveBinCount returns |NSB|, the number of non-sensitive bins.
func (b *Bins) NonSensitiveBinCount() int { return len(b.NonSensitive) }

// SensitiveVolumes returns the padded tuple volume of each sensitive bin
// (real + fake); under §IV-B padding all entries are equal.
func (b *Bins) SensitiveVolumes() []int {
	out := make([]int, len(b.Sensitive))
	for i, bin := range b.Sensitive {
		v := 0
		for _, vc := range bin {
			v += vc.Count
		}
		if i < len(b.FakePerBin) {
			v += b.FakePerBin[i]
		}
		out[i] = v
	}
	return out
}

// TotalFakeTuples returns the total padding cost of the binning.
func (b *Bins) TotalFakeTuples() int {
	total := 0
	for _, f := range b.FakePerBin {
		total += f
	}
	return total
}

// ContainsSensitive reports whether w was binned as a sensitive value.
func (b *Bins) ContainsSensitive(w relation.Value) bool {
	_, ok := b.sensPos[w.Key()]
	return ok
}

// ContainsNonSensitive reports whether w was binned as a non-sensitive
// value.
func (b *Bins) ContainsNonSensitive(w relation.Value) bool {
	_, ok := b.nsPos[w.Key()]
	return ok
}

// MetadataBytes estimates the owner-side storage for the binning metadata
// (searchable values and their bin coordinates), the quantity reported for
// the TPC-H attributes in §V-B.
func (b *Bins) MetadataBytes() int {
	total := 0
	for _, bin := range b.Sensitive {
		for _, vc := range bin {
			total += len(vc.Value.Encode()) + 2*8 // value + position + count
		}
	}
	for _, bin := range b.NonSensitive {
		for _, vc := range bin {
			total += len(vc.Value.Encode()) + 2*8
		}
	}
	return total
}
