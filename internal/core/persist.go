package core

import "repro/internal/relation"

// BinsSnapshot is the serialisable form of Bins (all fields exported for
// encoding/gob). It captures the complete owner-side binning metadata —
// bin contents, value positions, padding — so an owner can persist and
// restore its state without re-creating (and re-permuting) the bins.
type BinsSnapshot struct {
	Sensitive     [][]relation.ValueCount
	NonSensitive  [][]relation.ValueCount
	FakePerBin    []int
	TargetVolume  int
	Reversed      bool
	SensPositions map[string][2]int
	NSPositions   map[string][2]int
}

// Snapshot extracts the serialisable state.
func (b *Bins) Snapshot() BinsSnapshot {
	s := BinsSnapshot{
		Sensitive:     b.Sensitive,
		NonSensitive:  b.NonSensitive,
		FakePerBin:    b.FakePerBin,
		TargetVolume:  b.TargetVolume,
		Reversed:      b.Reversed,
		SensPositions: make(map[string][2]int, len(b.sensPos)),
		NSPositions:   make(map[string][2]int, len(b.nsPos)),
	}
	for k, p := range b.sensPos {
		s.SensPositions[k] = [2]int{p.bin, p.slot}
	}
	for k, p := range b.nsPos {
		s.NSPositions[k] = [2]int{p.bin, p.slot}
	}
	return s
}

// FromSnapshot reconstructs Bins from a snapshot.
func FromSnapshot(s BinsSnapshot) *Bins {
	b := &Bins{
		Sensitive:    s.Sensitive,
		NonSensitive: s.NonSensitive,
		FakePerBin:   s.FakePerBin,
		TargetVolume: s.TargetVolume,
		Reversed:     s.Reversed,
		sensPos:      make(map[string]position, len(s.SensPositions)),
		nsPos:        make(map[string]position, len(s.NSPositions)),
	}
	for k, p := range s.SensPositions {
		b.sensPos[k] = position{bin: p[0], slot: p[1]}
	}
	for k, p := range s.NSPositions {
		b.nsPos[k] = position{bin: p[0], slot: p[1]}
	}
	return b
}
