package core

import (
	"testing"

	"repro/internal/relation"
)

// TestRetrieveClampsDegenerateBins exercises the defensive clamping in
// otherIndex for hand-built bins that violate the Algorithm 1 invariants
// (cannot arise from CreateBins, but Bins is a plain struct).
func TestRetrieveClampsDegenerateBins(t *testing.T) {
	b := &Bins{
		Sensitive:    [][]relation.ValueCount{{{Value: relation.Int(1), Count: 1}}},
		NonSensitive: [][]relation.ValueCount{{{Value: relation.Int(2), Count: 1}}},
		FakePerBin:   []int{0},
		sensPos:      map[string]position{relation.Int(1).Key(): {bin: 0, slot: 9}}, // slot out of range
		nsPos:        map[string]position{relation.Int(2).Key(): {bin: 0, slot: 9}},
	}
	ret, ok := b.Retrieve(relation.Int(1))
	if !ok || ret.NSBin != 0 {
		t.Fatalf("clamped retrieval = %+v, %v", ret, ok)
	}
	ret, ok = b.Retrieve(relation.Int(2))
	if !ok || ret.SensBin != 0 {
		t.Fatalf("clamped retrieval = %+v, %v", ret, ok)
	}
}

func TestRetrieveEmptyOtherSide(t *testing.T) {
	b := &Bins{
		Sensitive:  [][]relation.ValueCount{{{Value: relation.Int(1), Count: 1}}},
		FakePerBin: []int{2},
		sensPos:    map[string]position{relation.Int(1).Key(): {bin: 0, slot: 0}},
		nsPos:      map[string]position{},
	}
	ret, ok := b.Retrieve(relation.Int(1))
	if !ok || ret.NSBin != -1 || ret.SensBin != 0 {
		t.Fatalf("retrieval = %+v, %v", ret, ok)
	}
	if ret.Fake != 2 {
		t.Errorf("Fake = %d, want 2", ret.Fake)
	}
}

func TestVolumesAndFakesAccessors(t *testing.T) {
	sens := []relation.ValueCount{
		{Value: relation.Int(1), Count: 5},
		{Value: relation.Int(2), Count: 1},
		{Value: relation.Int(3), Count: 1},
		{Value: relation.Int(4), Count: 1},
	}
	nonsens := intVCs(10, 4, 1)
	b, err := CreateBins(sens, nonsens, seededOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	vols := b.SensitiveVolumes()
	if len(vols) != b.SensitiveBinCount() {
		t.Fatalf("volumes %v vs %d bins", vols, b.SensitiveBinCount())
	}
	total := 0
	for i, bin := range b.Sensitive {
		real := 0
		for _, vc := range bin {
			real += vc.Count
		}
		if vols[i] != real+b.FakePerBin[i] {
			t.Errorf("bin %d volume %d != real %d + fake %d", i, vols[i], real, b.FakePerBin[i])
		}
		total += b.FakePerBin[i]
	}
	if b.TotalFakeTuples() != total {
		t.Errorf("TotalFakeTuples = %d, want %d", b.TotalFakeTuples(), total)
	}
}

func TestDisableNearestSquareChangesShape(t *testing.T) {
	sens := intVCs(0, 40, 1)
	nonsens := intVCs(0, 82, 1) // 82 = 41*2, the §IV-A worked example
	withExt, err := CreateBins(sens, nonsens, seededOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	opts := seededOpts(3)
	opts.DisableNearestSquare = true
	without, err := CreateBins(sens, nonsens, opts)
	if err != nil {
		t.Fatal(err)
	}
	if withExt.SensitiveBinCount() >= without.SensitiveBinCount() {
		t.Errorf("extension bins %d, plain %d: extension should use fewer, squarer bins",
			withExt.SensitiveBinCount(), without.SensitiveBinCount())
	}
	// Both still satisfy cover and retrieval invariants.
	for _, b := range []*Bins{withExt, without} {
		checkCover(t, b, sens, nonsens)
		checkRetrieval(t, b, sens, nonsens)
	}
}

func TestRetrievalCostGuards(t *testing.T) {
	if got := retrievalCost(0, 10, 10); got <= 0 {
		t.Errorf("retrievalCost(0,...) = %d, want max", got)
	}
	if got := retrievalCost(3, 9, 2); got != 3+2 {
		t.Errorf("retrievalCost small-NS = %d, want 5", got)
	}
}
