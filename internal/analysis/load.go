package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// This file loads type-checked packages without golang.org/x/tools:
// `go list -export -json -deps` names every package's source files and its
// compiled export data in the build cache, and go/importer's lookup hook
// feeds that export data to the gc importer. Only the packages under
// analysis are parsed from source; their dependencies (stdlib included)
// come from fast binary export data, exactly like the real go vet driver.

// Package is one source package parsed and type-checked for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Loader loads packages of the module rooted at Dir ("" means the
// process working directory).
type Loader struct {
	Dir string

	fset     *token.FileSet
	exportOf map[string]string // import path -> export data file
	imp      types.Importer
}

// NewLoader returns a loader with a fresh FileSet shared by every package
// it loads (so positions from different packages compare cleanly).
func NewLoader(dir string) *Loader {
	return &Loader{Dir: dir, fset: token.NewFileSet()}
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// goList runs `go list -export -json -deps patterns...` and decodes the
// stream of package objects.
func (l *Loader) goList(patterns []string) ([]*listedPkg, error) {
	args := append([]string{"list", "-export", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// prime records the export-data location of every package matching
// patterns (plus dependencies) and readies the shared importer.
func (l *Loader) prime(patterns []string) ([]*listedPkg, error) {
	listed, err := l.goList(patterns)
	if err != nil {
		return nil, err
	}
	if l.exportOf == nil {
		l.exportOf = make(map[string]string)
	}
	for _, p := range listed {
		if p.Export != "" {
			l.exportOf[p.ImportPath] = p.Export
		}
	}
	if l.imp == nil {
		l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
			f, ok := l.exportOf[path]
			if !ok {
				return nil, fmt.Errorf("analysis: no export data for %q", path)
			}
			return os.Open(f)
		})
	}
	return listed, nil
}

// Load lists the packages matching patterns, type-checks every non-stdlib
// one from source (imports resolved through build-cache export data) and
// returns them in listing order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.prime(patterns)
	if err != nil {
		return nil, err
	}

	// -deps lists dependencies too; analyze only the module's own
	// packages (the ones the patterns matched, not stdlib).
	var out []*Package
	for _, p := range listed {
		if p.Standard || p.Module == nil {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := l.check(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// check parses and type-checks one listed package.
func (l *Loader) check(p *listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(p.ImportPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Dir:        p.Dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}, nil
}

// NewTypesInfo returns a types.Info with every map the analyzers consult
// allocated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Importer exposes the loader's export-data importer so the analysistest
// harness can type-check fixture packages against the real module's
// packages (e.g. a fixture importing repro/internal/crypto).
func (l *Loader) Importer() (types.Importer, error) {
	if l.imp == nil {
		// Prime the export map with the module and its full dependency
		// closure so fixture imports resolve.
		if _, err := l.prime([]string{"./..."}); err != nil {
			return nil, err
		}
	}
	return l.imp, nil
}
