// Package analysistest is the fixture harness for the qbvet suite: it
// type-checks a testdata package under a caller-chosen import path, runs
// one analyzer over it, and compares the diagnostics against the
// fixture's `// want "regexp"` comments, x/tools-analysistest style.
//
// The chosen import path is what makes path-scoped rules testable: a
// fixture directory can be checked as if it were
// repro/internal/storage/... or repro/internal/wire/..., so the rules
// that only apply inside those trees fire on testdata the go tool
// otherwise ignores. Fixture imports (stdlib and repro packages alike)
// resolve through the same build-cache export data qbvet itself uses.
package analysistest

import (
	"go/ast"
	"go/parser"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts expectation patterns from fixture comments:
// `// want "regexp"`, possibly several per line.
var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

var (
	once      sync.Once
	sharedLdr *analysis.Loader
	sharedImp types.Importer
	loadErr   error
)

// importerFor returns the process-shared loader and export-data importer,
// priming them on first use from the module root (fixtures run with the
// test binary's working directory deep inside the module).
func importerFor(t *testing.T) (*analysis.Loader, types.Importer) {
	t.Helper()
	once.Do(func() {
		out, err := exec.Command("go", "env", "GOMOD").Output()
		if err != nil {
			loadErr = err
			return
		}
		root := filepath.Dir(strings.TrimSpace(string(out)))
		sharedLdr = analysis.NewLoader(root)
		sharedImp, loadErr = sharedLdr.Importer()
	})
	if loadErr != nil {
		t.Fatalf("analysistest: preparing importer: %v", loadErr)
	}
	return sharedLdr, sharedImp
}

// want is one expected diagnostic.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run type-checks every .go file in dir as one package named by
// importPath, applies a, and fails t unless the diagnostics and the
// fixture's want comments match one-to-one.
func Run(t *testing.T, a *analysis.Analyzer, importPath, dir string) {
	t.Helper()
	ldr, imp := importerFor(t)
	fset := ldr.Fset()

	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: reading fixture dir: %v", err)
	}
	var files []*ast.File
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("analysistest: %v", err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("analysistest: parsing %s: %v", path, err)
		}
		files = append(files, f)
		for i, line := range strings.Split(string(src), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("analysistest: %s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
				}
				wants = append(wants, &want{file: e.Name(), line: i + 1, re: re})
			}
		}
	}
	if len(files) == 0 {
		t.Fatalf("analysistest: no fixture files in %s", dir)
	}

	info := analysis.NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		t.Fatalf("analysistest: type-checking fixture %s as %q: %v", dir, importPath, err)
	}

	pkg := &analysis.Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		TypesInfo:  info,
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: running %s: %v", a.Name, err)
	}

	for _, d := range diags {
		base := filepath.Base(d.Pos.Filename)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == base && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none", a.Name, w.file, w.line, w.re)
		}
	}
}
