package pooldiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/pooldiscipline"
)

func TestPoolDiscipline(t *testing.T) {
	analysistest.Run(t, pooldiscipline.Analyzer, "repro/example/poolfix", "../testdata/src/pooldiscipline")
}
