// Package pooldiscipline machine-checks the sync.Pool frame-buffer
// convention from docs/ARCHITECTURE.md: every buffer taken from a pool
// (sync.Pool.Get or the wire package's getFrameBuf wrapper) must be
// returned (Put / putFrameBuf) on every exit path — including early error
// returns — unless ownership is explicitly transferred (the pointer is
// returned, stored, sent, or handed to another function), and a buffer
// must never be used after it has been returned to the pool (the next
// Get may already be mutating it on another goroutine).
//
// The checker walks each function that acquires a pool value and
// simulates the paths through its body: branch bodies are checked with a
// copy of the acquisition state, so a `if err != nil { return err }`
// before the Put is reported at that return. A deferred Put (or a
// deferred closure containing one) satisfies every path.
package pooldiscipline

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the pooldiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "pooldiscipline",
	Doc:  "every sync.Pool Get must be Put on all exit paths, with no use after Put",
	Run:  run,
}

// getWrappers names in-repo functions that wrap sync.Pool.Get.
var getWrappers = map[string]bool{"getFrameBuf": true}

// putWrappers names in-repo functions that wrap sync.Pool.Put.
var putWrappers = map[string]bool{"putFrameBuf": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					check(pass, fn.Body)
				}
				return false
			case *ast.FuncLit:
				check(pass, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// pooled is the tracked state of one acquired buffer variable.
type pooled struct {
	obj       types.Object
	name      string
	getPos    ast.Node
	putNow    bool // Put executed on the current path
	deferred  bool // a deferred Put covers every path
	escaped   bool // ownership transferred; no Put required
	misuseRep bool // use-after-put already reported (once per var)
	missRep   bool // at most one missing-Put report per acquisition
}

type checker struct {
	pass *analysis.Pass
	vars []*pooled
	// reported dedupes missing-Put findings across forked branch states:
	// one finding per Get site, however many paths leak it.
	reported map[ast.Node]bool
}

func check(pass *analysis.Pass, body *ast.BlockStmt) {
	c := &checker{pass: pass, reported: make(map[ast.Node]bool)}
	c.block(body)
	// Implicit return at the end of the function body.
	c.atReturn()
}

func (c *checker) lookup(obj types.Object) *pooled {
	for _, v := range c.vars {
		if v.obj == obj {
			return v
		}
	}
	return nil
}

// isPoolGet reports whether call acquires from a pool.
func (c *checker) isPoolGet(call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
		if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && analysis.IsNamed(tv.Type, "sync", "Pool") {
			return true
		}
	}
	if obj := analysis.CalleeObj(c.pass.TypesInfo, call); obj != nil && getWrappers[obj.Name()] {
		return true
	}
	return false
}

// poolPutArg returns the argument expression if call is a Put.
func (c *checker) poolPutArg(call *ast.CallExpr) ast.Expr {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
		if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok && analysis.IsNamed(tv.Type, "sync", "Pool") && len(call.Args) == 1 {
			return call.Args[0]
		}
	}
	if obj := analysis.CalleeObj(c.pass.TypesInfo, call); obj != nil && putWrappers[obj.Name()] && len(call.Args) >= 1 {
		return call.Args[0]
	}
	return nil
}

func (c *checker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		c.stmt(s)
	}
}

func (c *checker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.ExprStmt:
		c.expr(st.X)
	case *ast.DeferStmt:
		c.deferStmt(st)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			c.noteEscapes(r) // returning the buffer transfers ownership
			c.noteUses(r)
		}
		c.atReturn()
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.noteUses(st.Cond)
		thenC := c.fork()
		thenC.block(st.Body)
		var elseTerm bool
		if st.Else != nil {
			elseC := c.fork()
			elseC.stmt(st.Else)
			elseTerm = terminates(st.Else)
			if !elseTerm {
				c.join(elseC)
			}
		}
		if !terminates(st.Body) {
			c.join(thenC)
		}
	case *ast.BlockStmt:
		c.block(st)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		if st.Cond != nil {
			c.noteUses(st.Cond)
		}
		loopC := c.fork()
		loopC.block(st.Body)
		c.join(loopC)
	case *ast.RangeStmt:
		c.noteUses(st.X)
		loopC := c.fork()
		loopC.block(st.Body)
		c.join(loopC)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			switch cl := n.(type) {
			case *ast.CaseClause:
				cc := c.fork()
				for _, cs := range cl.Body {
					cc.stmt(cs)
				}
				return false
			case *ast.CommClause:
				cc := c.fork()
				for _, cs := range cl.Body {
					cc.stmt(cs)
				}
				return false
			}
			return true
		})
	case *ast.GoStmt:
		// The goroutine takes its own responsibility; treat args/closure
		// captures as escapes.
		c.noteEscapes(st.Call)
	case *ast.SendStmt:
		c.noteEscapes(st.Value)
	case *ast.IncDecStmt:
		c.noteUses(st.X)
	case *ast.DeclStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok {
				c.noteUses(e)
			}
			return true
		})
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	}
}

// assign handles acquisition (v := pool.Get()), release-order uses, and
// aliasing.
func (c *checker) assign(as *ast.AssignStmt) {
	for _, r := range as.Rhs {
		c.noteUses(r)
	}
	// LHS like *bp = buf is a use of bp.
	for _, l := range as.Lhs {
		if _, ok := l.(*ast.Ident); !ok {
			c.noteUses(l)
		}
	}
	if len(as.Rhs) == 1 {
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && c.isPoolGet(call) {
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := analysis.ObjOf(c.pass.TypesInfo, id); obj != nil {
					if prev := c.lookup(obj); prev != nil {
						// Re-acquired into the same variable: reset.
						prev.putNow, prev.escaped = false, false
						prev.getPos = call
					} else {
						c.vars = append(c.vars, &pooled{obj: obj, name: id.Name, getPos: call})
					}
					return
				}
			}
		}
	}
	// Aliasing a tracked pointer (x := bp) moves responsibility in ways
	// this linear checker cannot follow; treat as escape.
	for _, r := range as.Rhs {
		if id, ok := ast.Unparen(r).(*ast.Ident); ok {
			if v := c.trackedIdent(id); v != nil {
				v.escaped = true
			}
		}
	}
}

func (c *checker) deferStmt(st *ast.DeferStmt) {
	if arg := c.poolPutArg(st.Call); arg != nil {
		if v := c.trackedExpr(arg); v != nil {
			v.deferred = true
		}
		return
	}
	// defer func() { ...; pool.Put(bp); ... }()
	if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if arg := c.poolPutArg(call); arg != nil {
					if v := c.trackedExpr(arg); v != nil {
						v.deferred = true
					}
				}
			}
			return true
		})
		return
	}
	c.noteEscapes(st.Call)
}

// expr processes one expression statement: Put calls release, other calls
// may use or escape tracked vars.
func (c *checker) expr(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		c.noteUses(e)
		return
	}
	if arg := c.poolPutArg(call); arg != nil {
		if v := c.trackedExpr(arg); v != nil {
			if v.putNow && !v.misuseRep {
				v.misuseRep = true
				c.pass.Reportf(call.Pos(), "%s is returned to the pool twice on this path", v.name)
			}
			v.putNow = true
		}
		return
	}
	if c.isPoolGet(call) {
		// Get with discarded result: immediately leaked.
		c.pass.Reportf(call.Pos(), "pool Get result is discarded; the buffer can never be returned")
		return
	}
	c.noteUses(e)
	// Passing the tracked pointer itself to another function transfers
	// ownership (e.g. handing the buffer to a writer goroutine's queue).
	for _, a := range call.Args {
		if id, ok := ast.Unparen(a).(*ast.Ident); ok {
			if v := c.trackedIdent(id); v != nil {
				v.escaped = true
			}
		}
	}
}

// noteUses reports use-after-put anywhere inside e.
func (c *checker) noteUses(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v := c.trackedIdent(id)
		if v == nil {
			return true
		}
		if v.putNow && !v.misuseRep {
			v.misuseRep = true
			c.pass.Reportf(id.Pos(),
				"%s is used after being returned to the pool; another goroutine's Get may already own it", v.name)
		}
		return true
	})
}

// noteEscapes marks tracked vars inside e as ownership-transferred.
func (c *checker) noteEscapes(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := c.trackedIdent(id); v != nil {
				v.escaped = true
			}
		}
		return true
	})
}

// terminates reports whether a statement certainly transfers control out
// of the enclosing path (so its branch state never falls through).
func terminates(s ast.Stmt) bool {
	switch st := s.(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.BranchStmt:
		return st.Tok == token.BREAK || st.Tok == token.CONTINUE || st.Tok == token.GOTO
	case *ast.ExprStmt:
		call, ok := ast.Unparen(st.X).(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		return ok && id.Name == "panic"
	case *ast.BlockStmt:
		return len(st.List) > 0 && terminates(st.List[len(st.List)-1])
	case *ast.IfStmt:
		return st.Else != nil && terminates(st.Body) && terminates(st.Else)
	}
	return false
}

func (c *checker) trackedIdent(id *ast.Ident) *pooled {
	obj := analysis.ObjOf(c.pass.TypesInfo, id)
	if obj == nil {
		return nil
	}
	return c.lookup(obj)
}

func (c *checker) trackedExpr(e ast.Expr) *pooled {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return c.trackedIdent(id)
	}
	return nil
}

// atReturn reports every live acquisition at an exit point.
func (c *checker) atReturn() {
	for _, v := range c.vars {
		if v.putNow || v.deferred || v.escaped || v.missRep || c.reported[v.getPos] {
			continue
		}
		v.missRep = true
		c.reported[v.getPos] = true
		c.pass.Reportf(v.getPos.Pos(),
			"%s acquired from the pool is not returned on every exit path; add Put before each return or defer it", v.name)
	}
}

// fork clones the checker state for a branch; tracked vars are shared
// pointers EXCEPT putNow, which is path-local.
func (c *checker) fork() *checker {
	nc := &checker{pass: c.pass, reported: c.reported}
	for _, v := range c.vars {
		cp := *v
		nc.vars = append(nc.vars, &cp)
	}
	return nc
}

// join merges a fallthrough branch back: deferred/escaped/reported flags
// stick; putNow survives only if the branch put it (conservative towards
// the main path is fine because a put in only one fallthrough branch is
// itself suspicious, but reporting there would double-count — the final
// return still catches a genuinely missing put).
func (c *checker) join(branch *checker) {
	for i, v := range c.vars {
		if i >= len(branch.vars) {
			break
		}
		bv := branch.vars[i]
		v.deferred = v.deferred || bv.deferred
		v.escaped = v.escaped || bv.escaped
		v.misuseRep = v.misuseRep || bv.misuseRep
		v.missRep = v.missRep || bv.missRep
		v.putNow = v.putNow || bv.putNow
	}
	// Acquisitions made inside the branch are live after it.
	for i := len(c.vars); i < len(branch.vars); i++ {
		c.vars = append(c.vars, branch.vars[i])
	}
}
