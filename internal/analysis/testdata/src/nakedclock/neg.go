// Negative fixture: pure duration arithmetic never reads the clock and
// is allowed anywhere.
package clockfix

import "time"

func double(d time.Duration) time.Duration { return d * 2 }
