// Negative fixture: clock.go is the one file allowed to touch the real
// clock — it implements the injectable Clock.
package clockfix

import "time"

func now() time.Time { return time.Now() }
