// Positive fixtures: checked as repro/internal/wire/clockfix, where
// naked clock reads outside clock.go are forbidden.
package clockfix

import "time"

func backoff() {
	time.Sleep(time.Millisecond) // want "naked time.Sleep"
	_ = time.Now()               // want "naked time.Now"
	<-time.After(time.Second)    // want "naked time.After"
}
