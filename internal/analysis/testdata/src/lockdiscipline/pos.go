// Positive fixtures: checked as repro/internal/storage/fixture, so the
// unlocked-mutation rule is in scope.
package fixture

import "sync"

type Counter struct {
	mu sync.RWMutex
	n  int
}

func (c *Counter) BumpUnlocked() {
	c.n++ // want "not dominated by a write lock"
}

func (c *Counter) BumpUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.n++ // want "holding only the read lock"
}

func CopyParam(c Counter) int { // want "parameter carries a lock by value"
	return 0
}

func copyValue(c *Counter) {
	snapshot := *c // want "assignment copies a lock-bearing value"
	_ = snapshot
}
