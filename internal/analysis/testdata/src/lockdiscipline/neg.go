// Negative fixtures: proper locking, the Locked-helper convention, and
// locally constructed objects must all pass clean.
package fixture

import "sync"

type Gauge struct {
	mu sync.Mutex
	v  int
}

func (g *Gauge) Set(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.v = v
	g.setLocked(v)
}

// setLocked applies v to the gauge. The caller holds g.mu.
func (g *Gauge) setLocked(v int) {
	g.v = v
}

func fresh() *Gauge {
	g := &Gauge{}
	g.v = 1 // locally constructed: nobody shares it yet
	return g
}
