// Fixtures for the owner-cache mutex discipline (technique.Cache): the
// snapshot-under-lock / round-trip-unlocked / store-under-lock pattern
// must pass clean, while mutating cache segments without the write lock —
// the bug class the pattern exists to prevent — is flagged.
package fixture

import (
	"sync"
	"sync/atomic"
)

// memoCache mirrors the shape of the owner-side version cache: a mutex
// over map/slice segments plus lock-free atomic counters.
type memoCache struct {
	mu    sync.RWMutex
	memo  map[string][]int
	order []string

	hits atomic.Uint64 // atomics need no lock
}

// snapshot copies the addresses for a key out under the read lock; the
// caller revalidates over the network without holding mu.
func (c *memoCache) snapshot(key string) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.hits.Add(1) // atomic: legal under RLock
	out := make([]int, len(c.memo[key]))
	copy(out, c.memo[key])
	return out
}

// store publishes a revalidated entry last-writer-wins under the write
// lock.
func (c *memoCache) store(key string, addrs []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.memo[key] = addrs
	c.order = append(c.order, key)
	c.evictLocked()
}

// evictLocked drops the oldest entry. The caller holds c.mu.
func (c *memoCache) evictLocked() {
	if len(c.order) > 8 {
		delete(c.memo, c.order[0])
		c.order = c.order[1:]
	}
}

// storeRacy mutates the memo segment without any lock: the exact write
// path the snapshot/store discipline forbids.
func (c *memoCache) storeRacy(key string, addrs []int) {
	c.memo[key] = addrs            // want "not dominated by a write lock"
	c.order = append(c.order, key) // want "not dominated by a write lock"
	_ = addrs
}

// evictUnderRLock downgrades eviction to the read lock, racing snapshot.
func (c *memoCache) evictUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	c.order = c.order[:0] // want "holding only the read lock"
}
