// Positive fixtures: leaked, reused and double-returned pool buffers.
// getFrameBuf/putFrameBuf mirror the wire package's wrapper names, which
// the analyzer recognizes alongside direct sync.Pool calls.
package poolfix

import (
	"errors"
	"sync"
)

var pool = sync.Pool{New: func() any { b := make([]byte, 0, 64); return &b }}

var errFail = errors.New("boom")

func getFrameBuf() *[]byte   { return pool.Get().(*[]byte) }
func putFrameBuf(bp *[]byte) { pool.Put(bp) }

func leakOnError(fail bool) error {
	bp := getFrameBuf() // want "not returned on every exit path"
	if fail {
		return errFail
	}
	putFrameBuf(bp)
	return nil
}

func useAfterPut() int {
	bp := getFrameBuf()
	putFrameBuf(bp)
	return len(*bp) // want "used after being returned to the pool"
}

func doublePut() {
	bp := getFrameBuf()
	putFrameBuf(bp)
	putFrameBuf(bp) // want "returned to the pool twice"
}
