// Negative fixtures: deferred Put, Put on every explicit path, and
// ownership transfer by returning the buffer are all fine.
package poolfix

func balancedDefer() {
	bp := getFrameBuf()
	defer putFrameBuf(bp)
	*bp = append((*bp)[:0], 1, 2, 3)
}

func putOnEveryPath(fail bool) error {
	bp := getFrameBuf()
	if fail {
		putFrameBuf(bp)
		return errFail
	}
	putFrameBuf(bp)
	return nil
}

func ownershipTransferred() *[]byte {
	bp := getFrameBuf()
	return bp // the caller is now responsible for the Put
}
