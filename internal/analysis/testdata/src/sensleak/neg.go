// Negative fixtures: nothing in this file may be reported. Lengths are
// public, hashing breaks taint, and an error returned next to a
// sensitive value is not itself sensitive.
package sensleak

import (
	"crypto/sha256"
	"fmt"

	"repro/internal/crypto"
)

func lengthIsPublic(master []byte) error {
	ks := crypto.DeriveKeys(master)
	return fmt.Errorf("unexpected key length %d", len(ks.Enc))
}

func hashBreaksTaint(secret []byte) string {
	sum := sha256.Sum256(secret)
	return fmt.Sprintf("%x", sum)
}

func wrapSiblingError(masterKey uint64) error {
	_, err := crypto.SplitSecret(masterKey, 3, 2, nil)
	if err != nil {
		return fmt.Errorf("split: %w", err)
	}
	return nil
}
