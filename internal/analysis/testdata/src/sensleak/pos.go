// Positive fixtures: every line below must be reported by sensleak.
package sensleak

import (
	"fmt"

	"repro/internal/crypto"
)

func leakSubkey(master []byte) error {
	ks := crypto.DeriveKeys(master)
	return fmt.Errorf("bad key %x", ks.Admin) // want "sensitive value flows into fmt.Errorf"
}

func leakDerived(master []byte) {
	tok := crypto.PRF(crypto.DeriveKeys(master).Admin, []byte("store"))
	fmt.Printf("token=%x\n", tok) // want "sensitive value flows into fmt.Printf"
}

func leakParam(secret []byte) {
	panic(secret) // want "sensitive value flows into panic"
}
