// Positive fixtures: variable-time comparisons of authentication
// secrets.
package cmpfix

import "bytes"

func checkToken(token, presented []byte) bool {
	if bytes.Equal(token, presented) { // want "not constant-time"
		return true
	}
	return string(token) == string(presented) // want "not constant-time"
}

func checkHash(ownerHash []byte, got string) bool {
	return got == string(ownerHash) // want "not constant-time"
}
