// Negative fixtures: hmac.Equal is the approved comparison; nil checks,
// length checks and non-secret comparisons stay clean.
package cmpfix

import "crypto/hmac"

func checkTokenConstantTime(token, presented []byte) bool {
	if token == nil || len(token) != len(presented) {
		return false
	}
	return hmac.Equal(token, presented)
}

func versionGate(version int) bool { return version == 3 }
