// Package suite registers the qbvet analyzer set in one place, shared by
// the cmd/qbvet multichecker and the cmd/qbaudit report generator. It
// lives beside the analyzers (not in package analysis, which they all
// import) to avoid an import cycle.
package suite

import (
	"repro/internal/analysis"
	"repro/internal/analysis/cmpconst"
	"repro/internal/analysis/lockdiscipline"
	"repro/internal/analysis/nakedclock"
	"repro/internal/analysis/pooldiscipline"
	"repro/internal/analysis/sensleak"
)

// Analyzers is the full qbvet suite, in reporting order:
//
//	sensleak        key material / decrypted sensitive values never reach
//	                error strings, logs, or encoders outside crypto+wire
//	lockdiscipline  no mutex copies; no writes under RLock; storage
//	                mutations dominated by the per-store write lock
//	pooldiscipline  sync.Pool Get/Put balanced on all paths, no
//	                use-after-Put
//	cmpconst        token and owner-hash comparisons are constant-time
//	nakedclock      internal/wire reads time only through wire.Clock
var Analyzers = []*analysis.Analyzer{
	sensleak.Analyzer,
	lockdiscipline.Analyzer,
	pooldiscipline.Analyzer,
	cmpconst.Analyzer,
	nakedclock.Analyzer,
}
