package analysis

import (
	"go/ast"
	"go/types"
)

// Shared AST/type predicates used by the qbvet analyzers.

// Deref strips one level of pointer.
func Deref(t types.Type) types.Type {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// IsNamed reports whether t (after pointer stripping) is the named type
// pkgPath.name.
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := Deref(t).(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsMutexType reports whether t is sync.Mutex or sync.RWMutex.
func IsMutexType(t types.Type) bool {
	return IsNamed(t, "sync", "Mutex") || IsNamed(t, "sync", "RWMutex")
}

// ContainsMutex reports whether t is, or is a struct directly embedding or
// declaring a field of, a sync mutex type (pointers don't count: holding a
// *Mutex by value is fine).
func ContainsMutex(t types.Type) bool {
	if IsMutexType(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		ft := st.Field(i).Type()
		if IsMutexType(ft) {
			return true
		}
		// One nested level covers the shapes in this repo (e.g. a struct
		// holding an array of lock-guarded shards).
		if arr, ok := ft.Underlying().(*types.Array); ok && ContainsMutex(arr.Elem()) {
			return true
		}
	}
	return false
}

// CalleeObj resolves the object a call expression invokes (function,
// method or builtin), or nil for indirect calls through expressions.
func CalleeObj(info *types.Info, call *ast.CallExpr) types.Object {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fn]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fn]; ok {
			return sel.Obj()
		}
		return info.Uses[fn.Sel] // package-qualified call
	}
	return nil
}

// CalleeIs reports whether call invokes the function or method named name
// declared in package pkgPath (methods match by name regardless of
// receiver type).
func CalleeIs(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	obj := CalleeObj(info, call)
	if obj == nil || obj.Name() != name {
		return false
	}
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// IsConversion reports whether call is a type conversion (string(x),
// []byte(x), T(x)).
func IsConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// IsBuiltin reports whether call invokes the named builtin.
func IsBuiltin(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok
}

// RootIdent returns the base identifier of a selector/index/star/paren
// chain (s.tokens[i].m -> s), or nil when the chain roots elsewhere (a
// call result, a literal).
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ObjOf returns the object an identifier uses or defines.
func ObjOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Uses[id]; obj != nil {
		return obj
	}
	return info.Defs[id]
}
