package cmpconst_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/cmpconst"
)

func TestCmpConst(t *testing.T) {
	analysistest.Run(t, cmpconst.Analyzer, "repro/example/cmpfix", "../testdata/src/cmpconst")
}
