// Package cmpconst machine-checks the constant-time comparison rule: an
// owner token, a stored owner-token hash, or any other authentication
// secret must be compared with crypto/subtle.ConstantTimeCompare or
// crypto/hmac.Equal (crypto.Equal in this repo), never with ==, !=,
// bytes.Equal, bytes.Compare or reflect.DeepEqual — short-circuiting
// comparisons leak how many leading bytes matched through timing, which
// is exactly the oracle an adversarial cloud needs to forge admin tokens
// byte by byte.
//
// Detection is name- and provenance-based: an operand is secret-like when
// its identifier or field name is token-flavored (tok, token, adminToken,
// ownerToken, ownerHash, tokenHash, secret, masterKey, ...) or when it is
// directly the result of wire.OwnerToken or wire.hashToken. Length
// checks (len(tok) == 0) are allowed: lengths are public.
package cmpconst

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the cmpconst pass.
var Analyzer = &analysis.Analyzer{
	Name: "cmpconst",
	Doc:  "token and owner-hash comparisons must be constant-time (crypto/subtle or hmac.Equal), never == or bytes.Equal",
	Run:  run,
}

// secretNames are case-insensitive identifier/field names treated as
// authentication secrets.
var secretNames = map[string]bool{
	"tok": true, "token": true, "admintoken": true, "ownertoken": true,
	"ownerhash": true, "tokenhash": true, "hashedtoken": true,
	"secret": true, "masterkey": true, "mastersecret": true,
}

// secretFuncs are functions whose results are authentication secrets, as
// pkgPath:name.
var secretFuncs = map[string]bool{
	"repro/internal/wire:OwnerToken": true,
	"repro/internal/wire:hashToken":  true,
}

// variableTimeCmps are pkgPath:name of comparison helpers that are not
// constant-time.
var variableTimeCmps = map[string]bool{
	"bytes:Equal":       true,
	"bytes:Compare":     true,
	"reflect:DeepEqual": true,
	"strings:EqualFold": true,
	"strings:Compare":   true,
	"slices:Equal":      true,
	"maps:Equal":        true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				if x.Op != token.EQL && x.Op != token.NEQ {
					return true
				}
				// Nil checks are presence tests, not equality oracles, and
				// only byte/string-shaped operands can leak through a
				// short-circuiting comparison.
				if isNil(pass, x.X) || isNil(pass, x.Y) {
					return true
				}
				if !bytesShaped(pass, x.X) && !bytesShaped(pass, x.Y) {
					return true
				}
				if name, ok := secretOperand(pass, x.X); ok {
					report(pass, x.Pos(), name, x.Op.String())
				} else if name, ok := secretOperand(pass, x.Y); ok {
					report(pass, x.Pos(), name, x.Op.String())
				}
			case *ast.CallExpr:
				obj := analysis.CalleeObj(pass.TypesInfo, x)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				if !variableTimeCmps[obj.Pkg().Path()+":"+obj.Name()] {
					return true
				}
				for _, a := range x.Args {
					if name, ok := secretOperand(pass, a); ok {
						report(pass, x.Pos(), name, obj.Pkg().Name()+"."+obj.Name())
						break
					}
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *analysis.Pass, pos token.Pos, operand, how string) {
	pass.Reportf(pos,
		"%s is compared with %s, which is not constant-time; use crypto/subtle.ConstantTimeCompare or hmac.Equal (crypto.Equal)",
		operand, how)
}

// secretOperand reports whether e names an authentication secret and, if
// so, returns its display name. Conversions (string(tok)) are looked
// through; len()/cap() calls are not secret (lengths are public).
func secretOperand(pass *analysis.Pass, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if isSecretName(x.Name) {
			return x.Name, true
		}
	case *ast.SelectorExpr:
		if isSecretName(x.Sel.Name) {
			return x.Sel.Name, true
		}
	case *ast.IndexExpr:
		return secretOperand(pass, x.X)
	case *ast.SliceExpr:
		return secretOperand(pass, x.X)
	case *ast.CallExpr:
		if analysis.IsConversion(pass.TypesInfo, x) && len(x.Args) == 1 {
			return secretOperand(pass, x.Args[0])
		}
		if obj := analysis.CalleeObj(pass.TypesInfo, x); obj != nil && obj.Pkg() != nil {
			key := obj.Pkg().Path() + ":" + obj.Name()
			if secretFuncs[key] {
				return obj.Name() + "(...)", true
			}
		}
	}
	return "", false
}

func isSecretName(name string) bool {
	return secretNames[strings.ToLower(name)]
}

func isNil(pass *analysis.Pass, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pass.TypesInfo.Uses[id].(*types.Nil)
	return isNil
}

// bytesShaped reports string, []byte, or [N]byte — the shapes a
// short-circuiting comparison can leak prefix-match length for.
func bytesShaped(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.Underlying().(type) {
	case *types.Basic:
		return t.Info()&types.IsString != 0
	case *types.Slice:
		b, ok := t.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	case *types.Array:
		b, ok := t.Elem().Underlying().(*types.Basic)
		return ok && b.Kind() == types.Byte
	}
	return false
}
