// Package analysis is a self-contained static-analysis framework for the
// qbvet suite: a minimal mirror of the golang.org/x/tools/go/analysis API
// built entirely on the standard library (go/ast, go/types, go/importer
// and the go command), so the repository's domain-specific invariants can
// be machine-checked without any external module dependency.
//
// The shape intentionally matches x/tools so that, should the dependency
// ever become available, the analyzers port by changing imports only: an
// Analyzer bundles a name, a doc string and a Run function; Run receives
// a Pass holding one type-checked package and reports Diagnostics.
//
// The suite's analyzers live in subpackages (sensleak, lockdiscipline,
// pooldiscipline, cmpconst, nakedclock); cmd/qbvet is the multichecker
// driver and analysistest is the fixture harness that proves each rule
// fires.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc states the invariant the analyzer enforces.
	Doc string
	// Run checks one package. It reports findings through pass.Report
	// and returns an error only for internal failures (a broken
	// analyzer, not broken code under analysis).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned in the analyzed source.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  msg,
	})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Run applies each analyzer to each package and returns every finding,
// sorted by file position. Analyzer errors (not findings) abort the run.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				diags:     &diags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags, nil
}
