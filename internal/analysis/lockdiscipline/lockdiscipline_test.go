package lockdiscipline_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockdiscipline"
)

// The fixture is checked under repro/internal/storage/fixture so the
// storage-scoped unlocked-mutation rule applies to it.
func TestLockDiscipline(t *testing.T) {
	analysistest.Run(t, lockdiscipline.Analyzer, "repro/internal/storage/fixture", "../testdata/src/lockdiscipline")
}
