// Package lockdiscipline machine-checks the locking conventions
// docs/ARCHITECTURE.md states in prose:
//
//  1. no mutex (or struct containing one) is copied, passed, or returned
//     by value — a copied lock guards nothing;
//  2. no field of a lock-guarded object is written while only its read
//     lock is held (RLock regions are read-only);
//  3. inside internal/storage — the package owning the per-store lock
//     discipline — every direct mutation of a shared lock-bearing object
//     (Store, StoreSet, EncryptedStore, token shards) must be dominated
//     by a .Lock() on one of that object's mutexes. Locally constructed
//     objects (constructors building a store nobody shares yet) are
//     exempt.
//
// The analysis is intra-procedural and linear in source order, which
// matches how the repository writes critical sections (lock at the top,
// unlock via defer or straight-line code). Mutations through method calls
// are deliberately out of scope: methods synchronize internally, and rule
// 3 is about the raw field writes only the owning package can make.
//
// Helpers that run inside a caller's critical section declare it with the
// repository convention — a name ending in Locked, or a doc comment
// containing "caller holds" — and are analyzed with the receiver already
// write-locked.
package lockdiscipline

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockdiscipline pass.
var Analyzer = &analysis.Analyzer{
	Name: "lockdiscipline",
	Doc:  "per-store write-lock discipline: no mutex copies, no writes under RLock, storage mutations dominated by the write lock",
	Run:  run,
}

// scopePkgs are the packages where rule 3 (unlocked-mutation) applies.
var scopePkgs = []string{"repro/internal/storage"}

func inScope(pkgPath string) bool {
	for _, p := range scopePkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				checkCopies(pass, fn.Type)
				if fn.Body != nil {
					w := newWalker(pass, fn)
					w.walkBlock(fn.Body)
				}
				return false
			}
			return true
		})
		// Copies in assignments anywhere in the file (including inside
		// function literals, which the FuncDecl walker also covers for
		// lock-state purposes via walkBlock's recursion).
		ast.Inspect(file, func(n ast.Node) bool {
			if as, ok := n.(*ast.AssignStmt); ok {
				checkAssignCopies(pass, as)
			}
			if fl, ok := n.(*ast.FuncLit); ok {
				checkCopies(pass, fl.Type)
			}
			return true
		})
	}
	return nil
}

// --- rule 1: mutex copies ------------------------------------------------

func checkCopies(pass *analysis.Pass, ftyp *ast.FuncType) {
	report := func(field *ast.Field, what string) {
		pass.Reportf(field.Pos(), "%s carries a lock by value; pass a pointer (a copied mutex guards nothing)", what)
	}
	if ftyp.Params != nil {
		for _, f := range ftyp.Params.List {
			if fieldCopiesLock(pass, f) {
				report(f, "parameter")
			}
		}
	}
	if ftyp.Results != nil {
		for _, f := range ftyp.Results.List {
			if fieldCopiesLock(pass, f) {
				report(f, "result")
			}
		}
	}
}

func fieldCopiesLock(pass *analysis.Pass, f *ast.Field) bool {
	tv, ok := pass.TypesInfo.Types[f.Type]
	if !ok {
		return false
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return analysis.ContainsMutex(tv.Type)
}

// checkAssignCopies flags x := *p and x := y where the copied value
// contains a lock.
func checkAssignCopies(pass *analysis.Pass, as *ast.AssignStmt) {
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) {
			break
		}
		// A copy into the blank identifier is discarded, not used as a lock.
		if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		switch rhs.(type) {
		case *ast.StarExpr, *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		default:
			continue // composite literals build fresh locks; calls return ownership
		}
		tv, ok := pass.TypesInfo.Types[rhs]
		if !ok || tv.Type == nil {
			continue
		}
		if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
			continue
		}
		if analysis.ContainsMutex(tv.Type) {
			pass.Reportf(rhs.Pos(), "assignment copies a lock-bearing value; share it through a pointer instead")
		}
	}
}

// --- rules 2 and 3: lock-state walker ------------------------------------

type lockState int

const (
	unlocked lockState = iota
	readLocked
	writeLocked
)

type walker struct {
	pass *analysis.Pass
	// state tracks, per root object, the strongest lock taken on one of
	// the object's own mutexes so far (linear source order).
	state map[types.Object]lockState
	// localOrigin marks roots constructed inside this function (fresh
	// composite literals / make / new): nobody shares them yet, so
	// unlocked writes are fine.
	localOrigin map[types.Object]bool
	// recv is the method receiver object, if any.
	recv     types.Object
	scoped   bool // rule 3 applies (storage package)
	funcLits int
}

func newWalker(pass *analysis.Pass, fn *ast.FuncDecl) *walker {
	w := &walker{
		pass:        pass,
		state:       make(map[types.Object]lockState),
		localOrigin: make(map[types.Object]bool),
		scoped:      inScope(pass.Pkg.Path()),
	}
	if fn.Recv != nil && len(fn.Recv.List) == 1 && len(fn.Recv.List[0].Names) == 1 {
		w.recv = analysis.ObjOf(pass.TypesInfo, fn.Recv.List[0].Names[0])
	}
	// Locked-helper convention: a method named ...Locked, or documented
	// "caller holds <mu>", runs with the receiver's write lock already
	// held by its caller. Its receiver starts write-locked.
	if w.recv != nil && isLockedHelper(fn) {
		w.state[w.recv] = writeLocked
	}
	return w
}

// isLockedHelper reports the repository's caller-holds-lock convention:
// either the function name carries the Locked suffix, or the doc comment
// says the caller holds a lock.
func isLockedHelper(fn *ast.FuncDecl) bool {
	if strings.HasSuffix(fn.Name.Name, "Locked") {
		return true
	}
	if fn.Doc == nil {
		return false
	}
	doc := strings.ToLower(fn.Doc.Text())
	return strings.Contains(doc, "caller holds") ||
		strings.Contains(doc, "caller must hold") ||
		strings.Contains(doc, "callers hold")
}

func (w *walker) walkBlock(b *ast.BlockStmt) {
	for _, st := range b.List {
		w.walkStmt(st)
	}
}

func (w *walker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		w.noteLockCall(st.X, false)
		w.checkExprStores(st.X)
	case *ast.DeferStmt:
		// defer mu.Unlock()/RUnlock() releases at return: the lock stays
		// held for the remainder of the linear walk, which is the
		// behavior we want for domination checks.
		w.noteLockCall(st.Call, true)
	case *ast.AssignStmt:
		w.checkAssign(st)
	case *ast.IncDecStmt:
		w.checkStoreAt(st.X)
	case *ast.BlockStmt:
		w.walkBlock(st)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkBlock(st.Body)
		if st.Else != nil {
			w.walkStmt(st.Else)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkBlock(st.Body)
	case *ast.RangeStmt:
		w.noteLocalOriginRange(st)
		w.walkBlock(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					w.walkStmt(cs)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, cs := range cc.Body {
					w.walkStmt(cs)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, cs := range cc.Body {
					w.walkStmt(cs)
				}
			}
		}
	case *ast.GoStmt:
		// A spawned goroutine does not inherit the spawner's lock state.
		if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
			saved := w.state
			w.state = make(map[types.Object]lockState)
			w.walkBlock(fl.Body)
			w.state = saved
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					w.noteLocalOriginSpec(vs)
				}
			}
		}
	case *ast.ReturnStmt, *ast.BranchStmt, *ast.EmptyStmt, *ast.SendStmt, *ast.LabeledStmt:
	}
	// Function literals assigned or passed inline: walk with fresh state
	// only for go statements (handled above); inline literals run on the
	// current goroutine and inherit the lock state, so walk them in
	// place.
	if _, ok := s.(*ast.GoStmt); !ok {
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				w.funcLits++
				if w.funcLits < 8 { // guard against pathological nesting
					w.walkBlock(fl.Body)
				}
				return false
			}
			switch n.(type) {
			case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				return false // already walked structurally
			}
			return true
		})
	}
}

// noteLockCall updates lock state when e is mu.Lock/RLock/Unlock/RUnlock
// on a mutex field of some root object.
func (w *walker) noteLockCall(e ast.Expr, deferred bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	method := sel.Sel.Name
	switch method {
	case "Lock", "RLock", "Unlock", "RUnlock", "TryLock", "TryRLock":
	default:
		return
	}
	// The receiver of Lock() must be a mutex: root.mu.Lock(), root.mu
	// being a sync.Mutex/RWMutex field (possibly nested).
	tv, ok := w.pass.TypesInfo.Types[sel.X]
	if !ok || !analysis.IsMutexType(tv.Type) {
		return
	}
	root := analysis.RootIdent(sel.X)
	if root == nil {
		return
	}
	obj := analysis.ObjOf(w.pass.TypesInfo, root)
	if obj == nil {
		return
	}
	switch method {
	case "Lock", "TryLock":
		w.state[obj] = writeLocked
	case "RLock", "TryRLock":
		if w.state[obj] < readLocked {
			w.state[obj] = readLocked
		}
	case "Unlock":
		if !deferred {
			w.state[obj] = unlocked
		}
	case "RUnlock":
		if !deferred && w.state[obj] == readLocked {
			w.state[obj] = unlocked
		}
	}
}

// checkExprStores handles delete(m, k) and append-into-field via
// expression statements (rare; appends usually assign).
func (w *walker) checkExprStores(e ast.Expr) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	if analysis.IsBuiltin(w.pass.TypesInfo, call, "delete") && len(call.Args) > 0 {
		w.checkStoreAt(call.Args[0])
	}
}

func (w *walker) checkAssign(as *ast.AssignStmt) {
	// Track locally constructed objects first (x := &T{...}).
	w.noteLocalOriginAssign(as)
	for _, lhs := range as.Lhs {
		w.checkStoreAt(lhs)
	}
}

// checkStoreAt flags a direct write to a field/element of a shared
// lock-bearing object made without the required lock.
func (w *walker) checkStoreAt(lhs ast.Expr) {
	// Only selector/index chains are field writes; a bare ident is a
	// local rebind.
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	root := analysis.RootIdent(lhs)
	if root == nil {
		return
	}
	obj := analysis.ObjOf(w.pass.TypesInfo, root)
	if obj == nil || w.localOrigin[obj] {
		return
	}
	// The root must itself be (a pointer to) a lock-bearing struct; a
	// write into a plain local slice/map is not lock-guarded state.
	if !analysis.ContainsMutex(analysis.Deref(obj.Type())) {
		return
	}
	switch w.state[obj] {
	case writeLocked:
		return
	case readLocked:
		w.pass.Reportf(lhs.Pos(),
			"write to %s.%s while holding only the read lock; RLock regions must be read-only",
			root.Name, storePath(lhs))
	case unlocked:
		if !w.scoped {
			return
		}
		w.pass.Reportf(lhs.Pos(),
			"mutation of %s.%s is not dominated by a write lock on %s; take .Lock() first (see ARCHITECTURE.md, per-store lock discipline)",
			root.Name, storePath(lhs), root.Name)
	}
}

// storePath renders the written chain minus the root for the message.
func storePath(lhs ast.Expr) string {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return storePath(x.X) + "[...]"
	case *ast.StarExpr:
		return storePath(x.X)
	}
	return "?"
}

// --- local-origin tracking ----------------------------------------------

func (w *walker) noteLocalOriginAssign(as *ast.AssignStmt) {
	if as.Tok.String() != ":=" {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || i >= len(as.Rhs) && len(as.Rhs) != 1 {
			continue
		}
		var rhs ast.Expr
		if len(as.Rhs) == len(as.Lhs) {
			rhs = as.Rhs[i]
		} else {
			rhs = as.Rhs[0]
		}
		if isFreshValue(w.pass.TypesInfo, rhs) {
			if obj := analysis.ObjOf(w.pass.TypesInfo, id); obj != nil {
				w.localOrigin[obj] = true
			}
		}
	}
}

func (w *walker) noteLocalOriginSpec(vs *ast.ValueSpec) {
	for i, name := range vs.Names {
		if len(vs.Values) == 0 {
			// var x T — zero value, locally owned until shared.
			if obj := analysis.ObjOf(w.pass.TypesInfo, name); obj != nil {
				w.localOrigin[obj] = true
			}
			continue
		}
		if i < len(vs.Values) && isFreshValue(w.pass.TypesInfo, vs.Values[i]) {
			if obj := analysis.ObjOf(w.pass.TypesInfo, name); obj != nil {
				w.localOrigin[obj] = true
			}
		}
	}
}

func (w *walker) noteLocalOriginRange(st *ast.RangeStmt) {
	// Range VALUE variables are copies; writes to their fields mutate the
	// copy, not shared state.
	if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
		if obj := analysis.ObjOf(w.pass.TypesInfo, id); obj != nil {
			if _, isPtr := obj.Type().Underlying().(*types.Pointer); !isPtr {
				w.localOrigin[obj] = true
			}
		}
	}
}

// isFreshValue: composite literals, &literals, new(T), make(...) — values
// no other goroutine can hold yet.
func isFreshValue(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := x.X.(*ast.CompositeLit)
		return lit
	case *ast.CallExpr:
		return analysis.IsBuiltin(info, x, "new") || analysis.IsBuiltin(info, x, "make")
	}
	return false
}
