package nakedclock_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nakedclock"
)

// The fixture is checked under repro/internal/wire/clockfix so the
// wire-scoped naked-clock rule applies; its clock.go file exercises the
// allowlist.
func TestNakedClock(t *testing.T) {
	analysistest.Run(t, nakedclock.Analyzer, "repro/internal/wire/clockfix", "../testdata/src/nakedclock")
}
