// Package nakedclock forbids naked wall-clock calls (time.Now,
// time.Sleep, time.After, time.Tick, time.NewTimer, time.NewTicker,
// time.AfterFunc) inside internal/wire, outside the clock implementation
// file (clock.go).
//
// The wire package's reconnect backoff is timing-sensitive logic that
// must be testable without sleeping wall-clock time: every delay goes
// through the injectable wire.Clock so tests substitute a fake. A naked
// time.After buried in a retry loop silently reintroduces real sleeps
// into the test suite and makes backoff behavior unobservable.
package nakedclock

import (
	"go/ast"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the nakedclock pass.
var Analyzer = &analysis.Analyzer{
	Name: "nakedclock",
	Doc:  "internal/wire must route time through the injectable Clock; naked time.Now/Sleep/After calls are allowed only in clock.go",
	Run:  run,
}

// scopePkg is the package the rule applies to.
const scopePkg = "repro/internal/wire"

// allowedFiles may touch the real clock: they implement it.
var allowedFiles = map[string]bool{"clock.go": true}

// forbidden are the time package functions that read or wait on the real
// clock. Pure arithmetic (time.Duration, time.Since is Now-based so it IS
// forbidden) stays allowed.
var forbidden = map[string]bool{
	"Now": true, "Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true, "Since": true, "Until": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() != scopePkg && !strings.HasPrefix(pass.Pkg.Path(), scopePkg+"/") {
		return nil
	}
	for _, file := range pass.Files {
		name := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if allowedFiles[name] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := analysis.CalleeObj(pass.TypesInfo, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbidden[obj.Name()] {
				pass.Reportf(call.Pos(),
					"naked time.%s in internal/wire; route it through the injectable Clock (see clock.go) so backoff tests do not sleep wall-time",
					obj.Name())
			}
			return true
		})
	}
	return nil
}
