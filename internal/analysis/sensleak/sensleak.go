// Package sensleak enforces the repository's core partitioned-security
// invariant at the source level: values derived from key material or from
// decrypted sensitive data must never flow into error strings, log
// output, or serialization encoders outside the approved packages.
//
// The paper's guarantee is that sensitive data leaves the owner only in
// encrypted form. A fmt.Errorf("%v", secret) breaks that guarantee the
// moment the error crosses a trust boundary (a wire response, a log file
// shipped to the cloud provider), and the compiler cannot see it. This
// analyzer can.
//
// Taint sources (tracked intra-procedurally, flow-insensitively to a
// fixpoint over assignments, range statements and value-propagating
// expressions):
//
//   - sub-key selectors on crypto.KeySet (ks.Enc, ks.Admin, ...)
//   - results of crypto.DeriveKeys, crypto.PRF, crypto.PRF2,
//     crypto.SplitSecret, crypto.Reconstruct, wire.OwnerToken,
//     wire.hashToken and the crypto Decrypt/DecryptAppend methods
//   - parameters named secret, master, masterKey, adminToken or
//     ownerToken anywhere, plus alpha inside internal/crypto (the DPF
//     secret point)
//   - parameters of type relation.Value / []relation.Value inside
//     internal/technique (sensitive-side query values — DPF-PIR's whole
//     point is that nobody learns which value was searched)
//
// Sinks:
//
//   - fmt/log print and format functions, errors.New, and panic
//   - gob/json encoders outside internal/crypto and internal/wire (the
//     allowlisted packages whose encrypt/HMAC/frame call sites are the
//     approved way for derived bytes to reach a wire)
//
// Length and capacity break taint (len(secret) is publishable), as does
// any call not in the source list (hashing, encryption).
package sensleak

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the sensleak pass.
var Analyzer = &analysis.Analyzer{
	Name: "sensleak",
	Doc:  "key material and decrypted sensitive values must not reach error strings, logs, or encoders outside internal/crypto and internal/wire",
	Run:  run,
}

const (
	cryptoPkg    = "repro/internal/crypto"
	wirePkg      = "repro/internal/wire"
	relationPkg  = "repro/internal/relation"
	techniquePkg = "repro/internal/technique"
)

// taintedParamNames taints function parameters by name, tree-wide.
var taintedParamNames = map[string]bool{
	"secret":     true,
	"master":     true,
	"masterKey":  true,
	"adminToken": true,
	"ownerToken": true,
}

// sourceFuncs lists functions/methods whose results are tainted, as
// pkgPath:name.
var sourceFuncs = map[string]bool{
	cryptoPkg + ":DeriveKeys":    true,
	cryptoPkg + ":PRF":           true,
	cryptoPkg + ":PRF2":          true,
	cryptoPkg + ":SplitSecret":   true,
	cryptoPkg + ":Reconstruct":   true,
	cryptoPkg + ":Decrypt":       true,
	cryptoPkg + ":DecryptAppend": true,
	wirePkg + ":OwnerToken":      true,
	wirePkg + ":hashToken":       true,
}

// keySetSubkeys are the fields of crypto.KeySet that are key material.
var keySetSubkeys = map[string]bool{
	"Enc": true, "Det": true, "Nonce": true, "PRF": true, "Arx": true, "Admin": true,
}

// printSinks maps pkgPath:name of functions whose arguments must stay
// untainted. Logger methods are matched separately.
var printSinks = map[string]bool{
	"fmt:Errorf": true, "fmt:Sprintf": true, "fmt:Sprint": true, "fmt:Sprintln": true,
	"fmt:Fprintf": true, "fmt:Fprint": true, "fmt:Fprintln": true,
	"fmt:Printf": true, "fmt:Print": true, "fmt:Println": true,
	"fmt:Appendf": true,
	"errors:New":  true,
	"log:Print":   true, "log:Printf": true, "log:Println": true,
	"log:Fatal": true, "log:Fatalf": true, "log:Fatalln": true,
	"log:Panic": true, "log:Panicf": true, "log:Panicln": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Type, fn.Body)
				}
				return false // FuncLits inside are walked by checkFunc
			}
			return true
		})
	}
	return nil
}

// checkFunc runs the per-function taint analysis. Function literals nested
// inside share the enclosing function's taint state (they close over its
// variables), so they are analyzed in the same pass.
func checkFunc(pass *analysis.Pass, ftyp *ast.FuncType, body *ast.BlockStmt) {
	t := &tainter{pass: pass, tainted: make(map[types.Object]bool)}
	t.seedParams(ftyp)
	// Seed nested literals' parameters too.
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			t.seedParams(lit.Type)
		}
		return true
	})
	t.propagate(body)
	t.checkSinks(body)
}

type tainter struct {
	pass    *analysis.Pass
	tainted map[types.Object]bool
}

func (t *tainter) seedParams(ftyp *ast.FuncType) {
	if ftyp.Params == nil {
		return
	}
	pkgPath := t.pass.Pkg.Path()
	for _, field := range ftyp.Params.List {
		for _, name := range field.Names {
			obj := analysis.ObjOf(t.pass.TypesInfo, name)
			if obj == nil {
				continue
			}
			if taintedParamNames[name.Name] {
				t.tainted[obj] = true
			}
			// The DPF secret point, inside the crypto package only.
			if pkgPath == cryptoPkg && name.Name == "alpha" {
				t.tainted[obj] = true
			}
			// Sensitive-side query values inside the technique package.
			if pkgPath == techniquePkg && isValueOrValues(obj.Type()) {
				t.tainted[obj] = true
			}
		}
	}
}

// isValueOrValues reports relation.Value or a slice of it.
func isValueOrValues(typ types.Type) bool {
	if sl, ok := typ.Underlying().(*types.Slice); ok {
		typ = sl.Elem()
		if inner, ok := typ.Underlying().(*types.Slice); ok {
			typ = inner.Elem() // [][]Value (batch shape)
		}
	}
	return analysis.IsNamed(typ, relationPkg, "Value")
}

// propagate iterates assignment/range propagation to a fixpoint.
func (t *tainter) propagate(body *ast.BlockStmt) {
	for i := 0; i < 8; i++ {
		changed := false
		ast.Inspect(body, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				changed = t.propagateAssign(st) || changed
			case *ast.ValueSpec:
				for i, name := range st.Names {
					var rhs ast.Expr
					if len(st.Values) == len(st.Names) {
						rhs = st.Values[i]
					} else if len(st.Values) == 1 {
						rhs = st.Values[0]
					}
					if rhs != nil && t.exprTainted(rhs) {
						changed = t.taintIdent(name) || changed
					}
				}
			case *ast.RangeStmt:
				if t.exprTainted(st.X) {
					if id, ok := st.Key.(*ast.Ident); ok {
						_ = id // index/key of a tainted slice is positional, not secret
					}
					if id, ok := st.Value.(*ast.Ident); ok {
						changed = t.taintIdent(id) || changed
					}
				}
			}
			return true
		})
		if !changed {
			return
		}
	}
}

func (t *tainter) propagateAssign(st *ast.AssignStmt) bool {
	changed := false
	if len(st.Lhs) == len(st.Rhs) {
		for i, lhs := range st.Lhs {
			if t.exprTainted(st.Rhs[i]) {
				changed = t.taintExprTarget(lhs) || changed
			}
		}
		return changed
	}
	// Tuple assignment from one call: taint all targets if the call is a
	// source (or its arguments taint it — conversions etc.).
	if len(st.Rhs) == 1 && t.exprTainted(st.Rhs[0]) {
		for _, lhs := range st.Lhs {
			changed = t.taintExprTarget(lhs) || changed
		}
	}
	return changed
}

func (t *tainter) taintExprTarget(lhs ast.Expr) bool {
	if root := analysis.RootIdent(lhs); root != nil && root.Name != "_" {
		return t.taintIdent(root)
	}
	return false
}

func (t *tainter) taintIdent(id *ast.Ident) bool {
	obj := analysis.ObjOf(t.pass.TypesInfo, id)
	if obj == nil || t.tainted[obj] {
		return false
	}
	// Errors returned alongside a sensitive value are not themselves
	// sensitive: `pt, err := prob.Decrypt(ct)` taints pt, not err —
	// wrapping err with %w is the normal, safe pattern.
	if isErrorType(obj.Type()) {
		return false
	}
	t.tainted[obj] = true
	return true
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorIface)
}

// exprTainted reports whether e's value derives from a taint source.
func (t *tainter) exprTainted(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident:
		obj := analysis.ObjOf(t.pass.TypesInfo, x)
		return obj != nil && t.tainted[obj]
	case *ast.SelectorExpr:
		if t.isKeySetSubkey(x) {
			return true
		}
		return t.exprTainted(x.X)
	case *ast.CallExpr:
		return t.callTainted(x)
	case *ast.ParenExpr:
		return t.exprTainted(x.X)
	case *ast.StarExpr:
		return t.exprTainted(x.X)
	case *ast.UnaryExpr:
		return t.exprTainted(x.X)
	case *ast.BinaryExpr:
		return t.exprTainted(x.X) || t.exprTainted(x.Y)
	case *ast.IndexExpr:
		return t.exprTainted(x.X)
	case *ast.SliceExpr:
		return t.exprTainted(x.X)
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if t.exprTainted(kv.Value) {
					return true
				}
			} else if t.exprTainted(elt) {
				return true
			}
		}
	case *ast.TypeAssertExpr:
		return t.exprTainted(x.X)
	}
	return false
}

func (t *tainter) isKeySetSubkey(sel *ast.SelectorExpr) bool {
	if !keySetSubkeys[sel.Sel.Name] {
		return false
	}
	tv, ok := t.pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsNamed(tv.Type, cryptoPkg, "KeySet")
}

// callTainted: conversions and slice-building builtins propagate taint;
// listed source functions introduce it; everything else (hashing,
// encryption, len, cap) breaks it.
func (t *tainter) callTainted(call *ast.CallExpr) bool {
	info := t.pass.TypesInfo
	if analysis.IsConversion(info, call) {
		return len(call.Args) == 1 && t.exprTainted(call.Args[0])
	}
	if analysis.IsBuiltin(info, call, "append") || analysis.IsBuiltin(info, call, "min") || analysis.IsBuiltin(info, call, "max") {
		for _, a := range call.Args {
			if t.exprTainted(a) {
				return true
			}
		}
		return false
	}
	obj := analysis.CalleeObj(info, call)
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return sourceFuncs[obj.Pkg().Path()+":"+obj.Name()]
}

// --- sinks ---------------------------------------------------------------

func (t *tainter) checkSinks(body *ast.BlockStmt) {
	info := t.pass.TypesInfo
	pkgPath := t.pass.Pkg.Path()
	encoderAllowed := pkgPath == cryptoPkg || pkgPath == wirePkg ||
		strings.HasPrefix(pkgPath, cryptoPkg+"/") || strings.HasPrefix(pkgPath, wirePkg+"/")

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if analysis.IsBuiltin(info, call, "panic") {
			t.reportTaintedArgs(call, "panic")
			return true
		}
		obj := analysis.CalleeObj(info, call)
		if obj == nil || obj.Pkg() == nil {
			return true
		}
		key := obj.Pkg().Path() + ":" + obj.Name()
		switch {
		case printSinks[key]:
			t.reportTaintedArgs(call, obj.Pkg().Name()+"."+obj.Name())
		case obj.Pkg().Path() == "log" && isLoggerMethod(obj):
			t.reportTaintedArgs(call, "log.Logger."+obj.Name())
		case !encoderAllowed && isEncoderSink(obj):
			for _, a := range call.Args {
				if t.exprTainted(a) {
					t.pass.Reportf(a.Pos(),
						"sensitive value reaches %s.%s outside internal/crypto and internal/wire; only the approved encrypt/HMAC call sites may serialize derived bytes",
						obj.Pkg().Name(), obj.Name())
				}
			}
		}
		return true
	})
}

func isLoggerMethod(obj types.Object) bool {
	switch obj.Name() {
	case "Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln", "Output":
		return true
	}
	return false
}

// isEncoderSink matches gob/json serialization entry points.
func isEncoderSink(obj types.Object) bool {
	switch obj.Pkg().Path() {
	case "encoding/gob", "encoding/json":
		return obj.Name() == "Encode" || obj.Name() == "Marshal" || obj.Name() == "MarshalIndent"
	}
	return false
}

func (t *tainter) reportTaintedArgs(call *ast.CallExpr, sink string) {
	for _, a := range call.Args {
		if t.exprTainted(a) {
			t.pass.Reportf(a.Pos(),
				"sensitive value flows into %s; key material and decrypted sensitive data must never appear in error strings or logs", sink)
		}
	}
}
