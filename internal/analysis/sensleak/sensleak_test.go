package sensleak_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sensleak"
)

func TestSensleak(t *testing.T) {
	analysistest.Run(t, sensleak.Analyzer, "repro/example/sensleak", "../testdata/src/sensleak")
}
