package workload

import (
	"fmt"
	mrand "math/rand"

	"repro/internal/relation"
)

// LineItemSchema is a simplified TPC-H LINEITEM with the two searchable
// attributes the paper reports metadata sizes for (§V-B).
var LineItemSchema = relation.MustSchema("LINEITEM",
	relation.Column{Name: "L_ORDERKEY", Kind: relation.KindInt},
	relation.Column{Name: "L_PARTKEY", Kind: relation.KindInt},
	relation.Column{Name: "L_SUPPKEY", Kind: relation.KindInt},
	relation.Column{Name: "L_QUANTITY", Kind: relation.KindInt},
	relation.Column{Name: "L_EXTENDEDPRICE", Kind: relation.KindInt},
	relation.Column{Name: "L_SHIPMODE", Kind: relation.KindString},
)

var shipModes = []string{"AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB", "REG AIR"}

// TPCHSpec configures the LINEITEM generator. At scale factor 1, TPC-H has
// 6M lineitems, 200K parts and 10K suppliers; Scale shrinks everything
// proportionally (with floors) so tests stay fast.
type TPCHSpec struct {
	// Tuples is the LINEITEM row count.
	Tuples int
	// Alpha is the fraction of tuples that are sensitive.
	Alpha float64
	// Seed makes generation deterministic.
	Seed int64
}

// LineItem generates the table plus a row-sensitivity ground truth (orders
// are marked sensitive as a block, mimicking "all tuples of defence orders
// are sensitive").
func LineItem(spec TPCHSpec) (*Dataset, error) {
	if spec.Tuples <= 0 {
		return nil, fmt.Errorf("workload: tpch needs positive Tuples, got %d", spec.Tuples)
	}
	rnd := mrand.New(mrand.NewSource(spec.Seed))
	partDomain := spec.Tuples / 30
	if partDomain < 10 {
		partDomain = 10
	}
	suppDomain := spec.Tuples / 600
	if suppDomain < 5 {
		suppDomain = 5
	}
	rel := relation.New(LineItemSchema)
	ds := &Dataset{Relation: rel, SensitiveIDs: make(map[int]bool)}
	seen := make(map[int64]bool, partDomain)
	budget := int(spec.Alpha * float64(spec.Tuples))
	for i := 0; i < spec.Tuples; i++ {
		part := rnd.Int63n(int64(partDomain))
		id := rel.MustInsert(
			relation.Int(int64(i/4)),                    // orderkey: ~4 lines per order
			relation.Int(part),                          // partkey: searchable
			relation.Int(rnd.Int63n(int64(suppDomain))), // suppkey
			relation.Int(1+rnd.Int63n(50)),
			relation.Int(1000+rnd.Int63n(90000)),
			relation.Str(shipModes[rnd.Intn(len(shipModes))]),
		)
		if budget > 0 && rnd.Float64() < spec.Alpha*1.05 {
			ds.SensitiveIDs[id] = true
			budget--
		}
		if !seen[part] {
			seen[part] = true
			ds.Values = append(ds.Values, relation.Int(part))
		}
	}
	ids := ds.SensitiveIDs
	ds.Sensitive = func(t relation.Tuple) bool { return ids[t.ID] }
	return ds, nil
}

// LineItemAttr is the searchable attribute used by the TPC-H experiments.
const LineItemAttr = "L_PARTKEY"
