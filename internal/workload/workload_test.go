package workload

import (
	"testing"

	"repro/internal/relation"
)

func TestEmployeeMatchesFigure1(t *testing.T) {
	emp := Employee()
	if emp.Len() != 8 {
		t.Fatalf("Employee has %d tuples, want 8", emp.Len())
	}
	rs, rns := relation.Partition(emp, EmployeeSensitive)
	if rs.Len() != 4 || rns.Len() != 4 {
		t.Fatalf("partition = %d sensitive / %d non-sensitive, want 4/4", rs.Len(), rns.Len())
	}
	// Figure 2b: the sensitive partition is exactly t1, t4, t5, t7
	// (IDs 0, 3, 4, 6).
	wantIDs := map[int]bool{0: true, 3: true, 4: true, 6: true}
	for _, tp := range rs.Tuples {
		if !wantIDs[tp.ID] {
			t.Errorf("unexpected sensitive tuple ID %d", tp.ID)
		}
	}
	// E259 appears once in each partition (the associated value).
	s259, _ := rs.Select("EId", relation.Str("E259"))
	n259, _ := rns.Select("EId", relation.Str("E259"))
	if len(s259) != 1 || len(n259) != 1 {
		t.Errorf("E259 split = %d/%d, want 1/1", len(s259), len(n259))
	}
}

func TestGenerateBasics(t *testing.T) {
	ds, err := Generate(GenSpec{Tuples: 1000, DistinctValues: 100, Alpha: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Relation.Len() != 1000 {
		t.Fatalf("generated %d tuples", ds.Relation.Len())
	}
	if len(ds.Values) != 100 {
		t.Fatalf("generated %d values", len(ds.Values))
	}
	sens := 0
	for _, tp := range ds.Relation.Tuples {
		if ds.Sensitive(tp) {
			sens++
		}
	}
	if sens < 300 || sens > 450 {
		t.Errorf("sensitive tuples = %d, want ≈ 400", sens)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := GenSpec{Tuples: 200, DistinctValues: 20, Alpha: 0.5, ZipfS: 1.5, Seed: 9}
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.Relation.Len() != b.Relation.Len() {
		t.Fatal("non-deterministic size")
	}
	for i := range a.Relation.Tuples {
		if !a.Relation.Tuples[i].Values[0].Equal(b.Relation.Tuples[i].Values[0]) {
			t.Fatal("non-deterministic content")
		}
	}
}

func TestGenerateZipfIsSkewed(t *testing.T) {
	ds, err := Generate(GenSpec{Tuples: 10000, DistinctValues: 100, ZipfS: 1.8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	counts, err := ds.Relation.DistinctCounts(Attr)
	if err != nil {
		t.Fatal(err)
	}
	maxC, minC := 0, 1<<31
	for _, vc := range counts {
		if vc.Count > maxC {
			maxC = vc.Count
		}
		if vc.Count < minC {
			minC = vc.Count
		}
	}
	if maxC < 10*minC {
		t.Errorf("zipf skew too mild: max %d min %d", maxC, minC)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(GenSpec{Tuples: 0, DistinctValues: 10}); err == nil {
		t.Error("zero tuples accepted")
	}
	// DistinctValues > Tuples is clamped, not an error.
	ds, err := Generate(GenSpec{Tuples: 5, DistinctValues: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Values) != 5 {
		t.Errorf("clamp produced %d values", len(ds.Values))
	}
}

func TestGenerateAssociation(t *testing.T) {
	ds, err := Generate(GenSpec{
		Tuples: 2000, DistinctValues: 50, Alpha: 0.5, AssocFraction: 1.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rs, rns := relation.Partition(ds.Relation, ds.Sensitive)
	sVals, _ := rs.DistinctCounts(Attr)
	nsSet := make(map[string]bool)
	nVals, _ := rns.DistinctCounts(Attr)
	for _, vc := range nVals {
		nsSet[vc.Value.Key()] = true
	}
	assoc := 0
	for _, vc := range sVals {
		if nsSet[vc.Value.Key()] {
			assoc++
		}
	}
	if assoc == 0 {
		t.Error("AssocFraction=1 produced no associated values")
	}
}

func TestQueryStream(t *testing.T) {
	ds, err := Generate(GenSpec{Tuples: 100, DistinctValues: 10, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	qs := QueryStream(ds, QuerySpec{Queries: 500, Seed: 5})
	if len(qs) != 500 {
		t.Fatalf("stream length %d", len(qs))
	}
	skewed := QueryStream(ds, QuerySpec{Queries: 500, ZipfS: 2.0, Seed: 5})
	hist := make(map[string]int)
	for _, q := range skewed {
		hist[q.Key()]++
	}
	maxC := 0
	for _, n := range hist {
		if n > maxC {
			maxC = n
		}
	}
	if maxC < 150 {
		t.Errorf("zipf query stream max frequency %d, want skew", maxC)
	}
}

func TestTPCHLineItem(t *testing.T) {
	ds, err := LineItem(TPCHSpec{Tuples: 3000, Alpha: 0.2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Relation.Len() != 3000 {
		t.Fatalf("lineitem rows = %d", ds.Relation.Len())
	}
	if _, ok := ds.Relation.Schema.ColumnIndex(LineItemAttr); !ok {
		t.Fatal("missing searchable attribute")
	}
	sens := 0
	for _, tp := range ds.Relation.Tuples {
		if ds.Sensitive(tp) {
			sens++
		}
	}
	if sens < 300 || sens > 900 {
		t.Errorf("sensitive = %d, want ≈ 600", sens)
	}
	if _, err := LineItem(TPCHSpec{Tuples: 0}); err == nil {
		t.Error("zero tuples accepted")
	}
}
