package workload

import (
	"fmt"
	mrand "math/rand"

	"repro/internal/relation"
)

// GenSpec describes a synthetic dataset for the performance and security
// experiments.
type GenSpec struct {
	// Name labels the generated relation.
	Name string
	// Tuples is the total tuple count (|D|).
	Tuples int
	// DistinctValues is the domain size of the searchable attribute K.
	DistinctValues int
	// Alpha is the target fraction of tuples that are sensitive.
	Alpha float64
	// ZipfS, when > 1, draws values from a Zipf(s) distribution so that
	// some values are heavy hitters; 0 gives the uniform distribution.
	ZipfS float64
	// AssocFraction is the fraction of sensitive values that also occur in
	// the non-sensitive partition (associated values): for such a value,
	// half of its tuples are marked non-sensitive.
	AssocFraction float64
	// ExtraColumns pads each tuple with this many integer payload columns
	// so that tuple width resembles real rows.
	ExtraColumns int
	// Seed makes generation deterministic.
	Seed int64
}

// Dataset is a generated relation plus its sensitivity ground truth.
type Dataset struct {
	Relation  *relation.Relation
	Sensitive relation.Predicate
	// SensitiveIDs is the ground-truth set of sensitive tuple IDs.
	SensitiveIDs map[int]bool
	// Values is the searchable attribute domain actually used.
	Values []relation.Value
}

// Attr is the searchable attribute name of generated relations.
const Attr = "K"

// Generate builds the dataset. Values are integers 0..DistinctValues-1;
// tuple counts follow the requested distribution; sensitivity is assigned
// value by value until the α budget is met, honouring AssocFraction.
func Generate(spec GenSpec) (*Dataset, error) {
	if spec.Tuples <= 0 || spec.DistinctValues <= 0 {
		return nil, fmt.Errorf("workload: spec needs positive Tuples and DistinctValues, got %d/%d",
			spec.Tuples, spec.DistinctValues)
	}
	if spec.DistinctValues > spec.Tuples {
		spec.DistinctValues = spec.Tuples
	}
	rnd := mrand.New(mrand.NewSource(spec.Seed))

	// Per-value tuple counts: everyone gets one tuple, the remainder is
	// distributed uniformly or by Zipf rank.
	counts := make([]int, spec.DistinctValues)
	for i := range counts {
		counts[i] = 1
	}
	rest := spec.Tuples - spec.DistinctValues
	if spec.ZipfS > 1 && rest > 0 {
		z := mrand.NewZipf(rnd, spec.ZipfS, 1, uint64(spec.DistinctValues-1))
		for i := 0; i < rest; i++ {
			counts[z.Uint64()]++
		}
	} else {
		for i := 0; i < rest; i++ {
			counts[rnd.Intn(spec.DistinctValues)]++
		}
	}

	// Sensitivity: walk values in random order, marking them sensitive
	// until α·Tuples tuples are covered. With probability AssocFraction a
	// sensitive value keeps half of its tuples non-sensitive (associated).
	order := rnd.Perm(spec.DistinctValues)
	budget := int(spec.Alpha * float64(spec.Tuples))
	sensTuplesOf := make([]int, spec.DistinctValues) // how many tuples of value v are sensitive
	for _, v := range order {
		if budget <= 0 {
			break
		}
		n := counts[v]
		take := n
		if spec.AssocFraction > 0 && rnd.Float64() < spec.AssocFraction && n > 1 {
			take = n / 2
		}
		if take > budget {
			take = budget
		}
		sensTuplesOf[v] = take
		budget -= take
	}

	cols := []relation.Column{{Name: Attr, Kind: relation.KindInt}}
	for i := 0; i < spec.ExtraColumns; i++ {
		cols = append(cols, relation.Column{Name: fmt.Sprintf("P%d", i), Kind: relation.KindInt})
	}
	name := spec.Name
	if name == "" {
		name = "Gen"
	}
	rel := relation.New(relation.MustSchema(name, cols...))

	ds := &Dataset{
		Relation:     rel,
		SensitiveIDs: make(map[int]bool),
	}
	for v := 0; v < spec.DistinctValues; v++ {
		ds.Values = append(ds.Values, relation.Int(int64(v)))
		for i := 0; i < counts[v]; i++ {
			vals := make([]relation.Value, len(cols))
			vals[0] = relation.Int(int64(v))
			for c := 1; c < len(cols); c++ {
				vals[c] = relation.Int(rnd.Int63n(1 << 30))
			}
			id := rel.MustInsert(vals...)
			if i < sensTuplesOf[v] {
				ds.SensitiveIDs[id] = true
			}
		}
	}
	ids := ds.SensitiveIDs
	ds.Sensitive = func(t relation.Tuple) bool { return ids[t.ID] }
	return ds, nil
}

// QuerySpec describes a stream of selection predicates over a dataset.
type QuerySpec struct {
	// Queries is the stream length.
	Queries int
	// ZipfS, when > 1, skews the stream toward low-numbered values
	// (workload-skew); 0 gives a uniform stream.
	ZipfS float64
	// Seed makes the stream deterministic.
	Seed int64
}

// QueryStream draws a sequence of query values from the dataset's domain.
func QueryStream(ds *Dataset, spec QuerySpec) []relation.Value {
	rnd := mrand.New(mrand.NewSource(spec.Seed))
	out := make([]relation.Value, 0, spec.Queries)
	n := len(ds.Values)
	if n == 0 {
		return out
	}
	var z *mrand.Zipf
	if spec.ZipfS > 1 && n > 1 {
		z = mrand.NewZipf(rnd, spec.ZipfS, 1, uint64(n-1))
	}
	for i := 0; i < spec.Queries; i++ {
		var idx int
		if z != nil {
			idx = int(z.Uint64())
		} else {
			idx = rnd.Intn(n)
		}
		out = append(out, ds.Values[idx])
	}
	return out
}
