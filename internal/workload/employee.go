// Package workload provides the datasets and query distributions used by
// the experiments: the Employee relation of Figure 1, synthetic relations
// with controllable sensitivity, skew, and association structure, a TPC-H
// style LINEITEM generator, and uniform/Zipf query streams.
package workload

import "repro/internal/relation"

// EmployeeSchema is the schema of Figure 1.
var EmployeeSchema = relation.MustSchema("Employee",
	relation.Column{Name: "EId", Kind: relation.KindString},
	relation.Column{Name: "FirstName", Kind: relation.KindString},
	relation.Column{Name: "LastName", Kind: relation.KindString},
	relation.Column{Name: "SSN", Kind: relation.KindInt},
	relation.Column{Name: "Office", Kind: relation.KindInt},
	relation.Column{Name: "Dept", Kind: relation.KindString},
)

// Employee builds the eight-tuple relation of Figure 1. Tuples t1..t8 get
// IDs 0..7.
func Employee() *relation.Relation {
	r := relation.New(EmployeeSchema)
	rows := []struct {
		eid, first, last string
		ssn              int64
		office           int64
		dept             string
	}{
		{"E101", "Adam", "Smith", 111, 1, "Defense"},
		{"E259", "John", "Williams", 222, 2, "Design"},
		{"E199", "Eve", "Smith", 333, 2, "Design"},
		{"E259", "John", "Williams", 222, 6, "Defense"},
		{"E152", "Clark", "Cook", 444, 1, "Defense"},
		{"E254", "David", "Watts", 555, 4, "Design"},
		{"E159", "Lisa", "Ross", 666, 2, "Defense"},
		{"E152", "Clark", "Cook", 444, 3, "Design"},
	}
	for _, row := range rows {
		r.MustInsert(
			relation.Str(row.eid), relation.Str(row.first), relation.Str(row.last),
			relation.Int(row.ssn), relation.Int(row.office), relation.Str(row.dept),
		)
	}
	return r
}

// EmployeeSensitive is the row-level sensitivity rule of Example 1: all
// tuples of the Defense department are sensitive.
func EmployeeSensitive(t relation.Tuple) bool {
	di, _ := EmployeeSchema.ColumnIndex("Dept")
	return t.Values[di].Str() == "Defense"
}
