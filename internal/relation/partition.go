package relation

import "fmt"

// Predicate classifies a tuple; in the partitioned-computation model it
// decides row-level sensitivity.
type Predicate func(Tuple) bool

// Partition splits r into a sensitive relation Rs (tuples matching pred) and
// a non-sensitive relation Rns (the rest). Tuple IDs are preserved, so the
// union of the two is exactly r.
func Partition(r *Relation, sensitive Predicate) (rs, rns *Relation) {
	rs = New(Schema{Name: r.Schema.Name + "_s", Columns: r.Schema.Columns})
	rns = New(Schema{Name: r.Schema.Name + "_ns", Columns: r.Schema.Columns})
	for _, t := range r.Tuples {
		if sensitive(t) {
			rs.Tuples = append(rs.Tuples, t.Clone())
		} else {
			rns.Tuples = append(rns.Tuples, t.Clone())
		}
	}
	rs.nextID, rns.nextID = r.nextID, r.nextID
	return rs, rns
}

// ColumnSplit implements the vertical split of Example 1 (Figure 2): the
// sensitive columns (plus the key column) are carved into their own
// relation, and the remaining columns form the residual relation. The key
// column appears in both so the owner can re-join them.
func ColumnSplit(r *Relation, keyCol string, sensitiveCols []string) (sens, rest *Relation, err error) {
	if _, ok := r.Schema.ColumnIndex(keyCol); !ok {
		return nil, nil, fmt.Errorf("relation: %q has no key column %q", r.Schema.Name, keyCol)
	}
	isSens := make(map[string]bool, len(sensitiveCols))
	for _, c := range sensitiveCols {
		if _, ok := r.Schema.ColumnIndex(c); !ok {
			return nil, nil, fmt.Errorf("relation: %q has no column %q", r.Schema.Name, c)
		}
		if c == keyCol {
			return nil, nil, fmt.Errorf("relation: key column %q cannot itself be vertically split", keyCol)
		}
		isSens[c] = true
	}
	sensNames := append([]string{keyCol}, sensitiveCols...)
	restNames := make([]string, 0, r.Schema.Arity())
	for _, c := range r.Schema.Columns {
		if !isSens[c.Name] {
			restNames = append(restNames, c.Name)
		}
	}
	sens, err = r.Project(sensNames...)
	if err != nil {
		return nil, nil, err
	}
	sens.Schema.Name = r.Schema.Name + "_cols_s"
	rest, err = r.Project(restNames...)
	if err != nil {
		return nil, nil, err
	}
	rest.Schema.Name = r.Schema.Name + "_cols_ns"
	return sens, rest, nil
}
