package relation

import (
	"fmt"
	"strings"
)

// Column describes one attribute of a relation.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes a named relation: an ordered list of typed columns.
type Schema struct {
	Name    string
	Columns []Column
}

// NewSchema builds a schema, validating that column names are unique and
// non-empty.
func NewSchema(name string, cols ...Column) (Schema, error) {
	seen := make(map[string]bool, len(cols))
	for _, c := range cols {
		if c.Name == "" {
			return Schema{}, fmt.Errorf("relation: schema %q has an unnamed column", name)
		}
		if seen[c.Name] {
			return Schema{}, fmt.Errorf("relation: schema %q has duplicate column %q", name, c.Name)
		}
		seen[c.Name] = true
	}
	return Schema{Name: name, Columns: cols}, nil
}

// MustSchema is NewSchema that panics on error; intended for static schemas.
func MustSchema(name string, cols ...Column) Schema {
	s, err := NewSchema(name, cols...)
	if err != nil {
		panic(err)
	}
	return s
}

// ColumnIndex returns the position of the named column and whether it exists.
func (s Schema) ColumnIndex(name string) (int, bool) {
	for i, c := range s.Columns {
		if c.Name == name {
			return i, true
		}
	}
	return -1, false
}

// Arity returns the number of columns.
func (s Schema) Arity() int { return len(s.Columns) }

// Project returns a new schema containing only the named columns, in the
// given order.
func (s Schema) Project(names ...string) (Schema, []int, error) {
	cols := make([]Column, 0, len(names))
	idx := make([]int, 0, len(names))
	for _, n := range names {
		i, ok := s.ColumnIndex(n)
		if !ok {
			return Schema{}, nil, fmt.Errorf("relation: schema %q has no column %q", s.Name, n)
		}
		cols = append(cols, s.Columns[i])
		idx = append(idx, i)
	}
	out, err := NewSchema(s.Name, cols...)
	return out, idx, err
}

// String renders the schema as NAME(col TYPE, ...).
func (s Schema) String() string {
	var b strings.Builder
	b.WriteString(s.Name)
	b.WriteByte('(')
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Check verifies that the given values conform to the schema.
func (s Schema) Check(vals []Value) error {
	if len(vals) != len(s.Columns) {
		return fmt.Errorf("relation: %q expects %d values, got %d", s.Name, len(s.Columns), len(vals))
	}
	for i, v := range vals {
		if v.Kind() != s.Columns[i].Kind {
			return fmt.Errorf("relation: %q column %q expects %s, got %s",
				s.Name, s.Columns[i].Name, s.Columns[i].Kind, v.Kind())
		}
	}
	return nil
}
