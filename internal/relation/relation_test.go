package relation

import (
	"reflect"
	"testing"
)

func testSchema(t *testing.T) Schema {
	t.Helper()
	s, err := NewSchema("T",
		Column{Name: "K", Kind: KindInt},
		Column{Name: "Name", Kind: KindString},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	if _, err := NewSchema("T", Column{Name: "", Kind: KindInt}); err == nil {
		t.Error("unnamed column accepted")
	}
	if _, err := NewSchema("T",
		Column{Name: "A", Kind: KindInt},
		Column{Name: "A", Kind: KindString}); err == nil {
		t.Error("duplicate column accepted")
	}
}

func TestSchemaColumnIndex(t *testing.T) {
	s := testSchema(t)
	if i, ok := s.ColumnIndex("Name"); !ok || i != 1 {
		t.Errorf("ColumnIndex(Name) = %d, %v", i, ok)
	}
	if _, ok := s.ColumnIndex("missing"); ok {
		t.Error("found missing column")
	}
}

func TestSchemaCheck(t *testing.T) {
	s := testSchema(t)
	if err := s.Check([]Value{Int(1), Str("x")}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Check([]Value{Int(1)}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := s.Check([]Value{Str("1"), Str("x")}); err == nil {
		t.Error("wrong kind accepted")
	}
}

func TestSchemaString(t *testing.T) {
	s := testSchema(t)
	want := "T(K INT, Name VARCHAR)"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestInsertAndSelect(t *testing.T) {
	r := New(testSchema(t))
	id0 := r.MustInsert(Int(1), Str("a"))
	id1 := r.MustInsert(Int(2), Str("b"))
	id2 := r.MustInsert(Int(1), Str("c"))
	if id0 != 0 || id1 != 1 || id2 != 2 {
		t.Fatalf("ids = %d,%d,%d", id0, id1, id2)
	}
	got, err := r.Select("K", Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(IDs(got), []int{0, 2}) {
		t.Errorf("Select K=1 ids = %v", IDs(got))
	}
	if _, err := r.Select("missing", Int(1)); err == nil {
		t.Error("select on missing column succeeded")
	}
	if _, err := r.Insert(Int(1)); err == nil {
		t.Error("bad arity insert succeeded")
	}
}

func TestSelectRange(t *testing.T) {
	r := New(testSchema(t))
	for i := 0; i < 10; i++ {
		r.MustInsert(Int(int64(i)), Str("x"))
	}
	got, err := r.SelectRange("K", Int(3), Int(6))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(IDs(got), []int{3, 4, 5, 6}) {
		t.Errorf("range ids = %v", IDs(got))
	}
}

func TestProject(t *testing.T) {
	r := New(testSchema(t))
	r.MustInsert(Int(1), Str("a"))
	p, err := r.Project("Name")
	if err != nil {
		t.Fatal(err)
	}
	if p.Schema.Arity() != 1 || !p.Tuples[0].Values[0].Equal(Str("a")) {
		t.Errorf("project = %+v", p)
	}
	if p.Tuples[0].ID != 0 {
		t.Error("project dropped tuple ID")
	}
	if _, err := r.Project("missing"); err == nil {
		t.Error("project on missing column succeeded")
	}
}

func TestDistinctCounts(t *testing.T) {
	r := New(testSchema(t))
	r.MustInsert(Int(5), Str("a"))
	r.MustInsert(Int(5), Str("b"))
	r.MustInsert(Int(2), Str("c"))
	got, err := r.DistinctCounts("K")
	if err != nil {
		t.Fatal(err)
	}
	want := []ValueCount{{Int(2), 1}, {Int(5), 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DistinctCounts = %v, want %v", got, want)
	}
}

func TestPartitionPreservesAll(t *testing.T) {
	r := New(testSchema(t))
	for i := 0; i < 20; i++ {
		r.MustInsert(Int(int64(i)), Str("x"))
	}
	rs, rns := Partition(r, func(t Tuple) bool { return t.Values[0].Int()%3 == 0 })
	if rs.Len()+rns.Len() != r.Len() {
		t.Fatalf("partition lost tuples: %d + %d != %d", rs.Len(), rns.Len(), r.Len())
	}
	for _, tp := range rs.Tuples {
		if tp.Values[0].Int()%3 != 0 {
			t.Errorf("non-sensitive tuple %v in Rs", tp)
		}
	}
	for _, tp := range rns.Tuples {
		if tp.Values[0].Int()%3 == 0 {
			t.Errorf("sensitive tuple %v in Rns", tp)
		}
	}
}

func TestColumnSplit(t *testing.T) {
	s := MustSchema("E",
		Column{Name: "EId", Kind: KindString},
		Column{Name: "SSN", Kind: KindInt},
		Column{Name: "Office", Kind: KindInt},
	)
	r := New(s)
	r.MustInsert(Str("E1"), Int(111), Int(1))
	sens, rest, err := ColumnSplit(r, "EId", []string{"SSN"})
	if err != nil {
		t.Fatal(err)
	}
	if sens.Schema.Arity() != 2 {
		t.Errorf("sensitive split arity = %d", sens.Schema.Arity())
	}
	if _, ok := rest.Schema.ColumnIndex("SSN"); ok {
		t.Error("rest still contains SSN")
	}
	if _, ok := rest.Schema.ColumnIndex("EId"); !ok {
		t.Error("rest lost the key column")
	}
	if _, _, err := ColumnSplit(r, "missing", nil); err == nil {
		t.Error("missing key column accepted")
	}
	if _, _, err := ColumnSplit(r, "EId", []string{"EId"}); err == nil {
		t.Error("key column as sensitive accepted")
	}
	if _, _, err := ColumnSplit(r, "EId", []string{"nope"}); err == nil {
		t.Error("missing sensitive column accepted")
	}
}

func TestTupleCodecRoundTrip(t *testing.T) {
	tu := Tuple{ID: 1234, Values: []Value{Int(-9), Str("héllo"), Int(0)}}
	got, err := DecodeTuple(EncodeTuple(tu))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != tu.ID || len(got.Values) != len(tu.Values) {
		t.Fatalf("round trip = %+v", got)
	}
	for i := range tu.Values {
		if !got.Values[i].Equal(tu.Values[i]) {
			t.Errorf("value %d: %v != %v", i, got.Values[i], tu.Values[i])
		}
	}
}

func TestTupleCodecErrors(t *testing.T) {
	if _, err := DecodeTuple(nil); err == nil {
		t.Error("nil decode succeeded")
	}
	enc := EncodeTuple(Tuple{ID: 1, Values: []Value{Int(7)}})
	if _, err := DecodeTuple(enc[:len(enc)-2]); err == nil {
		t.Error("truncated decode succeeded")
	}
	if _, err := DecodeTuple(append(enc, 0x00)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestCloneIsDeep(t *testing.T) {
	r := New(testSchema(t))
	r.MustInsert(Int(1), Str("a"))
	c := r.Clone()
	c.Tuples[0].Values[0] = Int(99)
	if r.Tuples[0].Values[0].Int() != 1 {
		t.Error("clone shares value storage")
	}
	id := c.MustInsert(Int(2), Str("b"))
	if id != 1 {
		t.Errorf("clone nextID = %d", id)
	}
}

func TestAppendKeepsIDsMonotonic(t *testing.T) {
	r := New(testSchema(t))
	if err := r.Append(Tuple{ID: 10, Values: []Value{Int(1), Str("a")}}); err != nil {
		t.Fatal(err)
	}
	if id := r.MustInsert(Int(2), Str("b")); id != 11 {
		t.Errorf("insert after append got id %d, want 11", id)
	}
}
