package relation

import (
	"bytes"
	"testing"
)

// FuzzDecodeValue ensures the value decoder never panics and that anything
// it accepts round-trips.
func FuzzDecodeValue(f *testing.F) {
	f.Add([]byte{})
	f.Add(Int(42).Encode())
	f.Add(Int(-1).Encode())
	f.Add(Str("hello").Encode())
	f.Add([]byte{byte(KindString), 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeValue(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		enc := v.Encode()
		if !bytes.Equal(enc, data[:consumed]) {
			// Different bytes may decode to the same value only if they
			// re-encode identically; otherwise the codec is ambiguous.
			v2, _, err2 := DecodeValue(enc)
			if err2 != nil || !v2.Equal(v) {
				t.Fatalf("decode(%x) = %v does not round-trip", data[:consumed], v)
			}
		}
	})
}

// FuzzDecodeTuple ensures the tuple decoder never panics and round-trips
// what it accepts.
func FuzzDecodeTuple(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTuple(Tuple{ID: 7, Values: []Value{Int(1), Str("x")}}))
	f.Add(EncodeTuple(Tuple{}))
	f.Fuzz(func(t *testing.T, data []byte) {
		tu, err := DecodeTuple(data)
		if err != nil {
			return
		}
		if !bytes.Equal(EncodeTuple(tu), data) {
			t.Fatalf("accepted non-canonical encoding %x", data)
		}
	})
}
