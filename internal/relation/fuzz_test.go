package relation

import (
	"bytes"
	"slices"
	"testing"
)

// FuzzDecodeValue ensures the value decoder never panics and that anything
// it accepts round-trips.
func FuzzDecodeValue(f *testing.F) {
	f.Add([]byte{})
	f.Add(Int(42).Encode())
	f.Add(Int(-1).Encode())
	f.Add(Str("hello").Encode())
	f.Add([]byte{byte(KindString), 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodeValue(data)
		if err != nil {
			return
		}
		consumed := len(data) - len(rest)
		enc := v.Encode()
		if !bytes.Equal(enc, data[:consumed]) {
			// Different bytes may decode to the same value only if they
			// re-encode identically; otherwise the codec is ambiguous.
			v2, _, err2 := DecodeValue(enc)
			if err2 != nil || !v2.Equal(v) {
				t.Fatalf("decode(%x) = %v does not round-trip", data[:consumed], v)
			}
		}
	})
}

// FuzzDecodeTuple ensures the tuple decoder never panics and that its
// re-encoding is stable. Byte-for-byte canonicality is NOT the invariant:
// binary.Uvarint accepts non-minimal varints (e.g. 0x80 0x00 for zero), so
// distinct inputs may decode to the same tuple — what must hold is that
// re-encoding and re-decoding reach a fixed point, and that the slab
// decoder agrees with the per-tuple one.
func FuzzDecodeTuple(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeTuple(Tuple{ID: 7, Values: []Value{Int(1), Str("x")}}))
	f.Add(EncodeTuple(Tuple{}))
	f.Add([]byte{'0', 0x80, 0x00}) // non-minimal arity varint, found by fuzzing
	tupleEq := func(a, b Tuple) bool {
		return a.ID == b.ID && slices.Equal(a.Values, b.Values)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tu, err := DecodeTuple(data)
		if err != nil {
			return
		}
		enc := EncodeTuple(tu)
		tu2, err := DecodeTuple(enc)
		if err != nil || !tupleEq(tu2, tu) {
			t.Fatalf("re-decode of %x: got %v err %v, want %v", enc, tu2, err, tu)
		}
		if !bytes.Equal(EncodeTuple(tu2), enc) {
			t.Fatalf("re-encoding of %x is not a fixed point", data)
		}
		var slab []Value
		tu3, rest, err := DecodeTupleSlab(data, &slab)
		if err != nil || len(rest) != 0 || !tupleEq(tu3, tu) {
			t.Fatalf("DecodeTupleSlab(%x) = %v rest %x err %v, want %v", data, tu3, rest, err, tu)
		}
	})
}
