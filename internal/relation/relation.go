package relation

import (
	"fmt"
	"sort"

	"slices"
)

// Tuple is one row of a relation. ID is the stable identifier assigned at
// insertion into the *original* relation; it survives partitioning so that
// the merged result of a partitioned query can be compared against the
// result over the unpartitioned relation.
type Tuple struct {
	ID     int
	Values []Value
}

// Clone returns a deep copy of the tuple.
func (t Tuple) Clone() Tuple {
	vals := make([]Value, len(t.Values))
	copy(vals, t.Values)
	return Tuple{ID: t.ID, Values: vals}
}

// Relation is an in-memory table: a schema plus an ordered multiset of
// tuples.
type Relation struct {
	Schema Schema
	Tuples []Tuple

	nextID int
}

// New creates an empty relation with the given schema.
func New(s Schema) *Relation { return &Relation{Schema: s} }

// Insert appends a new tuple after validating it against the schema, and
// returns its assigned ID.
func (r *Relation) Insert(vals ...Value) (int, error) {
	if err := r.Schema.Check(vals); err != nil {
		return 0, err
	}
	id := r.nextID
	r.nextID++
	r.Tuples = append(r.Tuples, Tuple{ID: id, Values: vals})
	return id, nil
}

// MustInsert is Insert that panics on error; intended for statically-known
// rows such as test fixtures.
func (r *Relation) MustInsert(vals ...Value) int {
	id, err := r.Insert(vals...)
	if err != nil {
		panic(err)
	}
	return id
}

// Append adds an existing tuple (preserving its ID). It is used when
// partitioning a relation into sub-relations.
func (r *Relation) Append(t Tuple) error {
	if err := r.Schema.Check(t.Values); err != nil {
		return err
	}
	r.Tuples = append(r.Tuples, t)
	if t.ID >= r.nextID {
		r.nextID = t.ID + 1
	}
	return nil
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.Tuples) }

// Select returns all tuples whose attribute named col equals w.
func (r *Relation) Select(col string, w Value) ([]Tuple, error) {
	ci, ok := r.Schema.ColumnIndex(col)
	if !ok {
		return nil, fmt.Errorf("relation: %q has no column %q", r.Schema.Name, col)
	}
	var out []Tuple
	for _, t := range r.Tuples {
		if t.Values[ci].Equal(w) {
			out = append(out, t)
		}
	}
	return out, nil
}

// SelectRange returns all tuples with lo <= t[col] <= hi.
func (r *Relation) SelectRange(col string, lo, hi Value) ([]Tuple, error) {
	ci, ok := r.Schema.ColumnIndex(col)
	if !ok {
		return nil, fmt.Errorf("relation: %q has no column %q", r.Schema.Name, col)
	}
	var out []Tuple
	for _, t := range r.Tuples {
		v := t.Values[ci]
		if v.Compare(lo) >= 0 && v.Compare(hi) <= 0 {
			out = append(out, t)
		}
	}
	return out, nil
}

// Project returns a new relation containing only the named columns. Tuple
// IDs are preserved.
func (r *Relation) Project(names ...string) (*Relation, error) {
	schema, idx, err := r.Schema.Project(names...)
	if err != nil {
		return nil, err
	}
	out := New(schema)
	for _, t := range r.Tuples {
		vals := make([]Value, len(idx))
		for i, ci := range idx {
			vals[i] = t.Values[ci]
		}
		if err := out.Append(Tuple{ID: t.ID, Values: vals}); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DistinctCounts returns, for the named column, each distinct value with its
// tuple count, ordered by value (deterministic).
func (r *Relation) DistinctCounts(col string) ([]ValueCount, error) {
	ci, ok := r.Schema.ColumnIndex(col)
	if !ok {
		return nil, fmt.Errorf("relation: %q has no column %q", r.Schema.Name, col)
	}
	counts := make(map[string]*ValueCount)
	for _, t := range r.Tuples {
		v := t.Values[ci]
		k := v.Key()
		if vc, seen := counts[k]; seen {
			vc.Count++
		} else {
			counts[k] = &ValueCount{Value: v, Count: 1}
		}
	}
	out := make([]ValueCount, 0, len(counts))
	for _, vc := range counts {
		out = append(out, *vc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Value.Less(out[j].Value) })
	return out, nil
}

// Clone returns a deep copy of the relation.
func (r *Relation) Clone() *Relation {
	out := New(r.Schema)
	out.nextID = r.nextID
	out.Tuples = make([]Tuple, 0, len(r.Tuples))
	for _, t := range r.Tuples {
		out.Tuples = append(out.Tuples, t.Clone())
	}
	return out
}

// SortByID orders tuples by their stable ID; useful for comparing result
// sets.
func SortByID(ts []Tuple) {
	// slices.SortFunc, not sort.Slice: this runs once per merged query
	// result, and sort.Slice's reflect-built swapper was a measurable
	// allocation source in the remote batch profile.
	slices.SortFunc(ts, func(a, b Tuple) int { return a.ID - b.ID })
}

// IDs extracts the IDs of a tuple slice, sorted.
func IDs(ts []Tuple) []int {
	out := make([]int, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	sort.Ints(out)
	return out
}
