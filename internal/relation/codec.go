package relation

import (
	"encoding/binary"
)

// EncodeTuple serialises a tuple to a self-describing binary form:
// uvarint ID, uvarint arity, then each value's encoding. The encoding is the
// plaintext that gets encrypted when a sensitive tuple is outsourced.
func EncodeTuple(t Tuple) []byte {
	buf := binary.AppendUvarint(nil, uint64(t.ID))
	buf = binary.AppendUvarint(buf, uint64(len(t.Values)))
	for _, v := range t.Values {
		buf = v.AppendEncode(buf)
	}
	return buf
}

// DecodeTuple parses a tuple previously produced by EncodeTuple.
func DecodeTuple(b []byte) (Tuple, error) {
	id, w := binary.Uvarint(b)
	if w <= 0 {
		return Tuple{}, ErrCorrupt
	}
	b = b[w:]
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return Tuple{}, ErrCorrupt
	}
	b = b[w:]
	t := Tuple{ID: int(id), Values: make([]Value, 0, n)}
	for i := uint64(0); i < n; i++ {
		var v Value
		var err error
		v, b, err = DecodeValue(b)
		if err != nil {
			return Tuple{}, err
		}
		t.Values = append(t.Values, v)
	}
	if len(b) != 0 {
		return Tuple{}, ErrCorrupt
	}
	return t, nil
}
