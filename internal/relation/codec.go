package relation

import (
	"encoding/binary"
)

// AppendEncodeTuple appends a self-describing binary encoding of t to buf
// and returns the extended buffer: uvarint ID, uvarint arity, then each
// value's encoding. The encoding is the plaintext that gets encrypted when
// a sensitive tuple is outsourced; it is also how tuples travel inside the
// wire protocol's binary frames, where the append form avoids one
// allocation per tuple.
func AppendEncodeTuple(buf []byte, t Tuple) []byte {
	buf = binary.AppendUvarint(buf, uint64(t.ID))
	buf = binary.AppendUvarint(buf, uint64(len(t.Values)))
	for _, v := range t.Values {
		buf = v.AppendEncode(buf)
	}
	return buf
}

// EncodeTuple serialises a tuple to its binary form.
func EncodeTuple(t Tuple) []byte { return AppendEncodeTuple(nil, t) }

// DecodeTupleFrom decodes one tuple from the front of b and returns the
// remaining bytes — the streaming form of DecodeTuple for buffers carrying
// several tuples back to back. The declared arity is bounded by the bytes
// actually present before any allocation, so corrupt input cannot force a
// huge allocation.
func DecodeTupleFrom(b []byte) (Tuple, []byte, error) {
	id, w := binary.Uvarint(b)
	if w <= 0 {
		return Tuple{}, b, ErrCorrupt
	}
	b = b[w:]
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return Tuple{}, b, ErrCorrupt
	}
	b = b[w:]
	// Every value costs at least one byte.
	if n > uint64(len(b)) {
		return Tuple{}, b, ErrCorrupt
	}
	t := Tuple{ID: int(id), Values: make([]Value, 0, n)}
	for i := uint64(0); i < n; i++ {
		var v Value
		var err error
		v, b, err = DecodeValue(b)
		if err != nil {
			return Tuple{}, b, err
		}
		t.Values = append(t.Values, v)
	}
	return t, b, nil
}

// DecodeTupleSlab is DecodeTupleFrom with the Values backing drawn from
// *slab instead of a fresh allocation per tuple, for decode loops that
// materialise many tuples from one buffer (the wire codec's search
// responses, the owner's q_merge payload decode). The slab grows
// geometrically; when it grows, previously returned tuples keep their old
// backing, and every returned Values slice is capped with a full slice
// expression so a caller's append cannot clobber a neighbour.
func DecodeTupleSlab(b []byte, slab *[]Value) (Tuple, []byte, error) {
	id, w := binary.Uvarint(b)
	if w <= 0 {
		return Tuple{}, b, ErrCorrupt
	}
	b = b[w:]
	n, w := binary.Uvarint(b)
	if w <= 0 {
		return Tuple{}, b, ErrCorrupt
	}
	b = b[w:]
	// Every value costs at least one byte, so a lying arity cannot force
	// allocation beyond the bytes actually present.
	if n > uint64(len(b)) {
		return Tuple{}, b, ErrCorrupt
	}
	s := *slab
	if uint64(cap(s)-len(s)) < n {
		grow := 2 * cap(s)
		if grow < 64 {
			grow = 64
		}
		if uint64(grow) < n {
			grow = int(n)
		}
		s = make([]Value, 0, grow)
	}
	base := len(s)
	for i := uint64(0); i < n; i++ {
		var v Value
		var err error
		v, b, err = DecodeValue(b)
		if err != nil {
			*slab = s
			return Tuple{}, b, err
		}
		s = append(s, v)
	}
	*slab = s
	return Tuple{ID: int(id), Values: s[base:len(s):len(s)]}, b, nil
}

// DecodeTuple parses a tuple previously produced by EncodeTuple,
// requiring the buffer to contain exactly one tuple.
func DecodeTuple(b []byte) (Tuple, error) {
	t, rest, err := DecodeTupleFrom(b)
	if err != nil {
		return Tuple{}, err
	}
	if len(rest) != 0 {
		return Tuple{}, ErrCorrupt
	}
	return t, nil
}
