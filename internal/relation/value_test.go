package relation

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	iv := Int(42)
	if iv.Kind() != KindInt || iv.Int() != 42 {
		t.Fatalf("Int(42) = %+v", iv)
	}
	sv := Str("hello")
	if sv.Kind() != KindString || sv.Str() != "hello" {
		t.Fatalf("Str(hello) = %+v", sv)
	}
}

func TestValueEqual(t *testing.T) {
	cases := []struct {
		a, b Value
		want bool
	}{
		{Int(1), Int(1), true},
		{Int(1), Int(2), false},
		{Str("a"), Str("a"), true},
		{Str("a"), Str("b"), false},
		{Int(1), Str("1"), false},
		{Int(0), Value{}, true}, // zero value is Int(0)
	}
	for _, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("%v.Equal(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(1), 1},
		{Int(2), Int(2), 0},
		{Str("a"), Str("b"), -1},
		{Str("b"), Str("a"), 1},
		{Str("x"), Str("x"), 0},
		{Int(999), Str("a"), -1}, // ints order before strings
		{Str("a"), Int(999), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.a.Less(c.b); got != (c.want < 0) {
			t.Errorf("%v.Less(%v) = %v", c.a, c.b, got)
		}
	}
}

func TestValueKeyDistinct(t *testing.T) {
	// Keys must separate kinds even when string payloads look numeric.
	if Int(5).Key() == Str("5").Key() {
		t.Fatal("Int(5) and Str(5) share a key")
	}
	if Int(5).Key() != Int(5).Key() {
		t.Fatal("equal values must share a key")
	}
}

func TestValueEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(1), Int(-1), Int(1 << 62), Int(-(1 << 62)),
		Str(""), Str("a"), Str("héllo wörld"), Str(string(make([]byte, 300))),
	}
	for _, v := range vals {
		enc := v.Encode()
		got, rest, err := DecodeValue(enc)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if len(rest) != 0 {
			t.Fatalf("DecodeValue(%v) left %d bytes", v, len(rest))
		}
		if !got.Equal(v) {
			t.Fatalf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueDecodeErrors(t *testing.T) {
	bad := [][]byte{
		nil,
		{},
		{byte(KindInt)},                // truncated int
		{byte(KindInt), 1, 2, 3},       // truncated int
		{byte(KindString), 5, 'a'},     // length exceeds data
		{0xEE, 0, 0, 0, 0, 0, 0, 0, 0}, // unknown kind
	}
	for _, b := range bad {
		if _, _, err := DecodeValue(b); err == nil {
			t.Errorf("DecodeValue(% x) succeeded, want error", b)
		}
	}
}

// quickValue draws a random Value for property tests.
func quickValue(r *rand.Rand) Value {
	if r.Intn(2) == 0 {
		return Int(r.Int63() - r.Int63())
	}
	n := r.Intn(32)
	b := make([]byte, n)
	r.Read(b)
	return Str(string(b))
}

func TestValueRoundTripProperty(t *testing.T) {
	f := func() bool { return true }
	_ = f
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(quickValue(r))
		},
	}
	prop := func(v Value) bool {
		got, rest, err := DecodeValue(v.Encode())
		return err == nil && len(rest) == 0 && got.Equal(v)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCompareIsTotalOrderProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(quickValue(r))
			args[1] = reflect.ValueOf(quickValue(r))
			args[2] = reflect.ValueOf(quickValue(r))
		},
	}
	prop := func(a, b, c Value) bool {
		// Antisymmetry.
		if a.Compare(b) != -b.Compare(a) {
			return false
		}
		// Consistency with Equal.
		if (a.Compare(b) == 0) != a.Equal(b) {
			return false
		}
		// Transitivity (only the <= chain).
		if a.Compare(b) <= 0 && b.Compare(c) <= 0 && a.Compare(c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
