// Package relation implements the typed, in-memory relational substrate used
// by both the trusted database owner and the untrusted cloud in the
// partitioned-computation model of Mehrotra et al. (ICDE 2019). It provides
// values, schemas, tuples, relations, a binary tuple codec, and row/column
// sensitivity partitioning.
package relation

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value.
type Kind uint8

const (
	// KindInt is a 64-bit signed integer value.
	KindInt Kind = iota
	// KindString is a UTF-8 string value.
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "INT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// Value is an immutable, comparable attribute value. The zero Value is the
// integer 0.
type Value struct {
	kind Kind
	i    int64
	s    string
}

// Int returns an integer Value.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Str returns a string Value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// Kind reports the dynamic type of the value.
func (v Value) Kind() Kind { return v.kind }

// Int returns the integer payload. It is only meaningful for KindInt values.
func (v Value) Int() int64 { return v.i }

// Str returns the string payload. It is only meaningful for KindString
// values.
func (v Value) Str() string { return v.s }

// Equal reports whether two values have the same kind and payload.
func (v Value) Equal(o Value) bool {
	if v.kind != o.kind {
		return false
	}
	if v.kind == KindInt {
		return v.i == o.i
	}
	return v.s == o.s
}

// Compare orders values: by kind first (ints before strings), then by
// payload. It returns -1, 0, or +1.
func (v Value) Compare(o Value) int {
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindInt:
		switch {
		case v.i < o.i:
			return -1
		case v.i > o.i:
			return 1
		}
		return 0
	default:
		return strings.Compare(v.s, o.s)
	}
}

// Less reports whether v orders strictly before o.
func (v Value) Less(o Value) bool { return v.Compare(o) < 0 }

// Key returns a canonical string encoding suitable for use as a map key.
// Distinct values always produce distinct keys.
func (v Value) Key() string {
	if v.kind == KindInt {
		return "i:" + strconv.FormatInt(v.i, 10)
	}
	return "s:" + v.s
}

// String renders the value for humans.
func (v Value) String() string {
	if v.kind == KindInt {
		return strconv.FormatInt(v.i, 10)
	}
	return v.s
}

// AppendEncode appends a self-describing binary encoding of v to buf and
// returns the extended buffer. The encoding is one kind byte followed by an
// 8-byte big-endian integer (KindInt) or a uvarint length and raw bytes
// (KindString).
func (v Value) AppendEncode(buf []byte) []byte {
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindInt:
		var b [8]byte
		binary.BigEndian.PutUint64(b[:], uint64(v.i))
		buf = append(buf, b[:]...)
	case KindString:
		buf = binary.AppendUvarint(buf, uint64(len(v.s)))
		buf = append(buf, v.s...)
	}
	return buf
}

// Encode returns the binary encoding of v.
func (v Value) Encode() []byte { return v.AppendEncode(nil) }

// ErrCorrupt is returned when decoding malformed binary data.
var ErrCorrupt = errors.New("relation: corrupt encoding")

// DecodeValue decodes one value from b, returning the value and the
// remaining bytes.
func DecodeValue(b []byte) (Value, []byte, error) {
	if len(b) < 1 {
		return Value{}, b, ErrCorrupt
	}
	kind := Kind(b[0])
	b = b[1:]
	switch kind {
	case KindInt:
		if len(b) < 8 {
			return Value{}, b, ErrCorrupt
		}
		v := int64(binary.BigEndian.Uint64(b[:8]))
		return Int(v), b[8:], nil
	case KindString:
		n, w := binary.Uvarint(b)
		if w <= 0 || uint64(len(b)-w) < n {
			return Value{}, b, ErrCorrupt
		}
		b = b[w:]
		return Str(string(b[:n])), b[n:], nil
	default:
		return Value{}, b, fmt.Errorf("relation: unknown value kind %d: %w", kind, ErrCorrupt)
	}
}

// GobEncode implements gob.GobEncoder using the binary value codec, so
// Values (which have unexported fields) can cross the wire protocol.
func (v Value) GobEncode() ([]byte, error) { return v.Encode(), nil }

// GobDecode implements gob.GobDecoder.
func (v *Value) GobDecode(b []byte) error {
	dec, rest, err := DecodeValue(b)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return ErrCorrupt
	}
	*v = dec
	return nil
}

// ValueCount pairs an attribute value with the number of tuples carrying it.
// It is the unit of the owner-side metadata that drives bin creation.
type ValueCount struct {
	Value Value
	Count int
}
