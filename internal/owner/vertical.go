package owner

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/technique"
)

// VerticalOwner implements the column-level sensitivity split of Example 1
// (Figure 2): sensitive *columns* (e.g. SSN) are carved into their own
// always-encrypted relation keyed by the searchable attribute (Employee1),
// while the residual columns are partitioned row-wise into an encrypted
// Employee2 and a clear-text Employee3 handled by the regular QB owner.
//
// A query assembles the full rows: the residual part comes from the QB
// retrieval, and the sensitive columns are fetched from the column store
// using the same candidate value set the QB bins produced, so the
// adversarial view of the column store matches the bin shape and leaks no
// extra information.
type VerticalOwner struct {
	main *Owner
	cols technique.Technique

	keyAttr    string
	origSchema relation.Schema
	colsSchema relation.Schema
	sensCols   []string
}

// NewVertical creates a vertical owner. mainTech serves the row-partitioned
// residual relation; colsTech serves the always-encrypted sensitive-column
// relation.
func NewVertical(mainTech, colsTech technique.Technique, keyAttr string, sensitiveCols []string) *VerticalOwner {
	return &VerticalOwner{
		main:     New(mainTech, keyAttr),
		cols:     colsTech,
		keyAttr:  keyAttr,
		sensCols: append([]string(nil), sensitiveCols...),
	}
}

// Main exposes the inner row-level QB owner (for views and binning
// inspection).
func (v *VerticalOwner) Main() *Owner { return v.main }

// Outsource splits r by column and row sensitivity and uploads the three
// parts.
func (v *VerticalOwner) Outsource(r *relation.Relation, rowSensitive relation.Predicate, opts core.Options) error {
	v.origSchema = r.Schema
	sensRel, restRel, err := relation.ColumnSplit(r, v.keyAttr, v.sensCols)
	if err != nil {
		return err
	}
	v.colsSchema = sensRel.Schema

	// Row sensitivity is defined on the original tuples; carry it over to
	// the residual relation by tuple ID.
	sensByID := make(map[int]bool, r.Len())
	for _, t := range r.Tuples {
		if rowSensitive(t) {
			sensByID[t.ID] = true
		}
	}
	if err := v.main.Outsource(restRel, func(t relation.Tuple) bool { return sensByID[t.ID] }, opts); err != nil {
		return err
	}

	ki, ok := sensRel.Schema.ColumnIndex(v.keyAttr)
	if !ok {
		return fmt.Errorf("owner: column split lost key attribute %q", v.keyAttr)
	}
	rows := make([]technique.Row, 0, sensRel.Len())
	for _, t := range sensRel.Tuples {
		rows = append(rows, technique.Row{
			Payload: encodePayload(flagReal, t),
			Attr:    t.Values[ki],
		})
	}
	_, err = v.cols.Outsource(rows)
	return err
}

// Query returns the full original-schema tuples matching attr = w.
func (v *VerticalOwner) Query(w relation.Value) ([]relation.Tuple, error) {
	residual, _, err := v.main.Query(w)
	if err != nil {
		return nil, err
	}
	if len(residual) == 0 {
		return nil, nil
	}

	// Fetch the sensitive columns for the whole candidate set of the bins,
	// so the column store's view has the same shape as the QB view.
	ret, ok := v.main.Bins().Retrieve(w)
	preds := []relation.Value{w}
	if ok {
		preds = append(ret.SensValues, ret.NSValues...)
	}
	payloads, _, err := v.cols.Search(preds)
	if err != nil {
		return nil, err
	}
	colsByID := make(map[int]relation.Tuple, len(payloads))
	var slab []relation.Value
	for _, p := range payloads {
		t, fake, err := decodePayloadSlab(p, &slab)
		if err != nil {
			return nil, err
		}
		if !fake {
			colsByID[t.ID] = t
		}
	}

	out := make([]relation.Tuple, 0, len(residual))
	for _, rt := range residual {
		full, err := v.assemble(rt, colsByID[rt.ID])
		if err != nil {
			return nil, err
		}
		out = append(out, full)
	}
	relation.SortByID(out)
	return out, nil
}

// assemble reconstructs an original-schema tuple from its residual and
// sensitive-column parts.
func (v *VerticalOwner) assemble(residual, cols relation.Tuple) (relation.Tuple, error) {
	vals := make([]relation.Value, v.origSchema.Arity())
	restSchema := v.main.schema
	for i, c := range v.origSchema.Columns {
		if ri, ok := restSchema.ColumnIndex(c.Name); ok {
			vals[i] = residual.Values[ri]
			continue
		}
		ci, ok := v.colsSchema.ColumnIndex(c.Name)
		if !ok || cols.Values == nil {
			return relation.Tuple{}, fmt.Errorf("owner: missing sensitive column %q for tuple %d", c.Name, residual.ID)
		}
		vals[i] = cols.Values[ci]
	}
	return relation.Tuple{ID: residual.ID, Values: vals}, nil
}
