package owner

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cloud"
	"repro/internal/relation"
	"repro/internal/technique"
)

// This file implements the concurrent batch query engine. A batch executes
// through executeViewBatch: the encrypted side of every query goes to the
// cloud as ONE technique.SearchBatch call — scan-shaped techniques share
// their column pull / table scan across the whole batch instead of
// re-doing it per query — while the plaintext bin fetches fan out over a
// bounded worker pool concurrently with it. Batch execution is
// observationally equivalent to a sequential loop over Query: the same
// result per query, and — because views are detached from execution and
// logged in input order — the same adversarial-view log.

// BatchResult is one completed query of a streaming batch.
type BatchResult struct {
	// Index is the position of the query in the submitted slice.
	Index int
	// Query is the selection value.
	Query relation.Value
	// Tuples is the merged, fake- and co-resident-filtered answer.
	Tuples []relation.Tuple
	// Stats is the cost breakdown of this query.
	Stats *QueryStats
	// Err is the per-query failure, if any.
	Err error

	// view is the detached adversarial view; QueryBatch records it with
	// the cloud in input order once the whole batch has run.
	view cloud.View
}

// normalizeWorkers clamps a worker count to [1, n] with GOMAXPROCS as the
// default for non-positive requests.
func normalizeWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runPool fans f over the indices [0, n) using the given number of worker
// goroutines and blocks until all have finished.
func runPool(n, workers int, f func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// QueryBatch executes the selections ws as one batch, sharing cloud-side
// work across them: every query's sensitive bin goes to the technique in a
// single SearchBatch call (so NoInd pulls the attribute column once per
// batch, DPF-PIR and ShamirScan scan their tables once per batch), the
// matched tuples come back in one batched fetch round trip on remote
// backends, and the plaintext bin fetches fan out over a bounded worker
// pool (workers <= 0 selects GOMAXPROCS). It returns the per-query answers
// and stats, indexed like ws; on the batched path each QueryStats.Enc is
// the query's attributable slice of the batch (its access pattern and
// result transfers), with shared work counted once at the technique level.
//
// The batch is observationally equivalent to a sequential loop over Query:
// each answer is identical, and the adversarial views are recorded with the
// cloud in input order after all queries finish, so the view log matches
// the sequential one exactly. If any query fails, the error of the
// lowest-index failure is returned and only the views of the queries
// preceding it are logged — the prefix a sequential loop stopping at the
// first error would have produced. (Queries past the failure may already
// have executed; their cloud interactions happened but are not logged,
// exactly as a crashed sequential client would leave the log.)
func (o *Owner) QueryBatch(ws []relation.Value, workers int) ([][]relation.Tuple, []*QueryStats, error) {
	n := len(ws)
	if n == 0 {
		return nil, nil, nil
	}
	out, stats, views, err := o.queryBatchShared(ws, workers)
	if err != nil {
		// A shared-path failure cannot be attributed to a single query
		// (the whole batch shares one search), so re-run per query to
		// reproduce the sequential failure semantics exactly: lowest-index
		// error, prefix of views. The shared attempt's cloud interactions
		// happened but are not logged — the same contract as a crashed
		// sequential client.
		return o.queryBatchPerQuery(ws, workers)
	}
	for _, v := range views {
		o.RecordView(v)
	}
	return out, stats, nil
}

// queryBatchShared is the batched fast path: one bins.Retrieve per query,
// then executeViewBatch under a single read lock.
func (o *Owner) queryBatchShared(ws []relation.Value, workers int) ([][]relation.Tuple, []*QueryStats, []cloud.View, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.bins == nil || o.server == nil {
		return nil, nil, nil, ErrNotOutsourced
	}
	n := len(ws)
	stats := make([]*QueryStats, n)
	matches := make([]func(relation.Value) bool, n)
	sens := make([][]relation.Value, n)
	ns := make([][]relation.Value, n)
	for i, w := range ws {
		w := w
		stats[i] = &QueryStats{}
		matches[i] = func(v relation.Value) bool { return v.Equal(w) }
		if ret, ok := o.bins.Retrieve(w); ok {
			sens[i], ns[i] = ret.SensValues, ret.NSValues
		}
		// A value absent from both partitions fetches nothing; its view
		// stays empty, exactly like sequential Query.
	}
	out, views, err := o.executeViewBatch(matches, sens, ns, stats, workers)
	if err != nil {
		return nil, nil, nil, err
	}
	return out, stats, views, nil
}

// queryBatchPerQuery is the per-query engine (one QueryDetached per
// selection over the worker pool). QueryBatch falls back to it when the
// shared path fails, because only per-query execution can attribute a
// failure to the lowest-index failing query the way a sequential loop
// would.
func (o *Owner) queryBatchPerQuery(ws []relation.Value, workers int) ([][]relation.Tuple, []*QueryStats, error) {
	n := len(ws)
	results := make([]BatchResult, n)
	runPool(n, normalizeWorkers(workers, n), func(i int) {
		ts, st, view, err := o.QueryDetached(ws[i])
		results[i] = BatchResult{Index: i, Query: ws[i], Tuples: ts, Stats: st, Err: err}
		if err == nil {
			results[i].view = view
		}
	})

	out := make([][]relation.Tuple, n)
	stats := make([]*QueryStats, n)
	for i, r := range results {
		if r.Err != nil {
			return nil, nil, r.Err
		}
		o.RecordView(r.view)
		out[i] = r.Tuples
		stats[i] = r.Stats
	}
	return out, stats, nil
}

// executeViewBatch is the batched counterpart of executeView: it runs n
// selections' sub-queries with the encrypted side going through one
// technique.SearchBatch call — sharing column pulls and table scans across
// the batch — while the plaintext side fans out over the worker pool
// concurrently with it, and returns the merged per-query results together
// with the per-query adversarial views. Must be called with o.mu held
// (read suffices); views are NOT recorded — the caller logs them in input
// order so the view log matches a sequential loop.
func (o *Owner) executeViewBatch(matches []func(relation.Value) bool, sensValues, nsValues [][]relation.Value, sts []*QueryStats, workers int) ([][]relation.Tuple, []cloud.View, error) {
	n := len(matches)
	out := make([][]relation.Tuple, n)
	views := make([]cloud.View, n)
	var encIdx, plainIdx []int
	for i := range matches {
		views[i] = cloudView(nsValues[i], len(sensValues[i]))
		if len(sensValues[i]) > 0 {
			encIdx = append(encIdx, i)
		}
		if len(nsValues[i]) > 0 {
			plainIdx = append(plainIdx, i)
		}
	}

	// The plaintext fetches do not depend on the cryptographic work, so
	// they run on the worker pool concurrently with the batched search
	// below. Unlike executeView's buffered-channel early return, the pool
	// is always drained (<-done on every path) so no goroutine outlives
	// the caller's lock.
	// Queries whose selection values fall in the same non-sensitive bin
	// issue the exact same whole-bin search (Bins.Retrieve hands out one
	// shared value slice per bin), so each distinct bin is fetched once
	// and the result shared. Identity is by slice backing: distinct bins
	// never share a first element address, and callers only read the
	// shared result. This is the plaintext counterpart of the technique
	// sharing its column pull across the batch.
	plains := make([][]relation.Tuple, n)
	reps := plainIdx[:0:0]
	share := make([]int, len(plainIdx))
	repFor := make(map[*relation.Value]int, len(plainIdx))
	for k, i := range plainIdx {
		key := &nsValues[i][0]
		ri, ok := repFor[key]
		if !ok {
			ri = len(reps)
			reps = append(reps, i)
			repFor[key] = ri
		}
		share[k] = ri
	}
	plainShared := make([][]relation.Tuple, len(reps))
	done := make(chan struct{})
	srv := o.server
	go func() {
		defer close(done)
		if len(reps) == 0 {
			return
		}
		runPool(len(reps), normalizeWorkers(workers, len(reps)), func(k int) {
			plainShared[k] = srv.SearchPlain(nsValues[reps[k]])
		})
	}()

	var payloadBatches [][][]byte
	var encSt *technique.Stats
	if len(encIdx) > 0 {
		queries := make([][]relation.Value, len(encIdx))
		for k, i := range encIdx {
			queries[k] = sensValues[i]
		}
		var err error
		payloadBatches, encSt, err = o.tech.SearchBatch(queries)
		if err != nil {
			<-done
			return nil, nil, err
		}
		if len(payloadBatches) != len(encIdx) || encSt == nil || len(encSt.PerQuery) != len(encIdx) {
			<-done
			return nil, nil, fmt.Errorf("owner: SearchBatch returned %d payload sets and malformed stats for %d queries",
				len(payloadBatches), len(encIdx))
		}
	}
	<-done
	for k, i := range plainIdx {
		plains[i] = plainShared[share[k]]
	}

	for k, i := range encIdx {
		per := encSt.PerQuery[k]
		if per == nil {
			per = &technique.Stats{}
		}
		sts[i].Enc = *per
		views[i].EncResultAddrs = per.ReturnedAddrs
		var err error
		out[i], err = o.mergeEnc(payloadBatches[k], matches[i], sts[i], out[i])
		if err != nil {
			return nil, nil, err
		}
	}
	for _, i := range plainIdx {
		views[i].PlainResults = plains[i]
		out[i] = o.mergePlain(plains[i], matches[i], sts[i], out[i])
	}
	for i := range out {
		relation.SortByID(out[i])
		sts[i].Result = len(out[i])
	}
	return out, views, nil
}

// QueryAsync streams the batch: it launches the same worker pool as
// QueryBatch and delivers each BatchResult as soon as its query completes,
// closing the channel when the whole batch is done. Views are recorded at
// completion time, so the log order follows delivery order rather than
// input order — the multiset of views still equals the sequential one.
// Per-query failures are delivered as BatchResult.Err; the stream keeps
// going so independent queries still complete.
//
// The caller must drain the channel until it closes: abandoning it
// mid-stream blocks the workers forever once the buffer fills.
func (o *Owner) QueryAsync(ws []relation.Value, workers int) <-chan BatchResult {
	out := make(chan BatchResult, normalizeWorkers(workers, max(len(ws), 1)))
	go func() {
		defer close(out)
		if len(ws) == 0 {
			return
		}
		runPool(len(ws), normalizeWorkers(workers, len(ws)), func(i int) {
			ts, st, view, err := o.QueryDetached(ws[i])
			if err == nil {
				o.RecordView(view)
			}
			out <- BatchResult{Index: i, Query: ws[i], Tuples: ts, Stats: st, Err: err}
		})
	}()
	return out
}
