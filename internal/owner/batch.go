package owner

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/cloud"
	"repro/internal/relation"
)

// This file implements the concurrent batch query engine: many selections
// executed through a bounded worker pool, parallel both across queries and
// (via executeView's fan-out) across each query's sensitive/non-sensitive
// bin retrievals. Batch execution is observationally equivalent to a
// sequential loop over Query: the same result per query, and — because
// views are detached from execution and logged in input order — the same
// adversarial-view log.

// BatchResult is one completed query of a streaming batch.
type BatchResult struct {
	// Index is the position of the query in the submitted slice.
	Index int
	// Query is the selection value.
	Query relation.Value
	// Tuples is the merged, fake- and co-resident-filtered answer.
	Tuples []relation.Tuple
	// Stats is the cost breakdown of this query.
	Stats *QueryStats
	// Err is the per-query failure, if any.
	Err error

	// view is the detached adversarial view; QueryBatch records it with
	// the cloud in input order once the whole batch has run.
	view cloud.View
}

// normalizeWorkers clamps a worker count to [1, n] with GOMAXPROCS as the
// default for non-positive requests.
func normalizeWorkers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runPool fans f over the indices [0, n) using the given number of worker
// goroutines and blocks until all have finished.
func runPool(n, workers int, f func(i int)) {
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				f(i)
			}
		}()
	}
	wg.Wait()
}

// QueryBatch executes the selections ws concurrently through a bounded
// worker pool (workers <= 0 selects GOMAXPROCS) and returns the per-query
// answers and stats, indexed like ws.
//
// The batch is observationally equivalent to a sequential loop over Query:
// each answer is identical, and the adversarial views are recorded with the
// cloud in input order after all queries finish, so the view log matches
// the sequential one exactly. If any query fails, the error of the
// lowest-index failure is returned and only the views of the queries
// preceding it are logged — the prefix a sequential loop stopping at the
// first error would have produced. (Queries past the failure may already
// have executed; their cloud interactions happened but are not logged,
// exactly as a crashed sequential client would leave the log.)
func (o *Owner) QueryBatch(ws []relation.Value, workers int) ([][]relation.Tuple, []*QueryStats, error) {
	n := len(ws)
	if n == 0 {
		return nil, nil, nil
	}
	results := make([]BatchResult, n)
	runPool(n, normalizeWorkers(workers, n), func(i int) {
		ts, st, view, err := o.QueryDetached(ws[i])
		results[i] = BatchResult{Index: i, Query: ws[i], Tuples: ts, Stats: st, Err: err}
		if err == nil {
			results[i].view = view
		}
	})

	out := make([][]relation.Tuple, n)
	stats := make([]*QueryStats, n)
	for i, r := range results {
		if r.Err != nil {
			return nil, nil, r.Err
		}
		o.RecordView(r.view)
		out[i] = r.Tuples
		stats[i] = r.Stats
	}
	return out, stats, nil
}

// QueryAsync streams the batch: it launches the same worker pool as
// QueryBatch and delivers each BatchResult as soon as its query completes,
// closing the channel when the whole batch is done. Views are recorded at
// completion time, so the log order follows delivery order rather than
// input order — the multiset of views still equals the sequential one.
// Per-query failures are delivered as BatchResult.Err; the stream keeps
// going so independent queries still complete.
//
// The caller must drain the channel until it closes: abandoning it
// mid-stream blocks the workers forever once the buffer fills.
func (o *Owner) QueryAsync(ws []relation.Value, workers int) <-chan BatchResult {
	out := make(chan BatchResult, normalizeWorkers(workers, max(len(ws), 1)))
	go func() {
		defer close(out)
		if len(ws) == 0 {
			return
		}
		runPool(len(ws), normalizeWorkers(workers, len(ws)), func(i int) {
			ts, st, view, err := o.QueryDetached(ws[i])
			if err == nil {
				o.RecordView(view)
			}
			out <- BatchResult{Index: i, Query: ws[i], Tuples: ts, Stats: st, Err: err}
		})
	}()
	return out
}
