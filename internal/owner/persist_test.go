package owner

import (
	"bytes"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/wire"
	"repro/internal/workload"
)

// TestOwnerRestartOverRemoteCloud is the full persistence story: outsource
// to a remote cloud, save the owner metadata, simulate an owner restart
// (fresh Owner with the same keys), load the metadata, and query without
// re-uploading anything.
func TestOwnerRestartOverRemoteCloud(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() { _ = wire.NewCloud().Serve(lis) }()

	ks := crypto.DeriveKeys([]byte("restart"))
	dial := func() *wire.Client {
		c, err := wire.Dial(lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}

	// Session 1: outsource and save.
	conn1 := dial()
	tech1, err := technique.NewNoIndOn(ks, conn1)
	if err != nil {
		t.Fatal(err)
	}
	o1 := New(tech1, "EId")
	o1.SetCloudBackend(conn1)
	emp := workload.Employee()
	if err := o1.Outsource(emp.Clone(), workload.EmployeeSensitive, seededOpts(66)); err != nil {
		t.Fatal(err)
	}
	if err := conn1.Flush(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := o1.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}

	// Session 2: a brand-new owner process resumes from the metadata.
	conn2 := dial()
	tech2, err := technique.NewNoIndOn(ks, conn2)
	if err != nil {
		t.Fatal(err)
	}
	o2 := New(tech2, "EId")
	if err := o2.LoadMetadata(bytes.NewReader(buf.Bytes()), conn2); err != nil {
		t.Fatal(err)
	}
	for _, eid := range []string{"E101", "E259", "E199", "E152"} {
		got, _, err := o2.Query(relation.Str(eid))
		if err != nil {
			t.Fatalf("restarted Query(%s): %v", eid, err)
		}
		want, _ := emp.Select("EId", relation.Str(eid))
		if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
			t.Errorf("restarted Query(%s) = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
		}
	}
	// Inserts keep working after restart.
	nt := relation.Tuple{ID: 300, Values: []relation.Value{
		relation.Str("E321"), relation.Str("New"), relation.Str("Hire"),
		relation.Int(321), relation.Int(2), relation.Str("Design"),
	}}
	if err := o2.Insert(nt, false); err != nil {
		t.Fatal(err)
	}
	got, _, err := o2.Query(relation.Str("E321"))
	if err != nil || len(got) != 1 {
		t.Fatalf("post-restart insert: %v, %v", got, err)
	}
}

func TestSaveMetadataBeforeOutsource(t *testing.T) {
	o := New(newNoInd(t), "EId")
	var buf bytes.Buffer
	if err := o.SaveMetadata(&buf); err != ErrNotOutsourced {
		t.Fatalf("err = %v", err)
	}
}

func TestLoadMetadataAttrMismatch(t *testing.T) {
	o1, _ := employeeOwner(t)
	var buf bytes.Buffer
	if err := o1.SaveMetadata(&buf); err != nil {
		t.Fatal(err)
	}
	o2 := New(newNoInd(t), "LastName")
	if err := o2.LoadMetadata(&buf, nil); err == nil || !strings.Contains(err.Error(), "attribute") {
		t.Fatalf("err = %v, want attribute mismatch", err)
	}
}

func TestLoadMetadataGarbage(t *testing.T) {
	o := New(newNoInd(t), "EId")
	if err := o.LoadMetadata(strings.NewReader("junk"), nil); err == nil {
		t.Fatal("garbage metadata accepted")
	}
}
