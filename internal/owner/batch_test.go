package owner

import (
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/storage"
	"repro/internal/technique"
	"repro/internal/workload"
)

// valueFaultTechnique fails any Search whose predicate set contains the
// target value — a per-query failure injector for batch error semantics
// (the whole-call injectors live in failure_test.go). The target is set
// after Outsource, once the binning reveals which values are sensitive.
type valueFaultTechnique struct {
	technique.Technique
	target relation.Value
	armed  bool
}

func (f *valueFaultTechnique) Search(values []relation.Value) ([][]byte, *technique.Stats, error) {
	if f.armed {
		for _, v := range values {
			if v.Equal(f.target) {
				return nil, nil, errInjected
			}
		}
	}
	return f.Technique.Search(values)
}

// SearchBatch mirrors the injection on the batched path (otherwise the
// embedded technique's batch implementation would dodge the fault): a
// batch containing the target anywhere fails as a whole, which forces the
// owner onto its per-query fallback and its sequential failure semantics.
func (f *valueFaultTechnique) SearchBatch(queries [][]relation.Value) ([][][]byte, *technique.Stats, error) {
	if f.armed {
		for _, q := range queries {
			for _, v := range q {
				if v.Equal(f.target) {
					return nil, nil, errInjected
				}
			}
		}
	}
	return f.Technique.SearchBatch(queries)
}

// sensitiveValue returns the first dataset value binned as sensitive.
func sensitiveValue(t *testing.T, o *Owner, ds *workload.Dataset) relation.Value {
	t.Helper()
	for _, v := range ds.Values {
		if o.Bins().ContainsSensitive(v) {
			return v
		}
	}
	t.Fatal("dataset has no sensitive values")
	return relation.Value{}
}

func batchOwner(t *testing.T, tech technique.Technique, seed uint64) (*Owner, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 120, DistinctValues: 12, Alpha: 0.5, Seed: int64(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(tech, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(seed)); err != nil {
		t.Fatal(err)
	}
	return o, ds
}

// TestQueryBatchFailingTechnique: a batch whose technique fails on the bin
// holding a target value returns the error of the lowest-index failing
// query and records exactly the views a sequential loop stopping at that
// query would have recorded.
func TestQueryBatchFailingTechnique(t *testing.T) {
	// Twin owners with identical seeds so bins and views line up. The
	// fault arms on the first value binned as sensitive: querying it sends
	// its sensitive bin to the technique, which then fails.
	mk := func() (*Owner, []relation.Value) {
		ds, err := workload.Generate(workload.GenSpec{
			Tuples: 120, DistinctValues: 12, Alpha: 0.5, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		ft := &valueFaultTechnique{Technique: newNoInd(t)}
		o := New(ft, workload.Attr)
		if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(32)); err != nil {
			t.Fatal(err)
		}
		ft.target = sensitiveValue(t, o, ds)
		ft.armed = true
		ws := append(workload.QueryStream(ds, workload.QuerySpec{Queries: 10, Seed: 33}), ft.target)
		return o, ws
	}

	seqOwner, ws := mk()
	var seqErr error
	seqRecorded := 0
	for _, w := range ws {
		if _, _, err := seqOwner.Query(w); err != nil {
			seqErr = err
			break
		}
		seqRecorded++
	}
	if !errors.Is(seqErr, errInjected) {
		t.Fatalf("sequential run did not hit the injected failure: %v", seqErr)
	}

	batchO, _ := mk()
	_, _, batchErr := batchO.QueryBatch(ws, 4)
	if !errors.Is(batchErr, errInjected) {
		t.Fatalf("batch err = %v, want injected", batchErr)
	}
	if got := batchO.Server().ViewCount(); got != seqRecorded {
		t.Fatalf("batch recorded %d views before the failure, sequential recorded %d", got, seqRecorded)
	}
}

// TestQueryAsyncDeliversPerQueryErrors: the stream keeps going past a
// failing query and reports the failure in-band.
func TestQueryAsyncDeliversPerQueryErrors(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 120, DistinctValues: 12, Alpha: 0.5, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft := &valueFaultTechnique{Technique: newNoInd(t)}
	o := New(ft, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(42)); err != nil {
		t.Fatal(err)
	}
	ft.target = sensitiveValue(t, o, ds)
	ft.armed = true

	ws := append(workload.QueryStream(ds, workload.QuerySpec{Queries: 6, Seed: 43}), ft.target)
	delivered, failures := 0, 0
	for res := range o.QueryAsync(ws, 3) {
		delivered++
		if res.Err != nil {
			failures++
		}
	}
	if delivered != len(ws) {
		t.Fatalf("stream delivered %d results, want %d", delivered, len(ws))
	}
	if failures == 0 {
		t.Fatal("no per-query failure delivered")
	}
}

// countingStore wraps the encrypted store and counts cloud read
// operations — the end-to-end evidence that the batched query path shares
// its work: one column pull and one fetch round trip per batch, however
// many queries it carries.
type countingStore struct {
	*storage.EncryptedStore
	attrPulls   atomic.Int64
	fetches     atomic.Int64 // single-query Fetch round trips
	batchRounds atomic.Int64 // batched fetch round trips
}

func (c *countingStore) AttrColumn() []storage.EncRow {
	c.attrPulls.Add(1)
	return c.EncryptedStore.AttrColumn()
}

func (c *countingStore) Fetch(addrs []int) ([]storage.EncRow, error) {
	c.fetches.Add(1)
	return c.EncryptedStore.Fetch(addrs)
}

func (c *countingStore) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	c.batchRounds.Add(1)
	return c.EncryptedStore.FetchBatch(addrBatches)
}

// TestQueryBatchSharesColumnPull: a QueryBatch of q selections over NoInd
// pulls the encrypted attribute column from the store exactly once and
// fetches all matches in one batched round trip, where the sequential loop
// pays one pull and one fetch per query.
func TestQueryBatchSharesColumnPull(t *testing.T) {
	cs := &countingStore{EncryptedStore: storage.NewEncryptedStore()}
	tech, err := technique.NewNoIndOn(crypto.DeriveKeys([]byte("count")), cs)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 120, DistinctValues: 12, Alpha: 0.5, Seed: 61,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(tech, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(62)); err != nil {
		t.Fatal(err)
	}
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: 8, Seed: 63})

	cs.attrPulls.Store(0)
	cs.fetches.Store(0)
	cs.batchRounds.Store(0)
	if _, _, err := o.QueryBatch(ws, 4); err != nil {
		t.Fatal(err)
	}
	if got := cs.attrPulls.Load(); got != 1 {
		t.Errorf("batch of %d pulled the attribute column %d times, want 1", len(ws), got)
	}
	if got := cs.batchRounds.Load(); got != 1 {
		t.Errorf("batch of %d used %d batched fetch round trips, want 1", len(ws), got)
	}
	if got := cs.fetches.Load(); got != 0 {
		t.Errorf("batch of %d fell back to %d per-query fetches, want 0", len(ws), got)
	}

	cs.attrPulls.Store(0)
	for _, w := range ws {
		if _, _, err := o.Query(w); err != nil {
			t.Fatal(err)
		}
	}
	if got := cs.attrPulls.Load(); got != int64(len(ws)) {
		t.Errorf("sequential loop pulled the column %d times, want %d (one per query)", got, len(ws))
	}
}

// TestQueryBatchPerQueryStats: on the batched path every query still gets
// its own stats — result counts match and the per-query Enc slice carries
// the query's access pattern.
func TestQueryBatchPerQueryStats(t *testing.T) {
	o, ds := batchOwner(t, newNoInd(t), 71)
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: 6, Seed: 72})
	out, stats, err := o.QueryBatch(ws, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ws {
		if stats[i] == nil {
			t.Fatalf("stats[%d] is nil", i)
		}
		if stats[i].Result != len(out[i]) {
			t.Errorf("stats[%d].Result = %d, want %d", i, stats[i].Result, len(out[i]))
		}
		// Every sensitive-side retrieval is volume-padded, so a query that
		// touched the encrypted store must report its access pattern.
		if ret, ok := o.Bins().Retrieve(ws[i]); ok && len(ret.SensValues) > 0 &&
			len(stats[i].Enc.ReturnedAddrs) == 0 {
			t.Errorf("stats[%d].Enc has no returned addresses for a sensitive retrieval", i)
		}
	}
}

// TestQueryBatchWorkerNormalization: degenerate worker counts behave like
// sensible ones.
func TestQueryBatchWorkerNormalization(t *testing.T) {
	o, ds := batchOwner(t, newNoInd(t), 51)
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: 5, Seed: 52})
	var prev [][]relation.Tuple
	for _, workers := range []int{-3, 0, 1, 64} {
		out, stats, err := o.QueryBatch(ws, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(ws) || len(stats) != len(ws) {
			t.Fatalf("workers=%d: %d results / %d stats", workers, len(out), len(stats))
		}
		if prev != nil {
			for i := range out {
				if !reflect.DeepEqual(relation.IDs(out[i]), relation.IDs(prev[i])) {
					t.Fatalf("workers=%d: query %d differs from previous worker count", workers, i)
				}
			}
		}
		prev = out
	}
}
