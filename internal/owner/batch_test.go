package owner

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

// valueFaultTechnique fails any Search whose predicate set contains the
// target value — a per-query failure injector for batch error semantics
// (the whole-call injectors live in failure_test.go). The target is set
// after Outsource, once the binning reveals which values are sensitive.
type valueFaultTechnique struct {
	technique.Technique
	target relation.Value
	armed  bool
}

func (f *valueFaultTechnique) Search(values []relation.Value) ([][]byte, *technique.Stats, error) {
	if f.armed {
		for _, v := range values {
			if v.Equal(f.target) {
				return nil, nil, errInjected
			}
		}
	}
	return f.Technique.Search(values)
}

// sensitiveValue returns the first dataset value binned as sensitive.
func sensitiveValue(t *testing.T, o *Owner, ds *workload.Dataset) relation.Value {
	t.Helper()
	for _, v := range ds.Values {
		if o.Bins().ContainsSensitive(v) {
			return v
		}
	}
	t.Fatal("dataset has no sensitive values")
	return relation.Value{}
}

func batchOwner(t *testing.T, tech technique.Technique, seed uint64) (*Owner, *workload.Dataset) {
	t.Helper()
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 120, DistinctValues: 12, Alpha: 0.5, Seed: int64(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(tech, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(seed)); err != nil {
		t.Fatal(err)
	}
	return o, ds
}

// TestQueryBatchFailingTechnique: a batch whose technique fails on the bin
// holding a target value returns the error of the lowest-index failing
// query and records exactly the views a sequential loop stopping at that
// query would have recorded.
func TestQueryBatchFailingTechnique(t *testing.T) {
	// Twin owners with identical seeds so bins and views line up. The
	// fault arms on the first value binned as sensitive: querying it sends
	// its sensitive bin to the technique, which then fails.
	mk := func() (*Owner, []relation.Value) {
		ds, err := workload.Generate(workload.GenSpec{
			Tuples: 120, DistinctValues: 12, Alpha: 0.5, Seed: 31,
		})
		if err != nil {
			t.Fatal(err)
		}
		ft := &valueFaultTechnique{Technique: newNoInd(t)}
		o := New(ft, workload.Attr)
		if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(32)); err != nil {
			t.Fatal(err)
		}
		ft.target = sensitiveValue(t, o, ds)
		ft.armed = true
		ws := append(workload.QueryStream(ds, workload.QuerySpec{Queries: 10, Seed: 33}), ft.target)
		return o, ws
	}

	seqOwner, ws := mk()
	var seqErr error
	seqRecorded := 0
	for _, w := range ws {
		if _, _, err := seqOwner.Query(w); err != nil {
			seqErr = err
			break
		}
		seqRecorded++
	}
	if !errors.Is(seqErr, errInjected) {
		t.Fatalf("sequential run did not hit the injected failure: %v", seqErr)
	}

	batchO, _ := mk()
	_, _, batchErr := batchO.QueryBatch(ws, 4)
	if !errors.Is(batchErr, errInjected) {
		t.Fatalf("batch err = %v, want injected", batchErr)
	}
	if got := batchO.Server().ViewCount(); got != seqRecorded {
		t.Fatalf("batch recorded %d views before the failure, sequential recorded %d", got, seqRecorded)
	}
}

// TestQueryAsyncDeliversPerQueryErrors: the stream keeps going past a
// failing query and reports the failure in-band.
func TestQueryAsyncDeliversPerQueryErrors(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 120, DistinctValues: 12, Alpha: 0.5, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	ft := &valueFaultTechnique{Technique: newNoInd(t)}
	o := New(ft, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(42)); err != nil {
		t.Fatal(err)
	}
	ft.target = sensitiveValue(t, o, ds)
	ft.armed = true

	ws := append(workload.QueryStream(ds, workload.QuerySpec{Queries: 6, Seed: 43}), ft.target)
	delivered, failures := 0, 0
	for res := range o.QueryAsync(ws, 3) {
		delivered++
		if res.Err != nil {
			failures++
		}
	}
	if delivered != len(ws) {
		t.Fatalf("stream delivered %d results, want %d", delivered, len(ws))
	}
	if failures == 0 {
		t.Fatal("no per-query failure delivered")
	}
}

// TestQueryBatchWorkerNormalization: degenerate worker counts behave like
// sensible ones.
func TestQueryBatchWorkerNormalization(t *testing.T) {
	o, ds := batchOwner(t, newNoInd(t), 51)
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: 5, Seed: 52})
	var prev [][]relation.Tuple
	for _, workers := range []int{-3, 0, 1, 64} {
		out, stats, err := o.QueryBatch(ws, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != len(ws) || len(stats) != len(ws) {
			t.Fatalf("workers=%d: %d results / %d stats", workers, len(out), len(stats))
		}
		if prev != nil {
			for i := range out {
				if !reflect.DeepEqual(relation.IDs(out[i]), relation.IDs(prev[i])) {
					t.Fatalf("workers=%d: query %d differs from previous worker count", workers, i)
				}
			}
		}
		prev = out
	}
}
