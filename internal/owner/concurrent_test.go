package owner

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/relation"
	"repro/internal/workload"
)

// TestConcurrentQueries hammers one owner from many goroutines; run with
// -race to validate the serialisation (exported owner methods are
// documented as safe for concurrent use).
func TestConcurrentQueries(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 400, DistinctValues: 40, Alpha: 0.4, Seed: 21,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(newNoInd(t), workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(22)); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				v := ds.Values[(g*8+i)%len(ds.Values)]
				got, _, err := o.Query(v)
				if err != nil {
					errs <- err
					return
				}
				want := groundTruth(t, ds.Relation, workload.Attr, v)
				if !reflect.DeepEqual(relation.IDs(got), want) {
					errs <- &mismatchError{v: v}
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

type mismatchError struct{ v relation.Value }

func (e *mismatchError) Error() string { return "concurrent query mismatch for " + e.v.String() }

// TestConcurrentMixedOps interleaves queries, range queries, and inserts.
func TestConcurrentMixedOps(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 200, DistinctValues: 20, Alpha: 0.5, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(newNoInd(t), workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(24)); err != nil {
		t.Fatal(err)
	}
	schema := ds.Relation.Schema

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				switch (g + i) % 3 {
				case 0:
					if _, _, err := o.Query(ds.Values[i%len(ds.Values)]); err != nil {
						errs <- err
					}
				case 1:
					if _, _, err := o.QueryRange(relation.Int(2), relation.Int(8)); err != nil {
						errs <- err
					}
				case 2:
					vals := make([]relation.Value, schema.Arity())
					for j := range vals {
						vals[j] = relation.Int(0)
					}
					vals[0] = relation.Int(int64(i % 10))
					if err := o.Insert(relation.Tuple{ID: 10000 + g*100 + i, Values: vals}, g%2 == 0); err != nil {
						errs <- err
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
