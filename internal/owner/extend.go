package owner

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/technique"
)

// This file implements the extensions the conference paper defers to the
// full version: inserts, range selections, and an owner-side equi-join of
// two QB-partitioned relations.

// Insert adds a new tuple to the outsourced relation. Non-sensitive tuples
// go to the plaintext store; sensitive tuples are encrypted and uploaded.
// If the searchable value is new, the bins are recreated (metadata only —
// the cloud stores are value-agnostic); in all cases the fake-tuple ledger
// is rebalanced so every sensitive bin keeps an identical padded volume.
func (o *Owner) Insert(t relation.Tuple, sensitive bool) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.bins == nil || o.server == nil {
		return ErrNotOutsourced
	}
	if err := o.schema.Check(t.Values); err != nil {
		return err
	}
	v := t.Values[o.attrIdx]
	if sensitive {
		if _, err := o.tech.Outsource([]technique.Row{{
			Payload: encodePayload(flagReal, t),
			Attr:    v,
		}}); err != nil {
			return err
		}
		o.bumpCount(o.sensCounts, v)
	} else {
		if err := o.server.InsertPlain(t); err != nil {
			return err
		}
		o.bumpCount(o.nsCounts, v)
	}

	newValue := sensitive && !o.bins.ContainsSensitive(v) ||
		!sensitive && !o.bins.ContainsNonSensitive(v)
	if newValue {
		bins, err := core.CreateBins(countsSlice(o.sensCounts), countsSlice(o.nsCounts), o.binOpts)
		if err != nil {
			return fmt.Errorf("owner: re-binning after insert: %w", err)
		}
		o.bins = bins
	}
	return o.rebalanceFakes()
}

// rebalanceFakes tops sensitive bins up with fake tuples so that, counting
// both real tuples and the fakes already outsourced, every bin answers with
// the same volume. Fakes are append-only: the cloud never observes a
// deletion.
func (o *Owner) rebalanceFakes() error {
	if len(o.bins.Sensitive) == 0 {
		return nil
	}
	vols := make([]int, len(o.bins.Sensitive))
	maxVol := 0
	for i, bin := range o.bins.Sensitive {
		for _, vc := range bin {
			vols[i] += vc.Count + o.fakeCounts[vc.Value.Key()]
		}
		if vols[i] > maxVol {
			maxVol = vols[i]
		}
	}
	var rows []technique.Row
	for i, bin := range o.bins.Sensitive {
		if len(bin) == 0 {
			continue
		}
		for f := 0; f < maxVol-vols[i]; f++ {
			v := bin[f%len(bin)].Value
			rows = append(rows, technique.Row{
				Payload: encodePayload(flagFake, o.fakeTuple(v)),
				Attr:    v,
			})
			o.fakeCounts[v.Key()]++
		}
	}
	if len(rows) == 0 {
		return nil
	}
	_, err := o.tech.Outsource(rows)
	return err
}

// QueryRange answers SELECT * WHERE lo <= attr <= hi. The owner's metadata
// lists every live value, so the range is rewritten into the set of bins
// covering the in-range values; both sides are fetched bin-wise (preserving
// the QB adversarial view shape) and filtered locally.
func (o *Owner) QueryRange(lo, hi relation.Value) ([]relation.Tuple, *QueryStats, error) {
	o.mu.RLock()
	if o.bins == nil || o.server == nil {
		o.mu.RUnlock()
		return nil, nil, ErrNotOutsourced
	}
	if hi.Less(lo) {
		lo, hi = hi, lo
	}
	st := &QueryStats{}

	sensBins := make(map[int]bool)
	nsBins := make(map[int]bool)
	inRange := func(v relation.Value) bool {
		return v.Compare(lo) >= 0 && v.Compare(hi) <= 0
	}
	for _, bin := range o.bins.Sensitive {
		for _, vc := range bin {
			if inRange(vc.Value) {
				if ret, ok := o.bins.Retrieve(vc.Value); ok {
					if ret.SensBin >= 0 {
						sensBins[ret.SensBin] = true
					}
					if ret.NSBin >= 0 {
						nsBins[ret.NSBin] = true
					}
				}
			}
		}
	}
	for _, bin := range o.bins.NonSensitive {
		for _, vc := range bin {
			if inRange(vc.Value) {
				if ret, ok := o.bins.Retrieve(vc.Value); ok {
					if ret.SensBin >= 0 {
						sensBins[ret.SensBin] = true
					}
					if ret.NSBin >= 0 {
						nsBins[ret.NSBin] = true
					}
				}
			}
		}
	}

	var sensValues, nsValues []relation.Value
	for i := range o.bins.Sensitive {
		if sensBins[i] {
			for _, vc := range o.bins.Sensitive[i] {
				sensValues = append(sensValues, vc.Value)
			}
		}
	}
	for i := range o.bins.NonSensitive {
		if nsBins[i] {
			for _, vc := range o.bins.NonSensitive[i] {
				nsValues = append(nsValues, vc.Value)
			}
		}
	}

	out, view, err := o.executeView(inRange, sensValues, nsValues, st)
	o.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	o.RecordView(view)
	return out, st, nil
}

// executeView runs the two sub-queries for a selection with an arbitrary
// match predicate on the searchable attribute, fanning the encrypted and
// plaintext retrievals out in parallel (they are independent bin fetches),
// and returns the merged result together with the adversarial view of the
// execution. Must be called with o.mu held (read suffices); the view is
// NOT recorded — callers hand it to RecordView so batch engines can
// control the log order.
func (o *Owner) executeView(match func(relation.Value) bool, sensValues, nsValues []relation.Value, st *QueryStats) ([]relation.Tuple, cloud.View, error) {
	var out []relation.Tuple
	view := cloudView(nsValues, len(sensValues))

	// The plaintext fetch does not depend on the cryptographic work, so it
	// runs concurrently with the encrypted-side search below. The channel
	// is buffered: an encrypted-side error can return early without
	// leaking the goroutine. The server pointer is captured here because
	// on that early return the goroutine may outlive the caller's lock —
	// it must not re-read the field a concurrent Outsource could swap.
	var plainCh chan []relation.Tuple
	if len(nsValues) > 0 {
		plainCh = make(chan []relation.Tuple, 1)
		srv := o.server
		go func() { plainCh <- srv.SearchPlain(nsValues) }()
	}

	if len(sensValues) > 0 {
		payloads, encSt, err := o.tech.Search(sensValues)
		if err != nil {
			return nil, cloud.View{}, err
		}
		st.Enc = *encSt
		view.EncResultAddrs = encSt.ReturnedAddrs
		out, err = o.mergeEnc(payloads, match, st, out)
		if err != nil {
			return nil, cloud.View{}, err
		}
	}
	if plainCh != nil {
		plain := <-plainCh
		view.PlainResults = plain
		out = o.mergePlain(plain, match, st, out)
	}
	relation.SortByID(out)
	st.Result = len(out)
	return out, view, nil
}

// mergeEnc is the encrypted half of q_merge for one query: it decodes the
// technique's payloads, discards fakes and bin co-residents, and appends
// the matches to out. Shared by the sequential and batched paths so their
// merge semantics cannot diverge.
func (o *Owner) mergeEnc(payloads [][]byte, match func(relation.Value) bool, st *QueryStats, out []relation.Tuple) ([]relation.Tuple, error) {
	var slab []relation.Value
	for _, p := range payloads {
		t, fake, err := decodePayloadSlab(p, &slab)
		if err != nil {
			return nil, err
		}
		if fake {
			st.FakeDiscarded++
			continue
		}
		if match(t.Values[o.attrIdx]) {
			out = append(out, t)
		} else {
			st.BinDiscarded++
		}
	}
	return out, nil
}

// mergePlain is the clear-text half of q_merge for one query: it filters
// the non-sensitive bin's tuples down to the actual matches. Shared by the
// sequential and batched paths.
func (o *Owner) mergePlain(plain []relation.Tuple, match func(relation.Value) bool, st *QueryStats, out []relation.Tuple) []relation.Tuple {
	st.PlainTuples = len(plain)
	for _, t := range plain {
		if match(t.Values[o.attrIdx]) {
			out = append(out, t)
		} else {
			st.BinDiscarded++
		}
	}
	return out
}

// AggOp is an aggregation operator for QueryAggregate.
type AggOp int

const (
	// AggCount counts matching tuples.
	AggCount AggOp = iota
	// AggSum sums an integer column over the matches.
	AggSum
	// AggMin and AggMax take extrema of an integer column.
	AggMin
	AggMax
)

// QueryAggregate evaluates a group-by-style aggregate over the selection
// attr = w (the paper notes QB "can also be extended to support group-by
// aggregation queries"): the bins are retrieved exactly as for a selection
// — so the adversarial view is unchanged — and the aggregate is computed
// owner-side over the filtered matches.
func (o *Owner) QueryAggregate(w relation.Value, col string, op AggOp) (int64, error) {
	// Column resolution and query execution happen under one read lock so
	// the column index can never go stale against the tuples a concurrent
	// re-Outsource with a different schema would return.
	o.mu.RLock()
	if o.bins == nil || o.server == nil {
		o.mu.RUnlock()
		return 0, ErrNotOutsourced
	}
	ci, ok := o.schema.ColumnIndex(col)
	if !ok {
		o.mu.RUnlock()
		return 0, fmt.Errorf("owner: no column %q", col)
	}
	if op != AggCount && o.schema.Columns[ci].Kind != relation.KindInt {
		o.mu.RUnlock()
		return 0, fmt.Errorf("owner: column %q is not integer-valued", col)
	}
	var (
		tuples []relation.Tuple
		view   cloud.View
		err    error
	)
	if ret, hit := o.bins.Retrieve(w); hit {
		eq := func(v relation.Value) bool { return v.Equal(w) }
		tuples, view, err = o.executeView(eq, ret.SensValues, ret.NSValues, &QueryStats{})
	}
	o.mu.RUnlock()
	if err != nil {
		return 0, err
	}
	o.RecordView(view)
	switch op {
	case AggCount:
		return int64(len(tuples)), nil
	case AggSum:
		var sum int64
		for _, t := range tuples {
			sum += t.Values[ci].Int()
		}
		return sum, nil
	case AggMin, AggMax:
		if len(tuples) == 0 {
			return 0, fmt.Errorf("owner: aggregate over empty selection")
		}
		best := tuples[0].Values[ci].Int()
		for _, t := range tuples[1:] {
			v := t.Values[ci].Int()
			if (op == AggMin && v < best) || (op == AggMax && v > best) {
				best = v
			}
		}
		return best, nil
	default:
		return 0, fmt.Errorf("owner: unknown aggregate op %d", op)
	}
}

// JoinPair is one result row of an owner-side equi-join: the two matching
// tuples.
type JoinPair struct {
	Left  relation.Tuple
	Right relation.Tuple
}

// Join computes the equi-join of this relation with other on their
// searchable attributes, entirely through QB retrievals: every join value
// known to either owner is queried through its bins on both relations and
// the matches are paired owner-side. The adversarial views remain
// bin-shaped on both relations, so the join leaks no more than the
// constituent selections.
func (o *Owner) Join(other *Owner) ([]JoinPair, error) {
	// Join candidates: values present in both relations' metadata. Each
	// side is snapshotted under its own read lock, released before the
	// queries run (Query re-acquires it).
	values := make(map[string]relation.Value)
	side := func(ow *Owner) (map[string]bool, bool) {
		ow.mu.RLock()
		defer ow.mu.RUnlock()
		if ow.bins == nil {
			return nil, false
		}
		s := make(map[string]bool, len(ow.sensCounts)+len(ow.nsCounts))
		for k, vc := range ow.sensCounts {
			s[k] = true
			values[k] = vc.Value
		}
		for k, vc := range ow.nsCounts {
			s[k] = true
			values[k] = vc.Value
		}
		return s, true
	}
	l1, ok := side(o)
	if !ok {
		return nil, ErrNotOutsourced
	}
	r1, ok := side(other)
	if !ok {
		return nil, ErrNotOutsourced
	}

	var out []JoinPair
	for k, v := range values {
		if !l1[k] || !r1[k] {
			continue
		}
		left, _, err := o.Query(v)
		if err != nil {
			return nil, err
		}
		right, _, err := other.Query(v)
		if err != nil {
			return nil, err
		}
		for _, lt := range left {
			for _, rt := range right {
				out = append(out, JoinPair{Left: lt, Right: rt})
			}
		}
	}
	return out, nil
}
