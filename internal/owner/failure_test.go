package owner

import (
	"errors"
	"testing"

	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

// faultyTechnique wraps a real technique and injects failures — exercising
// the owner's error propagation paths.
type faultyTechnique struct {
	technique.Technique
	failOutsource bool
	failSearch    bool
	garblePayload bool
}

var errInjected = errors.New("injected failure")

func (f *faultyTechnique) Outsource(rows []technique.Row) (*technique.Stats, error) {
	if f.failOutsource {
		return nil, errInjected
	}
	return f.Technique.Outsource(rows)
}

func (f *faultyTechnique) Search(values []relation.Value) ([][]byte, *technique.Stats, error) {
	if f.failSearch {
		return nil, nil, errInjected
	}
	payloads, st, err := f.Technique.Search(values)
	if err != nil {
		return nil, nil, err
	}
	if f.garblePayload {
		for i := range payloads {
			payloads[i] = []byte{0xFF, 0xFF, 0xFF}
		}
	}
	return payloads, st, nil
}

func TestOwnerPropagatesOutsourceFailure(t *testing.T) {
	ft := &faultyTechnique{Technique: newNoInd(t), failOutsource: true}
	o := New(ft, "EId")
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(1)); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestOwnerPropagatesSearchFailure(t *testing.T) {
	ft := &faultyTechnique{Technique: newNoInd(t)}
	o := New(ft, "EId")
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(1)); err != nil {
		t.Fatal(err)
	}
	ft.failSearch = true
	if _, _, err := o.Query(relation.Str("E101")); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestOwnerRejectsGarbledPayloads(t *testing.T) {
	ft := &faultyTechnique{Technique: newNoInd(t)}
	o := New(ft, "EId")
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(1)); err != nil {
		t.Fatal(err)
	}
	ft.garblePayload = true
	if _, _, err := o.Query(relation.Str("E101")); err == nil {
		t.Fatal("garbled payload accepted")
	}
}

func TestOwnerInsertPropagatesFailure(t *testing.T) {
	ft := &faultyTechnique{Technique: newNoInd(t)}
	o := New(ft, "EId")
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(1)); err != nil {
		t.Fatal(err)
	}
	ft.failOutsource = true
	nt := relation.Tuple{ID: 50, Values: []relation.Value{
		relation.Str("E901"), relation.Str("A"), relation.Str("B"),
		relation.Int(1), relation.Int(1), relation.Str("Defense"),
	}}
	if err := o.Insert(nt, true); !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected", err)
	}
}

func TestOwnerInsertBadSchema(t *testing.T) {
	o, _ := employeeOwner(t)
	if err := o.Insert(relation.Tuple{ID: 1, Values: []relation.Value{relation.Int(1)}}, false); err == nil {
		t.Fatal("bad-arity insert accepted")
	}
}
