package owner

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/relation"
)

// metadataSnapshot is the owner's durable state: everything needed to
// resume querying an already-outsourced relation — except the master key,
// which the caller supplies by constructing the technique, and the cloud
// stores, which live at the cloud. It contains plaintext values and
// counts, so it must be stored as securely as the master key.
type metadataSnapshot struct {
	Attr       string
	AttrIdx    int
	Schema     relation.Schema
	SensCounts []relation.ValueCount
	NSCounts   []relation.ValueCount
	FakeCounts map[string]int
	Bins       core.BinsSnapshot
}

// SaveMetadata serialises the owner's metadata. The owner must have
// outsourced already.
func (o *Owner) SaveMetadata(w io.Writer) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.bins == nil {
		return ErrNotOutsourced
	}
	snap := metadataSnapshot{
		Attr:       o.attr,
		AttrIdx:    o.attrIdx,
		Schema:     o.schema,
		SensCounts: countsSlice(o.sensCounts),
		NSCounts:   countsSlice(o.nsCounts),
		FakeCounts: o.fakeCounts,
		Bins:       o.bins.Snapshot(),
	}
	if err := gob.NewEncoder(w).Encode(snap); err != nil {
		return fmt.Errorf("owner: saving metadata: %w", err)
	}
	return nil
}

// LoadMetadata restores a previously saved owner state and attaches the
// given clear-text backend (which must already hold the non-sensitive
// partition — e.g. a qbcloud restored from its own snapshot, or a
// long-running remote cloud). The technique passed at construction must
// use the same keys and point at the same encrypted store as the session
// that saved the metadata.
func (o *Owner) LoadMetadata(r io.Reader, backend cloud.PlainBackend) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	var snap metadataSnapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("owner: loading metadata: %w", err)
	}
	if snap.Attr != o.attr {
		return fmt.Errorf("owner: metadata is for attribute %q, owner configured for %q", snap.Attr, o.attr)
	}
	o.attrIdx = snap.AttrIdx
	o.schema = snap.Schema
	o.sensCounts = make(map[string]*relation.ValueCount, len(snap.SensCounts))
	for i := range snap.SensCounts {
		vc := snap.SensCounts[i]
		o.sensCounts[vc.Value.Key()] = &vc
	}
	o.nsCounts = make(map[string]*relation.ValueCount, len(snap.NSCounts))
	for i := range snap.NSCounts {
		vc := snap.NSCounts[i]
		o.nsCounts[vc.Value.Key()] = &vc
	}
	o.fakeCounts = snap.FakeCounts
	if o.fakeCounts == nil {
		o.fakeCounts = make(map[string]int)
	}
	o.bins = core.FromSnapshot(snap.Bins)
	o.server = cloud.Attach(backend)
	return nil
}
