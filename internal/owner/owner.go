// Package owner implements the trusted database owner of the partitioned
// computation model (§II): it classifies tuples by sensitivity, outsources
// the non-sensitive partition in clear-text and the sensitive partition
// under a pluggable cryptographic technique, keeps the binning metadata,
// rewrites selection queries through QB (or naively, for the attack
// baselines), and merges, decrypts and filters the results (q_merge).
//
// All exported methods are safe for concurrent use: queries share a read
// lock and run in parallel, mutations serialise behind the write lock.
// Batches (QueryBatch, QueryAsync) are observationally equivalent to a
// sequential Query loop — identical per-query answers and an identical
// adversarial-view log — with QueryBatch executing the encrypted side of
// the whole batch as one technique.SearchBatch call so scan-shaped
// techniques do their store scan once per batch (see batch.go).
package owner

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/relation"
	"repro/internal/technique"
)

// payload flag bytes distinguishing real tuples from the encrypted fake
// tuples of §IV-B. Both are probabilistically encrypted, so the adversary
// cannot tell them apart; the owner discards fakes after decryption.
const (
	flagReal byte = 0
	flagFake byte = 1
)

// QueryStats reports the cost and composition of one partitioned query.
type QueryStats struct {
	// Enc aggregates the cryptographic technique's costs.
	Enc technique.Stats
	// PlainTuples is the number of non-sensitive tuples returned for the
	// non-sensitive bin.
	PlainTuples int
	// FakeDiscarded counts fake tuples filtered out after decryption.
	FakeDiscarded int
	// BinDiscarded counts real tuples fetched because they share a bin with
	// the query value but do not match it.
	BinDiscarded int
	// Result is the number of tuples in the final answer.
	Result int
}

// Owner is the trusted client. All exported methods are safe for
// concurrent use. Reads (queries in all flavours) share an RWMutex read
// lock and execute in parallel — the stores, the techniques and the cloud
// view log synchronise internally — while mutations (Outsource, Insert,
// metadata load) take the write lock and serialise against everything
// else. The batch engine in batch.go builds on this by fanning many
// selections out across a worker pool.
type Owner struct {
	mu      sync.RWMutex
	attr    string
	attrIdx int
	schema  relation.Schema

	tech    technique.Technique
	server  *cloud.Server
	backend cloud.PlainBackend // optional remote clear-text backend
	bins    *core.Bins

	binOpts core.Options

	// Owner-side metadata: real tuple counts per value on each side, plus
	// fake tuples already materialised per sensitive value.
	sensCounts map[string]*relation.ValueCount
	nsCounts   map[string]*relation.ValueCount
	fakeCounts map[string]int
}

// New creates an owner that will search on attr using tech.
func New(tech technique.Technique, attr string) *Owner {
	return &Owner{
		attr:       attr,
		tech:       tech,
		sensCounts: make(map[string]*relation.ValueCount),
		nsCounts:   make(map[string]*relation.ValueCount),
		fakeCounts: make(map[string]int),
	}
}

// Server returns the cloud server (nil before Outsource).
func (o *Owner) Server() *cloud.Server {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.server
}

// Bins returns the current binning metadata (nil before Outsource).
func (o *Owner) Bins() *core.Bins {
	o.mu.RLock()
	defer o.mu.RUnlock()
	return o.bins
}

// Technique returns the underlying cryptographic technique.
func (o *Owner) Technique() technique.Technique { return o.tech }

// Attr returns the searchable attribute.
func (o *Owner) Attr() string { return o.attr }

// SetCloudBackend routes the clear-text partition to an external backend
// (e.g. a remote cloud over the wire protocol) instead of the in-process
// store. Must be called before Outsource.
func (o *Owner) SetCloudBackend(b cloud.PlainBackend) { o.backend = b }

// Outsource partitions r by the sensitivity predicate, uploads the
// non-sensitive partition in clear-text and the sensitive partition through
// the technique (with fake-tuple padding), and builds the QB bins.
func (o *Owner) Outsource(r *relation.Relation, sensitive relation.Predicate, binOpts core.Options) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	ci, ok := r.Schema.ColumnIndex(o.attr)
	if !ok {
		return fmt.Errorf("owner: relation %q has no searchable attribute %q", r.Schema.Name, o.attr)
	}
	o.attrIdx = ci
	o.schema = r.Schema
	o.binOpts = binOpts

	rs, rns := relation.Partition(r, sensitive)

	for _, t := range rs.Tuples {
		o.bumpCount(o.sensCounts, t.Values[ci])
	}
	for _, t := range rns.Tuples {
		o.bumpCount(o.nsCounts, t.Values[ci])
	}

	var err error
	o.bins, err = core.CreateBins(countsSlice(o.sensCounts), countsSlice(o.nsCounts), binOpts)
	if err != nil {
		return err
	}

	if o.backend != nil {
		o.server, err = cloud.NewServerOn(o.backend, rns, o.attr)
	} else {
		o.server, err = cloud.NewServer(rns, o.attr)
	}
	if err != nil {
		return err
	}

	rows := make([]technique.Row, 0, rs.Len()+o.bins.TotalFakeTuples())
	for _, t := range rs.Tuples {
		rows = append(rows, technique.Row{
			Payload: encodePayload(flagReal, t),
			Attr:    t.Values[ci],
		})
	}
	rows = append(rows, o.fakeRows()...)
	if _, err := o.tech.Outsource(rows); err != nil {
		return err
	}
	return nil
}

// fakeRows materialises the per-bin fake tuples demanded by the current
// binning, minus any fakes already outsourced (relevant after inserts), and
// updates the fake ledger.
func (o *Owner) fakeRows() []technique.Row {
	var rows []technique.Row
	for i, bin := range o.bins.Sensitive {
		if len(bin) == 0 {
			continue
		}
		// Existing fakes on this bin's values already contribute volume.
		have := 0
		for _, vc := range bin {
			have += o.fakeCounts[vc.Value.Key()]
		}
		need := o.bins.FakePerBin[i] - have
		for f := 0; f < need; f++ {
			v := bin[f%len(bin)].Value
			rows = append(rows, technique.Row{
				Payload: encodePayload(flagFake, o.fakeTuple(v)),
				Attr:    v,
			})
			o.fakeCounts[v.Key()]++
		}
	}
	return rows
}

// fakeTuple builds a schema-conformant dummy tuple carrying v in the
// searchable attribute.
func (o *Owner) fakeTuple(v relation.Value) relation.Tuple {
	vals := make([]relation.Value, len(o.schema.Columns))
	for i, c := range o.schema.Columns {
		if i == o.attrIdx {
			vals[i] = v
			continue
		}
		if c.Kind == relation.KindString {
			vals[i] = relation.Str("")
		} else {
			vals[i] = relation.Int(0)
		}
	}
	return relation.Tuple{ID: 0, Values: vals}
}

func encodePayload(flag byte, t relation.Tuple) []byte {
	return append([]byte{flag}, relation.EncodeTuple(t)...)
}

func decodePayload(p []byte) (relation.Tuple, bool, error) {
	if len(p) < 1 {
		return relation.Tuple{}, false, relation.ErrCorrupt
	}
	t, err := relation.DecodeTuple(p[1:])
	if err != nil {
		return relation.Tuple{}, false, err
	}
	return t, p[0] == flagFake, nil
}

// decodePayloadSlab is decodePayload drawing Values storage from a shared
// slab — the q_merge loops decode one payload per retrieved row, and a
// per-tuple allocation there was a top line in the remote query profile.
func decodePayloadSlab(p []byte, slab *[]relation.Value) (relation.Tuple, bool, error) {
	if len(p) < 1 {
		return relation.Tuple{}, false, relation.ErrCorrupt
	}
	t, rest, err := relation.DecodeTupleSlab(p[1:], slab)
	if err != nil {
		return relation.Tuple{}, false, err
	}
	if len(rest) != 0 {
		return relation.Tuple{}, false, relation.ErrCorrupt
	}
	return t, p[0] == flagFake, nil
}

// ErrNotOutsourced is returned by queries before Outsource.
var ErrNotOutsourced = errors.New("owner: relation not outsourced yet")

// Query answers SELECT * WHERE attr = w through QB: Algorithm 2 picks one
// sensitive and one non-sensitive bin, the technique searches the encrypted
// side, the cloud searches the plaintext side, and q_merge decrypts,
// discards fakes and bin co-residents, and unions the matches.
func (o *Owner) Query(w relation.Value) ([]relation.Tuple, *QueryStats, error) {
	ts, st, view, err := o.QueryDetached(w)
	if err != nil {
		return nil, nil, err
	}
	o.RecordView(view)
	return ts, st, nil
}

// QueryDetached executes the query exactly like Query but hands the
// adversarial view back to the caller instead of recording it with the
// cloud. The batch engine uses this to log the views of a whole batch in
// input order, keeping AdversarialViews deterministic regardless of which
// worker finished first; every caller must pass the view to RecordView
// (the cloud observed the execution whether or not it is logged).
func (o *Owner) QueryDetached(w relation.Value) ([]relation.Tuple, *QueryStats, cloud.View, error) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	if o.bins == nil || o.server == nil {
		return nil, nil, cloud.View{}, ErrNotOutsourced
	}
	st := &QueryStats{}
	ret, ok := o.bins.Retrieve(w)
	if !ok {
		// Value absent from both partitions: nothing to fetch; the cloud
		// still observes an (empty) interaction.
		return nil, st, cloud.View{}, nil
	}
	eq := func(v relation.Value) bool { return v.Equal(w) }
	ts, view, err := o.executeView(eq, ret.SensValues, ret.NSValues, st)
	if err != nil {
		return nil, nil, cloud.View{}, err
	}
	return ts, st, view, nil
}

// RecordView appends a view produced by QueryDetached to the cloud's log.
func (o *Owner) RecordView(v cloud.View) {
	if s := o.Server(); s != nil {
		s.Record(v)
	}
}

// QueryNaive answers the query without binning, sending the exact predicate
// to both partitions regardless of where it occurs — the insecure strawman
// of Example 2. The cloud sees the clear-text predicate on Rns and whether
// each side returned tuples, which is exactly the inference leak of
// Table II.
func (o *Owner) QueryNaive(w relation.Value) ([]relation.Tuple, *QueryStats, error) {
	o.mu.RLock()
	if o.bins == nil || o.server == nil {
		o.mu.RUnlock()
		return nil, nil, ErrNotOutsourced
	}
	st := &QueryStats{}
	eq := func(v relation.Value) bool { return v.Equal(w) }
	ts, view, err := o.executeView(eq, []relation.Value{w}, []relation.Value{w}, st)
	o.mu.RUnlock()
	if err != nil {
		return nil, nil, err
	}
	o.RecordView(view)
	return ts, st, nil
}

// cloudView builds the Inc part of an adversarial view.
func cloudView(nsValues []relation.Value, encPredicates int) cloud.View {
	return cloud.View{PlainValues: nsValues, EncPredicates: encPredicates}
}

func (o *Owner) bumpCount(m map[string]*relation.ValueCount, v relation.Value) {
	k := v.Key()
	if vc, ok := m[k]; ok {
		vc.Count++
		return
	}
	m[k] = &relation.ValueCount{Value: v, Count: 1}
}

func countsSlice(m map[string]*relation.ValueCount) []relation.ValueCount {
	out := make([]relation.ValueCount, 0, len(m))
	for _, vc := range m {
		out = append(out, *vc)
	}
	// Deterministic order so that a seeded permutation reproduces bins.
	sort.Slice(out, func(i, j int) bool { return out[i].Value.Less(out[j].Value) })
	return out
}
