package owner

import (
	"reflect"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

func verticalOwner(t *testing.T) (*VerticalOwner, *relation.Relation) {
	t.Helper()
	ks := crypto.DeriveKeys([]byte("vertical"))
	mainTech, err := technique.NewNoInd(ks)
	if err != nil {
		t.Fatal(err)
	}
	colsTech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("vertical-cols")))
	if err != nil {
		t.Fatal(err)
	}
	v := NewVertical(mainTech, colsTech, "EId", []string{"SSN"})
	emp := workload.Employee()
	if err := v.Outsource(emp.Clone(), workload.EmployeeSensitive, seededOpts(77)); err != nil {
		t.Fatal(err)
	}
	return v, emp
}

// TestVerticalQueryReassemblesFullTuples runs the Figure 2 split end to
// end: SSN lives in the always-encrypted column store, yet queries return
// complete original-schema tuples.
func TestVerticalQueryReassemblesFullTuples(t *testing.T) {
	v, emp := verticalOwner(t)
	for _, eid := range []string{"E101", "E259", "E199", "E152", "E254", "E159"} {
		got, err := v.Query(relation.Str(eid))
		if err != nil {
			t.Fatalf("Query(%s): %v", eid, err)
		}
		want, err := emp.Select("EId", relation.Str(eid))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
			t.Fatalf("Query(%s) ids = %v, want %v", eid, relation.IDs(got), relation.IDs(want))
		}
		// Every returned tuple must match the original, including the
		// sensitive SSN column.
		byID := make(map[int]relation.Tuple)
		for _, w := range want {
			byID[w.ID] = w
		}
		for _, g := range got {
			w := byID[g.ID]
			if len(g.Values) != len(w.Values) {
				t.Fatalf("tuple %d arity %d, want %d", g.ID, len(g.Values), len(w.Values))
			}
			for i := range w.Values {
				if !g.Values[i].Equal(w.Values[i]) {
					t.Errorf("tuple %d col %d = %v, want %v", g.ID, i, g.Values[i], w.Values[i])
				}
			}
		}
	}
}

func TestVerticalAbsentValue(t *testing.T) {
	v, _ := verticalOwner(t)
	got, err := v.Query(relation.Str("E000"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("absent value returned %d tuples", len(got))
	}
}

// TestVerticalViewsStayBinShaped checks the column store is probed with
// whole bins, not exact predicates: the main owner's views must show
// multi-value plaintext predicate sets.
func TestVerticalViewsStayBinShaped(t *testing.T) {
	v, _ := verticalOwner(t)
	if _, err := v.Query(relation.Str("E259")); err != nil {
		t.Fatal(err)
	}
	views := v.Main().Server().Views()
	if len(views) == 0 {
		t.Fatal("no views recorded")
	}
	for _, view := range views {
		if len(view.PlainValues) < 2 {
			t.Errorf("vertical query produced singleton plaintext predicate set %v", view.PlainValues)
		}
	}
}

func TestVerticalSSNNeverInPlainStore(t *testing.T) {
	v, _ := verticalOwner(t)
	// The plaintext store must not contain an SSN column at all.
	rel := v.Main().Server().Plain().Relation()
	if _, ok := rel.Schema.ColumnIndex("SSN"); ok {
		t.Fatal("SSN column present in the clear-text store")
	}
}

func TestVerticalBadColumns(t *testing.T) {
	ks := crypto.DeriveKeys([]byte("v2"))
	mt, _ := technique.NewNoInd(ks)
	ct, _ := technique.NewNoInd(ks)
	v := NewVertical(mt, ct, "EId", []string{"DoesNotExist"})
	if err := v.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(1)); err == nil {
		t.Fatal("missing sensitive column accepted")
	}
}
