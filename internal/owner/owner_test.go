package owner

import (
	mrand "math/rand/v2"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

func seededOpts(seed uint64) core.Options {
	return core.Options{Rand: mrand.New(mrand.NewPCG(seed, seed+1))}
}

func newNoInd(t *testing.T) technique.Technique {
	t.Helper()
	tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("owner test")))
	if err != nil {
		t.Fatal(err)
	}
	return tech
}

func employeeOwner(t *testing.T) (*Owner, *relation.Relation) {
	t.Helper()
	emp := workload.Employee()
	o := New(newNoInd(t), "EId")
	if err := o.Outsource(emp.Clone(), workload.EmployeeSensitive, seededOpts(42)); err != nil {
		t.Fatal(err)
	}
	return o, emp
}

// groundTruth computes σ_{attr=w}(R) over the original relation.
func groundTruth(t *testing.T, r *relation.Relation, attr string, w relation.Value) []int {
	t.Helper()
	ts, err := r.Select(attr, w)
	if err != nil {
		t.Fatal(err)
	}
	return relation.IDs(ts)
}

func TestQueryNotOutsourced(t *testing.T) {
	o := New(newNoInd(t), "EId")
	if _, _, err := o.Query(relation.Str("E101")); err != ErrNotOutsourced {
		t.Fatalf("err = %v, want ErrNotOutsourced", err)
	}
	if _, _, err := o.QueryNaive(relation.Str("E101")); err != ErrNotOutsourced {
		t.Fatalf("naive err = %v", err)
	}
	if err := o.Insert(relation.Tuple{}, true); err != ErrNotOutsourced {
		t.Fatalf("insert err = %v", err)
	}
	if _, _, err := o.QueryRange(relation.Int(0), relation.Int(1)); err != ErrNotOutsourced {
		t.Fatalf("range err = %v", err)
	}
}

func TestOutsourceBadAttr(t *testing.T) {
	o := New(newNoInd(t), "Nope")
	if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, seededOpts(1)); err == nil {
		t.Fatal("missing attribute accepted")
	}
}

// TestEmployeeCompleteness runs Example 1 end to end: every EId query via
// QB must return exactly the tuples of the unpartitioned relation.
func TestEmployeeCompleteness(t *testing.T) {
	o, emp := employeeOwner(t)
	for _, eid := range []string{"E101", "E259", "E199", "E152", "E254", "E159"} {
		w := relation.Str(eid)
		got, st, err := o.Query(w)
		if err != nil {
			t.Fatalf("Query(%s): %v", eid, err)
		}
		want := groundTruth(t, emp, "EId", w)
		if !reflect.DeepEqual(relation.IDs(got), want) {
			t.Errorf("Query(%s) ids = %v, want %v", eid, relation.IDs(got), want)
		}
		if st.Result != len(want) {
			t.Errorf("Query(%s) stats.Result = %d, want %d", eid, st.Result, len(want))
		}
	}
}

func TestEmployeeNaiveCompleteness(t *testing.T) {
	o, emp := employeeOwner(t)
	for _, eid := range []string{"E101", "E259", "E199"} {
		w := relation.Str(eid)
		got, _, err := o.QueryNaive(w)
		if err != nil {
			t.Fatal(err)
		}
		want := groundTruth(t, emp, "EId", w)
		if !reflect.DeepEqual(relation.IDs(got), want) {
			t.Errorf("QueryNaive(%s) ids = %v, want %v", eid, relation.IDs(got), want)
		}
	}
}

func TestQueryAbsentValue(t *testing.T) {
	o, _ := employeeOwner(t)
	got, st, err := o.Query(relation.Str("E999"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || st.Result != 0 {
		t.Fatalf("absent value returned %d tuples", len(got))
	}
}

// TestCompletenessAllTechniques runs a generated skewed dataset through
// every technique and checks query answers against ground truth.
func TestCompletenessAllTechniques(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 400, DistinctValues: 40, Alpha: 0.4, ZipfS: 1.4,
		AssocFraction: 0.5, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ks := crypto.DeriveKeys([]byte("all techniques"))
	builders := map[string]func() (technique.Technique, error){
		"noind":  func() (technique.Technique, error) { return technique.NewNoInd(ks) },
		"det":    func() (technique.Technique, error) { return technique.NewDetIndex(ks) },
		"arx":    func() (technique.Technique, error) { return technique.NewArx(ks) },
		"shamir": func() (technique.Technique, error) { return technique.NewShamirScan(ks, 3, 2) },
		"dpfpir": func() (technique.Technique, error) { return technique.NewDPFPIR(ks) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			tech, err := build()
			if err != nil {
				t.Fatal(err)
			}
			o := New(tech, workload.Attr)
			if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(9)); err != nil {
				t.Fatal(err)
			}
			for _, v := range ds.Values[:20] {
				got, _, err := o.Query(v)
				if err != nil {
					t.Fatalf("Query(%v): %v", v, err)
				}
				want := groundTruth(t, ds.Relation, workload.Attr, v)
				if !reflect.DeepEqual(relation.IDs(got), want) {
					t.Fatalf("Query(%v) ids = %v, want %v", v, relation.IDs(got), want)
				}
			}
		})
	}
}

func TestFakeTuplesAreDiscardedAndInvisible(t *testing.T) {
	// Skewed counts force padding; queries must never return fakes.
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 300, DistinctValues: 20, Alpha: 0.5, ZipfS: 2.0, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(newNoInd(t), workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(5)); err != nil {
		t.Fatal(err)
	}
	if o.Bins().TotalFakeTuples() == 0 {
		t.Skip("no padding needed for this dataset; skew too mild")
	}
	sawFake := false
	for _, v := range ds.Values {
		got, st, err := o.Query(v)
		if err != nil {
			t.Fatal(err)
		}
		want := groundTruth(t, ds.Relation, workload.Attr, v)
		if !reflect.DeepEqual(relation.IDs(got), want) {
			t.Fatalf("Query(%v) ids = %v, want %v", v, relation.IDs(got), want)
		}
		if st.FakeDiscarded > 0 {
			sawFake = true
		}
	}
	if !sawFake {
		t.Error("padding exists but no query ever fetched a fake tuple")
	}
}

func TestEqualVolumePerSensitiveBin(t *testing.T) {
	// Every sensitive retrieval must return the same number of encrypted
	// tuples (real + fake) — the size-attack defence.
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 500, DistinctValues: 30, Alpha: 0.5, ZipfS: 1.8, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(newNoInd(t), workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(13)); err != nil {
		t.Fatal(err)
	}
	volume := -1
	for _, v := range ds.Values {
		_, st, err := o.Query(v)
		if err != nil {
			t.Fatal(err)
		}
		if st.Enc.ReturnedAddrs == nil {
			continue
		}
		n := len(st.Enc.ReturnedAddrs)
		if volume == -1 {
			volume = n
		} else if n != volume {
			t.Fatalf("sensitive retrieval volumes differ: %d vs %d", n, volume)
		}
	}
	if volume <= 0 {
		t.Fatal("no sensitive retrievals observed")
	}
}

func TestInsertNonSensitive(t *testing.T) {
	o, emp := employeeOwner(t)
	nt := relation.Tuple{ID: 100, Values: []relation.Value{
		relation.Str("E777"), relation.Str("New"), relation.Str("Person"),
		relation.Int(777), relation.Int(9), relation.Str("Design"),
	}}
	if err := o.Insert(nt, false); err != nil {
		t.Fatal(err)
	}
	got, _, err := o.Query(relation.Str("E777"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 100 {
		t.Fatalf("inserted tuple not found: %v", got)
	}
	// Old values still answer correctly.
	got, _, err = o.Query(relation.Str("E259"))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(relation.IDs(got), groundTruth(t, emp, "EId", relation.Str("E259"))) {
		t.Errorf("post-insert Query(E259) = %v", relation.IDs(got))
	}
}

func TestInsertSensitiveKeepsVolumesEqual(t *testing.T) {
	o, _ := employeeOwner(t)
	st := relation.Tuple{ID: 101, Values: []relation.Value{
		relation.Str("E888"), relation.Str("Secret"), relation.Str("Agent"),
		relation.Int(888), relation.Int(1), relation.Str("Defense"),
	}}
	if err := o.Insert(st, true); err != nil {
		t.Fatal(err)
	}
	got, _, err := o.Query(relation.Str("E888"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].ID != 101 {
		t.Fatalf("sensitive insert not found: %v", got)
	}
	// All sensitive retrievals keep uniform volume.
	volume := -1
	for _, eid := range []string{"E101", "E259", "E152", "E159", "E888"} {
		_, qst, err := o.Query(relation.Str(eid))
		if err != nil {
			t.Fatal(err)
		}
		n := len(qst.Enc.ReturnedAddrs)
		if volume == -1 {
			volume = n
		} else if n != volume {
			t.Fatalf("volumes differ after insert: %d vs %d", n, volume)
		}
	}
}

func TestQueryRange(t *testing.T) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 200, DistinctValues: 50, Alpha: 0.3, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(newNoInd(t), workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(19)); err != nil {
		t.Fatal(err)
	}
	lo, hi := relation.Int(10), relation.Int(20)
	got, _, err := o.QueryRange(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ds.Relation.SelectRange(workload.Attr, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(relation.IDs(got), relation.IDs(want)) {
		t.Fatalf("range ids = %v, want %v", relation.IDs(got), relation.IDs(want))
	}
	// Swapped bounds behave identically.
	got2, _, err := o.QueryRange(hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(relation.IDs(got2), relation.IDs(want)) {
		t.Error("swapped bounds differ")
	}
}

func TestJoin(t *testing.T) {
	// Two small relations sharing EId-like keys.
	mk := func(name string, keys []int64, sensEvery int) (*Owner, *relation.Relation) {
		s := relation.MustSchema(name,
			relation.Column{Name: "K", Kind: relation.KindInt},
			relation.Column{Name: "P", Kind: relation.KindInt},
		)
		r := relation.New(s)
		for i, k := range keys {
			r.MustInsert(relation.Int(k), relation.Int(int64(i)))
		}
		o := New(newNoInd(t), "K")
		pred := func(tp relation.Tuple) bool { return int(tp.Values[0].Int())%sensEvery == 0 }
		if err := o.Outsource(r.Clone(), pred, seededOpts(23)); err != nil {
			t.Fatal(err)
		}
		return o, r
	}
	left, lr := mk("L", []int64{1, 2, 3, 4, 5, 5}, 2)
	right, rr := mk("R", []int64{3, 4, 5, 6, 7}, 3)
	pairs, err := left.Join(right)
	if err != nil {
		t.Fatal(err)
	}
	// Expected: keys 3, 4, 5 match; key 5 appears twice on the left.
	want := 0
	for _, lt := range lr.Tuples {
		for _, rt := range rr.Tuples {
			if lt.Values[0].Equal(rt.Values[0]) {
				want++
			}
		}
	}
	if len(pairs) != want {
		t.Fatalf("join returned %d pairs, want %d", len(pairs), want)
	}
	for _, p := range pairs {
		if !p.Left.Values[0].Equal(p.Right.Values[0]) {
			t.Errorf("join pair keys differ: %v vs %v", p.Left.Values[0], p.Right.Values[0])
		}
	}
}

func TestQueryAggregate(t *testing.T) {
	// Values 0..9, value v has v+1 tuples with payload column P = v*10+i.
	s := relation.MustSchema("Agg",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindInt},
		relation.Column{Name: "S", Kind: relation.KindString},
	)
	r := relation.New(s)
	for v := int64(0); v < 10; v++ {
		for i := int64(0); i <= v; i++ {
			r.MustInsert(relation.Int(v), relation.Int(v*10+i), relation.Str("x"))
		}
	}
	o := New(newNoInd(t), "K")
	pred := func(tp relation.Tuple) bool { return tp.Values[0].Int()%2 == 0 }
	if err := o.Outsource(r.Clone(), pred, seededOpts(55)); err != nil {
		t.Fatal(err)
	}
	cnt, err := o.QueryAggregate(relation.Int(4), "P", AggCount)
	if err != nil || cnt != 5 {
		t.Errorf("count = %d, %v; want 5", cnt, err)
	}
	sum, err := o.QueryAggregate(relation.Int(4), "P", AggSum)
	if err != nil || sum != 40+41+42+43+44 {
		t.Errorf("sum = %d, %v", sum, err)
	}
	minV, err := o.QueryAggregate(relation.Int(4), "P", AggMin)
	if err != nil || minV != 40 {
		t.Errorf("min = %d, %v", minV, err)
	}
	maxV, err := o.QueryAggregate(relation.Int(4), "P", AggMax)
	if err != nil || maxV != 44 {
		t.Errorf("max = %d, %v", maxV, err)
	}
	if _, err := o.QueryAggregate(relation.Int(4), "missing", AggSum); err == nil {
		t.Error("missing column accepted")
	}
	if _, err := o.QueryAggregate(relation.Int(4), "S", AggSum); err == nil {
		t.Error("sum over string column accepted")
	}
	if _, err := o.QueryAggregate(relation.Int(999), "P", AggMin); err == nil {
		t.Error("min over empty selection accepted")
	}
	if _, err := o.QueryAggregate(relation.Int(4), "P", AggOp(99)); err == nil {
		t.Error("unknown op accepted")
	}
}

func TestReversedModeEndToEnd(t *testing.T) {
	// More sensitive than non-sensitive values.
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: 300, DistinctValues: 60, Alpha: 0.85, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := New(newNoInd(t), workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, seededOpts(31)); err != nil {
		t.Fatal(err)
	}
	for _, v := range ds.Values[:30] {
		got, _, err := o.Query(v)
		if err != nil {
			t.Fatal(err)
		}
		want := groundTruth(t, ds.Relation, workload.Attr, v)
		if !reflect.DeepEqual(relation.IDs(got), want) {
			t.Fatalf("reversed Query(%v) = %v, want %v", v, relation.IDs(got), want)
		}
	}
}
