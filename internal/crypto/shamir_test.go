package crypto

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFieldOps(t *testing.T) {
	p := ShamirPrime
	if AddMod(p-1, 1) != 0 {
		t.Error("AddMod wrap")
	}
	if SubMod(0, 1) != p-1 {
		t.Error("SubMod wrap")
	}
	if MulMod(2, p/2) != p-1 {
		t.Errorf("MulMod(2, p/2) = %d", MulMod(2, p/2))
	}
	if PowMod(3, 0) != 1 || PowMod(3, 1) != 3 || PowMod(3, 2) != 9 {
		t.Error("PowMod small cases")
	}
	inv, err := InvMod(12345)
	if err != nil {
		t.Fatal(err)
	}
	if MulMod(inv, 12345) != 1 {
		t.Error("InvMod not inverse")
	}
	if _, err := InvMod(0); err == nil {
		t.Error("inverse of zero accepted")
	}
}

func TestMulModMatchesBigIntSemantics(t *testing.T) {
	// a*(b+c) == a*b + a*c — distributivity catches reduction bugs.
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(args []reflect.Value, r *rand.Rand) {
			for i := range args {
				args[i] = reflect.ValueOf(r.Uint64() % ShamirPrime)
			}
		},
	}
	prop := func(a, b, c uint64) bool {
		return MulMod(a, AddMod(b, c)) == AddMod(MulMod(a, b), MulMod(a, c))
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSplitReconstructRoundTrip(t *testing.T) {
	secrets := []uint64{0, 1, 42, ShamirPrime - 1}
	for _, s := range secrets {
		shares, err := SplitSecret(s, 5, 3, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(shares) != 5 {
			t.Fatalf("got %d shares", len(shares))
		}
		got, err := Reconstruct(shares[:3])
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("reconstruct(%d) = %d", s, got)
		}
		// Any k-subset works.
		got2, err := Reconstruct([]Share{shares[4], shares[1], shares[2]})
		if err != nil || got2 != s {
			t.Errorf("subset reconstruct = %d, %v", got2, err)
		}
	}
}

func TestSplitParamsValidation(t *testing.T) {
	if _, err := SplitSecret(ShamirPrime, 3, 2, nil); err == nil {
		t.Error("secret outside field accepted")
	}
	if _, err := SplitSecret(1, 2, 3, nil); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := SplitSecret(1, 3, 0, nil); err == nil {
		t.Error("k = 0 accepted")
	}
}

func TestReconstructErrors(t *testing.T) {
	if _, err := Reconstruct(nil); err == nil {
		t.Error("no shares accepted")
	}
	if _, err := Reconstruct([]Share{{X: 1, Y: 2}, {X: 1, Y: 3}}); err == nil {
		t.Error("duplicate x accepted")
	}
}

func TestFewerThanThresholdIsIndependent(t *testing.T) {
	// With k-1 shares, any candidate secret remains possible: reconstruct
	// with a forged extra share and confirm we can hit arbitrary values.
	shares, err := SplitSecret(777, 3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Using only 2 of 3 shares plus a guessed third point changes the
	// result — 2 shares alone do not pin the secret.
	a, err := Reconstruct([]Share{shares[0], shares[1], {X: 3, Y: 1}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Reconstruct([]Share{shares[0], shares[1], {X: 3, Y: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("threshold-1 shares determined the secret")
	}
}

func TestAdditiveHomomorphism(t *testing.T) {
	s1, err := SplitSecret(100, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SplitSecret(23, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := AddShares(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Reconstruct(sum[:2])
	if err != nil {
		t.Fatal(err)
	}
	if got != 123 {
		t.Fatalf("homomorphic sum = %d, want 123", got)
	}
	if _, err := AddShares(s1, s2[:2]); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestSplitReconstructProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(r.Uint64() % ShamirPrime)
			args[1] = reflect.ValueOf(2 + r.Intn(5)) // k in [2,6]
			args[2] = reflect.ValueOf(r.Intn(4))     // extra shares
		},
	}
	prop := func(secret uint64, k, extra int) bool {
		shares, err := SplitSecret(secret, k+extra, k, nil)
		if err != nil {
			return false
		}
		got, err := Reconstruct(shares[:k])
		return err == nil && got == secret
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
