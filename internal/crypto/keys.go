// Package crypto provides the cryptographic substrates required by the QB
// reproduction: non-deterministic (probabilistic) AES-GCM encryption with
// ciphertext indistinguishability, an intentionally-leaky deterministic
// cipher used as an attackable baseline, HMAC-SHA-256 PRF search tokens,
// Arx-style counter tokens, and Shamir secret sharing over GF(2^61-1).
//
// Everything is built from the Go standard library.
package crypto

import (
	"crypto/hmac"
	"crypto/sha256"
)

// KeySet holds the independent sub-keys the DB owner derives from a single
// master key. Each purpose gets its own key so that, e.g., search tokens can
// never be confused with encryption keys.
type KeySet struct {
	Enc   []byte // probabilistic tuple encryption
	Det   []byte // deterministic attribute encryption (baseline)
	Nonce []byte // synthetic-IV derivation for the deterministic cipher
	PRF   []byte // search-token PRF
	Arx   []byte // Arx-style counter tokens
	Admin []byte // control-plane owner tokens (namespace lifecycle ops)
}

// DeriveKeys expands a master secret into a KeySet using HMAC-SHA-256 with
// distinct labels (an HKDF-expand in spirit).
func DeriveKeys(master []byte) *KeySet {
	return &KeySet{
		Enc:   derive(master, "enc"),
		Det:   derive(master, "det"),
		Nonce: derive(master, "nonce"),
		PRF:   derive(master, "prf"),
		Arx:   derive(master, "arx"),
		Admin: derive(master, "admin"),
	}
}

func derive(master []byte, label string) []byte {
	m := hmac.New(sha256.New, master)
	m.Write([]byte("qb/v1/"))
	m.Write([]byte(label))
	return m.Sum(nil)
}

// PRF computes HMAC-SHA-256(key, data). It is the pseudorandom function
// behind search tokens and deterministic nonces.
func PRF(key, data []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(data)
	return m.Sum(nil)
}

// PRF2 computes HMAC-SHA-256(key, a || b) with an unambiguous separator.
func PRF2(key, a, b []byte) []byte {
	m := hmac.New(sha256.New, key)
	m.Write(a)
	m.Write([]byte{0x1f})
	m.Write(b)
	return m.Sum(nil)
}

// Equal is constant-time token comparison.
func Equal(a, b []byte) bool { return hmac.Equal(a, b) }
