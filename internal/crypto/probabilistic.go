package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
)

// Probabilistic is a non-deterministic authenticated cipher (AES-256-GCM
// with a random nonce). Two encryptions of the same plaintext produce
// unrelated ciphertexts, giving the ciphertext indistinguishability the
// partitioned-computation model assumes for the sensitive relation
// ("the two occurrences of E152 have two different ciphertexts", §II).
type Probabilistic struct {
	aead cipher.AEAD
	rand io.Reader
}

// NewProbabilistic builds a probabilistic cipher from a 16/24/32-byte key.
func NewProbabilistic(key []byte) (*Probabilistic, error) {
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, fmt.Errorf("crypto: probabilistic cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: probabilistic cipher: %w", err)
	}
	return &Probabilistic{aead: aead, rand: rand.Reader}, nil
}

// SetRand overrides the nonce source; tests use it for determinism.
func (p *Probabilistic) SetRand(r io.Reader) { p.rand = r }

// Encrypt seals pt under a fresh random nonce. The result is nonce || ct.
func (p *Probabilistic) Encrypt(pt []byte) ([]byte, error) {
	nonce := make([]byte, p.aead.NonceSize())
	if _, err := io.ReadFull(p.rand, nonce); err != nil {
		return nil, fmt.Errorf("crypto: nonce: %w", err)
	}
	return p.aead.Seal(nonce, nonce, pt, nil), nil
}

// ErrDecrypt is returned when a ciphertext fails authentication.
var ErrDecrypt = errors.New("crypto: decryption failed")

// Decrypt opens nonce || ct.
func (p *Probabilistic) Decrypt(ct []byte) ([]byte, error) {
	return p.DecryptAppend(nil, ct)
}

// DecryptAppend opens nonce || ct, appending the plaintext to dst and
// returning the extended slice. Scan-style callers (NoInd's column pass
// decrypts every stored attribute cell per search) pass a reused scratch
// buffer so steady-state decryption allocates nothing.
func (p *Probabilistic) DecryptAppend(dst, ct []byte) ([]byte, error) {
	ns := p.aead.NonceSize()
	if len(ct) < ns {
		return nil, ErrDecrypt
	}
	pt, err := p.aead.Open(dst, ct[:ns], ct[ns:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}

// Overhead returns the ciphertext expansion in bytes (nonce + tag).
func (p *Probabilistic) Overhead() int { return p.aead.NonceSize() + p.aead.Overhead() }
