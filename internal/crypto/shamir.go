package crypto

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// Shamir secret sharing over the Mersenne prime field GF(2^61 - 1),
// following Shamir (1979) as used by the secret-sharing-based outsourcing
// baselines the paper cites (Emekçi et al.). A secret is split into n
// shares of which any k reconstruct it; fewer than k shares are
// information-theoretically independent of the secret.

// ShamirPrime is the field modulus 2^61 - 1.
const ShamirPrime uint64 = 1<<61 - 1

// Share is one point (X, Y) on the sharing polynomial.
type Share struct {
	X uint64
	Y uint64
}

// modReduce reduces a 128-bit value (hi, lo) modulo 2^61-1 using Mersenne
// folding: 2^61 ≡ 1.
func modReduce(hi, lo uint64) uint64 {
	const m = ShamirPrime
	// Split the 128-bit number into 61-bit limbs.
	c0 := lo & m
	c1 := (lo>>61 | hi<<3) & m
	c2 := hi >> 58
	s := c0 + c1 + c2 // < 3 * 2^61, fits in 64 bits
	s = (s & m) + (s >> 61)
	if s >= m {
		s -= m
	}
	return s
}

// MulMod returns a*b mod 2^61-1.
func MulMod(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	return modReduce(hi, lo)
}

// AddMod returns a+b mod 2^61-1 for a, b < 2^61-1.
func AddMod(a, b uint64) uint64 {
	s := a + b
	if s >= ShamirPrime {
		s -= ShamirPrime
	}
	return s
}

// SubMod returns a-b mod 2^61-1.
func SubMod(a, b uint64) uint64 {
	if a >= b {
		return a - b
	}
	return ShamirPrime - b + a
}

// PowMod returns a^e mod 2^61-1 by square-and-multiply.
func PowMod(a, e uint64) uint64 {
	r := uint64(1)
	base := a % ShamirPrime
	for e > 0 {
		if e&1 == 1 {
			r = MulMod(r, base)
		}
		base = MulMod(base, base)
		e >>= 1
	}
	return r
}

// InvMod returns the multiplicative inverse of a in the field (a != 0),
// via Fermat's little theorem.
func InvMod(a uint64) (uint64, error) {
	if a%ShamirPrime == 0 {
		return 0, errors.New("crypto: no inverse of zero")
	}
	return PowMod(a, ShamirPrime-2), nil
}

// randField draws a uniform field element from r.
func randField(r io.Reader) (uint64, error) {
	var b [8]byte
	for {
		if _, err := io.ReadFull(r, b[:]); err != nil {
			return 0, err
		}
		v := binary.BigEndian.Uint64(b[:]) & (1<<61 - 1)
		if v < ShamirPrime {
			return v, nil
		}
	}
}

// SplitSecret shares secret into n shares with threshold k using randomness
// from rnd (crypto/rand if nil). Shares are evaluated at x = 1..n.
func SplitSecret(secret uint64, n, k int, rnd io.Reader) ([]Share, error) {
	if secret >= ShamirPrime {
		return nil, fmt.Errorf("crypto: secret outside field (max 2^61-1)")
	}
	if k < 1 || n < k {
		return nil, fmt.Errorf("crypto: invalid sharing parameters n=%d k=%d", n, k)
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	// coeffs[0] = secret; coeffs[1..k-1] random.
	coeffs := make([]uint64, k)
	coeffs[0] = secret
	for i := 1; i < k; i++ {
		c, err := randField(rnd)
		if err != nil {
			return nil, fmt.Errorf("crypto: sharing randomness: %w", err)
		}
		coeffs[i] = c
	}
	shares := make([]Share, n)
	for i := 0; i < n; i++ {
		x := uint64(i + 1)
		// Horner evaluation.
		y := uint64(0)
		for j := k - 1; j >= 0; j-- {
			y = AddMod(MulMod(y, x), coeffs[j])
		}
		shares[i] = Share{X: x, Y: y}
	}
	return shares, nil
}

// Reconstruct recovers the secret from at least k shares by Lagrange
// interpolation at x = 0. Shares must have distinct X coordinates.
func Reconstruct(shares []Share) (uint64, error) {
	if len(shares) == 0 {
		return 0, errors.New("crypto: no shares")
	}
	seen := make(map[uint64]bool, len(shares))
	for _, s := range shares {
		if seen[s.X] {
			return 0, fmt.Errorf("crypto: duplicate share x=%d", s.X)
		}
		seen[s.X] = true
	}
	secret := uint64(0)
	for i, si := range shares {
		num, den := uint64(1), uint64(1)
		for j, sj := range shares {
			if i == j {
				continue
			}
			num = MulMod(num, sj.X%ShamirPrime)
			den = MulMod(den, SubMod(sj.X%ShamirPrime, si.X%ShamirPrime))
		}
		inv, err := InvMod(den)
		if err != nil {
			return 0, err
		}
		secret = AddMod(secret, MulMod(si.Y, MulMod(num, inv)))
	}
	return secret, nil
}

// AddShares adds two share vectors pointwise (same X layout), exploiting the
// additive homomorphism of Shamir sharing.
func AddShares(a, b []Share) ([]Share, error) {
	if len(a) != len(b) {
		return nil, errors.New("crypto: share vectors of different length")
	}
	out := make([]Share, len(a))
	for i := range a {
		if a[i].X != b[i].X {
			return nil, fmt.Errorf("crypto: share x mismatch at %d", i)
		}
		out[i] = Share{X: a[i].X, Y: AddMod(a[i].Y, b[i].Y)}
	}
	return out, nil
}
