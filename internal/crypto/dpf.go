package crypto

import (
	"crypto/rand"
	"crypto/sha512"
	"errors"
	"fmt"
	"io"
)

// Distributed point function (DPF), following the tree construction of
// Gilboa-Ishai (EUROCRYPT 2014) / Boyle-Gilboa-Ishai: two keys that
// evaluate, on every point of a domain of size 2^n, to XOR-shares of the
// point function f_alpha (1 at alpha, 0 elsewhere). Each key on its own is
// pseudorandom and reveals nothing about alpha. Two non-colluding clouds
// holding one key each can answer private information retrieval queries:
// each XORs together the buckets whose evaluation bit is 1, and the XOR of
// the two answers is exactly bucket alpha.
//
// This is the access-pattern-hiding technique class the paper cites as
// "DPF [6]" among the strong mechanisms QB accelerates.

// DPFKey is one party's key: the initial seed, the party bit, and one
// correction word per tree level.
type DPFKey struct {
	Party byte // 0 or 1
	Seed  [16]byte
	CW    []dpfCW
}

type dpfCW struct {
	S  [16]byte
	TL byte
	TR byte
}

// prg expands a 16-byte seed into two child seeds and two control bits.
func dpfPRG(seed [16]byte) (sL [16]byte, tL byte, sR [16]byte, tR byte) {
	h := sha512.Sum512(seed[:])
	copy(sL[:], h[0:16])
	copy(sR[:], h[16:32])
	tL = h[32] & 1
	tR = h[33] & 1
	return
}

func xor16(a, b [16]byte) [16]byte {
	var out [16]byte
	for i := range out {
		out[i] = a[i] ^ b[i]
	}
	return out
}

func maskSeed(s [16]byte, t byte) [16]byte {
	if t == 0 {
		return [16]byte{}
	}
	return s
}

// DPFGen generates the two keys for the point alpha over a domain of size
// 2^bits. rnd defaults to crypto/rand.
func DPFGen(alpha uint64, bits int, rnd io.Reader) (k0, k1 DPFKey, err error) {
	if bits <= 0 || bits > 40 {
		return k0, k1, fmt.Errorf("crypto: dpf domain bits %d out of range", bits)
	}
	if alpha >= 1<<uint(bits) {
		return k0, k1, fmt.Errorf("crypto: dpf point outside domain 2^%d", bits)
	}
	if rnd == nil {
		rnd = rand.Reader
	}
	var s0, s1 [16]byte
	if _, err := io.ReadFull(rnd, s0[:]); err != nil {
		return k0, k1, err
	}
	if _, err := io.ReadFull(rnd, s1[:]); err != nil {
		return k0, k1, err
	}
	k0 = DPFKey{Party: 0, Seed: s0, CW: make([]dpfCW, bits)}
	k1 = DPFKey{Party: 1, Seed: s1, CW: make([]dpfCW, bits)}

	t0, t1 := byte(0), byte(1)
	for i := 0; i < bits; i++ {
		bit := byte(alpha >> uint(bits-1-i) & 1)
		sL0, tL0, sR0, tR0 := dpfPRG(s0)
		sL1, tL1, sR1, tR1 := dpfPRG(s1)

		var sLose0, sLose1 [16]byte
		if bit == 0 { // keep left, lose right
			sLose0, sLose1 = sR0, sR1
		} else {
			sLose0, sLose1 = sL0, sL1
		}
		cw := dpfCW{
			S:  xor16(sLose0, sLose1),
			TL: tL0 ^ tL1 ^ bit ^ 1,
			TR: tR0 ^ tR1 ^ bit,
		}
		k0.CW[i], k1.CW[i] = cw, cw

		var sKeep0, sKeep1 [16]byte
		var tKeep0, tKeep1, tKeepCW byte
		if bit == 0 {
			sKeep0, sKeep1 = sL0, sL1
			tKeep0, tKeep1, tKeepCW = tL0, tL1, cw.TL
		} else {
			sKeep0, sKeep1 = sR0, sR1
			tKeep0, tKeep1, tKeepCW = tR0, tR1, cw.TR
		}
		s0 = xor16(sKeep0, maskSeed(cw.S, t0))
		s1 = xor16(sKeep1, maskSeed(cw.S, t1))
		t0 = tKeep0 ^ t0&1*tKeepCW
		t1 = tKeep1 ^ t1&1*tKeepCW
	}
	return k0, k1, nil
}

// DPFEval evaluates one party's share bit at point x: the XOR of the two
// parties' bits is 1 exactly when x equals the hidden point.
func DPFEval(key DPFKey, x uint64, bits int) (byte, error) {
	if bits != len(key.CW) {
		return 0, errors.New("crypto: dpf key/domain mismatch")
	}
	if x >= 1<<uint(bits) {
		return 0, fmt.Errorf("crypto: dpf point %d outside domain 2^%d", x, bits)
	}
	s := key.Seed
	t := key.Party & 1
	for i := 0; i < bits; i++ {
		sL, tL, sR, tR := dpfPRG(s)
		cw := key.CW[i]
		if t == 1 {
			sL = xor16(sL, cw.S)
			sR = xor16(sR, cw.S)
			tL ^= cw.TL
			tR ^= cw.TR
		}
		if x>>uint(bits-1-i)&1 == 0 {
			s, t = sL, tL
		} else {
			s, t = sR, tR
		}
	}
	return t, nil
}

// DPFEvalAll evaluates the share bits on the whole domain [0, n) (n need
// not be a power of two; points beyond n are simply not evaluated). It
// walks point by point; a production implementation would share tree
// prefixes, but domains here are metadata-sized.
func DPFEvalAll(key DPFKey, n int, bits int) ([]byte, error) {
	out := make([]byte, n)
	for x := 0; x < n; x++ {
		b, err := DPFEval(key, uint64(x), bits)
		if err != nil {
			return nil, err
		}
		out[x] = b
	}
	return out, nil
}

// DPFDomainBits returns the number of tree levels needed for n points.
func DPFDomainBits(n int) int {
	bits := 1
	for 1<<uint(bits) < n {
		bits++
	}
	return bits
}
