package crypto

import (
	"crypto/aes"
	"crypto/cipher"
	"fmt"
)

// Deterministic is a synthetic-IV cipher: the nonce is a PRF of the
// plaintext, so equal plaintexts yield equal ciphertexts. This is exactly
// the property that makes deterministic encryption indexable by the cloud —
// and exactly what the frequency-count attacks of Naveed et al. exploit. It
// exists here as the weak baseline that QB is shown to harden (§VI).
type Deterministic struct {
	aead     cipher.AEAD
	nonceKey []byte
}

// NewDeterministic builds the cipher from an AES key and an independent
// nonce-derivation key.
func NewDeterministic(encKey, nonceKey []byte) (*Deterministic, error) {
	block, err := aes.NewCipher(encKey)
	if err != nil {
		return nil, fmt.Errorf("crypto: deterministic cipher: %w", err)
	}
	aead, err := cipher.NewGCM(block)
	if err != nil {
		return nil, fmt.Errorf("crypto: deterministic cipher: %w", err)
	}
	nk := make([]byte, len(nonceKey))
	copy(nk, nonceKey)
	return &Deterministic{aead: aead, nonceKey: nk}, nil
}

// Encrypt seals pt under the synthetic IV PRF(nonceKey, pt)[:12]. Identical
// plaintexts produce identical ciphertexts.
func (d *Deterministic) Encrypt(pt []byte) []byte {
	nonce := PRF(d.nonceKey, pt)[:d.aead.NonceSize()]
	return d.aead.Seal(append([]byte(nil), nonce...), nonce, pt, nil)
}

// Decrypt opens nonce || ct.
func (d *Deterministic) Decrypt(ct []byte) ([]byte, error) {
	ns := d.aead.NonceSize()
	if len(ct) < ns {
		return nil, ErrDecrypt
	}
	pt, err := d.aead.Open(nil, ct[:ns], ct[ns:], nil)
	if err != nil {
		return nil, ErrDecrypt
	}
	return pt, nil
}
