package crypto

import (
	"bytes"
	"testing"
)

func testKeys() *KeySet { return DeriveKeys([]byte("test master key")) }

func TestDeriveKeysDistinctAndStable(t *testing.T) {
	k1 := DeriveKeys([]byte("m"))
	k2 := DeriveKeys([]byte("m"))
	if !bytes.Equal(k1.Enc, k2.Enc) {
		t.Error("derivation not deterministic")
	}
	keys := [][]byte{k1.Enc, k1.Det, k1.Nonce, k1.PRF, k1.Arx}
	for i := range keys {
		if len(keys[i]) != 32 {
			t.Errorf("key %d has length %d", i, len(keys[i]))
		}
		for j := i + 1; j < len(keys); j++ {
			if bytes.Equal(keys[i], keys[j]) {
				t.Errorf("keys %d and %d collide", i, j)
			}
		}
	}
	other := DeriveKeys([]byte("other"))
	if bytes.Equal(k1.Enc, other.Enc) {
		t.Error("different masters derive equal keys")
	}
}

func TestProbabilisticRoundTrip(t *testing.T) {
	p, err := NewProbabilistic(testKeys().Enc)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc"), 100)} {
		ct, err := p.Encrypt(pt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := p.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, pt) {
			t.Errorf("round trip %q -> %q", pt, got)
		}
	}
}

func TestProbabilisticIsNonDeterministic(t *testing.T) {
	p, err := NewProbabilistic(testKeys().Enc)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Encrypt([]byte("same plaintext"))
	b, _ := p.Encrypt([]byte("same plaintext"))
	if bytes.Equal(a, b) {
		t.Fatal("two encryptions of the same plaintext are identical")
	}
}

func TestProbabilisticAuthenticates(t *testing.T) {
	p, err := NewProbabilistic(testKeys().Enc)
	if err != nil {
		t.Fatal(err)
	}
	ct, _ := p.Encrypt([]byte("secret"))
	ct[len(ct)-1] ^= 0xFF
	if _, err := p.Decrypt(ct); err == nil {
		t.Fatal("tampered ciphertext decrypted")
	}
	if _, err := p.Decrypt([]byte{1, 2}); err == nil {
		t.Fatal("short ciphertext decrypted")
	}
}

func TestProbabilisticBadKey(t *testing.T) {
	if _, err := NewProbabilistic([]byte("short")); err == nil {
		t.Fatal("bad key size accepted")
	}
}

func TestDeterministicIsDeterministic(t *testing.T) {
	ks := testKeys()
	d, err := NewDeterministic(ks.Det, ks.Nonce)
	if err != nil {
		t.Fatal(err)
	}
	a := d.Encrypt([]byte("v"))
	b := d.Encrypt([]byte("v"))
	if !bytes.Equal(a, b) {
		t.Fatal("deterministic cipher produced distinct ciphertexts")
	}
	c := d.Encrypt([]byte("w"))
	if bytes.Equal(a, c) {
		t.Fatal("distinct plaintexts collide")
	}
	got, err := d.Decrypt(a)
	if err != nil || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("decrypt = %q, %v", got, err)
	}
	if _, err := d.Decrypt([]byte{0}); err == nil {
		t.Fatal("short ciphertext decrypted")
	}
}

func TestPRFStableAndKeyed(t *testing.T) {
	a := PRF([]byte("k1"), []byte("data"))
	b := PRF([]byte("k1"), []byte("data"))
	c := PRF([]byte("k2"), []byte("data"))
	if !bytes.Equal(a, b) {
		t.Error("PRF not deterministic")
	}
	if bytes.Equal(a, c) {
		t.Error("PRF ignores key")
	}
	if !Equal(a, b) || Equal(a, c) {
		t.Error("Equal misbehaves")
	}
}

func TestPRF2SeparatesInputs(t *testing.T) {
	// ("ab","c") and ("a","bc") must not collide thanks to the separator.
	if bytes.Equal(PRF2([]byte("k"), []byte("ab"), []byte("c")),
		PRF2([]byte("k"), []byte("a"), []byte("bc"))) {
		t.Fatal("PRF2 input boundary ambiguity")
	}
}

func TestArxTokensUniquePerOccurrence(t *testing.T) {
	a := NewArxTokenizer(testKeys().Arx)
	toks := a.Tokens([]byte("v"), 100)
	seen := make(map[string]bool)
	for _, tok := range toks {
		if seen[string(tok)] {
			t.Fatal("duplicate occurrence token")
		}
		seen[string(tok)] = true
	}
	// Regenerated tokens match.
	if !bytes.Equal(a.Token([]byte("v"), 7), toks[7]) {
		t.Fatal("token regeneration mismatch")
	}
	// Different values do not collide.
	if bytes.Equal(a.Token([]byte("v"), 0), a.Token([]byte("w"), 0)) {
		t.Fatal("tokens of distinct values collide")
	}
}
