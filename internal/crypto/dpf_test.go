package crypto

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestDPFPointFunction(t *testing.T) {
	const bits = 6
	const n = 1 << bits
	for _, alpha := range []uint64{0, 1, 31, 63} {
		k0, k1, err := DPFGen(alpha, bits, nil)
		if err != nil {
			t.Fatal(err)
		}
		for x := uint64(0); x < n; x++ {
			b0, err := DPFEval(k0, x, bits)
			if err != nil {
				t.Fatal(err)
			}
			b1, err := DPFEval(k1, x, bits)
			if err != nil {
				t.Fatal(err)
			}
			want := byte(0)
			if x == alpha {
				want = 1
			}
			if b0^b1 != want {
				t.Fatalf("alpha=%d x=%d: shares %d^%d != %d", alpha, x, b0, b1, want)
			}
		}
	}
}

func TestDPFProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 40,
		Values: func(args []reflect.Value, r *rand.Rand) {
			bits := 1 + r.Intn(10)
			args[0] = reflect.ValueOf(bits)
			args[1] = reflect.ValueOf(uint64(r.Intn(1 << uint(bits))))
		},
	}
	prop := func(bits int, alpha uint64) bool {
		k0, k1, err := DPFGen(alpha, bits, nil)
		if err != nil {
			return false
		}
		n := 1 << uint(bits)
		v0, err := DPFEvalAll(k0, n, bits)
		if err != nil {
			return false
		}
		v1, err := DPFEvalAll(k1, n, bits)
		if err != nil {
			return false
		}
		for x := 0; x < n; x++ {
			want := byte(0)
			if uint64(x) == alpha {
				want = 1
			}
			if v0[x]^v1[x] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestDPFKeysLookIndependent(t *testing.T) {
	// A single key's evaluation must not reveal alpha: compare the share
	// vector of two different alphas under fresh keys — both should be
	// non-constant, and knowing only one share vector should not pinpoint
	// alpha (weak sanity check: the share at alpha is not always 1).
	const bits = 8
	onesAtAlpha := 0
	const trials = 50
	for i := 0; i < trials; i++ {
		alpha := uint64(i % (1 << bits))
		k0, _, err := DPFGen(alpha, bits, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := DPFEval(k0, alpha, bits)
		if err != nil {
			t.Fatal(err)
		}
		if b == 1 {
			onesAtAlpha++
		}
	}
	if onesAtAlpha == 0 || onesAtAlpha == trials {
		t.Fatalf("single share at alpha is constant (%d/%d): key leaks the point", onesAtAlpha, trials)
	}
}

func TestDPFValidation(t *testing.T) {
	if _, _, err := DPFGen(5, 0, nil); err == nil {
		t.Error("zero bits accepted")
	}
	if _, _, err := DPFGen(4, 2, nil); err == nil {
		t.Error("alpha outside domain accepted")
	}
	k0, _, err := DPFGen(1, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DPFEval(k0, 9, 3); err == nil {
		t.Error("x outside domain accepted")
	}
	if _, err := DPFEval(k0, 1, 4); err == nil {
		t.Error("bits mismatch accepted")
	}
}

func TestDPFDomainBits(t *testing.T) {
	cases := []struct{ n, want int }{{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1000, 10}}
	for _, c := range cases {
		if got := DPFDomainBits(c.n); got != c.want {
			t.Errorf("DPFDomainBits(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
