package crypto

import "encoding/binary"

// ArxTokenizer implements the indexable encoding of Arx (Poddar et al.)
// described in §VI: the i-th occurrence of a value v is encrypted as the
// concatenated string <v, i>, so no two occurrences share a ciphertext, yet
// the owner — who tracks the occurrence histogram — can regenerate every
// token for v and probe a cloud-side index.
//
// On its own this scheme leaks output sizes, value frequencies (through the
// number of trapdoors issued), and the query workload; QB removes those
// leaks.
type ArxTokenizer struct {
	key []byte
}

// NewArxTokenizer builds a tokenizer over the given PRF key.
func NewArxTokenizer(key []byte) *ArxTokenizer {
	k := make([]byte, len(key))
	copy(k, key)
	return &ArxTokenizer{key: k}
}

// Token produces the deterministic index token for the i-th occurrence
// (0-based) of the encoded value.
func (a *ArxTokenizer) Token(value []byte, i uint32) []byte {
	var ctr [4]byte
	binary.BigEndian.PutUint32(ctr[:], i)
	return PRF2(a.key, value, ctr[:])
}

// Tokens produces all n occurrence tokens for a value, i.e. the trapdoor
// set the owner sends to retrieve every tuple with that value.
func (a *ArxTokenizer) Tokens(value []byte, n int) [][]byte {
	out := make([][]byte, n)
	for i := 0; i < n; i++ {
		out[i] = a.Token(value, uint32(i))
	}
	return out
}
