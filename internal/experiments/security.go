package experiments

import (
	"fmt"

	"repro/internal/adversary"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

// SecurityAblation runs the §VI claim end to end: a weak indexable
// technique (DetIndex or Arx) is attacked with the size, frequency-count
// and workload-skew attacks, with naive per-value queries and then with QB.
// QB must defeat every attack the raw technique is prone to.
func SecurityAblation(seed int64) (*Table, error) {
	// Skewed dataset: one heavy hitter plus singletons, all associated.
	s := relation.MustSchema("Ablation",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindInt},
	)
	rel := relation.New(s)
	sensIDs := make(map[int]bool)
	var values []relation.Value
	var aux []relation.ValueCount
	for v := 0; v < 16; v++ {
		values = append(values, relation.Int(int64(v)))
		n := 2 + v*3 // strictly increasing counts: unambiguous frequency ranks
		aux = append(aux, relation.ValueCount{Value: relation.Int(int64(v)), Count: n})
		for i := 0; i < n; i++ {
			id := rel.MustInsert(relation.Int(int64(v)), relation.Int(int64(i)))
			sensIDs[id] = true
		}
		rel.MustInsert(relation.Int(int64(v)), relation.Int(-1))
	}
	pred := func(tp relation.Tuple) bool { return sensIDs[tp.ID] }
	queries := make([]relation.Value, 0, 64)
	for r := 0; r < 4; r++ { // skew: value v queried (16-v) times
		for v := 0; v < 16; v++ {
			for k := 0; k < (16-v)/4+1; k++ {
				queries = append(queries, relation.Int(int64(v)))
			}
		}
	}

	t := &Table{
		Title: "Security ablation (§VI): attacks vs technique, naive and with QB",
		Header: []string{"technique", "mode", "size attack", "freq attack acc",
			"workload anonymity", "inference exposures"},
		Notes: "QB must turn every 'yes'/high-accuracy cell into 'no'/low",
	}

	type build func() (technique.Technique, error)
	ks := crypto.DeriveKeys([]byte("ablation"))
	techs := []struct {
		name string
		mk   build
	}{
		{"DetIndex", func() (technique.Technique, error) { return technique.NewDetIndex(ks) }},
		{"Arx", func() (technique.Technique, error) { return technique.NewArx(ks) }},
	}

	for _, tc := range techs {
		for _, useQB := range []bool{false, true} {
			tech, err := tc.mk()
			if err != nil {
				return nil, err
			}
			o := owner.New(tech, "K")
			opts := binOpts(uint64(seed))
			if !useQB {
				// Naive mode also skips padding, as a raw deployment would.
				opts.DisableFakePadding = true
			}
			if err := o.Outsource(rel.Clone(), pred, opts); err != nil {
				return nil, err
			}
			for _, q := range queries {
				if useQB {
					_, _, err = o.Query(q)
				} else {
					_, _, err = o.QueryNaive(q)
				}
				if err != nil {
					return nil, err
				}
			}
			views := o.Server().Views()
			size := adversary.SizeAttack(views)
			ws := adversary.WorkloadSkewAttack(views, len(values))
			inf := adversary.InferenceAttack(views)

			freqAcc := 0.0
			if store := storeOf(tech); store != nil {
				truth := truthFor(tc.name, ks, aux)
				guesses := adversary.FrequencyAttack(store, aux)
				freqAcc = adversary.ScoreFrequencyAttack(guesses, truth)
			}
			mode := "naive"
			if useQB {
				mode = "QB"
			}
			t.AddRow(tc.name, mode,
				yesNo(size.Distinguishable),
				f2(freqAcc),
				fmt.Sprintf("%d", ws.AnonymitySet),
				fmt.Sprintf("%d", len(inf.ByValue)))
		}
	}
	return t, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// storeOf exposes the cloud-side encrypted store of the indexable
// techniques so the frequency attack can read the tokens at rest.
func storeOf(t technique.Technique) technique.EncStore {
	switch tt := t.(type) {
	case *technique.DetIndex:
		return tt.Store()
	case *technique.Arx:
		return tt.Store()
	}
	return nil
}

// truthFor builds the ground-truth token->value map for the frequency
// attack against DetIndex (Arx tokens are per-occurrence, so the attack has
// no stable target and scores ~0 regardless).
func truthFor(name string, ks *crypto.KeySet, aux []relation.ValueCount) map[string]relation.Value {
	truth := make(map[string]relation.Value)
	if name != "DetIndex" {
		return truth
	}
	det, err := crypto.NewDeterministic(ks.Det, ks.Nonce)
	if err != nil {
		return truth
	}
	for _, vc := range aux {
		truth[string(det.Encrypt(vc.Value.Encode()))] = vc.Value
	}
	return truth
}

// binShapes summarises the binning a configuration produces; used by the
// demo command.
func binShapes(b *core.Bins) string {
	return fmt.Sprintf("%d sensitive bins, %d non-sensitive bins, %d fake tuples, target volume %d",
		b.SensitiveBinCount(), b.NonSensitiveBinCount(), b.TotalFakeTuples(), b.TargetVolume)
}

// BinShapeFor reports the binning shape for a generated dataset; exposed
// for the demo command.
func BinShapeFor(tuples, distinct int, alpha float64, seed int64) (string, error) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: tuples, DistinctValues: distinct, Alpha: alpha, Seed: seed,
	})
	if err != nil {
		return "", err
	}
	rs, rns := relation.Partition(ds.Relation, ds.Sensitive)
	sc, err := rs.DistinctCounts(workload.Attr)
	if err != nil {
		return "", err
	}
	nc, err := rns.DistinctCounts(workload.Attr)
	if err != nil {
		return "", err
	}
	bins, err := core.CreateBins(sc, nc, binOpts(uint64(seed)))
	if err != nil {
		return "", err
	}
	return binShapes(bins), nil
}
