package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

// renderView renders one adversarial view row the way Tables II-V do:
// E(tX) for encrypted tuples (by cloud address) and the plaintext tuple ids
// for the non-sensitive side.
func renderView(v cloud.View) (enc, plain string) {
	if len(v.EncResultAddrs) == 0 {
		enc = "null"
	} else {
		addrs := append([]int(nil), v.EncResultAddrs...)
		sort.Ints(addrs)
		parts := make([]string, len(addrs))
		for i, a := range addrs {
			parts[i] = fmt.Sprintf("E(#%d)", a)
		}
		enc = strings.Join(parts, ",")
	}
	if len(v.PlainResults) == 0 {
		plain = "null"
	} else {
		parts := make([]string, len(v.PlainResults))
		for i, t := range v.PlainResults {
			parts[i] = fmt.Sprintf("t%d", t.ID+1) // the paper numbers tuples from 1
		}
		plain = strings.Join(parts, ",")
	}
	return enc, plain
}

// TablesIIandIII replays Example 2 on the Employee relation: first naively
// (Table II, leaking each employee's classification), then through QB
// (Table III, every view covering whole bins).
func TablesIIandIII() (naive, qb *Table, err error) {
	queries := []string{"E259", "E101", "E199"}

	run := func(useQB bool) (*Table, error) {
		tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("table2")))
		if err != nil {
			return nil, err
		}
		o := owner.New(tech, "EId")
		if err := o.Outsource(workload.Employee(), workload.EmployeeSensitive, binOpts(42)); err != nil {
			return nil, err
		}
		for _, q := range queries {
			if useQB {
				_, _, err = o.Query(relation.Str(q))
			} else {
				_, _, err = o.QueryNaive(relation.Str(q))
			}
			if err != nil {
				return nil, err
			}
		}
		title := "Table II: adversarial views, naive partitioned execution"
		if useQB {
			title = "Table III: adversarial views under QB"
		}
		t := &Table{
			Title:  title,
			Header: []string{"query", "plaintext predicates", "encrypted results", "plaintext results"},
		}
		for i, v := range o.Server().Views() {
			enc, plain := renderView(v)
			preds := make([]string, len(v.PlainValues))
			for j, pv := range v.PlainValues {
				preds[j] = pv.String()
			}
			t.AddRow(queries[i], strings.Join(preds, ","), enc, plain)
		}
		return t, nil
	}

	naive, err = run(false)
	if err != nil {
		return nil, nil, err
	}
	qb, err = run(true)
	return naive, qb, err
}

// TableIVandFigure4 reproduces Example 3 and the surviving-matches
// analysis: 10 sensitive and 10 non-sensitive values (5 associated), all
// values queried, and the observed bin-association graph reported. A
// complete bipartite graph is Figure 4a; the dropped count for naive
// execution is Figure 4b.
func TableIVandFigure4() (*Table, error) {
	// Build the Example 3 relation: values 0..9 sensitive, values 0..4
	// also non-sensitive, plus 5 exclusively non-sensitive values 100..104.
	s := relation.MustSchema("Example3",
		relation.Column{Name: "K", Kind: relation.KindInt},
		relation.Column{Name: "P", Kind: relation.KindInt},
	)
	rel := relation.New(s)
	sens := make(map[int]bool)
	var values []relation.Value
	for v := 0; v < 10; v++ {
		id := rel.MustInsert(relation.Int(int64(v)), relation.Int(0))
		sens[id] = true
		values = append(values, relation.Int(int64(v)))
	}
	for v := 0; v < 5; v++ {
		rel.MustInsert(relation.Int(int64(v)), relation.Int(1))
	}
	for v := 100; v < 105; v++ {
		rel.MustInsert(relation.Int(int64(v)), relation.Int(1))
		values = append(values, relation.Int(int64(v)))
	}
	pred := func(tp relation.Tuple) bool { return sens[tp.ID] }

	run := func(useQB bool) (*adversaryStats, error) {
		tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("table4")))
		if err != nil {
			return nil, err
		}
		o := owner.New(tech, "K")
		if err := o.Outsource(rel.Clone(), pred, binOpts(11)); err != nil {
			return nil, err
		}
		for _, v := range values {
			if useQB {
				_, _, err = o.Query(v)
			} else {
				_, _, err = o.QueryNaive(v)
			}
			if err != nil {
				return nil, err
			}
		}
		return analyzeBins(o), nil
	}

	qb, err := run(true)
	if err != nil {
		return nil, err
	}
	naive, err := run(false)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Table IV/V + Figure 4: surviving matches of bins (Example 3: 10 sensitive, 10 non-sensitive values)",
		Header: []string{"execution", "sens footprints", "ns footprints", "edges", "complete bipartite", "dropped matches"},
		Notes:  "complete bipartite = Figure 4a (secure); dropped matches = Figure 4b (leaky)",
	}
	for _, r := range []struct {
		name string
		st   *adversaryStats
	}{{"QB (Algorithm 2)", qb}, {"naive retrieval", naive}} {
		t.AddRow(r.name,
			fmt.Sprintf("%d", r.st.sensGroups), fmt.Sprintf("%d", r.st.nsGroups),
			fmt.Sprintf("%d", r.st.edges),
			fmt.Sprintf("%v", r.st.complete), fmt.Sprintf("%d", r.st.dropped))
	}
	return t, nil
}

type adversaryStats struct {
	sensGroups, nsGroups, edges, dropped int
	complete                             bool
}

func analyzeBins(o *owner.Owner) *adversaryStats {
	type pair = [2]string
	sensSet := make(map[string]bool)
	nsSet := make(map[string]bool)
	edges := make(map[pair]bool)
	for _, v := range o.Server().Views() {
		var sk, nk string
		if v.EncPredicates > 0 {
			addrs := append([]int(nil), v.EncResultAddrs...)
			sort.Ints(addrs)
			sk = fmt.Sprint(addrs)
			sensSet[sk] = true
		}
		if len(v.PlainValues) > 0 {
			keys := make([]string, len(v.PlainValues))
			for i, pv := range v.PlainValues {
				keys[i] = pv.Key()
			}
			sort.Strings(keys)
			nk = strings.Join(keys, "|")
			nsSet[nk] = true
		}
		if sk != "" && nk != "" {
			edges[pair{sk, nk}] = true
		}
	}
	st := &adversaryStats{
		sensGroups: len(sensSet),
		nsGroups:   len(nsSet),
		edges:      len(edges),
	}
	st.dropped = st.sensGroups*st.nsGroups - st.edges
	st.complete = st.dropped == 0
	return st
}

// FigureV compares sensitive-value-to-bin assignment strategies on the
// Example 5 workload (9 values with 10..90 tuples, 3 bins) by the number of
// fake tuples each needs: the contiguous split of Figure 5a, naive
// round-robin, and the §IV-B greedy allocation (Figure 5b).
func FigureV() *Table {
	counts := []int{10, 20, 30, 40, 50, 60, 70, 80, 90}
	const bins = 3

	fakesFor := func(assign func() [][]int) int {
		vols := make([]int, bins)
		for b, vals := range assign() {
			for _, c := range vals {
				vols[b] += c
			}
		}
		maxVol := 0
		for _, v := range vols {
			if v > maxVol {
				maxVol = v
			}
		}
		total := 0
		for _, v := range vols {
			total += maxVol - v
		}
		return total
	}

	contiguous := func() [][]int {
		return [][]int{counts[0:3], counts[3:6], counts[6:9]}
	}
	roundRobin := func() [][]int {
		out := make([][]int, bins)
		for i, c := range counts {
			out[i%bins] = append(out[i%bins], c)
		}
		return out
	}
	greedy := func() [][]int {
		// Descending greedy least-loaded, the §IV-B strategy.
		sorted := append([]int(nil), counts...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		out := make([][]int, bins)
		vols := make([]int, bins)
		for _, c := range sorted {
			best := 0
			for b := 1; b < bins; b++ {
				if len(out[b]) < 3 && (len(out[best]) >= 3 || vols[b] < vols[best]) {
					best = b
				}
			}
			out[best] = append(out[best], c)
			vols[best] += c
		}
		return out
	}

	t := &Table{
		Title:  "Figure 5: fake tuples needed per assignment strategy (9 values, 10..90 tuples, 3 bins)",
		Header: []string{"strategy", "fake tuples"},
		Notes:  "paper: contiguous (Fig 5a) needs 270; the greedy allocation (Fig 5b) minimises padding",
	}
	t.AddRow("contiguous (Figure 5a)", fmt.Sprintf("%d", fakesFor(contiguous)))
	t.AddRow("round-robin", fmt.Sprintf("%d", fakesFor(roundRobin)))
	t.AddRow("greedy least-loaded (Figure 5b)", fmt.Sprintf("%d", fakesFor(greedy)))
	return t
}

// TableVI reproduces the QB x Opaque / Jana timing table: per-query time at
// sensitivity 1-60% using the calibrated cost models (Opaque: 89 s full
// scan over 6M tuples; Jana: 1051 s over 1M tuples). With QB only the
// sensitive partition is scanned obliviously.
func TableVI() (*Table, error) {
	ks := crypto.DeriveKeys([]byte("table6"))
	opq, err := technique.NewSimOpaque(ks)
	if err != nil {
		return nil, err
	}
	jana, err := technique.NewSimJana(ks)
	if err != nil {
		return nil, err
	}
	sensitivities := []float64{0.01, 0.05, 0.20, 0.40, 0.60}

	t := &Table{
		Title:  "Table VI: time (seconds) when mixing QB with Opaque and Jana",
		Header: []string{"technique", "1%", "5%", "20%", "40%", "60%", "no-QB (100%)"},
		Notes:  "simulated via calibrated cost models; paper rows shown for comparison",
	}
	row := func(name string, sim *technique.Simulated, total int) {
		cells := []string{name}
		for _, a := range sensitivities {
			d := sim.SimulateFullScan(int(a * float64(total)))
			cells = append(cells, fmt.Sprintf("%.0f", d.Seconds()))
		}
		cells = append(cells, fmt.Sprintf("%.0f", sim.SimulateFullScan(total).Seconds()))
		t.AddRow(cells...)
	}
	row("SGX-based Opaque (6M tuples)", opq, 6_000_000)
	t.AddRow("  paper", "11", "15", "26", "42", "59", "89")
	row("MPC-based Jana (1M tuples)", jana, 1_000_000)
	t.AddRow("  paper", "22", "80", "270", "505", "749", "1051")
	return t, nil
}

// MetadataSizes reports the owner-side binning metadata for a TPC-H style
// LINEITEM sample, the quantity §V-B reports (13.6 MB for L_PARTKEY, 0.65
// MB for L_SUPPKEY at full scale): metadata grows with the attribute's
// domain, not the database size.
func MetadataSizes(tuples int, seed int64) (*Table, error) {
	ds, err := workload.LineItem(workload.TPCHSpec{Tuples: tuples, Alpha: 0.3, Seed: seed})
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:  "Owner-side metadata size (TPC-H style LINEITEM)",
		Header: []string{"attribute", "distinct values", "metadata bytes"},
		Notes:  "metadata is proportional to the attribute domain, independent of |DB|",
	}
	for _, attr := range []string{"L_PARTKEY", "L_SUPPKEY"} {
		rs, rns := relation.Partition(ds.Relation, ds.Sensitive)
		sc, err := rs.DistinctCounts(attr)
		if err != nil {
			return nil, err
		}
		nc, err := rns.DistinctCounts(attr)
		if err != nil {
			return nil, err
		}
		bins, err := core.CreateBins(sc, nc, binOpts(uint64(seed)))
		if err != nil {
			return nil, err
		}
		t.AddRow(attr, fmt.Sprintf("%d", len(sc)+len(nc)), fmt.Sprintf("%d", bins.MetadataBytes()))
	}
	return t, nil
}

// InsertCost measures the extension experiment from the full version: the
// cost of inserts, including re-binning when the value is new.
func InsertCost(tuples int, inserts int, seed int64) (*Table, error) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples: tuples, DistinctValues: tuples / 10, Alpha: 0.4, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("insert")))
	if err != nil {
		return nil, err
	}
	o := owner.New(tech, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, binOpts(uint64(seed))); err != nil {
		return nil, err
	}
	schema := ds.Relation.Schema

	makeTuple := func(id int, v int64) relation.Tuple {
		vals := make([]relation.Value, schema.Arity())
		for i := range vals {
			vals[i] = relation.Int(0)
		}
		vals[0] = relation.Int(v)
		return relation.Tuple{ID: id, Values: vals}
	}

	t := &Table{
		Title:  "Insert cost (full-version extension)",
		Header: []string{"kind", "inserts", "total time", "per insert"},
	}
	// Existing values: no re-binning.
	start := time.Now()
	for i := 0; i < inserts; i++ {
		if err := o.Insert(makeTuple(1_000_000+i, int64(i%(tuples/10))), i%2 == 0); err != nil {
			return nil, err
		}
	}
	d := time.Since(start)
	t.AddRow("existing values", fmt.Sprintf("%d", inserts),
		d.Round(time.Microsecond).String(), (d / time.Duration(inserts)).Round(time.Microsecond).String())

	// New values: force re-binning.
	start = time.Now()
	for i := 0; i < inserts; i++ {
		if err := o.Insert(makeTuple(2_000_000+i, int64(10_000_000+i)), i%2 == 0); err != nil {
			return nil, err
		}
	}
	d = time.Since(start)
	t.AddRow("new values (re-binning)", fmt.Sprintf("%d", inserts),
		d.Round(time.Microsecond).String(), (d / time.Duration(inserts)).Round(time.Microsecond).String())
	return t, nil
}
