package experiments

import (
	"fmt"
	mrand "math/rand/v2"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

func binOpts(seed uint64) core.Options {
	return core.Options{Rand: mrand.New(mrand.NewPCG(seed, seed^0xa5a5a5a5))}
}

// Figure6a reproduces the analytical efficiency graph: η as a function of γ
// for α ∈ {0.3, 0.6, 0.9, 1} at ρ = 10%, using η = α + ρ(|SB|+|NSB|)/γ.
func Figure6a() *Table {
	alphas := []float64{0.3, 0.6, 0.9, 1.0}
	gammas := []float64{100, 1000, 5000, 10000, 20000, 30000, 40000, 50000}
	const rho = 0.10
	const nNS = 1_000_000
	series := costmodel.Figure6aSeries(alphas, gammas, rho, nNS)

	t := &Table{
		Title:  "Figure 6a: eta vs gamma (rho=10%, |SB|=|NSB|=sqrt(|NS|))",
		Header: []string{"gamma", "alpha=0.3", "alpha=0.6", "alpha=0.9", "alpha=1.0"},
		Notes:  "eta < 1 means QB beats full encryption; eta -> alpha as gamma grows",
	}
	for i, g := range gammas {
		row := []string{fmt.Sprintf("%.0f", g)}
		for _, a := range alphas {
			row = append(row, f3(series[a][i].Y))
		}
		t.AddRow(row...)
	}
	return t
}

// Fig6bSpec parameterises the experimental η measurement.
type Fig6bSpec struct {
	// Sizes are the dataset tuple counts (the paper uses 150K, 1.5M,
	// 4.5M; tests use smaller sizes).
	Sizes []int
	// Alphas are the sensitivity fractions to sweep.
	Alphas []float64
	// Queries is the number of measured queries per point.
	Queries int
	// Seed fixes data generation and binning.
	Seed int64
}

// DefaultFig6b returns the configuration used by cmd/qbbench (scaled down
// 10x from the paper so a laptop run finishes in minutes; pass -full for
// the paper sizes).
func DefaultFig6b() Fig6bSpec {
	return Fig6bSpec{
		Sizes:   []int{15_000, 150_000, 450_000},
		Alphas:  []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Queries: 5,
		Seed:    1,
	}
}

// Figure6b measures η experimentally: the wall-clock of a QB query (NoInd
// over the sensitive partition + indexed plaintext search) divided by the
// wall-clock of the same query over a fully encrypted dataset, for several
// database sizes and sensitivities. η < 1 for every size reproduces the
// robustness claim.
func Figure6b(spec Fig6bSpec) (*Table, error) {
	t := &Table{
		Title:  "Figure 6b: measured eta vs alpha per dataset size (NoInd technique)",
		Header: []string{"tuples", "alpha", "t_QB/query", "t_full/query", "eta"},
		Notes:  "NoInd = non-deterministic encryption with owner-side attribute decryption (systems A/B)",
	}
	for _, size := range spec.Sizes {
		for _, alpha := range spec.Alphas {
			ds, err := workload.Generate(workload.GenSpec{
				Tuples:         size,
				DistinctValues: size / 10,
				Alpha:          alpha,
				AssocFraction:  0.5,
				Seed:           spec.Seed,
			})
			if err != nil {
				return nil, err
			}
			tQB, err := avgQueryTime(ds, ds.Sensitive, spec)
			if err != nil {
				return nil, err
			}
			// Full encryption: every tuple is sensitive.
			tFull, err := avgQueryTime(ds, func(relation.Tuple) bool { return true }, spec)
			if err != nil {
				return nil, err
			}
			eta := float64(tQB) / float64(tFull)
			t.AddRow(fmt.Sprintf("%d", size), f2(alpha),
				tQB.Round(time.Microsecond).String(),
				tFull.Round(time.Microsecond).String(),
				f3(eta))
		}
	}
	return t, nil
}

func avgQueryTime(ds *workload.Dataset, pred relation.Predicate, spec Fig6bSpec) (time.Duration, error) {
	tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("fig6b")))
	if err != nil {
		return 0, err
	}
	o := owner.New(tech, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), pred, binOpts(uint64(spec.Seed))); err != nil {
		return 0, err
	}
	queries := workload.QueryStream(ds, workload.QuerySpec{Queries: spec.Queries, Seed: spec.Seed + 7})
	start := time.Now()
	for _, q := range queries {
		if _, _, err := o.Query(q); err != nil {
			return 0, err
		}
	}
	if len(queries) == 0 {
		return 0, nil
	}
	return time.Since(start) / time.Duration(len(queries)), nil
}

// Fig6cSpec parameterises the bin-size sweep.
type Fig6cSpec struct {
	// Tuples and DistinctValues size the dataset.
	Tuples, DistinctValues int
	// Queries per point.
	Queries int
	// Seed fixes generation.
	Seed int64
}

// DefaultFig6c returns the configuration used by cmd/qbbench.
func DefaultFig6c() Fig6cSpec {
	return Fig6cSpec{Tuples: 60_000, DistinctValues: 3_600, Queries: 8, Seed: 2}
}

// Figure6c measures average selection time as a function of the imbalance
// between the sensitive and non-sensitive bin sizes, by forcing the number
// of sensitive bins away from the optimal sqrt split. The minimum lands at
// |SB| = |NSB| (imbalance 0), the paper's optimality claim.
func Figure6c(spec Fig6cSpec) (*Table, error) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples:         spec.Tuples,
		DistinctValues: spec.DistinctValues,
		Alpha:          0.5,
		AssocFraction:  1.0,
		Seed:           spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	// Count distinct sensitive values to derive bin shapes.
	rs, _ := relation.Partition(ds.Relation, ds.Sensitive)
	sCounts, err := rs.DistinctCounts(workload.Attr)
	if err != nil {
		return nil, err
	}
	nSens := len(sCounts)

	t := &Table{
		Title:  "Figure 6c: avg selection time vs ||SB|-|NSB|| bin-size imbalance",
		Header: []string{"sens bins", "|SB|", "|NSB|", "imbalance", "time/query"},
		Notes:  "minimum expected at |SB| = |NSB| = sqrt(|NS|)",
	}
	opt := core.NearestSquareRoot(nSens)
	for _, x := range []int{opt / 8, opt / 4, opt / 2, opt, opt * 2, opt * 4, opt * 8} {
		if x < 1 || x > nSens {
			continue
		}
		// An indexable technique makes the per-query cost proportional to
		// the number of predicates and retrieved tuples (|SB| + |NSB|),
		// which is what the bin-size tradeoff governs; a scan-based
		// technique would flatten the curve under its fixed scan cost.
		tech, err := technique.NewDetIndex(crypto.DeriveKeys([]byte("fig6c")))
		if err != nil {
			return nil, err
		}
		o := owner.New(tech, workload.Attr)
		opts := binOpts(uint64(spec.Seed))
		opts.ForcedBinCount = x
		if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, opts); err != nil {
			return nil, err
		}
		sbSize := (nSens + x - 1) / x
		nsbSize := x
		imb := sbSize - nsbSize
		if imb < 0 {
			imb = -imb
		}
		queries := workload.QueryStream(ds, workload.QuerySpec{Queries: spec.Queries, Seed: spec.Seed + 3})
		start := time.Now()
		for _, q := range queries {
			if _, _, err := o.Query(q); err != nil {
				return nil, err
			}
		}
		avg := time.Since(start) / time.Duration(len(queries))
		t.AddRow(fmt.Sprintf("%d", x), fmt.Sprintf("%d", sbSize), fmt.Sprintf("%d", nsbSize),
			fmt.Sprintf("%d", imb), avg.Round(time.Microsecond).String())
	}
	return t, nil
}
