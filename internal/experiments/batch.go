package experiments

import (
	"fmt"
	"runtime"
	"slices"
	"time"

	"repro/internal/crypto"
	"repro/internal/owner"
	"repro/internal/relation"
	"repro/internal/technique"
	"repro/internal/workload"
)

// BatchSpec parameterises the batch-throughput experiment: how much a
// bounded worker pool speeds a stream of independent QB selections up over
// the sequential owner loop.
type BatchSpec struct {
	// Tuples and DistinctValues size the synthetic relation.
	Tuples         int
	DistinctValues int
	// Alpha is the sensitive fraction.
	Alpha float64
	// Queries is the batch size.
	Queries int
	// Workers are the pool sizes to sweep (0 means GOMAXPROCS).
	Workers []int
	// Seed fixes data generation, binning and the query stream.
	Seed int64
}

// DefaultBatch returns the configuration used by cmd/qbbench.
func DefaultBatch() BatchSpec {
	return BatchSpec{
		Tuples:         20_000,
		DistinctValues: 2_000,
		Alpha:          0.3,
		Queries:        256,
		Workers:        []int{1, 2, 4, 0},
		Seed:           1,
	}
}

// BatchThroughput measures the concurrent batch query engine: a fixed
// query stream is executed once through the sequential Query loop and once
// through QueryBatch per worker count, reporting queries/sec and the
// speedup over sequential. Results are checked for equivalence along the
// way — a mismatch fails the experiment rather than reporting a wrong
// speedup.
func BatchThroughput(spec BatchSpec) (*Table, error) {
	ds, err := workload.Generate(workload.GenSpec{
		Tuples:         spec.Tuples,
		DistinctValues: spec.DistinctValues,
		Alpha:          spec.Alpha,
		AssocFraction:  0.5,
		Seed:           spec.Seed,
	})
	if err != nil {
		return nil, err
	}
	tech, err := technique.NewNoInd(crypto.DeriveKeys([]byte("batch-throughput")))
	if err != nil {
		return nil, err
	}
	o := owner.New(tech, workload.Attr)
	if err := o.Outsource(ds.Relation.Clone(), ds.Sensitive, binOpts(uint64(spec.Seed))); err != nil {
		return nil, err
	}
	ws := workload.QueryStream(ds, workload.QuerySpec{Queries: spec.Queries, Seed: spec.Seed + 1})

	start := time.Now()
	seq := make([][]int, len(ws))
	for i, w := range ws {
		ts, _, err := o.Query(w)
		if err != nil {
			return nil, err
		}
		seq[i] = relation.IDs(ts)
	}
	seqDur := time.Since(start)
	o.Server().ResetViews()

	t := &Table{
		Title:  "Batch engine: queries/sec vs worker count (NoInd technique)",
		Header: []string{"mode", "workers", "total", "queries/sec", "speedup"},
		Notes: fmt.Sprintf("batch of %d selections over %d tuples (alpha=%.1f); GOMAXPROCS=%d",
			spec.Queries, spec.Tuples, spec.Alpha, runtime.GOMAXPROCS(0)),
	}
	qps := func(d time.Duration) float64 { return float64(len(ws)) / d.Seconds() }
	t.AddRow("sequential", "1", seqDur.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0f", qps(seqDur)), "1.00x")

	for _, workers := range spec.Workers {
		eff := workers
		if eff <= 0 {
			eff = runtime.GOMAXPROCS(0)
		}
		start := time.Now()
		out, _, err := o.QueryBatch(ws, workers)
		dur := time.Since(start)
		if err != nil {
			return nil, err
		}
		o.Server().ResetViews()
		for i := range out {
			if !slices.Equal(relation.IDs(out[i]), seq[i]) {
				return nil, fmt.Errorf("experiments: batch result %d returned IDs %v, sequential returned %v",
					i, relation.IDs(out[i]), seq[i])
			}
		}
		t.AddRow("batch", fmt.Sprintf("%d", eff), dur.Round(time.Microsecond).String(),
			fmt.Sprintf("%.0f", qps(dur)), fmt.Sprintf("%.2fx", seqDur.Seconds()/dur.Seconds()))
	}
	return t, nil
}
