package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestFigure6aShape(t *testing.T) {
	tab := Figure6a()
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Column per alpha; eta decreases down each column (gamma grows) and
	// approaches alpha.
	for col, alpha := range []float64{0.3, 0.6, 0.9, 1.0} {
		var prev float64 = 1e9
		for _, row := range tab.Rows {
			v, err := strconv.ParseFloat(row[col+1], 64)
			if err != nil {
				t.Fatal(err)
			}
			if v > prev {
				t.Errorf("alpha %v: eta not decreasing in gamma", alpha)
			}
			prev = v
		}
		if prev < alpha || prev > alpha+0.1 {
			t.Errorf("alpha %v: final eta %v", alpha, prev)
		}
	}
}

func TestFigure6bSmall(t *testing.T) {
	tab, err := Figure6b(Fig6bSpec{
		Sizes: []int{3000}, Alphas: []float64{0.2, 0.5}, Queries: 3, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		eta, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		// QB over a half-sensitive dataset must clearly beat full
		// encryption (generous bound for timing noise).
		if eta >= 1.0 {
			t.Errorf("alpha %s: measured eta %v >= 1", row[1], eta)
		}
	}
}

func TestFigure6cSmall(t *testing.T) {
	tab, err := Figure6c(Fig6cSpec{Tuples: 4000, DistinctValues: 400, Queries: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) < 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	sawBalanced := false
	for _, row := range tab.Rows {
		if row[3] == "0" {
			sawBalanced = true
		}
	}
	if !sawBalanced {
		t.Error("no balanced (imbalance 0) configuration swept")
	}
}

func TestTablesIIandIII(t *testing.T) {
	naive, qb, err := TablesIIandIII()
	if err != nil {
		t.Fatal(err)
	}
	if len(naive.Rows) != 3 || len(qb.Rows) != 3 {
		t.Fatalf("rows = %d/%d", len(naive.Rows), len(qb.Rows))
	}
	// Table II semantics: E259 hits both sides, E101 only encrypted, E199
	// only plaintext.
	if naive.Rows[0][2] == "null" || naive.Rows[0][3] == "null" {
		t.Errorf("E259 naive row = %v", naive.Rows[0])
	}
	if naive.Rows[1][2] == "null" || naive.Rows[1][3] != "null" {
		t.Errorf("E101 naive row = %v", naive.Rows[1])
	}
	if naive.Rows[2][2] != "null" || naive.Rows[2][3] == "null" {
		t.Errorf("E199 naive row = %v", naive.Rows[2])
	}
	// Table III: every QB view queries multiple plaintext predicates and
	// returns non-null results on both sides.
	for _, row := range qb.Rows {
		if !strings.Contains(row[1], ",") {
			t.Errorf("QB view with singleton predicate set: %v", row)
		}
		if row[2] == "null" || row[3] == "null" {
			t.Errorf("QB view with empty side: %v", row)
		}
	}
}

func TestTableIVandFigure4(t *testing.T) {
	tab, err := TableIVandFigure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if tab.Rows[0][4] != "true" {
		t.Errorf("QB row not complete bipartite: %v", tab.Rows[0])
	}
	if tab.Rows[1][5] == "0" {
		t.Errorf("naive row dropped no matches: %v", tab.Rows[1])
	}
}

func TestFigureV(t *testing.T) {
	tab := FigureV()
	get := func(i int) int {
		n, err := strconv.Atoi(tab.Rows[i][1])
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	contiguous, roundRobin, greedy := get(0), get(1), get(2)
	if contiguous != 270 {
		t.Errorf("contiguous fakes = %d, want 270 (Figure 5a)", contiguous)
	}
	if roundRobin != 90 {
		t.Errorf("round-robin fakes = %d, want 90", roundRobin)
	}
	if greedy > 30 || greedy >= roundRobin {
		t.Errorf("greedy fakes = %d, want <= 30", greedy)
	}
}

func TestTableVIMatchesPaperShape(t *testing.T) {
	tab, err := TableVI()
	if err != nil {
		t.Fatal(err)
	}
	// Row 0: our Opaque numbers; row 1: paper's. Cells must be close.
	paperOpaque := []float64{11, 15, 26, 42, 59, 89}
	for i, want := range paperOpaque {
		got, err := strconv.ParseFloat(tab.Rows[0][i+1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got < want*0.8-2 || got > want*1.2+2 {
			t.Errorf("Opaque col %d: got %v, paper %v", i, got, want)
		}
	}
	// Jana: the published series is super-linear in alpha; our linear model
	// must keep ordering and rough magnitude (within 2x).
	paperJana := []float64{22, 80, 270, 505, 749, 1051}
	prev := 0.0
	for i, want := range paperJana {
		got, err := strconv.ParseFloat(tab.Rows[2][i+1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if got <= prev {
			t.Errorf("Jana column %d not increasing", i)
		}
		prev = got
		if got < want/2.5 || got > want*2.5 {
			t.Errorf("Jana col %d: got %v, paper %v", i, got, want)
		}
	}
}

func TestSecurityAblation(t *testing.T) {
	tab, err := SecurityAblation(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	byKey := make(map[string][]string)
	for _, row := range tab.Rows {
		byKey[row[0]+"/"+row[1]] = row
	}
	// Size attack: succeeds naive, fails under QB, for both techniques.
	for _, tech := range []string{"DetIndex", "Arx"} {
		if byKey[tech+"/naive"][2] != "yes" {
			t.Errorf("%s naive: size attack should succeed", tech)
		}
		if byKey[tech+"/QB"][2] != "no" {
			t.Errorf("%s QB: size attack should fail", tech)
		}
		// Inference attack exposures: all 16 naive, none under QB.
		if byKey[tech+"/naive"][5] == "0" {
			t.Errorf("%s naive: inference attack found nothing", tech)
		}
		if byKey[tech+"/QB"][5] != "0" {
			t.Errorf("%s QB: inference attack leaked %s values", tech, byKey[tech+"/QB"][5])
		}
	}
	// Frequency attack at rest: succeeds against deterministic tokens
	// (with or without QB — re-encoding, as in Arx, is required), fails
	// against Arx tokens.
	detNaive, _ := strconv.ParseFloat(byKey["DetIndex/naive"][3], 64)
	if detNaive < 0.9 {
		t.Errorf("frequency attack on naive DetIndex = %v, want ~1", detNaive)
	}
	arxQB, _ := strconv.ParseFloat(byKey["Arx/QB"][3], 64)
	if arxQB > 0.05 {
		t.Errorf("frequency attack on Arx = %v, want ~0", arxQB)
	}
	// Workload skew: anonymity 1 naive, >= 4 under QB.
	for _, tech := range []string{"DetIndex", "Arx"} {
		naiveAnon, _ := strconv.Atoi(byKey[tech+"/naive"][4])
		qbAnon, _ := strconv.Atoi(byKey[tech+"/QB"][4])
		if naiveAnon > 1 {
			t.Errorf("%s naive anonymity = %d, want 1", tech, naiveAnon)
		}
		if qbAnon < 4 {
			t.Errorf("%s QB anonymity = %d, want >= 4", tech, qbAnon)
		}
	}
}

func TestMetadataSizes(t *testing.T) {
	tab, err := MetadataSizes(3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	part, _ := strconv.Atoi(tab.Rows[0][2])
	supp, _ := strconv.Atoi(tab.Rows[1][2])
	if part <= supp {
		t.Errorf("L_PARTKEY metadata (%d) should exceed L_SUPPKEY (%d): larger domain", part, supp)
	}
}

func TestInsertCost(t *testing.T) {
	tab, err := InsertCost(2000, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestBinShapeFor(t *testing.T) {
	s, err := BinShapeFor(1000, 100, 0.4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "sensitive bins") {
		t.Errorf("shape = %q", s)
	}
}

func TestDefaultSpecsAreSane(t *testing.T) {
	b := DefaultFig6b()
	if len(b.Sizes) == 0 || len(b.Alphas) == 0 || b.Queries <= 0 {
		t.Errorf("DefaultFig6b = %+v", b)
	}
	c := DefaultFig6c()
	if c.Tuples <= 0 || c.DistinctValues <= 0 || c.Queries <= 0 {
		t.Errorf("DefaultFig6c = %+v", c)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:  "T",
		Header: []string{"a", "bb"},
		Notes:  "n",
	}
	tab.AddRow("1", "2")
	out := tab.String()
	for _, want := range []string{"== T ==", "a", "bb", "1", "2", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
