// Package experiments contains one runner per table and figure of the
// paper's evaluation (§II examples, §IV-B Figure 5, §V Figures 6a-6c and
// Table VI, §VI security ablation). Each runner returns a Table that prints
// the same rows or series the paper reports, so the whole evaluation can be
// regenerated with cmd/qbbench or the root benchmark suite.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// Title names the paper artifact being reproduced.
	Title string
	// Header holds the column names.
	Header []string
	// Rows holds the data, already formatted.
	Rows [][]string
	// Notes carries caveats (substitutions, units, seeds).
	Notes string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(w, "  note: %s\n", t.Notes)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
