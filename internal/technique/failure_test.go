package technique

import (
	"errors"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// corruptStore wraps a real store but corrupts what it serves — a
// malicious-cloud / bit-rot injection harness. The honest-but-curious model
// assumes the cloud does not tamper; these tests verify tampering is at
// least *detected* (authenticated encryption), never silently accepted.
type corruptStore struct {
	*storage.EncryptedStore
	corruptAttr  bool
	corruptTuple bool
	failFetch    bool
}

func (c *corruptStore) AttrColumn() []storage.EncRow {
	rows := c.EncryptedStore.AttrColumn()
	if c.corruptAttr {
		for i := range rows {
			rows[i].AttrCT = append([]byte(nil), rows[i].AttrCT...)
			rows[i].AttrCT[0] ^= 0xFF
		}
	}
	return rows
}

// FetchBatch routes through the corrupting Fetch so the batched search
// path sees the same injected failures and tampering as the per-query one
// (the embedded store's own FetchBatch would serve pristine rows).
func (c *corruptStore) FetchBatch(addrBatches [][]int) ([][]storage.EncRow, error) {
	out := make([][]storage.EncRow, len(addrBatches))
	for i, addrs := range addrBatches {
		rows, err := c.Fetch(addrs)
		if err != nil {
			return nil, err
		}
		out[i] = rows
	}
	return out, nil
}

func (c *corruptStore) Fetch(addrs []int) ([]storage.EncRow, error) {
	if c.failFetch {
		return nil, errors.New("injected fetch failure")
	}
	rows, err := c.EncryptedStore.Fetch(addrs)
	if err != nil {
		return nil, err
	}
	if c.corruptTuple {
		out := make([]storage.EncRow, len(rows))
		for i, r := range rows {
			out[i] = r
			out[i].TupleCT = append([]byte(nil), r.TupleCT...)
			out[i].TupleCT[len(out[i].TupleCT)-1] ^= 0xFF
		}
		return out, nil
	}
	return rows, nil
}

func TestNoIndDetectsTamperedAttrColumn(t *testing.T) {
	cs := &corruptStore{EncryptedStore: storage.NewEncryptedStore(), corruptAttr: true}
	tech, err := NewNoIndOn(testKeys(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.Search([]relation.Value{relation.Int(1)}); err == nil {
		t.Fatal("tampered attribute column accepted")
	}
}

func TestNoIndDetectsTamperedTuples(t *testing.T) {
	cs := &corruptStore{EncryptedStore: storage.NewEncryptedStore(), corruptTuple: true}
	tech, err := NewNoIndOn(testKeys(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.Search([]relation.Value{relation.Int(1)}); err == nil {
		t.Fatal("tampered tuples accepted")
	}
}

func TestNoIndPropagatesFetchFailure(t *testing.T) {
	cs := &corruptStore{EncryptedStore: storage.NewEncryptedStore(), failFetch: true}
	tech, err := NewNoIndOn(testKeys(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.Search([]relation.Value{relation.Int(1)}); err == nil {
		t.Fatal("fetch failure swallowed")
	}
}

func TestDetIndexDetectsTamperedTuples(t *testing.T) {
	cs := &corruptStore{EncryptedStore: storage.NewEncryptedStore(), corruptTuple: true}
	tech, err := NewDetIndexOn(testKeys(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.Search([]relation.Value{relation.Int(1)}); err == nil {
		t.Fatal("tampered tuples accepted")
	}
}

func TestArxDetectsTamperedTuples(t *testing.T) {
	cs := &corruptStore{EncryptedStore: storage.NewEncryptedStore(), corruptTuple: true}
	tech, err := NewArxOn(testKeys(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.Search([]relation.Value{relation.Int(1)}); err == nil {
		t.Fatal("tampered tuples accepted")
	}
}
