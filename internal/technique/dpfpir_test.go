package technique

import (
	"fmt"
	"testing"

	"repro/internal/relation"
)

func TestDPFPIRRoundTrip(t *testing.T) {
	tech, err := NewDPFPIR(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	rows := testRows() // value v has v+1 rows
	if _, err := tech.Outsource(rows); err != nil {
		t.Fatal(err)
	}
	if tech.StoredRows() != len(rows) {
		t.Fatalf("stored %d, want %d", tech.StoredRows(), len(rows))
	}
	got, st, err := tech.Search([]relation.Value{relation.Int(3), relation.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 12 {
		t.Fatalf("returned %d payloads, want 12", len(got))
	}
	for _, p := range got {
		s := string(p)
		if s[:3] != "v=3" && s[:3] != "v=7" {
			t.Errorf("stray payload %q", s)
		}
	}
	// Access-pattern hiding: the cloud sees no returned addresses and the
	// same scan volume for every query.
	if len(st.ReturnedAddrs) != 0 {
		t.Errorf("PIR leaked %d addresses", len(st.ReturnedAddrs))
	}
	_, st2, err := tech.Search([]relation.Value{relation.Int(0), relation.Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesScanned != st2.TuplesScanned || st.BytesTransferred != st2.BytesTransferred {
		t.Errorf("PIR cost varies with the query: %+v vs %+v", st, st2)
	}
}

func TestDPFPIRAbsentValueAndEmptyStore(t *testing.T) {
	tech, err := NewDPFPIR(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := tech.Search([]relation.Value{relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty store returned %d payloads", len(got))
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	got, _, err = tech.Search([]relation.Value{relation.Int(999)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("absent value returned %d payloads", len(got))
	}
}

func TestDPFPIRIncrementalOutsource(t *testing.T) {
	tech, err := NewDPFPIR(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource([]Row{{Payload: []byte("a"), Attr: relation.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.Search([]relation.Value{relation.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// Append after a search: table must be rebuilt.
	if _, err := tech.Outsource([]Row{{Payload: []byte("b"), Attr: relation.Int(1)}}); err != nil {
		t.Fatal(err)
	}
	got, _, err := tech.Search([]relation.Value{relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("after incremental outsource got %d payloads, want 2", len(got))
	}
}

func TestDPFPIRManyValues(t *testing.T) {
	tech, err := NewDPFPIR(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	var rows []Row
	for v := 0; v < 100; v++ {
		rows = append(rows, Row{Payload: []byte(fmt.Sprintf("p%d", v)), Attr: relation.Int(int64(v))})
	}
	if _, err := tech.Outsource(rows); err != nil {
		t.Fatal(err)
	}
	for _, v := range []int64{0, 63, 64, 99} {
		got, _, err := tech.Search([]relation.Value{relation.Int(v)})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 || string(got[0]) != fmt.Sprintf("p%d", v) {
			t.Errorf("Search(%d) = %q", v, got)
		}
	}
}
