// Package technique implements the pluggable cryptographic search mechanisms
// that QB is layered over (§V, §VI): the paper's non-indexable baseline used
// on the commercial systems A/B, a deterministic indexable cipher, the
// Arx-style counter-token index, a Shamir secret-sharing linear scan across
// non-colluding clouds, and calibrated cost models for the SGX-based Opaque
// and MPC-based Jana systems.
//
// A Technique owns both the owner-side secrets and the cloud-side encrypted
// store; the owner hands it plaintext rows to outsource and receives
// decrypted payloads back from Search, together with cost statistics and the
// cloud-observable access pattern.
//
// Every technique also answers whole batches through SearchBatch. The
// scan-shaped techniques (NoInd, DPF-PIR, ShamirScan) share their column
// pull or table scan across all queries of a batch — one store scan per
// batch instead of one per query — while the index-shaped ones (DetIndex,
// Arx) and the simulated cost models fall back to concurrent per-query
// probes. Batched results and per-query access patterns are identical to a
// sequential Search loop; only the cost profile changes.
package technique

import (
	"time"

	"repro/internal/relation"
)

// Row is one sensitive tuple as the owner presents it for outsourcing:
// an opaque payload (the encoded tuple, possibly a fake) and the searchable
// attribute value.
type Row struct {
	Payload []byte
	Attr    relation.Value
}

// Stats accumulates the cost and leakage profile of outsourcing or search
// operations.
type Stats struct {
	// Rounds is the number of owner<->cloud round trips.
	Rounds int
	// EncOps counts symmetric cryptographic operations (encrypt/decrypt/
	// PRF/share evaluations) on either side.
	EncOps int
	// TuplesScanned is the number of encrypted rows the cloud touched.
	TuplesScanned int
	// TuplesTransferred is the number of rows (attribute cells or full
	// tuples) moved between cloud and owner.
	TuplesTransferred int
	// BytesTransferred approximates the wire volume.
	BytesTransferred int
	// ReturnedAddrs are the cloud-visible addresses of the encrypted rows
	// returned for the query — the access-pattern component of the
	// adversarial view.
	ReturnedAddrs []int
	// SimulatedTime is nonzero only for simulated techniques (Opaque,
	// Jana): the virtual wall-clock the calibrated cost model charges.
	SimulatedTime time.Duration
	// CacheHits / CacheMisses count owner-side version-cache revalidations:
	// a hit is a query whose cached column/table/memo was confirmed current
	// (or extended by a delta) by the store's version counter, a miss is a
	// full re-pull. Zero unless the technique has a cache attached.
	CacheHits   int
	CacheMisses int
	// CacheBytesSaved estimates the wire bytes a cache hit avoided — the
	// size of the transfer the uncached path would have made minus what the
	// conditional path actually moved.
	CacheBytesSaved int
	// PerQuery is populated by SearchBatch only: entry i is query i's
	// attributable slice of the batch — its ReturnedAddrs (the per-query
	// access pattern the owner turns into an adversarial view) and its
	// result-transfer counters. Work shared across the batch (a column
	// pull or table scan serving every query at once) is counted once, in
	// the batch-level counters above, and in no PerQuery entry; the
	// top-level counters are therefore authoritative for total cost.
	// Add ignores this field.
	PerQuery []*Stats
}

// Add folds o's counters into s. PerQuery is not merged: batch-level
// attribution only makes sense relative to one SearchBatch call.
func (s *Stats) Add(o *Stats) {
	s.Rounds += o.Rounds
	s.EncOps += o.EncOps
	s.TuplesScanned += o.TuplesScanned
	s.TuplesTransferred += o.TuplesTransferred
	s.BytesTransferred += o.BytesTransferred
	s.ReturnedAddrs = append(s.ReturnedAddrs, o.ReturnedAddrs...)
	s.SimulatedTime += o.SimulatedTime
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheBytesSaved += o.CacheBytesSaved
}

// Technique is a cryptographic mechanism for outsourcing and searching the
// sensitive relation.
//
// Implementations must be safe for concurrent use: Search may be called
// from many goroutines at once (the batch query engine fans selections
// out across a worker pool), and Outsource may interleave with in-flight
// searches (post-outsourcing inserts). Rows are append-only, so a search
// observes some consistent prefix of the store.
type Technique interface {
	// Name identifies the technique in reports.
	Name() string
	// Indexable reports whether the cloud can locate matching rows without
	// scanning (deterministic/Arx indexes). Non-indexable techniques scan.
	Indexable() bool
	// Outsource encrypts and uploads the given rows.
	Outsource(rows []Row) (*Stats, error)
	// Search returns the plaintext payloads of every outsourced row whose
	// attribute value is in values, plus the cost/leakage statistics.
	Search(values []relation.Value) ([][]byte, *Stats, error)
	// SearchBatch answers many selections at once. Results and per-query
	// access patterns are identical to calling Search once per element of
	// queries — batching changes only the cost profile: scan-shaped
	// techniques (NoInd, DPF-PIR, ShamirScan) perform their column pull /
	// table scan once for the whole batch, and index-shaped ones fall back
	// to concurrent per-query probes. The returned Stats is batch-level —
	// shared work counted once in the top-level counters — with one
	// PerQuery entry per query carrying that query's ReturnedAddrs and
	// result transfers. On error the whole batch fails; callers needing
	// sequential failure attribution re-run query by query.
	SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error)
	// StoredRows reports how many encrypted rows the cloud holds.
	StoredRows() int
}

func valueKeySet(values []relation.Value) map[string]bool {
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[v.Key()] = true
	}
	return set
}
