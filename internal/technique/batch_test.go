package technique

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/relation"
	"repro/internal/storage"
)

// batchQueries is a workload exercising the interesting shapes: multi-value
// bins, single values, absent values, the empty predicate set, and values
// repeated across queries (shared-work dedup).
func batchQueries() [][]relation.Value {
	return [][]relation.Value{
		{relation.Int(3), relation.Int(7)},
		{relation.Int(0)},
		{relation.Int(999)},
		{},
		{relation.Int(7), relation.Int(2)},
		{relation.Int(3)},
	}
}

// TestSearchBatchMatchesSearch is the technique-level equivalence property:
// for every technique, SearchBatch returns exactly the payloads (same
// values, same order) and the same per-query access pattern as a
// sequential loop over Search.
func TestSearchBatchMatchesSearch(t *testing.T) {
	for name, tech := range allTechniques(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := tech.Outsource(testRows()); err != nil {
				t.Fatal(err)
			}
			queries := batchQueries()

			seqPayloads := make([][][]byte, len(queries))
			seqStats := make([]*Stats, len(queries))
			for i, q := range queries {
				p, st, err := tech.Search(q)
				if err != nil {
					t.Fatalf("sequential Search(%v): %v", q, err)
				}
				seqPayloads[i], seqStats[i] = p, st
			}

			batch, agg, err := tech.SearchBatch(queries)
			if err != nil {
				t.Fatalf("SearchBatch: %v", err)
			}
			if len(batch) != len(queries) {
				t.Fatalf("SearchBatch returned %d payload sets, want %d", len(batch), len(queries))
			}
			if agg == nil || len(agg.PerQuery) != len(queries) {
				t.Fatalf("SearchBatch stats: %+v, want %d PerQuery entries", agg, len(queries))
			}
			for i := range queries {
				if len(batch[i]) != len(seqPayloads[i]) {
					t.Fatalf("query %d: batch returned %d payloads, sequential %d",
						i, len(batch[i]), len(seqPayloads[i]))
				}
				for j := range batch[i] {
					if string(batch[i][j]) != string(seqPayloads[i][j]) {
						t.Errorf("query %d payload %d: batch %q != sequential %q",
							i, j, batch[i][j], seqPayloads[i][j])
					}
				}
				if !reflect.DeepEqual(agg.PerQuery[i].ReturnedAddrs, seqStats[i].ReturnedAddrs) {
					t.Errorf("query %d: batch access pattern %v != sequential %v",
						i, agg.PerQuery[i].ReturnedAddrs, seqStats[i].ReturnedAddrs)
				}
			}
		})
	}
}

// TestSearchBatchSharesScans is the cost property the batched path exists
// for: on the scan-shaped techniques, a batch performs ONE store scan /
// column pull regardless of the number of queries, where the sequential
// loop performs one per query.
func TestSearchBatchSharesScans(t *testing.T) {
	scanShaped := map[string]bool{"noind": true, "shamir": true, "dpfpir": true}
	for name, tech := range allTechniques(t) {
		if !scanShaped[name] {
			continue
		}
		t.Run(name, func(t *testing.T) {
			if _, err := tech.Outsource(testRows()); err != nil {
				t.Fatal(err)
			}
			queries := [][]relation.Value{
				{relation.Int(1)}, {relation.Int(4)}, {relation.Int(8)},
			}
			// One sequential single-value query fixes the cost of one scan.
			_, single, err := tech.Search(queries[0])
			if err != nil {
				t.Fatal(err)
			}
			_, agg, err := tech.SearchBatch(queries)
			if err != nil {
				t.Fatal(err)
			}
			if agg.TuplesScanned != single.TuplesScanned {
				t.Errorf("batch of %d scanned %d tuples, want the single-query scan of %d (shared)",
					len(queries), agg.TuplesScanned, single.TuplesScanned)
			}
			// And the sequential loop really is one scan per query.
			seqTotal := 0
			for _, q := range queries {
				_, st, err := tech.Search(q)
				if err != nil {
					t.Fatal(err)
				}
				seqTotal += st.TuplesScanned
			}
			if seqTotal != len(queries)*single.TuplesScanned {
				t.Errorf("sequential loop scanned %d, want %d (one scan per query)",
					seqTotal, len(queries)*single.TuplesScanned)
			}
		})
	}
}

// TestSearchBatchEmpty: a zero-length batch succeeds with no work.
func TestSearchBatchEmpty(t *testing.T) {
	for name, tech := range allTechniques(t) {
		t.Run(name, func(t *testing.T) {
			out, st, err := tech.SearchBatch(nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(out) != 0 || st == nil || len(st.PerQuery) != 0 {
				t.Fatalf("empty batch: out=%v stats=%+v", out, st)
			}
		})
	}
}

// TestSearchBatchSharedDecryptsOnce: a tuple matched by several queries in
// one NoInd batch is decrypted once — EncOps counts the shared open once
// where the sequential loop pays per query.
func TestSearchBatchSharedDecryptsOnce(t *testing.T) {
	tech, err := NewNoInd(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	// Both queries hit value 5 (6 rows); 55 attr decrypts + 6 tuple opens.
	dup := [][]relation.Value{{relation.Int(5)}, {relation.Int(5)}}
	_, agg, err := tech.SearchBatch(dup)
	if err != nil {
		t.Fatal(err)
	}
	if want := 55 + 6; agg.EncOps != want {
		t.Errorf("duplicate-query batch EncOps = %d, want %d (column pass + one open per distinct tuple)",
			agg.EncOps, want)
	}
	for i, per := range agg.PerQuery {
		if len(per.ReturnedAddrs) != 6 {
			t.Errorf("query %d returned %d addrs, want 6", i, len(per.ReturnedAddrs))
		}
	}
}

// TestSearchBatchPropagatesFetchFailure: the batched fetch path surfaces
// store failures instead of swallowing them.
func TestSearchBatchPropagatesFetchFailure(t *testing.T) {
	cs := &corruptStore{EncryptedStore: storage.NewEncryptedStore(), failFetch: true}
	tech, err := NewNoIndOn(testKeys(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.SearchBatch([][]relation.Value{{relation.Int(1)}, {relation.Int(2)}}); err == nil {
		t.Fatal("batched fetch failure swallowed")
	}
}

// TestSearchBatchDetectsTamperedTuples: authenticated encryption still
// rejects tampering on the batched path.
func TestSearchBatchDetectsTamperedTuples(t *testing.T) {
	cs := &corruptStore{EncryptedStore: storage.NewEncryptedStore(), corruptTuple: true}
	tech, err := NewNoIndOn(testKeys(), cs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	if _, _, err := tech.SearchBatch([][]relation.Value{{relation.Int(1)}}); err == nil {
		t.Fatal("tampered tuples accepted by batched search")
	}
}

// TestFallbackSearchBatchLowestIndexError: the per-query fallback reports
// the lowest-index failure like a sequential loop would, even though the
// queries run concurrently.
func TestFallbackSearchBatchLowestIndexError(t *testing.T) {
	tech := &valueFault{fail: map[int64]bool{1: true, 3: true}}
	queries := make([][]relation.Value, 5)
	for i := range queries {
		queries[i] = []relation.Value{relation.Int(int64(i))}
	}
	_, _, err := fallbackSearchBatch(tech, queries)
	if err == nil || err.Error() != "query 1 failed" {
		t.Fatalf("err = %v, want the lowest-index failure (query 1)", err)
	}
}

// valueFault fails Search for chosen predicate values — deterministic per
// query regardless of worker scheduling. Only the pieces
// fallbackSearchBatch touches are implemented.
type valueFault struct {
	Technique
	fail map[int64]bool
}

func (f *valueFault) Search(values []relation.Value) ([][]byte, *Stats, error) {
	if len(values) == 1 && f.fail[values[0].Int()] {
		return nil, nil, fmt.Errorf("query %d failed", values[0].Int())
	}
	return nil, &Stats{}, nil
}
