package technique

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/storage"
)

// This file holds the batch-search plumbing shared by the technique
// implementations. The scan-shaped techniques (NoInd, DPF-PIR, ShamirScan)
// implement SearchBatch with real cross-query sharing in their own files;
// the index-shaped ones (Arx, DetIndex) and the simulated cost models have
// nothing to amortise and delegate to fallbackSearchBatch.

// fallbackSearchBatch implements SearchBatch for techniques with no
// cross-query work to share: every query runs through Search, concurrently
// over a bounded worker pool (Technique implementations are documented as
// safe for concurrent Search), and the per-query stats are folded into one
// batch-level aggregate. Results and stats are identical to a sequential
// loop; on failure the lowest-index error is returned and the whole batch
// fails.
func fallbackSearchBatch(t Technique, queries [][]relation.Value) ([][][]byte, *Stats, error) {
	nq := len(queries)
	agg := &Stats{PerQuery: make([]*Stats, nq)}
	out := make([][][]byte, nq)
	if nq == 0 {
		return out, agg, nil
	}
	errs := make([]error, nq)
	workers := runtime.GOMAXPROCS(0)
	if workers > nq {
		workers = nq
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= nq {
					return
				}
				out[i], agg.PerQuery[i], errs[i] = t.Search(queries[i])
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	for _, st := range agg.PerQuery {
		agg.Add(st)
	}
	return out, agg, nil
}

// fetchBatch retrieves each address list's rows: in one batched round trip
// when the store supports it (BatchEncStore — in particular the wire
// backends), and with one Fetch per list otherwise.
func fetchBatch(store EncStore, addrBatches [][]int) ([][]storage.EncRow, error) {
	if bs, ok := store.(BatchEncStore); ok {
		out, err := bs.FetchBatch(addrBatches)
		if err != nil {
			return nil, err
		}
		if len(out) != len(addrBatches) {
			return nil, fmt.Errorf("technique: batched fetch returned %d row sets for %d address lists", len(out), len(addrBatches))
		}
		return out, nil
	}
	out := make([][]storage.EncRow, len(addrBatches))
	for i, addrs := range addrBatches {
		rows, err := store.Fetch(addrs)
		if err != nil {
			return nil, err
		}
		out[i] = rows
	}
	return out, nil
}
