package technique

import (
	"sync"
	"sync/atomic"

	"repro/internal/relation"
	"repro/internal/storage"
)

// DefaultCacheBytes is the byte budget a Cache gets when the caller does
// not pick one. It bounds the accounted size of every segment together
// (column ciphertext bytes, payload plaintexts, token memos, Shamir
// digests), so one owner process holds at most this much cached state per
// store regardless of how large the outsourced relation grows.
const DefaultCacheBytes = 64 << 20

// Cache is the owner-side cross-query cache that kills the per-query
// column pull. It holds, per technique family:
//
//   - the decrypted searchable-attribute column (NoInd), revalidated each
//     query by the store's version counter (VersionedEncStore) — a tiny
//     not-modified round trip replaces the full column transfer;
//   - decrypted tuple payloads by cloud address, valid for one store epoch
//     (addresses are stable within an epoch: the store is append-only and
//     Compact preserves addressing);
//   - DetIndex token→address memos, valid at one exact version;
//   - ShamirScan reconstructed digests (in-process append-only columns).
//
// Safety: every segment is revalidated against the store before use — the
// cache never turns a stale answer into a fresh-looking one. A version
// epoch changes whenever a store is rebuilt (restore from snapshot, drop
// and re-create), so state that silently lost writes can never match a
// held version. Within an epoch, "not modified" answers are produced
// under the store's publish-then-bump ordering, so a confirmed version is
// never fresher than the data it vouches for.
//
// A Cache is safe for concurrent use: readers snapshot a segment under the
// mutex, do their round trips and decryption unlocked, and store the
// extended segment back last-writer-wins. Cached slices and payloads are
// shared read-only; callers must not mutate what they get back (the
// technique API already hands decrypted payloads out as owner-owned
// read-only data — SearchBatch shares one decryption across queries the
// same way).
type Cache struct {
	mu       sync.Mutex
	maxBytes int

	// Column segment: decrypted attribute values aligned with their cloud
	// addresses, consistent with ver. ctBytes is the summed ciphertext size
	// of the cached cells — the wire bytes a revalidation avoids.
	colVer   storage.EncVersion
	colVals  []relation.Value
	colAddrs []int
	colCT    int

	// Payload segment: cloud address -> decrypted tuple payload, valid for
	// payEpoch only. FIFO-evicted under the byte budget.
	payEpoch uint64
	pay      map[int]payEntry
	payOrder []int
	payBytes int

	// Memo segment (DetIndex): deterministic token -> matching addresses,
	// valid at exactly memoVer (any write may change a token's posting
	// list, so memos cannot survive a version bump).
	memoVer   storage.EncVersion
	memo      map[string][]int
	memoBytes int

	// Shamir segment: reconstructed attribute digests for the first
	// len(shamir) rows of an append-only share column set.
	shamir []uint64

	hits       atomic.Uint64
	misses     atomic.Uint64
	bytesSaved atomic.Uint64
}

type payEntry struct {
	pt []byte
	// ctLen is the ciphertext size the cached decryption avoids
	// re-transferring.
	ctLen int
}

// NewCache builds a cache with the given byte budget; maxBytes <= 0 means
// DefaultCacheBytes.
func NewCache(maxBytes int) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &Cache{maxBytes: maxBytes, pay: make(map[int]payEntry), memo: make(map[string][]int)}
}

// CacheStats is a point-in-time snapshot of a Cache's cumulative effect.
type CacheStats struct {
	// Hits / Misses count query-level revalidations: a hit confirmed (or
	// delta-extended) cached state, a miss re-pulled from scratch.
	Hits, Misses uint64
	// BytesSaved estimates the wire bytes hits avoided transferring.
	BytesSaved uint64
	// Bytes is the currently accounted size of all segments.
	Bytes int
	// MaxBytes is the configured budget.
	MaxBytes int
}

// Stats snapshots the cache's counters and current footprint.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	bytes := c.bytesLocked()
	max := c.maxBytes
	c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		BytesSaved: c.bytesSaved.Load(),
		Bytes:      bytes,
		MaxBytes:   max,
	}
}

// recordHit and recordMiss fold one query's outcome into the cumulative
// counters (the per-query Stats carry the same numbers for reports).
func (c *Cache) recordHit(bytesSaved int) {
	c.hits.Add(1)
	if bytesSaved > 0 {
		c.bytesSaved.Add(uint64(bytesSaved))
	}
}

func (c *Cache) recordMiss() { c.misses.Add(1) }

// recordSaved adds avoided wire bytes without counting a hit — used for
// payload reuse, which rides along with whichever column/memo outcome the
// query already recorded.
func (c *Cache) recordSaved(n int) {
	if n > 0 {
		c.bytesSaved.Add(uint64(n))
	}
}

func (c *Cache) bytesLocked() int {
	return c.colCT + c.payBytes + c.memoBytes + 8*len(c.shamir)
}

// rebalanceLocked enforces the byte budget: payload entries go first
// (FIFO — they are per-address and individually droppable), then the memo
// map, then the column. The Shamir segment is bounded at store time.
func (c *Cache) rebalanceLocked() {
	for c.bytesLocked() > c.maxBytes && len(c.payOrder) > 0 {
		addr := c.payOrder[0]
		c.payOrder = c.payOrder[1:]
		if e, ok := c.pay[addr]; ok {
			c.payBytes -= len(e.pt) + payEntryOverhead
			delete(c.pay, addr)
		}
	}
	if c.bytesLocked() > c.maxBytes && c.memoBytes > 0 {
		c.memo = make(map[string][]int)
		c.memoBytes = 0
	}
	if c.bytesLocked() > c.maxBytes && c.colCT > 0 {
		c.colVer, c.colVals, c.colAddrs, c.colCT = storage.EncVersion{}, nil, nil, 0
	}
}

// payEntryOverhead approximates the map/bookkeeping cost of one payload
// entry on top of the plaintext bytes.
const payEntryOverhead = 48

// --- column segment ------------------------------------------------------

// colSnapshot returns the cached decrypted column: the version it is
// consistent with, the values aligned with their addresses, and the summed
// ciphertext bytes the cache stands in for. The slices are shared
// read-only.
func (c *Cache) colSnapshot() (ver storage.EncVersion, vals []relation.Value, addrs []int, ctBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.colVer, c.colVals, c.colAddrs, c.colCT
}

// colStore publishes an extended (or replaced) column, last-writer-wins:
// a column for a different epoch always replaces, within an epoch the
// longer column wins (the store is append-only within an epoch, so longer
// means strictly more information).
func (c *Cache) colStore(ver storage.EncVersion, vals []relation.Value, addrs []int, ctBytes int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ver.Epoch == c.colVer.Epoch && len(vals) < len(c.colVals) {
		return
	}
	c.colVer, c.colVals, c.colAddrs, c.colCT = ver, vals, addrs, ctBytes
	c.rebalanceLocked()
}

// --- payload segment -----------------------------------------------------

// payloadGet returns the cached decryptions among addrs that are valid for
// the given store epoch, plus the summed ciphertext bytes those hits avoid
// transferring. A mismatched epoch empties the segment: a reborn store may
// have reassigned addresses.
func (c *Cache) payloadGet(epoch uint64, addrs []int) (found map[int][]byte, ctSaved int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.payEpoch != epoch {
		c.pay = make(map[int]payEntry)
		c.payOrder = nil
		c.payBytes = 0
		c.payEpoch = epoch
		return nil, 0
	}
	for _, a := range addrs {
		if e, ok := c.pay[a]; ok {
			if found == nil {
				found = make(map[int][]byte)
			}
			found[a] = e.pt
			ctSaved += e.ctLen
		}
	}
	return found, ctSaved
}

// payloadPut caches one address's decrypted payload for the given epoch.
func (c *Cache) payloadPut(epoch uint64, addr int, pt []byte, ctLen int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.payEpoch != epoch {
		c.pay = make(map[int]payEntry)
		c.payOrder = nil
		c.payBytes = 0
		c.payEpoch = epoch
	}
	if _, ok := c.pay[addr]; ok {
		return
	}
	c.pay[addr] = payEntry{pt: pt, ctLen: ctLen}
	c.payOrder = append(c.payOrder, addr)
	c.payBytes += len(pt) + payEntryOverhead
	c.rebalanceLocked()
}

// --- memo segment --------------------------------------------------------

// memoGet returns the memoised address list for a deterministic token,
// valid only if the cache's memo version is exactly cur. ok distinguishes
// a memoised empty posting list from a memo miss.
func (c *Cache) memoGet(cur storage.EncVersion, token string) (addrs []int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.memoVer != cur {
		return nil, false
	}
	addrs, ok = c.memo[token]
	return addrs, ok
}

// memoPut memoises one token's posting list at version cur. A version
// change flushes the whole segment first: any write may have changed any
// posting list.
func (c *Cache) memoPut(cur storage.EncVersion, token string, addrs []int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.memoVer != cur {
		c.memo = make(map[string][]int)
		c.memoBytes = 0
		c.memoVer = cur
	}
	if _, ok := c.memo[token]; ok {
		return
	}
	c.memo[token] = addrs
	c.memoBytes += len(token) + 8*len(addrs) + payEntryOverhead
	c.rebalanceLocked()
}

// --- shamir segment ------------------------------------------------------

// shamirSnapshot returns the cached digest prefix (shared read-only).
func (c *Cache) shamirSnapshot() []uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.shamir
}

// shamirStore publishes a longer digest prefix. The prefix is truncated to
// whatever fits in the remaining byte budget (digests are recomputable, so
// capping the cache merely costs future reconstructions).
func (c *Cache) shamirStore(d []uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(d) <= len(c.shamir) {
		return
	}
	if room := (c.maxBytes - (c.bytesLocked() - 8*len(c.shamir))) / 8; len(d) > room {
		if room <= len(c.shamir) {
			return
		}
		d = d[:room]
	}
	c.shamir = d
}
