package technique

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/crypto"
	"repro/internal/relation"
)

func testKeys() *crypto.KeySet { return crypto.DeriveKeys([]byte("technique test key")) }

// allTechniques builds one instance of every technique for table-driven
// tests.
func allTechniques(t *testing.T) map[string]Technique {
	t.Helper()
	ks := testKeys()
	noind, err := NewNoInd(ks)
	if err != nil {
		t.Fatal(err)
	}
	det, err := NewDetIndex(ks)
	if err != nil {
		t.Fatal(err)
	}
	arx, err := NewArx(ks)
	if err != nil {
		t.Fatal(err)
	}
	sham, err := NewShamirScan(ks, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	opq, err := NewSimOpaque(ks)
	if err != nil {
		t.Fatal(err)
	}
	jana, err := NewSimJana(ks)
	if err != nil {
		t.Fatal(err)
	}
	pir, err := NewDPFPIR(ks)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Technique{
		"noind": noind, "det": det, "arx": arx, "shamir": sham,
		"opaque": opq, "jana": jana, "dpfpir": pir,
	}
}

// testRows builds rows for values 0..9, value v appearing v+1 times, with a
// recognisable payload.
func testRows() []Row {
	var rows []Row
	for v := 0; v < 10; v++ {
		for i := 0; i <= v; i++ {
			rows = append(rows, Row{
				Payload: []byte(fmt.Sprintf("v=%d#%d", v, i)),
				Attr:    relation.Int(int64(v)),
			})
		}
	}
	return rows
}

func TestTechniquesRoundTrip(t *testing.T) {
	for name, tech := range allTechniques(t) {
		t.Run(name, func(t *testing.T) {
			rows := testRows()
			st, err := tech.Outsource(rows)
			if err != nil {
				t.Fatal(err)
			}
			if st == nil || tech.StoredRows() != len(rows) {
				t.Fatalf("stored %d rows, want %d", tech.StoredRows(), len(rows))
			}
			// Search for values 3 and 7: expect 4 + 8 = 12 payloads.
			got, sst, err := tech.Search([]relation.Value{relation.Int(3), relation.Int(7)})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 12 {
				t.Fatalf("%s returned %d payloads, want 12", tech.Name(), len(got))
			}
			var names []string
			for _, p := range got {
				names = append(names, string(p))
			}
			sort.Strings(names)
			for _, n := range names {
				if n[:3] != "v=3" && n[:3] != "v=7" {
					t.Errorf("stray payload %q", n)
				}
			}
			if tech.Name() == "DPF-PIR" {
				// PIR hides the access pattern entirely.
				if len(sst.ReturnedAddrs) != 0 {
					t.Errorf("DPF-PIR leaked %d addresses", len(sst.ReturnedAddrs))
				}
			} else if len(sst.ReturnedAddrs) != 12 {
				t.Errorf("ReturnedAddrs = %d, want 12", len(sst.ReturnedAddrs))
			}
			if sst.EncOps <= 0 || sst.TuplesTransferred <= 0 {
				t.Errorf("suspicious stats %+v", sst)
			}
			// Absent value yields nothing.
			got, _, err = tech.Search([]relation.Value{relation.Int(999)})
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != 0 {
				t.Errorf("absent value returned %d payloads", len(got))
			}
		})
	}
}

func TestNoIndScansEverything(t *testing.T) {
	tech, err := NewNoInd(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	if tech.Indexable() {
		t.Error("NoInd claims to be indexable")
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	_, st, err := tech.Search([]relation.Value{relation.Int(0)})
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesScanned != 55 {
		t.Errorf("scanned %d, want all 55", st.TuplesScanned)
	}
	if st.Rounds != 2 {
		t.Errorf("rounds = %d, want 2", st.Rounds)
	}
}

func TestDetIndexProbesOnly(t *testing.T) {
	tech, err := NewDetIndex(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	if !tech.Indexable() {
		t.Error("DetIndex not indexable")
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	_, st, err := tech.Search([]relation.Value{relation.Int(9)})
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesScanned != 10 {
		t.Errorf("scanned %d, want just the 10 matches", st.TuplesScanned)
	}
	// Deterministic tokens: equal plaintexts share a token in the store.
	hist := make(map[string]int)
	for _, r := range tech.Store().Rows() {
		hist[string(r.Token)]++
	}
	if len(hist) != 10 {
		t.Errorf("token groups = %d, want 10 (one per value)", len(hist))
	}
}

func TestArxTokensAllDistinctAtRest(t *testing.T) {
	tech, err := NewArx(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, r := range tech.Store().Rows() {
		if seen[string(r.Token)] {
			t.Fatal("Arx store has duplicate tokens")
		}
		seen[string(r.Token)] = true
	}
	if tech.Histogram(relation.Int(9)) != 10 {
		t.Errorf("histogram(9) = %d, want 10", tech.Histogram(relation.Int(9)))
	}
}

func TestShamirScanHidesAccessPatternInScan(t *testing.T) {
	tech, err := NewShamirScan(testKeys(), 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tech.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	_, st, err := tech.Search([]relation.Value{relation.Int(2)})
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesScanned != 55*3 {
		t.Errorf("scanned %d, want 165 (full scan on 3 clouds)", st.TuplesScanned)
	}
	if _, err := NewShamirScan(testKeys(), 1, 1); err == nil {
		t.Error("degenerate sharing accepted")
	}
}

func TestSimulatedCostCalibration(t *testing.T) {
	ks := testKeys()
	opq, err := NewSimOpaque(ks)
	if err != nil {
		t.Fatal(err)
	}
	// 6M tuples at the calibrated rate must give ~89 s.
	got := opq.SimulateFullScan(6_000_000).Seconds()
	if got < 88 || got > 90 {
		t.Errorf("Opaque full-scan simulation = %vs, want ~89", got)
	}
	jana, err := NewSimJana(ks)
	if err != nil {
		t.Fatal(err)
	}
	got = jana.SimulateFullScan(1_000_000).Seconds()
	if got < 1040 || got > 1060 {
		t.Errorf("Jana full-scan simulation = %vs, want ~1051", got)
	}
	// Search must charge SimulatedTime proportional to rows scanned.
	if _, err := opq.Outsource(testRows()); err != nil {
		t.Fatal(err)
	}
	_, st, err := opq.Search([]relation.Value{relation.Int(1)})
	if err != nil {
		t.Fatal(err)
	}
	want := opq.FixedCost() + opq.PerTupleCost()*55
	if st.SimulatedTime != want {
		t.Errorf("SimulatedTime = %v, want %v", st.SimulatedTime, want)
	}
}

func TestStatsAdd(t *testing.T) {
	a := &Stats{Rounds: 1, EncOps: 2, TuplesScanned: 3, TuplesTransferred: 4, BytesTransferred: 5, ReturnedAddrs: []int{1}}
	b := &Stats{Rounds: 10, EncOps: 20, TuplesScanned: 30, TuplesTransferred: 40, BytesTransferred: 50, ReturnedAddrs: []int{2, 3}}
	a.Add(b)
	if a.Rounds != 11 || a.EncOps != 22 || a.TuplesScanned != 33 ||
		a.TuplesTransferred != 44 || a.BytesTransferred != 55 || len(a.ReturnedAddrs) != 3 {
		t.Errorf("Add = %+v", a)
	}
}
