package technique

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/relation"
)

// TestDetIndexCachedReadYourWritesUnderConcurrentSearches is a regression
// test for a writer-ordering race: Add used to bump the store version
// before indexing the row's token (and after releasing the writer mutex),
// so a concurrent cached search could observe the new version, probe the
// token index before the insert landed, and memoise the pre-write posting
// list under the post-write version — after which every search through the
// shared cache served results missing the new row until the next write
// bumped the version again. The store now indexes the token before bumping
// the version, so a search issued after Outsource returns must always see
// the write, no matter how many cached searches race with it.
func TestDetIndexCachedReadYourWritesUnderConcurrentSearches(t *testing.T) {
	det, err := NewDetIndex(testKeys())
	if err != nil {
		t.Fatal(err)
	}
	det.SetCache(NewCache(0))

	attr := relation.Int(42)
	pred := []relation.Value{attr}
	const writes = 300

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := det.Search(pred); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	defer func() {
		close(stop)
		wg.Wait()
	}()

	for i := 0; i < writes; i++ {
		if _, err := det.Outsource([]Row{{Payload: []byte(fmt.Sprintf("row#%d", i)), Attr: attr}}); err != nil {
			t.Fatal(err)
		}
		got, _, err := det.Search(pred)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != i+1 {
			t.Fatalf("after write %d: search returned %d payloads, want %d (stale memo served)", i, len(got), i+1)
		}
	}
}
