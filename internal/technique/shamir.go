package technique

import (
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/crypto"
	"repro/internal/relation"
)

// ShamirScan models the secret-sharing-based outsourcing the paper cites
// (Emekçi et al.; Stealth SDB): the searchable attribute of every row is
// split into Shamir shares across NumClouds non-colluding clouds, and a
// selection is answered by a full linear scan — each cloud streams its share
// of the attribute column back, the owner reconstructs every value and
// keeps the matches. Because every query touches every row on every cloud,
// the access pattern is hidden, at a heavy cost: this is the γ >> 1 regime
// where QB shines (§V-A).
//
// Payloads are additionally sealed with a probabilistic cipher and
// replicated so that matched tuples can be fetched and opened; on a real
// deployment they would be shared as well, which only increases the costs
// QB saves.
type ShamirScan struct {
	// NumClouds is the number of non-colluding servers (n).
	NumClouds int
	// Threshold is the reconstruction threshold (k <= n).
	Threshold int

	prob *crypto.Probabilistic

	// mu guards the share columns and sealed payloads: searches scan them
	// under a read lock while outsourcing appends under the write lock.
	mu     sync.RWMutex
	clouds [][]crypto.Share // clouds[c][row] share of attr digest
	blobs  [][]byte         // sealed payloads, addressed by row
	// cache, when set, holds the reconstructed digest prefix: the share
	// columns are append-only, so digest[row] never changes and a repeat
	// query reconstructs (and streams) only the appended tail.
	cache *Cache
}

// SetCache attaches (or, with nil, detaches) an owner-side cache of
// reconstructed digests. Must be called before the technique is shared
// across goroutines.
func (s *ShamirScan) SetCache(c *Cache) { s.cache = c }

// cachedDigests returns the digest of every current row, reconstructing
// only rows beyond the cached prefix, and charges st for the avoided and
// performed work. Caller holds s.mu (read side suffices: the cache
// synchronises itself and rows are immutable once appended).
func (s *ShamirScan) cachedDigests(st *Stats) ([]uint64, error) {
	n := len(s.blobs)
	cached := s.cache.shamirSnapshot()
	if len(cached) > n {
		// A restart cannot shrink an in-process column set, but guard
		// against a cache shared across instances.
		cached = cached[:n]
	}
	// The clouds stream (and the owner reconstructs) only the tail.
	tail := n - len(cached)
	st.TuplesScanned += tail * s.NumClouds
	st.TuplesTransferred += tail * s.Threshold
	st.BytesTransferred += 16 * tail * s.Threshold
	saved := 16 * len(cached) * s.Threshold
	if tail == 0 && n > 0 {
		st.CacheHits++
		st.CacheBytesSaved += saved
		s.cache.recordHit(saved)
		return cached, nil
	}
	st.CacheMisses++
	st.CacheBytesSaved += saved
	s.cache.recordMiss()
	s.cache.recordSaved(saved)
	digests := make([]uint64, n)
	copy(digests, cached)
	sharesBuf := make([]crypto.Share, s.Threshold)
	for row := len(cached); row < n; row++ {
		for c := 0; c < s.Threshold; c++ {
			sharesBuf[c] = s.clouds[c][row]
		}
		dig, err := crypto.Reconstruct(sharesBuf)
		if err != nil {
			return nil, fmt.Errorf("technique: shamir reconstruct row %d: %w", row, err)
		}
		st.EncOps++
		digests[row] = dig
	}
	s.cache.shamirStore(digests)
	return digests, nil
}

// NewShamirScan builds the technique with n clouds and threshold k.
func NewShamirScan(keys *crypto.KeySet, n, k int) (*ShamirScan, error) {
	if n < 2 || k < 2 || k > n {
		return nil, fmt.Errorf("technique: shamir: invalid n=%d k=%d", n, k)
	}
	prob, err := crypto.NewProbabilistic(keys.Enc)
	if err != nil {
		return nil, fmt.Errorf("technique: shamir: %w", err)
	}
	return &ShamirScan{
		NumClouds: n,
		Threshold: k,
		prob:      prob,
		clouds:    make([][]crypto.Share, n),
	}, nil
}

// Name implements Technique.
func (s *ShamirScan) Name() string { return "ShamirScan" }

// Indexable implements Technique.
func (s *ShamirScan) Indexable() bool { return false }

// StoredRows implements Technique.
func (s *ShamirScan) StoredRows() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blobs)
}

// digest maps an attribute value into the field GF(2^61-1).
func digest(v relation.Value) uint64 {
	h := fnv.New64a()
	h.Write(v.Encode())
	return h.Sum64() % crypto.ShamirPrime
}

// Outsource implements Technique: one sharing per row attribute.
func (s *ShamirScan) Outsource(rows []Row) (*Stats, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := &Stats{Rounds: 1}
	for _, r := range rows {
		shares, err := crypto.SplitSecret(digest(r.Attr), s.NumClouds, s.Threshold, nil)
		if err != nil {
			return nil, err
		}
		for c := 0; c < s.NumClouds; c++ {
			s.clouds[c] = append(s.clouds[c], shares[c])
		}
		blob, err := s.prob.Encrypt(r.Payload)
		if err != nil {
			return nil, err
		}
		s.blobs = append(s.blobs, blob)
		st.EncOps += s.NumClouds + 1
		st.TuplesTransferred += s.NumClouds
		st.BytesTransferred += 16*s.NumClouds + len(blob)
	}
	return st, nil
}

// Search implements Technique: every cloud streams its whole share column
// (a full oblivious scan); the owner reconstructs each attribute digest from
// Threshold clouds and fetches the matching payloads.
func (s *ShamirScan) Search(values []relation.Value) ([][]byte, *Stats, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := &Stats{Rounds: 2}
	want := make(map[uint64]bool, len(values))
	for _, v := range values {
		want[digest(v)] = true
	}
	n := len(s.blobs)
	var addrs []int
	if s.cache != nil {
		digs, err := s.cachedDigests(st)
		if err != nil {
			return nil, nil, err
		}
		for row, dig := range digs {
			if want[dig] {
				addrs = append(addrs, row)
			}
		}
	} else {
		st.TuplesScanned = n * s.NumClouds
		st.TuplesTransferred = n * s.Threshold
		st.BytesTransferred = 16 * n * s.Threshold
		sharesBuf := make([]crypto.Share, s.Threshold)
		for row := 0; row < n; row++ {
			for c := 0; c < s.Threshold; c++ {
				sharesBuf[c] = s.clouds[c][row]
			}
			dig, err := crypto.Reconstruct(sharesBuf)
			if err != nil {
				return nil, nil, fmt.Errorf("technique: shamir reconstruct row %d: %w", row, err)
			}
			st.EncOps++
			if want[dig] {
				addrs = append(addrs, row)
			}
		}
	}
	payloads := make([][]byte, 0, len(addrs))
	for _, a := range addrs {
		pt, err := s.prob.Decrypt(s.blobs[a])
		if err != nil {
			return nil, nil, fmt.Errorf("technique: shamir open row %d: %w", a, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(s.blobs[a])
		payloads = append(payloads, pt)
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// SearchBatch implements Technique with a shared share-reconstruction
// scan: each cloud streams its share column once for the whole batch, every
// row's attribute digest is reconstructed once and matched against every
// query's predicate set, and a payload matched by several queries is
// opened once. The scan and the reconstructions are counted once in the
// batch-level Stats; PerQuery[i] carries query i's access pattern and
// result transfers.
func (s *ShamirScan) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	nq := len(queries)
	agg := &Stats{Rounds: 2, PerQuery: make([]*Stats, nq)}
	out := make([][][]byte, nq)
	if nq == 0 {
		return out, agg, nil
	}
	// Inverted predicate index: attribute digest -> the queries wanting
	// it, so the scan costs one lookup per row, not one per (row, query).
	wantedBy := make(map[uint64][]int)
	for i, q := range queries {
		agg.PerQuery[i] = &Stats{Rounds: 2}
		seen := make(map[uint64]bool, len(q))
		for _, v := range q {
			d := digest(v)
			if !seen[d] {
				seen[d] = true
				wantedBy[d] = append(wantedBy[d], i)
			}
		}
	}

	s.mu.RLock()
	defer s.mu.RUnlock()
	n := len(s.blobs)
	addrs := make([][]int, nq)
	if s.cache != nil {
		// Shared and cached: the clouds stream only the uncached tail, once
		// for the whole batch.
		digs, err := s.cachedDigests(agg)
		if err != nil {
			return nil, nil, err
		}
		for row, dig := range digs {
			for _, qi := range wantedBy[dig] {
				addrs[qi] = append(addrs[qi], row)
			}
		}
	} else {
		// Shared scan: the share columns stream back once per batch.
		agg.TuplesScanned = n * s.NumClouds
		agg.TuplesTransferred = n * s.Threshold
		agg.BytesTransferred = 16 * n * s.Threshold
		sharesBuf := make([]crypto.Share, s.Threshold)
		for row := 0; row < n; row++ {
			for c := 0; c < s.Threshold; c++ {
				sharesBuf[c] = s.clouds[c][row]
			}
			dig, err := crypto.Reconstruct(sharesBuf)
			if err != nil {
				return nil, nil, fmt.Errorf("technique: shamir reconstruct row %d: %w", row, err)
			}
			agg.EncOps++ // one reconstruction serves the whole batch
			for _, qi := range wantedBy[dig] {
				addrs[qi] = append(addrs[qi], row)
			}
		}
	}

	opened := make(map[int][]byte)
	for qi := range queries {
		per := agg.PerQuery[qi]
		payloads := make([][]byte, 0, len(addrs[qi]))
		for _, a := range addrs[qi] {
			pt, ok := opened[a]
			if !ok {
				var err error
				pt, err = s.prob.Decrypt(s.blobs[a])
				if err != nil {
					return nil, nil, fmt.Errorf("technique: shamir open row %d: %w", a, err)
				}
				agg.EncOps++
				opened[a] = pt
			}
			per.TuplesTransferred++
			per.BytesTransferred += len(s.blobs[a])
			payloads = append(payloads, pt)
		}
		per.ReturnedAddrs = addrs[qi]
		out[qi] = payloads
		agg.TuplesTransferred += per.TuplesTransferred
		agg.BytesTransferred += per.BytesTransferred
	}
	return out, agg, nil
}
