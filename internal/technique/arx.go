package technique

import (
	"fmt"
	"sync"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/storage"
)

// Arx implements the indexable encoding of §VI: the i-th occurrence of a
// value v is stored under the deterministic token PRF(v || i), so no two
// rows share a token, yet the owner — who keeps the occurrence histogram —
// can regenerate every token of v and probe the cloud index once per
// occurrence. β is close to clear-text (1.4–2.5 in the paper); the leakage
// is the number of trapdoors per query (i.e. value frequencies) and the
// access pattern, both of which QB hides.
type Arx struct {
	prob  *crypto.Probabilistic
	tok   *crypto.ArxTokenizer
	store EncStore
	// mu guards the owner-side histogram so concurrent searches can read
	// it while an insert-driven Outsource updates it.
	mu sync.RWMutex
	// hist is the owner-side occurrence histogram keyed by value.
	hist map[string]int
	vals map[string]relation.Value
}

// NewArx builds the technique over the derived key set.
func NewArx(keys *crypto.KeySet) (*Arx, error) {
	return NewArxOn(keys, storage.NewEncryptedStore())
}

// NewArxOn builds the technique over an explicit store (e.g. a remote
// cloud's).
func NewArxOn(keys *crypto.KeySet, store EncStore) (*Arx, error) {
	prob, err := crypto.NewProbabilistic(keys.Enc)
	if err != nil {
		return nil, fmt.Errorf("technique: arx: %w", err)
	}
	return &Arx{
		prob:  prob,
		tok:   crypto.NewArxTokenizer(keys.Arx),
		store: store,
		hist:  make(map[string]int),
		vals:  make(map[string]relation.Value),
	}, nil
}

// Name implements Technique.
func (a *Arx) Name() string { return "Arx" }

// Indexable implements Technique.
func (a *Arx) Indexable() bool { return true }

// StoredRows implements Technique.
func (a *Arx) StoredRows() int { return a.store.Len() }

// Store exposes the cloud-side store for the adversary model.
func (a *Arx) Store() EncStore { return a.store }

// Histogram returns the owner-side occurrence count of v.
func (a *Arx) Histogram(v relation.Value) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.hist[v.Key()]
}

// Outsource implements Technique: each row is tokenised with its occurrence
// counter, so tokens are unique even for repeated values.
func (a *Arx) Outsource(rows []Row) (*Stats, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	st := &Stats{Rounds: 1}
	for _, r := range rows {
		k := r.Attr.Key()
		i := a.hist[k]
		a.hist[k] = i + 1
		a.vals[k] = r.Attr
		token := a.tok.Token(r.Attr.Encode(), uint32(i))
		tupleCT, err := a.prob.Encrypt(r.Payload)
		if err != nil {
			return nil, err
		}
		a.store.Add(tupleCT, nil, token)
		st.EncOps += 2
		st.TuplesTransferred++
		st.BytesTransferred += len(token) + len(tupleCT)
	}
	return st, nil
}

// Search implements Technique: the owner regenerates all occurrence tokens
// for each predicate and probes the index once per token.
func (a *Arx) Search(values []relation.Value) ([][]byte, *Stats, error) {
	st := &Stats{Rounds: 1}
	var addrs []int
	for _, v := range values {
		a.mu.RLock()
		n := a.hist[v.Key()]
		a.mu.RUnlock()
		for _, token := range a.tok.Tokens(v.Encode(), n) {
			st.EncOps++
			hits := a.store.LookupToken(token)
			st.TuplesScanned += len(hits)
			addrs = append(addrs, hits...)
		}
	}
	rows, err := a.store.Fetch(addrs)
	if err != nil {
		return nil, nil, err
	}
	payloads := make([][]byte, 0, len(rows))
	for _, r := range rows {
		pt, err := a.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: arx decrypt addr %d: %w", r.Addr, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(r.TupleCT)
		payloads = append(payloads, pt)
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// SearchBatch implements Technique as a per-query fallback: Arx probes the
// index once per occurrence token, so there is no shared scan for a batch
// to amortise. The queries run concurrently over a bounded worker pool.
func (a *Arx) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	return fallbackSearchBatch(a, queries)
}
