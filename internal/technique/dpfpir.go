package technique

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/crypto"
	"repro/internal/relation"
)

// DPFPIR is a two-server private information retrieval technique built on
// the distributed point function of crypto: the distinct searchable values
// are laid out as equal-size buckets of (probabilistically encrypted) rows,
// replicated on two non-colluding clouds. A query for value index α sends
// one DPF key to each cloud; each cloud XORs together the buckets whose
// evaluation bit is 1 and returns a single bucket-sized blob. The XOR of
// the two blobs is bucket α. Neither cloud learns α, which rows matched,
// or even the result size — the access pattern is fully hidden, at the
// cost of a linear scan per query (the γ >> 1 regime where QB helps most).
type DPFPIR struct {
	prob *crypto.Probabilistic

	// mu guards everything below: the padded table is rebuilt lazily on
	// the first search after an outsource, so Search takes the write lock
	// for the rebuild (double-checked) and the read lock for the scan.
	mu sync.RWMutex

	// Owner-side metadata.
	valueIdx map[string]int
	values   []relation.Value

	// Cloud-side (replicated) state: raw buckets plus the padded table
	// rebuilt lazily after outsourcing.
	buckets  [][][]byte
	table    [][]byte // padded: one blob of slotSize*slots bytes per value
	slots    int
	slotSize int
	rows     int
	dirty    bool

	// cache, when set, only accounts: the padded table is already reused
	// across queries (the dirty flag), so a clean scan is a cache hit — the
	// table pull/rebuild a cacheless owner-cloud split would repeat — and a
	// rebuild is a miss.
	cache *Cache
}

// SetCache attaches (or, with nil, detaches) a cache for hit/miss
// accounting of the padded-table reuse. Must be called before the
// technique is shared across goroutines.
func (d *DPFPIR) SetCache(c *Cache) { d.cache = c }

// NewDPFPIR builds the technique over the derived key set.
func NewDPFPIR(keys *crypto.KeySet) (*DPFPIR, error) {
	prob, err := crypto.NewProbabilistic(keys.Enc)
	if err != nil {
		return nil, fmt.Errorf("technique: dpfpir: %w", err)
	}
	return &DPFPIR{prob: prob, valueIdx: make(map[string]int)}, nil
}

// Name implements Technique.
func (d *DPFPIR) Name() string { return "DPF-PIR" }

// Indexable implements Technique: the cloud locates nothing — it scans
// everything, obliviously.
func (d *DPFPIR) Indexable() bool { return false }

// StoredRows implements Technique.
func (d *DPFPIR) StoredRows() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rows
}

// Outsource implements Technique: rows are sealed and appended to their
// value's bucket; the equal-size padded table is rebuilt on next search.
func (d *DPFPIR) Outsource(rows []Row) (*Stats, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	st := &Stats{Rounds: 1}
	for _, r := range rows {
		ct, err := d.prob.Encrypt(r.Payload)
		if err != nil {
			return nil, err
		}
		k := r.Attr.Key()
		idx, ok := d.valueIdx[k]
		if !ok {
			idx = len(d.values)
			d.valueIdx[k] = idx
			d.values = append(d.values, r.Attr)
			d.buckets = append(d.buckets, nil)
		}
		d.buckets[idx] = append(d.buckets[idx], ct)
		d.rows++
		st.EncOps++
		st.TuplesTransferred += 2 // replicated on both clouds
		st.BytesTransferred += 2 * len(ct)
	}
	d.dirty = true
	return st, nil
}

// rebuild pads every bucket to the same shape: slots entries of slotSize
// bytes, each slot a 4-byte length prefix plus the ciphertext.
func (d *DPFPIR) rebuild() {
	d.slots, d.slotSize = 0, 4
	for _, b := range d.buckets {
		if len(b) > d.slots {
			d.slots = len(b)
		}
		for _, ct := range b {
			if len(ct)+4 > d.slotSize {
				d.slotSize = len(ct) + 4
			}
		}
	}
	d.table = make([][]byte, len(d.buckets))
	for i, b := range d.buckets {
		blob := make([]byte, d.slots*d.slotSize)
		for s, ct := range b {
			off := s * d.slotSize
			binary.BigEndian.PutUint32(blob[off:off+4], uint32(len(ct)))
			copy(blob[off+4:], ct)
		}
		d.table[i] = blob
	}
	d.dirty = false
}

// xorInto accumulates src into dst.
func xorInto(dst, src []byte) {
	for i := range src {
		dst[i] ^= src[i]
	}
}

// cloudAnswer is one cloud's oblivious scan: XOR of the buckets whose DPF
// bit evaluates to 1.
func (d *DPFPIR) cloudAnswer(key crypto.DPFKey, bits int, st *Stats) ([]byte, error) {
	bitsVec, err := crypto.DPFEvalAll(key, len(d.table), bits)
	if err != nil {
		return nil, err
	}
	st.EncOps += len(d.table)
	st.TuplesScanned += d.slots * len(d.table)
	answer := make([]byte, d.slots*d.slotSize)
	for j, b := range bitsVec {
		if b == 1 {
			xorInto(answer, d.table[j])
		}
	}
	return answer, nil
}

// lockForScan takes the read lock for a search, first rebuilding the
// padded table if an outsource dirtied it: the rebuild upgrades to the
// write lock with a double check (another searcher may have rebuilt in the
// window). The caller must RUnlock. It reports whether this call (or a
// racing one) found the table dirty — a padded-table cache miss.
func (d *DPFPIR) lockForScan() (rebuilt bool) {
	d.mu.RLock()
	if d.dirty {
		rebuilt = true
		d.mu.RUnlock()
		d.mu.Lock()
		if d.dirty {
			d.rebuild()
		}
		d.mu.Unlock()
		d.mu.RLock()
	}
	return rebuilt
}

// chargeTableCache folds a clean padded-table reuse (hit) or rebuild
// (miss) into the stats when a cache is attached; an empty table counts
// as neither.
func (d *DPFPIR) chargeTableCache(st *Stats, rebuilt bool) {
	if d.cache == nil || len(d.table) == 0 {
		return
	}
	if rebuilt {
		st.CacheMisses++
		d.cache.recordMiss()
		return
	}
	st.CacheHits++
	d.cache.recordHit(0)
}

// Search implements Technique: one PIR round per predicate.
func (d *DPFPIR) Search(values []relation.Value) ([][]byte, *Stats, error) {
	rebuilt := d.lockForScan()
	defer d.mu.RUnlock()
	st := &Stats{Rounds: 1}
	if len(d.table) == 0 {
		return nil, st, nil
	}
	d.chargeTableCache(st, rebuilt)
	bits := crypto.DPFDomainBits(len(d.table))
	var payloads [][]byte

	// Deterministic order for reproducible stats.
	sorted := append([]relation.Value(nil), values...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })

	for _, v := range sorted {
		idx, ok := d.valueIdx[v.Key()]
		if !ok {
			continue
		}
		k0, k1, err := crypto.DPFGen(uint64(idx), bits, nil)
		if err != nil {
			return nil, nil, err
		}
		st.EncOps += 2
		a0, err := d.cloudAnswer(k0, bits, st)
		if err != nil {
			return nil, nil, err
		}
		a1, err := d.cloudAnswer(k1, bits, st)
		if err != nil {
			return nil, nil, err
		}
		xorInto(a0, a1) // a0 is now bucket idx
		st.TuplesTransferred += 2 * d.slots
		st.BytesTransferred += 2 * len(a0)
		for s := 0; s < d.slots; s++ {
			off := s * d.slotSize
			n := binary.BigEndian.Uint32(a0[off : off+4])
			if n == 0 {
				continue // padding slot
			}
			if int(n) > d.slotSize-4 {
				return nil, nil, fmt.Errorf("technique: dpfpir corrupt slot length %d", n)
			}
			pt, err := d.prob.Decrypt(a0[off+4 : off+4+int(n)])
			if err != nil {
				return nil, nil, fmt.Errorf("technique: dpfpir open slot %d: %w", s, err)
			}
			st.EncOps++
			payloads = append(payloads, pt)
		}
	}
	// No ReturnedAddrs: the clouds never learn which rows were touched.
	return payloads, st, nil
}

// maxInflightRetrievals bounds how many PIR retrievals share one table
// scan: each in-flight retrieval holds two domain-length bit vectors and
// two bucket-sized accumulators, so scanning a whole huge batch at once
// would cost O(batch x table) memory. Chunking keeps memory at
// O(chunk x table) while still amortising the scan across up to this many
// predicates.
const maxInflightRetrievals = 64

// SearchBatch implements Technique with a shared oblivious scan: the DPF
// keys of the batch's predicates are evaluated, and then each of the two
// clouds streams its padded table ONCE per chunk of up to
// maxInflightRetrievals predicates, XORing every in-flight query's answer
// as it goes — one table scan per chunk instead of one per predicate. The
// per-key PRF evaluations and the XOR accumulation are inherently
// per-query and stay attributed per query; only the scan (TuplesScanned)
// is shared and counted once per chunk in the batch-level Stats.
func (d *DPFPIR) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	nq := len(queries)
	agg := &Stats{Rounds: 1, PerQuery: make([]*Stats, nq)}
	out := make([][][]byte, nq)
	for i := range agg.PerQuery {
		agg.PerQuery[i] = &Stats{Rounds: 1}
	}
	if nq == 0 {
		return out, agg, nil
	}
	rebuilt := d.lockForScan()
	defer d.mu.RUnlock()
	if len(d.table) == 0 {
		return out, agg, nil
	}
	d.chargeTableCache(agg, rebuilt)
	bits := crypto.DPFDomainBits(len(d.table))

	// Plan one PIR retrieval per (query, live value), values in the same
	// deterministic order Search uses. The plan holds only indices; the
	// memory-heavy bit vectors and accumulators are materialised per
	// chunk below.
	type target struct {
		qi    int
		value relation.Value
		idx   int
	}
	var plan []target
	for qi, q := range queries {
		sorted := append([]relation.Value(nil), q...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Less(sorted[j]) })
		for _, v := range sorted {
			if idx, ok := d.valueIdx[v.Key()]; ok {
				plan = append(plan, target{qi: qi, value: v, idx: idx})
			}
		}
	}

	type retrieval struct {
		target
		b0, b1 []byte
		a0, a1 []byte
	}
	for start := 0; start < len(plan); start += maxInflightRetrievals {
		chunk := plan[start:min(start+maxInflightRetrievals, len(plan))]
		inflight := make([]*retrieval, 0, len(chunk))
		for _, tg := range chunk {
			k0, k1, err := crypto.DPFGen(uint64(tg.idx), bits, nil)
			if err != nil {
				return nil, nil, err
			}
			b0, err := crypto.DPFEvalAll(k0, len(d.table), bits)
			if err != nil {
				return nil, nil, err
			}
			b1, err := crypto.DPFEvalAll(k1, len(d.table), bits)
			if err != nil {
				return nil, nil, err
			}
			// Key generation plus the per-key PRF work; not shareable.
			agg.PerQuery[tg.qi].EncOps += 2 + 2*len(d.table)
			sz := d.slots * d.slotSize
			inflight = append(inflight, &retrieval{
				target: tg, b0: b0, b1: b1,
				a0: make([]byte, sz), a1: make([]byte, sz),
			})
		}

		// The shared scan: both clouds stream the padded table once per
		// chunk, serving every retrieval in flight.
		agg.TuplesScanned += 2 * d.slots * len(d.table)
		for j, blob := range d.table {
			for _, r := range inflight {
				if r.b0[j] == 1 {
					xorInto(r.a0, blob)
				}
				if r.b1[j] == 1 {
					xorInto(r.a1, blob)
				}
			}
		}

		for _, r := range inflight {
			xorInto(r.a0, r.a1) // r.a0 is now the requested bucket
			per := agg.PerQuery[r.qi]
			per.TuplesTransferred += 2 * d.slots
			per.BytesTransferred += 2 * len(r.a0)
			for s := 0; s < d.slots; s++ {
				off := s * d.slotSize
				n := binary.BigEndian.Uint32(r.a0[off : off+4])
				if n == 0 {
					continue // padding slot
				}
				if int(n) > d.slotSize-4 {
					return nil, nil, fmt.Errorf("technique: dpfpir corrupt slot length %d", n)
				}
				pt, err := d.prob.Decrypt(r.a0[off+4 : off+4+int(n)])
				if err != nil {
					return nil, nil, fmt.Errorf("technique: dpfpir open slot %d: %w", s, err)
				}
				per.EncOps++
				out[r.qi] = append(out[r.qi], pt)
			}
		}
	}
	for _, per := range agg.PerQuery {
		agg.EncOps += per.EncOps
		agg.TuplesTransferred += per.TuplesTransferred
		agg.BytesTransferred += per.BytesTransferred
	}
	return out, agg, nil
}
