package technique

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/storage"
)

// DetIndex outsources the searchable attribute under deterministic
// encryption so that the cloud can maintain an index over the ciphertexts
// and answer selections without scanning. It is fast (β close to 1) but, on
// its own, leaks the full frequency histogram of the attribute — the
// canonical weak-but-indexable technique QB hardens (§VI).
//
// DetIndex keeps no mutable owner-side state: concurrent searches are safe
// because the ciphers are stateless and the store synchronises internally.
type DetIndex struct {
	prob  *crypto.Probabilistic
	det   *crypto.Deterministic
	store EncStore
}

// NewDetIndex builds the technique over the derived key set.
func NewDetIndex(keys *crypto.KeySet) (*DetIndex, error) {
	return NewDetIndexOn(keys, storage.NewEncryptedStore())
}

// NewDetIndexOn builds the technique over an explicit store (e.g. a remote
// cloud's).
func NewDetIndexOn(keys *crypto.KeySet, store EncStore) (*DetIndex, error) {
	prob, err := crypto.NewProbabilistic(keys.Enc)
	if err != nil {
		return nil, fmt.Errorf("technique: detindex: %w", err)
	}
	det, err := crypto.NewDeterministic(keys.Det, keys.Nonce)
	if err != nil {
		return nil, fmt.Errorf("technique: detindex: %w", err)
	}
	return &DetIndex{prob: prob, det: det, store: store}, nil
}

// Name implements Technique.
func (d *DetIndex) Name() string { return "DetIndex" }

// Indexable implements Technique.
func (d *DetIndex) Indexable() bool { return true }

// StoredRows implements Technique.
func (d *DetIndex) StoredRows() int { return d.store.Len() }

// Store exposes the cloud-side store for the adversary model; the Token
// fields are the deterministic ciphertexts the frequency attack groups.
func (d *DetIndex) Store() EncStore { return d.store }

// Outsource implements Technique.
func (d *DetIndex) Outsource(rows []Row) (*Stats, error) {
	st := &Stats{Rounds: 1}
	for _, r := range rows {
		token := d.det.Encrypt(r.Attr.Encode())
		tupleCT, err := d.prob.Encrypt(r.Payload)
		if err != nil {
			return nil, err
		}
		d.store.Add(tupleCT, nil, token)
		st.EncOps += 2
		st.TuplesTransferred++
		st.BytesTransferred += len(token) + len(tupleCT)
	}
	return st, nil
}

// Search implements Technique: one index probe per predicate.
func (d *DetIndex) Search(values []relation.Value) ([][]byte, *Stats, error) {
	st := &Stats{Rounds: 1}
	var addrs []int
	for _, v := range values {
		token := d.det.Encrypt(v.Encode())
		st.EncOps++
		hits := d.store.LookupToken(token)
		st.TuplesScanned += len(hits)
		addrs = append(addrs, hits...)
	}
	rows, err := d.store.Fetch(addrs)
	if err != nil {
		return nil, nil, err
	}
	payloads := make([][]byte, 0, len(rows))
	for _, r := range rows {
		pt, err := d.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: detindex decrypt addr %d: %w", r.Addr, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(r.TupleCT)
		payloads = append(payloads, pt)
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// SearchBatch implements Technique as a per-query fallback: the cloud-side
// index answers each predicate with a point probe, so there is no shared
// scan for a batch to amortise. The queries run concurrently over a
// bounded worker pool.
func (d *DetIndex) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	return fallbackSearchBatch(d, queries)
}
