package technique

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/relation"
	"repro/internal/storage"
)

// DetIndex outsources the searchable attribute under deterministic
// encryption so that the cloud can maintain an index over the ciphertexts
// and answer selections without scanning. It is fast (β close to 1) but, on
// its own, leaks the full frequency histogram of the attribute — the
// canonical weak-but-indexable technique QB hardens (§VI).
//
// DetIndex keeps no mutable owner-side state of its own: concurrent
// searches are safe because the ciphers are stateless, the store
// synchronises internally, and the optional Cache synchronises internally
// too.
type DetIndex struct {
	prob  *crypto.Probabilistic
	det   *crypto.Deterministic
	store EncStore

	// cache/vstore are set together by SetCache when the store supports
	// version counters: searches then memoise token→address lookups at an
	// exact store version and reuse cached payload decryptions.
	cache  *Cache
	vstore VersionedEncStore
}

// NewDetIndex builds the technique over the derived key set.
func NewDetIndex(keys *crypto.KeySet) (*DetIndex, error) {
	return NewDetIndexOn(keys, storage.NewEncryptedStore())
}

// NewDetIndexOn builds the technique over an explicit store (e.g. a remote
// cloud's).
func NewDetIndexOn(keys *crypto.KeySet, store EncStore) (*DetIndex, error) {
	prob, err := crypto.NewProbabilistic(keys.Enc)
	if err != nil {
		return nil, fmt.Errorf("technique: detindex: %w", err)
	}
	det, err := crypto.NewDeterministic(keys.Det, keys.Nonce)
	if err != nil {
		return nil, fmt.Errorf("technique: detindex: %w", err)
	}
	return &DetIndex{prob: prob, det: det, store: store}, nil
}

// Name implements Technique.
func (d *DetIndex) Name() string { return "DetIndex" }

// Indexable implements Technique.
func (d *DetIndex) Indexable() bool { return true }

// StoredRows implements Technique.
func (d *DetIndex) StoredRows() int { return d.store.Len() }

// Store exposes the cloud-side store for the adversary model; the Token
// fields are the deterministic ciphertexts the frequency attack groups.
func (d *DetIndex) Store() EncStore { return d.store }

// Outsource implements Technique.
func (d *DetIndex) Outsource(rows []Row) (*Stats, error) {
	st := &Stats{Rounds: 1}
	for _, r := range rows {
		token := d.det.Encrypt(r.Attr.Encode())
		tupleCT, err := d.prob.Encrypt(r.Payload)
		if err != nil {
			return nil, err
		}
		d.store.Add(tupleCT, nil, token)
		st.EncOps += 2
		st.TuplesTransferred++
		st.BytesTransferred += len(token) + len(tupleCT)
	}
	return st, nil
}

// SetCache attaches (or, with nil, detaches) an owner-side version cache.
// It takes effect only when the underlying store supports version counters
// (VersionedEncStore) and must be called before the technique is shared
// across goroutines.
func (d *DetIndex) SetCache(c *Cache) {
	if vs, ok := d.store.(VersionedEncStore); ok && c != nil {
		d.cache, d.vstore = c, vs
		return
	}
	d.cache, d.vstore = nil, nil
}

// Search implements Technique: one index probe per predicate.
func (d *DetIndex) Search(values []relation.Value) ([][]byte, *Stats, error) {
	if d.cache != nil {
		return d.searchCached(values)
	}
	st := &Stats{Rounds: 1}
	var addrs []int
	for _, v := range values {
		token := d.det.Encrypt(v.Encode())
		st.EncOps++
		hits := d.store.LookupToken(token)
		st.TuplesScanned += len(hits)
		addrs = append(addrs, hits...)
	}
	rows, err := d.store.Fetch(addrs)
	if err != nil {
		return nil, nil, err
	}
	payloads := make([][]byte, 0, len(rows))
	for _, r := range rows {
		pt, err := d.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: detindex decrypt addr %d: %w", r.Addr, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(r.TupleCT)
		payloads = append(payloads, pt)
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// searchCached is Search with the version cache engaged: one cheap version
// round trip decides whether the memoised token→address lists are still
// exact (any write may change any posting list, so memos only survive an
// unchanged version), and round 2 fetches only the addresses whose
// decryptions are not cached. Results and ReturnedAddrs are identical to
// the uncached path; the cloud-observed accesses are a subset of it.
func (d *DetIndex) searchCached(values []relation.Value) ([][]byte, *Stats, error) {
	st := &Stats{Rounds: 1}
	if len(values) == 0 {
		// Nothing to look up: answer locally without a version round trip,
		// and record neither a hit nor a miss — a no-op query says nothing
		// about the cache.
		return [][]byte{}, st, nil
	}
	cur, err := d.vstore.EncVersion()
	if err != nil {
		return nil, nil, err
	}
	allMemo := true
	var addrs []int
	for _, v := range values {
		token := d.det.Encrypt(v.Encode())
		st.EncOps++
		hits, ok := d.cache.memoGet(cur, string(token))
		if ok {
			// One posting-list probe avoided: roughly 8 bytes per address
			// plus the token that would have travelled.
			st.CacheBytesSaved += len(token) + 8*len(hits)
		} else {
			allMemo = false
			hits = d.store.LookupToken(token)
			d.cache.memoPut(cur, string(token), hits)
		}
		st.TuplesScanned += len(hits)
		addrs = append(addrs, hits...)
	}
	if allMemo {
		st.CacheHits++
		d.cache.recordHit(st.CacheBytesSaved)
	} else {
		st.CacheMisses++
		d.cache.recordMiss()
		d.cache.recordSaved(st.CacheBytesSaved)
	}

	found, ctSaved := d.cache.payloadGet(cur.Epoch, addrs)
	if ctSaved > 0 {
		st.CacheBytesSaved += ctSaved
		d.cache.recordSaved(ctSaved)
	}
	missing := addrs
	if len(found) > 0 {
		missing = make([]int, 0, len(addrs)-len(found))
		for _, a := range addrs {
			if _, ok := found[a]; !ok {
				missing = append(missing, a)
			}
		}
	}
	var rows []storage.EncRow
	if len(missing) > 0 {
		rows, err = d.store.Fetch(missing)
		if err != nil {
			return nil, nil, err
		}
	}
	payloads := make([][]byte, 0, len(addrs))
	next := 0
	for _, a := range addrs {
		if pt, ok := found[a]; ok {
			payloads = append(payloads, pt)
			continue
		}
		if next >= len(rows) {
			return nil, nil, fmt.Errorf("technique: detindex fetch returned %d rows for %d addresses", len(rows), len(missing))
		}
		r := rows[next]
		next++
		pt, err := d.prob.Decrypt(r.TupleCT)
		if err != nil {
			return nil, nil, fmt.Errorf("technique: detindex decrypt addr %d: %w", r.Addr, err)
		}
		st.EncOps++
		st.TuplesTransferred++
		st.BytesTransferred += len(r.TupleCT)
		d.cache.payloadPut(cur.Epoch, r.Addr, pt, len(r.TupleCT))
		payloads = append(payloads, pt)
	}
	st.ReturnedAddrs = addrs
	return payloads, st, nil
}

// SearchBatch implements Technique as a per-query fallback: the cloud-side
// index answers each predicate with a point probe, so there is no shared
// scan for a batch to amortise. The queries run concurrently over a
// bounded worker pool.
func (d *DetIndex) SearchBatch(queries [][]relation.Value) ([][][]byte, *Stats, error) {
	return fallbackSearchBatch(d, queries)
}
